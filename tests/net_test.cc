// Unit tests: addresses, the MD5-derived ROHC CID, and byte-exact header
// serialisation for IPv4 / TCP (with options) / UDP.
#include <gtest/gtest.h>

#include "src/net/address.h"
#include "src/net/ipv4_header.h"
#include "src/net/tcp_header.h"
#include "src/net/udp_header.h"

namespace hacksim {
namespace {

TEST(AddressTest, Ipv4Formatting) {
  EXPECT_EQ(Ipv4Address::FromOctets(10, 0, 2, 1).ToString(), "10.0.2.1");
  EXPECT_EQ(Ipv4Address::FromOctets(255, 255, 255, 255).value(), 0xFFFFFFFFu);
}

TEST(AddressTest, MacFormatting) {
  EXPECT_EQ(MacAddress::ForStation(1).ToString(), "02:00:00:00:00:01");
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_FALSE(MacAddress::ForStation(3).IsBroadcast());
}

TEST(AddressTest, FiveTupleReversal) {
  FiveTuple t{Ipv4Address::FromOctets(1, 2, 3, 4),
              Ipv4Address::FromOctets(5, 6, 7, 8), 1000, 2000, 6};
  FiveTuple r = t.Reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.Reversed(), t);
}

TEST(AddressTest, RohcCidIsDeterministicAndDirectional) {
  FiveTuple t{Ipv4Address::FromOctets(10, 0, 0, 1),
              Ipv4Address::FromOctets(10, 0, 2, 1), 5000, 6000, 6};
  EXPECT_EQ(t.RohcCid(), t.RohcCid());
  // Different flows should usually map to different CIDs (not guaranteed —
  // just check these particular ones do, as a change detector).
  FiveTuple u = t;
  u.src_port = 5001;
  EXPECT_NE(t.RohcCid(), u.RohcCid());
}

TEST(AddressTest, CidDistributionCoversSpace) {
  // Hash 512 flows; a healthy MD5 low byte should hit > 200 distinct CIDs.
  std::set<uint8_t> seen;
  for (int i = 0; i < 512; ++i) {
    FiveTuple t{Ipv4Address::FromOctets(10, 0, 0, 1),
                Ipv4Address::FromOctets(10, 0, 2, 1),
                static_cast<uint16_t>(5000 + i), 6000, 6};
    seen.insert(t.RohcCid());
  }
  EXPECT_GT(seen.size(), 200u);
}

// --- IPv4 ------------------------------------------------------------------------

TEST(Ipv4HeaderTest, RoundTrip) {
  Ipv4Header h;
  h.tos = 0x10;
  h.total_length = 1512;
  h.identification = 77;
  h.dont_fragment = true;
  h.ttl = 64;
  h.protocol = kIpProtoTcp;
  h.src = Ipv4Address::FromOctets(10, 0, 0, 1);
  h.dst = Ipv4Address::FromOctets(10, 0, 2, 5);

  ByteWriter w;
  h.Serialize(w);
  EXPECT_EQ(w.size(), Ipv4Header::kBytes);

  ByteReader r(w.bytes());
  auto parsed = Ipv4Header::Deserialize(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(Ipv4HeaderTest, ChecksumValidatesCorruption) {
  Ipv4Header h;
  h.total_length = 40;
  h.src = Ipv4Address::FromOctets(1, 1, 1, 1);
  h.dst = Ipv4Address::FromOctets(2, 2, 2, 2);
  ByteWriter w;
  h.Serialize(w);
  std::vector<uint8_t> bytes(w.bytes().begin(), w.bytes().end());
  bytes[8] ^= 0xFF;  // corrupt TTL
  ByteReader r(bytes);
  EXPECT_FALSE(Ipv4Header::Deserialize(r).has_value());
}

TEST(Ipv4HeaderTest, TruncatedInputFails) {
  Ipv4Header h;
  h.src = Ipv4Address::FromOctets(1, 1, 1, 1);
  ByteWriter w;
  h.Serialize(w);
  auto bytes = w.bytes();
  ByteReader r(bytes.subspan(0, 10));
  EXPECT_FALSE(Ipv4Header::Deserialize(r).has_value());
}

TEST(Ipv4HeaderTest, InternetChecksumKnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

// --- TCP --------------------------------------------------------------------------

TcpHeader MakePlainAck() {
  TcpHeader t;
  t.src_port = 6000;
  t.dst_port = 5000;
  t.seq = 1;
  t.ack = 14601;
  t.flag_ack = true;
  t.window = 32768;
  return t;
}

TEST(TcpHeaderTest, PlainHeaderIs20Bytes) {
  TcpHeader t = MakePlainAck();
  EXPECT_EQ(t.HeaderBytes(), 20u);
  ByteWriter w;
  t.Serialize(w);
  EXPECT_EQ(w.size(), 20u);
}

TEST(TcpHeaderTest, TimestampAckIs32Bytes) {
  // The paper's Table 2 has 52-byte ACK packets: 20 IP + 32 TCP.
  TcpHeader t = MakePlainAck();
  t.timestamps = TcpTimestamps{123456, 654321};
  EXPECT_EQ(t.HeaderBytes(), 32u);
}

TEST(TcpHeaderTest, RoundTripPlain) {
  TcpHeader t = MakePlainAck();
  ByteWriter w;
  t.Serialize(w);
  ByteReader r(w.bytes());
  auto parsed = TcpHeader::Deserialize(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(TcpHeaderTest, RoundTripSynWithAllOptions) {
  TcpHeader t;
  t.src_port = 5000;
  t.dst_port = 6000;
  t.seq = 0;
  t.flag_syn = true;
  t.window = 65535;
  t.mss = 1460;
  t.window_scale = 7;
  t.sack_permitted = true;
  t.timestamps = TcpTimestamps{1000, 0};
  ByteWriter w;
  t.Serialize(w);
  EXPECT_EQ(w.size(), t.HeaderBytes());
  EXPECT_LE(w.size(), 60u);
  ByteReader r(w.bytes());
  auto parsed = TcpHeader::Deserialize(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(TcpHeaderTest, RoundTripSackBlocks) {
  TcpHeader t = MakePlainAck();
  t.timestamps = TcpTimestamps{11, 22};
  t.sack_blocks = {{30000, 31460}, {35000, 36460}, {40000, 41460}};
  ByteWriter w;
  t.Serialize(w);
  EXPECT_EQ(w.size(), t.HeaderBytes());
  ByteReader r(w.bytes());
  auto parsed = TcpHeader::Deserialize(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, t);
}

TEST(TcpHeaderTest, FlagsRoundTrip) {
  for (int mask = 0; mask < 32; ++mask) {
    TcpHeader t;
    t.flag_fin = mask & 1;
    t.flag_syn = mask & 2;
    t.flag_rst = mask & 4;
    t.flag_psh = mask & 8;
    t.flag_ack = mask & 16;
    ByteWriter w;
    t.Serialize(w);
    ByteReader r(w.bytes());
    auto parsed = TcpHeader::Deserialize(r);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t) << "mask=" << mask;
  }
}

TEST(TcpHeaderTest, PureAckShape) {
  TcpHeader t = MakePlainAck();
  EXPECT_TRUE(t.IsPureAckShape());
  t.flag_syn = true;
  EXPECT_FALSE(t.IsPureAckShape());
  t.flag_syn = false;
  t.flag_fin = true;
  EXPECT_FALSE(t.IsPureAckShape());
}

TEST(TcpHeaderTest, TruncatedOptionsFail) {
  TcpHeader t = MakePlainAck();
  t.timestamps = TcpTimestamps{1, 2};
  ByteWriter w;
  t.Serialize(w);
  auto bytes = w.bytes();
  ByteReader r(bytes.subspan(0, bytes.size() - 4));
  EXPECT_FALSE(TcpHeader::Deserialize(r).has_value());
}

// --- UDP --------------------------------------------------------------------------

TEST(UdpHeaderTest, RoundTrip) {
  UdpHeader u;
  u.src_port = 7;
  u.dst_port = 9;
  u.length = 1480;
  ByteWriter w;
  u.Serialize(w);
  EXPECT_EQ(w.size(), UdpHeader::kBytes);
  ByteReader r(w.bytes());
  auto parsed = UdpHeader::Deserialize(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, u);
}

}  // namespace
}  // namespace hacksim
