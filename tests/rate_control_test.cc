// Rate-adaptation tests: ARF up/down transitions pinned against scripted
// outcome sequences, the Minstrel-lite probing hook (counter-driven probes,
// per-rate EWMA, pluggable probe selector), the PerRateLossModel signal the
// controller trains against, and an end-to-end two-station convergence run
// where a lossy top rate drives the sender down to a sustainable mode.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/mac80211/station_table.h"
#include "src/mac80211/wifi_mac.h"
#include "src/phy80211/loss_model.h"
#include "src/phy80211/wifi_phy.h"

namespace hacksim {
namespace {

RateAdaptConfig NoProbeConfig() {
  RateAdaptConfig cfg;
  cfg.up_threshold = 10;
  cfg.down_threshold = 2;
  cfg.probe_interval = 0;
  return cfg;
}

TEST(ArfRateControllerTest, MovesUpAfterConsecutiveSuccesses) {
  ArfRateController ctrl(Modes80211n(), 0, NoProbeConfig());
  for (int i = 0; i < 9; ++i) {
    ctrl.PickModeIndex(0);
    ArfRateController::Move mv = ctrl.OnTxOutcome(0, true);
    EXPECT_FALSE(mv.up) << "moved up after only " << i + 1 << " successes";
    EXPECT_EQ(ctrl.current_index(0), 0u);
  }
  ctrl.PickModeIndex(0);
  ArfRateController::Move mv = ctrl.OnTxOutcome(0, true);
  EXPECT_TRUE(mv.up);
  EXPECT_EQ(ctrl.current_index(0), 1u);
}

TEST(ArfRateControllerTest, TrialFrameFailureFallsStraightBack) {
  ArfRateController ctrl(Modes80211n(), 0, NoProbeConfig());
  for (int i = 0; i < 10; ++i) {
    ctrl.PickModeIndex(0);
    ctrl.OnTxOutcome(0, true);
  }
  ASSERT_EQ(ctrl.current_index(0), 1u);
  // First exchange at the new rate fails: ARF's trial rule drops back
  // immediately, not after down_threshold failures.
  ctrl.PickModeIndex(0);
  ArfRateController::Move mv = ctrl.OnTxOutcome(0, false);
  EXPECT_TRUE(mv.down);
  EXPECT_EQ(ctrl.current_index(0), 0u);
}

TEST(ArfRateControllerTest, DownAfterConsecutiveFailures) {
  ArfRateController ctrl(Modes80211n(), 3, NoProbeConfig());
  ctrl.PickModeIndex(0);
  EXPECT_FALSE(ctrl.OnTxOutcome(0, false).down);
  EXPECT_EQ(ctrl.current_index(0), 3u);
  ctrl.PickModeIndex(0);
  EXPECT_TRUE(ctrl.OnTxOutcome(0, false).down);
  EXPECT_EQ(ctrl.current_index(0), 2u);
  // A success in between resets the failure streak.
  ctrl.PickModeIndex(0);
  ctrl.OnTxOutcome(0, false);
  ctrl.PickModeIndex(0);
  ctrl.OnTxOutcome(0, true);
  ctrl.PickModeIndex(0);
  EXPECT_FALSE(ctrl.OnTxOutcome(0, false).down);
  EXPECT_EQ(ctrl.current_index(0), 2u);
}

// The transition pin: a scripted loss sequence and the exact index trace it
// must produce. 's' = delivered exchange, 'f' = lost exchange.
TEST(ArfRateControllerTest, ScriptedLossSequencePinsIndexTrace) {
  RateAdaptConfig cfg;
  cfg.up_threshold = 3;
  cfg.down_threshold = 2;
  cfg.probe_interval = 0;
  ArfRateController ctrl(Modes80211n(), 2, cfg);

  const std::string script = "sssfsssffssssss";
  // After each outcome, the operating index ARF must hold:
  //   sss   -> up move on the 3rd success            (2 -> 3, on trial)
  //   f     -> trial failure falls straight back     (3 -> 2)
  //   sss   -> up again                              (2 -> 3, on trial)
  //   f     -> trial failure                         (3 -> 2)
  //   f     -> lone failure: streak 1 < 2, holds     (2)
  //   sss   -> up                                    (2 -> 3)
  //   sss   -> up                                    (3 -> 4)
  const std::vector<size_t> expected = {2, 2, 3, 2, 2, 2, 3, 2, 2,
                                        2, 2, 3, 3, 3, 4};
  ASSERT_EQ(script.size(), expected.size());
  for (size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(ctrl.PickModeIndex(0), ctrl.current_index(0));
    ctrl.OnTxOutcome(0, script[i] == 's');
    EXPECT_EQ(ctrl.current_index(0), expected[i])
        << "after outcome " << i << " ('" << script[i] << "')";
  }
}

TEST(ArfRateControllerTest, StationsAdaptIndependently) {
  ArfRateController ctrl(Modes80211n(), 4, NoProbeConfig());
  for (int i = 0; i < 2; ++i) {
    ctrl.PickModeIndex(7);
    ctrl.OnTxOutcome(7, false);
  }
  EXPECT_EQ(ctrl.current_index(7), 3u);
  EXPECT_EQ(ctrl.current_index(2), 4u) << "untouched station moved";
}

TEST(ArfRateControllerTest, ProbesEveryIntervalWithoutMovingArfState) {
  RateAdaptConfig cfg;
  cfg.up_threshold = 100;  // no ARF up-moves during this test
  cfg.down_threshold = 2;
  cfg.probe_interval = 4;
  ArfRateController ctrl(Modes80211n(), 2, cfg);

  int probes = 0;
  for (int i = 0; i < 16; ++i) {
    size_t pick = ctrl.PickModeIndex(0);
    if (pick != ctrl.current_index(0)) {
      ++probes;
      EXPECT_EQ(pick, 3u) << "default probe target is one step up";
      // Even a failed probe must not move the operating rate.
      ArfRateController::Move mv = ctrl.OnTxOutcome(0, false);
      EXPECT_FALSE(mv.down);
      EXPECT_EQ(ctrl.current_index(0), 2u);
    } else {
      ctrl.OnTxOutcome(0, true);
    }
  }
  EXPECT_EQ(probes, 4) << "every 4th pick probes";
  // The failed probes trained the EWMA for the probed rate only.
  EXPECT_LT(ctrl.EwmaDeliveryRatio(0, 3), 0.5);
  EXPECT_GT(ctrl.EwmaDeliveryRatio(0, 2), 0.9);
}

TEST(ArfRateControllerTest, AbandonedProbePickIsDeferredNotBurned) {
  RateAdaptConfig cfg;
  cfg.up_threshold = 100;
  cfg.probe_interval = 4;
  ArfRateController ctrl(Modes80211n(), 2, cfg);
  for (int i = 0; i < 3; ++i) {
    ctrl.PickModeIndex(0);
    ctrl.OnTxOutcome(0, true);
  }
  // 4th pick is a probe — but the PPDU never flies (empty build / CTS
  // timeout): abandoning must re-arm it for the very next pick.
  ASSERT_EQ(ctrl.PickModeIndex(0), 3u);
  ctrl.AbandonPick(0);
  EXPECT_EQ(ctrl.PickModeIndex(0), 3u) << "probe deferred, not burned";
  // And the abandoned pick fed no EWMA sample.
  EXPECT_DOUBLE_EQ(ctrl.EwmaDeliveryRatio(0, 3), 1.0);
  ctrl.OnTxOutcome(0, false);
  EXPECT_LT(ctrl.EwmaDeliveryRatio(0, 3), 1.0);
  EXPECT_EQ(ctrl.current_index(0), 2u) << "probe failure is EWMA-only";
}

TEST(ArfRateControllerTest, ProbeSelectorHookOverridesTarget) {
  RateAdaptConfig cfg;
  cfg.up_threshold = 100;
  cfg.probe_interval = 2;
  ArfRateController ctrl(Modes80211n(), 5, cfg);
  ctrl.probe_selector = [](StationId, size_t) -> size_t { return 0; };
  ctrl.PickModeIndex(0);
  ctrl.OnTxOutcome(0, true);
  EXPECT_EQ(ctrl.PickModeIndex(0), 0u) << "hook-chosen probe target";
  ctrl.OnTxOutcome(0, true);
  EXPECT_EQ(ctrl.current_index(0), 5u);
}

TEST(PerRateLossModelTest, RateDependentAndControlFramesClean) {
  PerRateLossModel model({{150000, 0.8}, {90000, 0.05}});
  WifiMode top{PhyFormat::kHtMixed, 150000, 540, 1};
  WifiMode mid{PhyFormat::kHtMixed, 90000, 324, 1};
  WifiMode low{PhyFormat::kHtMixed, 15000, 54, 1};
  EXPECT_NEAR(model.FrameErrorRate(top, 1500), 0.8, 1e-9);
  EXPECT_NEAR(model.FrameErrorRate(mid, 1500), 0.05, 1e-9);
  EXPECT_EQ(model.FrameErrorRate(low, 1500), 0.0) << "unlisted rate is clean";
  EXPECT_EQ(model.FrameErrorRate(top, 32), 0.0) << "control size is clean";
  // Longer frames fail more often (independent per-bit errors).
  EXPECT_GT(model.FrameErrorRate(mid, 3000), model.FrameErrorRate(mid, 1500));
}

// End-to-end convergence: the channel delivers nothing at the top rates and
// everything at low ones; the sender must walk down and stay down, and the
// traffic must keep flowing (adaptation is doing the job ARF exists for).
TEST(RateAdaptationEndToEndTest, SenderConvergesBelowLossyRates) {
  Scheduler sched;
  WirelessChannel channel(&sched);
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = WifiMode{PhyFormat::kHtMixed, 150000, 540, 1};
  cfg.enable_rate_adaptation = true;
  cfg.rate_adapt.probe_interval = 0;  // pure ARF: deterministic convergence

  WifiPhy phy_a(&sched, Random(1));
  WifiPhy phy_b(&sched, Random(2));
  phy_a.AttachTo(&channel);
  phy_b.AttachTo(&channel);
  phy_a.set_position({0, 0});
  phy_b.set_position({5, 0});
  // Everything at or above 90 Mbps is hopeless; 60 Mbps and below is clean.
  phy_b.set_loss_model(std::make_unique<PerRateLossModel>(
      std::vector<PerRateLossModel::Entry>{{150000, 1.0},
                                           {135000, 1.0},
                                           {120000, 1.0},
                                           {90000, 1.0}}));
  WifiMac mac_a(&sched, &phy_a, MacAddress::ForStation(0), cfg, Random(11));
  WifiMac mac_b(&sched, &phy_b, MacAddress::ForStation(1), cfg, Random(12));
  size_t received = 0;
  mac_b.on_rx_packet = [&](Packet, MacAddress) { ++received; };

  // Steady feed (20 packets per 10 ms, ~16 Mbps offered) so the histogram
  // accumulates many post-convergence exchanges, not just the initial
  // walk-down.
  uint32_t fed = 0;
  std::function<void()> feed = [&]() {
    for (int i = 0; i < 20; ++i, ++fed) {
      mac_a.Enqueue(Packet::MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                                    Ipv4Address::FromOctets(10, 0, 2, 1), 7,
                                    9, 1000),
                    MacAddress::ForStation(1));
    }
    if (sched.Now() < SimTime::Millis(1900)) {
      sched.ScheduleIn(SimTime::Millis(10), feed);
    }
  };
  feed();
  sched.RunUntil(SimTime::Seconds(2));

  EXPECT_EQ(mac_a.stats().queue_drops, 0u)
      << "adaptation failed to find a sustainable rate";
  EXPECT_GT(received, fed * 9 / 10);
  EXPECT_GE(mac_a.stats().rate_down_moves, 4u) << "150->60 needs 4 steps";
  // The delivered PPDUs must overwhelmingly sit at 60 Mbps (index 3) or
  // below; the histogram is the observable.
  const auto& hist = mac_a.stats().data_ppdus_by_mode_index;
  uint64_t low = hist[0] + hist[1] + hist[2] + hist[3];
  uint64_t high = hist[4] + hist[5] + hist[6] + hist[7];
  EXPECT_GT(low, 2 * high);
}

}  // namespace
}  // namespace hacksim
