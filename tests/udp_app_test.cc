// Token-bucket CBR pacing tests: the bucket form (one kTransportTimer event
// per burst window releasing every CBR tick accrued) must preserve the
// classic per-packet chain's byte totals and its Start/Stop/Resume epoch
// semantics exactly — that equivalence is what let it become the bench
// uplink default (see docs/perf.md). Plus a scenario-level AP-outage smoke:
// bucket pacing under the fault engine must survive the outage and recover.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/apps/udp_app.h"
#include "src/scenario/download_scenario.h"

namespace hacksim {
namespace {

struct SourceUnderTest {
  SourceUnderTest(Scheduler* sched, UdpCbrSource::Config cfg)
      : src(sched, cfg,
            FiveTuple{Ipv4Address(1), Ipv4Address(2), 7, 9, kIpProtoUdp},
            [this, sched](Packet p) {
              send_times.push_back(sched->Now());
              bytes += p.payload_bytes();
            }) {}

  std::vector<SimTime> send_times;
  uint64_t bytes = 0;
  UdpCbrSource src;
};

UdpCbrSource::Config BaseCfg() {
  UdpCbrSource::Config cfg;
  cfg.rate_bps = 11'776'000;  // 1472 B payload every 1 ms
  cfg.payload_bytes = 1472;
  return cfg;
}

// A finite stop must flush the bucket's tail exactly: same packet and byte
// totals as the per-packet chain, including the boundary tick at the stop
// instant (which dies in both forms).
TEST(TokenBucketTest, ByteTotalsMatchLegacyThroughConfiguredStop) {
  Scheduler sched;
  UdpCbrSource::Config cfg = BaseCfg();
  cfg.stop = SimTime::Millis(100) + SimTime::Micros(300);  // mid-tick
  SourceUnderTest legacy(&sched, cfg);
  cfg.burst_window = SimTime::Millis(16);
  SourceUnderTest bucket(&sched, cfg);

  legacy.src.Start();
  bucket.src.Start();
  sched.RunUntil(SimTime::Millis(200));

  // Ticks at 0..100 ms inclusive: 101 packets either way.
  EXPECT_EQ(legacy.send_times.size(), 101u);
  EXPECT_EQ(bucket.send_times.size(), legacy.send_times.size());
  EXPECT_EQ(bucket.bytes, legacy.bytes);
  EXPECT_EQ(bucket.src.packets_sent(), legacy.src.packets_sent());
}

// Stop() mid-window must release the ticks accrued since the last refill —
// the instants the classic chain already emitted one by one — and a Resume
// must restart cleanly on a fresh epoch, stranding the old refill.
TEST(TokenBucketTest, StopFlushesAccruedAndResumeStartsFreshEpoch) {
  Scheduler sched;
  UdpCbrSource::Config cfg = BaseCfg();
  cfg.stop = SimTime::Seconds(10);  // run "forever"; Stop() cuts it
  SourceUnderTest legacy(&sched, cfg);
  cfg.burst_window = SimTime::Millis(16);
  SourceUnderTest bucket(&sched, cfg);

  legacy.src.Start();
  bucket.src.Start();
  // Crash at t=50.5 ms, mid-tick and mid-window: ticks 0..50 ms happened.
  sched.RunUntil(SimTime::Millis(50) + SimTime::Micros(500));
  legacy.src.Stop();
  bucket.src.Stop();
  EXPECT_EQ(legacy.send_times.size(), 51u);
  EXPECT_EQ(bucket.send_times.size(), 51u);
  // Dead window: the stranded refill (old epoch) must emit nothing.
  sched.RunUntil(SimTime::Millis(70));
  EXPECT_EQ(bucket.send_times.size(), 51u);

  // Rejoin at 80 ms, final stop at 120 ms: ticks 80..119 ms in both forms
  // (the tick at the stop instant dies either way).
  legacy.src.Resume(SimTime::Millis(80), SimTime::Millis(120));
  bucket.src.Resume(SimTime::Millis(80), SimTime::Millis(120));
  sched.RunUntil(SimTime::Millis(200));
  EXPECT_EQ(legacy.send_times.size(), 91u);
  EXPECT_EQ(bucket.send_times.size(), 91u);
  EXPECT_EQ(bucket.bytes, legacy.bytes);
}

// A window shorter than one interval degenerates to the classic chain:
// identical emission *instants*, not just totals.
TEST(TokenBucketTest, SubIntervalWindowDegeneratesToLegacyChain) {
  Scheduler sched;
  UdpCbrSource::Config cfg = BaseCfg();
  cfg.stop = SimTime::Millis(20);
  SourceUnderTest legacy(&sched, cfg);
  cfg.burst_window = SimTime::Micros(500);  // < the 1 ms interval
  SourceUnderTest degenerate(&sched, cfg);

  legacy.src.Start();
  degenerate.src.Start();
  sched.RunUntil(SimTime::Millis(40));
  EXPECT_EQ(degenerate.send_times, legacy.send_times);
}

// The per-refill burst is capped: a huge window still releases at most
// max_burst_packets per event, and the totals still match the chain.
TEST(TokenBucketTest, BurstCapBoundsReleaseAndPreservesTotals) {
  Scheduler sched;
  UdpCbrSource::Config cfg = BaseCfg();
  cfg.stop = SimTime::Millis(100);
  SourceUnderTest legacy(&sched, cfg);
  cfg.burst_window = SimTime::Millis(200);  // fits 200 ticks; cap is 64
  cfg.max_burst_packets = 64;
  SourceUnderTest bucket(&sched, cfg);

  legacy.src.Start();
  bucket.src.Start();
  sched.RunUntil(SimTime::Millis(300));
  EXPECT_EQ(legacy.send_times.size(), 100u);
  EXPECT_EQ(bucket.send_times.size(), 100u);
  // No single instant may release more than the cap.
  size_t same_instant = 1, worst = 1;
  for (size_t i = 1; i < bucket.send_times.size(); ++i) {
    same_instant =
        bucket.send_times[i] == bucket.send_times[i - 1] ? same_instant + 1
                                                         : 1;
    worst = std::max(worst, same_instant);
  }
  EXPECT_LE(worst, 64u);
}

// Scenario smoke: bucket-paced uplink sources under an AP outage. The fault
// engine Stop()s every source at the crash and Resume()s on recovery — the
// epoch machinery the unit tests above pin — and the cell must deliver
// traffic both overall and after the AP comes back.
TEST(TokenBucketTest, ApOutageScenarioRecoversWithBucketPacing) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = 5;
  c.proto = TransportProto::kUdp;
  c.hack = HackVariant::kOff;
  c.upload = true;
  c.udp_rate_bps = 5e7;
  c.udp_burst_window = SimTime::Millis(16);
  c.duration = SimTime::Millis(600);
  c.start_stagger = SimTime::Millis(5);
  c.seed = 7;
  c.fault_plan = FaultPlan::ApOutage(c.duration);
  ScenarioResult r = RunScenario(c);

  EXPECT_EQ(r.crc_failures, 0u);
  uint64_t bytes = 0;
  for (const auto& cl : r.clients) {
    bytes += cl.bytes_delivered;
  }
  EXPECT_GT(bytes, 0u);
  EXPECT_GT(r.post_fault_goodput_mbps, 0.0)
      << "the cell must deliver again after the AP restart";
}

}  // namespace
}  // namespace hacksim
