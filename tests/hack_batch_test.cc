// ACK-aggregation policy tests (HackAckPolicy): the window / count /
// MORE-DATA-edge flush triggers, the coalesced batch timer's cancellation
// paths, the held-suffix gate in BuildAckPayload, and the whole-scenario
// pins — window=0 is structurally absent (bit-identical to the legacy
// agent, same event count) and the policy survives churn fault plans
// without stranding timers or tripping the watchdog.
#include <gtest/gtest.h>

#include "src/node/wifi_net_device.h"
#include "src/scenario/download_scenario.h"
#include "src/scenario/fault_plan.h"

namespace hacksim {
namespace {

// AP-and-client harness at the device level, mirroring hack_test.cc's
// fixture but parameterized by the aggregation policy under test.
struct BatchFixture {
  explicit BatchFixture(HackAckPolicy policy) : channel(&sched) {
    WifiMacConfig cfg;
    cfg.standard = WifiStandard::k80211n;
    cfg.data_mode = ModeForRate(Modes80211n(), 150);
    cfg.max_hack_payload_bytes = 400;
    ap = std::make_unique<WifiNetDevice>(&sched, &channel,
                                         MacAddress::ForStation(0), cfg,
                                         Random(21));
    client = std::make_unique<WifiNetDevice>(&sched, &channel,
                                             MacAddress::ForStation(1), cfg,
                                             Random(22));
    ap->phy().set_position({0, 0});
    client->phy().set_position({5, 0});
    HackAgentConfig hc;
    hc.variant = HackVariant::kMoreData;
    hc.ack_policy = policy;
    ap->EnableHack(hc);
    client->EnableHack(hc);
    ap->on_receive = [this](Packet p, MacAddress) {
      if (p.IsPureTcpAck()) {
        acks_at_ap.push_back(std::move(p));
      }
    };
    client->on_receive = [this](Packet p, MacAddress) {
      data_at_client.push_back(std::move(p));
    };
  }

  Packet MakeData(uint32_t seq) {
    TcpHeader tcp;
    tcp.src_port = 5000;
    tcp.dst_port = 6000;
    tcp.seq = seq;
    tcp.flag_ack = true;
    tcp.window = 1000;
    tcp.timestamps = TcpTimestamps{10, 20};
    return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 0, 1),
                           Ipv4Address::FromOctets(10, 0, 2, 1), tcp, 1460);
  }

  Packet MakeAck(uint32_t ack) {
    TcpHeader tcp;
    tcp.src_port = 6000;
    tcp.dst_port = 5000;
    tcp.seq = 1;
    tcp.ack = ack;
    tcp.flag_ack = true;
    tcp.window = 32768;
    tcp.timestamps = TcpTimestamps{100, 200};
    return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                           Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
  }

  void SendBatch(int n_data, uint32_t first_seq = 1) {
    for (int i = 0; i < n_data; ++i) {
      ap->Send(MakeData(first_seq + i * 1460), MacAddress::ForStation(1));
    }
  }

  void EstablishContext() {
    client->Send(MakeAck(1000), MacAddress::ForStation(0));
    sched.RunUntil(sched.Now() + SimTime::Millis(5));
    ASSERT_EQ(acks_at_ap.size(), 1u);
    acks_at_ap.clear();
  }

  void RunFor(SimTime d) { sched.RunUntil(sched.Now() + d); }

  int AcksWithNumber(uint32_t ack) const {
    int count = 0;
    for (const Packet& p : acks_at_ap) {
      if (p.tcp().ack == ack) {
        ++count;
      }
    }
    return count;
  }

  Scheduler sched;
  WirelessChannel channel;
  std::unique_ptr<WifiNetDevice> ap, client;
  std::vector<Packet> acks_at_ap;
  std::vector<Packet> data_at_client;
};

HackAckPolicy WindowOnly(SimTime window) {
  HackAckPolicy p;
  p.flush_window = window;
  p.flush_on_more_data_edge = false;
  return p;
}

TEST(HackBatchTest, WindowTimerReleasesTheBatch) {
  // Short window: the coalesced timer fires before the next Block ACK, so
  // the released batch still rides it — the window trigger, in isolation.
  BatchFixture f(WindowOnly(SimTime::Micros(500)));
  f.EstablishContext();
  f.SendBatch(126);  // three batches of 42; MORE DATA through batch 2
  f.RunFor(SimTime::Millis(4));  // batch 1 delivered, latch on
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(20));
  EXPECT_EQ(f.AcksWithNumber(2000), 1);
  const HackStats& s = f.client->hack()->stats();
  EXPECT_EQ(s.ack_batches, 1u);
  EXPECT_EQ(s.batched_acks, 1u);
  EXPECT_EQ(s.batch_flush_window, 1u);
  EXPECT_EQ(s.batch_flush_count, 0u);
  EXPECT_EQ(s.batch_flush_edge, 0u);
  EXPECT_EQ(f.ap->hack()->stats().crc_failures_at_ap, 0u);
}

TEST(HackBatchTest, HeldSuffixBlocksTheBlockAckUntilReleased) {
  // Long window: the held ACK must NOT ride batch 2's Block ACK — the held
  // suffix is invisible to BuildAckPayload. When MORE DATA falls (edge
  // trigger disabled here) the latch-clear safety flush demotes it to
  // vanilla, which evicts the held entry and cancels the pending window
  // timer; running far past the would-be deadline proves the cancellation.
  BatchFixture f(WindowOnly(SimTime::Millis(30)));
  f.EstablishContext();
  f.SendBatch(126);
  f.RunFor(SimTime::Millis(4));
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(5));  // past batch 2's Block ACK
  EXPECT_TRUE(f.acks_at_ap.empty()) << "held ACK rode a Block ACK early";
  f.RunFor(SimTime::Millis(15));  // batch 3, latch clear, safety flush
  EXPECT_EQ(f.AcksWithNumber(2000), 1);
  const HackStats& s = f.client->hack()->stats();
  EXPECT_EQ(s.ack_batches, 0u);  // evicted, never released as a batch
  EXPECT_EQ(s.batch_flush_window, 0u);
  EXPECT_GT(s.flushed_to_vanilla, 0u);
  f.RunFor(SimTime::Millis(30));  // past the cancelled timer's deadline
  EXPECT_EQ(s.batch_flush_window, 0u);
  EXPECT_EQ(f.acks_at_ap.size(), 1u);
}

TEST(HackBatchTest, CountThresholdReleasesAndCancelsTimer) {
  // Three dupacks hit flush_count=3: the batch releases immediately (count
  // trigger), the window timer is cancelled, and all three records ride
  // ONE Block ACK as one hierarchical payload.
  HackAckPolicy policy = WindowOnly(SimTime::Millis(50));
  policy.flush_count = 3;
  BatchFixture f(policy);
  f.EstablishContext();
  f.SendBatch(126);
  f.RunFor(SimTime::Millis(4));
  for (int i = 0; i < 3; ++i) {
    f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  }
  f.RunFor(SimTime::Millis(20));
  EXPECT_EQ(f.AcksWithNumber(2000), 3);  // dupack count survives batching
  const HackStats& s = f.client->hack()->stats();
  EXPECT_EQ(s.ack_batches, 1u);
  EXPECT_EQ(s.batched_acks, 3u);
  EXPECT_EQ(s.batch_flush_count, 1u);
  EXPECT_EQ(s.batch_flush_window, 0u);
  EXPECT_DOUBLE_EQ(s.AcksPerFlush(), 3.0);
  // The whole batch rode a single LL ACK payload.
  const MacStats& mac = f.client->mac().stats();
  EXPECT_EQ(mac.hack_payloads_sent, 1u);
  EXPECT_EQ(mac.hack_payload_records, 3u);
  EXPECT_EQ(f.ap->hack()->stats().crc_failures_at_ap, 0u);
  // Far past the 50 ms window: the cancelled timer must never fire.
  f.RunFor(SimTime::Millis(60));
  EXPECT_EQ(s.batch_flush_window, 0u);
  EXPECT_EQ(f.acks_at_ap.size(), 3u);
}

TEST(HackBatchTest, MoreDataEdgeReleasesOntoTheFinalRide) {
  // Default edge trigger: when the peer's MORE DATA bit falls, the batch
  // releases before the SIFS-delayed BuildAckPayload — so it boards the
  // burst's FINAL Block ACK compressed instead of stranding until the
  // window expires or demoting to vanilla.
  HackAckPolicy policy;
  policy.flush_window = SimTime::Millis(30);  // would fire long after
  BatchFixture f(policy);
  f.EstablishContext();
  f.SendBatch(50);  // 42 + 8: MORE DATA on batch 1 only
  f.RunFor(SimTime::Millis(4));  // batch 1 delivered, latch on
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(20));
  EXPECT_EQ(f.AcksWithNumber(2000), 1);
  const HackStats& s = f.client->hack()->stats();
  EXPECT_EQ(s.batch_flush_edge, 1u);
  EXPECT_EQ(s.batch_flush_window, 0u);
  EXPECT_EQ(s.batch_flush_count, 0u);
  EXPECT_EQ(s.ack_batches, 1u);
  // It went compressed on the final Block ACK, not vanilla.
  EXPECT_EQ(s.unique_compressed_acks, 1u);
  EXPECT_EQ(f.ap->hack()->stats().acks_recovered_at_ap, 1u);
  EXPECT_EQ(f.ap->hack()->stats().crc_failures_at_ap, 0u);
}

// --- whole-scenario pins ----------------------------------------------------

ScenarioConfig BaseConfig(int n_clients) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = n_clients;
  c.proto = TransportProto::kTcp;
  c.hack = HackVariant::kMoreData;
  c.duration = SimTime::Millis(600);
  c.start_stagger = SimTime::Millis(5);
  c.seed = 7;
  return c;
}

TEST(HackBatchScenarioTest, Window0IsStructurallyAbsent) {
  // flush_window=0 must disable the policy wholesale even with the other
  // knobs set: no held flags, no timers, no counters — the run is
  // bit-identical to the legacy agent INCLUDING the executed event count
  // (a cancelled-but-scheduled timer would already break that).
  ScenarioConfig c = BaseConfig(3);
  ScenarioResult legacy = RunScenario(c);
  c.hack_config.ack_policy.flush_count = 5;
  c.hack_config.ack_policy.flush_on_more_data_edge = false;
  ScenarioResult off = RunScenario(c);
  EXPECT_TRUE(off.BehaviourEquals(legacy))
      << "window=0 changed behaviour: goodput "
      << off.aggregate_goodput_mbps << " vs "
      << legacy.aggregate_goodput_mbps;
  EXPECT_EQ(off.events_executed, legacy.events_executed);
  EXPECT_EQ(off.ap_hack.ack_batches, 0u);
  for (const ClientResult& cr : off.clients) {
    EXPECT_EQ(cr.hack.ack_batches, 0u);
    EXPECT_EQ(cr.hack.batched_acks, 0u);
  }
}

TEST(HackBatchScenarioTest, WindowedPolicyBatchesWithoutCostingGoodput) {
  ScenarioConfig c = BaseConfig(3);
  ScenarioResult legacy = RunScenario(c);
  c.hack_config.ack_policy.flush_window = SimTime::Millis(1);
  ScenarioResult batched = RunScenario(c);
  EXPECT_EQ(batched.crc_failures, 0u);
  uint64_t batches = 0;
  uint64_t acks = 0;
  for (const ClientResult& cr : batched.clients) {
    batches += cr.hack.ack_batches;
    acks += cr.hack.batched_acks;
  }
  EXPECT_GT(batches, 0u);
  EXPECT_GE(acks, batches);  // every release carries at least one ACK
  // Batches flush well inside the data sender's RTT, so aggregation must
  // not dent goodput materially (the bench gate pins >= at the paired-seed
  // level; this is the in-tree smoke version).
  EXPECT_GE(batched.aggregate_goodput_mbps,
            0.9 * legacy.aggregate_goodput_mbps);
}

TEST(HackBatchScenarioTest, PolicySurvivesChurnWithoutStrandingTimers) {
  // Station churn Stops and Resumes clients mid-batch: pending coalesced
  // timers belonging to a crashed station must neither fire into freed
  // state (ASan job) nor strand forever (watchdog arena audit, abort mode).
  ScenarioConfig c = BaseConfig(8);
  c.duration = SimTime::Millis(400);
  c.hack_config.ack_policy.flush_window = SimTime::Millis(1);
  c.fault_plan = FaultPlan::Churn(c.n_clients, c.duration);
  c.watchdog_interval = SimTime::Millis(10);
  ScenarioResult r = RunScenario(c);
  EXPECT_GT(r.fault.crashes, 0u);
  EXPECT_EQ(r.fault.joins, r.fault.crashes);
  EXPECT_EQ(r.watchdog.trips, 0u);
  EXPECT_EQ(r.crc_failures, 0u);
  EXPECT_GT(r.aggregate_goodput_mbps, 0.0);
}

}  // namespace
}  // namespace hacksim
