// Unit tests for the dense station addressing structures: MacAddress
// interning and the ActiveSlotRing service cursor, including a randomized
// equivalence check against the legacy round-robin vector scan the ring
// replaced (same picks, same cursor motion — the property the MAC's
// bit-identical-behaviour guarantee rests on).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/mac80211/station_table.h"
#include "src/sim/random.h"

namespace hacksim {
namespace {

TEST(StationTableTest, InternAssignsDenseIdsInFirstContactOrder) {
  StationTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Intern(MacAddress::ForStation(7)), 0u);
  EXPECT_EQ(table.Intern(MacAddress::ForStation(3)), 1u);
  EXPECT_EQ(table.Intern(MacAddress::ForStation(9)), 2u);
  // Re-interning is idempotent.
  EXPECT_EQ(table.Intern(MacAddress::ForStation(3)), 1u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(StationTableTest, FindDoesNotIntern) {
  StationTable table;
  EXPECT_EQ(table.Find(MacAddress::ForStation(1)), kInvalidStationId);
  EXPECT_EQ(table.size(), 0u);
  StationId id = table.Intern(MacAddress::ForStation(1));
  EXPECT_EQ(table.Find(MacAddress::ForStation(1)), id);
}

TEST(StationTableTest, AddressOfRoundTrips) {
  StationTable table;
  for (uint32_t i = 0; i < 300; ++i) {
    StationId id = table.Intern(MacAddress::ForStation(i * 17));
    EXPECT_EQ(table.AddressOf(id), MacAddress::ForStation(i * 17));
  }
}

TEST(ActiveSlotRingTest, EmptyRingNeverPicks) {
  ActiveSlotRing ring;
  size_t slot = 99;
  EXPECT_FALSE(ring.PickNext(&slot));
  ring.AddSlot();
  EXPECT_FALSE(ring.PickNext(&slot));
  EXPECT_TRUE(ring.Empty());
}

TEST(ActiveSlotRingTest, PicksCycleThroughActiveSlots) {
  ActiveSlotRing ring;
  for (int i = 0; i < 5; ++i) {
    ring.AddSlot();
  }
  ring.Set(1, true);
  ring.Set(3, true);
  size_t slot;
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 1u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 3u);
  ASSERT_TRUE(ring.PickNext(&slot));  // wraps
  EXPECT_EQ(slot, 1u);
  ring.Set(1, false);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 3u);
}

TEST(ActiveSlotRingTest, CursorSkipsIdleSlotsLikeTheLegacyScan) {
  ActiveSlotRing ring;
  for (int i = 0; i < 4; ++i) {
    ring.AddSlot();
  }
  // Legacy: pick 0, cursor -> 1; slots 1,2 idle, 3 active: pick 3,
  // cursor -> 0.
  ring.Set(0, true);
  ring.Set(3, true);
  size_t slot;
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 0u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 3u);
  EXPECT_EQ(ring.cursor(), 0u);  // (3 + 1) % 4
}

TEST(ActiveSlotRingTest, WorksAcrossWordAndSummaryBoundaries) {
  ActiveSlotRing ring;
  for (int i = 0; i < 5000; ++i) {
    ring.AddSlot();
  }
  ring.Set(63, true);
  ring.Set(64, true);    // word boundary
  ring.Set(4095, true);  // summary-word boundary
  ring.Set(4096, true);
  size_t slot;
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 63u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 64u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 4095u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 4096u);
  ASSERT_TRUE(ring.PickNext(&slot));  // wraps to the first active
  EXPECT_EQ(slot, 63u);
  EXPECT_EQ(ring.active_count(), 4u);
}

// Reference model: the legacy WifiMac::PickNextDest scan over a vector of
// destinations with a wrap-around cursor.
class LegacyRoundRobin {
 public:
  void AddSlot() { active_.push_back(false); }
  void Set(size_t slot, bool active) { active_[slot] = active; }
  std::optional<size_t> PickNext() {
    if (active_.empty()) {
      return std::nullopt;
    }
    for (size_t i = 0; i < active_.size(); ++i) {
      size_t idx = (next_ + i) % active_.size();
      if (active_[idx]) {
        next_ = (idx + 1) % active_.size();
        return idx;
      }
    }
    return std::nullopt;
  }

 private:
  std::vector<bool> active_;
  size_t next_ = 0;
};

TEST(ActiveSlotRingTest, RandomizedEquivalenceWithLegacyScan) {
  ActiveSlotRing ring;
  LegacyRoundRobin legacy;
  Random rng(1234);
  size_t slots = 0;
  for (int step = 0; step < 20000; ++step) {
    switch (rng.NextBounded(4)) {
      case 0:
        ring.AddSlot();
        legacy.AddSlot();
        ++slots;
        break;
      case 1:
        if (slots > 0) {
          size_t s = rng.NextBounded(static_cast<uint32_t>(slots));
          ring.Set(s, true);
          legacy.Set(s, true);
        }
        break;
      case 2:
        if (slots > 0) {
          size_t s = rng.NextBounded(static_cast<uint32_t>(slots));
          ring.Set(s, false);
          legacy.Set(s, false);
        }
        break;
      default: {
        size_t got = 0;
        bool ok = ring.PickNext(&got);
        std::optional<size_t> want = legacy.PickNext();
        ASSERT_EQ(ok, want.has_value()) << "step " << step;
        if (ok) {
          ASSERT_EQ(got, *want) << "step " << step;
        }
        break;
      }
    }
  }
}

}  // namespace
}  // namespace hacksim
