// Unit tests for the dense station addressing structures: MacAddress
// interning and the ActiveSlotRing service cursor, including a randomized
// equivalence check against the legacy round-robin vector scan the ring
// replaced (same picks, same cursor motion — the property the MAC's
// bit-identical-behaviour guarantee rests on).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "src/mac80211/station_table.h"
#include "src/sim/random.h"

namespace hacksim {
namespace {

TEST(StationTableTest, InternAssignsDenseIdsInFirstContactOrder) {
  StationTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Intern(MacAddress::ForStation(7)), 0u);
  EXPECT_EQ(table.Intern(MacAddress::ForStation(3)), 1u);
  EXPECT_EQ(table.Intern(MacAddress::ForStation(9)), 2u);
  // Re-interning is idempotent.
  EXPECT_EQ(table.Intern(MacAddress::ForStation(3)), 1u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(StationTableTest, FindDoesNotIntern) {
  StationTable table;
  EXPECT_EQ(table.Find(MacAddress::ForStation(1)), kInvalidStationId);
  EXPECT_EQ(table.size(), 0u);
  StationId id = table.Intern(MacAddress::ForStation(1));
  EXPECT_EQ(table.Find(MacAddress::ForStation(1)), id);
}

TEST(StationTableTest, AddressOfRoundTrips) {
  StationTable table;
  for (uint32_t i = 0; i < 300; ++i) {
    StationId id = table.Intern(MacAddress::ForStation(i * 17));
    EXPECT_EQ(table.AddressOf(id), MacAddress::ForStation(i * 17));
  }
}

TEST(StationTableTest, DisassociateRecyclesIdsLifo) {
  StationTable table;
  StationId a = table.Intern(MacAddress::ForStation(1));
  StationId b = table.Intern(MacAddress::ForStation(2));
  StationId c = table.Intern(MacAddress::ForStation(3));
  EXPECT_EQ(table.live_count(), 3u);

  table.Disassociate(MacAddress::ForStation(2));
  EXPECT_EQ(table.Find(MacAddress::ForStation(2)), kInvalidStationId);
  EXPECT_EQ(table.live_count(), 2u);
  // size() is the high-water mark: flat per-id vectors must not shrink.
  EXPECT_EQ(table.size(), 3u);

  // LIFO recycle: the next new address takes the freed id, and the dense
  // footprint does not grow.
  StationId d = table.Intern(MacAddress::ForStation(9));
  EXPECT_EQ(d, b);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.live_count(), 3u);
  EXPECT_EQ(table.AddressOf(d), MacAddress::ForStation(9));
  // Untouched stations keep their ids across the churn.
  EXPECT_EQ(table.Find(MacAddress::ForStation(1)), a);
  EXPECT_EQ(table.Find(MacAddress::ForStation(3)), c);

  // Re-associating the departed address is a fresh intern: new slot only
  // because none is free.
  EXPECT_EQ(table.Intern(MacAddress::ForStation(2)), 3u);
  EXPECT_EQ(table.size(), 4u);
}

TEST(StationTableTest, RandomizedChurnStaysDenseAndConsistent) {
  StationTable table;
  std::map<uint32_t, StationId> live;  // station number -> expected id
  Random rng(99);
  size_t high_water = 0;
  for (int step = 0; step < 5000; ++step) {
    uint32_t station = rng.NextBounded(64);
    MacAddress addr = MacAddress::ForStation(station);
    if (live.count(station) != 0 && rng.NextBool(0.5)) {
      table.Disassociate(addr);
      live.erase(station);
    } else {
      StationId id = table.Intern(addr);
      if (live.count(station) != 0) {
        ASSERT_EQ(id, live[station]) << "re-intern moved a live station";
      } else {
        // Ids stay dense: recycled or the next fresh index, never beyond
        // the high-water mark + 1.
        ASSERT_LE(id, high_water) << "step " << step;
        live[station] = id;
      }
    }
    high_water = std::max(high_water, table.size());
    ASSERT_EQ(table.live_count(), live.size());
    ASSERT_EQ(table.size(), high_water) << "flat vectors must not shrink";
  }
  // Full cross-check at the end: every live station finds its id and the
  // id maps back; ids are unique.
  std::map<StationId, uint32_t> by_id;
  for (const auto& [station, id] : live) {
    EXPECT_EQ(table.Find(MacAddress::ForStation(station)), id);
    EXPECT_EQ(table.AddressOf(id), MacAddress::ForStation(station));
    EXPECT_TRUE(by_id.emplace(id, station).second) << "duplicate id " << id;
  }
}

TEST(ActiveSlotRingTest, EmptyRingNeverPicks) {
  ActiveSlotRing ring;
  size_t slot = 99;
  EXPECT_FALSE(ring.PickNext(&slot));
  ring.AddSlot();
  EXPECT_FALSE(ring.PickNext(&slot));
  EXPECT_TRUE(ring.Empty());
}

TEST(ActiveSlotRingTest, PicksCycleThroughActiveSlots) {
  ActiveSlotRing ring;
  for (int i = 0; i < 5; ++i) {
    ring.AddSlot();
  }
  ring.Set(1, true);
  ring.Set(3, true);
  size_t slot;
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 1u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 3u);
  ASSERT_TRUE(ring.PickNext(&slot));  // wraps
  EXPECT_EQ(slot, 1u);
  ring.Set(1, false);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 3u);
}

TEST(ActiveSlotRingTest, CursorSkipsIdleSlotsLikeTheLegacyScan) {
  ActiveSlotRing ring;
  for (int i = 0; i < 4; ++i) {
    ring.AddSlot();
  }
  // Legacy: pick 0, cursor -> 1; slots 1,2 idle, 3 active: pick 3,
  // cursor -> 0.
  ring.Set(0, true);
  ring.Set(3, true);
  size_t slot;
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 0u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 3u);
  EXPECT_EQ(ring.cursor(), 0u);  // (3 + 1) % 4
}

TEST(ActiveSlotRingTest, WorksAcrossWordAndSummaryBoundaries) {
  ActiveSlotRing ring;
  for (int i = 0; i < 5000; ++i) {
    ring.AddSlot();
  }
  ring.Set(63, true);
  ring.Set(64, true);    // word boundary
  ring.Set(4095, true);  // summary-word boundary
  ring.Set(4096, true);
  size_t slot;
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 63u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 64u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 4095u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 4096u);
  ASSERT_TRUE(ring.PickNext(&slot));  // wraps to the first active
  EXPECT_EQ(slot, 63u);
  EXPECT_EQ(ring.active_count(), 4u);
}

TEST(ActiveSlotRingTest, ReleasedSlotsRecycleWithoutGrowingTheRing) {
  ActiveSlotRing ring;
  EXPECT_EQ(ring.AddSlot(), 0u);
  EXPECT_EQ(ring.AddSlot(), 1u);
  EXPECT_EQ(ring.AddSlot(), 2u);
  ring.Set(1, true);
  ring.Set(1, false);
  ring.ReleaseSlot(1);
  EXPECT_EQ(ring.size(), 3u);  // released, not shrunk: cursor math stable
  // LIFO recycle, and the recycled slot comes back inactive.
  EXPECT_EQ(ring.AddSlot(), 1u);
  EXPECT_FALSE(ring.Test(1));
  EXPECT_EQ(ring.size(), 3u);
  // With the pool drained, AddSlot appends again.
  EXPECT_EQ(ring.AddSlot(), 3u);
  EXPECT_EQ(ring.size(), 4u);
}

TEST(ActiveSlotRingTest, ReleasedSlotIsSkippedByThePick) {
  ActiveSlotRing ring;
  for (int i = 0; i < 3; ++i) {
    ring.AddSlot();
  }
  ring.Set(0, true);
  ring.Set(1, true);
  ring.Set(2, true);
  ring.Set(1, false);
  ring.ReleaseSlot(1);
  size_t slot;
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 0u);
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 2u);  // straight past the released slot
  ASSERT_TRUE(ring.PickNext(&slot));
  EXPECT_EQ(slot, 0u);
}

// Reference model: the legacy WifiMac::PickNextDest scan over a vector of
// destinations with a wrap-around cursor.
class LegacyRoundRobin {
 public:
  void AddSlot() { active_.push_back(false); }
  void Set(size_t slot, bool active) { active_[slot] = active; }
  std::optional<size_t> PickNext() {
    if (active_.empty()) {
      return std::nullopt;
    }
    for (size_t i = 0; i < active_.size(); ++i) {
      size_t idx = (next_ + i) % active_.size();
      if (active_[idx]) {
        next_ = (idx + 1) % active_.size();
        return idx;
      }
    }
    return std::nullopt;
  }

 private:
  std::vector<bool> active_;
  size_t next_ = 0;
};

TEST(ActiveSlotRingTest, RandomizedEquivalenceWithLegacyScan) {
  ActiveSlotRing ring;
  LegacyRoundRobin legacy;
  Random rng(1234);
  size_t slots = 0;
  for (int step = 0; step < 20000; ++step) {
    switch (rng.NextBounded(4)) {
      case 0:
        ring.AddSlot();
        legacy.AddSlot();
        ++slots;
        break;
      case 1:
        if (slots > 0) {
          size_t s = rng.NextBounded(static_cast<uint32_t>(slots));
          ring.Set(s, true);
          legacy.Set(s, true);
        }
        break;
      case 2:
        if (slots > 0) {
          size_t s = rng.NextBounded(static_cast<uint32_t>(slots));
          ring.Set(s, false);
          legacy.Set(s, false);
        }
        break;
      default: {
        size_t got = 0;
        bool ok = ring.PickNext(&got);
        std::optional<size_t> want = legacy.PickNext();
        ASSERT_EQ(ok, want.has_value()) << "step " << step;
        if (ok) {
          ASSERT_EQ(got, *want) << "step " << step;
        }
        break;
      }
    }
  }
}

// Same equivalence property with station churn in the op mix: slots are
// released (Disassociate) and recycled (a later join re-Adds them). In the
// legacy model a released slot is simply a destination that never becomes
// active again until the recycled AddSlot hands it back — the ring must
// pick and advance identically through arbitrary interleavings of that.
TEST(ActiveSlotRingTest, RandomizedEquivalenceUnderChurn) {
  ActiveSlotRing ring;
  LegacyRoundRobin legacy;
  Random rng(4321);
  // Per-slot lifecycle the driver tracks: live+active, live+idle, released.
  std::vector<char> active;
  std::vector<char> released;
  auto pick_slot_where = [&](auto pred) -> std::optional<size_t> {
    std::vector<size_t> candidates;
    for (size_t s = 0; s < active.size(); ++s) {
      if (pred(s)) {
        candidates.push_back(s);
      }
    }
    if (candidates.empty()) {
      return std::nullopt;
    }
    return candidates[rng.NextBounded(
        static_cast<uint32_t>(candidates.size()))];
  };
  for (int step = 0; step < 20000; ++step) {
    switch (rng.NextBounded(6)) {
      case 0: {  // join: recycled slot if any, else fresh append
        size_t slot = ring.AddSlot();
        if (slot == active.size()) {
          legacy.AddSlot();
          active.push_back(false);
          released.push_back(false);
        } else {
          ASSERT_TRUE(released[slot]) << "recycled a live slot";
          released[slot] = false;
          ASSERT_FALSE(ring.Test(slot)) << "recycled slot came back active";
        }
        break;
      }
      case 1: {  // backlog arrives
        if (auto s = pick_slot_where(
                [&](size_t i) { return !released[i] && !active[i]; })) {
          ring.Set(*s, true);
          legacy.Set(*s, true);
          active[*s] = true;
        }
        break;
      }
      case 2: {  // backlog drains
        if (auto s = pick_slot_where(
                [&](size_t i) { return !released[i] && active[i]; })) {
          ring.Set(*s, false);
          legacy.Set(*s, false);
          active[*s] = false;
        }
        break;
      }
      case 3: {  // leave: only an idle live slot can be released
        if (auto s = pick_slot_where(
                [&](size_t i) { return !released[i] && !active[i]; })) {
          ring.ReleaseSlot(*s);
          released[*s] = true;
          // Legacy: nothing — the slot just stays inactive forever.
        }
        break;
      }
      default: {
        size_t got = 0;
        bool ok = ring.PickNext(&got);
        std::optional<size_t> want = legacy.PickNext();
        ASSERT_EQ(ok, want.has_value()) << "step " << step;
        if (ok) {
          ASSERT_EQ(got, *want) << "step " << step;
        }
        break;
      }
    }
    ASSERT_EQ(ring.size(), active.size());
  }
}

}  // namespace
}  // namespace hacksim
