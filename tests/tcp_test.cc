// TCP unit tests over an in-memory pipe with controllable loss, delay and
// reordering — no 802.11 involved. Covers the handshake, slow start,
// delayed ACKs (the 2:1 ratio every capacity figure assumes), fast
// retransmit, SACK recovery, RTO backoff and completion.
#include <gtest/gtest.h>

#include <deque>

#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace hacksim {
namespace {

constexpr uint64_t kMss = 1460;

// Bidirectional pipe with per-direction delay and scripted or random loss.
class TcpPipe {
 public:
  explicit TcpPipe(uint64_t bytes, TcpConfig config = {})
      : flow_{Ipv4Address::FromOctets(10, 0, 0, 1),
              Ipv4Address::FromOctets(10, 0, 2, 1), 5000, 6000, kIpProtoTcp},
        sender(&sched, config, flow_,
               [this](Packet p) { Forward(std::move(p), /*to_receiver=*/true); },
               bytes),
        receiver(&sched, config, flow_, [this](Packet p) {
          Forward(std::move(p), /*to_receiver=*/false);
        }) {}

  void Forward(Packet p, bool to_receiver) {
    if (to_receiver) {
      ++data_sent;
      payload_sent += p.payload_bytes();
      if (drop_data && drop_data(p)) {
        return;
      }
    } else {
      ++acks_sent;
      if (drop_ack && drop_ack(p)) {
        return;
      }
    }
    sched.ScheduleIn(delay, [this, p = std::move(p), to_receiver]() {
      if (to_receiver) {
        receiver.OnPacket(p);
      } else {
        sender.OnPacket(p);
      }
    });
  }

  Scheduler sched;
  FiveTuple flow_;
  TcpSender sender;
  TcpReceiver receiver;
  SimTime delay = SimTime::Millis(5);
  std::function<bool(const Packet&)> drop_data;
  std::function<bool(const Packet&)> drop_ack;
  uint64_t data_sent = 0;
  uint64_t payload_sent = 0;
  uint64_t acks_sent = 0;
};

TEST(TcpTest, HandshakeEstablishesBothEnds) {
  TcpPipe pipe(0);
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Millis(100));
  EXPECT_TRUE(pipe.sender.established());
  EXPECT_TRUE(pipe.receiver.established());
}

TEST(TcpTest, TransfersExactByteCount) {
  TcpPipe pipe(1'000'000);
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(30));
  EXPECT_TRUE(pipe.sender.complete());
  EXPECT_EQ(pipe.receiver.total_delivered(), 1'000'000u);
}

TEST(TcpTest, NonMssAlignedTransfer) {
  TcpPipe pipe(12'345);
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(10));
  EXPECT_TRUE(pipe.sender.complete());
  EXPECT_EQ(pipe.receiver.total_delivered(), 12'345u);
}

TEST(TcpTest, CompletionCallbackFires) {
  TcpPipe pipe(100'000);
  bool done = false;
  pipe.sender.on_complete = [&] { done = true; };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(10));
  EXPECT_TRUE(done);
}

TEST(TcpTest, DelayedAckRatioIsTwoToOne) {
  // The paper's capacity analysis hinges on one TCP ACK per two segments.
  TcpPipe pipe(2'000'000);
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(30));
  ASSERT_TRUE(pipe.sender.complete());
  uint64_t segments = pipe.receiver.stats().segments_received;
  uint64_t acks = pipe.receiver.stats().acks_sent;
  EXPECT_NEAR(static_cast<double>(segments) / acks, 2.0, 0.1);
}

TEST(TcpTest, SlowStartDoublesWindow) {
  TcpPipe pipe(0);  // unbounded
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Millis(11));  // handshake done (~10 ms RTT)
  uint32_t w0 = pipe.sender.cwnd_bytes();
  pipe.sched.RunUntil(SimTime::Millis(21));  // one more RTT of ACKs
  uint32_t w1 = pipe.sender.cwnd_bytes();
  // With delayed ACKs, byte-counted slow start grows ~1.5x per RTT.
  EXPECT_GE(w1, w0 + w0 / 3);
}

TEST(TcpTest, SingleLossRecoversByFastRetransmit) {
  TcpPipe pipe(3'000'000);
  int dropped = 0;
  pipe.drop_data = [&](const Packet& p) {
    // Drop one specific segment once.
    if (dropped == 0 && p.tcp().seq > 200'000 && p.payload_bytes() > 0) {
      ++dropped;
      return true;
    }
    return false;
  };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(60));
  ASSERT_TRUE(pipe.sender.complete());
  EXPECT_EQ(pipe.sender.stats().fast_retransmits, 1u);
  EXPECT_EQ(pipe.sender.stats().timeouts, 0u);
  EXPECT_EQ(pipe.receiver.total_delivered(), 3'000'000u);
}

TEST(TcpTest, BurstLossRecoversWithoutTimeout) {
  // Drop a contiguous burst of 8 segments once; SACK-based recovery should
  // repair all holes without an RTO.
  TcpPipe pipe(3'000'000);
  int remaining = 8;
  bool armed = false;
  pipe.drop_data = [&](const Packet& p) {
    if (p.payload_bytes() == 0) {
      return false;
    }
    if (p.tcp().seq > 300'000 && !armed) {
      armed = true;
    }
    if (armed && remaining > 0 && p.tcp().seq > 300'000) {
      --remaining;
      return true;
    }
    return false;
  };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(60));
  ASSERT_TRUE(pipe.sender.complete());
  EXPECT_EQ(pipe.sender.stats().timeouts, 0u);
  EXPECT_EQ(pipe.receiver.total_delivered(), 3'000'000u);
}

TEST(TcpTest, TotalAckLossTriggersRtoAndRecovers) {
  // Blackout of the reverse path *after* the connection establishes: the
  // sender must RTO, then recover when ACKs flow again.
  TcpPipe pipe(200'000);
  bool blackout = false;
  pipe.sched.ScheduleAt(SimTime::Millis(15), [&] { blackout = true; });
  pipe.sched.ScheduleAt(SimTime::Millis(600), [&] { blackout = false; });
  pipe.drop_ack = [&](const Packet&) { return blackout; };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(60));
  EXPECT_TRUE(pipe.sender.complete());
  EXPECT_GE(pipe.sender.stats().timeouts, 1u);
}

TEST(TcpTest, RandomLossStillCompletes) {
  for (uint64_t seed : {11ull, 12ull, 13ull}) {
    TcpPipe pipe(1'000'000);
    Random rng(seed);
    pipe.drop_data = [&rng](const Packet& p) {
      return p.payload_bytes() > 0 && rng.NextBool(0.02);
    };
    pipe.sender.Start();
    pipe.sched.RunUntil(SimTime::Seconds(120));
    EXPECT_TRUE(pipe.sender.complete()) << "seed " << seed;
    EXPECT_EQ(pipe.receiver.total_delivered(), 1'000'000u);
  }
}

TEST(TcpTest, DupacksAreImmediateNotDelayed) {
  TcpPipe pipe(1'000'000);
  bool dropped_one = false;
  pipe.drop_data = [&](const Packet& p) {
    if (!dropped_one && p.payload_bytes() > 0 && p.tcp().seq > 100'000) {
      dropped_one = true;
      return true;
    }
    return false;
  };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(30));
  ASSERT_TRUE(pipe.sender.complete());
  // The receiver must have emitted out-of-order-triggered immediate ACKs.
  EXPECT_GT(pipe.receiver.stats().dupacks_sent, 0u);
  EXPECT_GT(pipe.sender.stats().dupacks_received, 0u);
}

TEST(TcpTest, ReceiverGeneratesSackBlocks) {
  TcpPipe pipe(1'000'000);
  bool dropped_one = false;
  bool saw_sack = false;
  pipe.drop_data = [&](const Packet& p) {
    if (!dropped_one && p.payload_bytes() > 0 && p.tcp().seq > 100'000) {
      dropped_one = true;
      return true;
    }
    return false;
  };
  pipe.drop_ack = [&](const Packet& p) {
    saw_sack = saw_sack || !p.tcp().sack_blocks.empty();
    return false;
  };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(30));
  EXPECT_TRUE(saw_sack);
}

TEST(TcpTest, TimestampsEchoed) {
  TcpPipe pipe(100'000);
  bool checked = false;
  pipe.drop_ack = [&](const Packet& p) {
    if (p.tcp().timestamps.has_value() && p.tcp().timestamps->tsecr != 0) {
      checked = true;
    }
    return false;
  };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(10));
  EXPECT_TRUE(checked);
  EXPECT_GT(pipe.sender.srtt().ns(), 0);
  // RTT estimate should reflect the 2x5 ms pipe.
  EXPECT_NEAR(pipe.sender.srtt().ToMillisF(), 10.0, 5.0);
}

TEST(TcpTest, ReceiverWindowLimitsFlight) {
  TcpConfig config;
  config.receive_window_bytes = 16 * 1460;  // 16 segments
  TcpPipe pipe(0, config);
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Millis(200));
  // cwnd may grow, but flight can never exceed the advertised window.
  uint64_t outstanding = pipe.payload_sent - pipe.receiver.total_delivered();
  EXPECT_LE(outstanding, 17 * kMss);  // one segment of slack
}

TEST(TcpTest, SynLossRecovered) {
  TcpPipe pipe(50'000);
  int drops = 1;
  pipe.drop_data = [&](const Packet& p) {
    if (p.tcp().flag_syn && drops > 0) {
      --drops;
      return true;
    }
    return false;
  };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(30));
  EXPECT_TRUE(pipe.sender.complete());
}

TEST(TcpTest, WindowOverrideChangesAdvertisedWindow) {
  TcpPipe pipe(500'000);
  std::set<uint16_t> windows;
  pipe.receiver.window_override = [](uint64_t idx) -> uint32_t {
    return idx % 2 == 0 ? 4 * 1024 * 1024 : 2 * 1024 * 1024;
  };
  pipe.drop_ack = [&](const Packet& p) {
    if (p.tcp().IsPureAckShape()) {
      windows.insert(p.tcp().window);
    }
    return false;
  };
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(30));
  EXPECT_GE(windows.size(), 2u);
}

// Parameterized sweep: transfers of many sizes complete exactly.
class TcpSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TcpSizeSweep, CompletesExactly) {
  TcpPipe pipe(GetParam());
  pipe.sender.Start();
  pipe.sched.RunUntil(SimTime::Seconds(60));
  EXPECT_TRUE(pipe.sender.complete());
  EXPECT_EQ(pipe.receiver.total_delivered(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpSizeSweep,
                         ::testing::Values(1, 1459, 1460, 1461, 14600,
                                           100'000, 1'000'000));

}  // namespace
}  // namespace hacksim
