// Unit tests: packet construction, size accounting, flow extraction, the
// move guarantees the zero-copy MAC hot path relies on, and the
// arena-pooled header storage's allocation-free steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <new>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/packet/packet.h"

// Global allocation counter backing the steady-state test below. Overriding
// operator new in the test binary counts every heap allocation the packet
// builders (and everything else) perform. Atomic: the thread-clean slab
// test below allocates from several threads at once.
namespace {
std::atomic<size_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_heap_allocs;
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hacksim {
namespace {

Packet MakeDataSegment(uint32_t payload) {
  TcpHeader tcp;
  tcp.src_port = 5000;
  tcp.dst_port = 6000;
  tcp.seq = 1;
  tcp.ack = 1;
  tcp.flag_ack = true;
  tcp.window = 1000;
  tcp.timestamps = TcpTimestamps{42, 7};
  return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 0, 1),
                         Ipv4Address::FromOctets(10, 0, 2, 1), tcp, payload);
}

TEST(PacketTest, TcpDataSizeIsHeadersPlusPayload) {
  Packet p = MakeDataSegment(1460);
  // 20 IP + 32 TCP (with timestamps) + 1460 payload = 1512.
  EXPECT_EQ(p.SizeBytes(), 1512u);
  EXPECT_EQ(p.ip().total_length, 1512u);
}

TEST(PacketTest, PureAckIs52Bytes) {
  // The paper's Table 2: 9060 ACKs, 471120 bytes -> exactly 52 B per ACK.
  Packet p = MakeDataSegment(0);
  EXPECT_EQ(p.SizeBytes(), 52u);
  EXPECT_TRUE(p.IsPureTcpAck());
}

TEST(PacketTest, DataSegmentIsNotPureAck) {
  EXPECT_FALSE(MakeDataSegment(1460).IsPureTcpAck());
}

TEST(PacketTest, SynIsNotPureAck) {
  TcpHeader tcp;
  tcp.flag_syn = true;
  tcp.flag_ack = true;
  Packet p = Packet::MakeTcp(Ipv4Address::FromOctets(1, 1, 1, 1),
                             Ipv4Address::FromOctets(2, 2, 2, 2), tcp, 0);
  EXPECT_FALSE(p.IsPureTcpAck());
}

TEST(PacketTest, UdpSize) {
  Packet p = Packet::MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                             Ipv4Address::FromOctets(10, 0, 2, 1), 7, 9,
                             1472);
  // 20 IP + 8 UDP + 1472 = 1500 (a full MTU datagram).
  EXPECT_EQ(p.SizeBytes(), 1500u);
  EXPECT_FALSE(p.IsPureTcpAck());
}

TEST(PacketTest, FlowExtraction) {
  Packet p = MakeDataSegment(100);
  FiveTuple f = p.Flow();
  EXPECT_EQ(f.src_ip, Ipv4Address::FromOctets(10, 0, 0, 1));
  EXPECT_EQ(f.dst_ip, Ipv4Address::FromOctets(10, 0, 2, 1));
  EXPECT_EQ(f.src_port, 5000);
  EXPECT_EQ(f.dst_port, 6000);
  EXPECT_EQ(f.protocol, kIpProtoTcp);
}

TEST(PacketTest, UidsAreUnique) {
  Packet a = MakeDataSegment(1);
  Packet b = MakeDataSegment(1);
  EXPECT_NE(a.uid(), b.uid());
  Packet copy = a;  // copies share the uid (same logical packet)
  EXPECT_EQ(copy.uid(), a.uid());
}

TEST(PacketTest, MovesAreNoexcept) {
  // Containers (std::deque/vector of Packet) relocate by move only when the
  // move operations are noexcept.
  static_assert(std::is_nothrow_move_constructible_v<Packet>);
  static_assert(std::is_nothrow_move_assignable_v<Packet>);
}

TEST(PacketTest, QueueHandoffMovesHeaderStorageWithoutReallocation) {
  // The hot path hands packets device -> agent -> MAC queue -> frame by
  // move. A moved Packet must carry its header allocations (here: the SACK
  // block vector) pointer-for-pointer — no reallocation, no copy.
  TcpHeader tcp;
  tcp.flag_ack = true;
  tcp.timestamps = TcpTimestamps{1, 2};
  tcp.sack_blocks = {{100, 200}, {300, 400}};
  Packet p = Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                             Ipv4Address::FromOctets(10, 0, 0, 1),
                             std::move(tcp), 0);
  const SackBlock* sack_data = p.tcp().sack_blocks.data();
  uint64_t uid = p.uid();

  std::deque<Packet> queue;
  queue.push_back(std::move(p));           // enqueue (WifiMac::Enqueue)
  Packet handed = std::move(queue.front()); // dequeue into a frame
  queue.pop_front();

  EXPECT_EQ(handed.uid(), uid);
  EXPECT_EQ(handed.tcp().sack_blocks.data(), sack_data)
      << "queue handoff reallocated header storage";
  EXPECT_EQ(handed.tcp().sack_blocks.size(), 2u);

  // Copies, by contrast, must deep-copy (retention semantics).
  Packet copy = handed;
  EXPECT_NE(copy.tcp().sack_blocks.data(), handed.tcp().sack_blocks.data());
  EXPECT_EQ(copy.uid(), handed.uid());  // same logical packet
}

TEST(PacketTest, SteadyStateConstructionIsAllocationFree) {
  // Header storage comes from a free-list slab and SACK blocks are inline,
  // so once the pool is warm, MakeTcp / MakeUdp (including timestamped,
  // SACK-carrying ACKs) and copies/destruction perform zero heap
  // allocations.
  auto make_sacked_ack = [] {
    TcpHeader tcp;
    tcp.flag_ack = true;
    tcp.timestamps = TcpTimestamps{1, 2};
    tcp.sack_blocks = {{100, 200}, {300, 400}, {500, 600}};
    return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                           Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
  };
  // Warm the pool past the working-set size used below.
  {
    std::deque<Packet> warm;
    for (int i = 0; i < 64; ++i) {
      warm.push_back(make_sacked_ack());
      warm.push_back(Packet::MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                                     Ipv4Address::FromOctets(10, 0, 2, 1), 7,
                                     9, 1472));
    }
  }

  size_t before = g_heap_allocs.load();
  for (int round = 0; round < 100; ++round) {
    Packet a = make_sacked_ack();
    Packet b = Packet::MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                               Ipv4Address::FromOctets(10, 0, 2, 1), 7, 9,
                               1472);
    Packet kept = a;             // retention copy (MAC retransmit buffer)
    Packet moved = std::move(a); // queue handoff
    EXPECT_EQ(moved.tcp().sack_blocks.size(), 3u);
    EXPECT_EQ(kept.uid(), moved.uid());
    EXPECT_EQ(b.SizeBytes(), 1500u);
  }
  EXPECT_EQ(g_heap_allocs.load(), before)
      << "steady-state packet construction hit the heap";
}

TEST(PacketTest, HeaderSlabIsThreadClean) {
  // The header free list and uid counter are thread_local: N threads
  // building, copying, moving and destroying packets concurrently must
  // never touch each other's slabs. Run under ASan/TSan (CI does both)
  // this pins the campaign engine's core isolation claim; the slab
  // registry also keeps worker-thread slabs reachable after join, so
  // LeakSanitizer stays quiet.
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::vector<uint64_t>> uids(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &uids] {
      std::deque<Packet> queue;
      for (int i = 0; i < kRounds; ++i) {
        Packet a = MakeDataSegment(1460);
        Packet ack = MakeDataSegment(0);
        Packet kept = a;              // retention copy
        Packet moved = std::move(a);  // queue handoff
        if (moved.SizeBytes() != 1512u || !ack.IsPureTcpAck() ||
            kept.uid() != moved.uid()) {
          return;  // leave uids[t] short -> the main-thread checks fail
        }
        uids[t].push_back(moved.uid());
        uids[t].push_back(ack.uid());
        queue.push_back(std::move(moved));
        if (queue.size() > 16) {
          queue.pop_front();
        }
      }
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }
  // Every thread completed every round, and uids never collide within a
  // thread (they are only ever compared within one run — i.e. one thread).
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(uids[t].size(), 2u * kRounds) << "thread " << t << " bailed";
    std::set<uint64_t> unique(uids[t].begin(), uids[t].end());
    EXPECT_EQ(unique.size(), uids[t].size())
        << "uid collision within thread " << t;
  }
}

TEST(PacketTest, SackGrowsAckSize) {
  TcpHeader tcp;
  tcp.flag_ack = true;
  tcp.timestamps = TcpTimestamps{1, 2};
  tcp.sack_blocks = {{100, 200}};
  Packet p = Packet::MakeTcp(Ipv4Address::FromOctets(1, 1, 1, 1),
                             Ipv4Address::FromOctets(2, 2, 2, 2), tcp, 0);
  // 20 IP + 32 (base+ts) + 12 (2 NOP + 2 + 8) = 64.
  EXPECT_EQ(p.SizeBytes(), 64u);
  EXPECT_TRUE(p.IsPureTcpAck());  // dupacks with SACK are still pure ACKs
}

}  // namespace
}  // namespace hacksim
