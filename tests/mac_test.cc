// MAC-layer tests: two stations on a clean or lossy channel exercising
// stop-and-wait exchanges (802.11a), A-MPDU + Block ACK (802.11n), retry
// and BAR recovery, RTS/CTS virtual carrier sense (threshold boundary, CTS
// timeout -> backoff re-entry, NAV from overheard RTS), MORE DATA and SYNC
// bits, NAV, and in-order delivery.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/mac80211/wifi_mac.h"
#include "src/phy80211/wifi_phy.h"

namespace hacksim {
namespace {

Packet MakeUdpPacket(uint32_t payload, uint16_t dst_port = 9) {
  return Packet::MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                         Ipv4Address::FromOctets(10, 0, 2, 1), 7, dst_port,
                         payload);
}

Packet MakeTcpAckPacket() {
  TcpHeader tcp;
  tcp.src_port = 6000;
  tcp.dst_port = 5000;
  tcp.flag_ack = true;
  tcp.window = 1000;
  tcp.timestamps = TcpTimestamps{1, 2};
  return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                         Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
}

struct MacPair {
  explicit MacPair(WifiStandard standard, double rate_mbps,
                   double loss_at_b = 0.0)
      : channel(&sched) {
    WifiMacConfig cfg;
    cfg.standard = standard;
    cfg.data_mode = ModeForRate(standard == WifiStandard::k80211a
                                    ? Modes80211a()
                                    : Modes80211n(),
                                rate_mbps);
    phy_a = std::make_unique<WifiPhy>(&sched, Random(1));
    phy_b = std::make_unique<WifiPhy>(&sched, Random(2));
    phy_a->AttachTo(&channel);
    phy_b->AttachTo(&channel);
    phy_a->set_position({0, 0});
    phy_b->set_position({5, 0});
    if (loss_at_b > 0) {
      phy_b->set_loss_model(
          std::make_unique<BernoulliLossModel>(loss_at_b, 0.0));
    }
    mac_a = std::make_unique<WifiMac>(&sched, phy_a.get(),
                                      MacAddress::ForStation(0), cfg,
                                      Random(11));
    mac_b = std::make_unique<WifiMac>(&sched, phy_b.get(),
                                      MacAddress::ForStation(1), cfg,
                                      Random(12));
    mac_b->on_rx_packet = [this](Packet p, MacAddress) {
      received_at_b.push_back(std::move(p));
    };
    mac_a->on_rx_packet = [this](Packet p, MacAddress) {
      received_at_a.push_back(std::move(p));
    };
  }

  Scheduler sched;
  WirelessChannel channel;
  std::unique_ptr<WifiPhy> phy_a, phy_b;
  std::unique_ptr<WifiMac> mac_a, mac_b;
  std::vector<Packet> received_at_a, received_at_b;
};

TEST(MacTest, SingleFrameDelivery80211a) {
  MacPair pair(WifiStandard::k80211a, 54);
  pair.mac_a->Enqueue(MakeUdpPacket(1000), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(5));
  ASSERT_EQ(pair.received_at_b.size(), 1u);
  EXPECT_EQ(pair.received_at_b[0].payload_bytes(), 1000u);
  EXPECT_EQ(pair.mac_a->stats().mpdus_delivered_first_try, 1u);
  EXPECT_EQ(pair.mac_b->stats().acks_sent, 1u);
}

TEST(MacTest, ManyFramesInOrder80211a) {
  MacPair pair(WifiStandard::k80211a, 54);
  for (uint32_t i = 0; i < 50; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(100 + i), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(100));
  ASSERT_EQ(pair.received_at_b.size(), 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(pair.received_at_b[i].payload_bytes(), 100 + i);
  }
}

TEST(MacTest, RetriesRecoverLoss80211a) {
  MacPair pair(WifiStandard::k80211a, 54, /*loss_at_b=*/0.3);
  for (uint32_t i = 0; i < 50; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(500), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(500));
  // With a 0.3 loss rate and 7 retries, essentially everything arrives.
  EXPECT_EQ(pair.received_at_b.size(), 50u);
  EXPECT_GT(pair.mac_a->stats().mpdus_delivered_retried, 0u);
  EXPECT_GT(pair.mac_a->stats().response_timeouts, 0u);
  // No duplicate deliveries despite retransmissions.
  EXPECT_EQ(pair.mac_b->stats().data_mpdus_received -
                pair.mac_b->stats().duplicate_mpdus_discarded,
            50u);
}

TEST(MacTest, AmpduAggregates80211n) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 42; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(pair.received_at_b.size(), 42u);
  // All 42 should fit one A-MPDU: a single PPDU and a single Block ACK.
  EXPECT_EQ(pair.mac_a->stats().ppdus_sent, 1u);
  EXPECT_EQ(pair.mac_b->stats().block_acks_sent, 1u);
}

TEST(MacTest, AmpduRespects64MpduLimitForSmallFrames) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 100; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(40), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(pair.received_at_b.size(), 100u);
  // 64-MPDU cap: at least two PPDUs needed.
  EXPECT_GE(pair.mac_a->stats().ppdus_sent, 2u);
}

TEST(MacTest, TxopLimitsAmpduAtLowRates) {
  // At 15 Mbps a 1460 B MPDU lasts ~840 us: only ~4 fit in a 4 ms TXOP.
  MacPair pair(WifiStandard::k80211n, 15);
  for (uint32_t i = 0; i < 12; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(50));
  EXPECT_EQ(pair.received_at_b.size(), 12u);
  EXPECT_GE(pair.mac_a->stats().ppdus_sent, 3u);
}

TEST(MacTest, PartialAmpduLossRetransmitsOnlyMissing) {
  MacPair pair(WifiStandard::k80211n, 150, /*loss_at_b=*/0.2);
  for (uint32_t i = 0; i < 42; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1000 + i), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(200));
  ASSERT_EQ(pair.received_at_b.size(), 42u);
  // In-order delivery despite partial-batch losses (reorder buffer works).
  for (uint32_t i = 0; i < 42; ++i) {
    EXPECT_EQ(pair.received_at_b[i].payload_bytes(), 1000 + i);
  }
  EXPECT_GT(pair.mac_a->stats().mpdus_delivered_retried, 0u);
  uint64_t attempts = pair.mac_a->stats().mpdu_tx_attempts;
  // Selective retransmission: far fewer attempts than full-batch repeats.
  EXPECT_LT(attempts, 42u * 3);
}

TEST(MacTest, HeavyLossDropsAfterRetryLimit) {
  MacPair pair(WifiStandard::k80211n, 150, /*loss_at_b=*/0.95);
  for (uint32_t i = 0; i < 10; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1000), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Seconds(2));
  EXPECT_GT(pair.mac_a->stats().mpdus_dropped_retry_limit, 0u);
}

TEST(MacTest, QueueLimitDropsTail) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 200; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  // Default per-dest limit is 126: the rest dropped at enqueue.
  EXPECT_EQ(pair.mac_a->stats().queue_drops, 200u - 126u);
}

TEST(MacTest, RemoveQueuedPullsMatchingPackets) {
  MacPair pair(WifiStandard::k80211n, 150);
  // Block the medium so nothing transmits while we manipulate the queue.
  Packet target = MakeUdpPacket(777);
  uint64_t uid = target.uid();
  pair.mac_a->Enqueue(MakeUdpPacket(1), MacAddress::ForStation(1));
  pair.mac_a->Enqueue(std::move(target), MacAddress::ForStation(1));
  pair.mac_a->Enqueue(MakeUdpPacket(3), MacAddress::ForStation(1));
  size_t removed = pair.mac_a->RemoveQueued(
      MacAddress::ForStation(1),
      [uid](const Packet& p) { return p.uid() == uid; });
  EXPECT_EQ(removed, 1u);
}

// Hook recorder for MORE DATA / SYNC observation.
class RecordingHooks : public HackHooks {
 public:
  void OnDataPpdu(MacAddress, bool aggregated, bool has_new, bool more_data,
                  bool sync) override {
    ppdus.push_back({aggregated, has_new, more_data, sync});
  }
  std::vector<uint8_t> BuildAckPayload(MacAddress) override {
    return payload_to_attach;
  }
  void OnAckPayload(MacAddress, std::span<const uint8_t> payload) override {
    received_payloads.emplace_back(payload.begin(), payload.end());
  }

  struct PpduInfo {
    bool aggregated;
    bool has_new;
    bool more_data;
    bool sync;
  };
  std::vector<PpduInfo> ppdus;
  std::vector<uint8_t> payload_to_attach;
  std::vector<std::vector<uint8_t>> received_payloads;
};

TEST(MacTest, MoreDataBitTracksQueueDepth) {
  MacPair pair(WifiStandard::k80211n, 150);
  RecordingHooks hooks;
  pair.mac_b->set_hack_hooks(&hooks);
  // 50 packets -> batch 1 of 42 (more data), batch 2 of 8 (no more data).
  for (uint32_t i = 0; i < 50; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(50));
  ASSERT_EQ(hooks.ppdus.size(), 2u);
  EXPECT_TRUE(hooks.ppdus[0].more_data);
  EXPECT_FALSE(hooks.ppdus[1].more_data);
  EXPECT_TRUE(hooks.ppdus[0].aggregated);
}

TEST(MacTest, MoreDataBitOnSingleMpdus) {
  MacPair pair(WifiStandard::k80211a, 54);
  RecordingHooks hooks;
  pair.mac_b->set_hack_hooks(&hooks);
  for (uint32_t i = 0; i < 3; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(100), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(10));
  ASSERT_EQ(hooks.ppdus.size(), 3u);
  EXPECT_TRUE(hooks.ppdus[0].more_data);
  EXPECT_TRUE(hooks.ppdus[1].more_data);
  EXPECT_FALSE(hooks.ppdus[2].more_data);
  EXPECT_FALSE(hooks.ppdus[0].aggregated);
  EXPECT_TRUE(hooks.ppdus[0].has_new);
}

TEST(MacTest, HackPayloadRidesBlockAck) {
  MacPair pair(WifiStandard::k80211n, 150);
  RecordingHooks client_hooks;
  RecordingHooks ap_hooks;
  pair.mac_b->set_hack_hooks(&client_hooks);
  pair.mac_a->set_hack_hooks(&ap_hooks);
  client_hooks.payload_to_attach = {0xDE, 0xAD, 0xBE, 0xEF};
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(10));
  ASSERT_EQ(ap_hooks.received_payloads.size(), 1u);
  EXPECT_EQ(ap_hooks.received_payloads[0],
            (std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_EQ(pair.mac_b->stats().hack_payloads_sent, 1u);
}

TEST(MacTest, HackPayloadRidesSingleAck80211a) {
  MacPair pair(WifiStandard::k80211a, 54);
  RecordingHooks client_hooks;
  RecordingHooks ap_hooks;
  pair.mac_b->set_hack_hooks(&client_hooks);
  pair.mac_a->set_hack_hooks(&ap_hooks);
  client_hooks.payload_to_attach = {1, 2, 3};
  pair.mac_a->Enqueue(MakeUdpPacket(100), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(10));
  ASSERT_EQ(ap_hooks.received_payloads.size(), 1u);
}

TEST(MacTest, SyncBitSetAfterBarGiveUp) {
  // Client fully deaf (data AND control 100% lost at B): the AP's batch
  // elicits no BA; BARs fail; after the BAR retry limit the AP gives up and
  // marks SYNC. Then we heal the channel and check the next batch carries
  // SYNC.
  MacPair pair(WifiStandard::k80211n, 150);
  pair.phy_b->set_loss_model(std::make_unique<BernoulliLossModel>(1.0, 1.0));
  RecordingHooks hooks;
  pair.mac_b->set_hack_hooks(&hooks);
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(200));
  EXPECT_GT(pair.mac_a->stats().bars_sent, 0u);
  EXPECT_GT(pair.mac_a->stats().ba_agreement_give_ups, 0u);
  // Heal and send another packet: SYNC must be set on it.
  pair.phy_b->set_loss_model(std::make_unique<NoLossModel>());
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(400));
  ASSERT_FALSE(hooks.ppdus.empty());
  EXPECT_TRUE(hooks.ppdus.back().sync);
  EXPECT_GT(pair.mac_a->stats().batches_sent_with_sync, 0u);
  // The SYNC batch must also re-sync the reorder window: B's window was
  // still waiting on the dropped seq 0, and without the flush this (and
  // every following) in-window MPDU would be LL-acked but never delivered
  // upward. Pinned regression for the BAR give-up window-stall fix.
  EXPECT_EQ(pair.received_at_b.size(), 1u);
  // After the client's BA arrives, SYNC clears for subsequent batches.
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(600));
  EXPECT_FALSE(hooks.ppdus.back().sync);
  EXPECT_EQ(pair.received_at_b.size(), 2u);
}

TEST(MacTest, BidirectionalTrafficBothDeliver) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 30; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
    pair.mac_b->Enqueue(MakeTcpAckPacket(), MacAddress::ForStation(0));
  }
  pair.sched.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(pair.received_at_b.size(), 30u);
  EXPECT_EQ(pair.received_at_a.size(), 30u);
}

TEST(MacTest, TcpAckStatsAccounting) {
  MacPair pair(WifiStandard::k80211a, 54);
  pair.mac_b->Enqueue(MakeTcpAckPacket(), MacAddress::ForStation(0));
  pair.sched.RunUntil(SimTime::Millis(10));
  ASSERT_EQ(pair.received_at_a.size(), 1u);
  const MacStats& s = pair.mac_b->stats();
  EXPECT_EQ(s.tcp_ack_frames_sent, 1u);
  EXPECT_EQ(s.tcp_ack_bytes_sent, 52u);
  // Payload airtime: 52 B at 54 Mbps = 7.7 us (Table 3's per-ACK figure).
  EXPECT_NEAR(static_cast<double>(s.tcp_ack_payload_airtime_ns), 7703.0,
              10.0);
  EXPECT_GT(s.tcp_ack_channel_overhead_ns, 0);
  EXPECT_GT(s.tcp_ack_ll_ack_overhead_ns, 0);
}

TEST(MacTest, SequenceWrapWithSteadyFeedCrossesModulo) {
  // Steady feed below the queue limit so nothing drops: > 4096 MPDUs flow
  // through one TX state, forcing win_start/next_seq across the 12-bit
  // sequence modulo — the outstanding/reorder rings and received bitmap
  // must keep delivering exactly once, in order, across the wrap.
  MacPair pair(WifiStandard::k80211n, 150);
  constexpr uint32_t kPackets = 4300;
  uint32_t fed = 0;
  // Feed 40 packets per millisecond — below the drain rate at 150 Mbps for
  // 200-byte payloads, so the per-dest queue never overflows.
  std::function<void()> feed = [&]() {
    for (uint32_t i = 0; i < 40 && fed < kPackets; ++i, ++fed) {
      pair.mac_a->Enqueue(MakeUdpPacket(200), MacAddress::ForStation(1));
    }
    if (fed < kPackets) {
      pair.sched.ScheduleIn(SimTime::Millis(1), feed);
    }
  };
  feed();
  pair.sched.RunUntil(SimTime::Seconds(2));
  EXPECT_EQ(pair.mac_a->stats().queue_drops, 0u);
  EXPECT_EQ(pair.received_at_b.size(), kPackets);
}

TEST(MacTest, UnknownDestinationQueriesAreNoOps) {
  MacPair pair(WifiStandard::k80211n, 150);
  MacAddress stranger = MacAddress::ForStation(42);
  EXPECT_EQ(pair.mac_a->QueueDepth(stranger), 0u);
  EXPECT_EQ(pair.mac_a->RemoveQueued(stranger,
                                     [](const Packet&) { return true; }),
            0u);
}

TEST(MacTest, AssociatePreInternsWithoutCreatingWork) {
  MacPair pair(WifiStandard::k80211n, 150);
  pair.mac_a->Associate(MacAddress::ForStation(1));
  pair.mac_a->Associate(MacAddress::ForStation(9));
  EXPECT_EQ(pair.mac_a->station_count(), 2u);
  // Association alone must not schedule transmissions.
  pair.sched.RunUntil(SimTime::Millis(5));
  EXPECT_EQ(pair.mac_a->stats().ppdus_sent, 0u);
  // Traffic to an associated peer still flows.
  pair.mac_a->Enqueue(MakeUdpPacket(123), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(20));
  ASSERT_EQ(pair.received_at_b.size(), 1u);
  EXPECT_EQ(pair.mac_a->station_count(), 2u);
}

// A sender MAC restart at a small sequence number: the receiver's reorder
// window sits near the stream head, so the restarted peer's fresh seq 0
// lands in the duplicate-discard zone. Reassociation (the receiver's
// Associate toward the peer) must tear the stale window down so the new
// stream flows instead of blackholing.
TEST(MacTest, ReassociationAfterPeerRestartResetsRxWindow) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 100; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(200 + i), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(50));
  ASSERT_EQ(pair.received_at_b.size(), 100u);

  // A's MAC "restarts": drop all state toward B, then re-associate both
  // ways (what the scenario layer does on an AP restart).
  pair.mac_a->Disassociate(MacAddress::ForStation(1));
  pair.mac_a->Associate(MacAddress::ForStation(1));
  pair.mac_b->Associate(MacAddress::ForStation(0));
  for (uint32_t i = 0; i < 50; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(500 + i), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(100));
  // Everything after the restart is delivered in order from seq 0; no
  // hard-resync needed because reassociation already reset the window.
  ASSERT_EQ(pair.received_at_b.size(), 150u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(pair.received_at_b[100 + i].payload_bytes(), 500 + i);
  }
  EXPECT_EQ(pair.mac_b->stats().rx_window_resyncs, 0u);
  EXPECT_EQ(pair.mac_b->stats().duplicate_mpdus_discarded, 0u);
}

// The same restart *without* the receiver hearing about it, at a sequence
// number far past the window: the receiver must detect the impossible
// backward jump (> 4x the A-MPDU window) and hard-resync instead of
// discarding the restarted peer's stream as duplicates forever.
TEST(MacTest, SilentPeerRestartTriggersRxWindowResync) {
  MacPair pair(WifiStandard::k80211n, 150);
  // Paced batches: a single 300-deep burst would overflow the drop-tail
  // queue; what matters is only that B's window advances past 256.
  for (uint32_t batch = 0; batch < 6; ++batch) {
    for (uint32_t i = 0; i < 50; ++i) {
      pair.mac_a->Enqueue(MakeUdpPacket(1000), MacAddress::ForStation(1));
    }
    pair.sched.RunUntil(SimTime::Millis(20 * (batch + 1)));
  }
  ASSERT_EQ(pair.received_at_b.size(), 300u);

  // Silent restart: B keeps its reorder window at ~300 while A's fresh
  // TxState restarts the stream at seq 0 — 300 behind, far outside any
  // legitimate retransmission lag.
  pair.mac_a->Disassociate(MacAddress::ForStation(1));
  for (uint32_t i = 0; i < 50; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(700 + i), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(200));
  ASSERT_EQ(pair.received_at_b.size(), 350u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(pair.received_at_b[300 + i].payload_bytes(), 700 + i);
  }
  EXPECT_EQ(pair.mac_b->stats().rx_window_resyncs, 1u);
}

// Disassociate returns the peer's dense id to the recycle pool; the next
// new peer takes it over. The recycled id must start from a clean TX seq
// ring and scoreboard — nothing of the departed station's stream may leak
// into the successor's.
TEST(MacTest, RecycledStationIdStartsWithFreshSeqState) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 100; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1000), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(50));
  ASSERT_EQ(pair.received_at_b.size(), 100u);
  ASSERT_EQ(pair.mac_a->station_count(), 1u);

  // B leaves and rejoins: the fresh association must take the recycled id
  // (station_count stays flat — the dense footprint tracks live members).
  pair.mac_a->Disassociate(MacAddress::ForStation(1));
  pair.mac_a->Associate(MacAddress::ForStation(1));
  EXPECT_EQ(pair.mac_a->station_count(), 1u);

  // The rejoined stream starts at seq 0 on the recycled id: B (fresh
  // window after its own reassociation) receives every frame exactly once,
  // which fails if the recycled TxState kept the old next-seq or a dirty
  // scoreboard held frames back.
  pair.mac_b->Associate(MacAddress::ForStation(0));
  for (uint32_t i = 0; i < 80; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(300 + i), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(150));
  ASSERT_EQ(pair.received_at_b.size(), 180u);
  for (uint32_t i = 0; i < 80; ++i) {
    EXPECT_EQ(pair.received_at_b[100 + i].payload_bytes(), 300 + i);
  }
  EXPECT_EQ(pair.mac_b->stats().duplicate_mpdus_discarded, 0u);
  EXPECT_EQ(pair.mac_a->stats().mpdus_dropped_retry_limit, 0u);
}

// Passive PHY listener that records every decodable PPDU on the air —
// frame type and PHY rate — without ever transmitting. Used to pin
// over-the-air protocol properties (control-response rates, RTS/CTS
// sequencing) that the MACs' own counters can't see.
class SnifferListener : public WifiPhyListener {
 public:
  void OnPpduReceived(const Ppdu& ppdu, const std::vector<bool>&) override {
    frames.push_back({ppdu.first().type, ppdu.mode.rate_kbps,
                      ppdu.first().duration_field, ppdu.Duration()});
  }
  void OnRxCorrupted() override { ++corrupted; }
  void OnTxEnd(const Ppdu&) override {}
  void OnCcaBusy() override {}
  void OnCcaIdle() override {}

  struct Seen {
    WifiFrameType type;
    uint32_t rate_kbps;
    SimTime duration_field;
    SimTime air_time;
  };
  std::vector<Seen> frames;
  int corrupted = 0;
};

// Two MACs plus a passive sniffer PHY on the same channel.
struct SniffedPair {
  explicit SniffedPair(WifiMacConfig cfg) : pair(WifiStandard::k80211n, 150) {
    // MacPair fixed the config; rebuild the MACs with the requested one.
    pair.mac_a = std::make_unique<WifiMac>(&pair.sched, pair.phy_a.get(),
                                           MacAddress::ForStation(0), cfg,
                                           Random(11));
    pair.mac_b = std::make_unique<WifiMac>(&pair.sched, pair.phy_b.get(),
                                           MacAddress::ForStation(1), cfg,
                                           Random(12));
    pair.mac_b->on_rx_packet = [this](Packet p, MacAddress) {
      pair.received_at_b.push_back(std::move(p));
    };
    sniffer_phy = std::make_unique<WifiPhy>(&pair.sched, Random(3));
    sniffer_phy->AttachTo(&pair.channel);
    sniffer_phy->set_position({0, 5});
    sniffer_phy->set_listener(&sniffer);
  }

  MacPair pair;
  std::unique_ptr<WifiPhy> sniffer_phy;
  SnifferListener sniffer;
};

TEST(MacRtsTest, ProtectedExchangeSequencesRtsCtsDataAck) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  cfg.rts_threshold = 500;
  SniffedPair s(cfg);

  s.pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  s.pair.sched.RunUntil(SimTime::Millis(10));

  ASSERT_EQ(s.pair.received_at_b.size(), 1u);
  EXPECT_EQ(s.pair.mac_a->stats().rts_sent, 1u);
  EXPECT_EQ(s.pair.mac_b->stats().cts_sent, 1u);
  EXPECT_EQ(s.pair.mac_a->stats().cts_timeouts, 0u);
  // Over the air: RTS, CTS, DATA, BA — in that order.
  std::vector<WifiFrameType> types;
  for (const auto& f : s.sniffer.frames) {
    types.push_back(f.type);
  }
  ASSERT_EQ(types.size(), 4u);
  EXPECT_EQ(types[0], WifiFrameType::kRts);
  EXPECT_EQ(types[1], WifiFrameType::kCts);
  EXPECT_EQ(types[2], WifiFrameType::kData);
  EXPECT_EQ(types[3], WifiFrameType::kBlockAck);
}

TEST(MacRtsTest, ThresholdBoundaryProtectsOnlyLargerPsdus) {
  // 802.11a single MPDU: PSDU = 26 (QoS hdr) + 8 (LLC) + packet + 4 (FCS).
  // A 1000-byte UDP payload gives a 1028 B datagram -> 1066 B PSDU.
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211a;
  cfg.data_mode = ModeForRate(Modes80211a(), 54);
  constexpr size_t kPsdu = 26 + 8 + (20 + 8 + 1000) + 4;
  {
    cfg.rts_threshold = kPsdu;  // "exceeds": equal size stays unprotected
    SniffedPair s(cfg);
    s.pair.mac_a->Enqueue(MakeUdpPacket(1000), MacAddress::ForStation(1));
    s.pair.sched.RunUntil(SimTime::Millis(10));
    ASSERT_EQ(s.pair.received_at_b.size(), 1u);
    EXPECT_EQ(s.pair.mac_a->stats().rts_sent, 0u);
  }
  {
    cfg.rts_threshold = kPsdu - 1;
    SniffedPair s(cfg);
    s.pair.mac_a->Enqueue(MakeUdpPacket(1000), MacAddress::ForStation(1));
    s.pair.sched.RunUntil(SimTime::Millis(10));
    ASSERT_EQ(s.pair.received_at_b.size(), 1u);
    EXPECT_EQ(s.pair.mac_a->stats().rts_sent, 1u);
  }
}

TEST(MacRtsTest, CtsTimeoutReentersBackoffThenBypassesAfterLimit) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  cfg.rts_threshold = 500;
  cfg.rts_retry_limit = 3;
  MacPair pair(WifiStandard::k80211n, 150);
  pair.mac_a = std::make_unique<WifiMac>(&pair.sched, pair.phy_a.get(),
                                         MacAddress::ForStation(0), cfg,
                                         Random(11));
  pair.mac_b = std::make_unique<WifiMac>(&pair.sched, pair.phy_b.get(),
                                         MacAddress::ForStation(1), cfg,
                                         Random(12));
  pair.mac_b->on_rx_packet = [&pair](Packet p, MacAddress) {
    pair.received_at_b.push_back(std::move(p));
  };
  // B hears nothing at all: every RTS times out. After rts_retry_limit
  // consecutive CTS timeouts the MAC sends one exchange unprotected.
  pair.phy_b->set_loss_model(std::make_unique<BernoulliLossModel>(1.0, 1.0));
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(100));

  const MacStats& s = pair.mac_a->stats();
  EXPECT_GE(s.cts_timeouts, 4u);
  EXPECT_GE(s.rts_bypasses, 1u);
  // Every CTS timeout re-entered backoff and re-contended: the RTS count
  // tracks the timeouts (plus bypass exchanges that also failed).
  EXPECT_GE(s.rts_sent, s.cts_timeouts);
  // The data itself never got through (the bypass exchange timed out on
  // its Block ACK instead, eventually dropping the MPDU via BAR give-up).
  EXPECT_TRUE(pair.received_at_b.empty());
  EXPECT_GT(s.response_timeouts, 0u);

  // Heal the channel: a fresh packet must deliver through a fully
  // protected exchange again (the bypass was one-shot).
  pair.phy_b->set_loss_model(std::make_unique<NoLossModel>());
  pair.mac_a->Enqueue(MakeUdpPacket(777), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(500));
  ASSERT_GE(pair.received_at_b.size(), 1u);
  EXPECT_EQ(pair.received_at_b.back().payload_bytes(), 777u);
  EXPECT_GT(pair.mac_b->stats().cts_sent, 0u);
}

// Pins the reservation arithmetic the NAV runs on: the RTS Duration must
// cover SIFS + CTS + SIFS + DATA + SIFS + BA exactly, the CTS must
// re-advertise the RTS reservation minus its own SIFS + airtime, and the
// data frame keeps its ordinary SIFS + response reservation.
TEST(MacRtsTest, RtsAndCtsDurationFieldsCoverTheExchange) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  cfg.rts_threshold = 500;
  SniffedPair s(cfg);
  s.pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  s.pair.sched.RunUntil(SimTime::Millis(10));

  ASSERT_EQ(s.sniffer.frames.size(), 4u);
  const auto& rts = s.sniffer.frames[0];
  const auto& cts = s.sniffer.frames[1];
  const auto& data = s.sniffer.frames[2];
  const auto& ba = s.sniffer.frames[3];
  ASSERT_EQ(rts.type, WifiFrameType::kRts);
  SimTime sifs = TimingsFor(WifiStandard::k80211n).sifs;
  EXPECT_EQ(rts.duration_field,
            sifs + cts.air_time + sifs + data.air_time + sifs + ba.air_time);
  EXPECT_EQ(cts.duration_field, rts.duration_field - sifs - cts.air_time);
  EXPECT_EQ(data.duration_field, sifs + ba.air_time);
}

// Virtual carrier sense at frame granularity, by injecting PPDUs straight
// into the MAC's listener interface: an overheard RTS sets the NAV; an RTS
// addressed to us inside that reservation is suppressed (no CTS); once the
// NAV-reset probe window passes in silence (the reserved exchange never
// started), the reservation is reclaimed and the next RTS is answered.
TEST(MacRtsTest, OverheardRtsSetsNavSuppressesCtsThenProbeReclaims) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  cfg.rts_threshold = 500;
  Scheduler sched;
  WirelessChannel channel(&sched);
  WifiPhy phy(&sched, Random(1));
  phy.AttachTo(&channel);
  WifiMac mac(&sched, &phy, MacAddress::ForStation(2), cfg, Random(13));

  WifiMode rts_mode = ControlResponseMode(cfg.data_mode);
  auto make_rts = [&](uint32_t from, uint32_t to, SimTime duration) {
    Ppdu ppdu;
    ppdu.aggregated = false;
    ppdu.mode = rts_mode;
    WifiFrame rts;
    rts.type = WifiFrameType::kRts;
    rts.ta = MacAddress::ForStation(from);
    rts.ra = MacAddress::ForStation(to);
    rts.duration_field = duration;
    ppdu.mpdus.push_back(std::move(rts));
    return ppdu;
  };
  std::vector<bool> ok = {true};

  // t=0: overhear an RTS 0->1 reserving 500 us.
  mac.OnPpduReceived(make_rts(0, 1, SimTime::Micros(500)), ok);
  // t=20us: an RTS addressed to us, inside the reservation: suppressed.
  sched.RunUntil(SimTime::Micros(20));
  mac.OnPpduReceived(make_rts(3, 2, SimTime::Micros(200)), ok);
  EXPECT_EQ(mac.stats().rts_ignored_busy, 1u);
  sched.RunUntil(SimTime::Micros(150));
  EXPECT_EQ(mac.stats().cts_sent, 0u);
  // The probe window (2*SIFS + CTS + 2*slot ~ 78 us) passed with no PHY
  // activity: the dead reservation must read as reclaimed. (The default
  // coalesced probe resolves lazily — the effective NAV view collapses at
  // the deadline, and the nav_resets counter lands at the next state
  // read, here the RTS below.)
  EXPECT_LE(mac.nav_until(), SimTime::Micros(150));
  // ...so an RTS to us at t=150us (still inside the original 500 us
  // horizon) now gets its CTS.
  mac.OnPpduReceived(make_rts(3, 2, SimTime::Micros(200)), ok);
  EXPECT_EQ(mac.stats().nav_resets, 1u);
  sched.RunUntil(SimTime::Micros(400));
  EXPECT_EQ(mac.stats().rts_ignored_busy, 1u);
  EXPECT_EQ(mac.stats().cts_sent, 1u);
}

TEST(MacRtsTest, DeadRtsReservationIsReclaimedAcrossStations) {
  // A's RTS to (deaf) B reserves ~1 ms that no exchange will use. C
  // overhears and NAVs it; D (control-deaf, so never NAV-bound) keeps
  // offering protected traffic to C. The NAV-reset probe must reclaim the
  // dead reservation at C so D's handshake completes promptly instead of
  // C sitting silent until A's horizon.
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  cfg.rts_threshold = 500;

  Scheduler sched;
  WirelessChannel channel(&sched);
  WifiPhy phy_a(&sched, Random(1));
  WifiPhy phy_b(&sched, Random(2));
  WifiPhy phy_c(&sched, Random(3));
  WifiPhy phy_d(&sched, Random(4));
  for (WifiPhy* phy : {&phy_a, &phy_b, &phy_c, &phy_d}) {
    phy->AttachTo(&channel);
  }
  phy_a.set_position({0, 0});
  phy_b.set_position({5, 0});
  phy_c.set_position({0, 5});
  phy_d.set_position({5, 5});
  // B hears nothing: A's RTS elicits no CTS — the reservation is dead air.
  phy_b.set_loss_model(std::make_unique<BernoulliLossModel>(1.0, 1.0));
  // D loses control frames only (no NAV at D; its CTSes from C still count
  // at C).
  phy_d.set_loss_model(std::make_unique<BernoulliLossModel>(0.0, 1.0));
  WifiMac mac_a(&sched, &phy_a, MacAddress::ForStation(0), cfg, Random(11));
  WifiMac mac_b(&sched, &phy_b, MacAddress::ForStation(1), cfg, Random(12));
  WifiMac mac_c(&sched, &phy_c, MacAddress::ForStation(2), cfg, Random(13));
  WifiMac mac_d(&sched, &phy_d, MacAddress::ForStation(3), cfg, Random(14));

  // A: a ~10-MPDU protected batch toward B (reservation ~1 ms per RTS).
  for (int i = 0; i < 10; ++i) {
    mac_a.Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  // D: steady protected offers toward C.
  for (int i = 0; i < 20; ++i) {
    sched.ScheduleIn(SimTime::Micros(60) + SimTime::Millis(2) * i, [&]() {
      mac_d.Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(2));
    });
  }
  sched.RunUntil(SimTime::Millis(50));

  EXPECT_GT(mac_a.stats().rts_sent, 0u);
  EXPECT_GT(mac_d.stats().rts_sent, 0u);
  EXPECT_GT(mac_c.stats().nav_resets, 0u)
      << "dead RTS reservations must be reclaimed";
  EXPECT_GT(mac_c.stats().cts_sent, 0u);
}

// The SYNC flush target must survive a corrupted lead subframe: it rides
// sync_start_seq on every MPDU, so losing the batch's first MPDU must not
// overshoot the window (which would falsely ack — and silently drop — the
// lost MPDU). Injected directly so the corruption pattern is exact.
TEST(MacRtsTest, SyncFlushWithCorruptedLeadDoesNotOvershoot) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  Scheduler sched;
  WirelessChannel channel(&sched);
  WifiPhy phy(&sched, Random(1));
  phy.AttachTo(&channel);
  WifiMac mac(&sched, &phy, MacAddress::ForStation(1), cfg, Random(12));
  std::vector<uint32_t> delivered;
  mac.on_rx_packet = [&](Packet p, MacAddress) {
    delivered.push_back(p.payload_bytes());
  };

  // The receiver's window sits at 0 (stale: seqs 0..9 were dropped by the
  // originator's give-up). A SYNC batch {seq 10, seq 11} arrives with the
  // lead MPDU corrupted.
  auto make_sync_batch = [&](std::vector<uint16_t> seqs) {
    Ppdu ppdu;
    ppdu.aggregated = true;
    ppdu.mode = cfg.data_mode;
    for (uint16_t seq : seqs) {
      WifiFrame f;
      f.type = WifiFrameType::kData;
      f.ta = MacAddress::ForStation(0);
      f.ra = MacAddress::ForStation(1);
      f.seq = seq;
      f.sync = true;
      f.sync_start_seq = 10;
      f.packet = MakeUdpPacket(1000 + seq);
      ppdu.mpdus.push_back(std::move(f));
    }
    return ppdu;
  };
  std::vector<bool> lead_lost = {false, true};
  mac.OnPpduReceived(make_sync_batch({10, 11}), lead_lost);
  // Window flushed to 10 (the advertised start), not 11: seq 11 is
  // buffered, waiting for the retransmission of 10.
  EXPECT_TRUE(delivered.empty());
  // Retransmission arrives intact: both deliver, in order, exactly once.
  std::vector<bool> both_ok = {true, true};
  mac.OnPpduReceived(make_sync_batch({10, 11}), both_ok);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], 1010u);
  EXPECT_EQ(delivered[1], 1011u);
}

// Pinned regression for the BAR control-response fix: a Block ACK elicited
// by a BAR must come back at the control-response rate of the BAR as
// received (12 Mbps for 15 Mbps data), not at a hardcoded 24 Mbps.
TEST(MacRtsTest, BarElicitsBlockAckAtBarsOwnControlRate) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 15);
  SniffedPair s(cfg);
  // A cannot hear control responses: the first Block ACK is lost, A
  // recovers via BAR. (Data toward B flows clean.)
  s.pair.phy_a->set_loss_model(
      std::make_unique<BernoulliLossModel>(0.0, 1.0));
  s.pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  s.pair.sched.RunUntil(SimTime::Millis(50));

  ASSERT_GT(s.pair.mac_a->stats().bars_sent, 0u);
  int bars = 0;
  int block_acks = 0;
  for (const auto& f : s.sniffer.frames) {
    if (f.type == WifiFrameType::kBlockAckReq) {
      ++bars;
      EXPECT_EQ(f.rate_kbps, 12000u) << "BAR at the 15 Mbps control rate";
    }
    if (f.type == WifiFrameType::kBlockAck) {
      ++block_acks;
      EXPECT_EQ(f.rate_kbps, 12000u)
          << "BA must answer at the BAR's control-response rate, not 24M";
    }
  }
  EXPECT_GT(bars, 0);
  EXPECT_GT(block_acks, 1) << "both the batch BA and the BAR-elicited BA";
}

TEST(MacTest, ContendersEventuallyCollideAndRecover) {
  // Both stations saturated: backoff collisions must occur, but everything
  // is eventually delivered exactly once.
  MacPair pair(WifiStandard::k80211a, 54);
  for (uint32_t i = 0; i < 100; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(800, 9), MacAddress::ForStation(1));
    pair.mac_b->Enqueue(MakeUdpPacket(800, 10), MacAddress::ForStation(0));
  }
  pair.sched.RunUntil(SimTime::Seconds(2));
  EXPECT_EQ(pair.received_at_b.size(), 100u);
  EXPECT_EQ(pair.received_at_a.size(), 100u);
  uint64_t timeouts = pair.mac_a->stats().response_timeouts +
                      pair.mac_b->stats().response_timeouts;
  EXPECT_GT(timeouts, 0u) << "saturated contenders should collide sometimes";
}

// Drives a legacy-probe MAC (one armed scheduler event per overheard RTS)
// and a default coalesced-probe MAC through the same scripted overhearer
// trace — decoded RTSes, raw CCA edges, a CF-End — and demands the same
// effective NAV view at every checkpoint plus identical stats at the end.
// This pick-for-pick contract is what lets the coalesced form be the
// default: same reclaim decisions, at the same instants, from zero events.
TEST(MacRtsTest, CoalescedProbeMatchesLegacyPickForPick) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  cfg.rts_threshold = 500;
  WifiMacConfig legacy_cfg = cfg;
  legacy_cfg.legacy_nav_probe_events = true;

  Scheduler sched;
  // Separate channels: the scripted CCA edges below are injected directly
  // into each MAC and must not leak between the two stacks.
  WirelessChannel chan_l(&sched);
  WirelessChannel chan_c(&sched);
  WifiPhy phy_l(&sched, Random(1));
  WifiPhy phy_c(&sched, Random(1));
  phy_l.AttachTo(&chan_l);
  phy_c.AttachTo(&chan_c);
  WifiMac legacy(&sched, &phy_l, MacAddress::ForStation(9), legacy_cfg,
                 Random(7));
  WifiMac coalesced(&sched, &phy_c, MacAddress::ForStation(9), cfg,
                    Random(7));

  WifiMode rts_mode = ControlResponseMode(cfg.data_mode);
  auto make_frame = [&](WifiFrameType type, uint32_t from, uint32_t to,
                        SimTime duration) {
    Ppdu ppdu;
    ppdu.aggregated = false;
    ppdu.mode = rts_mode;
    WifiFrame f;
    f.type = type;
    f.ta = MacAddress::ForStation(from);
    f.ra = to == 0xff ? MacAddress::Broadcast() : MacAddress::ForStation(to);
    f.duration_field = duration;
    ppdu.mpdus.push_back(std::move(f));
    return ppdu;
  };
  std::vector<bool> ok = {true};
  auto inject = [&](const Ppdu& p) {
    legacy.OnPpduReceived(p, ok);
    coalesced.OnPpduReceived(p, ok);
  };
  auto cca_pulse = [&]() {
    legacy.OnCcaBusy();
    coalesced.OnCcaBusy();
    legacy.OnCcaIdle();
    coalesced.OnCcaIdle();
  };
  auto check = [&](const char* what) {
    EXPECT_EQ(legacy.nav_until().ns(), coalesced.nav_until().ns()) << what;
    EXPECT_EQ(legacy.stats().nav_resets, coalesced.stats().nav_resets)
        << what;
  };

  // Phase 1 — activity confirms: a CCA pulse inside the probe window means
  // the reserved exchange is happening; NAV stands to the full horizon.
  inject(make_frame(WifiFrameType::kRts, 0, 1, SimTime::Micros(500)));
  sched.RunUntil(SimTime::Micros(30));
  cca_pulse();
  sched.RunUntil(SimTime::Micros(120));  // past the ~78 us probe deadline
  check("activity inside the window must confirm the reservation");
  EXPECT_EQ(coalesced.nav_until(), SimTime::Micros(500));
  sched.RunUntil(SimTime::Micros(600));
  check("NAV expired naturally");

  // Phase 2 — dead reservation: the window passes in silence, both reclaim
  // at the deadline (the coalesced one delivers the verdict at the next
  // state read; nav_until() reports the deadline either way).
  sched.RunUntil(SimTime::Millis(1));
  inject(make_frame(WifiFrameType::kRts, 0, 1, SimTime::Micros(400)));
  sched.RunUntil(SimTime::Millis(1) + SimTime::Micros(150));
  check("dead reservation reclaimed at the probe deadline");
  EXPECT_EQ(coalesced.stats().nav_resets, 1u);
  EXPECT_LT(coalesced.nav_until(), SimTime::Millis(1) + SimTime::Micros(100));

  // Phase 3 — NAV moved on: a later not-for-us data frame extends the NAV
  // past the RTS horizon. The probe (armed or provisional) reserved a
  // different value and must not reclaim what it does not own.
  sched.RunUntil(SimTime::Millis(2));
  inject(make_frame(WifiFrameType::kRts, 0, 1, SimTime::Micros(300)));
  sched.RunUntil(SimTime::Millis(2) + SimTime::Micros(40));
  inject(make_frame(WifiFrameType::kData, 3, 4, SimTime::Micros(600)));
  sched.RunUntil(SimTime::Millis(2) + SimTime::Micros(200));
  check("probe must not reclaim a NAV another frame moved");
  EXPECT_EQ(coalesced.nav_until(),
            SimTime::Millis(2) + SimTime::Micros(640));
  EXPECT_EQ(coalesced.stats().nav_resets, 1u);
  sched.RunUntil(SimTime::Millis(3));

  // Phase 4 — CF-End: activity first confirms the reservation (both probes
  // die), then the originator's broadcast truncation releases the rest.
  sched.RunUntil(SimTime::Millis(4));
  inject(make_frame(WifiFrameType::kRts, 0, 1, SimTime::Micros(800)));
  sched.RunUntil(SimTime::Millis(4) + SimTime::Micros(30));
  cca_pulse();
  sched.RunUntil(SimTime::Millis(4) + SimTime::Micros(100));
  inject(make_frame(WifiFrameType::kCfEnd, 0, 0xff, SimTime()));
  check("CF-End truncation");
  EXPECT_EQ(coalesced.stats().cf_end_truncations, 1u);
  EXPECT_EQ(coalesced.nav_until(), SimTime::Millis(4) + SimTime::Micros(100));

  EXPECT_TRUE(legacy.stats() == coalesced.stats())
      << "full stats must match after the scripted trace";
}

// Receiver side of the truncation: an overheard-and-confirmed reservation
// (CCA activity killed the probe, so nothing else would reclaim it) is
// released the instant the originator's CF-End arrives, and the station
// answers the next RTS addressed to it instead of sitting NAV-bound.
TEST(MacRtsTest, CfEndReleasesConfirmedReservationImmediately) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  cfg.rts_threshold = 500;
  Scheduler sched;
  WirelessChannel channel(&sched);
  WifiPhy phy(&sched, Random(1));
  phy.AttachTo(&channel);
  WifiMac mac(&sched, &phy, MacAddress::ForStation(2), cfg, Random(13));

  WifiMode rts_mode = ControlResponseMode(cfg.data_mode);
  auto make_frame = [&](WifiFrameType type, uint32_t from, uint32_t to,
                        SimTime duration) {
    Ppdu ppdu;
    ppdu.aggregated = false;
    ppdu.mode = rts_mode;
    WifiFrame f;
    f.type = type;
    f.ta = MacAddress::ForStation(from);
    f.ra = to == 0xff ? MacAddress::Broadcast() : MacAddress::ForStation(to);
    f.duration_field = duration;
    ppdu.mpdus.push_back(std::move(f));
    return ppdu;
  };
  std::vector<bool> ok = {true};

  // t=0: overhear an RTS 0->1 reserving a full millisecond.
  mac.OnPpduReceived(make_frame(WifiFrameType::kRts, 0, 1, SimTime::Millis(1)),
                     ok);
  // t=30us: CCA activity inside the probe window — the exchange started,
  // the probe dies, the reservation is confirmed to the whole horizon.
  sched.RunUntil(SimTime::Micros(30));
  mac.OnCcaBusy();
  mac.OnCcaIdle();
  sched.RunUntil(SimTime::Micros(100));
  EXPECT_EQ(mac.nav_until(), SimTime::Millis(1));
  // t=100us: the originator declares the exchange over.
  mac.OnPpduReceived(
      make_frame(WifiFrameType::kCfEnd, 0, 0xff, SimTime()), ok);
  EXPECT_EQ(mac.stats().cf_end_truncations, 1u);
  EXPECT_EQ(mac.nav_until(), SimTime::Micros(100));
  // t=120us: an RTS addressed to us — answered, 880 us early.
  sched.RunUntil(SimTime::Micros(120));
  mac.OnPpduReceived(
      make_frame(WifiFrameType::kRts, 3, 2, SimTime::Micros(200)), ok);
  sched.RunUntil(SimTime::Micros(400));
  EXPECT_EQ(mac.stats().rts_ignored_busy, 0u);
  EXPECT_EQ(mac.stats().cts_sent, 1u);
}

// Originator side: with enable_cf_end, a CTS timeout (the reservation is
// dead air) makes the RTS sender broadcast a CF-End truncation over the
// real PHY path — the sniffer sees it on the air after the unanswered RTS.
TEST(MacRtsTest, CtsTimeoutBroadcastsCfEndTruncation) {
  WifiMacConfig cfg;
  cfg.standard = WifiStandard::k80211n;
  cfg.data_mode = ModeForRate(Modes80211n(), 150);
  cfg.rts_threshold = 500;
  cfg.enable_cf_end = true;
  SniffedPair s(cfg);
  // B hears nothing: every RTS times out and its reservation is dead air.
  s.pair.phy_b->set_loss_model(
      std::make_unique<BernoulliLossModel>(1.0, 1.0));

  s.pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  s.pair.sched.RunUntil(SimTime::Millis(10));

  EXPECT_GT(s.pair.mac_a->stats().cts_timeouts, 0u);
  EXPECT_GT(s.pair.mac_a->stats().cf_ends_sent, 0u);
  // On the air: at least one CF-End, each after an RTS, never before the
  // first RTS; CF-Ends reserve nothing.
  bool saw_rts = false;
  size_t cf_ends = 0;
  for (const auto& f : s.sniffer.frames) {
    if (f.type == WifiFrameType::kRts) {
      saw_rts = true;
    }
    if (f.type == WifiFrameType::kCfEnd) {
      EXPECT_TRUE(saw_rts) << "CF-End before any RTS";
      EXPECT_TRUE(f.duration_field.IsZero());
      ++cf_ends;
    }
  }
  EXPECT_EQ(cf_ends, s.pair.mac_a->stats().cf_ends_sent);
}

}  // namespace
}  // namespace hacksim
