// MAC-layer tests: two stations on a clean or lossy channel exercising
// stop-and-wait exchanges (802.11a), A-MPDU + Block ACK (802.11n), retry
// and BAR recovery, MORE DATA and SYNC bits, NAV, and in-order delivery.
#include <gtest/gtest.h>

#include <map>

#include "src/mac80211/wifi_mac.h"
#include "src/phy80211/wifi_phy.h"

namespace hacksim {
namespace {

Packet MakeUdpPacket(uint32_t payload, uint16_t dst_port = 9) {
  return Packet::MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                         Ipv4Address::FromOctets(10, 0, 2, 1), 7, dst_port,
                         payload);
}

Packet MakeTcpAckPacket() {
  TcpHeader tcp;
  tcp.src_port = 6000;
  tcp.dst_port = 5000;
  tcp.flag_ack = true;
  tcp.window = 1000;
  tcp.timestamps = TcpTimestamps{1, 2};
  return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                         Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
}

struct MacPair {
  explicit MacPair(WifiStandard standard, double rate_mbps,
                   double loss_at_b = 0.0)
      : channel(&sched) {
    WifiMacConfig cfg;
    cfg.standard = standard;
    cfg.data_mode = ModeForRate(standard == WifiStandard::k80211a
                                    ? Modes80211a()
                                    : Modes80211n(),
                                rate_mbps);
    phy_a = std::make_unique<WifiPhy>(&sched, Random(1));
    phy_b = std::make_unique<WifiPhy>(&sched, Random(2));
    phy_a->AttachTo(&channel);
    phy_b->AttachTo(&channel);
    phy_a->set_position({0, 0});
    phy_b->set_position({5, 0});
    if (loss_at_b > 0) {
      phy_b->set_loss_model(
          std::make_unique<BernoulliLossModel>(loss_at_b, 0.0));
    }
    mac_a = std::make_unique<WifiMac>(&sched, phy_a.get(),
                                      MacAddress::ForStation(0), cfg,
                                      Random(11));
    mac_b = std::make_unique<WifiMac>(&sched, phy_b.get(),
                                      MacAddress::ForStation(1), cfg,
                                      Random(12));
    mac_b->on_rx_packet = [this](Packet p, MacAddress) {
      received_at_b.push_back(std::move(p));
    };
    mac_a->on_rx_packet = [this](Packet p, MacAddress) {
      received_at_a.push_back(std::move(p));
    };
  }

  Scheduler sched;
  WirelessChannel channel;
  std::unique_ptr<WifiPhy> phy_a, phy_b;
  std::unique_ptr<WifiMac> mac_a, mac_b;
  std::vector<Packet> received_at_a, received_at_b;
};

TEST(MacTest, SingleFrameDelivery80211a) {
  MacPair pair(WifiStandard::k80211a, 54);
  pair.mac_a->Enqueue(MakeUdpPacket(1000), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(5));
  ASSERT_EQ(pair.received_at_b.size(), 1u);
  EXPECT_EQ(pair.received_at_b[0].payload_bytes(), 1000u);
  EXPECT_EQ(pair.mac_a->stats().mpdus_delivered_first_try, 1u);
  EXPECT_EQ(pair.mac_b->stats().acks_sent, 1u);
}

TEST(MacTest, ManyFramesInOrder80211a) {
  MacPair pair(WifiStandard::k80211a, 54);
  for (uint32_t i = 0; i < 50; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(100 + i), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(100));
  ASSERT_EQ(pair.received_at_b.size(), 50u);
  for (uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(pair.received_at_b[i].payload_bytes(), 100 + i);
  }
}

TEST(MacTest, RetriesRecoverLoss80211a) {
  MacPair pair(WifiStandard::k80211a, 54, /*loss_at_b=*/0.3);
  for (uint32_t i = 0; i < 50; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(500), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(500));
  // With a 0.3 loss rate and 7 retries, essentially everything arrives.
  EXPECT_EQ(pair.received_at_b.size(), 50u);
  EXPECT_GT(pair.mac_a->stats().mpdus_delivered_retried, 0u);
  EXPECT_GT(pair.mac_a->stats().response_timeouts, 0u);
  // No duplicate deliveries despite retransmissions.
  EXPECT_EQ(pair.mac_b->stats().data_mpdus_received -
                pair.mac_b->stats().duplicate_mpdus_discarded,
            50u);
}

TEST(MacTest, AmpduAggregates80211n) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 42; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(pair.received_at_b.size(), 42u);
  // All 42 should fit one A-MPDU: a single PPDU and a single Block ACK.
  EXPECT_EQ(pair.mac_a->stats().ppdus_sent, 1u);
  EXPECT_EQ(pair.mac_b->stats().block_acks_sent, 1u);
}

TEST(MacTest, AmpduRespects64MpduLimitForSmallFrames) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 100; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(40), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(pair.received_at_b.size(), 100u);
  // 64-MPDU cap: at least two PPDUs needed.
  EXPECT_GE(pair.mac_a->stats().ppdus_sent, 2u);
}

TEST(MacTest, TxopLimitsAmpduAtLowRates) {
  // At 15 Mbps a 1460 B MPDU lasts ~840 us: only ~4 fit in a 4 ms TXOP.
  MacPair pair(WifiStandard::k80211n, 15);
  for (uint32_t i = 0; i < 12; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(50));
  EXPECT_EQ(pair.received_at_b.size(), 12u);
  EXPECT_GE(pair.mac_a->stats().ppdus_sent, 3u);
}

TEST(MacTest, PartialAmpduLossRetransmitsOnlyMissing) {
  MacPair pair(WifiStandard::k80211n, 150, /*loss_at_b=*/0.2);
  for (uint32_t i = 0; i < 42; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1000 + i), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(200));
  ASSERT_EQ(pair.received_at_b.size(), 42u);
  // In-order delivery despite partial-batch losses (reorder buffer works).
  for (uint32_t i = 0; i < 42; ++i) {
    EXPECT_EQ(pair.received_at_b[i].payload_bytes(), 1000 + i);
  }
  EXPECT_GT(pair.mac_a->stats().mpdus_delivered_retried, 0u);
  uint64_t attempts = pair.mac_a->stats().mpdu_tx_attempts;
  // Selective retransmission: far fewer attempts than full-batch repeats.
  EXPECT_LT(attempts, 42u * 3);
}

TEST(MacTest, HeavyLossDropsAfterRetryLimit) {
  MacPair pair(WifiStandard::k80211n, 150, /*loss_at_b=*/0.95);
  for (uint32_t i = 0; i < 10; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1000), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Seconds(2));
  EXPECT_GT(pair.mac_a->stats().mpdus_dropped_retry_limit, 0u);
}

TEST(MacTest, QueueLimitDropsTail) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 200; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  // Default per-dest limit is 126: the rest dropped at enqueue.
  EXPECT_EQ(pair.mac_a->stats().queue_drops, 200u - 126u);
}

TEST(MacTest, RemoveQueuedPullsMatchingPackets) {
  MacPair pair(WifiStandard::k80211n, 150);
  // Block the medium so nothing transmits while we manipulate the queue.
  Packet target = MakeUdpPacket(777);
  uint64_t uid = target.uid();
  pair.mac_a->Enqueue(MakeUdpPacket(1), MacAddress::ForStation(1));
  pair.mac_a->Enqueue(std::move(target), MacAddress::ForStation(1));
  pair.mac_a->Enqueue(MakeUdpPacket(3), MacAddress::ForStation(1));
  size_t removed = pair.mac_a->RemoveQueued(
      MacAddress::ForStation(1),
      [uid](const Packet& p) { return p.uid() == uid; });
  EXPECT_EQ(removed, 1u);
}

// Hook recorder for MORE DATA / SYNC observation.
class RecordingHooks : public HackHooks {
 public:
  void OnDataPpdu(MacAddress, bool aggregated, bool has_new, bool more_data,
                  bool sync) override {
    ppdus.push_back({aggregated, has_new, more_data, sync});
  }
  std::vector<uint8_t> BuildAckPayload(MacAddress) override {
    return payload_to_attach;
  }
  void OnAckPayload(MacAddress, std::span<const uint8_t> payload) override {
    received_payloads.emplace_back(payload.begin(), payload.end());
  }

  struct PpduInfo {
    bool aggregated;
    bool has_new;
    bool more_data;
    bool sync;
  };
  std::vector<PpduInfo> ppdus;
  std::vector<uint8_t> payload_to_attach;
  std::vector<std::vector<uint8_t>> received_payloads;
};

TEST(MacTest, MoreDataBitTracksQueueDepth) {
  MacPair pair(WifiStandard::k80211n, 150);
  RecordingHooks hooks;
  pair.mac_b->set_hack_hooks(&hooks);
  // 50 packets -> batch 1 of 42 (more data), batch 2 of 8 (no more data).
  for (uint32_t i = 0; i < 50; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(50));
  ASSERT_EQ(hooks.ppdus.size(), 2u);
  EXPECT_TRUE(hooks.ppdus[0].more_data);
  EXPECT_FALSE(hooks.ppdus[1].more_data);
  EXPECT_TRUE(hooks.ppdus[0].aggregated);
}

TEST(MacTest, MoreDataBitOnSingleMpdus) {
  MacPair pair(WifiStandard::k80211a, 54);
  RecordingHooks hooks;
  pair.mac_b->set_hack_hooks(&hooks);
  for (uint32_t i = 0; i < 3; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(100), MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(10));
  ASSERT_EQ(hooks.ppdus.size(), 3u);
  EXPECT_TRUE(hooks.ppdus[0].more_data);
  EXPECT_TRUE(hooks.ppdus[1].more_data);
  EXPECT_FALSE(hooks.ppdus[2].more_data);
  EXPECT_FALSE(hooks.ppdus[0].aggregated);
  EXPECT_TRUE(hooks.ppdus[0].has_new);
}

TEST(MacTest, HackPayloadRidesBlockAck) {
  MacPair pair(WifiStandard::k80211n, 150);
  RecordingHooks client_hooks;
  RecordingHooks ap_hooks;
  pair.mac_b->set_hack_hooks(&client_hooks);
  pair.mac_a->set_hack_hooks(&ap_hooks);
  client_hooks.payload_to_attach = {0xDE, 0xAD, 0xBE, 0xEF};
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(10));
  ASSERT_EQ(ap_hooks.received_payloads.size(), 1u);
  EXPECT_EQ(ap_hooks.received_payloads[0],
            (std::vector<uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_EQ(pair.mac_b->stats().hack_payloads_sent, 1u);
}

TEST(MacTest, HackPayloadRidesSingleAck80211a) {
  MacPair pair(WifiStandard::k80211a, 54);
  RecordingHooks client_hooks;
  RecordingHooks ap_hooks;
  pair.mac_b->set_hack_hooks(&client_hooks);
  pair.mac_a->set_hack_hooks(&ap_hooks);
  client_hooks.payload_to_attach = {1, 2, 3};
  pair.mac_a->Enqueue(MakeUdpPacket(100), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(10));
  ASSERT_EQ(ap_hooks.received_payloads.size(), 1u);
}

TEST(MacTest, SyncBitSetAfterBarGiveUp) {
  // Client fully deaf (data AND control 100% lost at B): the AP's batch
  // elicits no BA; BARs fail; after the BAR retry limit the AP gives up and
  // marks SYNC. Then we heal the channel and check the next batch carries
  // SYNC.
  MacPair pair(WifiStandard::k80211n, 150);
  pair.phy_b->set_loss_model(std::make_unique<BernoulliLossModel>(1.0, 1.0));
  RecordingHooks hooks;
  pair.mac_b->set_hack_hooks(&hooks);
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(200));
  EXPECT_GT(pair.mac_a->stats().bars_sent, 0u);
  EXPECT_GT(pair.mac_a->stats().ba_agreement_give_ups, 0u);
  // Heal and send another packet: SYNC must be set on it.
  pair.phy_b->set_loss_model(std::make_unique<NoLossModel>());
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(400));
  ASSERT_FALSE(hooks.ppdus.empty());
  EXPECT_TRUE(hooks.ppdus.back().sync);
  EXPECT_GT(pair.mac_a->stats().batches_sent_with_sync, 0u);
  // After the client's BA arrives, SYNC clears for subsequent batches.
  pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(600));
  EXPECT_FALSE(hooks.ppdus.back().sync);
}

TEST(MacTest, BidirectionalTrafficBothDeliver) {
  MacPair pair(WifiStandard::k80211n, 150);
  for (uint32_t i = 0; i < 30; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(1460), MacAddress::ForStation(1));
    pair.mac_b->Enqueue(MakeTcpAckPacket(), MacAddress::ForStation(0));
  }
  pair.sched.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(pair.received_at_b.size(), 30u);
  EXPECT_EQ(pair.received_at_a.size(), 30u);
}

TEST(MacTest, TcpAckStatsAccounting) {
  MacPair pair(WifiStandard::k80211a, 54);
  pair.mac_b->Enqueue(MakeTcpAckPacket(), MacAddress::ForStation(0));
  pair.sched.RunUntil(SimTime::Millis(10));
  ASSERT_EQ(pair.received_at_a.size(), 1u);
  const MacStats& s = pair.mac_b->stats();
  EXPECT_EQ(s.tcp_ack_frames_sent, 1u);
  EXPECT_EQ(s.tcp_ack_bytes_sent, 52u);
  // Payload airtime: 52 B at 54 Mbps = 7.7 us (Table 3's per-ACK figure).
  EXPECT_NEAR(static_cast<double>(s.tcp_ack_payload_airtime_ns), 7703.0,
              10.0);
  EXPECT_GT(s.tcp_ack_channel_overhead_ns, 0);
  EXPECT_GT(s.tcp_ack_ll_ack_overhead_ns, 0);
}

TEST(MacTest, SequenceWrapWithSteadyFeedCrossesModulo) {
  // Steady feed below the queue limit so nothing drops: > 4096 MPDUs flow
  // through one TX state, forcing win_start/next_seq across the 12-bit
  // sequence modulo — the outstanding/reorder rings and received bitmap
  // must keep delivering exactly once, in order, across the wrap.
  MacPair pair(WifiStandard::k80211n, 150);
  constexpr uint32_t kPackets = 4300;
  uint32_t fed = 0;
  // Feed 40 packets per millisecond — below the drain rate at 150 Mbps for
  // 200-byte payloads, so the per-dest queue never overflows.
  std::function<void()> feed = [&]() {
    for (uint32_t i = 0; i < 40 && fed < kPackets; ++i, ++fed) {
      pair.mac_a->Enqueue(MakeUdpPacket(200), MacAddress::ForStation(1));
    }
    if (fed < kPackets) {
      pair.sched.ScheduleIn(SimTime::Millis(1), feed);
    }
  };
  feed();
  pair.sched.RunUntil(SimTime::Seconds(2));
  EXPECT_EQ(pair.mac_a->stats().queue_drops, 0u);
  EXPECT_EQ(pair.received_at_b.size(), kPackets);
}

TEST(MacTest, UnknownDestinationQueriesAreNoOps) {
  MacPair pair(WifiStandard::k80211n, 150);
  MacAddress stranger = MacAddress::ForStation(42);
  EXPECT_EQ(pair.mac_a->QueueDepth(stranger), 0u);
  EXPECT_EQ(pair.mac_a->RemoveQueued(stranger,
                                     [](const Packet&) { return true; }),
            0u);
}

TEST(MacTest, AssociatePreInternsWithoutCreatingWork) {
  MacPair pair(WifiStandard::k80211n, 150);
  pair.mac_a->Associate(MacAddress::ForStation(1));
  pair.mac_a->Associate(MacAddress::ForStation(9));
  EXPECT_EQ(pair.mac_a->station_count(), 2u);
  // Association alone must not schedule transmissions.
  pair.sched.RunUntil(SimTime::Millis(5));
  EXPECT_EQ(pair.mac_a->stats().ppdus_sent, 0u);
  // Traffic to an associated peer still flows.
  pair.mac_a->Enqueue(MakeUdpPacket(123), MacAddress::ForStation(1));
  pair.sched.RunUntil(SimTime::Millis(20));
  ASSERT_EQ(pair.received_at_b.size(), 1u);
  EXPECT_EQ(pair.mac_a->station_count(), 2u);
}

TEST(MacTest, ContendersEventuallyCollideAndRecover) {
  // Both stations saturated: backoff collisions must occur, but everything
  // is eventually delivered exactly once.
  MacPair pair(WifiStandard::k80211a, 54);
  for (uint32_t i = 0; i < 100; ++i) {
    pair.mac_a->Enqueue(MakeUdpPacket(800, 9), MacAddress::ForStation(1));
    pair.mac_b->Enqueue(MakeUdpPacket(800, 10), MacAddress::ForStation(0));
  }
  pair.sched.RunUntil(SimTime::Seconds(2));
  EXPECT_EQ(pair.received_at_b.size(), 100u);
  EXPECT_EQ(pair.received_at_a.size(), 100u);
  uint64_t timeouts = pair.mac_a->stats().response_timeouts +
                      pair.mac_b->stats().response_timeouts;
  EXPECT_GT(timeouts, 0u) << "saturated contenders should collide sometimes";
}

}  // namespace
}  // namespace hacksim
