// Geometric-channel tests: log-distance path-loss math, energy-detection
// and capture-threshold boundaries, the scripted 3-node hidden-terminal
// decode trace, and the construction-time validation that keeps legacy
// (position-less) setups on the fixed-loss model.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/phy80211/loss_model.h"
#include "src/phy80211/propagation.h"
#include "src/phy80211/wifi_phy.h"

namespace hacksim {
namespace {

// --- path-loss math ---------------------------------------------------------------

TEST(PropagationMathTest, DbmMwRoundTrip) {
  EXPECT_DOUBLE_EQ(DbmToMw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(DbmToMw(10.0), 10.0);
  EXPECT_DOUBLE_EQ(DbmToMw(-30.0), 0.001);
  EXPECT_NEAR(MwToDbm(DbmToMw(-77.3)), -77.3, 1e-9);
}

TEST(PropagationMathTest, LogDistancePathLoss) {
  LogDistancePropagation prop;  // tx 15, pl0 46.7, n 3.5
  // At 1 m only the reference loss applies.
  EXPECT_NEAR(prop.RxPowerDbm(1.0), 15.0 - 46.7, 1e-9);
  // One decade of distance costs 10 * n dB.
  EXPECT_NEAR(prop.RxPowerDbm(10.0), 15.0 - 46.7 - 35.0, 1e-9);
  // Sub-metre distances clamp to the 1 m reference.
  EXPECT_DOUBLE_EQ(prop.RxPowerDbm(0.25), prop.RxPowerDbm(1.0));
  // Monotone decreasing beyond the clamp.
  EXPECT_GT(prop.RxPowerDbm(5.0), prop.RxPowerDbm(20.0));
}

TEST(PropagationMathTest, DetectableBoundary) {
  LogDistancePropagation prop;  // ed threshold -82 dBm
  EXPECT_TRUE(prop.Detectable(-81.9));
  EXPECT_TRUE(prop.Detectable(-82.0));  // at the threshold: detectable
  EXPECT_FALSE(prop.Detectable(-82.1));
}

TEST(PropagationMathTest, MaxDetectableRangeInvertsThePathLoss) {
  LogDistancePropagation prop;
  double r = prop.MaxDetectableRangeM();
  EXPECT_NEAR(prop.RxPowerDbm(r), prop.params().ed_threshold_dbm, 1e-9);
  EXPECT_TRUE(prop.Detectable(prop.RxPowerDbm(r * 0.999)));
  EXPECT_FALSE(prop.Detectable(prop.RxPowerDbm(r * 1.001)));
  // Defaults: the two-cluster topology (AP at 20 m, other cluster at 40 m)
  // must straddle this radius.
  EXPECT_GT(r, 23.0);
  EXPECT_LT(r, 31.0);
}

TEST(PropagationMathTest, CaptureThresholdTracksMode) {
  LogDistancePropagation prop;
  WifiMode slow = ModeForRate(Modes80211a(), 6);
  WifiMode fast = ModeForRate(Modes80211a(), 54);
  // Threshold = the mode's 50%-FER midpoint + the capture margin.
  EXPECT_DOUBLE_EQ(prop.CaptureSinrDb(fast),
                   SnrLossModel::ModeSnrMidpointDb(fast) +
                       prop.params().capture_margin_db);
  // Faster constellations need more SINR to capture.
  EXPECT_LT(prop.CaptureSinrDb(slow), prop.CaptureSinrDb(fast));
}

TEST(PropagationMathTest, FixedLossHearsEverythingAndNeverCaptures) {
  FixedLossPropagation prop;
  EXPECT_FALSE(prop.limits_range());
  EXPECT_TRUE(prop.Detectable(-200.0));
  EXPECT_DOUBLE_EQ(prop.RxPowerDbm(1e9), 0.0);
}

// --- 3-node hidden-terminal decode trace --------------------------------------------

class RecordingListener : public WifiPhyListener {
 public:
  void OnPpduReceived(const Ppdu&, const std::vector<bool>&) override {
    ++received;
  }
  void OnRxCorrupted() override { ++corrupted; }
  void OnTxEnd(const Ppdu&) override { ++tx_done; }
  void OnCcaBusy() override { ++busy_edges; }
  void OnCcaIdle() override { ++idle_edges; }

  int received = 0;
  int corrupted = 0;
  int tx_done = 0;
  int busy_edges = 0;
  int idle_edges = 0;
};

Ppdu MakeDataPpdu() {
  TcpHeader tcp;
  tcp.flag_ack = true;
  WifiFrame f;
  f.type = WifiFrameType::kData;
  f.ta = MacAddress::ForStation(1);
  f.ra = MacAddress::ForStation(0);
  f.packet = Packet::MakeTcp(Ipv4Address(1), Ipv4Address(2), tcp, 1000);
  Ppdu ppdu;
  ppdu.aggregated = false;
  ppdu.mode = ModeForRate(Modes80211a(), 54);
  ppdu.mpdus.push_back(std::move(f));
  return ppdu;
}

// A(-20, 0) —— AP(0, 0) —— B(20, 0) under the default log-distance model:
// both stations are in range of the AP (20 m < ~27 m detect radius) and out
// of range of each other (40 m) — the canonical hidden pair.
struct HiddenFixture {
  Scheduler sched;
  WirelessChannel channel{&sched};
  WifiPhy ap{&sched, Random(1)};
  WifiPhy a{&sched, Random(2)};
  WifiPhy b{&sched, Random(3)};
  RecordingListener lap, la, lb;

  HiddenFixture() {
    ap.set_position({0, 0});
    a.set_position({-20, 0});
    b.set_position({20, 0});
    ap.AttachTo(&channel);
    a.AttachTo(&channel);
    b.AttachTo(&channel);
    ap.set_listener(&lap);
    a.set_listener(&la);
    b.set_listener(&lb);
    channel.set_propagation(std::make_unique<LogDistancePropagation>());
  }
};

TEST(HiddenTerminalTest, OutOfRangeReceiverSeesNothing) {
  HiddenFixture f;
  ASSERT_TRUE(f.a.Send(MakeDataPpdu()));
  f.sched.Run();
  // The AP decodes; B gets neither energy (no CCA edge) nor a decode — it
  // cannot even tell the medium was busy. That pair is also pruned from the
  // scheduler entirely.
  EXPECT_EQ(f.lap.received, 1);
  EXPECT_EQ(f.lb.received, 0);
  EXPECT_EQ(f.lb.corrupted, 0);
  EXPECT_EQ(f.lb.busy_edges, 0);
  EXPECT_EQ(f.channel.airtime().out_of_range, 1u);
}

TEST(HiddenTerminalTest, SymmetricHiddenCollisionKillsBothAtTheReceiver) {
  HiddenFixture f;
  // Neither station can carrier-sense the other, so both transmit freely.
  ASSERT_TRUE(f.a.Send(MakeDataPpdu()));
  ASSERT_TRUE(f.b.Send(MakeDataPpdu()));
  f.sched.Run();
  // Equal receive power at the AP: SINR ~ 0 dB, far below the 54 Mbps
  // capture threshold — both die, exactly like the fixed-loss rule.
  EXPECT_EQ(f.lap.received, 0);
  EXPECT_EQ(f.lap.corrupted, 2);
  EXPECT_EQ(f.ap.stats().overlap_losses, 2u);
  EXPECT_EQ(f.ap.stats().captures, 0u);
}

TEST(HiddenTerminalTest, StrongerFrameCapturesOverWeaker) {
  HiddenFixture f;
  WifiPhy near{&f.sched, Random(4)};
  RecordingListener lnear;
  near.set_position({2, 0});
  near.AttachTo(&f.channel);
  near.set_listener(&lnear);
  // A (20 m out, rx ~ -77 dBm) and the near station (2 m, rx ~ -42 dBm)
  // collide at the AP. The near frame's SINR (~35 dB) clears the 54 Mbps
  // capture threshold (24 dB); A's (~ -35 dB) does not.
  ASSERT_TRUE(f.a.Send(MakeDataPpdu()));
  ASSERT_TRUE(near.Send(MakeDataPpdu()));
  f.sched.Run();
  EXPECT_EQ(f.lap.received, 1);
  EXPECT_EQ(f.lap.corrupted, 1);
  EXPECT_EQ(f.ap.stats().captures, 1u);
  EXPECT_EQ(f.ap.stats().overlap_losses, 1u);
}

// --- construction validation ---------------------------------------------------------

TEST(GeometryValidationDeathTest, AttachWithoutPositionUnderRangedModelDies) {
  Scheduler sched;
  WirelessChannel channel{&sched};
  channel.set_propagation(std::make_unique<LogDistancePropagation>());
  WifiPhy unpositioned{&sched, Random(1)};
  EXPECT_DEATH(channel.Attach(&unpositioned), "explicit position");
}

TEST(GeometryValidationDeathTest, SwitchingToRangedModelWithMixedPhysDies) {
  Scheduler sched;
  WirelessChannel channel{&sched};
  WifiPhy positioned{&sched, Random(1)};
  positioned.set_position({3, 4});
  positioned.AttachTo(&channel);
  WifiPhy unpositioned{&sched, Random(2)};
  unpositioned.AttachTo(&channel);
  EXPECT_DEATH(
      channel.set_propagation(std::make_unique<LogDistancePropagation>()),
      "explicit position");
}

TEST(GeometryValidationTest, LegacyConstructionSelectsFixedLossExplicitly) {
  // Position-less construction is the legacy mode and must keep working —
  // but only because it explicitly rides the fixed-loss model (the channel
  // default, re-installable by hand).
  Scheduler sched;
  WirelessChannel channel{&sched};
  EXPECT_FALSE(channel.propagation().limits_range());
  WifiPhy tx{&sched, Random(1)};
  WifiPhy rx{&sched, Random(2)};
  tx.AttachTo(&channel);
  rx.AttachTo(&channel);
  channel.set_propagation(std::make_unique<FixedLossPropagation>());
  RecordingListener listener;
  rx.set_listener(&listener);
  ASSERT_TRUE(tx.Send(MakeDataPpdu()));
  sched.Run();
  EXPECT_EQ(listener.received, 1);
  EXPECT_EQ(channel.airtime().out_of_range, 0u);
}

}  // namespace
}  // namespace hacksim
