// Dense-cell scaling tests.
//
// 1. Equivalence: the batched channel delivery (one scheduler event per
//    distinct arrival nanosecond per PPDU) must produce bit-identical
//    experiment statistics to the historical per-PHY-event scheduling for
//    full scenarios at 1/3/10 clients — while executing fewer events. The
//    hidden-terminal configurations run the same check over the geometric
//    channel (range-limited decode + SINR capture).
// 2. Event-count independence: at the channel layer, the number of
//    scheduler events per PPDU must not grow with the attached-PHY count.
// 3. A 100-station scenario smoke, so the dense-cell path is exercised by
//    the default test suite and not just the opt-in bench.
// 4. Legacy bit-identity pin: with the propagation layer compiled in but
//    the fixed-loss default selected, a legacy scenario's outputs must not
//    move at all — the same invariant the committed BENCH artifacts carry,
//    but enforced inside the default test suite.
// 5. Hidden-terminal behaviour: plain DCF loses most of its goodput to
//    hidden collisions on the two-cluster topology; RTS/CTS recovers it.
#include <gtest/gtest.h>

#include "src/scenario/download_scenario.h"

namespace hacksim {
namespace {

ScenarioConfig BaseConfig(int n_clients, TransportProto proto,
                          HackVariant hack) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = n_clients;
  c.proto = proto;
  c.hack = hack;
  c.duration = SimTime::Millis(800);
  c.start_stagger = SimTime::Millis(50);
  c.seed = 7;
  return c;
}

void ExpectModesEquivalent(ScenarioConfig config) {
  config.channel_delivery = ChannelDeliveryMode::kPerPhyEvent;
  ScenarioResult per_phy = RunScenario(config);
  config.channel_delivery = ChannelDeliveryMode::kBatched;
  ScenarioResult batched = RunScenario(config);

  EXPECT_TRUE(batched.BehaviourEquals(per_phy))
      << "batched delivery diverged: goodput " << batched.aggregate_goodput_mbps
      << " vs " << per_phy.aggregate_goodput_mbps << ", airtime ppdus "
      << batched.airtime.ppdus << " vs " << per_phy.airtime.ppdus;
  ASSERT_EQ(batched.clients.size(), per_phy.clients.size());
  for (size_t i = 0; i < batched.clients.size(); ++i) {
    EXPECT_EQ(batched.clients[i], per_phy.clients[i]) << "client " << i;
  }
  // Identical behaviour from strictly fewer scheduler events (2+ clients
  // means 3+ attached PHYs, so per-PHY scheduling is strictly costlier).
  if (config.n_clients > 1) {
    EXPECT_LT(batched.events_executed, per_phy.events_executed);
  } else {
    EXPECT_LE(batched.events_executed, per_phy.events_executed);
  }
}

TEST(BatchedDeliveryEquivalenceTest, TcpHackOneClient) {
  ExpectModesEquivalent(
      BaseConfig(1, TransportProto::kTcp, HackVariant::kMoreData));
}

TEST(BatchedDeliveryEquivalenceTest, TcpHackThreeClients) {
  ExpectModesEquivalent(
      BaseConfig(3, TransportProto::kTcp, HackVariant::kMoreData));
}

TEST(BatchedDeliveryEquivalenceTest, TcpStockTenClients) {
  ExpectModesEquivalent(
      BaseConfig(10, TransportProto::kTcp, HackVariant::kOff));
}

TEST(BatchedDeliveryEquivalenceTest, TcpHackTenClients) {
  ExpectModesEquivalent(
      BaseConfig(10, TransportProto::kTcp, HackVariant::kMoreData));
}

TEST(BatchedDeliveryEquivalenceTest, UdpTenClients) {
  ExpectModesEquivalent(
      BaseConfig(10, TransportProto::kUdp, HackVariant::kOff));
}

TEST(BatchedDeliveryEquivalenceTest, LossyUploadThreeClients) {
  // Upload reverses the compressing role; loss exercises the BAR/retry and
  // rx-window machinery on both sides.
  ScenarioConfig c = BaseConfig(3, TransportProto::kTcp,
                                HackVariant::kMoreData);
  c.upload = true;
  c.clients.resize(3);
  for (auto& spec : c.clients) {
    spec.bernoulli_data_loss = 0.05;
  }
  ExpectModesEquivalent(c);
}

ScenarioConfig HiddenConfig(int n_clients, size_t rts_threshold) {
  ScenarioConfig c = BaseConfig(n_clients, TransportProto::kUdp,
                                HackVariant::kOff);
  c.upload = true;
  c.topology = Topology::kTwoClusterHidden;
  c.propagation = LogDistancePropagation::Params{};
  c.rts_threshold = rts_threshold;
  c.udp_rate_bps = 1.2e8;
  c.duration = SimTime::Millis(300);
  c.start_stagger = SimTime::Millis(5);
  return c;
}

TEST(BatchedDeliveryEquivalenceTest, HiddenTwoClusterUdpUpload) {
  // The geometric channel prunes out-of-range pairs in both delivery modes;
  // they must still agree bit-for-bit, including the capture counters.
  ExpectModesEquivalent(HiddenConfig(6, /*rts_threshold=*/0));
}

TEST(BatchedDeliveryEquivalenceTest, HiddenTwoClusterRtsProtected) {
  ExpectModesEquivalent(HiddenConfig(6, /*rts_threshold=*/500));
}

// Same contract for the coalesced NAV-reset probe: the default (zero-event
// provisional deadline) and the historical armed-per-overhearer form must
// produce bit-identical scenario behaviour. Run on the hidden-terminal RTS
// cell — the probe-heavy workload where reservations actually go dead and
// get reclaimed, not just cancelled — and from fewer-or-equal events.
void ExpectProbeModesEquivalent(ScenarioConfig config) {
  config.legacy_nav_probe_events = true;
  ScenarioResult legacy = RunScenario(config);
  config.legacy_nav_probe_events = false;
  ScenarioResult coalesced = RunScenario(config);

  EXPECT_TRUE(coalesced.BehaviourEquals(legacy))
      << "coalesced NAV probe diverged: goodput "
      << coalesced.aggregate_goodput_mbps << " vs "
      << legacy.aggregate_goodput_mbps << ", airtime ppdus "
      << coalesced.airtime.ppdus << " vs " << legacy.airtime.ppdus;
  ASSERT_EQ(coalesced.clients.size(), legacy.clients.size());
  for (size_t i = 0; i < coalesced.clients.size(); ++i) {
    EXPECT_EQ(coalesced.clients[i], legacy.clients[i]) << "client " << i;
  }
  EXPECT_LE(coalesced.events_executed, legacy.events_executed);
}

TEST(NavProbeEquivalenceTest, HiddenTwoClusterRtsProtected) {
  ExpectProbeModesEquivalent(HiddenConfig(6, /*rts_threshold=*/500));
}

TEST(NavProbeEquivalenceTest, DenseUplinkRtsCell) {
  ScenarioConfig c = BaseConfig(10, TransportProto::kUdp, HackVariant::kOff);
  c.upload = true;
  c.rts_threshold = 500;
  c.udp_rate_bps = 2.5e8;
  c.duration = SimTime::Millis(300);
  c.start_stagger = SimTime::Millis(5);
  ExpectProbeModesEquivalent(c);
}

TEST(LegacyBitIdentityPin, FixedLossScenarioOutputsPinned) {
  // Golden values recorded when the propagation layer landed; the run is
  // fully deterministic from (config, seed), so any drift here means the
  // fixed-loss default stopped being the legacy channel bit-for-bit (the
  // same regression the committed BENCH_scale.json goodputs would show).
  ScenarioResult r =
      RunScenario(BaseConfig(3, TransportProto::kTcp, HackVariant::kMoreData));
  EXPECT_EQ(r.airtime.ppdus, 901u);
  EXPECT_EQ(r.aggregate_goodput_mbps, 116.30534609523809);
  EXPECT_EQ(r.airtime.out_of_range, 0u);
  EXPECT_EQ(r.ap_phy.captures, 0u);
  EXPECT_EQ(r.ap_phy.overlap_losses, 0u);
}

TEST(LegacyBitIdentityPin, FaultMachineryOffStillHitsTheGoldenValues) {
  // The fault-injection engine and the liveness watchdog must be free when
  // unused: an empty plan installs no loss gates, draws nothing from any
  // RNG stream, and leaves flow wiring untouched; the watchdog only adds
  // its own kOther audit events. Same golden values as above — if this
  // drifts while the test above still passes, the fault plumbing itself
  // perturbed the legacy path.
  ScenarioConfig c =
      BaseConfig(3, TransportProto::kTcp, HackVariant::kMoreData);
  c.fault_plan = FaultPlan{};  // explicitly empty
  c.watchdog_interval = SimTime::Millis(5);
  c.watchdog_abort_on_trip = true;  // a trip would abort the test binary
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.airtime.ppdus, 901u);
  EXPECT_EQ(r.aggregate_goodput_mbps, 116.30534609523809);
  EXPECT_EQ(r.fault, FaultStats{});
  EXPECT_EQ(r.watchdog.trips, 0u);
  EXPECT_GT(r.watchdog.checks, 0u);
}

TEST(HiddenTerminalScenarioTest, RtsRecoversGoodputLostToHiddenCollisions) {
  ScenarioResult plain = RunScenario(HiddenConfig(10, /*rts_threshold=*/0));
  ScenarioResult rts = RunScenario(HiddenConfig(10, /*rts_threshold=*/500));

  // The clusters cannot carrier-sense each other: pairs are pruned below
  // the energy-detection threshold and the AP eats hidden collisions.
  EXPECT_GT(plain.airtime.out_of_range, 0u);
  EXPECT_GT(plain.ap_phy.overlap_losses, 0u);

  // RTS/CTS turns those hidden data collisions into NAV reservations set by
  // the AP's CTS (audible in both clusters). The CI bench gate enforces
  // >= 2x at scale; 1.5x here keeps the unit test robust to config drift.
  EXPECT_GT(plain.aggregate_goodput_mbps, 0.0);
  EXPECT_GT(rts.aggregate_goodput_mbps,
            1.5 * plain.aggregate_goodput_mbps)
      << "rts " << rts.aggregate_goodput_mbps << " vs plain "
      << plain.aggregate_goodput_mbps;
}

TEST(ScaleSmokeTest, HundredStationCellDeliversUdp) {
  ScenarioConfig c = BaseConfig(100, TransportProto::kUdp, HackVariant::kOff);
  c.duration = SimTime::Millis(200);
  c.start_stagger = SimTime::Millis(1);
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.crc_failures, 0u);
  EXPECT_GT(r.aggregate_goodput_mbps, 0.0);
  uint64_t delivered = 0;
  for (const ClientResult& cr : r.clients) {
    delivered += cr.bytes_delivered;
  }
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace hacksim
