// Dense-cell scaling tests.
//
// 1. Equivalence: the batched channel delivery (one scheduler event per
//    distinct arrival nanosecond per PPDU) must produce bit-identical
//    experiment statistics to the historical per-PHY-event scheduling for
//    full scenarios at 1/3/10 clients — while executing fewer events.
// 2. Event-count independence: at the channel layer, the number of
//    scheduler events per PPDU must not grow with the attached-PHY count.
// 3. A 100-station scenario smoke, so the dense-cell path is exercised by
//    the default test suite and not just the opt-in bench.
#include <gtest/gtest.h>

#include "src/scenario/download_scenario.h"

namespace hacksim {
namespace {

ScenarioConfig BaseConfig(int n_clients, TransportProto proto,
                          HackVariant hack) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = n_clients;
  c.proto = proto;
  c.hack = hack;
  c.duration = SimTime::Millis(800);
  c.start_stagger = SimTime::Millis(50);
  c.seed = 7;
  return c;
}

void ExpectModesEquivalent(ScenarioConfig config) {
  config.channel_delivery = ChannelDeliveryMode::kPerPhyEvent;
  ScenarioResult per_phy = RunScenario(config);
  config.channel_delivery = ChannelDeliveryMode::kBatched;
  ScenarioResult batched = RunScenario(config);

  EXPECT_TRUE(batched.BehaviourEquals(per_phy))
      << "batched delivery diverged: goodput " << batched.aggregate_goodput_mbps
      << " vs " << per_phy.aggregate_goodput_mbps << ", airtime ppdus "
      << batched.airtime.ppdus << " vs " << per_phy.airtime.ppdus;
  ASSERT_EQ(batched.clients.size(), per_phy.clients.size());
  for (size_t i = 0; i < batched.clients.size(); ++i) {
    EXPECT_EQ(batched.clients[i], per_phy.clients[i]) << "client " << i;
  }
  // Identical behaviour from strictly fewer scheduler events (2+ clients
  // means 3+ attached PHYs, so per-PHY scheduling is strictly costlier).
  if (config.n_clients > 1) {
    EXPECT_LT(batched.events_executed, per_phy.events_executed);
  } else {
    EXPECT_LE(batched.events_executed, per_phy.events_executed);
  }
}

TEST(BatchedDeliveryEquivalenceTest, TcpHackOneClient) {
  ExpectModesEquivalent(
      BaseConfig(1, TransportProto::kTcp, HackVariant::kMoreData));
}

TEST(BatchedDeliveryEquivalenceTest, TcpHackThreeClients) {
  ExpectModesEquivalent(
      BaseConfig(3, TransportProto::kTcp, HackVariant::kMoreData));
}

TEST(BatchedDeliveryEquivalenceTest, TcpStockTenClients) {
  ExpectModesEquivalent(
      BaseConfig(10, TransportProto::kTcp, HackVariant::kOff));
}

TEST(BatchedDeliveryEquivalenceTest, TcpHackTenClients) {
  ExpectModesEquivalent(
      BaseConfig(10, TransportProto::kTcp, HackVariant::kMoreData));
}

TEST(BatchedDeliveryEquivalenceTest, UdpTenClients) {
  ExpectModesEquivalent(
      BaseConfig(10, TransportProto::kUdp, HackVariant::kOff));
}

TEST(BatchedDeliveryEquivalenceTest, LossyUploadThreeClients) {
  // Upload reverses the compressing role; loss exercises the BAR/retry and
  // rx-window machinery on both sides.
  ScenarioConfig c = BaseConfig(3, TransportProto::kTcp,
                                HackVariant::kMoreData);
  c.upload = true;
  c.clients.resize(3);
  for (auto& spec : c.clients) {
    spec.bernoulli_data_loss = 0.05;
  }
  ExpectModesEquivalent(c);
}

TEST(ScaleSmokeTest, HundredStationCellDeliversUdp) {
  ScenarioConfig c = BaseConfig(100, TransportProto::kUdp, HackVariant::kOff);
  c.duration = SimTime::Millis(200);
  c.start_stagger = SimTime::Millis(1);
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.crc_failures, 0u);
  EXPECT_GT(r.aggregate_goodput_mbps, 0.0);
  uint64_t delivered = 0;
  for (const ClientResult& cr : r.clients) {
    delivered += cr.bytes_delivered;
  }
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace hacksim
