// Unit tests: discrete-event scheduler (slot arena + EventFn) and
// deterministic PRNG.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace hacksim {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(SimTime::Micros(16).ns(), 16'000);
  EXPECT_EQ(SimTime::Millis(4).ns(), 4'000'000);
  EXPECT_EQ(SimTime::Seconds(2).ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::Micros(9).ToMicrosF(), 9.0);
  EXPECT_EQ(SimTime::FromSecondsF(1e-6).ns(), 1000);
  EXPECT_EQ(SimTime::FromMicrosF(110.5).ns(), 110'500);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime a = SimTime::Micros(10);
  SimTime b = SimTime::Micros(3);
  EXPECT_EQ((a + b).ns(), 13'000);
  EXPECT_EQ((a - b).ns(), 7'000);
  EXPECT_EQ((a * 4).ns(), 40'000);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(SimTime::Micros(30), [&] { order.push_back(3); });
  sched.ScheduleAt(SimTime::Micros(10), [&] { order.push_back(1); });
  sched.ScheduleAt(SimTime::Micros(20), [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), SimTime::Micros(30));
}

TEST(SchedulerTest, SameTimeIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(SimTime::Micros(5), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  EventId id = sched.ScheduleAt(SimTime::Micros(10), [&] { ran = true; });
  EXPECT_TRUE(sched.IsPending(id));
  sched.Cancel(id);
  EXPECT_FALSE(sched.IsPending(id));
  sched.Run();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelInvalidAndStaleIdsAreNoops) {
  Scheduler sched;
  sched.Cancel(kInvalidEventId);
  EventId id = sched.ScheduleAt(SimTime::Micros(1), [] {});
  sched.Run();
  sched.Cancel(id);  // already fired: harmless
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) {
      sched.ScheduleIn(SimTime::Micros(10), chain);
    }
  };
  sched.ScheduleIn(SimTime::Micros(10), chain);
  sched.Run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.Now(), SimTime::Micros(50));
}

TEST(SchedulerTest, RunUntilStopsAndAdvancesClock) {
  Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.ScheduleAt(SimTime::Micros(i * 10), [&] { ++count; });
  }
  sched.RunUntil(SimTime::Micros(35));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sched.Now(), SimTime::Micros(35));
  sched.RunUntil(SimTime::Micros(200));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sched.Now(), SimTime::Micros(200));
}

TEST(SchedulerTest, RunWithLimitCountsEvents) {
  Scheduler sched;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(SimTime::Micros(i), [] {});
  }
  EXPECT_EQ(sched.Run(4), 4u);
  EXPECT_EQ(sched.Run(), 6u);
}

TEST(SchedulerTest, CancelledEventsDontBlockProgress) {
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sched.ScheduleAt(SimTime::Micros(1), [] {}));
  }
  bool ran = false;
  sched.ScheduleAt(SimTime::Micros(2), [&] { ran = true; });
  for (EventId id : ids) {
    sched.Cancel(id);
  }
  EXPECT_EQ(sched.Run(), 1u);
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, CancelledSlotReuseInvalidatesStaleId) {
  Scheduler sched;
  bool first_ran = false;
  bool second_ran = false;
  EventId first = sched.ScheduleAt(SimTime::Micros(10), [&] {
    first_ran = true;
  });
  sched.Cancel(first);
  // The freed slot is reused; the stale id must not alias the new event.
  EventId second = sched.ScheduleAt(SimTime::Micros(20), [&] {
    second_ran = true;
  });
  EXPECT_FALSE(sched.IsPending(first));
  EXPECT_TRUE(sched.IsPending(second));
  sched.Cancel(first);  // stale: must not cancel the reused slot
  EXPECT_TRUE(sched.IsPending(second));
  sched.Run();
  EXPECT_FALSE(first_ran);
  EXPECT_TRUE(second_ran);
}

TEST(SchedulerTest, StaleIdAfterFireNeverAliasesReusedSlot) {
  Scheduler sched;
  EventId first = sched.ScheduleAt(SimTime::Micros(1), [] {});
  sched.Run();  // `first` fires; its slot returns to the free list
  int ran = 0;
  EventId second = sched.ScheduleAt(SimTime::Micros(2), [&] { ++ran; });
  EXPECT_FALSE(sched.IsPending(first));
  sched.Cancel(first);  // no-op: generation mismatch
  EXPECT_TRUE(sched.IsPending(second));
  sched.Run();
  EXPECT_EQ(ran, 1);
}

TEST(SchedulerTest, CancelOwnIdInsideCallbackIsNoop) {
  Scheduler sched;
  EventId self = kInvalidEventId;
  bool later_ran = false;
  self = sched.ScheduleAt(SimTime::Micros(5), [&] {
    // While running, the event is no longer pending; cancelling it must not
    // disturb anything (in particular not an event reusing the slot).
    EXPECT_FALSE(sched.IsPending(self));
    sched.Cancel(self);
    EventId next = sched.ScheduleIn(SimTime::Micros(1),
                                    [&] { later_ran = true; });
    sched.Cancel(self);  // still a no-op, even though the slot was reused
    EXPECT_TRUE(sched.IsPending(next));
  });
  sched.Run();
  EXPECT_TRUE(later_ran);
}

TEST(SchedulerTest, CancelOtherPendingEventInsideCallback) {
  Scheduler sched;
  bool victim_ran = false;
  EventId victim = sched.ScheduleAt(SimTime::Micros(10),
                                    [&] { victim_ran = true; });
  sched.ScheduleAt(SimTime::Micros(5), [&] { sched.Cancel(victim); });
  sched.Run();
  EXPECT_FALSE(victim_ran);
}

TEST(SchedulerTest, RescheduleStormKeepsFifoOrder) {
  // Cancel/re-schedule churn (the MAC's response-timeout pattern) must not
  // perturb FIFO ordering among surviving same-time events, regardless of
  // which arena slots get recycled.
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int round = 0; round < 50; ++round) {
    ids.clear();
    for (int i = 0; i < 20; ++i) {
      ids.push_back(sched.ScheduleAt(SimTime::Micros(100 + round),
                                     [&order, i] { order.push_back(i); }));
    }
    // Cancel every third, then add replacements at the same time.
    for (size_t i = 0; i < ids.size(); i += 3) {
      sched.Cancel(ids[i]);
    }
    for (int i = 20; i < 25; ++i) {
      sched.ScheduleAt(SimTime::Micros(100 + round),
                       [&order, i] { order.push_back(i); });
    }
    order.clear();
    sched.RunUntil(SimTime::Micros(100 + round));
    // Survivors in insertion order, then the replacements.
    std::vector<int> want;
    for (int i = 0; i < 20; ++i) {
      if (i % 3 != 0) {
        want.push_back(i);
      }
    }
    for (int i = 20; i < 25; ++i) {
      want.push_back(i);
    }
    ASSERT_EQ(order, want) << "round " << round;
  }
}

TEST(SchedulerTest, PendingEventsAccurateUnderHeavyCancellation) {
  Scheduler sched;
  EXPECT_EQ(sched.pending_events(), 0u);
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(sched.ScheduleAt(SimTime::Micros(1 + i % 3), [] {}));
  }
  EXPECT_EQ(sched.pending_events(), 1000u);
  for (size_t i = 0; i < ids.size(); i += 2) {
    sched.Cancel(ids[i]);
  }
  EXPECT_EQ(sched.pending_events(), 500u);
  for (size_t i = 0; i < ids.size(); i += 2) {
    sched.Cancel(ids[i]);  // double-cancel must not double-count
  }
  EXPECT_EQ(sched.pending_events(), 500u);
  sched.RunUntil(SimTime::Micros(1));
  EXPECT_EQ(sched.pending_events(), 500u - sched.events_executed());
  sched.Run();
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_EQ(sched.events_executed(), 500u);
}

TEST(SchedulerTest, MoveOnlyAndOversizedClosures) {
  Scheduler sched;
  // Move-only capture (std::function could not hold this).
  auto owned = std::make_unique<int>(41);
  int got = 0;
  sched.ScheduleIn(SimTime::Micros(1),
                   [p = std::move(owned), &got] { got = *p + 1; });
  // Oversized capture: falls back to EventFn's heap path.
  struct Big {
    char bytes[200] = {0};
  } big;
  big.bytes[199] = 7;
  bool big_ok = false;
  sched.ScheduleIn(SimTime::Micros(2),
                   [big, &big_ok] { big_ok = big.bytes[199] == 7; });
  sched.Run();
  EXPECT_EQ(got, 42);
  EXPECT_TRUE(big_ok);
}

// --- EventFn ------------------------------------------------------------------

TEST(EventFnTest, InlineVsHeapStorage) {
  int x = 0;
  EventFn small([&x] { ++x; });
  EXPECT_TRUE(small.is_inline());
  struct Big {
    char bytes[EventFn::kInlineBytes + 1];
  };
  EventFn large([big = Big{}, &x] { ++x; });
  EXPECT_FALSE(large.is_inline());
  small();
  large();
  EXPECT_EQ(x, 2);
}

TEST(EventFnTest, MovePreservesCallableAndEmptiesSource) {
  int calls = 0;
  EventFn a([&calls] { ++calls; });
  EventFn b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(EventFnTest, InvokeAndResetDestroysOnce) {
  // Destruction count via a shared_ptr capture: InvokeAndReset must destroy
  // the closure exactly once, and the EventFn must end up empty.
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> watch = token;
  int got = 0;
  EventFn fn([t = std::move(token), &got] { got = *t; });
  EXPECT_EQ(watch.use_count(), 1);
  fn.InvokeAndReset();
  EXPECT_EQ(got, 5);
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(watch.expired());
}

// --- Random -------------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(12345);
  Random b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, BoundedStaysInBounds) {
  Random r(7);
  for (uint64_t bound : {1ull, 2ull, 15ull, 16ull, 1023ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, NextIntInclusiveRange) {
  Random r(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = r.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, BernoulliFrequency) {
  Random r(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (r.NextBool(0.02)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / 100000.0, 0.02, 0.003);
  EXPECT_FALSE(r.NextBool(0.0));
  EXPECT_TRUE(r.NextBool(1.0));
}

TEST(RandomTest, ExponentialMean) {
  Random r(17);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double v = r.NextExponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000, 5.0, 0.15);
}

TEST(RandomTest, ForkedStreamsAreIndependentOfParentDrawCount) {
  Random parent1(42);
  Random child1 = parent1.Fork();
  uint64_t c1 = child1.NextU64();
  Random parent2(42);
  Random child2 = parent2.Fork();
  EXPECT_EQ(c1, child2.NextU64());
}

}  // namespace
}  // namespace hacksim
