// Unit tests: discrete-event scheduler and deterministic PRNG.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace hacksim {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(SimTime::Micros(16).ns(), 16'000);
  EXPECT_EQ(SimTime::Millis(4).ns(), 4'000'000);
  EXPECT_EQ(SimTime::Seconds(2).ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::Micros(9).ToMicrosF(), 9.0);
  EXPECT_EQ(SimTime::FromSecondsF(1e-6).ns(), 1000);
  EXPECT_EQ(SimTime::FromMicrosF(110.5).ns(), 110'500);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime a = SimTime::Micros(10);
  SimTime b = SimTime::Micros(3);
  EXPECT_EQ((a + b).ns(), 13'000);
  EXPECT_EQ((a - b).ns(), 7'000);
  EXPECT_EQ((a * 4).ns(), 40'000);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(SchedulerTest, RunsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(SimTime::Micros(30), [&] { order.push_back(3); });
  sched.ScheduleAt(SimTime::Micros(10), [&] { order.push_back(1); });
  sched.ScheduleAt(SimTime::Micros(20), [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), SimTime::Micros(30));
}

TEST(SchedulerTest, SameTimeIsFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(SimTime::Micros(5), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  EventId id = sched.ScheduleAt(SimTime::Micros(10), [&] { ran = true; });
  EXPECT_TRUE(sched.IsPending(id));
  sched.Cancel(id);
  EXPECT_FALSE(sched.IsPending(id));
  sched.Run();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelInvalidAndStaleIdsAreNoops) {
  Scheduler sched;
  sched.Cancel(kInvalidEventId);
  EventId id = sched.ScheduleAt(SimTime::Micros(1), [] {});
  sched.Run();
  sched.Cancel(id);  // already fired: harmless
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) {
      sched.ScheduleIn(SimTime::Micros(10), chain);
    }
  };
  sched.ScheduleIn(SimTime::Micros(10), chain);
  sched.Run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.Now(), SimTime::Micros(50));
}

TEST(SchedulerTest, RunUntilStopsAndAdvancesClock) {
  Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.ScheduleAt(SimTime::Micros(i * 10), [&] { ++count; });
  }
  sched.RunUntil(SimTime::Micros(35));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sched.Now(), SimTime::Micros(35));
  sched.RunUntil(SimTime::Micros(200));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sched.Now(), SimTime::Micros(200));
}

TEST(SchedulerTest, RunWithLimitCountsEvents) {
  Scheduler sched;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(SimTime::Micros(i), [] {});
  }
  EXPECT_EQ(sched.Run(4), 4u);
  EXPECT_EQ(sched.Run(), 6u);
}

TEST(SchedulerTest, CancelledEventsDontBlockProgress) {
  Scheduler sched;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sched.ScheduleAt(SimTime::Micros(1), [] {}));
  }
  bool ran = false;
  sched.ScheduleAt(SimTime::Micros(2), [&] { ran = true; });
  for (EventId id : ids) {
    sched.Cancel(id);
  }
  EXPECT_EQ(sched.Run(), 1u);
  EXPECT_TRUE(ran);
}

// --- Random -------------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(12345);
  Random b(12345);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, BoundedStaysInBounds) {
  Random r(7);
  for (uint64_t bound : {1ull, 2ull, 15ull, 16ull, 1023ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, NextIntInclusiveRange) {
  Random r(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = r.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, BernoulliFrequency) {
  Random r(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (r.NextBool(0.02)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / 100000.0, 0.02, 0.003);
  EXPECT_FALSE(r.NextBool(0.0));
  EXPECT_TRUE(r.NextBool(1.0));
}

TEST(RandomTest, ExponentialMean) {
  Random r(17);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double v = r.NextExponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100000, 5.0, 0.15);
}

TEST(RandomTest, ForkedStreamsAreIndependentOfParentDrawCount) {
  Random parent1(42);
  Random child1 = parent1.Fork();
  uint64_t c1 = child1.NextU64();
  Random parent2(42);
  Random child2 = parent2.Fork();
  EXPECT_EQ(c1, child2.NextU64());
}

}  // namespace
}  // namespace hacksim
