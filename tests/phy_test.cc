// Unit tests: PHY timing tables (the numbers the paper's analysis rests on),
// frame sizes, loss models, and the collision semantics of the shared medium.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/phy80211/frame.h"
#include "src/phy80211/loss_model.h"
#include "src/phy80211/wifi_mode.h"
#include "src/phy80211/wifi_phy.h"

namespace hacksim {
namespace {

// --- timing tables ---------------------------------------------------------------

TEST(WifiModeTest, TimingConstantsMatchStandard) {
  PhyTimings a = TimingsFor(WifiStandard::k80211a);
  EXPECT_EQ(a.slot, SimTime::Micros(9));
  EXPECT_EQ(a.sifs, SimTime::Micros(16));
  EXPECT_EQ(a.difs, SimTime::Micros(34));  // SIFS + 2 slots

  PhyTimings n = TimingsFor(WifiStandard::k80211n);
  EXPECT_EQ(n.difs, SimTime::Micros(43));  // AIFS[BE] = SIFS + 3 slots
  EXPECT_EQ(n.cw_min, 15u);
  EXPECT_EQ(n.cw_max, 1023u);
}

TEST(WifiModeTest, MeanIdlePeriodIs110_5Microseconds) {
  // §1: "EDCA in 802.11n enforces an average idle period of 110.5 us".
  PhyTimings n = TimingsFor(WifiStandard::k80211n);
  double mean_us = n.difs.ToMicrosF() + n.cw_min / 2.0 * n.slot.ToMicrosF();
  EXPECT_DOUBLE_EQ(mean_us, 110.5);
}

TEST(WifiModeTest, ModeTables) {
  EXPECT_EQ(Modes80211a().size(), 8u);
  EXPECT_EQ(Modes80211a().front().rate_mbps(), 6.0);
  EXPECT_EQ(Modes80211a().back().rate_mbps(), 54.0);
  EXPECT_EQ(Modes80211n().size(), 8u);
  EXPECT_EQ(Modes80211n().front().rate_mbps(), 15.0);
  EXPECT_EQ(Modes80211n().back().rate_mbps(), 150.0);
  EXPECT_EQ(Modes80211nExtended().back().rate_mbps(), 600.0);
  EXPECT_EQ(Modes80211nExtended().back().spatial_streams, 4);
}

TEST(WifiModeTest, ControlResponseRates) {
  // Highest basic rate (6/12/24) not exceeding the data rate.
  auto mode_a = [](double mbps) {
    return ModeForRate(Modes80211a(), mbps);
  };
  EXPECT_EQ(ControlResponseMode(mode_a(54)).rate_mbps(), 24.0);
  EXPECT_EQ(ControlResponseMode(mode_a(24)).rate_mbps(), 24.0);
  EXPECT_EQ(ControlResponseMode(mode_a(18)).rate_mbps(), 12.0);
  EXPECT_EQ(ControlResponseMode(mode_a(9)).rate_mbps(), 6.0);
  EXPECT_EQ(ControlResponseMode(mode_a(6)).rate_mbps(), 6.0);
  // HT rates map the same way (paper §4.3: 150 Mbps data, 24 Mbps LL ACKs).
  EXPECT_EQ(ControlResponseMode(ModeForRate(Modes80211n(), 150)).rate_mbps(),
            24.0);
  EXPECT_EQ(ControlResponseMode(ModeForRate(Modes80211n(), 15)).rate_mbps(),
            12.0);
}

// Hand-computed 802.11a durations: T = 20us + 4us * ceil((22 + 8n)/NDBPS).
struct DurationCase {
  double rate_mbps;
  size_t bytes;
  int64_t expect_us;
};

class DurationTest : public ::testing::TestWithParam<DurationCase> {};

TEST_P(DurationTest, Matches80211aFormula) {
  const DurationCase& c = GetParam();
  WifiMode mode = ModeForRate(Modes80211a(), c.rate_mbps);
  EXPECT_EQ(FrameDuration(mode, c.bytes), SimTime::Micros(c.expect_us));
}

INSTANTIATE_TEST_SUITE_P(
    Handbook, DurationTest,
    ::testing::Values(
        // ACK (14 B) at 24 Mbps: 20 + 4*ceil(134/96) = 28 us.
        DurationCase{24, 14, 28},
        // ACK at 6 Mbps: 20 + 4*ceil(134/24) = 44 us.
        DurationCase{6, 14, 44},
        // 1536-byte MPDU at 54 Mbps: 20 + 4*ceil(12310/216) = 248 us.
        DurationCase{54, 1536, 248},
        // Block ACK (32 B) at 24 Mbps: 20 + 4*ceil(278/96) = 32 us.
        DurationCase{24, 32, 32}));

TEST(WifiModeTest, HtPreambleAndSymbols) {
  WifiMode ht150 = ModeForRate(Modes80211n(), 150);
  EXPECT_EQ(PreambleDuration(ht150), SimTime::Micros(36));
  // 540 bits per 3.6 us symbol at 150 Mbps.
  EXPECT_EQ(ht150.bits_per_symbol, 540);
  // 1 symbol of data: 22 bits fits in one symbol -> 36 + 3.6 us.
  EXPECT_EQ(FrameDuration(ht150, 0), SimTime::Nanos(36'000 + 3'600));
}

TEST(WifiModeTest, MultiStreamPreambleGrows) {
  WifiMode ht600 = Modes80211nExtended().back();
  // 4 spatial streams: 32 + 4*4 = 48 us preamble.
  EXPECT_EQ(PreambleDuration(ht600), SimTime::Micros(48));
}

// --- frame sizes --------------------------------------------------------------------

TEST(FrameTest, MpduSizes) {
  TcpHeader tcp;
  tcp.flag_ack = true;
  tcp.timestamps = TcpTimestamps{1, 1};
  Packet data = Packet::MakeTcp(Ipv4Address(1), Ipv4Address(2), tcp, 1460);

  WifiFrame frame;
  frame.type = WifiFrameType::kData;
  frame.packet = data;
  // 26 QoS header + 8 LLC + 1512 IP + 4 FCS = 1550.
  EXPECT_EQ(frame.SizeBytes(), 1550u);

  WifiFrame ack;
  ack.type = WifiFrameType::kAck;
  EXPECT_EQ(ack.SizeBytes(), 14u);
  ack.hack_payload = {1, 2, 3, 4, 5};
  EXPECT_EQ(ack.SizeBytes(), 19u);

  WifiFrame ba;
  ba.type = WifiFrameType::kBlockAck;
  ba.ba = BlockAckInfo{};
  EXPECT_EQ(ba.SizeBytes(), 32u);

  WifiFrame bar;
  bar.type = WifiFrameType::kBlockAckReq;
  EXPECT_EQ(bar.SizeBytes(), 24u);
}

TEST(FrameTest, AmpduFitsFortyTwo1460ByteMpdus) {
  // The paper batches 42 packets per A-MPDU: 42 subframes of
  // 4 + pad4(1550) = 1556 bytes = 65352 <= 65535; 43 would not fit.
  TcpHeader tcp;
  tcp.flag_ack = true;
  tcp.timestamps = TcpTimestamps{1, 1};
  Ppdu ppdu;
  ppdu.aggregated = true;
  ppdu.mode = ModeForRate(Modes80211n(), 150);
  for (int i = 0; i < 42; ++i) {
    WifiFrame f;
    f.type = WifiFrameType::kData;
    f.packet = Packet::MakeTcp(Ipv4Address(1), Ipv4Address(2), tcp, 1460);
    ppdu.mpdus.push_back(std::move(f));
  }
  EXPECT_LE(ppdu.PsduBytes(), kMaxAmpduBytes);
  EXPECT_GT(ppdu.PsduBytes() + 1556, kMaxAmpduBytes);
}

TEST(FrameTest, SequenceHelpers) {
  EXPECT_EQ(SeqAdd(4095, 1), 0);
  EXPECT_EQ(SeqAdd(0, -1), 4095);
  EXPECT_EQ(SeqDistance(4090, 5), 11);
  EXPECT_TRUE(SeqInWindow(4090, 2, 64));
  EXPECT_FALSE(SeqInWindow(0, 64, 64));
  EXPECT_TRUE(SeqInWindow(0, 63, 64));
}

// --- loss models ---------------------------------------------------------------------

TEST(LossModelTest, BernoulliRates) {
  BernoulliLossModel model(0.1, 0.01);
  Random rng(5);
  WifiMode mode = Modes80211a()[0];
  int data_losses = 0;
  int ctrl_losses = 0;
  for (int i = 0; i < 20000; ++i) {
    if (model.ShouldCorrupt(mode, 1500, 5.0, rng)) {
      ++data_losses;
    }
    if (model.ShouldCorrupt(mode, 14, 5.0, rng)) {
      ++ctrl_losses;
    }
  }
  EXPECT_NEAR(data_losses / 20000.0, 0.10, 0.01);
  EXPECT_NEAR(ctrl_losses / 20000.0, 0.01, 0.005);
}

TEST(LossModelTest, SnrDecreasesWithDistance) {
  SnrLossModel model;
  EXPECT_GT(model.SnrDbAt(2.0), model.SnrDbAt(10.0));
  EXPECT_GT(model.SnrDbAt(10.0), model.SnrDbAt(50.0));
}

TEST(LossModelTest, FerMonotoneInSnrAndRate) {
  SnrLossModel model;
  WifiMode low = ModeForRate(Modes80211n(), 15);
  WifiMode high = ModeForRate(Modes80211n(), 150);
  // Higher SNR -> lower FER.
  EXPECT_GT(model.FrameErrorRate(high, 1500, 20.0),
            model.FrameErrorRate(high, 1500, 30.0));
  // At a given SNR, faster modes fail more.
  EXPECT_GT(model.FrameErrorRate(high, 1500, 18.0),
            model.FrameErrorRate(low, 1500, 18.0));
  // Longer frames fail more.
  EXPECT_GT(model.FrameErrorRate(high, 1500, 26.0),
            model.FrameErrorRate(high, 64, 26.0));
}

TEST(LossModelTest, FerSaturates) {
  SnrLossModel model;
  WifiMode mode = ModeForRate(Modes80211n(), 150);
  EXPECT_NEAR(model.FrameErrorRate(mode, 1500, 50.0), 0.0, 1e-6);
  EXPECT_NEAR(model.FrameErrorRate(mode, 1500, 0.0), 1.0, 1e-6);
}

// --- medium / collisions ----------------------------------------------------------------

class RecordingListener : public WifiPhyListener {
 public:
  void OnPpduReceived(const Ppdu& ppdu, const std::vector<bool>&) override {
    ++received;
    last_type = ppdu.first().type;
  }
  void OnRxCorrupted() override { ++corrupted; }
  void OnTxEnd(const Ppdu&) override { ++tx_done; }
  void OnCcaBusy() override { ++busy_edges; }
  void OnCcaIdle() override { ++idle_edges; }

  int received = 0;
  int corrupted = 0;
  int tx_done = 0;
  int busy_edges = 0;
  int idle_edges = 0;
  WifiFrameType last_type = WifiFrameType::kData;
};

Ppdu MakeTestPpdu(MacAddress from, MacAddress to) {
  TcpHeader tcp;
  tcp.flag_ack = true;
  WifiFrame f;
  f.type = WifiFrameType::kData;
  f.ta = from;
  f.ra = to;
  f.packet = Packet::MakeTcp(Ipv4Address(1), Ipv4Address(2), tcp, 1000);
  Ppdu ppdu;
  ppdu.aggregated = false;
  ppdu.mode = ModeForRate(Modes80211a(), 54);
  ppdu.mpdus.push_back(std::move(f));
  return ppdu;
}

struct MediumFixture {
  Scheduler sched;
  WirelessChannel channel{&sched};
  WifiPhy phy_a{&sched, Random(1)};
  WifiPhy phy_b{&sched, Random(2)};
  WifiPhy phy_c{&sched, Random(3)};
  RecordingListener la, lb, lc;

  MediumFixture() {
    phy_a.AttachTo(&channel);
    phy_b.AttachTo(&channel);
    phy_c.AttachTo(&channel);
    phy_a.set_listener(&la);
    phy_b.set_listener(&lb);
    phy_c.set_listener(&lc);
    phy_a.set_position({0, 0});
    phy_b.set_position({5, 0});
    phy_c.set_position({0, 5});
  }
};

TEST(WifiPhyTest, CleanDelivery) {
  MediumFixture f;
  ASSERT_TRUE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(1))));
  f.sched.Run();
  EXPECT_EQ(f.lb.received, 1);
  EXPECT_EQ(f.lb.corrupted, 0);
  EXPECT_EQ(f.lc.received, 1);  // broadcast medium: everyone hears it
  EXPECT_EQ(f.la.tx_done, 1);
  EXPECT_EQ(f.lb.busy_edges, 1);
  EXPECT_EQ(f.lb.idle_edges, 1);
}

TEST(WifiPhyTest, OverlappingTransmissionsCollide) {
  MediumFixture f;
  ASSERT_TRUE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(2))));
  ASSERT_TRUE(f.phy_b.Send(
      MakeTestPpdu(MacAddress::ForStation(1), MacAddress::ForStation(2))));
  f.sched.Run();
  // C hears two overlapping frames: both corrupted, no decode.
  EXPECT_EQ(f.lc.received, 0);
  EXPECT_GE(f.lc.corrupted, 1);
}

TEST(WifiPhyTest, TransmitterIsDeafWhileSending) {
  MediumFixture f;
  ASSERT_TRUE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(2))));
  ASSERT_TRUE(f.phy_b.Send(
      MakeTestPpdu(MacAddress::ForStation(1), MacAddress::ForStation(0))));
  f.sched.Run();
  // A was transmitting when B's frame arrived: corrupted at A.
  EXPECT_EQ(f.la.received, 0);
  EXPECT_GE(f.la.corrupted, 1);
}

TEST(WifiPhyTest, SendWhileTransmittingIsRejected) {
  MediumFixture f;
  ASSERT_TRUE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(1))));
  EXPECT_FALSE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(1))));
  EXPECT_EQ(f.phy_a.tx_dropped_busy(), 1u);
  f.sched.Run();
}

TEST(WifiPhyTest, SequentialTransmissionsBothDeliver) {
  MediumFixture f;
  ASSERT_TRUE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(1))));
  f.sched.Run();
  ASSERT_TRUE(f.phy_b.Send(
      MakeTestPpdu(MacAddress::ForStation(1), MacAddress::ForStation(0))));
  f.sched.Run();
  EXPECT_EQ(f.lb.received, 1);
  EXPECT_EQ(f.la.received, 1);
}

TEST(WifiPhyTest, LossModelDropsEverything) {
  MediumFixture f;
  f.phy_b.set_loss_model(std::make_unique<BernoulliLossModel>(1.0, 1.0));
  ASSERT_TRUE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(1))));
  f.sched.Run();
  EXPECT_EQ(f.lb.received, 0);
  EXPECT_EQ(f.lb.corrupted, 1);
  EXPECT_EQ(f.lc.received, 1);  // C's channel is clean
}

TEST(WifiPhyTest, DistanceMeters) {
  EXPECT_DOUBLE_EQ(DistanceMeters({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceMeters({1, 1}, {1, 1}), 0.0);
}

TEST(WifiPhyTest, AirtimeLedgerAccountsByFrameType) {
  MediumFixture f;
  Ppdu data = MakeTestPpdu(MacAddress::ForStation(0),
                           MacAddress::ForStation(1));
  SimTime data_air = data.Duration();
  ASSERT_TRUE(f.phy_a.Send(std::move(data)));
  f.sched.Run();
  WifiFrame ack;
  ack.type = WifiFrameType::kAck;
  ack.ta = MacAddress::ForStation(1);
  ack.ra = MacAddress::ForStation(0);
  Ppdu ack_ppdu;
  ack_ppdu.aggregated = false;
  ack_ppdu.mode = ModeForRate(Modes80211a(), 24);
  ack_ppdu.mpdus.push_back(std::move(ack));
  SimTime ack_air = ack_ppdu.Duration();
  ASSERT_TRUE(f.phy_b.Send(std::move(ack_ppdu)));
  f.sched.Run();
  const ChannelAirtime& at = f.channel.airtime();
  EXPECT_EQ(at.data_ns, data_air.ns());
  EXPECT_EQ(at.ack_ns, ack_air.ns());
  EXPECT_EQ(at.ppdus, 2u);
  EXPECT_EQ(at.collisions, 0u);
  EXPECT_EQ(at.collision_ns, 0);
}

TEST(WifiPhyTest, DoubleAttachAborts) {
  Scheduler sched;
  WirelessChannel channel{&sched};
  WifiPhy phy{&sched, Random(1)};
  channel.Attach(&phy);
  EXPECT_EQ(channel.attached_count(), 1u);
  EXPECT_DEATH(channel.Attach(&phy), "attached twice");
}

TEST(WifiPhyTest, PartialOverlapCorruptsBothFrames) {
  // B starts while A's frame is still in the air at C: neither decodes,
  // even though A's frame began cleanly — overlap corrupts *both*.
  MediumFixture f;
  ASSERT_TRUE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(2))));
  Ppdu probe = MakeTestPpdu(MacAddress::ForStation(0),
                            MacAddress::ForStation(2));
  SimTime half = SimTime::Nanos(probe.Duration().ns() / 2);
  f.sched.ScheduleAt(half, [&f]() {
    ASSERT_TRUE(f.phy_b.Send(
        MakeTestPpdu(MacAddress::ForStation(1), MacAddress::ForStation(2))));
  });
  f.sched.Run();
  EXPECT_EQ(f.lc.received, 0);
  EXPECT_EQ(f.lc.corrupted, 2);  // one OnRxCorrupted per corrupted arrival
}

// Per-PPDU scheduler event count must not grow with the attached-PHY count
// under batched delivery — the tentpole property of the dense-cell refactor.
// All receivers sit at one distance so the cell has a single arrival edge
// pair; co-located receivers is exactly the dense-cell worst case for the
// old one-event-per-PHY scheduling.
TEST(WifiPhyTest, BatchedDeliveryEventCountIndependentOfPhyCount) {
  auto events_for = [](size_t n_receivers, ChannelDeliveryMode mode) {
    Scheduler sched;
    WirelessChannel channel{&sched, mode};
    WifiPhy sender{&sched, Random(1)};
    sender.AttachTo(&channel);
    sender.set_position({0, 0});
    std::vector<std::unique_ptr<WifiPhy>> receivers;
    for (size_t i = 0; i < n_receivers; ++i) {
      auto phy = std::make_unique<WifiPhy>(&sched, Random(100 + i));
      phy->AttachTo(&channel);
      phy->set_position({5, 0});
      receivers.push_back(std::move(phy));
    }
    EXPECT_TRUE(sender.Send(
        MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(1))));
    sched.Run();
    return sched.events_executed();
  };

  uint64_t batched_small = events_for(4, ChannelDeliveryMode::kBatched);
  uint64_t batched_large = events_for(256, ChannelDeliveryMode::kBatched);
  EXPECT_EQ(batched_small, batched_large)
      << "batched per-PPDU event count must not scale with PHY count";
  // airtime bookkeeping + start edge batch + end edge batch + own tx end.
  EXPECT_EQ(batched_small, 4u);

  uint64_t per_phy_small = events_for(4, ChannelDeliveryMode::kPerPhyEvent);
  uint64_t per_phy_large = events_for(256, ChannelDeliveryMode::kPerPhyEvent);
  EXPECT_EQ(per_phy_small, 2u + 2u * 4u);
  EXPECT_EQ(per_phy_large, 2u + 2u * 256u);
}

// The two delivery modes must report identical medium behaviour, including
// under collisions, at the channel layer.
TEST(WifiPhyTest, BatchedAndPerPhyDeliveryAgreeUnderCollision) {
  auto run = [](ChannelDeliveryMode mode) {
    Scheduler sched;
    WirelessChannel channel{&sched, mode};
    WifiPhy a{&sched, Random(1)}, b{&sched, Random(2)}, c{&sched, Random(3)};
    RecordingListener la, lb, lc;
    a.AttachTo(&channel);
    b.AttachTo(&channel);
    c.AttachTo(&channel);
    a.set_listener(&la);
    b.set_listener(&lb);
    c.set_listener(&lc);
    a.set_position({0, 0});
    b.set_position({5, 0});
    c.set_position({0, 7});
    EXPECT_TRUE(a.Send(
        MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(2))));
    EXPECT_TRUE(b.Send(
        MakeTestPpdu(MacAddress::ForStation(1), MacAddress::ForStation(2))));
    sched.Run();
    EXPECT_TRUE(c.Send(
        MakeTestPpdu(MacAddress::ForStation(2), MacAddress::ForStation(0))));
    sched.Run();
    return std::tuple{la.received,   la.corrupted, lb.received,
                      lb.corrupted,  lc.received,  lc.corrupted,
                      channel.airtime()};
  };
  auto [bar, bac, bbr, bbc, bcr, bcc, bat] =
      run(ChannelDeliveryMode::kBatched);
  auto [par, pac, pbr, pbc, pcr, pcc, pat] =
      run(ChannelDeliveryMode::kPerPhyEvent);
  EXPECT_EQ(bar, par);
  EXPECT_EQ(bac, pac);
  EXPECT_EQ(bbr, pbr);
  EXPECT_EQ(bbc, pbc);
  EXPECT_EQ(bcr, pcr);
  EXPECT_EQ(bcc, pcc);
  EXPECT_EQ(bat, pat);
}

TEST(WifiPhyTest, AirtimeLedgerCountsCollisionOverlap) {
  MediumFixture f;
  ASSERT_TRUE(f.phy_a.Send(
      MakeTestPpdu(MacAddress::ForStation(0), MacAddress::ForStation(2))));
  ASSERT_TRUE(f.phy_b.Send(
      MakeTestPpdu(MacAddress::ForStation(1), MacAddress::ForStation(2))));
  f.sched.Run();
  const ChannelAirtime& at = f.channel.airtime();
  EXPECT_EQ(at.collisions, 1u);
  // Both frames identical and started simultaneously: overlap ~= airtime.
  EXPECT_GT(at.collision_ns, 0);
}

}  // namespace
}  // namespace hacksim
