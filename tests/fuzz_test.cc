// Deterministic fuzzing of every deserialisation path that consumes bytes
// off the air: corrupted or random input must never crash, hang or be
// silently accepted as valid where integrity checks exist.
#include <gtest/gtest.h>

#include "src/net/ipv4_header.h"
#include "src/net/tcp_header.h"
#include "src/net/udp_header.h"
#include "src/rohc/compressed_ack.h"
#include "src/rohc/rohc.h"
#include "src/sim/random.h"

namespace hacksim {
namespace {

std::vector<uint8_t> RandomBytes(Random& rng, size_t max_len) {
  std::vector<uint8_t> out(rng.NextBounded(max_len + 1));
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return out;
}

class FuzzSeeds : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeeds, RandomBytesNeverCrashParsers) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::vector<uint8_t> bytes = RandomBytes(rng, 128);
    {
      ByteReader r(bytes);
      (void)Ipv4Header::Deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)TcpHeader::Deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)UdpHeader::Deserialize(r);
    }
    {
      ByteReader r(bytes);
      (void)CompressedAckRecord::Deserialize(r);
    }
    (void)SplitHackPayload(bytes);
  }
}

TEST_P(FuzzSeeds, BitFlippedRecordsNeverApplySilently) {
  // Flip bits in valid compressed records; the decompressor must either
  // reject them (malformed / CRC / duplicate) or produce a packet — but a
  // packet only when the flip happened to keep the CRC-3 consistent, which
  // the CRC coverage bounds at ~1/8 of single-bit flips.
  Random rng(GetParam());
  RohcCompressor comp;
  RohcDecompressor decomp;

  TcpHeader tcp;
  tcp.src_port = 6000;
  tcp.dst_port = 5000;
  tcp.seq = 1;
  tcp.ack = 1000;
  tcp.flag_ack = true;
  tcp.window = 32768;
  tcp.timestamps = TcpTimestamps{100, 200};
  Packet base = Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                                Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
  decomp.NoteVanillaAck(base);

  int accepted_corrupt = 0;
  int total_flips = 0;
  for (int round = 0; round < 100; ++round) {
    tcp.ack += 2920;
    Packet ack = Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                                 Ipv4Address::FromOctets(10, 0, 0, 1), tcp,
                                 0);
    RohcCompressor::Result c = comp.Compress(ack);
    ASSERT_FALSE(c.bytes.empty());
    std::vector<uint8_t> corrupted = c.bytes;
    size_t byte = rng.NextBounded(corrupted.size());
    corrupted[byte] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    ++total_flips;
    ByteReader r(corrupted);
    auto rec = CompressedAckRecord::Deserialize(r);
    if (rec.has_value() && r.AtEnd()) {
      auto result = decomp.Decompress(*rec);
      if (result.status == RohcDecompressor::Status::kOk) {
        ++accepted_corrupt;
      }
    }
    // Keep the decompressor in sync for the next round regardless.
    decomp.NoteVanillaAck(ack);
    comp.ForceRefresh(ack.Flow());
  }
  // CRC-3 plus structural checks should catch the large majority.
  EXPECT_LT(accepted_corrupt, total_flips / 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace hacksim
