// EDCA tests: per-AC parameter table, pick-for-pick grant timing against a
// reference model, VO-beats-BK grant ordering, virtual-collision re-draw,
// per-AC TXOP sizing, MAC-level internal contention, the whole-scenario
// edca_enabled=false bit-identity pin, and a voice-vs-web priority smoke.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/mac80211/wifi_mac.h"
#include "src/phy80211/wifi_phy.h"
#include "src/scenario/download_scenario.h"

namespace hacksim {
namespace {

Packet TaggedUdpPacket(uint32_t payload, uint8_t tos) {
  Packet p = Packet::MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                             Ipv4Address::FromOctets(10, 0, 2, 1), 7, 9,
                             payload);
  p.mutable_ip().tos = tos;
  return p;
}

TEST(EdcaTableTest, DefaultTableMatches80211eAnnexAndTosMapping) {
  std::array<EdcaAcParams, kNumAcs> table = DefaultEdcaTable();
  EXPECT_EQ(table[kAcVo].aifsn, 2u);
  EXPECT_EQ(table[kAcVo].cw_min, 3u);
  EXPECT_EQ(table[kAcVo].cw_max, 7u);
  EXPECT_EQ(table[kAcVi].aifsn, 2u);
  EXPECT_EQ(table[kAcVi].cw_min, 7u);
  EXPECT_EQ(table[kAcVi].cw_max, 15u);
  EXPECT_EQ(table[kAcBe].aifsn, 3u);
  EXPECT_EQ(table[kAcBk].aifsn, 7u);
  EXPECT_TRUE(table[kAcBk].txop_limit.IsZero());

  // DSCP precedence → AC, the classification Enqueue applies.
  EXPECT_EQ(AcForTos(0xC0), kAcVo);  // precedence 6
  EXPECT_EQ(AcForTos(0xE0), kAcVo);  // precedence 7
  EXPECT_EQ(AcForTos(0xA0), kAcVi);  // precedence 5
  EXPECT_EQ(AcForTos(0x80), kAcVi);  // precedence 4
  EXPECT_EQ(AcForTos(0x00), kAcBe);
  EXPECT_EQ(AcForTos(0x60), kAcBe);  // precedence 3
  EXPECT_EQ(AcForTos(0x20), kAcBk);  // precedence 1
  EXPECT_EQ(AcForTos(0x40), kAcBk);  // precedence 2
}

// Drives one engine per AC parameter row through a busy pulse and predicts
// its grant instant with a reference model consuming the same RNG stream:
// grant = idle_start + AIFS + draw * slot, AIFS = SIFS + AIFSN * slot,
// draw = NextBounded(CWmin + 1) taken when the request arrives on a busy
// medium. Pick-for-pick over 20 seeds and all four rows.
TEST(EdcaEngineTest, GrantTimingMatchesReferenceModelPickForPick) {
  PhyTimings t = TimingsFor(WifiStandard::k80211a);
  std::array<EdcaAcParams, kNumAcs> table = DefaultEdcaTable();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
      const EdcaAcParams& row = table[ac];
      Scheduler sched;
      SimTime aifs = t.sifs + t.slot * row.aifsn;
      DcfEngine engine(&sched, Random(seed),
                       DcfEngine::Config{t.slot, aifs, row.cw_min,
                                         row.cw_max, SimTime::Micros(44)});
      SimTime granted;
      int grants = 0;
      engine.on_grant = [&]() {
        ++grants;
        granted = sched.Now();
      };
      sched.RunUntil(SimTime::Micros(100));
      engine.NotifyMediumBusy();
      sched.RunUntil(SimTime::Micros(150));
      engine.RequestAccess();  // busy medium: backoff drawn here
      sched.RunUntil(SimTime::Micros(400));
      SimTime idle_start = sched.Now();
      engine.NotifyMediumIdle();
      sched.Run();

      Random reference(seed);
      SimTime expected =
          idle_start + aifs +
          t.slot * static_cast<int64_t>(reference.NextBounded(row.cw_min + 1));
      ASSERT_EQ(grants, 1) << "seed " << seed << " ac " << kAcNames[ac];
      EXPECT_EQ(granted, expected) << "seed " << seed << " ac "
                                   << kAcNames[ac];
    }
  }
}

// VO's worst case (AIFSN 2 + CWmin 3 slots) beats BK's best case (AIFSN 7 +
// 0 slots), so after a fresh contention round VO must always be granted
// first, whatever either engine draws.
TEST(EdcaEngineTest, VoAlwaysBeatsBkAfterFreshContentionRound) {
  PhyTimings t = TimingsFor(WifiStandard::k80211a);
  std::array<EdcaAcParams, kNumAcs> table = DefaultEdcaTable();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Scheduler sched;
    auto make = [&](uint8_t ac) {
      const EdcaAcParams& row = table[ac];
      return std::make_unique<DcfEngine>(
          &sched, Random(seed * 31 + ac),
          DcfEngine::Config{t.slot, t.sifs + t.slot * row.aifsn, row.cw_min,
                            row.cw_max, SimTime::Micros(44)});
    };
    auto vo = make(kAcVo);
    auto bk = make(kAcBk);
    SimTime vo_grant = SimTime::Max();
    SimTime bk_grant = SimTime::Max();
    vo->on_grant = [&]() { vo_grant = sched.Now(); };
    bk->on_grant = [&]() { bk_grant = sched.Now(); };
    vo->NotifyMediumBusy();
    bk->NotifyMediumBusy();
    sched.RunUntil(SimTime::Micros(50));
    vo->RequestAccess();
    bk->RequestAccess();
    sched.RunUntil(SimTime::Micros(90));
    vo->NotifyMediumIdle();
    bk->NotifyMediumIdle();
    sched.Run();
    ASSERT_NE(vo_grant, SimTime::Max()) << "seed " << seed;
    ASSERT_NE(bk_grant, SimTime::Max()) << "seed " << seed;
    EXPECT_LT(vo_grant, bk_grant) << "seed " << seed;
  }
}

TEST(EdcaEngineTest, VirtualCollisionDoublesCwRedrawsAndKeepsPending) {
  PhyTimings t = TimingsFor(WifiStandard::k80211a);
  Scheduler sched;
  DcfEngine engine(&sched, Random(5),
                   DcfEngine::Config{t.slot, t.sifs + t.slot * 2, 3, 7,
                                     SimTime::Micros(44)});
  int grants = 0;
  SimTime last_grant;
  engine.on_grant = [&]() {
    ++grants;
    last_grant = sched.Now();
  };
  engine.NotifyMediumBusy();
  engine.RequestAccess();
  sched.RunUntil(SimTime::Micros(20));
  SimTime idle_start = sched.Now();
  engine.NotifyMediumIdle();
  EXPECT_EQ(engine.cw(), 3u);

  // The loser of an internal contention round: CW doubles, the backoff is
  // redrawn from the doubled window, and the request survives — the armed
  // grant is re-dated, not dropped.
  engine.NotifyInternalCollision();
  EXPECT_EQ(engine.cw(), 7u);
  EXPECT_TRUE(engine.access_pending());
  sched.Run();
  EXPECT_EQ(grants, 1);
  // Still a legal grant for the doubled window.
  EXPECT_GE(last_grant, idle_start + t.sifs + t.slot * 2);
  EXPECT_LE(last_grant, idle_start + t.sifs + t.slot * 2 + t.slot * 7);

  // Cap: repeated virtual collisions saturate at CWmax.
  for (int i = 0; i < 5; ++i) {
    engine.NotifyInternalCollision();
  }
  EXPECT_EQ(engine.cw(), 7u);
}

// Two-MAC harness with EDCA enabled on the sender; mirrors mac_test's
// MacPair.
struct EdcaMacPair {
  explicit EdcaMacPair(double rate_mbps) : channel(&sched) {
    WifiMacConfig cfg;
    cfg.standard = WifiStandard::k80211n;
    cfg.data_mode = ModeForRate(Modes80211n(), rate_mbps);
    cfg.edca_enabled = true;
    phy_a = std::make_unique<WifiPhy>(&sched, Random(1));
    phy_b = std::make_unique<WifiPhy>(&sched, Random(2));
    phy_a->AttachTo(&channel);
    phy_b->AttachTo(&channel);
    phy_a->set_position({0, 0});
    phy_b->set_position({5, 0});
    mac_a = std::make_unique<WifiMac>(&sched, phy_a.get(),
                                      MacAddress::ForStation(0), cfg,
                                      Random(11));
    mac_b = std::make_unique<WifiMac>(&sched, phy_b.get(),
                                      MacAddress::ForStation(1), cfg,
                                      Random(12));
    mac_b->on_rx_packet = [this](Packet p, MacAddress) {
      received_at_b.push_back(std::move(p));
    };
  }

  Scheduler sched;
  WirelessChannel channel;
  std::unique_ptr<WifiPhy> phy_a, phy_b;
  std::unique_ptr<WifiMac> mac_a, mac_b;
  std::vector<Packet> received_at_b;
};

TEST(EdcaMacTest, PerAcQueuesDeliverEverythingAndCountPerAcPpdus) {
  EdcaMacPair pair(150);
  for (uint32_t i = 0; i < 40; ++i) {
    pair.mac_a->Enqueue(TaggedUdpPacket(160, 0xC0),
                        MacAddress::ForStation(1));
    pair.mac_a->Enqueue(TaggedUdpPacket(1000, 0x00),
                        MacAddress::ForStation(1));
    pair.mac_a->Enqueue(TaggedUdpPacket(96, 0x20),
                        MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(pair.received_at_b.size(), 120u);
  const MacStats& stats = pair.mac_a->stats();
  EXPECT_GT(stats.ac_ppdus_sent[kAcVo], 0u);
  EXPECT_GT(stats.ac_ppdus_sent[kAcBe], 0u);
  EXPECT_GT(stats.ac_ppdus_sent[kAcBk], 0u);
  EXPECT_EQ(stats.ac_ppdus_sent[kAcVo] + stats.ac_ppdus_sent[kAcVi] +
                stats.ac_ppdus_sent[kAcBe] + stats.ac_ppdus_sent[kAcBk],
            stats.ppdus_sent);
}

TEST(EdcaMacTest, SaturatedAcsSufferVirtualCollisionsButAllDelivers) {
  // VO and BE both saturated inside one MAC: their engines contend on the
  // same idle edges, so some grants land on the same nanosecond and the
  // loser must re-draw (a virtual collision, not a medium collision).
  // 120 per AC stays under the default 126-packet per-(dest,AC) queue cap.
  EdcaMacPair pair(150);
  for (uint32_t i = 0; i < 120; ++i) {
    pair.mac_a->Enqueue(TaggedUdpPacket(400, 0xC0),
                        MacAddress::ForStation(1));
    pair.mac_a->Enqueue(TaggedUdpPacket(400, 0x00),
                        MacAddress::ForStation(1));
  }
  pair.sched.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(pair.received_at_b.size(), 240u);
  EXPECT_GT(pair.mac_a->stats().virtual_collisions, 0u);
}

TEST(EdcaMacTest, TxopBoundaryCapsVoAggregatesBelowBe) {
  // At 15 Mbps a 1460 B MPDU lasts ~840 us. VO's 1504 us TXOP fits one
  // MPDU per PPDU; BE falls back to the 4 ms config limit and fits ~4.
  EdcaMacPair vo_pair(15);
  EdcaMacPair be_pair(15);
  for (uint32_t i = 0; i < 12; ++i) {
    vo_pair.mac_a->Enqueue(TaggedUdpPacket(1460, 0xC0),
                           MacAddress::ForStation(1));
    be_pair.mac_a->Enqueue(TaggedUdpPacket(1460, 0x00),
                           MacAddress::ForStation(1));
  }
  vo_pair.sched.RunUntil(SimTime::Millis(50));
  be_pair.sched.RunUntil(SimTime::Millis(50));
  EXPECT_EQ(vo_pair.received_at_b.size(), 12u);
  EXPECT_EQ(be_pair.received_at_b.size(), 12u);
  EXPECT_GE(vo_pair.mac_a->stats().ppdus_sent, 12u);
  EXPECT_LE(be_pair.mac_a->stats().ppdus_sent, 4u);
}

// The whole-scenario pin: edca_enabled=false must leave the legacy MAC
// bit-identical — same goldens scale_test pins, plus all-zero EDCA stats.
// If this drifts while scale_test still passes, the EDCA plumbing itself
// (extra engines, per-AC rings, classification) perturbed the legacy path.
TEST(EdcaBitIdentityPin, EdcaOffHitsTheLegacyGoldenValues) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = 3;
  c.proto = TransportProto::kTcp;
  c.hack = HackVariant::kMoreData;
  c.duration = SimTime::Millis(800);
  c.start_stagger = SimTime::Millis(50);
  c.seed = 7;
  c.edca_enabled = false;  // explicit: the default must stay off
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.airtime.ppdus, 901u);
  EXPECT_EQ(r.aggregate_goodput_mbps, 116.30534609523809);
  EXPECT_EQ(r.ap_mac.virtual_collisions, 0u);
  for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
    EXPECT_EQ(r.ap_mac.ac_ppdus_sent[ac], 0u) << kAcNames[ac];
  }
}

// Priority smoke at scenario scale: voice flows sharing a saturated cell
// with scaled-up web flows see a lower p99 with EDCA on than off. The >= 2x
// version of this claim is gated in CI at 1000 stations (bench_scale).
TEST(EdcaScenarioTest, EdcaCutsVoiceTailLatencyUnderWebSaturation) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 45.0;
  c.n_clients = 40;
  c.proto = TransportProto::kUdp;
  c.hack = HackVariant::kOff;
  c.duration = SimTime::Seconds(3);
  c.start_stagger = SimTime::Millis(20);
  c.seed = 7;
  c.traffic_mix = {{TrafficModel::kCbrVoice, 0.1},
                   {TrafficModel::kParetoWeb, 0.9}};
  c.traffic_rate_scale = 10.0;  // ~51 Mbps offered web load: saturation

  ScenarioConfig with_edca = c;
  with_edca.edca_enabled = true;
  ScenarioResult off = RunScenario(c);
  ScenarioResult on = RunScenario(with_edca);

  ASSERT_GT(off.ac_latency[kAcVo].count, 0u);
  ASSERT_GT(on.ac_latency[kAcVo].count, 0u);
  ASSERT_GT(on.ac_latency[kAcBe].count, 0u);
  EXPECT_GT(on.ap_mac.ac_ppdus_sent[kAcVo], 0u);
  EXPECT_LT(on.ac_latency[kAcVo].p99_ms, off.ac_latency[kAcVo].p99_ms)
      << "EDCA on: VO p99 " << on.ac_latency[kAcVo].p99_ms
      << " ms, off: " << off.ac_latency[kAcVo].p99_ms << " ms";
  // Within the EDCA run, voice beats best effort.
  EXPECT_LT(on.ac_latency[kAcVo].p99_ms, on.ac_latency[kAcBe].p99_ms);
}

}  // namespace
}  // namespace hacksim
