// Analytical-model tests: every headline number the paper derives in §1/§2
// must fall out of the closed-form model.
#include <gtest/gtest.h>

#include "src/analysis/capacity_model.h"

namespace hacksim {
namespace {

CapacityParams ParamsA(double rate) {
  CapacityParams p;
  p.standard = WifiStandard::k80211a;
  p.data_mode = ModeForRate(Modes80211a(), rate);
  return p;
}

CapacityParams ParamsN(double rate) {
  CapacityParams p;
  p.standard = WifiStandard::k80211n;
  p.data_mode = ModeForRate(Modes80211nExtended(), rate);
  return p;
}

TEST(CapacityTest, MeanAcquisitionOverheadMatchesPaper) {
  // §1: 110.5 us for 802.11n EDCA best-effort.
  EXPECT_EQ(MeanAcquisitionOverhead(WifiStandard::k80211n),
            SimTime::Nanos(110'500));
  // 802.11a: DIFS 34 + 7.5 * 9 = 101.5 us.
  EXPECT_EQ(MeanAcquisitionOverhead(WifiStandard::k80211a),
            SimTime::Nanos(101'500));
}

TEST(CapacityTest, SingleFrameAt600MbpsIsNinePercent) {
  // §1: "If a 600 Mbps 802.11n sender sent single frames in this fashion,
  // it would only achieve 9% of the theoretical channel capacity."
  double eff = SingleFrameEfficiency(ParamsN(600));
  EXPECT_NEAR(eff, 0.09, 0.01);
}

TEST(CapacityTest, AmpduHolds42FullSizeMpdus) {
  // §4.3: batches of 42 packets at high rates.
  EXPECT_EQ(AmpduDataMpdus(ParamsN(150)), 42);
  EXPECT_EQ(AmpduDataMpdus(ParamsN(600)), 42);  // still 64 KB-bound
}

TEST(CapacityTest, TxopLimitsAmpduAtLowRates) {
  // §4.3: the 4 ms TXOP limit binds at low rates.
  int n15 = AmpduDataMpdus(ParamsN(15));
  EXPECT_GE(n15, 3);
  EXPECT_LE(n15, 5);
  int n45 = AmpduDataMpdus(ParamsN(45));
  EXPECT_GT(n45, n15);
  EXPECT_LT(n45, 42);
}

TEST(CapacityTest, UdpBound80211a54) {
  // §4.2: "In an ideal 802.11 MAC, UDP would achieve 30.2 Mbps" at 54 Mbps.
  double udp = UdpGoodputMbps(ParamsA(54));
  EXPECT_NEAR(udp, 30.2, 0.8);
}

TEST(CapacityTest, HackBeatsStockEverywhere) {
  for (const WifiMode& mode : Modes80211a()) {
    CapacityParams p = ParamsA(mode.rate_mbps());
    EXPECT_GT(TcpHackGoodputMbps(p), TcpGoodputMbps(p)) << mode.Name();
  }
  for (const WifiMode& mode : Modes80211nExtended()) {
    CapacityParams p = ParamsN(mode.rate_mbps());
    EXPECT_GT(TcpHackGoodputMbps(p), TcpGoodputMbps(p)) << mode.Name();
  }
}

TEST(CapacityTest, GainGrowsWithRate80211n) {
  // Fig 1(b)/§4.3: ~7% at 150 Mbps, ~20% at 600 Mbps, growing with rate
  // once A-MPDUs are byte-bound. (Below ~150 Mbps the 4 ms TXOP shrinks
  // batches, which *raises* the relative gain slightly — §4.3 notes the
  // same effect in Figure 11 — so monotonicity only holds from 150 up.)
  auto gain = [](double rate) {
    CapacityParams p = ParamsN(rate);
    return TcpHackGoodputMbps(p) / TcpGoodputMbps(p) - 1.0;
  };
  EXPECT_LT(gain(150), gain(300));
  EXPECT_LT(gain(300), gain(600));
  EXPECT_NEAR(gain(150), 0.07, 0.03);
  EXPECT_NEAR(gain(600), 0.20, 0.05);
  EXPECT_GT(gain(15), gain(60)) << "TXOP-bound low rates gain more (§4.3)";
}

TEST(CapacityTest, AverageGainBelow100MbpsIsAboutEightPercent) {
  // Fig 1(b) caption: "an 8% improvement on average ... for physical rates
  // lower than 100 Mbps".
  double total = 0;
  int count = 0;
  for (const WifiMode& mode : Modes80211n()) {
    if (mode.rate_mbps() < 100) {
      CapacityParams p = ParamsN(mode.rate_mbps());
      total += TcpHackGoodputMbps(p) / TcpGoodputMbps(p) - 1.0;
      ++count;
    }
  }
  EXPECT_NEAR(total / count, 0.08, 0.03);
}

TEST(CapacityTest, ThroughputFractionShrinksWithRate) {
  // §2.1: achievable TCP throughput is a progressively smaller fraction of
  // the PHY rate as the latter increases.
  double frac_prev = 1.0;
  for (const WifiMode& mode : Modes80211a()) {
    CapacityParams p = ParamsA(mode.rate_mbps());
    double frac = TcpGoodputMbps(p) / mode.rate_mbps();
    EXPECT_LT(frac, frac_prev) << mode.Name();
    frac_prev = frac;
  }
}

TEST(CapacityTest, Fig1aEndpoints) {
  // Figure 1(a) y-range: ~5 Mbps at the low end, <30 at the top.
  double lo = TcpGoodputMbps(ParamsA(6));
  double hi_hack = TcpHackGoodputMbps(ParamsA(54));
  EXPECT_GT(lo, 3.5);
  EXPECT_LT(lo, 6.5);
  EXPECT_GT(hi_hack, 26.0);
  EXPECT_LT(hi_hack, 31.0);
}

TEST(CapacityTest, Fig1bEndpoints) {
  // Figure 1(b): TCP/802.11n < 500 Mbps goodput even at 600 Mbps PHY;
  // TCP/HACK around 20% above stock there.
  double stock = TcpGoodputMbps(ParamsN(600));
  double hack = TcpHackGoodputMbps(ParamsN(600));
  EXPECT_GT(stock, 300.0);
  EXPECT_LT(stock, 480.0);
  EXPECT_GT(hack, stock * 1.15);
}

TEST(CapacityTest, UdpExceedsTcpEverywhere) {
  for (const WifiMode& mode : Modes80211n()) {
    CapacityParams p = ParamsN(mode.rate_mbps());
    EXPECT_GT(UdpGoodputMbps(p), TcpGoodputMbps(p)) << mode.Name();
  }
}

TEST(CapacityTest, HackApproachesUdpBound) {
  // §4.2: "If TCP/HACK encapsulated all TCP ACKs in LL ACKs, it would
  // achieve almost the same throughput as UDP."
  CapacityParams p = ParamsA(54);
  EXPECT_GT(TcpHackGoodputMbps(p), 0.93 * UdpGoodputMbps(p));
}

TEST(CapacityTest, DelayedAckRatioMatters) {
  // Footnote 1: without delayed ACKs (ratio 1), stock TCP fares worse.
  CapacityParams with_delack = ParamsA(54);
  CapacityParams without = ParamsA(54);
  without.delayed_ack_ratio = 1;
  EXPECT_GT(TcpGoodputMbps(with_delack), TcpGoodputMbps(without));
}

TEST(CapacityTest, MpduSizesFeedingModel) {
  CapacityParams p = ParamsN(150);
  EXPECT_EQ(DataMpduBytes(p), 26u + 8 + 1512 + 4);  // 1550
  EXPECT_EQ(TcpAckMpduBytes(p), 26u + 8 + 52 + 4);  // 90
  EXPECT_EQ(UdpMpduBytes(p), 26u + 8 + 1500 + 4);   // 1538
}

}  // namespace
}  // namespace hacksim
