// Traffic-model zoo tests: deterministic station→model assignment, DSCP
// tagging, name round-trips, golden per-model emission behaviour (byte
// totals, inter-arrivals, chunking), same-seed reproducibility, and the
// Stop()/Resume() epoch contract the fault engine relies on.
#include <gtest/gtest.h>

#include <vector>

#include "src/scenario/traffic_model.h"

namespace hacksim {
namespace {

struct Emission {
  SimTime at;
  uint32_t bytes;
  uint8_t tos;

  friend bool operator==(const Emission&, const Emission&) = default;
};

struct SourceHarness {
  explicit SourceHarness(TrafficSource::Config cfg)
      : source(&sched, cfg,
               FiveTuple{Ipv4Address::FromOctets(10, 0, 0, 1),
                         Ipv4Address::FromOctets(10, 0, 2, 1), 5000, 6000,
                         kIpProtoUdp},
               [this](Packet p) {
                 emissions.push_back(Emission{sched.Now(),
                                              p.payload_bytes(),
                                              p.ip().tos});
               }) {}

  Scheduler sched;
  std::vector<Emission> emissions;
  TrafficSource source;
};

TEST(TrafficMixTest, ModelForStationSplitsOnCumulativeBoundaries) {
  std::vector<TrafficMixEntry> mix = {{TrafficModel::kCbrVoice, 0.2},
                                      {TrafficModel::kParetoWeb, 0.8}};
  for (size_t i = 0; i < 10; ++i) {
    TrafficModel expect =
        i < 2 ? TrafficModel::kCbrVoice : TrafficModel::kParetoWeb;
    EXPECT_EQ(ModelForStation(mix, i, 10), expect) << "station " << i;
  }
  // Shortfall: fractions summing below 1.0 assign the tail to the last row.
  std::vector<TrafficMixEntry> shortfall = {{TrafficModel::kCbrVoice, 0.3},
                                            {TrafficModel::kIotChirp, 0.3}};
  EXPECT_EQ(ModelForStation(shortfall, 9, 10), TrafficModel::kIotChirp);
  // A single full-fraction row covers everyone.
  std::vector<TrafficMixEntry> all = {{TrafficModel::kOnOffVideo, 1.0}};
  EXPECT_EQ(ModelForStation(all, 0, 3), TrafficModel::kOnOffVideo);
  EXPECT_EQ(ModelForStation(all, 2, 3), TrafficModel::kOnOffVideo);
}

TEST(TrafficMixTest, NamesAndTosRoundTrip) {
  for (TrafficModel m :
       {TrafficModel::kCbrVoice, TrafficModel::kOnOffVideo,
        TrafficModel::kParetoWeb, TrafficModel::kIotChirp}) {
    auto parsed = ParseTrafficModel(TrafficModelName(m));
    ASSERT_TRUE(parsed.has_value()) << TrafficModelName(m);
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(ParseTrafficModel("carrier-pigeon").has_value());
  EXPECT_EQ(TosForModel(TrafficModel::kCbrVoice), 0xC0);
  EXPECT_EQ(TosForModel(TrafficModel::kOnOffVideo), 0xA0);
  EXPECT_EQ(TosForModel(TrafficModel::kParetoWeb), 0x00);
  EXPECT_EQ(TosForModel(TrafficModel::kIotChirp), 0x20);
}

TEST(TrafficModelTest, VoiceIsConstantBitRateWithRandomPhase) {
  TrafficSource::Config cfg;
  cfg.model = TrafficModel::kCbrVoice;
  cfg.seed = 42;
  SourceHarness h(cfg);
  h.source.Start();
  h.sched.RunUntil(SimTime::Seconds(1));

  ASSERT_GT(h.emissions.size(), 2u);
  SimTime phase = h.emissions.front().at;
  EXPECT_LT(phase, SimTime::Millis(20));  // phase inside one frame interval
  // Every emission: 160 B, tos 0xC0, exactly 20 ms apart.
  for (size_t i = 0; i < h.emissions.size(); ++i) {
    EXPECT_EQ(h.emissions[i].bytes, 160u);
    EXPECT_EQ(h.emissions[i].tos, 0xC0);
    EXPECT_EQ(h.emissions[i].at, phase + SimTime::Millis(20) * i);
  }
  // Golden byte total: one packet per 20 ms slot from `phase` to 1 s.
  uint64_t expected_packets =
      1 + static_cast<uint64_t>((SimTime::Seconds(1) - phase).ns() - 1) /
              static_cast<uint64_t>(SimTime::Millis(20).ns());
  EXPECT_EQ(h.source.packets_sent(), expected_packets);
  EXPECT_EQ(h.source.bytes_sent(), expected_packets * 160u);
}

TEST(TrafficModelTest, RateScaleCompressesVoiceIntervals) {
  TrafficSource::Config cfg;
  cfg.model = TrafficModel::kCbrVoice;
  cfg.seed = 42;
  cfg.rate_scale = 2.0;
  SourceHarness h(cfg);
  h.source.Start();
  h.sched.RunUntil(SimTime::Seconds(1));
  ASSERT_GT(h.emissions.size(), 2u);
  EXPECT_EQ(h.emissions[1].at - h.emissions[0].at, SimTime::Millis(10));
}

TEST(TrafficModelTest, VideoBurstsAtFrameRateThenGoesSilent) {
  TrafficSource::Config cfg;
  cfg.model = TrafficModel::kOnOffVideo;
  cfg.seed = 9;
  SourceHarness h(cfg);
  h.source.Start();
  h.sched.RunUntil(SimTime::Seconds(20));

  ASSERT_GT(h.emissions.size(), 10u);
  size_t frame_gaps = 0;
  size_t off_gaps = 0;
  for (size_t i = 1; i < h.emissions.size(); ++i) {
    EXPECT_EQ(h.emissions[i].bytes, 1200u);
    EXPECT_EQ(h.emissions[i].tos, 0xA0);
    SimTime gap = h.emissions[i].at - h.emissions[i - 1].at;
    if (gap == SimTime::Millis(3)) {
      ++frame_gaps;  // inside an ON burst
    } else {
      EXPECT_GT(gap, SimTime::Millis(3));  // OFF period
      ++off_gaps;
    }
  }
  EXPECT_GT(frame_gaps, 0u) << "no intra-burst frames in 20 s";
  EXPECT_GT(off_gaps, 0u) << "no OFF periods in 20 s";
}

TEST(TrafficModelTest, WebEmitsWholeObjectsAsMtuChunks) {
  TrafficSource::Config cfg;
  cfg.model = TrafficModel::kParetoWeb;
  cfg.seed = 3;
  SourceHarness h(cfg);
  h.source.Start();
  h.sched.RunUntil(SimTime::Seconds(30));

  ASSERT_GT(h.emissions.size(), 4u);
  uint64_t total = 0;
  for (size_t i = 0; i < h.emissions.size(); ++i) {
    EXPECT_LE(h.emissions[i].bytes, 1460u);
    EXPECT_EQ(h.emissions[i].tos, 0x00);
    total += h.emissions[i].bytes;
    // Within an object, every chunk except the last is full-sized; a short
    // chunk is always followed by a think-time gap (a new object).
    if (h.emissions[i].bytes < 1460u && i + 1 < h.emissions.size()) {
      EXPECT_GT(h.emissions[i + 1].at, h.emissions[i].at);
    }
  }
  EXPECT_EQ(h.source.bytes_sent(), total);
  // Pareto floor: every object is at least the 2 KB scale parameter.
  std::vector<uint64_t> object_sizes;
  uint64_t current = 0;
  for (size_t i = 0; i < h.emissions.size(); ++i) {
    current += h.emissions[i].bytes;
    bool object_end = i + 1 == h.emissions.size() ||
                      h.emissions[i + 1].at != h.emissions[i].at;
    if (object_end) {
      object_sizes.push_back(current);
      current = 0;
    }
  }
  for (uint64_t size : object_sizes) {
    EXPECT_GE(size, 2048u);
    EXPECT_LE(size, 256u * 1024u);
  }
}

TEST(TrafficModelTest, IotChirpsAreSmallSparseBursts) {
  TrafficSource::Config cfg;
  cfg.model = TrafficModel::kIotChirp;
  cfg.seed = 11;
  SourceHarness h(cfg);
  h.source.Start();
  h.sched.RunUntil(SimTime::Seconds(60));

  ASSERT_GT(h.emissions.size(), 4u);
  size_t burst_len = 1;
  for (size_t i = 0; i < h.emissions.size(); ++i) {
    EXPECT_EQ(h.emissions[i].bytes, 96u);
    EXPECT_EQ(h.emissions[i].tos, 0x20);
    if (i == 0) continue;
    if (h.emissions[i].at == h.emissions[i - 1].at) {
      ++burst_len;
      EXPECT_LE(burst_len, 4u);  // 1-4 packets per chirp
    } else {
      burst_len = 1;
    }
  }
  // Sparse: well under one packet per second on average would be too strict
  // (bursts), but 60 s at a 2 s mean gap can't plausibly exceed ~240.
  EXPECT_LT(h.emissions.size(), 240u);
}

TEST(TrafficModelTest, SameSeedReproducesTheExactEmissionSchedule) {
  for (TrafficModel m :
       {TrafficModel::kCbrVoice, TrafficModel::kOnOffVideo,
        TrafficModel::kParetoWeb, TrafficModel::kIotChirp}) {
    TrafficSource::Config cfg;
    cfg.model = m;
    cfg.seed = 1234;
    SourceHarness a(cfg);
    SourceHarness b(cfg);
    a.source.Start();
    b.source.Start();
    a.sched.RunUntil(SimTime::Seconds(10));
    b.sched.RunUntil(SimTime::Seconds(10));
    EXPECT_EQ(a.emissions, b.emissions) << TrafficModelName(m);
    EXPECT_GT(a.emissions.size(), 0u) << TrafficModelName(m);
  }
}

TEST(TrafficModelTest, StopStrandsTheChainAndResumeRearmsIt) {
  TrafficSource::Config cfg;
  cfg.model = TrafficModel::kCbrVoice;
  cfg.seed = 77;
  SourceHarness h(cfg);
  h.source.Start();
  h.sched.RunUntil(SimTime::Millis(500));
  h.source.Stop();
  size_t at_stop = h.emissions.size();
  ASSERT_GT(at_stop, 0u);

  // Silent while stopped: the pending tick dies on arrival.
  h.sched.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(h.emissions.size(), at_stop);

  // Resume re-arms a fresh chain; no double-rate from the stranded one.
  h.source.Resume(h.sched.Now(), SimTime::Seconds(2));
  h.sched.RunUntil(SimTime::Seconds(2));
  ASSERT_GT(h.emissions.size(), at_stop);
  for (size_t i = at_stop + 1; i < h.emissions.size(); ++i) {
    EXPECT_EQ(h.emissions[i].at - h.emissions[i - 1].at,
              SimTime::Millis(20));
  }
  // And nothing after the configured stop.
  h.sched.RunUntil(SimTime::Seconds(3));
  EXPECT_LT(h.emissions.back().at, SimTime::Seconds(2));
}

}  // namespace
}  // namespace hacksim
