// End-to-end scenario tests: full server-AP-clients topologies asserting
// the paper's qualitative results and HACK's §3.4 robustness invariants.
// These use short runs to stay fast; the bench binaries run the full-length
// versions.
#include <gtest/gtest.h>

#include "src/scenario/download_scenario.h"

namespace hacksim {
namespace {

ScenarioConfig BaseN(HackVariant hack, int clients = 1,
                     uint64_t seed = 42) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = clients;
  c.hack = hack;
  c.duration = SimTime::Seconds(2);
  c.seed = seed;
  return c;
}

ScenarioConfig BaseA(HackVariant hack, int clients = 1,
                     uint64_t seed = 42) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211a;
  c.data_rate_mbps = 54.0;
  c.n_clients = clients;
  c.hack = hack;
  c.duration = SimTime::Seconds(2);
  c.tcp.mss = 1448;
  c.seed = seed;
  return c;
}

TEST(IntegrationTest, StockDownloadReachesExpectedBand80211n) {
  ScenarioResult r = RunScenario(BaseN(HackVariant::kOff));
  // Theory bound ~125 Mbps; collisions and slow start land it 90-115.
  EXPECT_GT(r.aggregate_goodput_mbps, 85.0);
  EXPECT_LT(r.aggregate_goodput_mbps, 126.0);
  EXPECT_EQ(r.crc_failures, 0u);
}

TEST(IntegrationTest, HackBeatsStock80211n) {
  double stock = 0.0;
  double hack = 0.0;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    stock += RunScenario(BaseN(HackVariant::kOff, 1, seed))
                 .steady_aggregate_goodput_mbps;
    hack += RunScenario(BaseN(HackVariant::kMoreData, 1, seed))
                .steady_aggregate_goodput_mbps;
  }
  EXPECT_GT(hack, stock * 1.005) << "HACK must outperform stock on average";
}

TEST(IntegrationTest, HackBeatsStock80211a) {
  // The 802.11a gain is large (paper: 29-32%) because every TCP ACK costs
  // a full acquisition there.
  ScenarioResult stock = RunScenario(BaseA(HackVariant::kOff));
  ScenarioResult hack = RunScenario(BaseA(HackVariant::kMoreData));
  EXPECT_GT(hack.aggregate_goodput_mbps,
            stock.aggregate_goodput_mbps * 1.15);
}

TEST(IntegrationTest, HackEliminatesMostVanillaAcks80211a) {
  // Table 2's regime (steady bulk on 802.11a): nearly all ACKs ride LL
  // ACKs. A 2 s run still contains slow start, so the thresholds are a
  // little looser than the paper's 9050:10 steady-state split; the Table 2
  // bench runs the full 25 MB version.
  ScenarioResult r = RunScenario(BaseA(HackVariant::kMoreData));
  const HackStats& h = r.clients[0].hack;
  EXPECT_GT(h.unique_compressed_acks, 4 * h.vanilla_acks_sent)
      << "the vast majority of ACKs must ride LL ACKs (Table 2)";
  // Short runs are refresh-heavy (slow-start SACK bursts); the Table 2
  // bench checks the steady-state ~12x figure on the full 25 MB transfer.
  EXPECT_GT(h.CompressionRatio(), 3.0);
}

TEST(IntegrationTest, NoCrcFailuresInCleanRuns) {
  for (auto variant :
       {HackVariant::kMoreData, HackVariant::kOpportunistic,
        HackVariant::kExplicitTimer, HackVariant::kTimestampEcho}) {
    ScenarioResult r = RunScenario(BaseN(variant));
    EXPECT_EQ(r.crc_failures, 0u) << static_cast<int>(variant);
  }
}

TEST(IntegrationTest, NoCrcFailuresUnderLoss) {
  // §4.3: "TCP/HACK functions correctly in a lossy environment and does
  // not elicit any decompression CRC failures."
  for (double loss : {0.02, 0.10, 0.30}) {
    ScenarioConfig c = BaseA(HackVariant::kMoreData);
    c.clients.resize(1);
    c.clients[0].bernoulli_data_loss = loss;
    c.clients[0].bernoulli_control_loss = loss / 4;
    ScenarioResult r = RunScenario(c);
    EXPECT_EQ(r.crc_failures, 0u) << "loss=" << loss;
    EXPECT_GT(r.aggregate_goodput_mbps, 1.0) << "loss=" << loss;
  }
}

TEST(IntegrationTest, LossyAggregated80211nStaysCorrect) {
  for (double loss : {0.05, 0.2}) {
    ScenarioConfig c = BaseN(HackVariant::kMoreData);
    c.clients.resize(1);
    c.clients[0].bernoulli_data_loss = loss;
    c.clients[0].bernoulli_control_loss = loss / 4;
    ScenarioResult r = RunScenario(c);
    EXPECT_EQ(r.crc_failures, 0u) << "loss=" << loss;
    EXPECT_GT(r.aggregate_goodput_mbps, 5.0) << "loss=" << loss;
  }
}

TEST(IntegrationTest, FileTransferCompletesExactly) {
  ScenarioConfig c = BaseN(HackVariant::kMoreData);
  c.file_bytes = 5'000'000;
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.clients[0].bytes_delivered, 5'000'000u);
  EXPECT_GT(r.clients[0].completion_time.ns(), 0);
}

TEST(IntegrationTest, UploadDirectionWorksSymmetrically) {
  // §3.1: HACK is symmetric; uploads gain too (the AP compresses).
  ScenarioConfig stock_cfg = BaseA(HackVariant::kOff);
  stock_cfg.upload = true;
  ScenarioConfig hack_cfg = BaseA(HackVariant::kMoreData);
  hack_cfg.upload = true;
  ScenarioResult stock = RunScenario(stock_cfg);
  ScenarioResult hack = RunScenario(hack_cfg);
  EXPECT_GT(stock.aggregate_goodput_mbps, 10.0);
  EXPECT_GT(hack.aggregate_goodput_mbps,
            stock.aggregate_goodput_mbps * 1.1);
  EXPECT_EQ(hack.crc_failures, 0u);
}

TEST(IntegrationTest, UdpUnaffectedByClientCount) {
  // Fig 10: UDP goodput roughly constant vs number of clients.
  ScenarioConfig c = BaseN(HackVariant::kOff);
  c.proto = TransportProto::kUdp;
  double one = RunScenario(c).steady_aggregate_goodput_mbps;
  c.n_clients = 4;
  double four = RunScenario(c).steady_aggregate_goodput_mbps;
  EXPECT_NEAR(four / one, 1.0, 0.08);
  EXPECT_GT(one, 125.0);  // near the 135 Mbps capacity bound
}

TEST(IntegrationTest, MoreDataCompetitiveWithOpportunistic) {
  // Fig 10 comparison at 2 clients. In the paper MORE DATA clearly beats
  // the opportunistic variant; in our reproduction the two are close at
  // 802.11n (our opportunistic rides Block ACKs whenever a batch beats the
  // client's DCF access, which at saturation is common — see
  // EXPERIMENTS.md). Assert both beat stock, and MORE DATA is not worse
  // than opportunistic beyond noise.
  double stock = 0.0;
  double more_data = 0.0;
  double opportunistic = 0.0;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    stock += RunScenario(BaseN(HackVariant::kOff, 2, seed))
                 .steady_aggregate_goodput_mbps;
    more_data += RunScenario(BaseN(HackVariant::kMoreData, 2, seed))
                     .steady_aggregate_goodput_mbps;
    opportunistic +=
        RunScenario(BaseN(HackVariant::kOpportunistic, 2, seed))
            .steady_aggregate_goodput_mbps;
  }
  EXPECT_GT(more_data, stock);
  EXPECT_GT(more_data, opportunistic * 0.95);
}

TEST(IntegrationTest, NoTimeoutsInCleanHackRuns) {
  // The §3.2 stall pathology must not occur: no TCP RTOs on a clean
  // channel with MORE DATA.
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    ScenarioResult r = RunScenario(BaseN(HackVariant::kMoreData, 1, seed));
    EXPECT_EQ(r.tcp_timeouts, 0u) << "seed " << seed;
  }
}

TEST(IntegrationTest, FairnessAcrossClients) {
  // "Both TCP/HACK and TCP/802.11a are fair" (§4.2).
  for (auto variant : {HackVariant::kOff, HackVariant::kMoreData}) {
    ScenarioResult r = RunScenario(BaseN(variant, 2, 7));
    double a = r.clients[0].steady_goodput_mbps;
    double b = r.clients[1].steady_goodput_mbps;
    ASSERT_GT(a + b, 0.0);
    double jain = (a + b) * (a + b) / (2 * (a * a + b * b));
    EXPECT_GT(jain, 0.85) << static_cast<int>(variant);
  }
}

TEST(IntegrationTest, DeterministicForSeed) {
  ScenarioResult r1 = RunScenario(BaseN(HackVariant::kMoreData, 2, 123));
  ScenarioResult r2 = RunScenario(BaseN(HackVariant::kMoreData, 2, 123));
  EXPECT_DOUBLE_EQ(r1.aggregate_goodput_mbps, r2.aggregate_goodput_mbps);
  EXPECT_EQ(r1.clients[0].mac.ppdus_sent, r2.clients[0].mac.ppdus_sent);
  EXPECT_EQ(r1.ap_mac.mpdu_tx_attempts, r2.ap_mac.mpdu_tx_attempts);
}

TEST(IntegrationTest, HackReducesCollisions) {
  // Table 1 / Figure 12's mechanism: HACK removes the client's contending
  // ACK transmissions, so AP response timeouts (collision losses) drop.
  uint64_t stock_timeouts = 0;
  uint64_t hack_timeouts = 0;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    stock_timeouts += RunScenario(BaseN(HackVariant::kOff, 2, seed))
                          .ap_mac.response_timeouts;
    hack_timeouts += RunScenario(BaseN(HackVariant::kMoreData, 2, seed))
                         .ap_mac.response_timeouts;
  }
  EXPECT_LT(hack_timeouts, stock_timeouts);
}

TEST(IntegrationTest, AirtimeLedgerIsConsistent) {
  ScenarioResult r = RunScenario(BaseN(HackVariant::kMoreData, 1, 3));
  // The medium cannot be busy longer than the run.
  EXPECT_LE(r.airtime.TotalBusyNs(), r.sim_end.ns());
  EXPECT_GT(r.airtime.data_ns, 0);
  EXPECT_GT(r.airtime.ack_ns, 0);
  // Collision overlap is a small fraction of busy time on a clean channel.
  EXPECT_LT(r.airtime.collision_ns, r.airtime.TotalBusyNs() / 10);
}

TEST(IntegrationTest, SnrModelProducesRateDependentGoodput) {
  // Close in, high rate wins; far out, only low rates still work.
  ScenarioConfig c = BaseN(HackVariant::kOff);
  c.snr = SnrLossModel::Params{};
  c.clients.resize(1);
  c.clients[0].distance_m = 3.0;
  double near_fast = RunScenario(c).aggregate_goodput_mbps;
  c.clients[0].distance_m = 60.0;
  double far_fast = RunScenario(c).aggregate_goodput_mbps;
  c.data_rate_mbps = 15.0;
  double far_slow = RunScenario(c).aggregate_goodput_mbps;
  EXPECT_GT(near_fast, 60.0);
  EXPECT_LT(far_fast, 10.0);
  EXPECT_GT(far_slow, far_fast);
}

TEST(IntegrationTest, SoraQuirksReduceButDontBreakThroughput) {
  ScenarioConfig c = BaseA(HackVariant::kOff);
  ScenarioResult clean = RunScenario(c);
  c.extra_ack_delay = SimTime::Micros(37);
  c.extra_ack_timeout = SimTime::Micros(80);
  ScenarioResult sora = RunScenario(c);
  EXPECT_LT(sora.aggregate_goodput_mbps, clean.aggregate_goodput_mbps);
  EXPECT_GT(sora.aggregate_goodput_mbps,
            clean.aggregate_goodput_mbps * 0.5);
}

TEST(IntegrationTest, PayloadsFitWithinAifs) {
  // Footnote 7: ~98.5% of HACK payloads fit within AIFS. Assert a high
  // fraction rather than the exact figure.
  ScenarioResult r = RunScenario(BaseN(HackVariant::kMoreData, 1, 5));
  const MacStats& m = r.clients[0].mac;
  ASSERT_GT(m.hack_payloads_sent, 0u);
  double fit = static_cast<double>(m.hack_payloads_fit_in_aifs) /
               static_cast<double>(m.hack_payloads_sent);
  EXPECT_GT(fit, 0.90);
}

// Property sweep: every (standard, variant, loss) combination conserves
// correctness invariants — no CRC failures, bytes delivered monotone, and
// the run terminates.
struct SweepParam {
  WifiStandard standard;
  HackVariant variant;
  double loss;
};

class ScenarioSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ScenarioSweep, InvariantsHold) {
  const SweepParam& sp = GetParam();
  ScenarioConfig c = sp.standard == WifiStandard::k80211a
                         ? BaseA(sp.variant)
                         : BaseN(sp.variant);
  c.duration = SimTime::Seconds(1);
  c.clients.resize(1);
  c.clients[0].bernoulli_data_loss = sp.loss;
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.crc_failures, 0u);
  EXPECT_GT(r.clients[0].bytes_delivered, 0u);
  // The ACK pipeline must not leak: every compressed ACK the client made
  // was either delivered (recovered/duplicate at AP), flushed to vanilla,
  // or still in flight at cutoff (bounded by one payload's worth).
  const HackStats& ch = r.clients[0].hack;
  const HackStats& ah = r.ap_hack;
  if (sp.variant != HackVariant::kOff) {
    uint64_t accounted = ah.acks_recovered_at_ap + ch.flushed_to_vanilla +
                         ch.withdrawn_vanilla_won;
    EXPECT_GE(accounted + 130, ch.unique_compressed_acks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ScenarioSweep,
    ::testing::Values(
        SweepParam{WifiStandard::k80211a, HackVariant::kOff, 0.0},
        SweepParam{WifiStandard::k80211a, HackVariant::kMoreData, 0.0},
        SweepParam{WifiStandard::k80211a, HackVariant::kMoreData, 0.1},
        SweepParam{WifiStandard::k80211a, HackVariant::kOpportunistic, 0.05},
        SweepParam{WifiStandard::k80211n, HackVariant::kOff, 0.0},
        SweepParam{WifiStandard::k80211n, HackVariant::kMoreData, 0.0},
        SweepParam{WifiStandard::k80211n, HackVariant::kMoreData, 0.1},
        SweepParam{WifiStandard::k80211n, HackVariant::kOpportunistic, 0.0},
        SweepParam{WifiStandard::k80211n, HackVariant::kExplicitTimer, 0.0},
        SweepParam{WifiStandard::k80211n, HackVariant::kTimestampEcho,
                   0.0}));

}  // namespace
}  // namespace hacksim
