// HackAgent protocol tests: the MORE DATA latch, staging/retention,
// implicit confirmation, SYNC handling, Fig-7 flush semantics, the ready
// race, variants, and AP-side decompression — driven through a real
// two-station MAC/PHY so the timing is the protocol's own.
#include <gtest/gtest.h>

#include "src/node/wifi_net_device.h"

namespace hacksim {
namespace {

constexpr uint32_t kStride = 2920;

// AP-and-client harness at the device level (no TCP; we hand-craft ACKs).
struct HackFixture {
  explicit HackFixture(WifiStandard standard = WifiStandard::k80211n,
                       HackVariant variant = HackVariant::kMoreData,
                       SimTime staging = SimTime::Micros(30))
      : channel(&sched) {
    WifiMacConfig cfg;
    cfg.standard = standard;
    cfg.data_mode = ModeForRate(standard == WifiStandard::k80211a
                                    ? Modes80211a()
                                    : Modes80211n(),
                                standard == WifiStandard::k80211a ? 54 : 150);
    cfg.max_hack_payload_bytes = 400;
    ap = std::make_unique<WifiNetDevice>(&sched, &channel,
                                         MacAddress::ForStation(0), cfg,
                                         Random(21));
    client = std::make_unique<WifiNetDevice>(&sched, &channel,
                                             MacAddress::ForStation(1), cfg,
                                             Random(22));
    ap->phy().set_position({0, 0});
    client->phy().set_position({5, 0});
    HackAgentConfig hc;
    hc.variant = variant;
    hc.staging_latency = staging;
    ap->EnableHack(hc);
    client->EnableHack(hc);
    ap->on_receive = [this](Packet p, MacAddress) {
      if (p.IsPureTcpAck()) {
        acks_at_ap.push_back(std::move(p));
      }
    };
    client->on_receive = [this](Packet p, MacAddress) {
      data_at_client.push_back(std::move(p));
    };
  }

  // A downstream TCP data segment (server -> client through the AP).
  Packet MakeData(uint32_t seq) {
    TcpHeader tcp;
    tcp.src_port = 5000;
    tcp.dst_port = 6000;
    tcp.seq = seq;
    tcp.flag_ack = true;
    tcp.window = 1000;
    tcp.timestamps = TcpTimestamps{10, 20};
    return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 0, 1),
                           Ipv4Address::FromOctets(10, 0, 2, 1), tcp, 1460);
  }

  // A client-side pure TCP ACK (client -> server through the AP).
  Packet MakeAck(uint32_t ack) {
    TcpHeader tcp;
    tcp.src_port = 6000;
    tcp.dst_port = 5000;
    tcp.seq = 1;
    tcp.ack = ack;
    tcp.flag_ack = true;
    tcp.window = 32768;
    tcp.timestamps = TcpTimestamps{100, 200};
    return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                           Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
  }

  void SendBatch(int n_data, uint32_t first_seq = 1) {
    for (int i = 0; i < n_data; ++i) {
      ap->Send(MakeData(first_seq + i * 1460), MacAddress::ForStation(1));
    }
  }

  // Establishes the ROHC context: one vanilla ACK delivered over the air.
  void EstablishContext() {
    client->Send(MakeAck(1000), MacAddress::ForStation(0));
    sched.RunUntil(sched.Now() + SimTime::Millis(5));
    ASSERT_EQ(acks_at_ap.size(), 1u);
    acks_at_ap.clear();
  }

  void RunFor(SimTime d) { sched.RunUntil(sched.Now() + d); }

  Scheduler sched;
  WirelessChannel channel;
  std::unique_ptr<WifiNetDevice> ap, client;
  std::vector<Packet> acks_at_ap;
  std::vector<Packet> data_at_client;
};

TEST(HackAgentTest, VanillaBeforeContextEstablished) {
  HackFixture f;
  // Without MORE DATA (no data in flight), ACKs go vanilla regardless.
  f.client->Send(f.MakeAck(1000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(5));
  ASSERT_EQ(f.acks_at_ap.size(), 1u);
  EXPECT_EQ(f.client->hack()->stats().vanilla_acks_sent, 1u);
  EXPECT_EQ(f.client->hack()->stats().unique_compressed_acks, 0u);
}

TEST(HackAgentTest, AckRidesNextBatchBlockAck) {
  HackFixture f;
  f.EstablishContext();
  // Three batches of 42 (queue limit 126): MORE DATA set on the first two.
  f.SendBatch(126);
  f.RunFor(SimTime::Millis(4));  // batch 1 (~3.6 ms airtime) delivered
  ASSERT_GE(f.data_at_client.size(), 42u);
  // The client acknowledges mid-stream: with the latch on, this ACK stages.
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  EXPECT_TRUE(f.acks_at_ap.empty());
  // Batch 2's Block ACK carries it.
  f.RunFor(SimTime::Millis(20));
  ASSERT_EQ(f.acks_at_ap.size(), 1u);
  EXPECT_EQ(f.acks_at_ap[0].tcp().ack, 2000u);
  EXPECT_EQ(f.client->hack()->stats().unique_compressed_acks, 1u);
  EXPECT_EQ(f.ap->hack()->stats().acks_recovered_at_ap, 1u);
  EXPECT_EQ(f.ap->hack()->stats().crc_failures_at_ap, 0u);
}

TEST(HackAgentTest, ReconstructedAckIsByteIdentical) {
  HackFixture f;
  f.EstablishContext();
  f.SendBatch(126);
  f.RunFor(SimTime::Millis(4));
  Packet original = f.MakeAck(2000);
  ByteWriter expect;
  original.ip().Serialize(expect);
  original.tcp().Serialize(expect);
  f.client->Send(original, MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(20));
  ASSERT_EQ(f.acks_at_ap.size(), 1u);
  ByteWriter got;
  f.acks_at_ap[0].ip().Serialize(got);
  f.acks_at_ap[0].tcp().Serialize(got);
  EXPECT_EQ(std::vector<uint8_t>(got.bytes().begin(), got.bytes().end()),
            std::vector<uint8_t>(expect.bytes().begin(),
                                 expect.bytes().end()));
}

TEST(HackAgentTest, NoMoreDataMeansVanillaAcks) {
  HackFixture f;
  f.EstablishContext();
  // Single small batch: MORE DATA clear -> ACKs go vanilla immediately.
  f.SendBatch(2);
  f.RunFor(SimTime::Millis(2));
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(10));
  ASSERT_EQ(f.acks_at_ap.size(), 1u);
  EXPECT_GE(f.client->hack()->stats().vanilla_acks_sent, 1u);
  EXPECT_EQ(f.client->hack()->stats().unique_compressed_acks, 0u);
}

TEST(HackAgentTest, HeldAcksAreFlushedWhenLatchClears) {
  HackFixture f;
  f.EstablishContext();
  f.SendBatch(50);  // batches of 42 + 8; second batch clears the latch
  f.RunFor(SimTime::Millis(4));  // batch 1 delivered, latch on
  // Stage an ACK while the latch is on.
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  // Let both batches finish; ack 2000 rode batch 2's BA (or the
  // latch-clear flush).
  f.RunFor(SimTime::Millis(20));
  ASSERT_EQ(f.acks_at_ap.size(), 1u);
  // Latch now clear; a newer ACK goes vanilla.
  f.client->Send(f.MakeAck(4000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(20));
  ASSERT_EQ(f.acks_at_ap.size(), 2u);
  EXPECT_EQ(f.acks_at_ap[1].tcp().ack, 4000u);
}

TEST(HackAgentTest, DupacksSurviveLatchTransitions) {
  // Dupacks staged under the latch must reach the AP even if the latch
  // clears before the next batch (demoted to vanilla, not dropped) — fast
  // retransmit depends on their count (§6).
  HackFixture f;
  f.EstablishContext();
  f.SendBatch(44);  // 42 + 2: latch on for batch 1, off after batch 2
  f.RunFor(SimTime::Millis(4));  // batch 1 delivered, latch on
  for (int i = 0; i < 3; ++i) {
    f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  }
  f.RunFor(SimTime::Millis(30));
  // All three dupacks arrive (compressed on batch 2's BA, or demoted).
  int count = 0;
  for (const Packet& p : f.acks_at_ap) {
    if (p.tcp().ack == 2000u) {
      ++count;
    }
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(f.ap->hack()->stats().crc_failures_at_ap, 0u);
}

TEST(HackAgentTest, RetentionSurvivesLostBlockAck) {
  // Force the client's first Block ACK (with payload) to be lost by making
  // the AP deaf for exactly that response; the AP's BAR elicits a second
  // BA with the same retained records; MSN dedup forwards them once.
  HackFixture f;
  f.EstablishContext();
  f.SendBatch(126);
  f.RunFor(SimTime::Millis(4));  // batch 1 delivered, latch on
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  // Deafen the AP across batch 2's Block ACK (~7.3 ms) so the payload-
  // carrying BA is lost; heal later so BAR recovery can finish.
  f.sched.ScheduleIn(SimTime::Micros(500), [&]() {
    f.ap->phy().set_loss_model(
        std::make_unique<BernoulliLossModel>(1.0, 1.0));
  });
  f.sched.ScheduleIn(SimTime::Millis(10), [&]() {
    f.ap->phy().set_loss_model(std::make_unique<NoLossModel>());
  });
  f.RunFor(SimTime::Millis(100));
  // The ACK still arrives exactly once.
  int count = 0;
  for (const Packet& p : f.acks_at_ap) {
    if (p.tcp().ack == 2000u) {
      ++count;
    }
  }
  EXPECT_EQ(count, 1);
  EXPECT_EQ(f.ap->hack()->stats().crc_failures_at_ap, 0u);
  // Reliability machinery exercised: either a retained re-send happened or
  // duplicates were discarded at the AP.
  EXPECT_GT(f.client->hack()->stats().retained_resends +
                f.ap->hack()->stats().duplicates_discarded_at_ap,
            0u);
}

TEST(HackAgentTest, ReadyRaceFallsBackCleanly) {
  // Enormous staging latency: compressed ACKs are never ready when a BA
  // goes out. The protocol must not lose them: they ride a later BA or go
  // vanilla when the latch clears.
  HackFixture f(WifiStandard::k80211n, HackVariant::kMoreData,
                /*staging=*/SimTime::Millis(3));
  f.EstablishContext();
  f.SendBatch(90);  // three batches: 42 + 42 + 6
  f.RunFor(SimTime::Millis(4));
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(60));
  int count = 0;
  for (const Packet& p : f.acks_at_ap) {
    if (p.tcp().ack == 2000u) {
      ++count;
    }
  }
  EXPECT_EQ(count, 1);
}

TEST(HackAgentTest, OpportunisticDeliversExactlyOnce) {
  HackFixture f(WifiStandard::k80211n, HackVariant::kOpportunistic);
  f.EstablishContext();
  f.SendBatch(126);
  f.RunFor(SimTime::Millis(4));
  for (int i = 1; i <= 5; ++i) {
    f.client->Send(f.MakeAck(2000 + i * kStride),
                   MacAddress::ForStation(0));
  }
  f.RunFor(SimTime::Millis(40));
  // Each distinct ACK arrives exactly once (race resolved either way).
  std::map<uint32_t, int> counts;
  for (const Packet& p : f.acks_at_ap) {
    ++counts[p.tcp().ack];
  }
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(counts[2000 + i * kStride], 1) << i;
  }
}

TEST(HackAgentTest, ExplicitTimerFlushesWhenNoDataArrives) {
  HackFixture f(WifiStandard::k80211n, HackVariant::kExplicitTimer);
  f.EstablishContext();
  // No data in flight at all: the ACK stages, the timer fires, it goes
  // vanilla.
  f.client->Send(f.MakeAck(2000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(1));
  EXPECT_TRUE(f.acks_at_ap.empty()) << "held until the timer fires";
  f.RunFor(SimTime::Millis(60));
  ASSERT_EQ(f.acks_at_ap.size(), 1u);
  EXPECT_EQ(f.acks_at_ap[0].tcp().ack, 2000u);
  EXPECT_GT(f.client->hack()->stats().flushed_to_vanilla, 0u);
}

TEST(HackAgentTest, TimestampEchoVariantHoldsWhileEchoOutstanding) {
  HackFixture f(WifiStandard::k80211n, HackVariant::kTimestampEcho);
  f.EstablishContext();  // releases tsval 100 -> echo outstanding
  // Data echoing our tsval (TSecr >= 100) clears the hold (§5).
  TcpHeader tcp;
  tcp.src_port = 5000;
  tcp.dst_port = 6000;
  tcp.seq = 1;
  tcp.flag_ack = true;
  tcp.window = 1000;
  tcp.timestamps = TcpTimestamps{10, 100};
  f.ap->Send(Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 0, 1),
                             Ipv4Address::FromOctets(10, 0, 2, 1), tcp,
                             1460),
             MacAddress::ForStation(1));
  f.RunFor(SimTime::Millis(3));
  // After the echo cleared, a new ACK goes vanilla immediately.
  f.client->Send(f.MakeAck(3000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(10));
  int found = 0;
  for (const Packet& p : f.acks_at_ap) {
    if (p.tcp().ack == 3000u) {
      ++found;
    }
  }
  EXPECT_EQ(found, 1);
}

TEST(HackAgentTest, NonTcpTrafficBypassesHack) {
  HackFixture f;
  Packet udp = Packet::MakeUdp(Ipv4Address::FromOctets(10, 0, 2, 1),
                               Ipv4Address::FromOctets(10, 0, 0, 1), 7, 9,
                               500);
  f.client->Send(udp, MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(5));
  EXPECT_EQ(f.client->hack()->stats().unique_compressed_acks, 0u);
  EXPECT_EQ(f.client->hack()->stats().vanilla_acks_sent, 0u);
}

TEST(HackAgentTest, UploadDirectionCompressesAtAp) {
  // Symmetry (§3.1): for uploads the AP compresses the server's TCP ACKs
  // onto the Block ACKs it returns for the client's data batches.
  HackFixture f;
  // Client sends data to the AP continuously; the "server ACKs" arrive at
  // the AP from the wired side, i.e. f.ap->Send(ack -> client).
  // First establish context AP->client direction: one vanilla ack.
  TcpHeader tcp;
  tcp.src_port = 5000;
  tcp.dst_port = 6000;
  tcp.seq = 9;
  tcp.ack = 7777;
  tcp.flag_ack = true;
  tcp.window = 500;
  tcp.timestamps = TcpTimestamps{1, 2};
  Packet server_ack =
      Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 0, 1),
                      Ipv4Address::FromOctets(10, 0, 2, 1), tcp, 0);
  f.ap->Send(server_ack, MacAddress::ForStation(1));
  f.RunFor(SimTime::Millis(5));

  // Client uploads a large burst (MORE DATA set on its batches).
  for (int i = 0; i < 50; ++i) {
    TcpHeader data;
    data.src_port = 6000;
    data.dst_port = 5000;
    data.seq = 1 + i * 1460;
    data.flag_ack = true;
    data.window = 500;
    data.timestamps = TcpTimestamps{5, 6};
    f.client->Send(Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                                   Ipv4Address::FromOctets(10, 0, 0, 1),
                                   data, 1460),
                   MacAddress::ForStation(0));
  }
  f.RunFor(SimTime::Millis(4));  // client batch 1 arrived: AP latch on
  // Now a server ACK arrives at the AP mid-upload: it should compress and
  // ride the AP's next Block ACK to the client.
  tcp.ack = 8888;
  Packet second_ack =
      Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 0, 1),
                      Ipv4Address::FromOctets(10, 0, 2, 1), tcp, 0);
  f.ap->Send(second_ack, MacAddress::ForStation(1));
  f.RunFor(SimTime::Millis(20));
  EXPECT_GE(f.ap->hack()->stats().unique_compressed_acks, 1u);
  EXPECT_GE(f.client->hack()->stats().acks_recovered_at_ap, 1u);
  bool found = false;
  for (const Packet& p : f.data_at_client) {
    if (p.has_tcp() && p.tcp().ack == 8888u && p.payload_bytes() == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(HackAgentTest, MultipleFlowsInterleaved) {
  HackFixture f;
  auto make_ack = [&](uint16_t port, uint32_t ack) {
    TcpHeader tcp;
    tcp.src_port = port;
    tcp.dst_port = 5000;
    tcp.seq = 1;
    tcp.ack = ack;
    tcp.flag_ack = true;
    tcp.window = 32768;
    tcp.timestamps = TcpTimestamps{100, 200};
    return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                           Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
  };
  // Establish contexts for two flows.
  f.client->Send(make_ack(6000, 100), MacAddress::ForStation(0));
  f.client->Send(make_ack(6001, 100), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(5));
  f.acks_at_ap.clear();

  f.SendBatch(126);
  f.RunFor(SimTime::Millis(4));
  f.client->Send(make_ack(6000, 3000), MacAddress::ForStation(0));
  f.client->Send(make_ack(6001, 4000), MacAddress::ForStation(0));
  f.RunFor(SimTime::Millis(20));
  std::map<uint16_t, uint32_t> got;
  for (const Packet& p : f.acks_at_ap) {
    got[p.tcp().src_port] = p.tcp().ack;
  }
  EXPECT_EQ(got[6000], 3000u);
  EXPECT_EQ(got[6001], 4000u);
  EXPECT_EQ(f.ap->hack()->stats().crc_failures_at_ap, 0u);
}

TEST(HackAgentTest, PayloadByteCapSplitsAcrossLlAcks) {
  // Footnote 7: payloads are capped; overflow stays staged for the next LL
  // ACK rather than risking an oversized response.
  HackFixture f;
  f.EstablishContext();
  f.SendBatch(126);  // three batches
  f.RunFor(SimTime::Millis(4));
  // Stage far more ACK bytes than one payload allows (cap 240 B).
  for (int i = 1; i <= 150; ++i) {
    f.client->Send(f.MakeAck(2000 + i * 7), MacAddress::ForStation(0));
  }
  f.RunFor(SimTime::Millis(60));
  const HackStats& ap_stats = f.ap->hack()->stats();
  EXPECT_EQ(ap_stats.crc_failures_at_ap, 0u);
  // Not every individual ACK need arrive: the latch-clear flush keeps only
  // the newest cumulative ACK per flow (older ones are superseded). What
  // must hold: many rode LL ACK payloads, and the newest ACK arrived.
  EXPECT_GT(f.acks_at_ap.size(), 40u);
  uint32_t max_seen = 0;
  for (const Packet& p : f.acks_at_ap) {
    max_seen = std::max(max_seen, p.tcp().ack);
  }
  EXPECT_EQ(max_seen, 2000u + 150 * 7);
  // And no single payload exceeded the cap.
  const MacStats& mac_stats = f.client->mac().stats();
  if (mac_stats.hack_payloads_sent > 0) {
    EXPECT_LE(mac_stats.hack_payload_bytes_sent /
                  mac_stats.hack_payloads_sent,
              240u);
  }
}

TEST(HackAgentTest, CrossPeerCidCollisionKeepsContextsSeparate) {
  // Two *different* clients each derive CIDs from their own flows' 5-tuple
  // hashes, so they can legitimately pick the same CID — the client-side
  // compressor guard cannot see across clients. The AP must scope
  // decompressor contexts per sending peer (ROHC: CIDs are unique per
  // channel), or one client's deltas apply to the other's context: at best
  // CRC failures, at worst silently forwarding ACKs with the wrong flow's
  // addressing. This drives the AP agent directly with two peers whose
  // flows collide.
  HackFixture f;
  HackAgent* ap = f.ap->hack();

  auto make_ack = [](uint8_t host, uint16_t port, uint32_t ack) {
    TcpHeader tcp;
    tcp.src_port = port;
    tcp.dst_port = 5000;
    tcp.seq = 1;
    tcp.ack = ack;
    tcp.flag_ack = true;
    tcp.window = 32768;
    tcp.timestamps = TcpTimestamps{100, 200};
    return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, host),
                           Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
  };

  // Find a port for client B whose flow hashes to client A's CID.
  uint16_t port_a = 6000;
  uint8_t cid_a = make_ack(1, port_a, 1000).Flow().RohcCid();
  uint16_t port_b = 0;
  for (uint16_t p = 6001; p != 0; ++p) {
    if (make_ack(2, p, 1000).Flow().RohcCid() == cid_a) {
      port_b = p;
      break;
    }
  }
  ASSERT_NE(port_b, 0u);

  MacAddress mac_a = MacAddress::ForStation(1);
  MacAddress mac_b = MacAddress::ForStation(2);
  std::vector<Packet> forwarded;
  ap->forward_decompressed = [&](Packet p, MacAddress) {
    forwarded.push_back(std::move(p));
  };

  // Both peers anchor their contexts with a vanilla ACK, then stream
  // interleaved compressed records with divergent ACK trajectories.
  ap->NoteReceivedVanillaAck(make_ack(1, port_a, 1000), mac_a);
  ap->NoteReceivedVanillaAck(make_ack(2, port_b, 5), mac_b);
  RohcCompressor comp_a;
  RohcCompressor comp_b;
  for (uint32_t i = 1; i <= 8; ++i) {
    auto rec_a = comp_a.Compress(make_ack(1, port_a, 1000 + i * 1460));
    ASSERT_FALSE(rec_a.bytes.empty());
    std::vector<std::vector<uint8_t>> recs_a = {rec_a.bytes};
    ap->OnAckPayload(mac_a, BuildHackPayload(recs_a));
    auto rec_b = comp_b.Compress(make_ack(2, port_b, 5 + i * 2920));
    ASSERT_FALSE(rec_b.bytes.empty());
    std::vector<std::vector<uint8_t>> recs_b = {rec_b.bytes};
    ap->OnAckPayload(mac_b, BuildHackPayload(recs_b));
  }

  EXPECT_EQ(ap->stats().crc_failures_at_ap, 0u);
  EXPECT_EQ(ap->stats().duplicates_discarded_at_ap, 0u);
  EXPECT_EQ(ap->stats().stale_context_drops, 0u);
  ASSERT_EQ(ap->stats().acks_recovered_at_ap, 16u);
  ASSERT_EQ(forwarded.size(), 16u);
  // Every reconstructed ACK carries its own flow's addressing and its own
  // stream's cumulative ACK trajectory.
  uint32_t next_a = 1;
  uint32_t next_b = 1;
  for (const Packet& p : forwarded) {
    if (p.tcp().src_port == port_a) {
      EXPECT_EQ(p.tcp().ack, 1000 + next_a * 1460);
      ++next_a;
    } else {
      ASSERT_EQ(p.tcp().src_port, port_b);
      EXPECT_EQ(p.tcp().ack, 5 + next_b * 2920);
      ++next_b;
    }
  }
  EXPECT_EQ(next_a, 9u);
  EXPECT_EQ(next_b, 9u);
}

}  // namespace
}  // namespace hacksim
