// Unit tests: MD5 (RFC 1321 vectors), CRC family, byte IO, statistics.
#include <gtest/gtest.h>

#include <string>

#include "src/util/bitio.h"
#include "src/util/crc.h"
#include "src/util/md5.h"
#include "src/util/stats.h"

namespace hacksim {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// --- MD5: the full RFC 1321 appendix A.5 test suite --------------------------

struct Md5Vector {
  const char* input;
  const char* digest;
};

class Md5VectorTest : public ::testing::TestWithParam<Md5Vector> {};

TEST_P(Md5VectorTest, MatchesRfc1321) {
  const Md5Vector& v = GetParam();
  EXPECT_EQ(Md5::ToHex(Md5::Hash(Bytes(v.input))), v.digest);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5VectorTest,
    ::testing::Values(
        Md5Vector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Md5Vector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Md5Vector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Md5Vector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Md5Vector{"abcdefghijklmnopqrstuvwxyz",
                  "c3fcd3d76192e4007dfb496cca67e13b"},
        Md5Vector{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz012345"
                  "6789",
                  "d174ab98d277d9f5a5611c2c9f419d9f"},
        Md5Vector{"1234567890123456789012345678901234567890123456789012345678"
                  "9012345678901234567890",
                  "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5Test, IncrementalMatchesOneShot) {
  std::string data(1000, 'x');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + i % 26);
  }
  Md5 incremental;
  // Feed in awkward chunk sizes spanning block boundaries.
  size_t offset = 0;
  size_t chunk = 1;
  while (offset < data.size()) {
    size_t take = std::min(chunk, data.size() - offset);
    incremental.Update(Bytes(data.substr(offset, take)));
    offset += take;
    chunk = chunk * 2 + 1;
  }
  EXPECT_EQ(Md5::ToHex(incremental.Finish()),
            Md5::ToHex(Md5::Hash(Bytes(data))));
}

TEST(Md5Test, ExactBlockSizeInputs) {
  // 55/56/63/64/65 bytes hit every padding branch.
  for (size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string data(n, 'q');
    Md5 a;
    a.Update(Bytes(data));
    EXPECT_EQ(Md5::ToHex(a.Finish()), Md5::ToHex(Md5::Hash(Bytes(data))))
        << "n=" << n;
  }
}

TEST(Md5Test, ResetAllowsReuse) {
  Md5 hasher;
  hasher.Update(Bytes("abc"));
  (void)hasher.Finish();
  hasher.Reset();
  hasher.Update(Bytes("abc"));
  EXPECT_EQ(Md5::ToHex(hasher.Finish()),
            "900150983cd24fb0d6963f7d28e17f72");
}

// --- CRC ----------------------------------------------------------------------

TEST(CrcTest, Crc32KnownValue) {
  // The classic check value for "123456789".
  EXPECT_EQ(Crc32(Bytes("123456789")), 0xCBF43926u);
}

TEST(CrcTest, Crc16KnownValue) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  EXPECT_EQ(Crc16(Bytes("123456789")), 0x29B1);
}

TEST(CrcTest, Crc32EmptyIsZero) { EXPECT_EQ(Crc32({}), 0u); }

TEST(CrcTest, Crc3InRange) {
  for (int i = 0; i < 64; ++i) {
    uint8_t data[5] = {static_cast<uint8_t>(i), 0x55, 0xAA,
                       static_cast<uint8_t>(i * 3), 0x01};
    EXPECT_LE(Crc3Rohc(data), 7);
  }
}

TEST(CrcTest, Crc3DetectsSingleBitFlips) {
  uint8_t data[8] = {0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0};
  uint8_t base = Crc3Rohc(data);
  int detected = 0;
  int total = 0;
  for (int byte = 0; byte < 8; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= 1 << bit;
      if (Crc3Rohc(data) != base) {
        ++detected;
      }
      ++total;
      data[byte] ^= 1 << bit;
    }
  }
  // A CRC-3 detects all single-bit errors.
  EXPECT_EQ(detected, total);
}

TEST(CrcTest, Crc8DiffersFromInit) {
  EXPECT_NE(Crc8Rohc(Bytes("x")), Crc8Rohc(Bytes("y")));
}

// --- ByteWriter / ByteReader -----------------------------------------------------

TEST(BitIoTest, RoundTripAllWidths) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16Be(0x1234);
  w.WriteU32Be(0xDEADBEEF);
  w.WriteU16Le(0x5678);
  w.WriteU32Le(0xCAFEBABE);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU16Be(), 0x1234);
  EXPECT_EQ(r.ReadU32Be(), 0xDEADBEEF);
  EXPECT_EQ(r.ReadU16Le(), 0x5678);
  EXPECT_EQ(r.ReadU32Le(), 0xCAFEBABE);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BitIoTest, ReadPastEndReturnsNullopt) {
  ByteWriter w;
  w.WriteU8(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.ReadU8().has_value());
  EXPECT_FALSE(r.ReadU8().has_value());
  EXPECT_FALSE(r.ReadU16Be().has_value());
  EXPECT_FALSE(r.ReadU32Le().has_value());
  EXPECT_FALSE(r.ReadBytes(1).has_value());
}

TEST(BitIoTest, TruncatedMultiByteReadDoesNotConsume) {
  ByteWriter w;
  w.WriteU8(0x42);
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.ReadU32Be().has_value());
  EXPECT_EQ(r.ReadU8(), 0x42);  // position unchanged by the failed read
}

TEST(BitIoTest, PatchOverwrites) {
  ByteWriter w;
  w.WriteU8(0);
  w.WriteU16Be(0);
  w.PatchU8(0, 9);
  w.PatchU16Be(1, 0xBEEF);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ReadU8(), 9);
  EXPECT_EQ(r.ReadU16Be(), 0xBEEF);
}

TEST(BitIoTest, SkipAndRemaining) {
  std::vector<uint8_t> data(10, 7);
  ByteReader r(data);
  EXPECT_EQ(r.remaining(), 10u);
  EXPECT_TRUE(r.Skip(4));
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_FALSE(r.Skip(7));
  EXPECT_EQ(r.remaining(), 6u);
}

// --- RunningStats ----------------------------------------------------------------

TEST(StatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    double x = i * 0.37 - 5;
    if (i % 2 == 0) {
      a.Add(x);
    } else {
      b.Add(x);
    }
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.count(), all.count());
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(HistogramTest, BucketsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(i * 0.1);  // uniform over [0, 10)
  }
  EXPECT_EQ(h.total(), 100);
  EXPECT_EQ(h.underflow(), 0);
  EXPECT_EQ(h.overflow(), 0);
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.Quantile(0.985), 9.85, 0.2);  // footnote-7 style quantile
}

TEST(HistogramTest, OverUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-1.0);
  h.Add(2.0);
  h.Add(0.5);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.total(), 3);
}

}  // namespace
}  // namespace hacksim
