// Unit + property tests for the ROHC codec: wire-format round trips, context
// evolution, MSN dedup, CRC poisoning/recovery, and the gold invariant —
// decompressed ACKs are byte-identical to the originals.
#include <gtest/gtest.h>

#include "src/rohc/compressed_ack.h"
#include "src/rohc/rohc.h"
#include "src/sim/random.h"

namespace hacksim {
namespace {

Packet MakeAck(uint32_t ack, uint32_t tsval = 100, uint32_t tsecr = 200,
               uint16_t window = 32768, uint16_t src_port = 6000) {
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = 5000;
  tcp.seq = 1;
  tcp.ack = ack;
  tcp.flag_ack = true;
  tcp.window = window;
  tcp.timestamps = TcpTimestamps{tsval, tsecr};
  return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                         Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
}

std::vector<uint8_t> SerializePacket(const Packet& p) {
  ByteWriter w;
  p.ip().Serialize(w);
  p.tcp().Serialize(w);
  return std::move(w).Take();
}

// Compress at one end, decompress at the other, require byte identity.
class RohcPair {
 public:
  RohcCompressor comp;
  RohcDecompressor decomp;

  void Bootstrap(const Packet& vanilla) { decomp.NoteVanillaAck(vanilla); }

  RohcDecompressor::Result RoundTrip(const Packet& ack) {
    RohcCompressor::Result c = comp.Compress(ack);
    EXPECT_FALSE(c.bytes.empty());
    ByteReader r(c.bytes);
    auto rec = CompressedAckRecord::Deserialize(r);
    EXPECT_TRUE(rec.has_value());
    EXPECT_TRUE(r.AtEnd()) << "record must be self-delimiting";
    return decomp.Decompress(*rec);
  }
};

TEST(CompressedAckTest, RecordRoundTripDelta) {
  CompressedAckRecord rec;
  rec.cid = 42;
  rec.msn = 7;
  rec.crc3 = 5;
  rec.ack_mode = 2;
  rec.ack_delta = 2920;
  rec.has_ts_delta = true;
  rec.tsval_delta = 3;
  rec.tsecr_delta = 1;
  ByteWriter w;
  rec.Serialize(w);
  EXPECT_EQ(w.size(), 3u + 2 + 2);
  ByteReader r(w.bytes());
  auto parsed = CompressedAckRecord::Deserialize(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cid, 42);
  EXPECT_EQ(parsed->msn, 7);
  EXPECT_EQ(parsed->crc3, 5);
  EXPECT_EQ(parsed->ack_mode, 2);
  EXPECT_EQ(parsed->ack_delta, 2920u);
  EXPECT_TRUE(parsed->has_ts_delta);
  EXPECT_EQ(parsed->tsval_delta, 3);
  EXPECT_EQ(parsed->tsecr_delta, 1);
}

TEST(CompressedAckTest, RecordRoundTripRefreshWithSack) {
  CompressedAckRecord rec;
  rec.cid = 1;
  rec.msn = 200;
  rec.refresh = true;
  rec.refresh_has_ts = true;
  rec.seq = 111;
  rec.ack = 222;
  rec.window = 333;
  rec.tsval = 444;
  rec.tsecr = 555;
  rec.sack_blocks = {{1000, 2000}, {3000, 4000}};
  ByteWriter w;
  rec.Serialize(w);
  ByteReader r(w.bytes());
  auto parsed = CompressedAckRecord::Deserialize(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->refresh);
  EXPECT_EQ(parsed->seq, 111u);
  EXPECT_EQ(parsed->ack, 222u);
  EXPECT_EQ(parsed->window, 333);
  EXPECT_EQ(parsed->tsval, 444u);
  EXPECT_EQ(parsed->tsecr, 555u);
  ASSERT_EQ(parsed->sack_blocks.size(), 2u);
  EXPECT_EQ(parsed->sack_blocks[1], (SackBlock{3000, 4000}));
}

TEST(CompressedAckTest, StrideRecordIsThreeBytes) {
  // The paper: "3 bytes if the associated flow transmits a constant payload
  // size". Establish a stride, then check the steady-state record size.
  RohcCompressor comp;
  (void)comp.Compress(MakeAck(1000));          // refresh
  (void)comp.Compress(MakeAck(1000 + 2920));   // delta16 -> learns stride
  RohcCompressor::Result r = comp.Compress(MakeAck(1000 + 2 * 2920));
  EXPECT_EQ(r.bytes.size(), 3u);
}

TEST(CompressedAckTest, PayloadEnvelopeRoundTrip) {
  std::vector<std::vector<uint8_t>> records;
  RohcCompressor comp;
  for (int i = 0; i < 5; ++i) {
    records.push_back(comp.Compress(MakeAck(1000 + i * 2920)).bytes);
  }
  std::vector<uint8_t> payload = BuildHackPayload(records);
  auto split = SplitHackPayload(payload);
  ASSERT_TRUE(split.has_value());
  ASSERT_EQ(split->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*split)[i], records[i]);
  }
}

TEST(CompressedAckTest, MalformedPayloadRejected) {
  EXPECT_FALSE(SplitHackPayload({}).has_value());
  std::vector<uint8_t> bogus = {3, 0x01};  // claims 3 records, truncated
  EXPECT_FALSE(SplitHackPayload(bogus).has_value());
}

TEST(RohcTest, FirstRecordIsRefresh) {
  RohcCompressor comp;
  RohcCompressor::Result r = comp.Compress(MakeAck(5000));
  EXPECT_TRUE(r.was_refresh);
}

TEST(RohcTest, ByteIdenticalReconstruction) {
  RohcPair pair;
  Packet bootstrap = MakeAck(1000);
  pair.Bootstrap(bootstrap);
  for (int i = 1; i <= 50; ++i) {
    Packet original = MakeAck(1000 + i * 2920, 100 + i / 7, 200 + i / 9);
    auto result = pair.RoundTrip(original);
    ASSERT_EQ(result.status, RohcDecompressor::Status::kOk) << "i=" << i;
    EXPECT_EQ(SerializePacket(*result.packet), SerializePacket(original))
        << "i=" << i;
  }
}

TEST(RohcTest, DupacksReconstructExactly) {
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000));
  (void)pair.RoundTrip(MakeAck(2000));
  for (int i = 0; i < 5; ++i) {
    Packet dup = MakeAck(2000, 101, 201);  // same ack: dupack
    auto result = pair.RoundTrip(dup);
    ASSERT_EQ(result.status, RohcDecompressor::Status::kOk);
    EXPECT_EQ(SerializePacket(*result.packet), SerializePacket(dup));
  }
}

TEST(RohcTest, SackAcksUseRefreshAndReconstruct) {
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000));
  (void)pair.RoundTrip(MakeAck(2000));
  Packet sacked = MakeAck(2000, 105, 205);
  sacked.mutable_tcp().sack_blocks = {{5000, 6460}, {8000, 9460}};
  sacked.mutable_ip().total_length =
      static_cast<uint16_t>(20 + sacked.tcp().HeaderBytes());
  RohcCompressor::Result c = pair.comp.Compress(sacked);
  ASSERT_FALSE(c.bytes.empty());
  EXPECT_TRUE(c.was_refresh);
  ByteReader r(c.bytes);
  auto rec = CompressedAckRecord::Deserialize(r);
  auto result = pair.decomp.Decompress(*rec);
  ASSERT_EQ(result.status, RohcDecompressor::Status::kOk);
  EXPECT_EQ(SerializePacket(*result.packet), SerializePacket(sacked));
}

TEST(RohcTest, WindowChangeEncodes) {
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000, 100, 200, 32768));
  (void)pair.RoundTrip(MakeAck(2000, 100, 200, 32768));
  Packet changed = MakeAck(3000, 100, 200, 16384);
  auto result = pair.RoundTrip(changed);
  ASSERT_EQ(result.status, RohcDecompressor::Status::kOk);
  EXPECT_EQ(result.packet->tcp().window, 16384);
  EXPECT_EQ(SerializePacket(*result.packet), SerializePacket(changed));
}

TEST(RohcTest, LargeTimestampJumpForcesRefresh) {
  RohcCompressor comp;
  (void)comp.Compress(MakeAck(1000, 100, 200));
  RohcCompressor::Result r = comp.Compress(MakeAck(2000, 100 + 1000, 200));
  EXPECT_TRUE(r.was_refresh);
}

TEST(RohcTest, MsnDuplicateDiscard) {
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000));
  RohcCompressor::Result c = pair.comp.Compress(MakeAck(2000));
  ByteReader r1(c.bytes);
  auto rec = CompressedAckRecord::Deserialize(r1);
  EXPECT_EQ(pair.decomp.Decompress(*rec).status,
            RohcDecompressor::Status::kOk);
  // Retained re-send of the same record: discarded as duplicate.
  EXPECT_EQ(pair.decomp.Decompress(*rec).status,
            RohcDecompressor::Status::kDuplicate);
  EXPECT_EQ(pair.decomp.duplicates(), 1u);
}

TEST(RohcTest, RetainedRunReplayOnlyAppliesNewRecords) {
  // Payload [R1 R2] applied, then [R1 R2 R3] re-sent: R1, R2 dups, R3 ok.
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000));
  auto c1 = pair.comp.Compress(MakeAck(2000));
  auto c2 = pair.comp.Compress(MakeAck(3000));
  auto c3 = pair.comp.Compress(MakeAck(4000));
  auto decode = [&](const std::vector<uint8_t>& bytes) {
    ByteReader r(bytes);
    return pair.decomp.Decompress(*CompressedAckRecord::Deserialize(r));
  };
  EXPECT_EQ(decode(c1.bytes).status, RohcDecompressor::Status::kOk);
  EXPECT_EQ(decode(c2.bytes).status, RohcDecompressor::Status::kOk);
  EXPECT_EQ(decode(c1.bytes).status, RohcDecompressor::Status::kDuplicate);
  EXPECT_EQ(decode(c2.bytes).status, RohcDecompressor::Status::kDuplicate);
  auto r3 = decode(c3.bytes);
  ASSERT_EQ(r3.status, RohcDecompressor::Status::kOk);
  EXPECT_EQ(r3.packet->tcp().ack, 4000u);
}

TEST(RohcTest, NoContextWithoutBootstrap) {
  RohcCompressor comp;
  RohcDecompressor decomp;
  auto c = comp.Compress(MakeAck(2000));
  ByteReader r(c.bytes);
  auto rec = CompressedAckRecord::Deserialize(r);
  EXPECT_EQ(decomp.Decompress(*rec).status,
            RohcDecompressor::Status::kNoContext);
}

TEST(RohcTest, CorruptedDeltaPoisonsContextAndVanillaHeals) {
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000));
  (void)pair.RoundTrip(MakeAck(2000));

  // Simulate a desync: a delta record compressed against context state the
  // decompressor never saw (as if an unconfirmed record were dropped).
  RohcCompressor::Result skipped = pair.comp.Compress(MakeAck(3000));
  (void)skipped;  // never delivered
  RohcCompressor::Result next = pair.comp.Compress(MakeAck(3500));
  ByteReader r(next.bytes);
  auto rec = CompressedAckRecord::Deserialize(r);
  auto result = pair.decomp.Decompress(*rec);
  EXPECT_EQ(result.status, RohcDecompressor::Status::kCrcFailure);
  EXPECT_EQ(pair.decomp.crc_failures(), 1u);

  // Further delta records are dropped as stale...
  RohcCompressor::Result more = pair.comp.Compress(MakeAck(3600));
  ByteReader r2(more.bytes);
  auto rec2 = CompressedAckRecord::Deserialize(r2);
  EXPECT_EQ(pair.decomp.Decompress(*rec2).status,
            RohcDecompressor::Status::kStale);

  // ...until a vanilla ACK re-anchors the context.
  Packet vanilla = MakeAck(4000, 110, 210);
  pair.decomp.NoteVanillaAck(vanilla);
  pair.comp.ForceRefresh(vanilla.Flow());
  auto healed = pair.RoundTrip(MakeAck(5000, 110, 210));
  EXPECT_EQ(healed.status, RohcDecompressor::Status::kOk);
}

TEST(RohcTest, VanillaFallbackThenRefreshChainsCorrectly) {
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000));
  (void)pair.RoundTrip(MakeAck(2000));
  // Vanilla fallback (e.g. MORE DATA cleared).
  Packet vanilla = MakeAck(3000, 103, 203);
  pair.comp.ForceRefresh(vanilla.Flow());
  pair.decomp.NoteVanillaAck(vanilla);
  // Next compressed record must be a refresh and must decode.
  Packet after = MakeAck(4000, 104, 204);
  RohcCompressor::Result c = pair.comp.Compress(after);
  EXPECT_TRUE(c.was_refresh);
  ByteReader r(c.bytes);
  auto result =
      pair.decomp.Decompress(*CompressedAckRecord::Deserialize(r));
  ASSERT_EQ(result.status, RohcDecompressor::Status::kOk);
  EXPECT_EQ(SerializePacket(*result.packet), SerializePacket(after));
}

TEST(RohcTest, StaleVanillaDoesNotRewindContext) {
  // A vanilla ACK older than the newest compressed state must not rewind
  // the decompressor (DCF-queued vanillas can arrive late).
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000));
  (void)pair.RoundTrip(MakeAck(5000));
  pair.decomp.NoteVanillaAck(MakeAck(2000));  // late, stale
  auto result = pair.RoundTrip(MakeAck(5100, 101, 201));
  EXPECT_EQ(result.status, RohcDecompressor::Status::kOk);
  EXPECT_EQ(result.packet->tcp().ack, 5100u);
}

TEST(RohcTest, EqualAckOlderTimestampVanillaDoesNotRewind) {
  // Regression: a DCF-delayed vanilla *dupack* (equal ACK number, older
  // timestamps) must not rewind the context's timestamp state either —
  // this desynced the delta chain in early versions.
  RohcPair pair;
  pair.Bootstrap(MakeAck(1000, 100, 200));
  (void)pair.RoundTrip(MakeAck(5000, 150, 250));
  pair.decomp.NoteVanillaAck(MakeAck(5000, 120, 220));  // late dupack
  Packet next = MakeAck(5000, 151, 251);  // compressed dupack, newer ts
  auto result = pair.RoundTrip(next);
  ASSERT_EQ(result.status, RohcDecompressor::Status::kOk);
  EXPECT_EQ(SerializePacket(*result.packet), SerializePacket(next));
}

TEST(RohcTest, CidCollisionFallsBackToVanilla) {
  // Find two distinct flows with the same CID, then check the younger one
  // is refused compression.
  FiveTuple base{Ipv4Address::FromOctets(10, 0, 2, 1),
                 Ipv4Address::FromOctets(10, 0, 0, 1), 6000, 5000, 6};
  uint8_t cid = base.RohcCid();
  uint16_t collider_port = 0;
  for (uint16_t p = 6001; p != 6000; ++p) {
    FiveTuple t = base;
    t.src_port = p;
    if (t.RohcCid() == cid) {
      collider_port = p;
      break;
    }
  }
  ASSERT_NE(collider_port, 0);
  RohcCompressor comp;
  EXPECT_FALSE(comp.Compress(MakeAck(1000, 1, 1, 100, 6000)).bytes.empty());
  EXPECT_TRUE(
      comp.Compress(MakeAck(1000, 1, 1, 100, collider_port)).bytes.empty());
  EXPECT_EQ(comp.cid_collisions(), 1u);
}

// Property sweep: randomized ACK streams (strides, dupacks, ts jitter,
// window changes) always reconstruct byte-identically in order.
class RohcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RohcPropertyTest, RandomStreamsRoundTrip) {
  Random rng(GetParam());
  RohcPair pair;
  uint32_t ack = 1000;
  uint32_t tsval = 50;
  uint32_t tsecr = 80;
  uint16_t window = 32768;
  pair.Bootstrap(MakeAck(ack, tsval, tsecr, window));
  for (int i = 0; i < 300; ++i) {
    switch (rng.NextBounded(5)) {
      case 0:
        break;  // dupack
      case 1:
        ack += 2920;
        break;
      case 2:
        ack += static_cast<uint32_t>(rng.NextBounded(100000));
        break;
      case 3:
        tsval += static_cast<uint32_t>(rng.NextBounded(400));
        break;
      default:
        window = static_cast<uint16_t>(1 + rng.NextBounded(65535));
        break;
    }
    tsecr += static_cast<uint32_t>(rng.NextBounded(3));
    Packet original = MakeAck(ack, tsval, tsecr, window);
    auto result = pair.RoundTrip(original);
    ASSERT_EQ(result.status, RohcDecompressor::Status::kOk) << "i=" << i;
    ASSERT_EQ(SerializePacket(*result.packet), SerializePacket(original))
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RohcPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Compression-ratio property: steady bulk streams compress ~12x or better
// (Table 2 reports 12x).
TEST(RohcTest, BulkStreamCompressionRatio) {
  RohcCompressor comp;
  uint64_t bytes = 0;
  int n = 1000;
  uint32_t tsval = 100;
  for (int i = 0; i < n; ++i) {
    if (i % 9 == 0) {
      ++tsval;  // ~ms-granularity timestamp ticks
    }
    auto r = comp.Compress(MakeAck(1000 + i * 2920, tsval, tsval));
    bytes += r.bytes.size();
  }
  double ratio = 52.0 * n / static_cast<double>(bytes);
  EXPECT_GT(ratio, 12.0);
}

}  // namespace
}  // namespace hacksim
