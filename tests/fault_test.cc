// Fault-injection engine + liveness watchdog tests.
//
// 1. FaultPlan grammar: parse/ToString round-trips exactly, malformed
//    plans are rejected whole, StartsAbsent/MaxStation semantics.
// 2. FaultPlan::Generate is deterministic from its seed and stays inside
//    the (n_clients, duration) envelope.
// 3. SimWatchdog unit behaviour with abort_on_trip=false: stall, NAV-leak
//    and arena-leak probes trip; a healthy cell never trips; a zero
//    interval schedules nothing.
// 4. Scenario integration: an empty plan with the watchdog auditing is
//    behaviour-identical to a legacy run; churn, AP outage, radio resets
//    and randomized plans all complete with zero trips and zero CRC
//    failures; post-fault goodput recovers after an AP restart.
#include <gtest/gtest.h>

#include <string>

#include "src/scenario/download_scenario.h"
#include "src/scenario/fault_plan.h"
#include "src/sim/sim_watchdog.h"

namespace hacksim {
namespace {

// --- FaultPlan grammar ------------------------------------------------------

TEST(FaultPlanTest, ParseAndToStringRoundTrip) {
  auto plan = FaultPlan::Parse(
      "leave@10000us:1;reset@50000us:0;crash@120000us:3;join@250000us:3;"
      "ap-down@300000us;ap-up@350000us;burst@400000us:0.25;burst-end@420000us");
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->events.size(), 8u);
  EXPECT_TRUE(plan->HasBursts());
  EXPECT_EQ(plan->MaxStation(), 3);
  // Station 3's first event is a crash, so it starts present.
  EXPECT_FALSE(plan->StartsAbsent(3));

  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->events, plan->events);
}

TEST(FaultPlanTest, StartsAbsentWhenFirstEventIsJoin) {
  auto plan = FaultPlan::Parse("join@100000us:2;crash@200000us:2");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->StartsAbsent(2));
  EXPECT_FALSE(plan->StartsAbsent(0));  // no events at all -> present
}

TEST(FaultPlanTest, CommaSeparatorAndBareMicros) {
  auto plan = FaultPlan::Parse("crash@1000:0, join@2000:0");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->events.size(), 2u);
  EXPECT_EQ(plan->events[0].at, SimTime::Micros(1000));
  EXPECT_EQ(plan->events[1].type, FaultType::kJoin);
}

TEST(FaultPlanTest, MalformedPlansRejectedWhole) {
  EXPECT_FALSE(FaultPlan::Parse("crash@").has_value());
  EXPECT_FALSE(FaultPlan::Parse("frobnicate@10us:1").has_value());
  EXPECT_FALSE(FaultPlan::Parse("crash@10us").has_value());  // missing station
  EXPECT_FALSE(FaultPlan::Parse("ap-down@10us:1").has_value());  // extra arg
  EXPECT_FALSE(FaultPlan::Parse("burst@10us:1.5").has_value());  // p > 1
  EXPECT_FALSE(FaultPlan::Parse("burst@10us:0").has_value());    // p == 0
  EXPECT_FALSE(FaultPlan::Parse("crash@-5us:1").has_value());
  // One bad token poisons the whole plan.
  EXPECT_FALSE(FaultPlan::Parse("crash@10us:1;bogus").has_value());
}

TEST(FaultPlanTest, SortByTimeIsStable) {
  FaultPlan plan;
  plan.events.push_back({SimTime::Micros(300), FaultType::kApUp, -1, 0.0});
  plan.events.push_back({SimTime::Micros(100), FaultType::kCrash, 0, 0.0});
  plan.events.push_back({SimTime::Micros(100), FaultType::kCrash, 1, 0.0});
  plan.SortByTime();
  EXPECT_EQ(plan.events[0].station, 0);
  EXPECT_EQ(plan.events[1].station, 1);
  EXPECT_EQ(plan.events[2].type, FaultType::kApUp);
}

TEST(FaultPlanTest, GenerateIsDeterministicAndBounded) {
  const SimTime dur = SimTime::Seconds(1);
  FaultPlan a = FaultPlan::Generate(42, 10, dur);
  FaultPlan b = FaultPlan::Generate(42, 10, dur);
  EXPECT_EQ(a.events, b.events);
  EXPECT_FALSE(a.empty());
  EXPECT_LT(a.MaxStation(), 10);
  for (const FaultEvent& ev : a.events) {
    EXPECT_GT(ev.at.ns(), 0);
    EXPECT_LT(ev.at.ns(), dur.ns());
    if (ev.type == FaultType::kBurstStart) {
      EXPECT_GT(ev.extra_loss, 0.0);
      EXPECT_LE(ev.extra_loss, 1.0);
    }
  }
  // A generated plan round-trips through its string form.
  auto reparsed = FaultPlan::Parse(a.ToString());
  ASSERT_TRUE(reparsed.has_value());
  a.SortByTime();
  EXPECT_EQ(reparsed->events, a.events);
}

TEST(FaultPlanTest, GeneratedPlansVaryWithSeed) {
  // Not guaranteed pairwise-distinct in principle, but these seeds are.
  FaultPlan a = FaultPlan::Generate(1, 8, SimTime::Seconds(1));
  FaultPlan b = FaultPlan::Generate(2, 8, SimTime::Seconds(1));
  EXPECT_NE(a.ToString(), b.ToString());
}

// --- SimWatchdog unit behaviour --------------------------------------------

struct WatchdogHarness {
  Scheduler scheduler;
  uint64_t progress = 0;
  bool backlog = false;
  SimTime nav;

  SimWatchdog Make(WatchdogConfig cfg) {
    cfg.abort_on_trip = false;
    SimWatchdog wd(&scheduler, cfg);
    wd.set_progress_probe([this] { return progress; });
    wd.set_backlog_probe([this] { return backlog; });
    wd.set_nav_probe([this] { return nav; });
    return wd;
  }
};

TEST(SimWatchdogTest, ZeroIntervalSchedulesNothing) {
  WatchdogHarness h;
  SimWatchdog wd = h.Make(WatchdogConfig{});
  wd.Start();
  EXPECT_EQ(h.scheduler.pending_events(), 0u);
  EXPECT_EQ(wd.stats().checks, 0u);
}

TEST(SimWatchdogTest, TripsOnStalledBacklog) {
  WatchdogHarness h;
  WatchdogConfig cfg;
  cfg.interval = SimTime::Millis(1);
  cfg.stall_checks = 3;
  SimWatchdog wd = h.Make(cfg);
  h.backlog = true;  // backlog forever, progress frozen
  wd.Start();
  h.scheduler.RunUntil(SimTime::Millis(10));
  EXPECT_GE(wd.stats().checks, 9u);
  EXPECT_GT(wd.stats().trips, 0u);
}

TEST(SimWatchdogTest, NoTripWhileProgressAdvances) {
  WatchdogHarness h;
  WatchdogConfig cfg;
  cfg.interval = SimTime::Millis(1);
  cfg.stall_checks = 3;
  SimWatchdog wd = h.Make(cfg);
  h.backlog = true;
  for (int i = 1; i <= 20; ++i) {
    h.scheduler.ScheduleAt(SimTime::Millis(i), [&h] { ++h.progress; });
  }
  wd.Start();
  h.scheduler.RunUntil(SimTime::Millis(20));
  EXPECT_GT(wd.stats().checks, 0u);
  EXPECT_EQ(wd.stats().trips, 0u);
}

TEST(SimWatchdogTest, IdleCellWithoutBacklogNeverStalls) {
  WatchdogHarness h;
  WatchdogConfig cfg;
  cfg.interval = SimTime::Millis(1);
  cfg.stall_checks = 1;
  SimWatchdog wd = h.Make(cfg);
  wd.Start();  // backlog=false, progress frozen: idle, not stalled
  h.scheduler.RunUntil(SimTime::Millis(10));
  EXPECT_GT(wd.stats().checks, 0u);
  EXPECT_EQ(wd.stats().trips, 0u);
}

TEST(SimWatchdogTest, TripsOnNavLeak) {
  WatchdogHarness h;
  WatchdogConfig cfg;
  cfg.interval = SimTime::Millis(1);
  cfg.max_nav_reservation = SimTime::Millis(5);
  SimWatchdog wd = h.Make(cfg);
  h.nav = SimTime::Seconds(30);  // parked far past any legal TXOP
  wd.Start();
  h.scheduler.RunUntil(SimTime::Millis(3));
  EXPECT_GT(wd.stats().trips, 0u);
}

TEST(SimWatchdogTest, TripsOnArenaLeak) {
  WatchdogHarness h;
  WatchdogConfig cfg;
  cfg.interval = SimTime::Millis(1);
  cfg.max_pending_events = 4;
  SimWatchdog wd = h.Make(cfg);
  for (int i = 0; i < 16; ++i) {
    h.scheduler.ScheduleAt(SimTime::Seconds(100), [] {});
  }
  wd.Start();
  h.scheduler.RunUntil(SimTime::Millis(3));
  EXPECT_GT(wd.stats().trips, 0u);
  EXPECT_GE(wd.stats().max_pending_seen, 16u);
}

// --- scenario integration ---------------------------------------------------

ScenarioConfig BaseConfig(int n_clients, TransportProto proto,
                          HackVariant hack) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = n_clients;
  c.proto = proto;
  c.hack = hack;
  c.duration = SimTime::Millis(400);
  c.start_stagger = SimTime::Millis(5);
  c.seed = 7;
  return c;
}

TEST(FaultScenarioTest, EmptyPlanWithWatchdogIsBehaviourIdentical) {
  ScenarioConfig c = BaseConfig(3, TransportProto::kTcp, HackVariant::kMoreData);
  c.duration = SimTime::Millis(600);
  ScenarioResult legacy = RunScenario(c);
  c.watchdog_interval = SimTime::Millis(10);
  ScenarioResult audited = RunScenario(c);
  EXPECT_TRUE(audited.BehaviourEquals(legacy))
      << "watchdog audits changed behaviour: goodput "
      << audited.aggregate_goodput_mbps << " vs "
      << legacy.aggregate_goodput_mbps;
  EXPECT_GT(audited.watchdog.checks, 0u);
  EXPECT_EQ(audited.watchdog.trips, 0u);
  EXPECT_EQ(audited.fault, FaultStats{});
}

TEST(FaultScenarioTest, ChurnedUdpCellSurvivesAndRecovers) {
  ScenarioConfig c = BaseConfig(8, TransportProto::kUdp, HackVariant::kOff);
  c.fault_plan = FaultPlan::Churn(c.n_clients, c.duration);
  c.watchdog_interval = SimTime::Millis(10);
  ScenarioResult r = RunScenario(c);
  EXPECT_GT(r.fault.crashes, 0u);
  EXPECT_EQ(r.fault.joins, r.fault.crashes);  // every churner rejoins
  EXPECT_EQ(r.watchdog.trips, 0u);
  EXPECT_EQ(r.crc_failures, 0u);
  EXPECT_GT(r.aggregate_goodput_mbps, 0.0);
  EXPECT_GT(r.post_fault_goodput_mbps, 0.0);
}

TEST(FaultScenarioTest, ApOutageGoodputRecoversAfterRestart) {
  ScenarioConfig c = BaseConfig(4, TransportProto::kUdp, HackVariant::kOff);
  ScenarioResult fault_free = RunScenario(c);

  c.fault_plan = FaultPlan::ApOutage(c.duration);
  c.watchdog_interval = SimTime::Millis(10);
  ScenarioResult faulted = RunScenario(c);
  EXPECT_EQ(faulted.fault.ap_outages, 1u);
  EXPECT_EQ(faulted.fault.ap_restarts, 1u);
  EXPECT_EQ(faulted.watchdog.trips, 0u);
  EXPECT_EQ(faulted.crc_failures, 0u);
  // The outage costs goodput over the whole run...
  EXPECT_LT(faulted.aggregate_goodput_mbps, fault_free.aggregate_goodput_mbps);
  // ...but the post-restart rate recovers to at least half the fault-free
  // aggregate (the same gate the bench rows enforce at scale).
  EXPECT_GE(faulted.post_fault_goodput_mbps,
            0.5 * fault_free.aggregate_goodput_mbps)
      << "post-fault " << faulted.post_fault_goodput_mbps << " vs fault-free "
      << fault_free.aggregate_goodput_mbps;
}

TEST(FaultScenarioTest, TcpFlowsSurviveSilentCrashAndRejoin) {
  ScenarioConfig c = BaseConfig(3, TransportProto::kTcp, HackVariant::kMoreData);
  c.duration = SimTime::Millis(600);
  auto plan = FaultPlan::Parse("crash@150000us:1;join@300000us:1");
  ASSERT_TRUE(plan.has_value());
  c.fault_plan = *plan;
  c.watchdog_interval = SimTime::Millis(10);
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.fault.crashes, 1u);
  EXPECT_EQ(r.fault.joins, 1u);
  EXPECT_EQ(r.watchdog.trips, 0u);
  EXPECT_EQ(r.crc_failures, 0u);
  // The two untouched clients keep delivering.
  EXPECT_GT(r.clients[0].bytes_delivered, 0u);
  EXPECT_GT(r.clients[2].bytes_delivered, 0u);
}

TEST(FaultScenarioTest, LeaveRecyclesStationAndLateJoinerTakesOver) {
  ScenarioConfig c = BaseConfig(4, TransportProto::kUdp, HackVariant::kOff);
  // Station 1 leaves cleanly; station 3 exists only after mid-run join.
  auto plan = FaultPlan::Parse(
      "join@50000us:3;leave@150000us:1;crash@250000us:0;join@320000us:0");
  ASSERT_TRUE(plan.has_value());
  c.fault_plan = *plan;
  c.watchdog_interval = SimTime::Millis(10);
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.fault.leaves, 1u);
  EXPECT_EQ(r.fault.crashes, 1u);
  EXPECT_EQ(r.fault.joins, 2u);
  EXPECT_EQ(r.watchdog.trips, 0u);
  EXPECT_EQ(r.crc_failures, 0u);
  // The late joiner received traffic only after its join.
  EXPECT_GT(r.clients[3].bytes_delivered, 0u);
  // The leaver stopped receiving but still delivered before leaving.
  EXPECT_GT(r.clients[1].bytes_delivered, 0u);
}

TEST(FaultScenarioTest, RadioResetsAndBurstsDoNotWedgeTheCell) {
  ScenarioConfig c = BaseConfig(4, TransportProto::kUdp, HackVariant::kOff);
  c.upload = true;  // resets hit the transmitting side's queues
  auto plan = FaultPlan::Parse(
      "reset@100000us:2;burst@150000us:0.4;burst-end@220000us;reset@250000us:2");
  ASSERT_TRUE(plan.has_value());
  c.fault_plan = *plan;
  c.watchdog_interval = SimTime::Millis(10);
  ScenarioResult r = RunScenario(c);
  EXPECT_EQ(r.fault.radio_resets, 2u);
  EXPECT_EQ(r.fault.bursts, 1u);
  EXPECT_EQ(r.watchdog.trips, 0u);
  EXPECT_EQ(r.crc_failures, 0u);
  EXPECT_GT(r.aggregate_goodput_mbps, 0.0);
}

TEST(FaultScenarioTest, FixedSeedRandomPlansAllSurvive) {
  // A miniature of tools/fault_fuzz.cc kept inside the default suite: a
  // handful of generated plans across both transports, zero trips.
  for (uint64_t i = 1; i <= 6; ++i) {
    ScenarioConfig c =
        BaseConfig(6, i % 2 == 0 ? TransportProto::kUdp : TransportProto::kTcp,
                   i % 3 == 0 ? HackVariant::kMoreData : HackVariant::kOff);
    c.duration = SimTime::Millis(250);
    c.seed = i;
    c.fault_plan = FaultPlan::Generate(1000 + i, c.n_clients, c.duration);
    c.watchdog_interval = SimTime::Millis(5);
    ScenarioResult r = RunScenario(c);
    EXPECT_EQ(r.watchdog.trips, 0u) << "plan: " << c.fault_plan.ToString();
    EXPECT_EQ(r.crc_failures, 0u) << "plan: " << c.fault_plan.ToString();
  }
}

}  // namespace
}  // namespace hacksim
