// Unit tests for the DCF/EDCA channel-access engine: AIFS deferral, backoff
// freezing/resumption, immediate access, CW doubling, EIFS.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/mac80211/dcf.h"
#include "src/phy80211/wifi_mode.h"

namespace hacksim {
namespace {

class DcfFixture : public ::testing::Test {
 protected:
  DcfFixture() {
    PhyTimings t = TimingsFor(WifiStandard::k80211a);
    DcfEngine::Config cfg{t.slot, t.difs, t.cw_min, t.cw_max,
                          SimTime::Micros(44)};
    dcf_ = std::make_unique<DcfEngine>(&sched_, Random(99), cfg);
    dcf_->on_grant = [this]() {
      ++grants_;
      last_grant_ = sched_.Now();
    };
  }

  Scheduler sched_;
  std::unique_ptr<DcfEngine> dcf_;
  int grants_ = 0;
  SimTime last_grant_;
};

TEST_F(DcfFixture, ImmediateAccessAfterLongIdle) {
  // Medium idle since t=0; request at t=1ms: grant after (at most) AIFS.
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  // Idle since t=0 means AIFS long since satisfied: immediate grant.
  EXPECT_EQ(last_grant_, SimTime::Millis(1));
}

TEST_F(DcfFixture, FreshIdleWaitsAifs) {
  dcf_->NotifyMediumBusy();
  sched_.RunUntil(SimTime::Micros(100));
  dcf_->RequestAccess();        // busy: must defer and draw backoff
  sched_.RunUntil(SimTime::Micros(200));
  dcf_->NotifyMediumIdle();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  // Grant no earlier than idle start + DIFS (34 us).
  EXPECT_GE(last_grant_, SimTime::Micros(200 + 34));
  // And no later than DIFS + CWmin slots.
  EXPECT_LE(last_grant_, SimTime::Micros(200 + 34 + 15 * 9));
}

TEST_F(DcfFixture, BackoffFreezesAndResumes) {
  dcf_->NotifyMediumBusy();
  dcf_->RequestAccess();
  dcf_->NotifyMediumIdle();
  int slots = dcf_->backoff_slots();
  ASSERT_GE(slots, 0);
  if (slots < 2) {
    GTEST_SKIP() << "drawn backoff too short to split";
  }
  // Let AIFS + one slot elapse, then freeze.
  sched_.RunUntil(SimTime::Micros(34 + 9 + 1));
  dcf_->NotifyMediumBusy();
  EXPECT_EQ(dcf_->backoff_slots(), slots - 1);
  EXPECT_EQ(grants_, 0);
  // Resume; remaining slots count down after a fresh AIFS.
  SimTime resume = sched_.Now();
  dcf_->NotifyMediumIdle();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  EXPECT_EQ(last_grant_,
            resume + SimTime::Micros(34) + SimTime::Micros(9) * (slots - 1));
}

TEST_F(DcfFixture, CwDoublesOnFailureAndResetsOnSuccess) {
  EXPECT_EQ(dcf_->cw(), 15u);
  dcf_->NotifyTxFailure();
  EXPECT_EQ(dcf_->cw(), 31u);
  dcf_->NotifyTxFailure();
  EXPECT_EQ(dcf_->cw(), 63u);
  for (int i = 0; i < 10; ++i) {
    dcf_->NotifyTxFailure();
  }
  EXPECT_EQ(dcf_->cw(), 1023u);  // capped at CWmax
  dcf_->NotifyTxSuccess();
  EXPECT_EQ(dcf_->cw(), 15u);
}

TEST_F(DcfFixture, EifsAfterRxFailure) {
  dcf_->NotifyRxFailed();
  dcf_->NotifyMediumBusy();
  dcf_->RequestAccess();
  SimTime idle_start = sched_.Now();
  dcf_->NotifyMediumIdle();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  // Deferral extended by eifs_extra (44 us here).
  EXPECT_GE(last_grant_, idle_start + SimTime::Micros(34 + 44));
}

TEST_F(DcfFixture, RxOkClearsEifs) {
  dcf_->NotifyRxFailed();
  dcf_->NotifyRxOk();
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(last_grant_, SimTime::Millis(1));  // immediate: no EIFS residue
}

TEST_F(DcfFixture, CancelAccessPreventsGrant) {
  dcf_->NotifyMediumBusy();
  dcf_->RequestAccess();
  dcf_->NotifyMediumIdle();
  dcf_->CancelAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 0);
}

TEST_F(DcfFixture, RepeatedRequestIsIdempotent) {
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->RequestAccess();
  dcf_->RequestAccess();
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
}

// The CTS-timeout shape: an exchange consumed its grant, failed before any
// response, and immediately re-requests access. The redraw must come from
// the doubled window and count down from now — no crediting of the idle
// time that passed before the failure.
TEST_F(DcfFixture, FailureThenImmediateRequestRearmsFromNow) {
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->RequestAccess();
  sched_.Run();
  ASSERT_EQ(grants_, 1);
  sched_.RunUntil(SimTime::Millis(2));
  dcf_->NotifyTxFailure();
  int slots = dcf_->backoff_slots();
  ASSERT_GE(slots, 0);
  EXPECT_EQ(dcf_->cw(), 31u);
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 2);
  EXPECT_EQ(last_grant_, SimTime::Millis(2) + SimTime::Micros(9) * slots);
}

TEST_F(DcfFixture, PostTxBackoffDelaysNextGrant) {
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->DrawPostTxBackoff();
  int slots = dcf_->backoff_slots();
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  // Even on a long-idle medium, a fresh post-TX backoff must elapse in
  // real time from the draw — past idle time cannot be credited.
  if (slots > 0) {
    EXPECT_GE(last_grant_, SimTime::Millis(1) + SimTime::Micros(9) * slots);
  }
}

TEST_F(DcfFixture, GrantTimesAreSlotAligned) {
  // Statistical check: grants after busy periods land on AIFS + k*slot.
  for (int i = 0; i < 50; ++i) {
    dcf_->NotifyMediumBusy();
    dcf_->RequestAccess();
    SimTime idle_start = sched_.Now();
    dcf_->NotifyMediumIdle();
    int before = grants_;
    sched_.Run();
    ASSERT_EQ(grants_, before + 1);
    int64_t offset_ns = (last_grant_ - idle_start).ns() - 34'000;
    EXPECT_GE(offset_ns, 0);
    EXPECT_EQ(offset_ns % 9'000, 0) << "grant not slot-aligned";
    EXPECT_LE(offset_ns / 9'000, 15);
  }
}

// Lazy re-arm equivalence: announcing "idle from T" at the moment the
// carrier drops must produce the same grants, at the same times, as the
// eager path that waits until T and delivers a plain idle edge — pick for
// pick across randomized busy/request/EIFS scripts. Both engines share a
// seed, so any divergence in draw *points* would desynchronise the grant
// times immediately.
TEST(DcfLazyRearmTest, IdleFromMatchesEagerIdleEdgePickForPick) {
  PhyTimings timings = TimingsFor(WifiStandard::k80211a);
  DcfEngine::Config cfg{timings.slot, timings.difs, timings.cw_min,
                        timings.cw_max, SimTime::Micros(44)};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Scheduler sched_eager;
    Scheduler sched_lazy;
    DcfEngine eager(&sched_eager, Random(seed), cfg);
    DcfEngine lazy(&sched_lazy, Random(seed), cfg);
    std::vector<int64_t> grants_eager;
    std::vector<int64_t> grants_lazy;
    eager.on_grant = [&]() { grants_eager.push_back(sched_eager.Now().ns()); };
    lazy.on_grant = [&]() { grants_lazy.push_back(sched_lazy.Now().ns()); };

    Random script(seed * 104729);
    int64_t t = 0;
    for (int step = 0; step < 80; ++step) {
      // Idle gap, then a busy period [busy_start, busy_end) — the lazy
      // engine learns busy_end at busy_start (a NAV-style reservation),
      // the eager engine gets the idle edge only when time reaches it.
      int64_t gap = static_cast<int64_t>(script.NextBounded(300)) * 1000;
      int64_t busy_start = t + gap;
      int64_t busy_ns =
          1000 + static_cast<int64_t>(script.NextBounded(2000)) * 1000;
      int64_t busy_end = busy_start + busy_ns;

      bool request_before = script.NextBounded(3) == 0;
      bool request_during = script.NextBounded(3) == 0;
      bool rx_failed = script.NextBounded(4) == 0;
      bool tx_result = script.NextBounded(2) == 0;

      if (request_before) {
        int64_t rt = t + static_cast<int64_t>(
                             script.NextBounded(gap > 0 ? gap : 1));
        sched_eager.RunUntil(SimTime::Nanos(rt));
        sched_lazy.RunUntil(SimTime::Nanos(rt));
        if (!eager.access_pending()) {
          eager.RequestAccess();
        }
        if (!lazy.access_pending()) {
          lazy.RequestAccess();
        }
      }

      sched_eager.RunUntil(SimTime::Nanos(busy_start));
      sched_lazy.RunUntil(SimTime::Nanos(busy_start));
      eager.NotifyMediumBusy();
      lazy.NotifyMediumBusy();
      // The lazy engine is told the reservation horizon immediately.
      lazy.NotifyMediumIdleFrom(SimTime::Nanos(busy_end));

      if (request_during) {
        int64_t rt = busy_start + static_cast<int64_t>(
                                      script.NextBounded(busy_ns));
        sched_eager.RunUntil(SimTime::Nanos(rt));
        sched_lazy.RunUntil(SimTime::Nanos(rt));
        if (!eager.access_pending()) {
          eager.RequestAccess();
        }
        if (!lazy.access_pending()) {
          lazy.RequestAccess();
        }
      }
      if (rx_failed) {
        eager.NotifyRxFailed();
        lazy.NotifyRxFailed();
      } else {
        eager.NotifyRxOk();
        lazy.NotifyRxOk();
      }
      if (!grants_eager.empty() && script.NextBounded(3) == 0) {
        if (tx_result) {
          eager.NotifyTxSuccess();
          lazy.NotifyTxSuccess();
          eager.DrawPostTxBackoff();
          lazy.DrawPostTxBackoff();
        } else {
          eager.NotifyTxFailure();
          lazy.NotifyTxFailure();
          // CTS-timeout shape: the failed exchange immediately re-requests
          // access (WifiMac::HandleCtsTimeout does exactly this), often
          // while the lazy engine still holds a future-dated idle start.
          if (script.NextBounded(2) == 0) {
            if (!eager.access_pending()) {
              eager.RequestAccess();
            }
            if (!lazy.access_pending()) {
              lazy.RequestAccess();
            }
          }
        }
      }

      // Eager: a plain idle edge when time reaches busy_end. (The lazy
      // engine needs no call at all — its grant is already armed.)
      sched_eager.RunUntil(SimTime::Nanos(busy_end));
      sched_lazy.RunUntil(SimTime::Nanos(busy_end));
      eager.NotifyMediumIdle();

      t = busy_end;
      ASSERT_EQ(grants_eager, grants_lazy)
          << "seed " << seed << " step " << step;
      ASSERT_EQ(eager.backoff_slots(), lazy.backoff_slots())
          << "seed " << seed << " step " << step;
    }
    // Drain the tail.
    sched_eager.Run();
    sched_lazy.Run();
    EXPECT_EQ(grants_eager, grants_lazy) << "seed " << seed;
  }
}

TEST_F(DcfFixture, BackoffDistributionIsUniformish) {
  // Mean of CWmin backoff draws should be ~CWmin/2 = 7.5 slots.
  double total_slots = 0;
  int samples = 200;
  for (int i = 0; i < samples; ++i) {
    dcf_->NotifyMediumBusy();
    dcf_->RequestAccess();
    SimTime idle_start = sched_.Now();
    dcf_->NotifyMediumIdle();
    sched_.Run();
    total_slots += static_cast<double>(
        ((last_grant_ - idle_start).ns() - 34'000) / 9'000);
  }
  EXPECT_NEAR(total_slots / samples, 7.5, 1.0);
}

}  // namespace
}  // namespace hacksim
