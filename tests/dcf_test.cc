// Unit tests for the DCF/EDCA channel-access engine: AIFS deferral, backoff
// freezing/resumption, immediate access, CW doubling, EIFS.
#include <gtest/gtest.h>

#include "src/mac80211/dcf.h"
#include "src/phy80211/wifi_mode.h"

namespace hacksim {
namespace {

class DcfFixture : public ::testing::Test {
 protected:
  DcfFixture() {
    PhyTimings t = TimingsFor(WifiStandard::k80211a);
    DcfEngine::Config cfg{t.slot, t.difs, t.cw_min, t.cw_max,
                          SimTime::Micros(44)};
    dcf_ = std::make_unique<DcfEngine>(&sched_, Random(99), cfg);
    dcf_->on_grant = [this]() {
      ++grants_;
      last_grant_ = sched_.Now();
    };
  }

  Scheduler sched_;
  std::unique_ptr<DcfEngine> dcf_;
  int grants_ = 0;
  SimTime last_grant_;
};

TEST_F(DcfFixture, ImmediateAccessAfterLongIdle) {
  // Medium idle since t=0; request at t=1ms: grant after (at most) AIFS.
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  // Idle since t=0 means AIFS long since satisfied: immediate grant.
  EXPECT_EQ(last_grant_, SimTime::Millis(1));
}

TEST_F(DcfFixture, FreshIdleWaitsAifs) {
  dcf_->NotifyMediumBusy();
  sched_.RunUntil(SimTime::Micros(100));
  dcf_->RequestAccess();        // busy: must defer and draw backoff
  sched_.RunUntil(SimTime::Micros(200));
  dcf_->NotifyMediumIdle();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  // Grant no earlier than idle start + DIFS (34 us).
  EXPECT_GE(last_grant_, SimTime::Micros(200 + 34));
  // And no later than DIFS + CWmin slots.
  EXPECT_LE(last_grant_, SimTime::Micros(200 + 34 + 15 * 9));
}

TEST_F(DcfFixture, BackoffFreezesAndResumes) {
  dcf_->NotifyMediumBusy();
  dcf_->RequestAccess();
  dcf_->NotifyMediumIdle();
  int slots = dcf_->backoff_slots();
  ASSERT_GE(slots, 0);
  if (slots < 2) {
    GTEST_SKIP() << "drawn backoff too short to split";
  }
  // Let AIFS + one slot elapse, then freeze.
  sched_.RunUntil(SimTime::Micros(34 + 9 + 1));
  dcf_->NotifyMediumBusy();
  EXPECT_EQ(dcf_->backoff_slots(), slots - 1);
  EXPECT_EQ(grants_, 0);
  // Resume; remaining slots count down after a fresh AIFS.
  SimTime resume = sched_.Now();
  dcf_->NotifyMediumIdle();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  EXPECT_EQ(last_grant_,
            resume + SimTime::Micros(34) + SimTime::Micros(9) * (slots - 1));
}

TEST_F(DcfFixture, CwDoublesOnFailureAndResetsOnSuccess) {
  EXPECT_EQ(dcf_->cw(), 15u);
  dcf_->NotifyTxFailure();
  EXPECT_EQ(dcf_->cw(), 31u);
  dcf_->NotifyTxFailure();
  EXPECT_EQ(dcf_->cw(), 63u);
  for (int i = 0; i < 10; ++i) {
    dcf_->NotifyTxFailure();
  }
  EXPECT_EQ(dcf_->cw(), 1023u);  // capped at CWmax
  dcf_->NotifyTxSuccess();
  EXPECT_EQ(dcf_->cw(), 15u);
}

TEST_F(DcfFixture, EifsAfterRxFailure) {
  dcf_->NotifyRxFailed();
  dcf_->NotifyMediumBusy();
  dcf_->RequestAccess();
  SimTime idle_start = sched_.Now();
  dcf_->NotifyMediumIdle();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  // Deferral extended by eifs_extra (44 us here).
  EXPECT_GE(last_grant_, idle_start + SimTime::Micros(34 + 44));
}

TEST_F(DcfFixture, RxOkClearsEifs) {
  dcf_->NotifyRxFailed();
  dcf_->NotifyRxOk();
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(last_grant_, SimTime::Millis(1));  // immediate: no EIFS residue
}

TEST_F(DcfFixture, CancelAccessPreventsGrant) {
  dcf_->NotifyMediumBusy();
  dcf_->RequestAccess();
  dcf_->NotifyMediumIdle();
  dcf_->CancelAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 0);
}

TEST_F(DcfFixture, RepeatedRequestIsIdempotent) {
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->RequestAccess();
  dcf_->RequestAccess();
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
}

TEST_F(DcfFixture, PostTxBackoffDelaysNextGrant) {
  sched_.RunUntil(SimTime::Millis(1));
  dcf_->DrawPostTxBackoff();
  int slots = dcf_->backoff_slots();
  dcf_->RequestAccess();
  sched_.Run();
  EXPECT_EQ(grants_, 1);
  // Even on a long-idle medium, a fresh post-TX backoff must elapse in
  // real time from the draw — past idle time cannot be credited.
  if (slots > 0) {
    EXPECT_GE(last_grant_, SimTime::Millis(1) + SimTime::Micros(9) * slots);
  }
}

TEST_F(DcfFixture, GrantTimesAreSlotAligned) {
  // Statistical check: grants after busy periods land on AIFS + k*slot.
  for (int i = 0; i < 50; ++i) {
    dcf_->NotifyMediumBusy();
    dcf_->RequestAccess();
    SimTime idle_start = sched_.Now();
    dcf_->NotifyMediumIdle();
    int before = grants_;
    sched_.Run();
    ASSERT_EQ(grants_, before + 1);
    int64_t offset_ns = (last_grant_ - idle_start).ns() - 34'000;
    EXPECT_GE(offset_ns, 0);
    EXPECT_EQ(offset_ns % 9'000, 0) << "grant not slot-aligned";
    EXPECT_LE(offset_ns / 9'000, 15);
  }
}

TEST_F(DcfFixture, BackoffDistributionIsUniformish) {
  // Mean of CWmin backoff draws should be ~CWmin/2 = 7.5 slots.
  double total_slots = 0;
  int samples = 200;
  for (int i = 0; i < samples; ++i) {
    dcf_->NotifyMediumBusy();
    dcf_->RequestAccess();
    SimTime idle_start = sched_.Now();
    dcf_->NotifyMediumIdle();
    sched_.Run();
    total_slots += static_cast<double>(
        ((last_grant_ - idle_start).ns() - 34'000) / 9'000);
  }
  EXPECT_NEAR(total_slots / samples, 7.5, 1.0);
}

}  // namespace
}  // namespace hacksim
