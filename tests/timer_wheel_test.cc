// Fuzzes the timing-wheel scheduler against a reference pure-heap model.
//
// The scheduler's contract is that the hierarchical wheel is invisible:
// fire order is exactly (time, insertion seq) — the order a plain min-heap
// produces — regardless of how events map onto wheel levels, cascade
// boundaries, or the bypass-to-heap path. The fuzz drives both
// implementations with an identical randomized operation stream (schedules
// spanning same-tick ties through beyond-horizon deltas, cancels of live
// and stale ids, RunUntil slices, and follow-up schedules from inside
// callbacks) and demands identical fire sequences and times.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace hacksim {
namespace {

// Reference scheduler: an ordered map keyed by (time, seq) — the spec made
// executable. Cancellation erases; Run walks in key order.
class ReferenceScheduler {
 public:
  int64_t Now() const { return now_ns_; }

  uint64_t ScheduleAt(int64_t t_ns, int tag) {
    pending_.emplace(Key{t_ns, next_seq_++}, tag);
    return next_seq_ - 1;  // seq doubles as the handle
  }

  void Cancel(uint64_t seq) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->first.seq == seq) {
        pending_.erase(it);
        return;
      }
    }
  }

  // Fires events with time <= t into `log` (tag, time) via `on_fire`.
  template <typename F>
  void RunUntil(int64_t t_ns, F&& on_fire) {
    while (!pending_.empty()) {
      auto it = pending_.begin();
      if (it->first.time_ns > t_ns) {
        break;
      }
      now_ns_ = it->first.time_ns;
      int tag = it->second;
      pending_.erase(it);
      on_fire(tag);
    }
    now_ns_ = t_ns;
  }

 private:
  struct Key {
    int64_t time_ns;
    uint64_t seq;
    bool operator<(const Key& o) const {
      return time_ns != o.time_ns ? time_ns < o.time_ns : seq < o.seq;
    }
  };
  int64_t now_ns_ = 0;
  uint64_t next_seq_ = 0;
  std::map<Key, int> pending_;
};

// Delay menu biased toward the interesting geometry: same-ns ties, L0 tick
// ties and neighbours, the L0/L1/L2 horizon boundaries (2^18, 2^26, 2^34
// ns) and their off-by-ones, and beyond-horizon heap residents.
int64_t DrawDelay(Random& rng) {
  switch (rng.NextBounded(10)) {
    case 0:
      return 0;  // same instant: pure FIFO tie
    case 1:
      return static_cast<int64_t>(rng.NextBounded(1024));  // same L0 tick
    case 2:
      return static_cast<int64_t>(rng.NextBounded(4096));  // tick neighbours
    case 3:
      return static_cast<int64_t>((1 << 18) -
                                  static_cast<int64_t>(rng.NextBounded(3)));
    case 4:
      return static_cast<int64_t>(rng.NextBounded(1ull << 18));  // L0 span
    case 5:
      return static_cast<int64_t>((1ull << 26) -
                                  static_cast<int64_t>(rng.NextBounded(3)));
    case 6:
      return static_cast<int64_t>(rng.NextBounded(1ull << 26));  // L1 span
    case 7:
      return static_cast<int64_t>((1ull << 34) -
                                  static_cast<int64_t>(rng.NextBounded(3)));
    case 8:
      return static_cast<int64_t>(rng.NextBounded(1ull << 34));  // L2 span
    default:
      // Beyond the wheel horizon: heap from the start.
      return static_cast<int64_t>((1ull << 34) + rng.NextBounded(1ull << 35));
  }
}

TEST(TimerWheelFuzzTest, FireOrderMatchesPureHeapReference) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Random rng(seed * 7919);
    Scheduler sched;
    ReferenceScheduler ref;

    std::vector<int> fired_real;
    std::vector<int64_t> fired_real_at;
    std::vector<int> fired_ref;
    std::vector<int64_t> fired_ref_at;

    std::map<int, EventId> real_ids;  // tag -> live handle
    std::vector<int> live_tags;
    std::map<int, uint64_t> ref_ids;
    int next_tag = 0;

    // Some fired events schedule a follow-up (tag + 1'000'000) — both
    // sides apply the same rule, so agreement requires agreeing on the
    // fire order first.
    auto schedule_pair = [&](int64_t at_ns, int tag) {
      real_ids[tag] = sched.ScheduleAt(
          SimTime::Nanos(at_ns), [&, tag]() {
            fired_real.push_back(tag);
            fired_real_at.push_back(sched.Now().ns());
            if (tag % 5 == 0 && tag < 1'000'000) {
              int follow = tag + 1'000'000;
              int64_t at = sched.Now().ns() + (tag % 3) * 700;
              real_ids[follow] = sched.ScheduleAt(
                  SimTime::Nanos(at), [&, follow]() {
                    fired_real.push_back(follow);
                    fired_real_at.push_back(sched.Now().ns());
                  });
            }
          });
      ref_ids[tag] = ref.ScheduleAt(at_ns, tag);
      live_tags.push_back(tag);
    };

    std::function<void(int)> ref_fire = [&](int tag) {
      fired_ref.push_back(tag);
      fired_ref_at.push_back(ref.Now());
      if (tag % 5 == 0 && tag < 1'000'000) {
        int follow = tag + 1'000'000;
        ref_ids[follow] = ref.ScheduleAt(ref.Now() + (tag % 3) * 700, tag
            + 1'000'000);
      }
    };

    for (int round = 0; round < 60; ++round) {
      // Burst of schedules.
      int n = 1 + static_cast<int>(rng.NextBounded(20));
      for (int i = 0; i < n; ++i) {
        int64_t at = sched.Now().ns() + DrawDelay(rng);
        schedule_pair(at, next_tag++);
      }
      // Cancel a random subset of live handles (and re-cancel some stale
      // ones — must be harmless).
      size_t cancels = rng.NextBounded(live_tags.size() + 1);
      for (size_t i = 0; i < cancels; ++i) {
        int tag =
            live_tags[static_cast<size_t>(rng.NextBounded(live_tags.size()))];
        sched.Cancel(real_ids[tag]);
        ref.Cancel(ref_ids[tag]);
      }
      // Advance both worlds by the same slice. Occasionally jump far, so
      // cascades run, and occasionally land exactly on a tick boundary.
      int64_t step;
      switch (rng.NextBounded(4)) {
        case 0:
          step = static_cast<int64_t>(rng.NextBounded(2048));
          break;
        case 1:
          step = static_cast<int64_t>(rng.NextBounded(1ull << 19));
          break;
        case 2:
          step = static_cast<int64_t>(rng.NextBounded(1ull << 27));
          break;
        default:
          step = static_cast<int64_t>(rng.NextBounded(1ull << 30));
          break;
      }
      if (rng.NextBounded(3) == 0) {
        step &= ~int64_t{1023};  // exact L0 tick boundary
      }
      int64_t until = sched.Now().ns() + step;
      sched.RunUntil(SimTime::Nanos(until));
      ref.RunUntil(until, ref_fire);
      ASSERT_EQ(fired_real, fired_ref) << "seed " << seed << " round "
                                       << round;
      ASSERT_EQ(fired_real_at, fired_ref_at)
          << "seed " << seed << " round " << round;
    }

    // Drain everything left and compare the tails.
    sched.Run();
    ref.RunUntil(INT64_MAX / 2, ref_fire);
    EXPECT_EQ(fired_real, fired_ref) << "seed " << seed << " (drain)";
    EXPECT_EQ(fired_real_at, fired_ref_at) << "seed " << seed << " (drain)";
    EXPECT_EQ(sched.pending_events(), 0u);
  }
}

TEST(TimerWheelFuzzTest, CascadeBoundaryExactness) {
  // Events pinned around every level boundary, scheduled from time zero,
  // must fire in exact time order with no early or late delivery.
  Scheduler sched;
  std::vector<int64_t> fire_times;
  std::vector<int64_t> expect;
  for (int64_t base : {int64_t{1} << 18, int64_t{1} << 26, int64_t{1} << 34}) {
    for (int64_t off = -2; off <= 2; ++off) {
      int64_t at = base + off;
      expect.push_back(at);
      sched.ScheduleAt(SimTime::Nanos(at),
                       [&, at]() { fire_times.push_back(at); });
    }
  }
  std::sort(expect.begin(), expect.end());
  sched.Run();
  EXPECT_EQ(fire_times, expect);
}

TEST(TimerWheelFuzzTest, CascadedEntryKeepsFifoAgainstEqualTimeDirectArm) {
  // Regression: an event armed beyond the L0 horizon (seq 0) cascades into
  // the same L0 bucket AFTER a direct-armed event at the exact same
  // nanosecond but later seq. The drain must notice the (time, seq)
  // inversion — time alone looks sorted — and fire in insertion order.
  Scheduler sched;
  std::vector<int> fired;
  constexpr int64_t kT = 10'000'000;  // 10 ms: beyond L0, lands in L1
  sched.ScheduleAt(SimTime::Nanos(kT), [&]() { fired.push_back(0); });
  // A callback 200 us before kT (inside the L0 window of kT) schedules a
  // same-nanosecond event with a later seq; it direct-arms into L0 before
  // the L1 bucket holding event 0 cascades.
  sched.ScheduleAt(SimTime::Nanos(kT - 200'000), [&]() {
    sched.ScheduleAt(SimTime::Nanos(kT), [&]() { fired.push_back(1); });
  });
  sched.Run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
}

TEST(TimerWheelFuzzTest, SameTickTiesKeepInsertionOrder) {
  // Many events inside one 1024 ns tick, scheduled with deliberately
  // non-monotonic times: global order must still be (time, seq).
  Scheduler sched;
  Random rng(42);
  struct Rec {
    int64_t t;
    int tag;
  };
  std::vector<Rec> recs;
  std::vector<int> fired;
  for (int i = 0; i < 200; ++i) {
    int64_t t = 5000 + static_cast<int64_t>(rng.NextBounded(1024));
    recs.push_back({t, i});
    sched.ScheduleAt(SimTime::Nanos(t), [&fired, i]() { fired.push_back(i); });
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Rec& a, const Rec& b) { return a.t < b.t; });
  std::vector<int> want;
  for (const Rec& r : recs) {
    want.push_back(r.tag);
  }
  sched.Run();
  EXPECT_EQ(fired, want);
}

}  // namespace
}  // namespace hacksim
