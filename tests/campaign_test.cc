// Campaign engine tests: the parallel fan-out must be a pure wall-clock
// optimisation. The core contract — pinned here — is that the same run
// matrix executed serially (jobs=1, the legacy inline path) and across 8
// workers produces bit-identical per-run results, because every run's seed
// derives from its matrix index alone and the simulation core keeps no
// cross-run mutable state (thread_local packet slab / uid counter / abort
// context).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/scenario/campaign.h"
#include "src/sim/random.h"

namespace hacksim {
namespace {

TEST(CampaignTest, ResolveJobsTakesPositiveLiterally) {
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(8), 8);
  // 0 / negative mean "all hardware threads" — at least one.
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_GE(ResolveJobs(-3), 1);
}

TEST(CampaignTest, DeriveRunSeedGoldenValues) {
  // Frozen outputs of the golden-ratio SplitMix64 derivation. These values
  // are load-bearing: committed artifacts (BENCH_scale.json replicate
  // rows) and fault_fuzz repro lines embed seeds derived through this
  // function, so silently changing the scheme would orphan them.
  EXPECT_EQ(DeriveRunSeed(1, 0), UINT64_C(0x910A2DEC89025CC1));
  EXPECT_EQ(DeriveRunSeed(1, 1), UINT64_C(0xBEEB8DA1658EEC67));
  EXPECT_EQ(DeriveRunSeed(1, 2), UINT64_C(0xF893A2EEFB32555E));
  EXPECT_EQ(DeriveRunSeed(42, 7), UINT64_C(0xCCF635EE9E9E2FA4));
}

TEST(CampaignTest, DeriveRunSeedIsPureAndSpreads) {
  // Pure function of (base, index): repeated calls agree, neighbouring
  // indices land far apart, and different bases never collide on a small
  // index window (the property the per-run RNG streams rely on).
  std::vector<uint64_t> seen;
  for (uint64_t base : {UINT64_C(1), UINT64_C(2), UINT64_C(1000)}) {
    for (uint64_t i = 0; i < 64; ++i) {
      uint64_t s = DeriveRunSeed(base, i);
      EXPECT_EQ(s, DeriveRunSeed(base, i));
      seen.push_back(s);
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "seed collision across (base, index) pairs";
}

TEST(CampaignTest, ParallelForCoversEveryIndexOnce) {
  constexpr size_t kN = 257;  // not a multiple of the worker count
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, 8, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(CampaignTest, ParallelForOrderedConsumesInIndexOrder) {
  constexpr size_t kN = 100;
  std::vector<std::atomic<int>> ran(kN);
  std::vector<size_t> consumed;  // calling thread only — no lock needed
  ParallelForOrdered(
      kN, 8, [&](size_t i) { ran[i].fetch_add(1); },
      [&](size_t i) {
        EXPECT_EQ(ran[i].load(), 1) << "consumed before run";
        consumed.push_back(i);
      });
  ASSERT_EQ(consumed.size(), kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(consumed[i], i);
  }
}

// Small but heterogeneous matrix: two topologies x two workloads x two
// replicate seeds. Heterogeneous on purpose — skewed per-run cost makes
// workers finish out of order, which is exactly the schedule the
// determinism contract must be immune to.
std::vector<ScenarioConfig> BuildMatrix() {
  std::vector<ScenarioConfig> configs;
  struct CellSpec {
    Topology topo;
    TransportProto proto;
    HackVariant hack;
  };
  const CellSpec cells[] = {
      {Topology::kRing, TransportProto::kUdp, HackVariant::kOff},
      {Topology::kRing, TransportProto::kTcp, HackVariant::kMoreData},
      {Topology::kTwoClusterHidden, TransportProto::kUdp, HackVariant::kOff},
      {Topology::kUniformDisk, TransportProto::kTcp, HackVariant::kOff},
  };
  for (const CellSpec& cell : cells) {
    for (int k = 0; k < 2; ++k) {
      ScenarioConfig c;
      c.standard = WifiStandard::k80211n;
      c.data_rate_mbps = 150.0;
      c.n_clients = 6;
      c.duration = SimTime::Millis(60);
      c.start_stagger = SimTime::Millis(2);
      c.topology = cell.topo;
      if (cell.topo != Topology::kRing) {
        c.propagation = LogDistancePropagation::Params{};
        c.rts_threshold = 500;
      }
      c.proto = cell.proto;
      c.hack = cell.hack;
      c.seed = DeriveRunSeed(1, configs.size());
      configs.push_back(c);
    }
  }
  return configs;
}

TEST(CampaignTest, SerialAndEightWorkersAreBitIdentical) {
  std::vector<ScenarioConfig> configs = BuildMatrix();
  std::vector<ScenarioResult> serial = RunCampaign(configs, 1);
  std::vector<ScenarioResult> parallel = RunCampaign(configs, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Full behavioural identity (clients, MAC/PHY/HACK stats, airtime,
    // goodput) plus the engine-level counters BehaviourEquals leaves out.
    EXPECT_TRUE(serial[i].BehaviourEquals(parallel[i])) << "run " << i;
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed)
        << "run " << i;
    EXPECT_EQ(serial[i].events_by_class, parallel[i].events_by_class)
        << "run " << i;
    EXPECT_EQ(serial[i].final_pending_events, parallel[i].final_pending_events)
        << "run " << i;
    EXPECT_EQ(serial[i].crc_failures, parallel[i].crc_failures) << "run " << i;
  }
  // And the parallel pass is itself reproducible run-to-run.
  std::vector<ScenarioResult> again = RunCampaign(configs, 8);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].BehaviourEquals(again[i])) << "rerun " << i;
    EXPECT_EQ(serial[i].events_executed, again[i].events_executed)
        << "rerun " << i;
  }
}

}  // namespace
}  // namespace hacksim
