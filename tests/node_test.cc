// Node / wired-link / routing / goodput-tracker / UDP app tests.
#include <gtest/gtest.h>

#include "src/apps/udp_app.h"
#include "src/node/node.h"
#include "src/stats/experiment_stats.h"

namespace hacksim {
namespace {

Packet MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t dport,
               uint32_t payload) {
  return Packet::MakeUdp(src, dst, 1111, dport, payload);
}

TEST(PointToPointLinkTest, DeliversWithSerializationPlusDelay) {
  Scheduler sched;
  PointToPointLink::Config cfg;
  cfg.rate_bps = 8e6;  // 1 byte/us
  cfg.delay = SimTime::Millis(1);
  PointToPointLink link(&sched, cfg);
  SimTime arrival;
  link.deliver_to_1 = [&](Packet) { arrival = sched.Now(); };
  // 1000-byte payload -> 1028-byte datagram -> 1028 us + 1000 us delay.
  link.SendFrom(0, MakeUdp(Ipv4Address(1), Ipv4Address(2), 9, 1000));
  sched.Run();
  EXPECT_EQ(arrival, SimTime::Micros(1028 + 1000));
}

TEST(PointToPointLinkTest, SerializesBackToBack) {
  Scheduler sched;
  PointToPointLink::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.delay = SimTime::Zero();
  PointToPointLink link(&sched, cfg);
  std::vector<SimTime> arrivals;
  link.deliver_to_1 = [&](Packet) { arrivals.push_back(sched.Now()); };
  for (int i = 0; i < 3; ++i) {
    link.SendFrom(0, MakeUdp(Ipv4Address(1), Ipv4Address(2), 9, 972));
  }
  sched.Run();
  ASSERT_EQ(arrivals.size(), 3u);
  // Each 1000-byte datagram takes 1 ms on the wire, strictly serialized.
  EXPECT_EQ(arrivals[0], SimTime::Millis(1));
  EXPECT_EQ(arrivals[1], SimTime::Millis(2));
  EXPECT_EQ(arrivals[2], SimTime::Millis(3));
}

TEST(PointToPointLinkTest, FullDuplexDirectionsIndependent) {
  Scheduler sched;
  PointToPointLink link(&sched, {});
  int at_0 = 0;
  int at_1 = 0;
  link.deliver_to_0 = [&](Packet) { ++at_0; };
  link.deliver_to_1 = [&](Packet) { ++at_1; };
  link.SendFrom(0, MakeUdp(Ipv4Address(1), Ipv4Address(2), 9, 100));
  link.SendFrom(1, MakeUdp(Ipv4Address(2), Ipv4Address(1), 9, 100));
  sched.Run();
  EXPECT_EQ(at_0, 1);
  EXPECT_EQ(at_1, 1);
}

TEST(PointToPointLinkTest, QueueLimitDrops) {
  Scheduler sched;
  PointToPointLink::Config cfg;
  cfg.queue_limit_packets = 5;
  PointToPointLink link(&sched, cfg);
  int delivered = 0;
  link.deliver_to_1 = [&](Packet) { ++delivered; };
  for (int i = 0; i < 20; ++i) {
    link.SendFrom(0, MakeUdp(Ipv4Address(1), Ipv4Address(2), 9, 1000));
  }
  sched.Run();
  // One in flight + 5 queued survive.
  EXPECT_EQ(delivered, 6);
  EXPECT_EQ(link.drops(), 14u);
}

TEST(NodeTest, DeliversToRegisteredHandler) {
  Node node(Ipv4Address::FromOctets(10, 0, 2, 1));
  int hits = 0;
  node.RegisterHandler(6000, [&](const Packet&) { ++hits; });
  node.OnPacketReceived(MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                                Ipv4Address::FromOctets(10, 0, 2, 1), 6000,
                                10));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(node.delivered(), 1u);
}

TEST(NodeTest, UnknownPortCountsAsDrop) {
  Node node(Ipv4Address::FromOctets(10, 0, 2, 1));
  node.OnPacketReceived(MakeUdp(Ipv4Address::FromOctets(10, 0, 0, 1),
                                Ipv4Address::FromOctets(10, 0, 2, 1), 7777,
                                10));
  EXPECT_EQ(node.routing_drops(), 1u);
}

TEST(NodeTest, ForwardsViaP2pRoute) {
  Scheduler sched;
  PointToPointLink link(&sched, {});
  Node ap(Ipv4Address::FromOctets(10, 0, 1, 1));
  ap.AttachP2p(&link, 1);
  ap.SetDefaultRoute(Node::Egress::kP2p, MacAddress());
  int upstream = 0;
  link.deliver_to_0 = [&](Packet) { ++upstream; };
  // Packet for someone else: forwarded upstream.
  ap.OnPacketReceived(MakeUdp(Ipv4Address::FromOctets(10, 0, 2, 1),
                              Ipv4Address::FromOctets(10, 0, 0, 1), 5000,
                              10));
  sched.Run();
  EXPECT_EQ(upstream, 1);
  EXPECT_EQ(ap.forwarded(), 1u);
}

TEST(GoodputTrackerTest, WindowedGoodput) {
  GoodputTracker t;
  // 1 MB delivered during each of seconds [0,1) and [1,2); samples are
  // appended in time order, as the simulator guarantees.
  for (int i = 0; i < 10; ++i) {
    t.OnBytesDelivered(SimTime::Millis(i * 100), 100'000);
  }
  for (int i = 0; i < 10; ++i) {
    t.OnBytesDelivered(SimTime::Millis(1000 + i * 100), 100'000);
  }
  EXPECT_EQ(t.total_bytes(), 2'000'000u);
  double all = t.GoodputMbps(SimTime::Zero(), SimTime::Seconds(2));
  EXPECT_NEAR(all, 8.0, 0.5);
  double second_half =
      t.GoodputMbps(SimTime::Seconds(1), SimTime::Seconds(2));
  EXPECT_NEAR(second_half, 8.0, 1.0);
}

TEST(GoodputTrackerTest, EmptyWindowIsZero) {
  GoodputTracker t;
  t.OnBytesDelivered(SimTime::Millis(100), 1000);
  EXPECT_DOUBLE_EQ(
      t.GoodputMbps(SimTime::Seconds(5), SimTime::Seconds(6)), 0.0);
}

TEST(UdpAppTest, CbrSourcePacesCorrectly) {
  Scheduler sched;
  UdpCbrSource::Config cfg;
  cfg.rate_bps = 11'776'000;  // 1472 B payload every 1 ms
  cfg.payload_bytes = 1472;
  cfg.stop = SimTime::Millis(10);
  FiveTuple flow{Ipv4Address(1), Ipv4Address(2), 7, 9, kIpProtoUdp};
  std::vector<SimTime> sends;
  UdpCbrSource src(&sched, cfg, flow,
                   [&](Packet) { sends.push_back(sched.Now()); });
  src.Start();
  sched.RunUntil(SimTime::Millis(20));
  ASSERT_GE(sends.size(), 10u);
  EXPECT_EQ(sends[1] - sends[0], SimTime::Millis(1));
  EXPECT_EQ(sends[9] - sends[8], SimTime::Millis(1));
}

TEST(UdpAppTest, SinkCountsBytes) {
  Scheduler sched;
  UdpSink sink(&sched);
  sink.OnPacket(MakeUdp(Ipv4Address(1), Ipv4Address(2), 9, 1472));
  sink.OnPacket(MakeUdp(Ipv4Address(1), Ipv4Address(2), 9, 1472));
  EXPECT_EQ(sink.bytes_received(), 2944u);
}

}  // namespace
}  // namespace hacksim
