#!/usr/bin/env bash
# Runs the perf-tracking benches and records the results:
#   BENCH_micro.json   google-benchmark JSON from bench_micro (hot-path
#                      microbenchmarks: scheduler, ROHC, MD5, serialisation)
#   BENCH_fig10.txt    bench_fig10_goodput output + wall-clock, the
#                      end-to-end "how fast does a full experiment run" probe
#   BENCH_scale.json   bench_scale dense-cell sweep (stations x proto x
#                      HACK): goodput, events/PPDU, wall clock. Exits
#                      nonzero if a dense cell stops delivering, so this
#                      doubles as the CI scaling-regression gate.
#
# Usage: tools/run_bench.sh [build_dir] [out_dir]
#   build_dir  defaults to ./build (must be configured with -DHACKSIM_BENCH=ON)
#   out_dir    defaults to the repo root
# Honours HACKSIM_QUICK=1 for a fast smoke pass (CI).
#
# docs/perf.md describes how to read BENCH_micro.json and which entries the
# perf trajectory tracks across PRs.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"

if [[ ! -x "$build_dir/bench_micro" ]]; then
  echo "error: $build_dir/bench_micro not found." >&2
  echo "Configure with: cmake -B build -S . -DHACKSIM_BENCH=ON && cmake --build build -j" >&2
  exit 1
fi

repetitions="${BENCH_REPETITIONS:-5}"
if [[ "${HACKSIM_QUICK:-0}" == "1" ]]; then
  repetitions=1
fi

echo "== bench_micro (repetitions=$repetitions) =="
"$build_dir/bench_micro" \
  --benchmark_repetitions="$repetitions" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out_dir/BENCH_micro.json" \
  --benchmark_out_format=json

echo
echo "== bench_fig10_goodput =="
start_ns=$(date +%s%N)
"$build_dir/bench_fig10_goodput" | tee "$out_dir/BENCH_fig10.txt"
end_ns=$(date +%s%N)
wall_ms=$(( (end_ns - start_ns) / 1000000 ))
echo "wall_clock_ms=$wall_ms" | tee -a "$out_dir/BENCH_fig10.txt"

echo
echo "== bench_scale =="
"$build_dir/bench_scale" --json "$out_dir/BENCH_scale.json"

echo
echo "wrote $out_dir/BENCH_micro.json, $out_dir/BENCH_fig10.txt and $out_dir/BENCH_scale.json"
