#!/usr/bin/env bash
# Runs the perf-tracking benches and records the results:
#   BENCH_micro.json   google-benchmark JSON from bench_micro (hot-path
#                      microbenchmarks: scheduler, ROHC, MD5, serialisation)
#   BENCH_fig10.txt    bench_fig10_goodput output + wall-clock, the
#                      end-to-end "how fast does a full experiment run" probe
#   BENCH_scale.json   bench_scale dense-cell sweep (stations x proto x
#                      HACK): goodput, events/PPDU, wall clock. Exits
#                      nonzero if a dense cell stops delivering, so this
#                      doubles as the CI scaling-regression gate.
#
# Usage: tools/run_bench.sh [build_dir] [out_dir]
#   build_dir  defaults to ./build (must be configured with -DHACKSIM_BENCH=ON)
#   out_dir    defaults to the repo root
# Honours HACKSIM_QUICK=1 for a fast smoke pass (CI).
# Each bench runs under a hard timeout (HACKSIM_BENCH_TIMEOUT, seconds;
# default 1800, 600 in quick mode) so a wedged simulation fails the job
# with a named culprit instead of hanging it until the CI runner is killed.
#
# docs/perf.md describes how to read BENCH_micro.json and which entries the
# perf trajectory tracks across PRs.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root}"
mkdir -p "$out_dir"

if [[ ! -x "$build_dir/bench_micro" ]]; then
  echo "error: $build_dir/bench_micro not found." >&2
  echo "Configure with: cmake -B build -S . -DHACKSIM_BENCH=ON && cmake --build build -j" >&2
  exit 1
fi

# Refuse to record numbers from a non-Release build: a Debug/Sanitize build
# silently poisons the perf trajectory the committed artifacts track.
# Override (for local experiments only) with HACKSIM_ALLOW_NON_RELEASE=1 —
# the output is then loudly marked and must not be committed.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt" 2>/dev/null || true)"
sanitize="$(sed -n 's/^HACKSIM_SANITIZE:[^=]*=//p' "$build_dir/CMakeCache.txt" 2>/dev/null || true)"
if [[ "$build_type" != "Release" || ( -n "$sanitize" && "$sanitize" != "OFF" ) ]]; then
  if [[ "${HACKSIM_ALLOW_NON_RELEASE:-0}" != "1" ]]; then
    echo "error: build dir '$build_dir' is CMAKE_BUILD_TYPE='$build_type'" \
         "HACKSIM_SANITIZE='${sanitize:-OFF}' — benchmarks must come from a" \
         "Release, sanitizer-free build." >&2
    echo "Reconfigure with: cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DHACKSIM_BENCH=ON" >&2
    echo "(or set HACKSIM_ALLOW_NON_RELEASE=1 to run anyway, loudly marked)" >&2
    exit 1
  fi
  echo "#############################################################" >&2
  echo "## WARNING: NON-RELEASE BUILD ($build_type sanitize=${sanitize:-OFF})" >&2
  echo "## These numbers are NOT comparable; do not commit them." >&2
  echo "#############################################################" >&2
fi

repetitions="${BENCH_REPETITIONS:-5}"
bench_timeout="${HACKSIM_BENCH_TIMEOUT:-1800}"
if [[ "${HACKSIM_QUICK:-0}" == "1" ]]; then
  repetitions=1
  bench_timeout="${HACKSIM_BENCH_TIMEOUT:-600}"
fi

# Hard wall-clock bound around one bench invocation. A liveness bug (stalled
# queue, NAV leak, event-loop wedge) that slips past the in-sim watchdog
# shows up here as an infinite bench run; kill it (SIGTERM, then SIGKILL
# after 30 s of grace) and name the culprit instead of hanging CI.
run_with_timeout() {
  local name="$1"
  shift
  local rc=0
  timeout --kill-after=30 "$bench_timeout" "$@" || rc=$?
  if (( rc == 124 || rc == 137 )); then
    echo "error: $name exceeded the ${bench_timeout}s bench timeout and was" \
         "killed — the simulation wedged or the run is drastically slower" \
         "than the perf trajectory allows. Reproduce locally with:" \
         "$*" >&2
    exit 1
  fi
  if (( rc != 0 )); then
    echo "error: $name failed with exit code $rc" >&2
    exit "$rc"
  fi
}

echo "== bench_micro (repetitions=$repetitions, timeout=${bench_timeout}s) =="
run_with_timeout bench_micro "$build_dir/bench_micro" \
  --benchmark_repetitions="$repetitions" \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json \
  --benchmark_out="$out_dir/BENCH_micro.json" \
  --benchmark_out_format=json

if grep -q '"library_build_type": "debug"' "$out_dir/BENCH_micro.json"; then
  echo "WARNING: the google-benchmark *library* on this machine is a debug" >&2
  echo "build (see library_build_type in BENCH_micro.json). The project code" >&2
  echo "is Release, but compare BM_* numbers only against artifacts from the" >&2
  echo "same library build." >&2
fi

echo
echo "== bench_fig10_goodput =="
start_ns=$(date +%s%N)
run_with_timeout bench_fig10_goodput "$build_dir/bench_fig10_goodput" \
  | tee "$out_dir/BENCH_fig10.txt"
end_ns=$(date +%s%N)
wall_ms=$(( (end_ns - start_ns) / 1000000 ))
echo "wall_clock_ms=$wall_ms" | tee -a "$out_dir/BENCH_fig10.txt"

echo
echo "== bench_scale (timeout=${bench_timeout}s) =="
run_with_timeout bench_scale \
  "$build_dir/bench_scale" --json "$out_dir/BENCH_scale.json"

echo
echo "wrote $out_dir/BENCH_micro.json, $out_dir/BENCH_fig10.txt and $out_dir/BENCH_scale.json"
