// hacksim_run: command-line scenario runner.
//
// Runs one download/upload scenario with every knob exposed as a flag and
// prints a machine-readable summary (key=value lines) plus a human table.
//
//   hacksim_run --standard=n --rate=150 --clients=4 --hack=more-data --seconds=5 --seed=7
//   hacksim_run --standard=a --rate=54 --hack=off --sora --loss=0.02
//
// Exit code 0 on success; 2 on flag errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/scenario/download_scenario.h"

using namespace hacksim;

namespace {

struct Flags {
  std::string standard = "n";
  double rate = 150.0;
  int clients = 1;
  std::string hack = "more-data";
  // ACK-aggregation policy (HackAckPolicy): hold compressed ACKs and flush
  // them as one hierarchical ACK frame per window/count/MORE-DATA edge.
  // window=0 (default) keeps the policy structurally absent.
  int64_t hack_ack_window_us = 0;
  uint64_t hack_ack_count = 0;
  std::string proto = "tcp";
  double seconds = 4.0;
  double stagger_ms = 250.0;
  uint64_t file_mb = 0;
  uint64_t seed = 1;
  bool upload = false;
  bool sora = false;
  double loss = 0.0;
  double snr_distance = 0.0;  // >0 enables the SNR model at this distance
  size_t queue = 126;
  int txop_ms = 4;
  size_t rts_threshold = 0;  // >0 enables RTS/CTS above this PSDU size
  bool rate_adapt = false;
  // 802.11e QoS (docs/qos.md): four EDCA access categories at every MAC
  // instead of the single legacy DCF, and a station→model traffic mix like
  // "voice:0.1,web:0.9" (UDP only; models: voice, video, web, iot).
  bool edca = false;
  std::string traffic_mix;
  double traffic_rate_scale = 1.0;
  // "ring" (legacy fixed-loss broadcast), or the geometric-channel layouts
  // "disk" / "hidden" (log-distance propagation + SINR capture).
  std::string topology = "ring";
  // Fault injection + liveness auditing (docs/robustness.md).
  std::string fault_plan;
  int watchdog_ms = 0;
  bool watchdog_no_abort = false;
  bool verbose = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

void Usage() {
  std::fprintf(stderr,
               "usage: hacksim_run [flags]\n"
               "  --standard=a|n        PHY (default n)\n"
               "  --rate=<mbps>         data rate (default 150; 802.11a: 54)\n"
               "  --clients=<n>         number of stations (default 1)\n"
               "  --hack=off|more-data|opportunistic|timer|ts-echo\n"
               "  --hack-ack-window=<us>\n"
               "                        batch compressed ACKs for up to this\n"
               "                        window before flushing them as one\n"
               "                        hierarchical ACK (0=off; requires a\n"
               "                        HACK variant)\n"
               "  --hack-ack-count=<n>  flush a held batch early once it\n"
               "                        reaches n ACKs (requires\n"
               "                        --hack-ack-window)\n"
               "  --proto=tcp|udp       workload (default tcp)\n"
               "  --seconds=<s>         run length in seconds (default 4)\n"
               "  --stagger-ms=<ms>     per-station flow start stagger in "
               "ms (default 250)\n"
               "  --file-mb=<mb>        transfer size in MB instead of "
               "duration\n"
               "  --seed=<n>            RNG seed (default 1)\n"
               "  --upload              reverse the transfer direction\n"
               "  --sora                apply SoRa LL-ACK quirks (37us)\n"
               "  --loss=<p>            per-MPDU data loss probability [0,1]\n"
               "  --snr-distance=<m>    use the SNR model at this distance "
               "in meters\n"
               "  --queue=<pkts>        AP queue per client in packets "
               "(default 126)\n"
               "  --txop-ms=<ms>        TXOP limit in ms (default 4)\n"
               "  --rts-threshold=<B>   RTS/CTS above this PSDU size in "
               "bytes (0=off)\n"
               "  --rate-adapt          per-station ARF rate adaptation\n"
               "  --edca                802.11e EDCA: four per-AC queues +\n"
               "                        contention engines at every MAC\n"
               "  --traffic-mix=<mix>   station→model mix, e.g.\n"
               "                        'voice:0.1,web:0.9' (models: voice,\n"
               "                        video, web, iot; fractions of the\n"
               "                        station count, assigned by index).\n"
               "                        UDP: replaces the CBR sources; TCP\n"
               "                        download: adds background flows\n"
               "                        alongside the TCP transfers\n"
               "  --traffic-rate-scale=<x>\n"
               "                        multiply each mixed flow's mean rate "
               "by x\n"
               "  --topology=ring|disk|hidden\n"
               "                        ring: legacy broadcast medium;\n"
               "                        disk/hidden: geometric channel with\n"
               "                        range-limited decode + SINR capture\n"
               "  --fault-plan=<plan>   timed fault events, e.g.\n"
               "                        'crash@120000us:3;join@250000us:3;"
               "ap-down@300000us;ap-up@350000us'\n"
               "  --watchdog-ms=<ms>    liveness audit cadence (0=off)\n"
               "  --watchdog-no-abort   record watchdog trips instead of\n"
               "                        aborting\n"
               "  --verbose             print per-client counters\n");
}

bool Parse(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "standard", &value)) {
      flags->standard = value;
    } else if (ParseFlag(argv[i], "rate", &value)) {
      flags->rate = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "clients", &value)) {
      flags->clients = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "hack", &value)) {
      flags->hack = value;
    } else if (ParseFlag(argv[i], "hack-ack-window", &value)) {
      flags->hack_ack_window_us = std::strtoll(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "hack-ack-count", &value)) {
      flags->hack_ack_count = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "proto", &value)) {
      flags->proto = value;
    } else if (ParseFlag(argv[i], "seconds", &value)) {
      flags->seconds = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "stagger-ms", &value)) {
      flags->stagger_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "file-mb", &value)) {
      flags->file_mb = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "loss", &value)) {
      flags->loss = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "snr-distance", &value)) {
      flags->snr_distance = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "queue", &value)) {
      flags->queue = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "txop-ms", &value)) {
      flags->txop_ms = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "rts-threshold", &value)) {
      flags->rts_threshold = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "topology", &value)) {
      flags->topology = value;
    } else if (ParseFlag(argv[i], "fault-plan", &value)) {
      flags->fault_plan = value;
    } else if (ParseFlag(argv[i], "watchdog-ms", &value)) {
      flags->watchdog_ms = std::atoi(value.c_str());
    } else if (std::strcmp(argv[i], "--watchdog-no-abort") == 0) {
      flags->watchdog_no_abort = true;
    } else if (ParseFlag(argv[i], "traffic-mix", &value)) {
      flags->traffic_mix = value;
    } else if (ParseFlag(argv[i], "traffic-rate-scale", &value)) {
      flags->traffic_rate_scale = std::atof(value.c_str());
    } else if (std::strcmp(argv[i], "--edca") == 0) {
      flags->edca = true;
    } else if (std::strcmp(argv[i], "--rate-adapt") == 0) {
      flags->rate_adapt = true;
    } else if (std::strcmp(argv[i], "--upload") == 0) {
      flags->upload = true;
    } else if (std::strcmp(argv[i], "--sora") == 0) {
      flags->sora = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      flags->verbose = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

// Parses "voice:0.1,web:0.9" into mix rows; false on malformed input.
bool ParseTrafficMix(const std::string& text,
                     std::vector<TrafficMixEntry>* mix) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    std::string entry = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      return false;
    }
    auto model = ParseTrafficModel(entry.substr(0, colon));
    if (!model.has_value()) {
      return false;
    }
    double fraction = std::atof(entry.c_str() + colon + 1);
    if (fraction <= 0.0 || fraction > 1.0) {
      return false;
    }
    mix->push_back({*model, fraction});
    pos = comma == std::string::npos ? text.size() : comma + 1;
  }
  return !mix->empty();
}

HackVariant VariantFromName(const std::string& name) {
  if (name == "off") {
    return HackVariant::kOff;
  }
  if (name == "more-data") {
    return HackVariant::kMoreData;
  }
  if (name == "opportunistic") {
    return HackVariant::kOpportunistic;
  }
  if (name == "timer") {
    return HackVariant::kExplicitTimer;
  }
  if (name == "ts-echo") {
    return HackVariant::kTimestampEcho;
  }
  std::fprintf(stderr, "unknown --hack value: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!Parse(argc, argv, &flags)) {
    Usage();
    return 2;
  }

  ScenarioConfig config;
  config.standard = flags.standard == "a" ? WifiStandard::k80211a
                                          : WifiStandard::k80211n;
  config.data_rate_mbps = flags.rate;
  config.n_clients = flags.clients;
  config.hack = VariantFromName(flags.hack);
  if (flags.hack_ack_window_us < 0) {
    std::fprintf(stderr, "--hack-ack-window must be >= 0\n");
    return 2;
  }
  if (config.hack == HackVariant::kOff &&
      (flags.hack_ack_window_us > 0 || flags.hack_ack_count > 0)) {
    std::fprintf(stderr,
                 "--hack-ack-window/--hack-ack-count require a HACK variant "
                 "(--hack != off)\n");
    return 2;
  }
  if (flags.hack_ack_count > 0 && flags.hack_ack_window_us == 0) {
    std::fprintf(stderr,
                 "--hack-ack-count without --hack-ack-window would be "
                 "inert; set a window\n");
    return 2;
  }
  config.hack_config.ack_policy.flush_window =
      SimTime::Micros(flags.hack_ack_window_us);
  config.hack_config.ack_policy.flush_count =
      static_cast<size_t>(flags.hack_ack_count);
  config.proto =
      flags.proto == "udp" ? TransportProto::kUdp : TransportProto::kTcp;
  config.duration = SimTime::FromSecondsF(flags.seconds);
  config.start_stagger = SimTime::FromSecondsF(flags.stagger_ms / 1000.0);
  config.file_bytes = flags.file_mb * 1'000'000;
  config.seed = flags.seed;
  config.upload = flags.upload;
  config.ap_queue_per_client = flags.queue;
  config.txop_limit = SimTime::Millis(flags.txop_ms);
  config.rts_threshold = flags.rts_threshold;
  config.rate_adaptation = flags.rate_adapt;
  config.edca_enabled = flags.edca;
  config.traffic_rate_scale = flags.traffic_rate_scale;
  if (!flags.traffic_mix.empty()) {
    if (config.proto == TransportProto::kTcp && flags.upload) {
      std::fprintf(stderr,
                   "--traffic-mix supports --proto=udp or TCP download "
                   "(not TCP --upload)\n");
      return 2;
    }
    if (!ParseTrafficMix(flags.traffic_mix, &config.traffic_mix)) {
      std::fprintf(stderr, "malformed --traffic-mix: %s\n",
                   flags.traffic_mix.c_str());
      return 2;
    }
  }
  if (flags.topology == "disk") {
    config.topology = Topology::kUniformDisk;
    config.propagation = LogDistancePropagation::Params{};
  } else if (flags.topology == "hidden") {
    config.topology = Topology::kTwoClusterHidden;
    config.propagation = LogDistancePropagation::Params{};
  } else if (flags.topology != "ring") {
    std::fprintf(stderr, "unknown --topology value: %s\n",
                 flags.topology.c_str());
    return 2;
  }
  if (config.standard == WifiStandard::k80211a) {
    config.tcp.mss = 1448;
  }
  if (flags.sora) {
    config.extra_ack_delay = SimTime::Micros(37);
    config.extra_ack_timeout = SimTime::Micros(80);
  }
  config.clients.resize(flags.clients);
  for (auto& spec : config.clients) {
    spec.bernoulli_data_loss = flags.loss;
    if (flags.snr_distance > 0) {
      spec.distance_m = flags.snr_distance;
    }
  }
  if (flags.snr_distance > 0) {
    config.snr = SnrLossModel::Params{};
  }
  if (!flags.fault_plan.empty()) {
    auto plan = FaultPlan::Parse(flags.fault_plan);
    if (!plan.has_value()) {
      std::fprintf(stderr, "malformed --fault-plan: %s\n",
                   flags.fault_plan.c_str());
      return 2;
    }
    config.fault_plan = *plan;
  }
  config.watchdog_interval = SimTime::Millis(flags.watchdog_ms);
  config.watchdog_abort_on_trip = !flags.watchdog_no_abort;

  ScenarioResult r = RunScenario(config);

  auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::printf("aggregate_goodput_mbps=%.2f\n", r.aggregate_goodput_mbps);
  std::printf("steady_goodput_mbps=%.2f\n",
              r.steady_aggregate_goodput_mbps);
  std::printf("tcp_timeouts=%llu\n", u(r.tcp_timeouts));
  std::printf("crc_failures=%llu\n", u(r.crc_failures));
  if (config.hack != HackVariant::kOff) {
    // ACK-aggregation counters, summed over every HackAgent in the cell
    // (all-zero unless --hack-ack-window engaged the policy).
    uint64_t ack_batches = r.ap_hack.ack_batches;
    uint64_t batched_acks = r.ap_hack.batched_acks;
    for (const ClientResult& cr : r.clients) {
      ack_batches += cr.hack.ack_batches;
      batched_acks += cr.hack.batched_acks;
    }
    std::printf("ack_batches=%llu\n", u(ack_batches));
    std::printf("acks_per_flush=%.2f\n",
                ack_batches == 0
                    ? 0.0
                    : static_cast<double>(batched_acks) /
                          static_cast<double>(ack_batches));
  }
  std::printf("ap_first_try_fraction=%.4f\n", r.ap_mac.FirstTryFraction());
  std::printf("airtime_data_ms=%.2f\n", r.airtime.data_ns / 1e6);
  std::printf("airtime_ack_ms=%.2f\n", r.airtime.ack_ns / 1e6);
  std::printf("airtime_rts_cts_ms=%.2f\n", r.airtime.rts_cts_ns / 1e6);
  std::printf("airtime_collision_ms=%.2f\n", r.airtime.collision_ns / 1e6);
  std::printf("ap_rts_sent=%llu\n", u(r.ap_mac.rts_sent));
  std::printf("ap_cts_timeouts=%llu\n", u(r.ap_mac.cts_timeouts));
  std::printf("ap_captures=%llu\n", u(r.ap_phy.captures));
  std::printf("ap_overlap_losses=%llu\n", u(r.ap_phy.overlap_losses));
  std::printf("out_of_range_pairs=%llu\n", u(r.airtime.out_of_range));
  std::printf("ap_rate_moves=%llu/%llu\n", u(r.ap_mac.rate_up_moves),
              u(r.ap_mac.rate_down_moves));
  if (!config.fault_plan.empty()) {
    std::printf("fault_crashes=%llu\n", u(r.fault.crashes));
    std::printf("fault_leaves=%llu\n", u(r.fault.leaves));
    std::printf("fault_joins=%llu\n", u(r.fault.joins));
    std::printf("fault_radio_resets=%llu\n", u(r.fault.radio_resets));
    std::printf("fault_ap_outages=%llu\n", u(r.fault.ap_outages));
    std::printf("fault_ap_restarts=%llu\n", u(r.fault.ap_restarts));
    std::printf("fault_bursts=%llu\n", u(r.fault.bursts));
    std::printf("post_fault_goodput_mbps=%.2f\n", r.post_fault_goodput_mbps);
  }
  if (flags.edca || !config.traffic_mix.empty()) {
    uint64_t virtual_collisions = r.ap_mac.virtual_collisions;
    for (const ClientResult& cr : r.clients) {
      virtual_collisions += cr.mac.virtual_collisions;
    }
    std::printf("virtual_collisions=%llu\n", u(virtual_collisions));
    static const char* kAcKeys[kNumAcs] = {"vo", "vi", "be", "bk"};
    for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
      const LatencySummary& s = r.ac_latency[ac];
      if (s.count == 0) {
        continue;
      }
      std::printf("lat_%s_count=%llu\n", kAcKeys[ac], u(s.count));
      std::printf("lat_%s_p50_ms=%.3f\n", kAcKeys[ac], s.p50_ms);
      std::printf("lat_%s_p99_ms=%.3f\n", kAcKeys[ac], s.p99_ms);
      std::printf("lat_%s_jitter_ms=%.3f\n", kAcKeys[ac], s.jitter_ms);
    }
  }
  if (!config.watchdog_interval.IsZero()) {
    std::printf("watchdog_checks=%llu\n", u(r.watchdog.checks));
    std::printf("watchdog_trips=%llu\n", u(r.watchdog.trips));
    std::printf("final_pending_events=%llu\n", u(r.final_pending_events));
  }
  for (size_t i = 0; i < r.clients.size(); ++i) {
    std::printf("client%zu_goodput_mbps=%.2f\n", i + 1,
                r.clients[i].goodput_mbps);
  }
  if (flags.verbose) {
    for (size_t i = 0; i < r.clients.size(); ++i) {
      const HackStats& h = r.clients[i].hack;
      std::printf("client%zu_compressed_acks=%llu\n", i + 1,
                  u(h.unique_compressed_acks));
      std::printf("client%zu_vanilla_acks=%llu\n", i + 1,
                  u(h.vanilla_acks_sent));
      std::printf("client%zu_compression_ratio=%.2f\n", i + 1,
                  h.CompressionRatio());
    }
    std::printf("ap_recovered_acks=%llu\n",
                u(r.ap_hack.acks_recovered_at_ap));
    std::printf("ap_duplicates_discarded=%llu\n",
                u(r.ap_hack.duplicates_discarded_at_ap));
  }
  return 0;
}
