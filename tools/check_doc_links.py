#!/usr/bin/env python3
"""Fails CI on dead relative links in the markdown docs.

Scans README.md, ROADMAP.md, CHANGES.md and docs/*.md for markdown links
and inline `path` references to repo files, and verifies every relative
link target exists. External links (http/https/mailto) are not fetched —
this gate is about keeping the internal doc graph (README → docs/ →
docs/) unbroken as files move.

Usage: python3 tools/check_doc_links.py [repo_root]
Exit 0 if every relative link resolves, 1 otherwise (one line per dead
link: file, line, target).

python3 tools/check_doc_links.py --self-test exercises both branches on
synthetic doc trees (a clean tree must pass, a tree with a dead link must
fail) and exits 0 iff both behave.
"""

import pathlib
import re
import sys

# [text](target) — target captured up to the closing paren; markdown in
# our docs never nests parens inside link targets.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def doc_files(root: pathlib.Path):
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        p = root / name
        if p.exists():
            yield p
    yield from sorted((root / "docs").glob("*.md"))


def check(root: pathlib.Path) -> int:
    dead = []
    checked = 0
    for doc in doc_files(root):
        for lineno, line in enumerate(
            doc.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_SCHEMES):
                    continue
                # Strip an anchor: header anchors aren't validated, only
                # the file half of the link.
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                checked += 1
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    dead.append((doc.relative_to(root), lineno, target))
    for doc, lineno, target in dead:
        print(f"DEAD LINK {doc}:{lineno}: ({target})")
    print(
        f"doc link check: {checked} relative links, {len(dead)} dead"
        + (" — FAILED" if dead else "")
    )
    return 1 if dead else 0


def self_test() -> int:
    """Both branches on synthetic trees: clean → 0, dead link → 1."""
    import tempfile

    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "docs").mkdir()
        (root / "docs" / "guide.md").write_text(
            "See [the readme](../README.md).\n", encoding="utf-8")
        (root / "README.md").write_text(
            "See [the guide](docs/guide.md).\n", encoding="utf-8")
        rc = check(root)
        if rc != 0:
            print("self-test FAIL: clean doc tree did not pass")
            ok = False
        (root / "docs" / "guide.md").write_text(
            "See [gone](missing.md).\n", encoding="utf-8")
        rc = check(root)
        if rc != 1:
            print("self-test FAIL: dead link did not fail the check")
            ok = False
    print("check_doc_links self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    return check(root)


if __name__ == "__main__":
    sys.exit(main())
