// fault_fuzz: randomized fault-plan campaign driver.
//
// Each iteration derives a scenario (topology x transport x HACK variant x
// cell size) and a random FaultPlan from one meta-seed, then runs it with
// the liveness watchdog armed in abort mode. A wedged cell (stalled queue,
// NAV leak) aborts the process with a one-line repro recipe; the driver
// additionally asserts zero CRC failures, zero recorded trips and a bounded
// scheduler arena at sim end. Exit 0 means every plan survived.
//
// Plans fan out across a worker pool (--jobs=N, default all hardware
// threads; --jobs=1 is the legacy serial path). Every plan's scenario and
// fault plan derive purely from (base_seed + plan index), and the repro
// line is built from that derivation — so a FAIL line names the exact plan
// seed regardless of which worker ran it, and per-plan results (and the
// output text, streamed in plan order) are identical at any --jobs level.
//
//   fault_fuzz --plans=24 --base-seed=1              # CI quick gate
//   fault_fuzz --plans=240 --base-seed=1000 --jobs=8 # weekly campaign
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/scenario/campaign.h"
#include "src/scenario/fault_plan.h"
#include "src/sim/random.h"

using namespace hacksim;

int main(int argc, char** argv) {
  int plans = 24;
  int jobs = 0;  // 0 = hardware_concurrency
  uint64_t base_seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--plans=", 8) == 0) {
      plans = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--base-seed=", 12) == 0) {
      base_seed = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else {
      std::fprintf(stderr,
                   "usage: fault_fuzz [--plans=N] [--base-seed=S] "
                   "[--jobs=N]\n");
      return 2;
    }
  }

  // Derive every plan's scenario up front, on the main thread, in plan
  // order: the derivation itself draws from the per-plan meta RNG, and
  // doing it here keeps the worker pool a pure RunScenario executor.
  struct Plan {
    ScenarioConfig config;
    const char* topo_name = "ring";
    const char* workload = "udp";
  };
  std::vector<Plan> specs(static_cast<size_t>(plans));
  for (int i = 0; i < plans; ++i) {
    Plan& p = specs[static_cast<size_t>(i)];
    Random meta(base_seed + static_cast<uint64_t>(i));

    ScenarioConfig& c = p.config;
    c.standard = WifiStandard::k80211n;
    c.data_rate_mbps = 150.0;
    c.n_clients = static_cast<int>(4 + meta.NextBounded(13));  // 4..16
    c.duration = SimTime::Millis(static_cast<int64_t>(
        250 + meta.NextBounded(250)));
    c.start_stagger = SimTime::Millis(2);
    c.seed = meta.NextU64();

    switch (meta.NextBounded(3)) {
      case 0:
        break;  // legacy ring / fixed-loss broadcast medium
      case 1:
        p.topo_name = "disk";
        c.topology = Topology::kUniformDisk;
        c.propagation = LogDistancePropagation::Params{};
        break;
      default:
        p.topo_name = "hidden";
        c.topology = Topology::kTwoClusterHidden;
        c.propagation = LogDistancePropagation::Params{};
        c.rts_threshold = meta.NextBool(0.5) ? 500 : 0;
        break;
    }

    switch (meta.NextBounded(3)) {
      case 0:
        c.proto = TransportProto::kUdp;
        c.upload = meta.NextBool(0.5);
        c.udp_rate_bps = 1.2e8;
        break;
      case 1:
        p.workload = "tcp";
        c.proto = TransportProto::kTcp;
        break;
      default:
        p.workload = "tcp+hack";
        c.proto = TransportProto::kTcp;
        c.hack = HackVariant::kMoreData;
        break;
    }

    uint64_t plan_seed = meta.NextU64();
    c.fault_plan = FaultPlan::Generate(plan_seed, c.n_clients, c.duration);
    c.watchdog_interval = SimTime::Millis(10);
    c.watchdog_abort_on_trip = true;  // a wedge aborts with the repro line
  }

  int failures = 0;
  std::vector<ScenarioResult> results(specs.size());
  ParallelForOrdered(
      specs.size(), jobs,
      [&](size_t i) { results[i] = RunScenario(specs[i].config); },
      [&](size_t idx) {
        int i = static_cast<int>(idx);
        const Plan& p = specs[idx];
        const ScenarioConfig& c = p.config;
        const ScenarioResult& r = results[idx];
        // A stopped flow strands at most a few timers per client; anything
        // beyond this bound means some subsystem leaks scheduler slots.
        uint64_t pending_bound =
            64 + 32 * static_cast<uint64_t>(c.n_clients);
        bool ok = r.watchdog.trips == 0 && r.crc_failures == 0 &&
                  r.final_pending_events <= pending_bound;
        if (!ok) {
          ++failures;
          std::fprintf(stderr,
                       "FAIL plan %d: trips=%llu crc=%llu pending=%llu "
                       "(bound %llu)\n  repro: seed=%llu topo=%s proto=%s "
                       "n=%d dur_us=%lld plan=\"%s\"\n",
                       i, static_cast<unsigned long long>(r.watchdog.trips),
                       static_cast<unsigned long long>(r.crc_failures),
                       static_cast<unsigned long long>(
                           r.final_pending_events),
                       static_cast<unsigned long long>(pending_bound),
                       static_cast<unsigned long long>(c.seed), p.topo_name,
                       p.workload, c.n_clients,
                       static_cast<long long>(c.duration.ns() / 1000),
                       c.fault_plan.ToString().c_str());
          return;
        }
        std::printf("ok plan %3d/%d  topo=%-6s proto=%-8s n=%2d  "
                    "faults=%llu checks=%llu goodput=%.1f\n",
                    i + 1, plans, p.topo_name, p.workload, c.n_clients,
                    static_cast<unsigned long long>(
                        c.fault_plan.events.size()),
                    static_cast<unsigned long long>(r.watchdog.checks),
                    r.aggregate_goodput_mbps);
        std::fflush(stdout);
      });

  if (failures != 0) {
    std::fprintf(stderr, "fault_fuzz: %d/%d plans FAILED\n", failures, plans);
    return 1;
  }
  std::printf("fault_fuzz: all %d plans survived (zero watchdog trips, zero "
              "CRC failures, bounded arena)\n",
              plans);
  return 0;
}
