#!/usr/bin/env python3
"""CI perf gates over the bench artifacts.

Three gates, all keyed to the committed Release references in the repo root:

1. Scheduler microbench: the freshly measured BM_SchedulerCancelHeavy must
   not regress more than --max-regress (default 25%) against the committed
   BENCH_micro.json. This is the cancel-dominated MAC-timeout pattern the
   timing wheel exists for.
2. Dense-cell event cost: 1000-station rows in BENCH_scale.json must keep
   events_per_ppdu below --ev-ppdu-ceiling (default 100, vs ~525 before the
   lazy NAV/DCF re-arm work and ~250 before the coalesced NAV probes +
   token-bucket pacing). Two per-class sub-gates pin the storms that were
   actually killed, so a regression is attributed on sight instead of
   hiding inside the total: per_ppdu_nav <= --nav-ppdu-ceiling (default
   2.0 — the per-overhearer probe storm peaked at 82 on udp-hidden-rts)
   and per_ppdu_transport <= --transport-ppdu-ceiling (default 15 — the
   per-packet CBR chain peaked at 243 on a 10-station uplink). The
   committed artifact is always checked; a freshly generated scale JSON is
   checked too when it contains 1000-station rows (CI's quick mode stops
   at 100 stations). The storm rows additionally get the per-class
   sub-gates at the LARGEST station count each artifact carries —
   per_ppdu_nav on udp-hidden-rts, per_ppdu_transport on udp-up/udp-rts —
   so every quick push artifact exercises them, not just the weekly full
   sweep.
3. Dense-cell goodput floor: the 1000-station "udp-rts" row (saturated
   uplink contenders protected by RTS/CTS + rate adaptation) must beat
   BOTH 1000-station collapse baselines by at least --goodput-ratio
   (default 2x): "udp" (~24 Mbps, the historical downlink collapse the
   ROADMAP tracked) and "udp-up" (the same saturated uplink cell without
   the handshake — the direct A/B whose collisions RTS/CTS removes).
   Goodput is simulator-deterministic, so unlike the CancelHeavy gate this
   one is machine-independent. Same committed/fresh policy as gate 2.
   All goodput gates (3, 4, 6) evaluate the replicate mean
   (goodput_mean_mbps / post_fault_goodput_mean_mbps) whenever the row
   carries the --repeats statistics, falling back to the legacy
   single-seed point value otherwise.
4. Hidden-terminal recovery: on the two-cluster topology (geometric
   channel: the clusters cannot carrier-sense each other and collide blind
   at the AP), "udp-hidden-rts" goodput must clear BOTH
   max(--hidden-ratio x the unprotected "udp-hidden" row,
       --hidden-min-mbps)
   at *every* station count where both rows exist. The absolute floor
   matters because the unprotected row legitimately collapses to zero at
   1000 stations (every frame dies blind at the AP) — a pure ratio would
   then gate nothing. Machine-independent like gate 3; checked on the
   committed artifact always (missing rows fail) and on a fresh scale JSON
   whenever it carries the rows (quick mode's 10/100-station sweep
   included, so pushes exercise this gate end-to-end).
5. Zero-byte guard: every scale row must have delivered bytes, except the
   rows named in ZERO_BYTE_EXEMPT where collapse IS the measured physics
   (today only "udp-hidden": at scale every frame dies blind at the AP).
   The exemption is an explicit allow-list cross-checked against the
   artifact — if an exempt row is renamed, the stale entry fails the gate
   instead of silently widening it. bench_scale itself enforces the same
   per-row policy at generation time; this gate re-checks the committed
   artifact so a hand-edited or stale JSON cannot slip through. The fault
   rows (udp-churn, udp-apout) are deliberately NOT exempt: a faulted cell
   that delivers nothing is a robustness bug, not measured physics.
6. QoS voice-tail gate: at every station count carrying the mixed-traffic
   row pair ("udp-mix" = saturated voice+web cell on the legacy single-DCF
   MAC, "udp-mix-edca" = the same cell with 802.11e EDCA), the EDCA row's
   VO p99 latency (lat_vo_p99_ms) must undercut the no-EDCA baseline's by
   at least --vo-p99-ratio (default 2x). Both rows must also carry VO and
   BE sample counts — a mixed row without voice samples means the traffic
   zoo silently stopped emitting. Deterministic like gates 3/4; committed
   artifact must carry the pair, fresh is checked whenever it does (quick
   mode included, so every push exercises it).
7. Post-fault recovery: at every station count carrying the fault rows,
   "udp-churn" and "udp-apout" must report post_fault_goodput_mbps (the
   goodput over the window after the last recovery event) of at least
   --post-fault-ratio (default 0.5) x the matching fault-free "udp" row.
   This is the survivability contract: after a fifth of the stations
   churn or the AP dies and restarts, the cell must climb back to at
   least half its fault-free rate. Committed artifact must carry the
   rows; fresh is checked whenever it does (quick mode included).
8. ACK-aggregation window=0 identity: at every station count carrying the
   pair, the "tcp+hack-w0" ablation row (HackAckPolicy configured with
   flush_window=0) must be byte-identical to the plain "tcp"/moredata row
   once the row-identity keys (proto, wall_ms) and the ablation-only
   detail columns are stripped — the off switch is structurally absent,
   like edca_enabled=false. The w0 row must also report
   hack_ack_batches == 0. The simulator is deterministic and the ablation
   rows alias the tcp/moredata replicate seeds (Workload::seed_group), so
   "identical" really means identical, replicate statistics included.
   Committed artifact must carry the pair; fresh is checked whenever it
   does (quick mode included, so every push exercises it).
9. ACK-aggregation goodput: at every station count carrying the pair, the
   best-window row "tcp+hack-w1ms" must deliver goodput >= the w0
   baseline's (same replicate seeds, so this is a paired comparison —
   batching ACKs must never cost goodput). Deterministic and machine-
   independent; same committed/fresh policy as gate 8.

Usage:
  check_bench_gates.py --committed-micro BENCH_micro.json \
                       --fresh-micro /tmp/out/BENCH_micro.json \
                       --committed-scale BENCH_scale.json \
                       [--fresh-scale /tmp/out/BENCH_scale.json]

  check_bench_gates.py --self-test
    Exercises every gate's pass AND fail branch on synthetic artifacts
    (no bench binaries needed); exits 0 iff all branches behave.
"""

import argparse
import json
import sys

# Keys stripped before the gate-8 dict comparison: row identity (proto),
# host-dependent timing (wall_ms) and the ablation-only detail columns the
# w0 row carries but the plain tcp/moredata row does not.
ABLATION_IDENTITY_STRIP = frozenset({
    "proto", "wall_ms", "hack_compression_ratio", "hack_ack_batches",
    "hack_acks_per_flush",
})

# Rows allowed to deliver zero bytes because collapse is the measured
# physics, not a bug. Explicit allow-list: renaming a row leaves a stale
# entry here that fails the gate loudly (see check below) instead of
# silently skipping the guard for the renamed row.
ZERO_BYTE_EXEMPT = frozenset({"udp-hidden"})

# Fault rows and the fault-free baseline each must recover against.
POST_FAULT_ROWS = {"udp-churn": "udp", "udp-apout": "udp"}


def cancel_heavy_ns(path):
    with open(path) as f:
        data = json.load(f)
    # Prefer the mean aggregate; fall back to a plain run.
    best = None
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        if not name.startswith("BM_SchedulerCancelHeavy"):
            continue
        if name.endswith("_mean") or name.endswith("_median"):
            return float(b["real_time"])
        if best is None:
            best = float(b["real_time"])
    if best is None:
        raise SystemExit(f"FAIL: no BM_SchedulerCancelHeavy entry in {path}")
    return best


def scale_rows(path):
    with open(path) as f:
        return json.load(f)["rows"]


def goodput(row):
    """Gate-facing goodput: the replicate mean when the row carries one.

    bench_scale --repeats=N emits goodput_mean_mbps / goodput_ci95_mbps
    across N seeds; gating on the mean makes the goodput gates robust to
    single-seed luck. Single-seed artifacts (and older committed ones)
    fall back to the legacy point value.
    """
    return float(row.get("goodput_mean_mbps", row["goodput_mbps"]))


def post_fault_goodput(row):
    """Same mean-preferring policy for the post-fault recovery window."""
    return float(row.get("post_fault_goodput_mean_mbps",
                         row["post_fault_goodput_mbps"]))


def build_parser():
    ap = argparse.ArgumentParser()
    ap.add_argument("--committed-micro")
    ap.add_argument("--fresh-micro")
    ap.add_argument("--committed-scale")
    ap.add_argument("--fresh-scale")
    ap.add_argument("--max-regress", type=float, default=0.25)
    ap.add_argument("--ev-ppdu-ceiling", type=float, default=100.0)
    ap.add_argument("--nav-ppdu-ceiling", type=float, default=2.0)
    ap.add_argument("--transport-ppdu-ceiling", type=float, default=15.0)
    ap.add_argument("--goodput-ratio", type=float, default=2.0)
    ap.add_argument("--hidden-ratio", type=float, default=2.0)
    ap.add_argument("--hidden-min-mbps", type=float, default=10.0)
    ap.add_argument("--post-fault-ratio", type=float, default=0.5)
    ap.add_argument("--vo-p99-ratio", type=float, default=2.0)
    ap.add_argument("--self-test", action="store_true",
                    help="exercise every gate's pass/fail branch on "
                         "synthetic artifacts and exit")
    return ap


def run_gates(args):
    failed = False

    ref = cancel_heavy_ns(args.committed_micro)
    fresh = cancel_heavy_ns(args.fresh_micro)
    limit = ref * (1.0 + args.max_regress)
    verdict = "OK" if fresh <= limit else "FAIL"
    print(f"[{verdict}] BM_SchedulerCancelHeavy: fresh {fresh:.0f} ns vs "
          f"committed {ref:.0f} ns (limit {limit:.0f} ns)")
    failed |= fresh > limit

    for label, path in (("committed", args.committed_scale),
                        ("fresh", args.fresh_scale)):
        if not path:
            continue
        all_rows = scale_rows(path)

        # Zero-byte guard: any non-exempt row delivering nothing is a
        # simulator bug surfacing as a bench number.
        for r in all_rows:
            if int(r["bytes"]) == 0 and r["proto"] not in ZERO_BYTE_EXEMPT:
                print(f"[FAIL] {label} {r['stations']}-station "
                      f"{r['proto']}/{r['hack']}: zero bytes delivered and "
                      "not in the zero-byte exempt-list")
                failed = True
        # A stale exempt entry means the row it covered was renamed and the
        # renamed row now runs un-guarded at generation time — fail loudly.
        if label == "committed":
            present = {r["proto"] for r in all_rows}
            for name in sorted(ZERO_BYTE_EXEMPT - present):
                print(f"[FAIL] {path}: zero-byte exempt row \"{name}\" does "
                      "not exist in the artifact (renamed? update "
                      "ZERO_BYTE_EXEMPT)")
                failed = True

        # Post-fault recovery gate: after churn / an AP outage the cell
        # must climb back to >= the configured fraction of its fault-free
        # goodput, at every station count carrying the fault rows.
        by_count = {}
        for r in all_rows:
            by_count.setdefault(r["stations"], {})[r["proto"]] = r
        fault_pairs = 0
        for n in sorted(by_count):
            protos = by_count[n]
            for fault_proto, base_proto in sorted(POST_FAULT_ROWS.items()):
                if fault_proto not in protos or base_proto not in protos:
                    continue
                fault_pairs += 1
                fr = protos[fault_proto]
                if "post_fault_goodput_mbps" not in fr:
                    print(f"[FAIL] {label} {n}-station {fault_proto}: fault "
                          "row missing post_fault_goodput_mbps")
                    failed = True
                    continue
                got = post_fault_goodput(fr)
                base = goodput(protos[base_proto])
                floor = base * args.post_fault_ratio
                ok = got >= floor
                verdict = "OK" if ok else "FAIL"
                print(f"[{verdict}] {label} {n}-station {fault_proto} "
                      f"post-fault goodput: {got:.1f} Mbps vs fault-free "
                      f"{base_proto} {base:.1f} Mbps (floor {floor:.1f} = "
                      f"{args.post_fault_ratio:.2f}x)")
                failed |= not ok
        if fault_pairs == 0:
            if label == "committed":
                print(f"[FAIL] {path}: no udp-churn / udp-apout fault rows "
                      "— the post-fault recovery gate has nothing to check")
                failed = True
            else:
                print(f"[SKIP] {path}: no fault rows")

        # Hidden-terminal recovery gate: udp-hidden-rts vs udp-hidden at
        # every station count carrying both rows (quick runs stop at 100
        # stations but still carry the pair, so this gate runs fresh on
        # every push, unlike the 1000-station-only gates below).
        hidden = {}
        for r in all_rows:
            if r["proto"] in ("udp-hidden", "udp-hidden-rts"):
                hidden.setdefault(r["stations"], {})[r["proto"]] = r
        pairs = {n: d for n, d in hidden.items() if len(d) == 2}
        if not pairs:
            if label == "committed":
                print(f"[FAIL] {path}: no udp-hidden / udp-hidden-rts row "
                      "pairs — the hidden-terminal gate has nothing to check")
                failed = True
            else:
                print(f"[SKIP] {path}: no hidden-terminal row pairs")
        for n in sorted(pairs):
            base = goodput(pairs[n]["udp-hidden"])
            got = goodput(pairs[n]["udp-hidden-rts"])
            floor = max(base * args.hidden_ratio, args.hidden_min_mbps)
            ok = got >= floor
            verdict = "OK" if ok else "FAIL"
            print(f"[{verdict}] {label} {n}-station hidden-terminal: "
                  f"udp-hidden-rts {got:.1f} Mbps vs udp-hidden {base:.1f} "
                  f"Mbps (floor {floor:.1f} = max({args.hidden_ratio:.1f}x, "
                  f"{args.hidden_min_mbps:.0f} Mbps))")
            failed |= not ok

        # QoS voice-tail gate: udp-mix-edca vs udp-mix at every station
        # count carrying both rows. The mixed rows exist at every sweep
        # size (quick included), so this gate runs fresh on every push.
        mixed = {}
        for r in all_rows:
            if r["proto"] in ("udp-mix", "udp-mix-edca"):
                mixed.setdefault(r["stations"], {})[r["proto"]] = r
        mixed_pairs = {n: d for n, d in mixed.items() if len(d) == 2}
        if not mixed_pairs:
            if label == "committed":
                print(f"[FAIL] {path}: no udp-mix / udp-mix-edca row pairs "
                      "— the QoS voice-tail gate has nothing to check")
                failed = True
            else:
                print(f"[SKIP] {path}: no mixed-traffic row pairs")
        for n in sorted(mixed_pairs):
            pair_ok = True
            for proto in ("udp-mix", "udp-mix-edca"):
                row = mixed_pairs[n][proto]
                for field in ("lat_vo_p99_ms", "lat_vo_count",
                              "lat_be_count"):
                    if field not in row:
                        print(f"[FAIL] {label} {n}-station {proto}: mixed "
                              f"row missing {field} (traffic zoo emitted "
                              "no samples for that AC?)")
                        failed = True
                        pair_ok = False
            if not pair_ok:
                continue
            base = float(mixed_pairs[n]["udp-mix"]["lat_vo_p99_ms"])
            got = float(mixed_pairs[n]["udp-mix-edca"]["lat_vo_p99_ms"])
            ceiling = base / args.vo_p99_ratio
            ok = got <= ceiling
            verdict = "OK" if ok else "FAIL"
            print(f"[{verdict}] {label} {n}-station QoS voice tail: "
                  f"udp-mix-edca VO p99 {got:.2f} ms vs udp-mix "
                  f"{base:.2f} ms (ceiling {ceiling:.2f} = baseline / "
                  f"{args.vo_p99_ratio:.1f})")
            failed |= not ok

        # ACK-aggregation ablation gates (8, 9). Keyed by (proto, hack)
        # since the "tcp" proto appears with hack off AND moredata.
        ablation = {}
        for r in all_rows:
            if r["proto"] == "tcp" and r["hack"] == "moredata":
                ablation.setdefault(r["stations"], {})["base"] = r
            elif r["proto"] == "tcp+hack-w0":
                ablation.setdefault(r["stations"], {})["w0"] = r
            elif r["proto"] == "tcp+hack-w1ms":
                ablation.setdefault(r["stations"], {})["w1ms"] = r
        id_pairs = {n: d for n, d in ablation.items()
                    if "base" in d and "w0" in d}
        if not id_pairs:
            if label == "committed":
                print(f"[FAIL] {path}: no tcp+hack-w0 / tcp(moredata) row "
                      "pairs — the window=0 identity gate has nothing to "
                      "check")
                failed = True
            else:
                print(f"[SKIP] {path}: no ACK-ablation w0 row pairs")
        for n in sorted(id_pairs):
            base_row = id_pairs[n]["base"]
            w0_row = id_pairs[n]["w0"]
            base = {k: v for k, v in base_row.items()
                    if k not in ABLATION_IDENTITY_STRIP}
            w0 = {k: v for k, v in w0_row.items()
                  if k not in ABLATION_IDENTITY_STRIP}
            diff = sorted(k for k in (base.keys() | w0.keys())
                          if base.get(k) != w0.get(k))
            batches = int(w0_row.get("hack_ack_batches", -1))
            ok = not diff and batches == 0
            verdict = "OK" if ok else "FAIL"
            print(f"[{verdict}] {label} {n}-station window=0 identity: "
                  f"tcp+hack-w0 vs tcp/moredata"
                  + (f" differs on {diff}" if diff else " byte-identical"))
            if batches != 0:
                print(f"[FAIL] {label} {n}-station tcp+hack-w0 recorded "
                      f"{batches} ack batches (the window=0 policy must be "
                      "structurally absent)")
            failed |= not ok
        gp_pairs = {n: d for n, d in ablation.items()
                    if "w0" in d and "w1ms" in d}
        if not gp_pairs:
            if label == "committed":
                print(f"[FAIL] {path}: no tcp+hack-w0 / tcp+hack-w1ms row "
                      "pairs — the ablation goodput gate has nothing to "
                      "check")
                failed = True
            else:
                print(f"[SKIP] {path}: no ACK-ablation goodput row pairs")
        for n in sorted(gp_pairs):
            base = goodput(gp_pairs[n]["w0"])
            got = goodput(gp_pairs[n]["w1ms"])
            ok = got >= base
            verdict = "OK" if ok else "FAIL"
            print(f"[{verdict}] {label} {n}-station ablation goodput: "
                  f"tcp+hack-w1ms {got:.1f} Mbps vs tcp+hack-w0 "
                  f"{base:.1f} Mbps (floor = w0; paired seeds)")
            failed |= not ok

        # Storm-row gates at the largest station count the artifact
        # carries. The 1000-station per-class gates below never run on a
        # quick (10/100-station) push artifact, so without this the two
        # event storms this script exists to pin — per-overhearer NAV
        # probes on the hidden-terminal RTS row, per-packet CBR pacing on
        # the uplink rows — could regrow unnoticed between weekly full
        # sweeps. The ceilings are the same as at 1000 stations: both
        # storms scaled with station count (probe fan-out) or inversely
        # with per-station rate (pacing), so the dense ceilings are
        # conservative at 10/100 stations.
        max_n = max(r["stations"] for r in all_rows)
        top = {r["proto"]: r for r in all_rows if r["stations"] == max_n}
        for proto, field, ceiling, what in (
                ("udp-hidden-rts", "per_ppdu_nav", args.nav_ppdu_ceiling,
                 "NAV-reset probes"),
                ("udp-up", "per_ppdu_transport",
                 args.transport_ppdu_ceiling, "transport pacing"),
                ("udp-rts", "per_ppdu_transport",
                 args.transport_ppdu_ceiling, "transport pacing")):
            if proto not in top or field not in top[proto]:
                print(f"[FAIL] {label} {max_n}-station {proto}: storm row "
                      f"or its {field} field missing")
                failed = True
                continue
            val = float(top[proto][field])
            ok = val <= ceiling
            verdict = "OK" if ok else "FAIL"
            print(f"[{verdict}] {label} {max_n}-station {proto}: "
                  f"{val:.2f} {field} (ceiling {ceiling:.1f}, {what})")
            failed |= not ok

        rows = [r for r in all_rows if r["stations"] == 1000]
        if label == "committed" and not rows:
            print(f"[FAIL] {path}: no 1000-station rows in committed "
                  "BENCH_scale.json")
            failed = True
            continue
        if not rows:
            print(f"[SKIP] {path}: no 1000-station rows (quick mode)")
            continue
        for r in rows:
            ev = float(r["events_per_ppdu"])
            ok = ev <= args.ev_ppdu_ceiling
            verdict = "OK" if ok else "FAIL"
            print(f"[{verdict}] {label} 1000-station {r['proto']}/{r['hack']}: "
                  f"{ev:.1f} ev/PPDU (ceiling {args.ev_ppdu_ceiling:.0f})")
            failed |= not ok
            # Per-class storm gates. Older artifacts (pre-class-split) do
            # not carry the fields — that is a hard failure on the
            # committed artifact, never a silent skip.
            for field, ceiling, what in (
                    ("per_ppdu_nav", args.nav_ppdu_ceiling,
                     "NAV-reset probes"),
                    ("per_ppdu_transport", args.transport_ppdu_ceiling,
                     "transport pacing")):
                if field not in r:
                    print(f"[FAIL] {label} 1000-station "
                          f"{r['proto']}/{r['hack']}: missing {field} "
                          "(regenerate the artifact with the per-class "
                          "event split)")
                    failed = True
                    continue
                val = float(r[field])
                ok = val <= ceiling
                verdict = "OK" if ok else "FAIL"
                print(f"[{verdict}] {label} 1000-station "
                      f"{r['proto']}/{r['hack']}: {val:.2f} {field} "
                      f"(ceiling {ceiling:.1f}, {what})")
                failed |= not ok

        # Dense-cell goodput floor: udp-rts must beat both collapse
        # baselines (downlink "udp" and unprotected-uplink "udp-up") by
        # the configured ratio.
        by_proto = {r["proto"]: r for r in rows}
        recovered = by_proto.get("udp-rts")
        baselines = [p for p in ("udp", "udp-up") if p in by_proto]
        if recovered is None or len(baselines) < 2:
            print(f"[FAIL] {path}: 1000-station rows missing udp/udp-up "
                  "(collapse baselines) and/or udp-rts (RTS/CTS recovery) "
                  "— the dense-cell goodput gate has nothing to check")
            failed = True
            continue
        got = goodput(recovered)
        for proto in baselines:
            base = goodput(by_proto[proto])
            floor = base * args.goodput_ratio
            ok = got >= floor
            verdict = "OK" if ok else "FAIL"
            print(f"[{verdict}] {label} 1000-station udp-rts goodput: "
                  f"{got:.1f} Mbps vs {proto} collapse baseline "
                  f"{base:.1f} Mbps (floor {floor:.1f} = "
                  f"{args.goodput_ratio:.1f}x)")
            failed |= not ok

    if failed:
        print("bench gates FAILED")
        return 1
    print("bench gates passed")
    return 0


def self_test():
    """Exercises every gate's pass AND fail branch on synthetic artifacts.

    Builds a minimal artifact pair that satisfies all nine gates (must exit
    0 with no FAIL line), then a poisoned pair that trips every gate (must
    exit 1 with a FAIL line per gate). No bench binaries are needed, so CI
    runs this before spending a minute generating real artifacts.
    """
    import contextlib
    import io
    import os
    import tempfile

    def micro(ns):
        return {"benchmarks": [
            {"name": "BM_SchedulerCancelHeavy/1024_mean", "real_time": ns}]}

    def row(proto, hack="off", **kw):
        d = {"stations": 1000, "proto": proto, "hack": hack,
             "goodput_mbps": 10.0, "bytes": 12345, "events": 1000,
             "ppdus": 100, "events_per_ppdu": 10.0, "per_ppdu_other": 0.0,
             "per_ppdu_channel": 4.0, "per_ppdu_dcf": 2.0,
             "per_ppdu_nav": 0.5, "per_ppdu_transport": 3.0,
             "collisions": 0, "rts": 0, "cts_timeouts": 0, "captures": 0,
             "overlap_losses": 0, "out_of_range": 0, "wall_ms": 10.0,
             "sim_seconds": 0.5}
        d.update(kw)
        return d

    def good_rows():
        tcp_hack = row("tcp", "moredata", goodput_mbps=20.0)
        w0 = dict(tcp_hack, proto="tcp+hack-w0", wall_ms=11.0,
                  hack_compression_ratio=11.0, hack_ack_batches=0,
                  hack_acks_per_flush=0.0)
        w1ms = dict(w0, proto="tcp+hack-w1ms", goodput_mbps=21.0,
                    hack_ack_batches=50, hack_acks_per_flush=5.0)
        return [
            row("udp"),
            row("tcp"),
            tcp_hack,
            row("udp-up"),
            row("udp-rts", goodput_mbps=40.0),
            row("udp-hidden", goodput_mbps=0.0, bytes=0),
            row("udp-hidden-rts", goodput_mbps=12.0),
            row("udp-churn", post_fault_goodput_mbps=8.0),
            row("udp-apout", post_fault_goodput_mbps=8.0),
            row("udp-mix", lat_vo_p99_ms=10.0, lat_vo_count=100,
                lat_be_count=100),
            row("udp-mix-edca", lat_vo_p99_ms=4.0, lat_vo_count=100,
                lat_be_count=100),
            w0,
            w1ms,
        ]

    def poison(rows):
        bad = [dict(r) for r in rows]
        by = {}
        for r in bad:
            by.setdefault(r["proto"], r)
        by["udp"]["bytes"] = 0                       # gate 5: zero bytes
        by["udp-churn"]["post_fault_goodput_mbps"] = 1.0   # gate 7
        by["udp-hidden-rts"]["goodput_mbps"] = 5.0   # gate 4: under floor
        by["udp-hidden-rts"]["per_ppdu_nav"] = 50.0  # gate 2: NAV storm
        by["udp-rts"]["goodput_mbps"] = 15.0         # gate 3: < 2x baseline
        by["udp-rts"]["per_ppdu_transport"] = 100.0  # gate 2: pacing storm
        by["udp-mix-edca"]["lat_vo_p99_ms"] = 9.0    # gate 6: tail too fat
        by["tcp"]["events_per_ppdu"] = 500.0         # gate 2: ev/ppdu
        by["tcp+hack-w0"]["goodput_mbps"] = 19.0     # gate 8: not identical
        by["tcp+hack-w0"]["hack_ack_batches"] = 3    # gate 8: policy leaked
        by["tcp+hack-w1ms"]["goodput_mbps"] = 18.0   # gate 9: under w0
        return bad

    def run(tmp, tag, fresh_micro_ns, rows):
        paths = {}
        for name, payload in (
                ("committed_micro", micro(100.0)),
                ("fresh_micro", micro(fresh_micro_ns)),
                ("scale", {"benchmark": "bench_scale", "rows": rows})):
            p = os.path.join(tmp, f"{tag}_{name}.json")
            with open(p, "w") as f:
                json.dump(payload, f)
            paths[name] = p
        args = build_parser().parse_args([
            "--committed-micro", paths["committed_micro"],
            "--fresh-micro", paths["fresh_micro"],
            "--committed-scale", paths["scale"],
            "--fresh-scale", paths["scale"],
        ])
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            rc = run_gates(args)
        return rc, out.getvalue()

    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        rc, out = run(tmp, "good", 100.0, good_rows())
        if rc != 0 or "[FAIL]" in out:
            print("self-test FAIL: clean artifacts did not pass:")
            print(out)
            ok = False

        rc, out = run(tmp, "bad", 1000.0, poison(good_rows()))
        if rc != 1:
            print(f"self-test FAIL: poisoned artifacts returned rc={rc}")
            print(out)
            ok = False
        fail_lines = [l for l in out.splitlines() if l.startswith("[FAIL]")]
        expected = [
            "BM_SchedulerCancelHeavy",       # gate 1
            "ev/PPDU",                       # gate 2 (total)
            "NAV-reset probes",              # gate 2 (per-class)
            "transport pacing",              # gate 2 (per-class)
            "collapse baseline",             # gate 3
            "hidden-terminal",               # gate 4
            "zero bytes delivered",          # gate 5
            "QoS voice tail",                # gate 6
            "post-fault goodput",            # gate 7
            "window=0 identity",             # gate 8 (dict diff)
            "structurally absent",           # gate 8 (batch counter)
            "ablation goodput",              # gate 9
        ]
        for marker in expected:
            if not any(marker in l for l in fail_lines):
                print(f"self-test FAIL: poisoned run did not trip a [FAIL] "
                      f"line containing {marker!r}")
                ok = False

    print("check_bench_gates self-test " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def main():
    ap = build_parser()
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    for name in ("committed_micro", "fresh_micro", "committed_scale"):
        if getattr(args, name) is None:
            ap.error(f"--{name.replace('_', '-')} is required "
                     "(unless --self-test)")
    return run_gates(args)


if __name__ == "__main__":
    sys.exit(main())
