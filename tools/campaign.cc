// campaign: multicore seed x topology x workload fan-out driver.
//
// Expands a matrix of independent simulation runs — every combination of
// topology (ring / disk / hidden), workload (udp / udp-up / tcp / tcp+hack)
// and `--seeds=K` replicate seeds — and fans it across a worker pool. Every
// run's seed is DeriveRunSeed(base_seed, matrix_index): a pure function of
// the matrix position, so the campaign produces bit-identical per-run
// results at any --jobs level (tests/campaign_test.cc pins this). Per-run
// lines stream in matrix order while later runs are still executing; the
// per-cell summary reports goodput mean / stddev / 95% CI across seeds.
//
//   campaign --jobs=8 --seeds=5 --stations=20           # saturate the box
//   campaign --jobs=1 ...                               # serial reference
//   campaign --json=/tmp/campaign.json ...              # machine-readable
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/scenario/campaign.h"
#include "src/sim/random.h"
#include "src/util/stats.h"

using namespace hacksim;

namespace {

struct TopoSpec {
  const char* name;
  Topology topology;
  bool geometric;       // install log-distance propagation
  size_t rts_threshold; // hidden cells need protection to deliver
};

struct WorkloadSpec {
  const char* name;
  TransportProto proto;
  HackVariant hack;
  bool upload;
};

constexpr TopoSpec kTopos[] = {
    {"ring", Topology::kRing, false, 0},
    {"disk", Topology::kUniformDisk, true, 0},
    {"hidden", Topology::kTwoClusterHidden, true, 500},
};

constexpr WorkloadSpec kWorkloads[] = {
    {"udp", TransportProto::kUdp, HackVariant::kOff, false},
    {"udp-up", TransportProto::kUdp, HackVariant::kOff, true},
    {"tcp", TransportProto::kTcp, HackVariant::kOff, false},
    {"tcp+hack", TransportProto::kTcp, HackVariant::kMoreData, false},
};

struct Cell {
  const TopoSpec* topo;
  const WorkloadSpec* workload;
  RunningStats goodput;
};

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = hardware_concurrency
  int seeds = 5;
  int stations = 20;
  int64_t duration_ms = 500;
  uint64_t base_seed = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      seeds = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--stations=", 11) == 0) {
      stations = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--duration-ms=", 14) == 0) {
      duration_ms = std::atoll(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--base-seed=", 12) == 0) {
      base_seed = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: campaign [--jobs=N] [--seeds=K] [--stations=N] "
                   "[--duration-ms=D] [--base-seed=S] [--json=PATH]\n");
      return 2;
    }
  }
  if (seeds < 1 || stations < 1 || duration_ms < 1) {
    std::fprintf(stderr, "campaign: --seeds/--stations/--duration-ms must "
                         "be positive\n");
    return 2;
  }

  // Matrix expansion, in a fixed order: cell-major, seed-minor. The flat
  // index is the run's identity — its seed derives from it and nothing
  // else, so adding workers never moves a run's RNG streams.
  std::vector<Cell> cells;
  for (const TopoSpec& t : kTopos) {
    for (const WorkloadSpec& w : kWorkloads) {
      cells.push_back(Cell{&t, &w, {}});
    }
  }
  struct Run {
    size_t cell;
    int replicate;
    uint64_t seed;
    ScenarioConfig config;
  };
  std::vector<Run> runs;
  for (size_t c = 0; c < cells.size(); ++c) {
    for (int k = 0; k < seeds; ++k) {
      Run r;
      r.cell = c;
      r.replicate = k;
      r.seed = DeriveRunSeed(base_seed, runs.size());
      ScenarioConfig& cfg = r.config;
      cfg.standard = WifiStandard::k80211n;
      cfg.data_rate_mbps = 150.0;
      cfg.n_clients = stations;
      cfg.duration = SimTime::Millis(duration_ms);
      cfg.start_stagger =
          SimTime::Nanos(duration_ms * 1'000'000 / (5 * stations));
      cfg.seed = r.seed;
      const TopoSpec& t = *cells[c].topo;
      const WorkloadSpec& w = *cells[c].workload;
      cfg.topology = t.topology;
      if (t.geometric) {
        cfg.propagation = LogDistancePropagation::Params{};
      }
      cfg.rts_threshold = t.rts_threshold;
      cfg.proto = w.proto;
      cfg.hack = w.hack;
      cfg.upload = w.upload;
      if (w.proto == TransportProto::kUdp && w.upload) {
        cfg.udp_rate_bps = 2.5e9;  // saturated uplink contention
      }
      runs.push_back(std::move(r));
    }
  }

  std::printf("campaign: %zu runs (%zu cells x %d seeds), jobs=%d\n\n",
              runs.size(), cells.size(), seeds, ResolveJobs(jobs));

  std::vector<ScenarioResult> results(runs.size());
  uint64_t crc_failures = 0;
  ParallelForOrdered(
      runs.size(), jobs,
      [&](size_t i) { results[i] = RunScenario(runs[i].config); },
      [&](size_t i) {
        const Run& r = runs[i];
        const ScenarioResult& res = results[i];
        cells[r.cell].goodput.Add(res.aggregate_goodput_mbps);
        crc_failures += res.crc_failures;
        std::printf("run %3zu/%zu  %-6s %-8s seed=%-20llu goodput=%7.1f "
                    "events=%llu\n",
                    i + 1, runs.size(), cells[r.cell].topo->name,
                    cells[r.cell].workload->name,
                    static_cast<unsigned long long>(r.seed),
                    res.aggregate_goodput_mbps,
                    static_cast<unsigned long long>(res.events_executed));
        std::fflush(stdout);
      });

  std::printf("\n%-8s %-10s %5s %9s %9s %9s %9s %9s\n", "topo", "workload",
              "runs", "mean", "stddev", "ci95", "min", "max");
  for (const Cell& cell : cells) {
    std::printf("%-8s %-10s %5lld %9.1f %9.2f %9.2f %9.1f %9.1f\n",
                cell.topo->name, cell.workload->name,
                static_cast<long long>(cell.goodput.count()),
                cell.goodput.mean(), cell.goodput.stddev(),
                cell.goodput.Ci95HalfWidth(), cell.goodput.min(),
                cell.goodput.max());
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "campaign: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"campaign\",\n  \"base_seed\": "
                 "%llu,\n  \"cells\": [\n",
                 static_cast<unsigned long long>(base_seed));
    for (size_t c = 0; c < cells.size(); ++c) {
      const Cell& cell = cells[c];
      std::fprintf(
          f,
          "    {\"topo\": \"%s\", \"workload\": \"%s\", \"stations\": %d, "
          "\"runs\": %lld, \"goodput_mean_mbps\": %.3f, "
          "\"goodput_stddev_mbps\": %.3f, \"goodput_ci95_mbps\": %.3f}%s\n",
          cell.topo->name, cell.workload->name, stations,
          static_cast<long long>(cell.goodput.count()), cell.goodput.mean(),
          cell.goodput.stddev(), cell.goodput.Ci95HalfWidth(),
          c + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (crc_failures != 0) {
    std::fprintf(stderr, "campaign: %llu decompression CRC failures\n",
                 static_cast<unsigned long long>(crc_failures));
    return 1;
  }
  return 0;
}
