#include "src/node/point_to_point_link.h"

#include "src/util/logging.h"

namespace hacksim {

PointToPointLink::PointToPointLink(Scheduler* scheduler, Config config)
    : scheduler_(scheduler), config_(config) {}

void PointToPointLink::SendFrom(int endpoint, Packet packet) {
  CHECK(endpoint == 0 || endpoint == 1);
  Direction& dir = dir_[endpoint];
  if (dir.queue.size() >= config_.queue_limit_packets) {
    ++drops_;
    return;
  }
  dir.queue.push_back(std::move(packet));
  if (!dir.busy) {
    StartTransmission(endpoint);
  }
}

void PointToPointLink::StartTransmission(int direction) {
  Direction& dir = dir_[direction];
  CHECK(!dir.queue.empty());
  dir.busy = true;
  Packet packet = std::move(dir.queue.front());
  dir.queue.pop_front();
  double bits = static_cast<double>(packet.SizeBytes()) * 8.0;
  SimTime serialization = SimTime::FromSecondsF(bits / config_.rate_bps);
  SimTime arrival = serialization + config_.delay;
  scheduler_->ScheduleIn(
      arrival,
      [this, direction, packet = std::move(packet)]() mutable {
        auto& deliver = direction == 0 ? deliver_to_1 : deliver_to_0;
        if (deliver) {
          deliver(std::move(packet));
        }
      },
      EventClass::kChannel);
  scheduler_->ScheduleIn(
      serialization,
      [this, direction]() {
        Direction& d = dir_[direction];
        d.busy = false;
        if (!d.queue.empty()) {
          StartTransmission(direction);
        }
      },
      EventClass::kChannel);
}

}  // namespace hacksim
