#include "src/node/wifi_net_device.h"

#include "src/util/logging.h"

namespace hacksim {

WifiNetDevice::WifiNetDevice(Scheduler* scheduler, WirelessChannel* channel,
                             MacAddress address, WifiMacConfig mac_config,
                             Random rng)
    : scheduler_(scheduler) {
  phy_ = std::make_unique<WifiPhy>(scheduler, rng.Fork());
  phy_->AttachTo(channel);
  mac_ = std::make_unique<WifiMac>(scheduler, phy_.get(), address, mac_config,
                                   rng.Fork());
  mac_->on_rx_packet = [this](Packet packet, MacAddress from) {
    HandleMacReceive(std::move(packet), from);
  };
}

void WifiNetDevice::EnableHack(HackAgentConfig config) {
  CHECK(hack_ == nullptr);
  hack_ = std::make_unique<HackAgent>(scheduler_, mac_.get(), config);
  hack_->forward_decompressed = [this](Packet packet, MacAddress from) {
    if (on_receive) {
      on_receive(std::move(packet), from);
    }
  };
}

void WifiNetDevice::Send(Packet packet, MacAddress next_hop) {
  if (hack_ != nullptr &&
      hack_->OfferOutgoingPacket(std::move(packet), next_hop)) {
    return;  // consumed: it will ride an LL ACK (or was enqueued vanilla)
  }
  // A false return means the agent left `packet` untouched (it only moves
  // from packets it consumes), so forwarding it on is safe.
  mac_->Enqueue(std::move(packet), next_hop);
}

void WifiNetDevice::HandleMacReceive(Packet packet, MacAddress from) {
  if (hack_ != nullptr) {
    if (packet.IsPureTcpAck()) {
      hack_->NoteReceivedVanillaAck(packet, from);
    } else if (packet.has_tcp()) {
      hack_->NoteReceivedDataSegment(packet);
    }
  }
  if (on_receive) {
    on_receive(std::move(packet), from);
  }
}

}  // namespace hacksim
