// Full-duplex point-to-point wired link with a FIFO transmit queue per
// direction. Models the server <-> AP backhaul of the paper's simulations
// (500 Mbps, 1 ms one-way latency, §4.3).
#ifndef SRC_NODE_POINT_TO_POINT_LINK_H_
#define SRC_NODE_POINT_TO_POINT_LINK_H_

#include <deque>
#include <functional>

#include "src/packet/packet.h"
#include "src/sim/scheduler.h"

namespace hacksim {

class PointToPointLink {
 public:
  struct Config {
    double rate_bps = 500e6;
    SimTime delay = SimTime::Millis(1);
    size_t queue_limit_packets = 1000;
  };

  PointToPointLink(Scheduler* scheduler, Config config);

  // Endpoint 0 and 1 receive callbacks.
  std::function<void(Packet)> deliver_to_0;
  std::function<void(Packet)> deliver_to_1;

  // Sends from the given endpoint to the other.
  void SendFrom(int endpoint, Packet packet);

  uint64_t drops() const { return drops_; }

 private:
  struct Direction {
    std::deque<Packet> queue;
    bool busy = false;
  };

  void StartTransmission(int direction);

  Scheduler* scheduler_;
  Config config_;
  Direction dir_[2];  // index = source endpoint
  uint64_t drops_ = 0;
};

}  // namespace hacksim

#endif  // SRC_NODE_POINT_TO_POINT_LINK_H_
