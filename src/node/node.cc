#include "src/node/node.h"

#include "src/util/logging.h"

namespace hacksim {

void Node::AttachWifi(WifiNetDevice* device) {
  CHECK(wifi_ == nullptr);
  wifi_ = device;
  device->on_receive = [this](Packet packet, MacAddress) {
    OnPacketReceived(std::move(packet));
  };
}

void Node::AttachP2p(PointToPointLink* link, int endpoint) {
  CHECK(p2p_ == nullptr);
  p2p_ = link;
  p2p_endpoint_ = endpoint;
  auto handler = [this](Packet packet) { OnPacketReceived(std::move(packet)); };
  if (endpoint == 0) {
    link->deliver_to_0 = handler;
  } else {
    link->deliver_to_1 = handler;
  }
}

void Node::AddRoute(Ipv4Address dst, Egress egress, MacAddress next_hop_mac) {
  routes_[dst] = Route{egress, next_hop_mac};
}

void Node::SetDefaultRoute(Egress egress, MacAddress next_hop_mac) {
  default_route_ = std::make_unique<Route>(Route{egress, next_hop_mac});
}

const Node::Route* Node::Lookup(Ipv4Address dst) const {
  auto it = routes_.find(dst);
  if (it != routes_.end()) {
    return &it->second;
  }
  return default_route_.get();
}

void Node::Egress_(const Route& route, Packet packet) {
  switch (route.egress) {
    case Egress::kWifi:
      CHECK(wifi_ != nullptr);
      wifi_->Send(std::move(packet), route.next_hop_mac);
      break;
    case Egress::kP2p:
      CHECK(p2p_ != nullptr);
      p2p_->SendFrom(p2p_endpoint_, std::move(packet));
      break;
  }
}

void Node::Send(Packet packet) {
  CHECK(packet.has_ip());
  const Route* route = Lookup(packet.ip().dst);
  if (route == nullptr) {
    ++routing_drops_;
    return;
  }
  Egress_(*route, std::move(packet));
}

void Node::RegisterHandler(uint16_t dst_port,
                           std::function<void(const Packet&)> handler) {
  handlers_[dst_port] = std::move(handler);
}

void Node::OnPacketReceived(Packet packet) {
  if (!packet.has_ip()) {
    return;
  }
  if (packet.ip().dst != address_) {
    // Forward (AP role).
    const Route* route = Lookup(packet.ip().dst);
    if (route == nullptr) {
      ++routing_drops_;
      return;
    }
    ++forwarded_;
    Egress_(*route, std::move(packet));
    return;
  }
  uint16_t port = 0;
  if (packet.has_tcp()) {
    port = packet.tcp().dst_port;
  } else if (packet.has_udp()) {
    port = packet.udp().dst_port;
  }
  auto it = handlers_.find(port);
  if (it == handlers_.end()) {
    ++routing_drops_;
    return;
  }
  ++delivered_;
  it->second(packet);
}

}  // namespace hacksim
