// Node: an L3 endpoint/forwarder with static routes and a transport demux.
//
// Three node shapes appear in the paper's topologies:
//  * server  — TCP/UDP sources behind the wired link,
//  * AP      — forwards between the wired link and the WLAN,
//  * client  — WLAN station terminating TCP/UDP flows.
// All are instances of this class with different routes/devices attached.
#ifndef SRC_NODE_NODE_H_
#define SRC_NODE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/node/point_to_point_link.h"
#include "src/node/wifi_net_device.h"
#include "src/packet/packet.h"

namespace hacksim {

class Node {
 public:
  explicit Node(Ipv4Address address) : address_(address) {}

  Ipv4Address address() const { return address_; }

  // --- egress devices ---------------------------------------------------------
  // Attaches a WiFi device; packets routed to it are sent to the next-hop
  // MAC resolved through the static ARP table.
  void AttachWifi(WifiNetDevice* device);
  // Attaches one endpoint of a p2p link.
  void AttachP2p(PointToPointLink* link, int endpoint);

  // --- routing -----------------------------------------------------------------
  enum class Egress { kWifi, kP2p };
  void AddRoute(Ipv4Address dst, Egress egress, MacAddress next_hop_mac);
  void SetDefaultRoute(Egress egress, MacAddress next_hop_mac);

  // Sends a locally generated packet.
  void Send(Packet packet);

  // --- transport demux -----------------------------------------------------------
  // Registers a handler for packets addressed to this node on `dst_port`.
  void RegisterHandler(uint16_t dst_port,
                       std::function<void(const Packet&)> handler);

  // Called by devices when a packet arrives; forwards or delivers.
  void OnPacketReceived(Packet packet);

  uint64_t forwarded() const { return forwarded_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t routing_drops() const { return routing_drops_; }

 private:
  struct Route {
    Egress egress;
    MacAddress next_hop_mac;
  };

  void Egress_(const Route& route, Packet packet);
  const Route* Lookup(Ipv4Address dst) const;

  Ipv4Address address_;
  WifiNetDevice* wifi_ = nullptr;
  PointToPointLink* p2p_ = nullptr;
  int p2p_endpoint_ = 0;

  std::map<Ipv4Address, Route> routes_;
  std::unique_ptr<Route> default_route_;
  std::map<uint16_t, std::function<void(const Packet&)>> handlers_;

  uint64_t forwarded_ = 0;
  uint64_t delivered_ = 0;
  uint64_t routing_drops_ = 0;
};

}  // namespace hacksim

#endif  // SRC_NODE_NODE_H_
