// WifiNetDevice: binds PHY + MAC (+ optional HackAgent) into an L2 device a
// Node can route packets through. This is where the HACK interception
// points sit, mirroring the paper's driver placement (§3.3.1): outgoing
// pure TCP ACKs are offered to the agent before reaching the MAC queue, and
// received vanilla TCP ACKs are snooped to bootstrap ROHC contexts.
#ifndef SRC_NODE_WIFI_NET_DEVICE_H_
#define SRC_NODE_WIFI_NET_DEVICE_H_

#include <functional>
#include <memory>

#include "src/hack/hack_agent.h"
#include "src/mac80211/wifi_mac.h"
#include "src/phy80211/wifi_phy.h"

namespace hacksim {

class WifiNetDevice {
 public:
  WifiNetDevice(Scheduler* scheduler, WirelessChannel* channel,
                MacAddress address, WifiMacConfig mac_config, Random rng);

  // Enables HACK on this device.
  void EnableHack(HackAgentConfig config);

  void Send(Packet packet, MacAddress next_hop);

  // Delivery of received packets (both over-the-air data and TCP ACKs the
  // HACK agent reconstituted from LL ACK payloads).
  std::function<void(Packet, MacAddress from)> on_receive;

  WifiPhy& phy() { return *phy_; }
  WifiMac& mac() { return *mac_; }
  HackAgent* hack() { return hack_.get(); }
  MacAddress address() const { return mac_->address(); }

 private:
  void HandleMacReceive(Packet packet, MacAddress from);

  Scheduler* scheduler_;
  std::unique_ptr<WifiPhy> phy_;
  std::unique_ptr<WifiMac> mac_;
  std::unique_ptr<HackAgent> hack_;
};

}  // namespace hacksim

#endif  // SRC_NODE_WIFI_NET_DEVICE_H_
