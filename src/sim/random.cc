#include "src/sim/random.h"

#include <cmath>

#include "src/util/logging.h"

namespace hacksim {
namespace {

constexpr uint64_t RotL(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Random::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Random::NextU64() {
  // xoshiro256++ step (Blackman & Vigna).
  uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Random::NextInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Random::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Random::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Random::NextExponential(double mean) {
  CHECK_GT(mean, 0.0);
  double u = NextDouble();
  // 1 - u is in (0, 1]; log of it is finite.
  return -mean * std::log(1.0 - u);
}

Random Random::Fork() { return Random(NextU64()); }

uint64_t DeriveRunSeed(uint64_t base_seed, uint64_t run_index) {
  // Position the splitmix state run_index golden-ratio steps past the base
  // seed, then take one mixed output. SplitMix64 adds the increment before
  // mixing, so index 0 still produces a mixed (not raw) seed.
  uint64_t sm = base_seed + run_index * 0x9E3779B97F4A7C15ull;
  return SplitMix64(&sm);
}

}  // namespace hacksim
