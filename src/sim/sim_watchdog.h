// Liveness + invariant watchdog: a self-rescheduling audit that runs at a
// configurable cadence and aborts (with a one-line reproduction recipe) the
// moment the simulation wedges instead of letting a livelock burn the CI
// job's wall clock. The probes are injected as callbacks so the watchdog
// stays a pure sim-layer component with no upward dependency on the MAC or
// scenario layers.
//
// Invariants audited per check (see docs/robustness.md):
//   forward progress  a backlogged cell must deliver PPDUs: if any radio-on
//                     station reports backlog and the channel's PPDU count
//                     has not advanced for `stall_checks` consecutive
//                     checks, the cell is stalled.
//   NAV leak          no station's NAV reservation may extend more than
//                     `max_nav_reservation` past now — a longer value means
//                     a virtual carrier-sense reservation leaked and the
//                     medium will never go idle.
//   arena leak        the scheduler's pending-event count must stay under
//                     `max_pending_events`; unbounded growth means some
//                     subsystem schedules without ever firing/cancelling.
#ifndef SRC_SIM_SIM_WATCHDOG_H_
#define SRC_SIM_SIM_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/sim/scheduler.h"
#include "src/sim/sim_time.h"

namespace hacksim {

struct WatchdogConfig {
  // Audit cadence. Zero disables the watchdog entirely (legacy default:
  // zero extra scheduled events, bit-identical runs).
  SimTime interval;
  // Consecutive no-progress checks (with backlog present) before tripping.
  int stall_checks = 3;
  // Longest legal NAV reservation beyond now. Generous versus any real
  // TXOP (~10 ms): a leak shows up as a reservation parked minutes out.
  SimTime max_nav_reservation = SimTime::Millis(100);
  // Pending-event ceiling; 0 disables the arena probe.
  size_t max_pending_events = 0;
  // Abort via CHECK on a trip (production/fuzz). Tests set false and
  // assert on stats().trips instead.
  bool abort_on_trip = true;
};

struct WatchdogStats {
  uint64_t checks = 0;
  uint64_t trips = 0;
  size_t max_pending_seen = 0;

  friend bool operator==(const WatchdogStats&, const WatchdogStats&) = default;
};

class SimWatchdog {
 public:
  // All probes are required when Start() is called. progress_probe returns a
  // monotone delivered-work counter (PPDUs on air); backlog_probe returns
  // true when some radio-on station has queued work; nav_probe returns the
  // latest NAV expiry across radio-on stations (SimTime::Zero() if none).
  using ProgressProbe = std::function<uint64_t()>;
  using BacklogProbe = std::function<bool()>;
  using NavProbe = std::function<SimTime()>;

  SimWatchdog(Scheduler* scheduler, WatchdogConfig config)
      : scheduler_(scheduler), config_(config) {}

  void set_progress_probe(ProgressProbe p) { progress_probe_ = std::move(p); }
  void set_backlog_probe(BacklogProbe p) { backlog_probe_ = std::move(p); }
  void set_nav_probe(NavProbe p) { nav_probe_ = std::move(p); }
  // One-line reproduction recipe (seed, topology, fault plan) included in
  // the abort message on a trip.
  void set_repro(std::string repro) { repro_ = std::move(repro); }

  // Schedules the first check interval from now. No-op when
  // config.interval is zero.
  void Start();
  // Cancels the pending check (e.g. before tearing the scenario down).
  void Stop();

  // Runs one audit immediately; exposed for unit tests.
  void Check();

  const WatchdogStats& stats() const { return stats_; }

 private:
  void Arm();
  void Trip(const std::string& what);

  Scheduler* scheduler_;
  WatchdogConfig config_;
  ProgressProbe progress_probe_;
  BacklogProbe backlog_probe_;
  NavProbe nav_probe_;
  std::string repro_;

  WatchdogStats stats_;
  uint64_t last_progress_ = 0;
  int stalled_checks_ = 0;
  EventId check_event_ = kInvalidEventId;
};

}  // namespace hacksim

#endif  // SRC_SIM_SIM_WATCHDOG_H_
