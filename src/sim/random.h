// Deterministic pseudo-random source: xoshiro256++ with splitmix64 seeding.
//
// Every stochastic element of the simulator (backoff draws, channel loss,
// start staggering) pulls from an explicitly seeded Random so that a run is
// exactly reproducible from (config, seed) — a requirement for regression
// tests that assert goodput bands.
#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstdint>

namespace hacksim {

class Random {
 public:
  explicit Random(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextU64();

  // Uniform on [0, bound) without modulo bias. bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer on [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform on [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Derives an independent child stream; used to give each station its own
  // stream so adding a station never perturbs another's draws.
  Random Fork();

 private:
  uint64_t state_[4];
};

// Derives the seed for run `run_index` of a campaign rooted at `base_seed`
// via the golden-ratio splitmix scheme Random::Seed itself uses: the base
// seed is advanced `run_index` golden-ratio increments and mixed. The
// result depends only on (base_seed, run_index) — never on which worker
// thread executes the run or in what order — so a campaign's per-run RNG
// streams are identical at any --jobs level. Streams for distinct indices
// are as independent as splitmix64 outputs (the same guarantee Fork()
// gives per-station streams).
uint64_t DeriveRunSeed(uint64_t base_seed, uint64_t run_index);

}  // namespace hacksim

#endif  // SRC_SIM_RANDOM_H_
