#include "src/sim/scheduler.h"

#include <utility>

namespace hacksim {

EventFn Scheduler::Retire(EventId id) {
  Slot& s = slots_[SlotOf(id)];
  EventFn fn = std::move(s.fn);
  // Bump the generation so every outstanding handle to this slot — the id
  // just retired and any heap entry still carrying it — goes stale. If the
  // 32-bit generation wraps (2^32 retires of this one slot; the LIFO free
  // list does concentrate reuse on hot slots), the slot is retired
  // permanently instead of recycled: generation 0 matches no id ever issued
  // (ids pack generation >= 1), so the ABA alias a wrap could otherwise
  // create is impossible. The arena grows by one slot per ~4 billion
  // reuses — negligible leak, bought determinism.
  if (++s.generation != 0) {
    s.next_free = free_head_;
    free_head_ = SlotOf(id);
  }
  --live_;
  return fn;
}

void Scheduler::Cancel(EventId id) {
  if (!IsPending(id)) {
    return;  // already fired, cancelled, or never existed
  }
  Retire(id).Reset();  // heap entry stays; the generation check skips it
}

uint64_t Scheduler::Run(uint64_t limit) {
  uint64_t n = 0;
  while (n < limit && SettleTop()) {
    HeapEntry entry = heap_.front();
    PopTop();
    now_ = KeyTime(entry.key);
    // Retire before invoking: the event is no longer pending while it runs,
    // so cancelling its own id inside the callback is a harmless no-op and
    // the slot is immediately reusable by events it schedules.
    EventFn fn = Retire(entry.id);
    fn.InvokeAndReset();
    ++n;
    ++executed_;
  }
  return n;
}

uint64_t Scheduler::RunUntil(SimTime t) {
  CHECK_GE(t, now_);
  uint64_t n = 0;
  while (SettleTop() && KeyTime(heap_.front().key) <= t) {
    HeapEntry entry = heap_.front();
    PopTop();
    now_ = KeyTime(entry.key);
    EventFn fn = Retire(entry.id);
    fn.InvokeAndReset();
    ++n;
    ++executed_;
  }
  now_ = t;
  return n;
}

}  // namespace hacksim
