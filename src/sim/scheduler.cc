#include "src/sim/scheduler.h"

#include <bit>
#include <utility>

namespace hacksim {

// --- slot lifecycle -----------------------------------------------------------


void Scheduler::ArmOuter(WheelEntry entry, uint64_t tick0) {
  // Level 1: buckets of 256 ticks. The bucket for the current L1 tick has
  // already cascaded, hence delta >= 1; delta <= 255 avoids aliasing.
  uint64_t tick1 = tick0 >> kBucketBits;
  uint64_t curr1 = wheel_pos_ >> kBucketBits;
  if (tick1 - curr1 <= kBucketMask) {  // >= 1 implied by the L0 miss
    AppendToBucket(1, tick1 & kBucketMask, entry);
    wheel_next_hint_ = std::min(wheel_next_hint_, tick1 << kBucketBits);
    return;
  }
  // Level 2: buckets of 2^16 ticks.
  uint64_t tick2 = tick1 >> kBucketBits;
  uint64_t curr2 = curr1 >> kBucketBits;
  if (tick2 - curr2 <= kBucketMask) {
    AppendToBucket(2, tick2 & kBucketMask, entry);
    wheel_next_hint_ =
        std::min(wheel_next_hint_, tick2 << (2 * kBucketBits));
    return;
  }
  // Beyond the wheel horizon: the heap carries it with its exact key.
  Push(HeapEntry{PackKey(entry.key_time, slots_[SlotOf(entry.id)].key_seq),
                 entry.id});
}

void Scheduler::CascadeBucket(uint32_t level, uint32_t idx) {
  std::vector<WheelEntry>& b = buckets_[(level << kBucketBits) | idx];
  occupancy_[level][idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  wheel_entries_ -= b.size();
  // Re-arming can append to *other* buckets but never to this one (the
  // entries' ticks all precede this bucket's next alias), so iterating the
  // vector while re-arming is safe — but swap it out anyway to keep the
  // invariant obvious and the bucket reusable immediately.
  std::vector<WheelEntry> moving;
  moving.swap(b);
  for (const WheelEntry& e : moving) {
    if (IsPendingKnownSlot(e.id)) {
      Arm(e);  // re-places one level down (or L0 / heap)
    }
  }
  moving.clear();
  // Hand the storage back so the bucket keeps its capacity.
  if (b.empty()) {
    b.swap(moving);
  }
}

void Scheduler::GrowReady(size_t need) {
  size_t cap = std::max<size_t>(ready_cap_ * 2, 64);
  cap = std::max(cap, ready_size_ + need);
  auto grown = std::make_unique<HeapEntry[]>(cap);
  std::copy(ready_.get(), ready_.get() + ready_size_, grown.get());
  ready_ = std::move(grown);
  ready_cap_ = cap;
}

size_t Scheduler::DrainBucket(uint32_t idx) {
  std::vector<WheelEntry>& b = buckets_[idx];  // level 0: bucket == idx
  occupancy_[0][idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  wheel_entries_ -= b.size();
  // One capacity check buys the whole walk an append pointer that lives in
  // a register.
  if (ready_cap_ - ready_size_ < b.size()) {
    GrowReady(b.size());
  }
  HeapEntry* out = ready_.get() + ready_size_;
  HeapEntry* first = out;
  // Buckets usually hold entries in key order (append order is arm order),
  // but cascaded-in entries carry their original seq and may interleave
  // behind direct-armed equal-time neighbours — so track sortedness on the
  // FULL (time, seq) key, not the time alone. Stale (cancelled) entries
  // are dropped here: this is where lazy wheel cancellation settles up.
  HeapKey prev_key = 0;
  bool sorted = true;
  for (const WheelEntry& e : b) {
    const Slot& s = slots_[SlotOf(e.id)];
    if (s.generation != GenerationOf(e.id)) {
      continue;  // cancelled after arming
    }
    HeapKey key = PackKey(e.key_time, s.key_seq);
    sorted = sorted && key >= prev_key;
    prev_key = key;
    *out++ = HeapEntry{key, e.id};
  }
  b.clear();
  size_t drained = static_cast<size_t>(out - first);
  ready_size_ += drained;
  if (!sorted) {
    // Same-tick events armed with out-of-order times: restore exact
    // (time, seq) order. Against everything already in ready_ the order is
    // free — earlier drains hold strictly earlier ticks.
    std::sort(first, out);
  }
  return drained;
}

int Scheduler::NextOccupiedDistance(uint32_t level, uint32_t start) const {
  const auto& bm = occupancy_[level];
  uint32_t word = start >> 6;
  uint32_t off = start & 63;
  uint64_t w = bm[word] >> off;
  if (w != 0) {
    return std::countr_zero(w);
  }
  for (uint32_t k = 1; k <= 4; ++k) {
    uint32_t wi = (word + k) & 3;
    uint64_t v = bm[wi];
    if (k == 4) {
      // Wrapped back to the start word: only bits below `off` are new.
      v &= off != 0 ? (uint64_t{1} << off) - 1 : 0;
    }
    if (v != 0) {
      return static_cast<int>(64 - off + 64 * (k - 1)) +
             std::countr_zero(v);
    }
  }
  return -1;
}

size_t Scheduler::AdvanceWheel(uint64_t tick_limit, bool stop_on_drain) {
  size_t drained = 0;
  while (wheel_entries_ > 0) {
    uint64_t curr1 = wheel_pos_ >> kBucketBits;
    uint64_t curr2 = curr1 >> kBucketBits;
    int d0 = NextOccupiedDistance(0, wheel_pos_ & kBucketMask);
    int d1 = NextOccupiedDistance(1, curr1 & kBucketMask);
    int d2 = NextOccupiedDistance(2, curr2 & kBucketMask);
    // Next tick at which anything needs doing: an occupied L0 bucket's own
    // tick, or the start-of-range (cascade) tick of an occupied L1/L2
    // bucket. The max() guards keep post-jump d == 0 cases from computing a
    // cascade tick behind the cursor.
    uint64_t t0 = d0 < 0 ? kNoTick : wheel_pos_ + static_cast<uint64_t>(d0);
    uint64_t c1 = d1 < 0 ? kNoTick
                         : std::max((curr1 + static_cast<uint64_t>(d1))
                                        << kBucketBits,
                                    wheel_pos_);
    uint64_t c2 = d2 < 0 ? kNoTick
                         : std::max((curr2 + static_cast<uint64_t>(d2))
                                        << (2 * kBucketBits),
                                    wheel_pos_);
    uint64_t next = std::min({t0, c1, c2});
    if (next > tick_limit) {
      // Everything due by tick_limit has been drained. Park the cursor just
      // past the limit (never past the next occupied tick) so the window
      // stays maximal for future arms.
      wheel_pos_ = std::max(wheel_pos_, tick_limit + 1);
      wheel_next_hint_ = next;
      return drained;
    }
    wheel_pos_ = next;
    // Cascades first (outer level first): a cascade may feed the very L0
    // bucket drained at this tick, so re-evaluate after each action.
    if (c2 == next) {
      CascadeBucket(2, (curr2 + static_cast<uint64_t>(d2)) & kBucketMask);
      continue;
    }
    if (c1 == next) {
      CascadeBucket(1, (curr1 + static_cast<uint64_t>(d1)) & kBucketMask);
      continue;
    }
    drained += DrainBucket(static_cast<uint32_t>(next & kBucketMask));
    wheel_pos_ = next + 1;
    if (stop_on_drain && drained > 0) {
      break;
    }
  }
  wheel_next_hint_ = wheel_entries_ == 0 ? kNoTick : wheel_pos_;
  return drained;
}

bool Scheduler::TakeNext(HeapEntry* out, uint64_t horizon_ns) {
  // Fast lane: with the heap and the wheel both empty nothing can preempt
  // the ready run — the common shape of a drained same-tick burst.
  if (heap_.empty() && wheel_entries_ == 0) {
    while (ready_pos_ < ready_size_) {
      const HeapEntry& e = ready_[ready_pos_];
      if (!IsPendingKnownSlot(e.id)) {
        ++ready_pos_;  // cancelled after draining: skip
        continue;
      }
      if (static_cast<uint64_t>(e.key >> 64) > horizon_ns) {
        return false;
      }
      *out = e;
      if (++ready_pos_ == ready_size_) {
        ready_size_ = 0;  // run fully consumed
        ready_pos_ = 0;
      }
      return true;
    }
    ready_size_ = 0;
    ready_pos_ = 0;
    return false;
  }
  for (;;) {
    while (ready_pos_ < ready_size_ &&
           !IsPendingKnownSlot(ready_[ready_pos_].id)) {
      ++ready_pos_;  // cancelled after draining: skip
    }
    while (!heap_.empty() && !IsPendingKnownSlot(heap_.front().id)) {
      PopTop();  // cancelled: drop the dead entry
    }
    bool have_ready = ready_pos_ < ready_size_;
    bool have_heap = !heap_.empty();
    if (have_ready || have_heap) {
      bool use_ready =
          have_ready &&
          (!have_heap || ready_[ready_pos_].key < heap_.front().key);
      HeapKey key = use_ready ? ready_[ready_pos_].key : heap_.front().key;
      uint64_t cand_tick = static_cast<uint64_t>(key >> 64) >> kTickBits;
      if (wheel_entries_ != 0 && cand_tick >= wheel_next_hint_ &&
          AdvanceWheel(cand_tick, /*stop_on_drain=*/false) != 0) {
        continue;  // something drained; it may now be the earlier head
      }
      if (static_cast<uint64_t>(key >> 64) > horizon_ns) {
        return false;  // next event beyond the caller's horizon
      }
      if (use_ready) {
        *out = ready_[ready_pos_++];
        if (ready_pos_ == ready_size_) {
          ready_size_ = 0;  // run fully consumed
          ready_pos_ = 0;
        }
      } else {
        *out = heap_.front();
        PopTop();
      }
      return true;
    }
    if (wheel_entries_ == 0) {
      return false;
    }
    AdvanceWheel(kNoTick, /*stop_on_drain=*/true);
    // Loop: re-sweep the freshly drained run.
  }
}

// --- run loops ----------------------------------------------------------------

template <bool kBounded>
uint64_t Scheduler::RunLoop(uint64_t limit, uint64_t horizon_ns) {
  uint64_t n = 0;
  while (n < limit) {
    EventId id;
    // Tight lane: with the heap and the wheel empty nothing can preempt
    // the ready head, so skip the full TakeNext dance. Callbacks that
    // schedule new events flip the emptiness tests and fall back below.
    if (heap_.empty() && wheel_entries_ == 0 && ready_pos_ < ready_size_) {
      const HeapEntry& e = ready_[ready_pos_];
      if (!IsPendingKnownSlot(e.id)) {
        ++ready_pos_;  // cancelled after draining: skip
        continue;
      }
      if (kBounded && static_cast<uint64_t>(e.key >> 64) > horizon_ns) {
        break;
      }
      now_ = KeyTime(e.key);
      id = e.id;
      ++ready_pos_;
    } else {
      HeapEntry entry;
      if (!TakeNext(&entry, kBounded ? horizon_ns : UINT64_MAX)) {
        break;
      }
      now_ = KeyTime(entry.key);
      id = entry.id;
    }
    // Retire before invoking: the event is no longer pending while it runs,
    // so cancelling its own id inside the callback is a harmless no-op and
    // the slot is immediately reusable by events it schedules (which is why
    // the closure moves out of the arena first).
    uint32_t slot = SlotOf(id);
    Slot& s = slots_[slot];
    EventClass cls = s.cls;
    EventFn fn = std::move(s.fn);
    RetireSlot(slot);
    fn.InvokeAndReset();
    ++n;
    ++executed_by_class_[static_cast<size_t>(cls)];
  }
  // Aggregated here, off the per-event path; events_executed() is a
  // between-runs probe, not something callbacks read mid-flight.
  executed_ += n;
  return n;
}

uint64_t Scheduler::Run(uint64_t limit) {
  return RunLoop</*kBounded=*/false>(limit, UINT64_MAX);
}

uint64_t Scheduler::RunUntil(SimTime t) {
  CHECK_GE(t, now_);
  uint64_t n =
      RunLoop</*kBounded=*/true>(UINT64_MAX, static_cast<uint64_t>(t.ns()));
  now_ = t;
  return n;
}

}  // namespace hacksim
