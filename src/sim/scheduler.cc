#include "src/sim/scheduler.h"

#include <utility>

#include "src/util/logging.h"

namespace hacksim {

EventId Scheduler::ScheduleAt(SimTime t, std::function<void()> fn) {
  CHECK_GE(t, now_) << "scheduling into the past";
  CHECK(fn != nullptr);
  EventId id = next_id_++;
  heap_.push(HeapEntry{t, next_seq_++, id});
  actions_.emplace(id, std::move(fn));
  return id;
}

EventId Scheduler::ScheduleIn(SimTime delay, std::function<void()> fn) {
  CHECK_GE(delay, SimTime::Zero());
  return ScheduleAt(now_ + delay, std::move(fn));
}

void Scheduler::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return;
  }
  auto it = actions_.find(id);
  if (it == actions_.end()) {
    return;  // already fired or never existed
  }
  actions_.erase(it);
  cancelled_.insert(id);
}

bool Scheduler::IsPending(EventId id) const {
  return actions_.find(id) != actions_.end();
}

bool Scheduler::PopNext(HeapEntry* out) {
  while (!heap_.empty()) {
    HeapEntry entry = heap_.top();
    heap_.pop();
    auto cancelled_it = cancelled_.find(entry.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    *out = entry;
    return true;
  }
  return false;
}

uint64_t Scheduler::Run(uint64_t limit) {
  uint64_t n = 0;
  HeapEntry entry;
  while (n < limit && PopNext(&entry)) {
    now_ = entry.time;
    auto it = actions_.find(entry.id);
    CHECK(it != actions_.end());
    std::function<void()> fn = std::move(it->second);
    actions_.erase(it);
    fn();
    ++n;
    ++executed_;
  }
  return n;
}

uint64_t Scheduler::RunUntil(SimTime t) {
  CHECK_GE(t, now_);
  uint64_t n = 0;
  HeapEntry entry;
  while (PopNext(&entry)) {
    if (entry.time > t) {
      // Not due yet: put it back (seq preserved so FIFO order is unchanged).
      heap_.push(entry);
      break;
    }
    now_ = entry.time;
    auto it = actions_.find(entry.id);
    CHECK(it != actions_.end());
    std::function<void()> fn = std::move(it->second);
    actions_.erase(it);
    fn();
    ++n;
    ++executed_;
  }
  now_ = t;
  return n;
}

}  // namespace hacksim
