#include "src/sim/sim_watchdog.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hacksim {

void SimWatchdog::Start() {
  if (config_.interval.IsZero()) {
    return;
  }
  CHECK(progress_probe_ && backlog_probe_ && nav_probe_)
      << "watchdog started without probes";
  Stop();
  last_progress_ = progress_probe_();
  stalled_checks_ = 0;
  Arm();
}

void SimWatchdog::Arm() {
  check_event_ = scheduler_->ScheduleIn(config_.interval, [this] {
    check_event_ = kInvalidEventId;
    Check();
    Arm();
  });
}

void SimWatchdog::Stop() {
  scheduler_->Cancel(check_event_);
  check_event_ = kInvalidEventId;
}

void SimWatchdog::Check() {
  ++stats_.checks;

  uint64_t progress = progress_probe_();
  bool backlog = backlog_probe_();
  if (backlog && progress == last_progress_) {
    if (++stalled_checks_ >= config_.stall_checks) {
      Trip("no forward progress with backlog present (stalled queue)");
      stalled_checks_ = 0;
    }
  } else {
    stalled_checks_ = 0;
  }
  last_progress_ = progress;

  SimTime nav = nav_probe_();
  if (nav > scheduler_->Now() + config_.max_nav_reservation) {
    Trip("NAV reservation leaked past the legal bound");
  }

  size_t pending = scheduler_->pending_events();
  stats_.max_pending_seen = std::max(stats_.max_pending_seen, pending);
  if (config_.max_pending_events != 0 &&
      pending > config_.max_pending_events) {
    Trip("scheduler arena leak: pending events exceed bound");
  }
}

void SimWatchdog::Trip(const std::string& what) {
  ++stats_.trips;
  if (config_.abort_on_trip) {
    CHECK(false) << "watchdog trip at t=" << scheduler_->Now() << ": " << what
                 << (repro_.empty() ? "" : " | repro: ") << repro_;
  } else {
    LOG(Warning) << "watchdog trip (non-fatal) at t=" << scheduler_->Now()
                 << ": " << what;
  }
}

}  // namespace hacksim
