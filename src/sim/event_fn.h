// EventFn: a move-only `void()` callable with small-buffer optimisation.
//
// The scheduler fires millions of closures per simulated second; almost all
// of them capture a `this` pointer plus a few words of state. std::function
// would heap-allocate many of those (libstdc++'s inline buffer is 16 bytes)
// and drags in copy semantics the scheduler never needs. EventFn stores any
// callable up to kInlineBytes inline and falls back to the heap only for
// oversized captures (e.g. a lambda holding a whole Packet).
//
// Hot-path design notes:
//  * Trivially-copyable callables (the overwhelmingly common case: `this`
//    plus scalars) relocate with a straight memcpy — no indirect call.
//    Heap-stored callables relocate by pointer copy, so they are trivially
//    relocatable too; only inline captures with non-trivial move ctors pay
//    an indirect relocation.
//  * InvokeAndReset() fuses the call and the destruction into a single
//    indirect dispatch — the scheduler's fire path touches one function
//    pointer per event.
//
// Unlike std::function, move-only callables are supported, so events can own
// their payloads (`[p = std::move(packet)]`) instead of copying them.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hacksim {

class EventFn {
 public:
  // Large enough for `this` + ~5 words of captured state — covers every
  // callback on the MAC/DCF/TCP hot paths.
  static constexpr size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    Construct(std::forward<F>(fn));
  }

  // Destroys the current callable (if any) and constructs `fn` in place —
  // no intermediate EventFn, so no extra relocation on the scheduling path.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<std::is_invocable_r_v<void, D&>>>
  void Emplace(F&& fn) {
    Reset();
    if constexpr (std::is_same_v<D, EventFn>) {
      MoveFrom(fn);
    } else {
      Construct(std::forward<F>(fn));
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  // Calls the callable and destroys it, leaving *this empty — one indirect
  // dispatch total. The callable is destroyed even if it throws.
  void InvokeAndReset() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(storage_);
  }

  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

  // True when the callable lives in the inline buffer (test/bench hook).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_stored; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Call the stored callable, then destroy it.
    void (*invoke_destroy)(void* storage);
    // Move-construct into `dst` from `src`, then destroy `src`. Null when a
    // plain memcpy of the storage buffer relocates correctly.
    void (*relocate)(void* dst, void* src);
    // Null when destruction is a no-op (trivially-destructible inline
    // callables — the overwhelmingly common case), so Reset() skips the
    // indirect call entirely.
    void (*destroy)(void* storage);
    bool inline_stored;
    // True when the callable fits in 16 bytes: relocation copies one
    // payload-sized block instead of the whole inline buffer.
    bool small_copy;
  };

  template <typename D>
  static D* Stored(void* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }
  template <typename D>
  static D* StoredHeap(void* storage) {
    return *std::launder(reinterpret_cast<D**>(storage));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*Stored<D>(s))(); },
      [](void* s) {
        D* fn = Stored<D>(s);
        struct Destroyer {  // destroy even on unwind
          D* fn;
          ~Destroyer() { fn->~D(); }
        } destroyer{fn};
        (*fn)();
      },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) {
              D* from = Stored<D>(src);
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* s) { Stored<D>(s)->~D(); },
      /*inline_stored=*/true,
      /*small_copy=*/sizeof(D) <= 16,
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (*StoredHeap<D>(s))(); },
      [](void* s) {
        D* fn = StoredHeap<D>(s);
        struct Deleter {
          D* fn;
          ~Deleter() { delete fn; }
        } deleter{fn};
        (*fn)();
      },
      nullptr,  // pointer payload: memcpy relocates
      [](void* s) { delete StoredHeap<D>(s); },
      /*inline_stored=*/false,
      /*small_copy=*/true,  // the payload is one pointer
  };

  template <typename F, typename D = std::decay_t<F>>
  void Construct(F&& fn) {
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate == nullptr) {
        if (ops_->small_copy) {
          std::memcpy(storage_, other.storage_, 16);
        } else {
          std::memcpy(storage_, other.storage_, kInlineBytes);
        }
      } else {
        ops_->relocate(storage_, other.storage_);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hacksim

#endif  // SRC_SIM_EVENT_FN_H_
