// Simulation time: a strong type over signed 64-bit nanoseconds.
//
// 802.11 timing constants are microsecond-scale (SIFS 16 us, slot 9 us) with
// sub-microsecond elements (400 ns short guard interval), so nanosecond
// resolution represents every quantity in the paper exactly while giving
// ~292 years of simulated range.
#ifndef SRC_SIM_SIM_TIME_H_
#define SRC_SIM_SIM_TIME_H_

#include <cstdint>
#include <ostream>

namespace hacksim {

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime Nanos(int64_t ns) { return SimTime(ns); }
  static constexpr SimTime Micros(int64_t us) { return SimTime(us * 1000); }
  static constexpr SimTime Millis(int64_t ms) {
    return SimTime(ms * 1'000'000);
  }
  static constexpr SimTime Seconds(int64_t s) {
    return SimTime(s * 1'000'000'000);
  }
  // Converts a floating-point duration in seconds, rounding to nearest ns.
  static constexpr SimTime FromSecondsF(double s) {
    return SimTime(static_cast<int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime FromMicrosF(double us) {
    return SimTime(static_cast<int64_t>(us * 1e3 + (us >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t ns() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMicrosF() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) / 1e6; }

  constexpr bool IsZero() const { return ns_ == 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  friend constexpr SimTime operator*(SimTime a, int64_t k) {
    return SimTime(a.ns_ * k);
  }
  friend constexpr SimTime operator*(int64_t k, SimTime a) { return a * k; }
  constexpr SimTime& operator+=(SimTime other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) {
    ns_ -= other.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.ns_ << "ns";
  }

 private:
  explicit constexpr SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

}  // namespace hacksim

#endif  // SRC_SIM_SIM_TIME_H_
