// Discrete-event scheduler: the heart of the simulator.
//
// Events are closures ordered by (time, insertion sequence); same-time events
// run in FIFO order, which keeps runs deterministic for a fixed seed.
// Cancellation is lazy: Cancel() marks the event id dead and the heap skips
// it on pop (O(log n) amortised, no heap surgery).
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/sim_time.h"

namespace hacksim {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `t` (must be >= Now()).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  // Schedules `fn` after `delay` (must be >= 0).
  EventId ScheduleIn(SimTime delay, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or invalid id is a
  // harmless no-op, so callers can keep stale handles safely.
  void Cancel(EventId id);

  bool IsPending(EventId id) const;

  // Runs until the event queue drains or `limit` events have fired.
  // Returns the number of events executed.
  uint64_t Run(uint64_t limit = UINT64_MAX);

  // Runs events with time <= t, then advances Now() to exactly t.
  uint64_t RunUntil(SimTime t);

  size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  uint64_t events_executed() const { return executed_; }

 private:
  struct HeapEntry {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    // std::priority_queue is a max-heap; invert for earliest-first.
    bool operator<(const HeapEntry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  // Pops the next live entry, or returns false if the queue is empty.
  bool PopNext(HeapEntry* out);

  SimTime now_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
  uint64_t executed_ = 0;
  std::priority_queue<HeapEntry> heap_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hacksim

#endif  // SRC_SIM_SCHEDULER_H_
