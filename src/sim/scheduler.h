// Discrete-event scheduler: the heart of the simulator.
//
// Events are closures ordered by (time, insertion sequence); same-time events
// run in FIFO order, which keeps runs deterministic for a fixed seed.
//
// Storage is a slot arena: every pending event occupies one slot in a
// contiguous free-listed vector, and an EventId packs (generation, slot
// index) into 64 bits. Cancel()/IsPending() are O(1) array probes — no hash
// tables anywhere. The slot's generation is bumped whenever the event fires
// or is cancelled, so stale handles (including ids whose slot has since been
// reused) mismatch and are harmless no-ops.
//
// The queue itself is two-tiered (see docs/perf.md):
//
//  * A hierarchical timing wheel (Varghese & Lauck) absorbs near-horizon
//    events: three levels of 256 buckets with a 1.024 us base tick cover
//    deltas up to ~17.2 s. Arming appends a 24-byte (time, seq, id) entry
//    to the bucket's contiguous array (O(1)); cancelling just retires the
//    arena slot — the stale entry is filtered out by its generation when
//    the bucket is eventually walked, so a cancelled wheel event never
//    touches the heap and never costs a list unlink. That is the common
//    fate of MAC response timeouts, DCF grants and TCP RTOs.
//  * A binary min-heap of 32-byte (key, id) entries carries far events
//    (beyond the wheel horizon). Wheel events that survive cascade down
//    level by level until their L0 bucket is due, at which point the bucket
//    drains into a sorted *ready run* consumed sequentially — surviving
//    wheel events never pay a heap push or pop at all. The ordering key
//    packs (time, seq) into one 128-bit unsigned compare; the dispatcher
//    always takes the smaller of (ready head, heap top), and every event
//    still in the wheel is provably later than both (its tick is >= the
//    cursor), so the global fire order is exactly the (time, insertion seq)
//    FIFO order a heap-only scheduler would produce, bit for bit.
//
// Heap and ready-run entries for cancelled events are dropped lazily at the
// head (the generation check in SettleNext), as before.
//
// Closures are scheduled by perfect forwarding straight into the slot's
// EventFn (see Emplace), so the common capture — `this` plus a few words —
// is placement-built in the arena with no intermediate copies and no heap
// allocation.
//
// Single-threaded *per instance*, like the rest of the simulator: one
// Scheduler lives inside one RunScenario call and is never shared across
// threads. The campaign engine (src/scenario/campaign.h) runs one
// independent instance per worker.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/sim_time.h"
#include "src/util/logging.h"

namespace hacksim {

// Packed (generation << 32 | slot). Generations start at 1, so a valid id is
// never 0 and kInvalidEventId never matches a live slot.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Coarse taxonomy for the per-class executed-event counters. bench_scale
// divides these by PPDU count so ev/PPDU regressions can be attributed to a
// subsystem without re-profiling (see docs/perf.md).
enum class EventClass : uint8_t {
  kOther = 0,       // scenario plumbing, tests, anything untagged
  kChannel,         // PPDU propagation edges, airtime ledger, tx-end
  kDcfTimer,        // DCF grant timers
  kNavTimer,        // NAV expiry (near-zero since lazy NAV)
  kMacTimer,        // response timeouts + SIFS response transmissions
  kTransportTimer,  // TCP RTO / delayed ACK, HACK timers, app pacing
};
inline constexpr size_t kEventClassCount = 6;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `t` (must be >= Now()).
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId ScheduleAt(SimTime t, F&& fn,
                     EventClass cls = EventClass::kOther) {
    CHECK_GE(t, now_) << "scheduling into the past";
    // Catch null function pointers / empty std::functions at the schedule
    // site, not at dispatch (lambdas are not bool-convertible and skip
    // this).
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
      CHECK(static_cast<bool>(fn)) << "scheduling a null callable";
    }
    uint32_t slot = AllocSlot();
    Slot& s = slots_[slot];
    // Emplace (not assuming-empty): a recycled slot may still hold a
    // cancelled event's closure, destroyed here, lazily.
    s.fn.Emplace(std::forward<F>(fn));
    s.cls = cls;
    s.key_seq = next_seq_++;
    EventId id = (static_cast<EventId>(s.generation) << 32) | slot;
    Arm(WheelEntry{static_cast<uint64_t>(t.ns()), id});
    return id;
  }

  // Schedules `fn` after `delay` (must be >= 0; a negative delay lands in
  // the past and trips ScheduleAt's check).
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId ScheduleIn(SimTime delay, F&& fn,
                     EventClass cls = EventClass::kOther) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn), cls);
  }

  // Cancels a pending event. Cancelling an already-fired or invalid id is a
  // harmless no-op, so callers can keep stale handles safely. O(1): only
  // the arena slot is touched — the generation bump strands whatever
  // wheel/heap/ready entry still carries the id, and the walk that reaches
  // it drops it. Inline: cancel-before-fire is the dominant fate of MAC/TCP
  // timers, making this as hot as ScheduleAt.
  void Cancel(EventId id) {
    if (!IsPending(id)) {
      return;  // already fired, cancelled, or never existed
    }
    // The closure is NOT destroyed here: destruction is deferred to the
    // slot's next Emplace (or scheduler teardown), so Cancel touches only
    // the slot's metadata line. Closure destructors therefore must not
    // have scheduling side effects — in this codebase they only release
    // memory (Packets, shared_ptrs).
    RetireSlot(SlotOf(id));
  }

  bool IsPending(EventId id) const {
    uint32_t slot = SlotOf(id);
    return slot < slot_count_ && slots_[slot].generation == GenerationOf(id);
  }

  // Runs until the event queue drains or `limit` events have fired.
  // Returns the number of events executed.
  uint64_t Run(uint64_t limit = UINT64_MAX);

  // Runs events with time <= t, then advances Now() to exactly t.
  uint64_t RunUntil(SimTime t);

  // Every event is eventually retired exactly once (fire or cancel), so the
  // pending count is a difference of two monotones — no per-event counter.
  size_t pending_events() const {
    return static_cast<size_t>(next_seq_ - retired_);
  }
  uint64_t events_executed() const { return executed_; }
  uint64_t executed_in_class(EventClass cls) const {
    return executed_by_class_[static_cast<size_t>(cls)];
  }

 private:
  static constexpr uint32_t kNilSlot = UINT32_MAX;

  // --- timing-wheel geometry -------------------------------------------------
  // Base tick 2^10 ns; 2^8 buckets per level; 3 levels. Level horizons (as
  // deltas from the wheel cursor): 262 us, 67 ms, 17.2 s. Further-out events
  // bypass the wheel and live in the heap from the start.
  static constexpr uint32_t kTickBits = 10;
  static constexpr uint32_t kBucketBits = 8;
  static constexpr uint32_t kBucketsPerLevel = 1u << kBucketBits;  // 256
  static constexpr uint32_t kBucketMask = kBucketsPerLevel - 1;
  static constexpr uint32_t kLevels = 3;
  static constexpr uint64_t kNoTick = UINT64_MAX;

  // Hot metadata first so cancel/fire touch the generation before the
  // (64-byte) EventFn; cache-line alignment keeps every slot on exactly two
  // lines. The insertion seq lives here (not in the wheel entry): the
  // drain walk loads this line for the generation check anyway, and it
  // keeps the per-bucket entries at 16 bytes.
  struct alignas(64) Slot {
    // Matches the generation packed into outstanding ids while the slot is
    // armed; already bumped past them while free. 0 only after wrap, which
    // permanently retires the slot (see RetireSlot).
    uint32_t generation = 1;
    uint32_t next_free = kNilSlot;
    uint64_t key_seq = 0;
    EventClass cls = EventClass::kOther;
    EventFn fn;
  };

  // One armed event in a wheel bucket. Buckets are plain arrays in arm
  // order; a cancelled event's entry simply goes stale (generation
  // mismatch) and is dropped when the bucket is walked.
  struct WheelEntry {
    uint64_t key_time;  // ns
    EventId id;
  };

  // 128-bit key: time in the high 64 bits, insertion seq in the low 64, so
  // (time, FIFO) ordering is a single unsigned compare. Times are never
  // negative (Now() starts at zero and only advances).
  using HeapKey = unsigned __int128;
  static HeapKey PackKey(uint64_t time_ns, uint64_t seq) {
    return (static_cast<HeapKey>(time_ns) << 64) | seq;
  }
  static SimTime KeyTime(HeapKey key) {
    return SimTime::Nanos(static_cast<int64_t>(key >> 64));
  }

  struct HeapEntry {
    HeapKey key;
    EventId id;
    bool operator<(const HeapEntry& other) const { return key < other.key; }
    bool operator>(const HeapEntry& other) const { return other < *this; }
  };

  static constexpr uint32_t SlotOf(EventId id) {
    return static_cast<uint32_t>(id);
  }
  static constexpr uint32_t GenerationOf(EventId id) {
    return static_cast<uint32_t>(id >> 32);
  }
  uint32_t AllocSlot() {
    if (free_head_ != kNilSlot) {
      uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    uint32_t slot = slot_count_;
    CHECK_LT(slot, kNilSlot) << "slot arena exhausted";
    slots_.emplace_back();
    ++slot_count_;
    return slot;
  }

  // Min-heap via inverted comparator (std::*_heap build max-heaps).
  void Push(HeapEntry entry) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  void PopTop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }

  // --- wheel internals -------------------------------------------------------
  // Force-inlined: with several ScheduleAt instantiations in one TU the
  // inliner otherwise outlines this chain, and an out-of-line call per
  // schedule measurably drags the cancel-heavy pattern.
#if defined(__GNUC__)
#define HACKSIM_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define HACKSIM_ALWAYS_INLINE inline
#endif
  HACKSIM_ALWAYS_INLINE void AppendToBucket(uint32_t level, uint32_t idx,
                                            WheelEntry entry) {
    uint32_t bucket = (level << kBucketBits) | idx;
    // Unconditional: cheaper than loading the bucket to test emptiness.
    occupancy_[level][idx >> 6] |= uint64_t{1} << (idx & 63);
    buckets_[bucket].push_back(entry);
    ++wheel_entries_;
  }

  // Places an armed entry into a wheel bucket or, when its delta exceeds
  // the wheel horizon (or its tick has already been drained), into the
  // heap. Inline: ScheduleAt is the hottest entry point in the simulator.
  HACKSIM_ALWAYS_INLINE void Arm(WheelEntry entry) {
    uint64_t tick0 = entry.key_time >> kTickBits;
    if (tick0 >= wheel_pos_) {
      // Level 0: per-tick buckets. delta < 256 guarantees alias-free
      // placement in the cyclic window [wheel_pos_, wheel_pos_ + 256).
      if (tick0 - wheel_pos_ < kBucketsPerLevel) {
        AppendToBucket(0, tick0 & kBucketMask, entry);
        wheel_next_hint_ = std::min(wheel_next_hint_, tick0);
        return;
      }
      ArmOuter(entry, tick0);
      return;
    }
    // Inside an already-drained tick: the heap carries it with its exact
    // key.
    Push(HeapEntry{PackKey(entry.key_time, slots_[SlotOf(entry.id)].key_seq),
                   entry.id});
  }
  // Levels 1/2 and the heap bypass — off the inline fast path.
  void ArmOuter(WheelEntry entry, uint64_t tick0);
  // Re-distributes every live event in a bucket one level down (or into
  // the heap) via Arm(); stale entries are dropped.
  void CascadeBucket(uint32_t level, uint32_t idx);
  // Moves every live event in an L0 bucket into the ready run (sorted);
  // returns the live count (stale entries are dropped).
  size_t DrainBucket(uint32_t idx);
  void GrowReady(size_t need);
  // Advances the wheel cursor, cascading and draining, until every wheel
  // event with L0 tick <= tick_limit sits in the ready run (or, with
  // stop_on_drain, until at least one event has been drained). Returns the
  // number of events drained.
  size_t AdvanceWheel(uint64_t tick_limit, bool stop_on_drain);
  // Distance in [0, 256) from bucket `start` to the next occupied bucket of
  // `level` (cyclic), or -1 when the level is empty.
  int NextOccupiedDistance(uint32_t level, uint32_t start) const;

  // Drops dead heap/ready heads and drains due wheel buckets until the
  // earliest pending event is identified, then removes and returns it in
  // `*out` (unless it is later than `horizon`, in which case it is left in
  // place and false is returned). False also when nothing is pending.
  bool TakeNext(HeapEntry* out, uint64_t horizon_ns);

  // Shared Run/RunUntil core; kBounded compiles the horizon test in.
  template <bool kBounded>
  uint64_t RunLoop(uint64_t limit, uint64_t horizon_ns);

  // Like IsPending, minus the bounds check: heap/ready entries always name
  // slots the arena has allocated.
  bool IsPendingKnownSlot(EventId id) const {
    return slots_[SlotOf(id)].generation == GenerationOf(id);
  }

  // Retires an armed slot: bumps the generation (invalidating outstanding
  // handles) and returns the slot to the free list. The caller disposes of
  // the EventFn (destroy in place on cancel, move out + invoke on fire).
  //
  // If the 32-bit generation wraps (2^32 retires of this one slot; the LIFO
  // free list does concentrate reuse on hot slots), the slot is retired
  // permanently instead of recycled: generation 0 matches no id ever issued
  // (ids pack generation >= 1), so the ABA alias a wrap could otherwise
  // create is impossible. The arena grows by one slot per ~4 billion
  // reuses — negligible leak, bought determinism.
  void RetireSlot(uint32_t slot) {
    Slot& s = slots_[slot];
    if (++s.generation != 0) {
      s.next_free = free_head_;
      free_head_ = slot;
    }
    ++retired_;
  }

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t retired_ = 0;
  std::array<uint64_t, kEventClassCount> executed_by_class_{};
  std::vector<HeapEntry> heap_;
  // Drained wheel events, globally sorted by key, consumed from ready_pos_.
  // Sortedness across drains holds because buckets drain in tick order and
  // every event still in the wheel has a strictly later tick. A raw buffer
  // rather than std::vector so the drain loop appends through a
  // register-held pointer (capacity is ensured once per drain from the
  // bucket size) instead of a per-entry end-pointer round trip.
  std::unique_ptr<HeapEntry[]> ready_;
  size_t ready_cap_ = 0;
  size_t ready_size_ = 0;
  size_t ready_pos_ = 0;
  std::vector<Slot> slots_;
  // Mirror of slots_.size(): one scalar load on the IsPending fast path
  // instead of the vector's begin/end arithmetic.
  uint32_t slot_count_ = 0;
  uint32_t free_head_ = kNilSlot;

  // Wheel cursor: index of the next L0 tick not yet drained. Events whose
  // tick precedes it go straight to the heap.
  uint64_t wheel_pos_ = 0;
  // Entries currently in wheel buckets, *including* stale (cancelled)
  // ones — a conservative emptiness test; walks reconcile it.
  size_t wheel_entries_ = 0;
  // Conservative lower bound (in L0 ticks) on the earliest wheel event;
  // lets TakeNext skip the occupancy scan when the candidate is sooner.
  uint64_t wheel_next_hint_ = kNoTick;
  // Bucket entry arrays, [level][index] flattened, in arm order; capacity
  // persists across drains, so steady state does no allocation.
  std::array<std::vector<WheelEntry>, kLevels * kBucketsPerLevel> buckets_;
  // One occupancy bit per non-empty bucket, four words per level.
  std::array<std::array<uint64_t, kBucketsPerLevel / 64>, kLevels>
      occupancy_{};
};

}  // namespace hacksim

#endif  // SRC_SIM_SCHEDULER_H_
