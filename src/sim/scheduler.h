// Discrete-event scheduler: the heart of the simulator.
//
// Events are closures ordered by (time, insertion sequence); same-time events
// run in FIFO order, which keeps runs deterministic for a fixed seed.
//
// Storage is a slot arena: every pending event occupies one slot in a
// contiguous free-listed vector, and an EventId packs (generation, slot
// index) into 64 bits. Cancel()/IsPending() are O(1) array probes — no hash
// tables anywhere. The slot's generation is bumped whenever the event fires
// or is cancelled, so stale handles (including ids whose slot has since been
// reused) mismatch and are harmless no-ops. Cancellation is lazy: a
// cancelled id stays in the heap until popped, where the generation check
// skips it.
//
// The priority queue is a binary min-heap of 32-byte (key, id) entries whose
// ordering key packs (time, seq) into one 128-bit unsigned compare — a
// single predictable branch per comparison, which matters because bursts of
// same-time events (SIFS responses, slot boundaries) would otherwise take
// the time-equal/seq-compare double branch on every sift step.
//
// Closures are scheduled by perfect forwarding straight into the slot's
// EventFn (see Emplace), so the common capture — `this` plus a few words —
// is placement-built in the arena with no intermediate copies and no heap
// allocation.
//
// Single-threaded by design, like the rest of the simulator.
#ifndef SRC_SIM_SCHEDULER_H_
#define SRC_SIM_SCHEDULER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/sim_time.h"
#include "src/util/logging.h"

namespace hacksim {

// Packed (generation << 32 | slot). Generations start at 1, so a valid id is
// never 0 and kInvalidEventId never matches a live slot.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` at absolute time `t` (must be >= Now()).
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId ScheduleAt(SimTime t, F&& fn) {
    CHECK_GE(t, now_) << "scheduling into the past";
    // Catch null function pointers / empty std::functions at the schedule
    // site, not at dispatch (lambdas are not bool-convertible and skip
    // this).
    if constexpr (std::is_constructible_v<bool, const std::decay_t<F>&>) {
      CHECK(static_cast<bool>(fn)) << "scheduling a null callable";
    }
    uint32_t slot = AllocSlot();
    slots_[slot].fn.Emplace(std::forward<F>(fn));
    EventId id =
        (static_cast<EventId>(slots_[slot].generation) << 32) | slot;
    Push(HeapEntry{PackKey(t, next_seq_++), id});
    ++live_;
    return id;
  }

  // Schedules `fn` after `delay` (must be >= 0).
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId ScheduleIn(SimTime delay, F&& fn) {
    CHECK_GE(delay, SimTime::Zero());
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Cancels a pending event. Cancelling an already-fired or invalid id is a
  // harmless no-op, so callers can keep stale handles safely.
  void Cancel(EventId id);

  bool IsPending(EventId id) const {
    uint32_t slot = SlotOf(id);
    return slot < slots_.size() && slots_[slot].generation == GenerationOf(id);
  }

  // Runs until the event queue drains or `limit` events have fired.
  // Returns the number of events executed.
  uint64_t Run(uint64_t limit = UINT64_MAX);

  // Runs events with time <= t, then advances Now() to exactly t.
  uint64_t RunUntil(SimTime t);

  size_t pending_events() const { return live_; }
  uint64_t events_executed() const { return executed_; }

 private:
  static constexpr uint32_t kNilSlot = UINT32_MAX;

  struct Slot {
    EventFn fn;
    // Matches the generation packed into outstanding ids while the slot is
    // armed; already bumped past them while free. 0 only after wrap, which
    // permanently retires the slot (see Retire).
    uint32_t generation = 1;
    uint32_t next_free = kNilSlot;
  };

  // 128-bit key: time in the high 64 bits, insertion seq in the low 64, so
  // (time, FIFO) ordering is a single unsigned compare. Times are never
  // negative (Now() starts at zero and only advances).
  using HeapKey = unsigned __int128;
  static HeapKey PackKey(SimTime t, uint64_t seq) {
    return (static_cast<HeapKey>(static_cast<uint64_t>(t.ns())) << 64) | seq;
  }
  static SimTime KeyTime(HeapKey key) {
    return SimTime::Nanos(static_cast<int64_t>(key >> 64));
  }

  struct HeapEntry {
    HeapKey key;
    EventId id;
    bool operator<(const HeapEntry& other) const { return key < other.key; }
    bool operator>(const HeapEntry& other) const { return other < *this; }
  };

  static constexpr uint32_t SlotOf(EventId id) {
    return static_cast<uint32_t>(id);
  }
  static constexpr uint32_t GenerationOf(EventId id) {
    return static_cast<uint32_t>(id >> 32);
  }

  uint32_t AllocSlot() {
    if (free_head_ != kNilSlot) {
      uint32_t slot = free_head_;
      free_head_ = slots_[slot].next_free;
      return slot;
    }
    uint32_t slot = static_cast<uint32_t>(slots_.size());
    CHECK_LT(slot, kNilSlot) << "slot arena exhausted";
    slots_.emplace_back();
    return slot;
  }

  // Min-heap via inverted comparator (std::*_heap build max-heaps).
  void Push(HeapEntry entry) {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  void PopTop() {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }

  // Drops dead heap entries until the top is live; false if heap empties.
  bool SettleTop() {
    while (!heap_.empty()) {
      if (IsPending(heap_.front().id)) {
        return true;
      }
      PopTop();  // cancelled: drop the dead entry
    }
    return false;
  }

  // Retires the armed slot behind `id`: bumps the generation (invalidating
  // outstanding handles) and returns the slot to the free list.
  EventFn Retire(EventId id);

  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t live_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNilSlot;
};

}  // namespace hacksim

#endif  // SRC_SIM_SCHEDULER_H_
