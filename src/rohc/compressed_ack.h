// Wire format for ROHC-compressed TCP ACKs carried in 802.11 LL ACKs.
//
// This is a reduced ROHC TCP/IP profile in the spirit the paper describes
// (§3.3.2): no IR packets (contexts bootstrap by snooping vanilla ACKs), no
// feedback channel (reliability comes from HACK's retention protocol), CIDs
// derived from MD5 over the 5-tuple, and a master sequence number (MSN) for
// duplicate elimination. We use a uniform 8-bit MSN — the paper uses 4 bits
// with an 8-bit extension for the first record in a Block ACK; ours is one
// byte larger in the common case and strictly more robust.
//
// Record layout (little-endian multi-byte deltas):
//
//   byte 0  CID
//   byte 1  ctrl: [refresh:1][ack_mode:2][ts:1][win:1][crc3:3]
//   byte 2  MSN
//
//   refresh=0 (delta record):
//     ack_mode 0: ack += context.stride        (no bytes — 3-byte record,
//                                               the paper's "3 bytes if the
//                                               flow's payload is constant")
//     ack_mode 1: ack += u8                    (+1 byte; 0 encodes a dupack)
//     ack_mode 2: ack += u16                   (+2 bytes)
//     ack_mode 3: ack  = u32 absolute          (+4 bytes)
//     ts=1:  tsval += u8, tsecr += u8          (+2 bytes)
//     win=1: window = u16 absolute             (+2 bytes)
//     SACK blocks are not representable in delta records; ACKs carrying
//     SACK are sent as refresh records.
//
//   refresh=1 (absolute record; used for context (re)initialisation after
//   vanilla fallback, timestamp jumps > 255 ms, or SACK):
//     flags u8: [has_ts:1][sack_count:3][rsv:4]
//     seq u32, ack u32, window u16
//     if has_ts: tsval u32, tsecr u32
//     sack blocks: (start u32, end u32) * sack_count
//
// CRC3 (RFC 5795 polynomial) covers the *reconstructed* values
// (seq, ack, tsval, tsecr, window, msn) — it detects context desync rather
// than bit errors (the 802.11 FCS covers those).
//
// Payload envelope on an LL ACK: one count byte, then `count` records.
#ifndef SRC_ROHC_COMPRESSED_ACK_H_
#define SRC_ROHC_COMPRESSED_ACK_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/net/tcp_header.h"
#include "src/util/bitio.h"

namespace hacksim {

inline constexpr size_t kMaxSackBlocksInRefresh = 7;

// Decoded view of one record (pre-reconstruction).
struct CompressedAckRecord {
  uint8_t cid = 0;
  uint8_t msn = 0;
  uint8_t crc3 = 0;
  bool refresh = false;

  // Delta records.
  uint8_t ack_mode = 0;
  uint32_t ack_delta = 0;    // modes 1/2; mode 3 stores absolute in ack_abs
  uint32_t ack_abs = 0;      // mode 3
  bool has_ts_delta = false;
  uint8_t tsval_delta = 0;
  uint8_t tsecr_delta = 0;
  bool has_window = false;
  uint16_t window = 0;

  // Refresh records.
  bool refresh_has_ts = false;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint32_t tsval = 0;
  uint32_t tsecr = 0;
  SackList sack_blocks;

  void Serialize(ByteWriter& writer) const;
  static std::optional<CompressedAckRecord> Deserialize(ByteReader& reader);
};

// CRC3 over the reconstructed dynamic fields; shared by both endpoints.
uint8_t ComputeAckCrc3(uint32_t seq, uint32_t ack, uint32_t tsval,
                       uint32_t tsecr, uint16_t window, uint8_t msn);

// Envelope helpers.
std::vector<uint8_t> BuildHackPayload(
    std::span<const std::vector<uint8_t>> records);
// Splits a payload back into raw record byte-vectors; nullopt on malformed
// input.
std::optional<std::vector<std::vector<uint8_t>>> SplitHackPayload(
    std::span<const uint8_t> payload);

}  // namespace hacksim

#endif  // SRC_ROHC_COMPRESSED_ACK_H_
