// ROHC-style compressor / decompressor for pure TCP ACKs.
//
// Context lifecycle (paper §3.3.2's three simplifications):
//  1. No IR packets: the decompressor (at the AP) bootstraps a context by
//     snooping vanilla TCP ACKs it forwards; the compressor (client driver)
//     only compresses once at least one vanilla ACK for the flow has been
//     link-layer-acknowledged.
//  2. CIDs are computed independently on both sides: low byte of MD5 over
//     the flow 5-tuple. A CID collision simply disables compression for the
//     younger flow (it stays on vanilla ACKs). That guard only sees one
//     compressor's flows, so CIDs are unique per *channel*, never globally:
//     the AP keys decompressors per sending peer MAC (hack_agent.h) so two
//     clients picking the same CID cannot cross-apply deltas.
//  3. No ROHC feedback: reliability is HACK's retention protocol; the MSN
//     dedup window (half the 8-bit space) discards retransmitted records.
//
// Lockstep invariant: HACK guarantees records are applied in MSN order with
// no gaps (retention until implicit confirmation; a vanilla fallback forces
// the next record to be an absolute refresh), so compressor and decompressor
// contexts evolve identically; the CRC-3 check verifies this and any
// mismatch staleness-poisons the context until the next refresh/vanilla ACK.
#ifndef SRC_ROHC_ROHC_H_
#define SRC_ROHC_ROHC_H_

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "src/packet/packet.h"
#include "src/rohc/compressed_ack.h"

namespace hacksim {

struct RohcContextState {
  FiveTuple flow;       // ACK direction (src = TCP receiver)
  uint32_t seq = 0;     // receiver's sequence (static for pure ACKs)
  uint32_t ack = 0;
  uint32_t tsval = 0;
  uint32_t tsecr = 0;
  uint16_t window = 0;
  uint32_t stride = 0;  // learned ack increment
  bool has_timestamps = false;
  // IP ToS of the flow's ACKs, restored on reconstruction so the forwarded
  // copy keeps its DSCP marking under EDCA. Static per flow and outside the
  // CRC-3 coverage (seq/ack/tsval/tsecr/window/msn), so this is pure
  // reconstruction fidelity — it cannot introduce crc_failures.
  uint8_t tos = 0;
};

class RohcCompressor {
 public:
  struct Result {
    std::vector<uint8_t> bytes;  // empty = cannot compress (fall back)
    uint8_t msn = 0;
    bool was_refresh = false;
  };

  // Compresses a pure TCP ACK. Creates the flow context on first use.
  // Returns an empty Result.bytes on CID collision (caller sends vanilla).
  Result Compress(const Packet& ack_packet);

  // Must be called whenever the delta chain for a flow is interrupted —
  // an ACK was sent vanilla, or staged/retained compressed ACKs were
  // discarded without delivery confirmation. The next compressed record for
  // the flow will be an absolute refresh.
  void ForceRefresh(const FiveTuple& flow);

  uint64_t refreshes_sent() const { return refreshes_sent_; }
  uint64_t cid_collisions() const { return cid_collisions_; }

 private:
  struct CompressorContext {
    RohcContextState state;
    uint8_t cid = 0;  // derived once at context creation (MD5 over 5-tuple)
    uint8_t next_msn = 0;
    bool needs_refresh = true;  // fresh contexts always refresh first
  };

  std::unordered_map<FiveTuple, CompressorContext, FiveTupleHash> flows_;
  std::array<std::optional<FiveTuple>, 256> cid_owner_;
  uint64_t refreshes_sent_ = 0;
  uint64_t cid_collisions_ = 0;
};

class RohcDecompressor {
 public:
  enum class Status {
    kOk,
    kDuplicate,    // MSN already applied (retained re-send): discard quietly
    kNoContext,    // unknown CID
    kStale,        // context poisoned by an earlier CRC failure
    kCrcFailure,   // reconstruction mismatch: poison context
    kMalformed,
  };

  struct Result {
    Status status = Status::kMalformed;
    std::optional<Packet> packet;
  };

  // Learns or refreshes a context from a vanilla TCP ACK the AP forwards.
  void NoteVanillaAck(const Packet& ack_packet);

  // Decompresses one record.
  Result Decompress(const CompressedAckRecord& record);

  uint64_t duplicates() const { return duplicates_; }
  uint64_t crc_failures() const { return crc_failures_; }
  uint64_t stale_drops() const { return stale_drops_; }

 private:
  struct DecompressorContext {
    RohcContextState state;
    uint8_t last_msn = 0;
    bool has_msn = false;
    bool stale = false;
  };

  Packet Reconstruct(const DecompressorContext& ctx) const;

  std::array<std::optional<DecompressorContext>, 256> contexts_;
  // flow -> CID memo so NoteVanillaAck does one MD5 per flow, not per ACK
  // (every forwarded vanilla TCP ACK lands there; under the opportunistic
  // variant that is *all* of them).
  std::unordered_map<FiveTuple, uint8_t, FiveTupleHash> flow_cids_;
  uint64_t duplicates_ = 0;
  uint64_t crc_failures_ = 0;
  uint64_t stale_drops_ = 0;
};

}  // namespace hacksim

#endif  // SRC_ROHC_ROHC_H_
