#include "src/rohc/rohc.h"

#include "src/tcp/tcp_common.h"
#include "src/util/logging.h"

namespace hacksim {
namespace {

// Applies an ACK's dynamic fields to a context (used on both sides to keep
// them in lockstep).
void LoadFromPacket(RohcContextState* state, const Packet& packet) {
  const TcpHeader& tcp = packet.tcp();
  state->seq = tcp.seq;
  state->ack = tcp.ack;
  state->window = tcp.window;
  state->tos = packet.ip().tos;
  state->has_timestamps = tcp.timestamps.has_value();
  if (tcp.timestamps.has_value()) {
    state->tsval = tcp.timestamps->tsval;
    state->tsecr = tcp.timestamps->tsecr;
  }
}

}  // namespace

RohcCompressor::Result RohcCompressor::Compress(const Packet& ack_packet) {
  CHECK(ack_packet.IsPureTcpAck());
  const TcpHeader& tcp = ack_packet.tcp();
  FiveTuple flow = ack_packet.Flow();

  // Context lookup first: flows in steady state never touch MD5 — the CID
  // is derived once at context creation and cached in the context.
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    uint8_t cid = flow.RohcCid();
    if (cid_owner_[cid].has_value() && *cid_owner_[cid] != flow) {
      ++cid_collisions_;
      return Result{};  // younger flow loses: vanilla only
    }
    cid_owner_[cid] = flow;
    CompressorContext ctx;
    ctx.state.flow = flow;
    ctx.cid = cid;
    it = flows_.emplace(flow, std::move(ctx)).first;
  }
  CompressorContext& ctx = it->second;
  RohcContextState& st = ctx.state;

  CompressedAckRecord rec;
  rec.cid = ctx.cid;
  rec.msn = ctx.next_msn++;

  bool need_refresh = ctx.needs_refresh;
  // Conditions a delta record cannot express:
  if (!tcp.sack_blocks.empty() || tcp.seq != st.seq ||
      tcp.timestamps.has_value() != st.has_timestamps) {
    need_refresh = true;
  }
  uint32_t ack_delta = tcp.ack - st.ack;
  if (ack_delta > 0xFFFF && ack_delta != 0) {
    // Permitted via mode-3 absolute, but a stride this wild usually follows
    // a resync; absolute mode handles it without a full refresh.
  }
  uint32_t tsval_delta = 0;
  uint32_t tsecr_delta = 0;
  if (tcp.timestamps.has_value() && st.has_timestamps) {
    tsval_delta = tcp.timestamps->tsval - st.tsval;
    tsecr_delta = tcp.timestamps->tsecr - st.tsecr;
    if (tsval_delta > 0xFF || tsecr_delta > 0xFF) {
      need_refresh = true;
    }
  }

  if (need_refresh) {
    if (tcp.sack_blocks.size() > kMaxSackBlocksInRefresh) {
      return Result{};  // cannot express: vanilla
    }
    rec.refresh = true;
    rec.seq = tcp.seq;
    rec.ack = tcp.ack;
    rec.window = tcp.window;
    rec.refresh_has_ts = tcp.timestamps.has_value();
    if (tcp.timestamps.has_value()) {
      rec.tsval = tcp.timestamps->tsval;
      rec.tsecr = tcp.timestamps->tsecr;
    }
    rec.sack_blocks = tcp.sack_blocks;
    ++refreshes_sent_;
  } else {
    if (ack_delta == 0) {
      rec.ack_mode = 1;  // dupack: explicit zero delta
      rec.ack_delta = 0;
    } else if (st.stride != 0 && ack_delta == st.stride) {
      rec.ack_mode = 0;
    } else if (ack_delta <= 0xFF) {
      rec.ack_mode = 1;
      rec.ack_delta = ack_delta;
    } else if (ack_delta <= 0xFFFF) {
      rec.ack_mode = 2;
      rec.ack_delta = ack_delta;
    } else {
      rec.ack_mode = 3;
      rec.ack_abs = tcp.ack;
    }
    if (tsval_delta != 0 || tsecr_delta != 0) {
      rec.has_ts_delta = true;
      rec.tsval_delta = static_cast<uint8_t>(tsval_delta);
      rec.tsecr_delta = static_cast<uint8_t>(tsecr_delta);
    }
    if (tcp.window != st.window) {
      rec.has_window = true;
      rec.window = tcp.window;
    }
  }

  // Advance the compressor context exactly as the decompressor will.
  if (!rec.refresh && ack_delta != 0) {
    st.stride = ack_delta;
  }
  if (rec.refresh) {
    st.stride = 0;
  }
  LoadFromPacket(&st, ack_packet);
  ctx.needs_refresh = false;

  rec.crc3 = ComputeAckCrc3(st.seq, st.ack, st.tsval, st.tsecr, st.window,
                            rec.msn);
  ByteWriter writer;
  rec.Serialize(writer);
  Result result;
  result.bytes = std::move(writer).Take();
  result.msn = rec.msn;
  result.was_refresh = rec.refresh;
  return result;
}

void RohcCompressor::ForceRefresh(const FiveTuple& flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    return;
  }
  it->second.needs_refresh = true;
}

void RohcDecompressor::NoteVanillaAck(const Packet& ack_packet) {
  if (!ack_packet.IsPureTcpAck()) {
    return;
  }
  FiveTuple flow = ack_packet.Flow();
  auto [cid_it, fresh_flow] = flow_cids_.try_emplace(flow, 0);
  if (fresh_flow) {
    cid_it->second = flow.RohcCid();  // one MD5 per flow, memoised after
  }
  uint8_t cid = cid_it->second;
  auto& slot = contexts_[cid];
  if (slot.has_value() && slot->state.flow != flow) {
    return;  // CID collision: first flow keeps the slot
  }
  if (!slot.has_value()) {
    DecompressorContext ctx;
    ctx.state.flow = flow;
    slot = std::move(ctx);
  } else if (!slot->stale) {
    // Forward-only re-anchoring: vanilla ACKs can arrive *behind* newer
    // compressed records (they queue through DCF while compressed records
    // ride the SIFS response). Rewinding the context — by ACK number *or*
    // by timestamp for an equal-ACK dupack — would desync the delta chain.
    // Stale contexts accept any vanilla ACK: that is their recovery path.
    const TcpHeader& tcp = ack_packet.tcp();
    const RohcContextState& st = slot->state;
    if (Seq32Lt(tcp.ack, st.ack)) {
      return;
    }
    if (tcp.ack == st.ack && tcp.timestamps.has_value() &&
        st.has_timestamps) {
      uint32_t tsval = tcp.timestamps->tsval;
      uint32_t tsecr = tcp.timestamps->tsecr;
      if (Seq32Lt(tsval, st.tsval) ||
          (tsval == st.tsval && Seq32Lt(tsecr, st.tsecr))) {
        return;
      }
    }
  }
  LoadFromPacket(&slot->state, ack_packet);
  slot->state.stride = 0;
  slot->stale = false;
  // The vanilla ACK re-anchors the context absolutely; drop the MSN anchor
  // so the next (refresh) record is accepted whatever its MSN. HACK
  // guarantees any retained records for this flow were discarded before the
  // vanilla fallback, so no stale record can slip in.
  slot->has_msn = false;
}

Packet RohcDecompressor::Reconstruct(const DecompressorContext& ctx) const {
  const RohcContextState& st = ctx.state;
  TcpHeader tcp;
  tcp.src_port = st.flow.src_port;
  tcp.dst_port = st.flow.dst_port;
  tcp.seq = st.seq;
  tcp.ack = st.ack;
  tcp.flag_ack = true;
  tcp.window = st.window;
  if (st.has_timestamps) {
    tcp.timestamps = TcpTimestamps{st.tsval, st.tsecr};
  }
  Packet p = Packet::MakeTcp(st.flow.src_ip, st.flow.dst_ip, tcp, 0);
  p.mutable_ip().tos = st.tos;
  return p;
}

RohcDecompressor::Result RohcDecompressor::Decompress(
    const CompressedAckRecord& rec) {
  Result result;
  auto& slot = contexts_[rec.cid];
  if (!slot.has_value()) {
    result.status = Status::kNoContext;
    return result;
  }
  DecompressorContext& ctx = *slot;

  // MSN duplicate window: a record whose MSN does not move forward (within
  // half the 8-bit space) is a retained re-send the AP already applied.
  if (ctx.has_msn) {
    uint8_t distance = static_cast<uint8_t>(rec.msn - ctx.last_msn);
    if (distance == 0 || distance >= 128) {
      ++duplicates_;
      result.status = Status::kDuplicate;
      return result;
    }
  }

  if (ctx.stale && !rec.refresh) {
    ++stale_drops_;
    result.status = Status::kStale;
    return result;
  }

  RohcContextState st = ctx.state;  // apply to a copy, commit after CRC
  if (rec.refresh) {
    st.seq = rec.seq;
    st.ack = rec.ack;
    st.window = rec.window;
    st.has_timestamps = rec.refresh_has_ts;
    st.tsval = rec.tsval;
    st.tsecr = rec.tsecr;
    st.stride = 0;
  } else {
    uint32_t delta = 0;
    switch (rec.ack_mode) {
      case 0:
        delta = st.stride;
        break;
      case 1:
      case 2:
        delta = rec.ack_delta;
        break;
      case 3:
        delta = rec.ack_abs - st.ack;
        break;
    }
    st.ack += delta;
    if (delta != 0) {
      st.stride = delta;
    }
    if (rec.has_ts_delta) {
      st.tsval += rec.tsval_delta;
      st.tsecr += rec.tsecr_delta;
    }
    if (rec.has_window) {
      st.window = rec.window;
    }
  }

  uint8_t crc = ComputeAckCrc3(st.seq, st.ack, st.tsval, st.tsecr, st.window,
                               rec.msn);
  if (crc != rec.crc3) {
    ++crc_failures_;
    ctx.stale = true;
    result.status = Status::kCrcFailure;
    return result;
  }

  ctx.state = st;
  ctx.last_msn = rec.msn;
  ctx.has_msn = true;
  ctx.stale = false;

  result.status = Status::kOk;
  Packet packet = Reconstruct(ctx);
  if (rec.refresh && !rec.sack_blocks.empty()) {
    packet.mutable_tcp().sack_blocks = rec.sack_blocks;
    // SACK options change the header length; rebuild the IP total length.
    packet.mutable_ip().total_length = static_cast<uint16_t>(
        Ipv4Header::kBytes + packet.tcp().HeaderBytes());
  }
  result.packet = std::move(packet);
  return result;
}

}  // namespace hacksim
