#include "src/rohc/compressed_ack.h"

#include "src/util/crc.h"
#include "src/util/logging.h"

namespace hacksim {

void CompressedAckRecord::Serialize(ByteWriter& writer) const {
  writer.WriteU8(cid);
  uint8_t ctrl = 0;
  if (refresh) {
    ctrl |= 0x80;
  }
  ctrl |= static_cast<uint8_t>((ack_mode & 0x3) << 5);
  if (has_ts_delta) {
    ctrl |= 0x10;
  }
  if (has_window) {
    ctrl |= 0x08;
  }
  ctrl |= crc3 & 0x7;
  writer.WriteU8(ctrl);
  writer.WriteU8(msn);

  if (refresh) {
    CHECK_LE(sack_blocks.size(), kMaxSackBlocksInRefresh);
    uint8_t flags = static_cast<uint8_t>(
        (refresh_has_ts ? 0x80 : 0) | ((sack_blocks.size() & 0x7) << 4));
    writer.WriteU8(flags);
    writer.WriteU32Le(seq);
    writer.WriteU32Le(ack);
    writer.WriteU16Le(window);
    if (refresh_has_ts) {
      writer.WriteU32Le(tsval);
      writer.WriteU32Le(tsecr);
    }
    for (const SackBlock& block : sack_blocks) {
      writer.WriteU32Le(block.start);
      writer.WriteU32Le(block.end);
    }
    return;
  }

  switch (ack_mode) {
    case 0:
      break;
    case 1:
      writer.WriteU8(static_cast<uint8_t>(ack_delta));
      break;
    case 2:
      writer.WriteU16Le(static_cast<uint16_t>(ack_delta));
      break;
    case 3:
      writer.WriteU32Le(ack_abs);
      break;
  }
  if (has_ts_delta) {
    writer.WriteU8(tsval_delta);
    writer.WriteU8(tsecr_delta);
  }
  if (has_window) {
    writer.WriteU16Le(window);
  }
}

std::optional<CompressedAckRecord> CompressedAckRecord::Deserialize(
    ByteReader& reader) {
  CompressedAckRecord rec;
  auto cid = reader.ReadU8();
  auto ctrl = reader.ReadU8();
  auto msn = reader.ReadU8();
  if (!msn) {
    return std::nullopt;
  }
  rec.cid = *cid;
  rec.msn = *msn;
  rec.refresh = (*ctrl & 0x80) != 0;
  rec.ack_mode = (*ctrl >> 5) & 0x3;
  rec.has_ts_delta = (*ctrl & 0x10) != 0;
  rec.has_window = (*ctrl & 0x08) != 0;
  rec.crc3 = *ctrl & 0x7;

  if (rec.refresh) {
    auto flags = reader.ReadU8();
    if (!flags) {
      return std::nullopt;
    }
    rec.refresh_has_ts = (*flags & 0x80) != 0;
    size_t sack_count = (*flags >> 4) & 0x7;
    auto seq = reader.ReadU32Le();
    auto ack = reader.ReadU32Le();
    auto window = reader.ReadU16Le();
    if (!window) {
      return std::nullopt;
    }
    rec.seq = *seq;
    rec.ack = *ack;
    rec.window = *window;
    if (rec.refresh_has_ts) {
      auto tsval = reader.ReadU32Le();
      auto tsecr = reader.ReadU32Le();
      if (!tsecr) {
        return std::nullopt;
      }
      rec.tsval = *tsval;
      rec.tsecr = *tsecr;
    }
    for (size_t i = 0; i < sack_count; ++i) {
      auto start = reader.ReadU32Le();
      auto end = reader.ReadU32Le();
      if (!end) {
        return std::nullopt;
      }
      rec.sack_blocks.push_back(SackBlock{*start, *end});
    }
    return rec;
  }

  switch (rec.ack_mode) {
    case 0:
      break;
    case 1: {
      auto d = reader.ReadU8();
      if (!d) {
        return std::nullopt;
      }
      rec.ack_delta = *d;
      break;
    }
    case 2: {
      auto d = reader.ReadU16Le();
      if (!d) {
        return std::nullopt;
      }
      rec.ack_delta = *d;
      break;
    }
    case 3: {
      auto v = reader.ReadU32Le();
      if (!v) {
        return std::nullopt;
      }
      rec.ack_abs = *v;
      break;
    }
  }
  if (rec.has_ts_delta) {
    auto tsval_delta = reader.ReadU8();
    auto tsecr_delta = reader.ReadU8();
    if (!tsecr_delta) {
      return std::nullopt;
    }
    rec.tsval_delta = *tsval_delta;
    rec.tsecr_delta = *tsecr_delta;
  }
  if (rec.has_window) {
    auto window = reader.ReadU16Le();
    if (!window) {
      return std::nullopt;
    }
    rec.window = *window;
  }
  return rec;
}

uint8_t ComputeAckCrc3(uint32_t seq, uint32_t ack, uint32_t tsval,
                       uint32_t tsecr, uint16_t window, uint8_t msn) {
  uint8_t buf[19];
  auto put32 = [&buf](size_t at, uint32_t v) {
    buf[at] = static_cast<uint8_t>(v);
    buf[at + 1] = static_cast<uint8_t>(v >> 8);
    buf[at + 2] = static_cast<uint8_t>(v >> 16);
    buf[at + 3] = static_cast<uint8_t>(v >> 24);
  };
  put32(0, seq);
  put32(4, ack);
  put32(8, tsval);
  put32(12, tsecr);
  buf[16] = static_cast<uint8_t>(window);
  buf[17] = static_cast<uint8_t>(window >> 8);
  buf[18] = msn;
  return Crc3Rohc(buf);
}

std::vector<uint8_t> BuildHackPayload(
    std::span<const std::vector<uint8_t>> records) {
  CHECK_LE(records.size(), 255u);
  std::vector<uint8_t> out;
  size_t total = 1;
  for (const auto& r : records) {
    total += r.size();
  }
  out.reserve(total);
  out.push_back(static_cast<uint8_t>(records.size()));
  for (const auto& r : records) {
    out.insert(out.end(), r.begin(), r.end());
  }
  return out;
}

std::optional<std::vector<std::vector<uint8_t>>> SplitHackPayload(
    std::span<const uint8_t> payload) {
  if (payload.empty()) {
    return std::nullopt;
  }
  size_t count = payload[0];
  ByteReader reader(payload.subspan(1));
  std::vector<std::vector<uint8_t>> records;
  records.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t start = reader.position();
    auto rec = CompressedAckRecord::Deserialize(reader);
    if (!rec) {
      return std::nullopt;
    }
    size_t len = reader.position() - start;
    const uint8_t* base = payload.data() + 1 + start;
    records.emplace_back(base, base + len);
  }
  return records;
}

}  // namespace hacksim
