// The MAC <-> HACK interface: the handful of touch points the paper's NIC
// design needs (§3.3.1). The MAC treats HACK payload bytes as opaque — per
// the paper's "simplicity of NIC modifications" goal, all TCP awareness
// lives behind this interface in the driver model (src/hack).
#ifndef SRC_MAC80211_HACK_HOOKS_H_
#define SRC_MAC80211_HACK_HOOKS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/net/address.h"

namespace hacksim {

class HackHooks {
 public:
  virtual ~HackHooks() = default;

  // Receiver role (client downloading): a data PPDU from `from` arrived and
  // an LL ACK / Block ACK response is about to be scheduled.
  //  * aggregated     — A-MPDU (Block ACK response) vs single MPDU (ACK).
  //  * has_new_mpdu   — batch contained at least one not-seen-before MPDU;
  //                     for single MPDUs this is the "greater sequence
  //                     number" implicit-confirmation signal (Fig 5(b)).
  //  * more_data      — 802.11 MORE DATA bit from the batch header (§3.2).
  //  * sync           — HACK SYNC bit (§3.4, Fig 8).
  virtual void OnDataPpdu(MacAddress from, bool aggregated, bool has_new_mpdu,
                          bool more_data, bool sync) = 0;

  // Receiver role: compressed TCP ACK bytes to append to the LL ACK / Block
  // ACK being sent to `to`. Empty means "nothing staged / not ready" (the
  // DMA-race of Figs 3-4 surfaces here).
  virtual std::vector<uint8_t> BuildAckPayload(MacAddress to) = 0;

  // Sender role (AP): an LL ACK / Block ACK from `from` carried a HACK
  // payload: decompress and forward the TCP ACKs upstream.
  virtual void OnAckPayload(MacAddress from, std::span<const uint8_t> payload) = 0;
};

}  // namespace hacksim

#endif  // SRC_MAC80211_HACK_HOOKS_H_
