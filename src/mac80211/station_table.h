// Dense station addressing for the MAC hot path.
//
// StationTable interns MacAddress -> StationId (small, dense, assigned in
// first-contact order), so per-station MAC state can live in flat vectors
// instead of std::map<MacAddress, ...>. In the paper's cells a handful of
// stations made map lookups invisible; at the ROADMAP's dense-cell scale
// (1000+ stations) the log-n probes and the O(n) round-robin scan in
// WifiMac::PickNextDest dominated — both are O(1) against this table.
//
// ActiveSlotRing is the companion scheduler structure: a cyclic cursor over
// "service slots" (assigned in first-enqueue order, exactly the legacy
// round_robin_ vector positions) backed by a two-level bitmap, so "first
// station with pending work at/after the cursor" is a couple of word scans
// instead of a linear walk. Pick semantics are bit-for-bit the legacy scan:
// same slot chosen, same cursor advance, which is what keeps same-seed runs
// identical across the refactor.
#ifndef SRC_MAC80211_STATION_TABLE_H_
#define SRC_MAC80211_STATION_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/net/address.h"
#include "src/phy80211/wifi_mode.h"
#include "src/stats/mac_stats.h"

namespace hacksim {

using StationId = uint32_t;
inline constexpr StationId kInvalidStationId = 0xFFFFFFFFu;

class StationTable {
 public:
  // Returns the station's id, interning the address on first contact.
  // Ids are dense: 0, 1, 2, ... in interning order; a Disassociate'd id is
  // recycled (LIFO) by the next new-address Intern, so the dense-vector
  // footprint tracks the *live* membership under churn, not its history.
  StationId Intern(MacAddress address);

  // Lookup without interning; kInvalidStationId if never seen.
  StationId Find(MacAddress address) const;

  // Removes the address and recycles its id. The caller owns resetting any
  // per-id flat state (TxState, seq rings, service slot) before the id is
  // handed out again. Address must be present.
  void Disassociate(MacAddress address);

  MacAddress AddressOf(StationId id) const { return addresses_[id]; }
  // High-water id count, including recycled-but-reusable slots — the right
  // size for per-id flat vectors.
  size_t size() const { return addresses_.size(); }
  // Currently-associated station count (size() minus the free list).
  size_t live_count() const { return index_.size(); }

 private:
  std::unordered_map<uint64_t, StationId> index_;
  std::vector<MacAddress> addresses_;
  std::vector<StationId> free_ids_;  // LIFO recycle stack
};

// Cyclic "who gets served next" ring over dense slots with O(1) expected
// pick. Slots are appended once (AddSlot) and toggled active/inactive as the
// station gains/loses pending work. PickNext returns the first active slot
// at or after the cursor in cyclic slot order and advances the cursor past
// it — the exact semantics of scanning a vector round-robin and skipping
// idle entries, minus the scan.
class ActiveSlotRing {
 public:
  // Returns an inactive slot: a recycled one if any was released, else a
  // freshly appended index.
  size_t AddSlot();

  // Returns a slot to the recycle pool; it must already be inactive. The
  // ring's size() is unchanged (released slots simply never test active
  // until re-added), so cursor arithmetic stays stable under churn.
  void ReleaseSlot(size_t slot);

  void Set(size_t slot, bool active);
  bool Test(size_t slot) const {
    return (words_[slot >> 6] >> (slot & 63)) & 1;
  }

  bool Empty() const { return active_ == 0; }
  size_t active_count() const { return active_; }
  size_t size() const { return size_; }
  size_t cursor() const { return cursor_; }

  // Picks the next active slot in cyclic order from the cursor; false when
  // no slot is active (cursor untouched, matching the legacy failed scan).
  bool PickNext(size_t* slot_out);

 private:
  // First active slot in [from, size_), or size_ if none.
  size_t FirstActiveAtOrAfter(size_t from) const;

  std::vector<uint64_t> words_;    // bit s of words_[s/64]: slot s active
  std::vector<uint64_t> summary_;  // bit w of summary_[w/64]: words_[w] != 0
  std::vector<size_t> free_slots_;  // LIFO recycle stack
  size_t size_ = 0;
  size_t active_ = 0;
  size_t cursor_ = 0;
};

// Per-station rate adaptation: ARF with a Minstrel-lite probing hook.
//
// Each StationId carries an independent position in the MAC's rate table.
// The core loop is classic ARF: `up_threshold` consecutive delivered
// exchanges step the station one rate up (and if the first exchange at the
// new rate fails, it falls straight back — the trial-frame rule);
// `down_threshold` consecutive failures step it one rate down. Failures are
// exchange-level signals: a response timeout or a CTS timeout — under
// RTS/CTS, data losses and collision losses are therefore separated, which
// is exactly why ARF stops collapsing to the lowest rate in dense cells.
//
// The Minstrel-lite part: every `probe_interval`-th data PPDU is sent at a
// rate the controller would not otherwise pick (by default one step above
// current; pluggable via `probe_selector`), and every outcome — probe or
// not — feeds a per-(station, rate) EWMA delivery ratio. Probes never
// advance the ARF streaks; they exist to keep the EWMA table warm so a
// smarter selector has a real signal to act on.
//
// Determinism: no RNG anywhere — probing is counter-driven, so same-seed
// runs stay reproducible.
struct RateAdaptConfig {
  int up_threshold = 10;
  int down_threshold = 2;
  // Every Nth data PPDU per station is a probe; 0 disables probing.
  int probe_interval = 16;
  // Weight of the newest outcome in the per-rate EWMA delivery ratio.
  double ewma_alpha = 0.25;
};

class ArfRateController {
 public:
  // `table` must outlive the controller (the global mode tables do);
  // `initial_index` is every station's starting rate.
  ArfRateController(std::span<const WifiMode> table, size_t initial_index,
                    RateAdaptConfig config);

  // Rate decision for the next data PPDU to `sid`: the station's current
  // ARF rate, or — every probe_interval-th call — a probe rate.
  size_t PickModeIndex(StationId sid);

  // Exchange outcome for the PPDU whose rate the last PickModeIndex(sid)
  // chose. Returns whether the station's operating rate moved.
  struct Move {
    bool up = false;
    bool down = false;
  };
  Move OnTxOutcome(StationId sid, bool success);

  // The PPDU the last PickModeIndex(sid) rated never got a data-rate
  // outcome (built empty, or the exchange died at the RTS). A consumed
  // probe slot is re-armed — the probe is deferred, not burned — so the
  // "every probe_interval-th data PPDU probes" contract holds under
  // window exhaustion and CTS-timeout churn.
  void AbandonPick(StationId sid);

  const WifiMode& mode(size_t index) const { return table_[index]; }
  size_t table_size() const { return table_.size(); }
  size_t current_index(StationId sid) const;
  double EwmaDeliveryRatio(StationId sid, size_t index) const;

  // Minstrel-lite probe-target hook: given (station, current index),
  // returns the index to sample. Defaults to one step above current.
  std::function<size_t(StationId, size_t)> probe_selector;

 private:
  struct StationState {
    size_t idx;
    int succ_streak = 0;
    int fail_streak = 0;
    int since_probe = 0;
    size_t last_pick;
    bool last_was_probe = false;
    // Set by an ARF up-move: the first exchange at the new rate is a trial,
    // and a single failure falls straight back down.
    bool on_trial = false;
    std::array<double, kMaxRateTableSize> ewma_ok;
  };

  StationState& StateFor(StationId sid);

  std::span<const WifiMode> table_;
  size_t initial_index_;
  RateAdaptConfig config_;
  std::vector<StationState> stations_;
};

}  // namespace hacksim

#endif  // SRC_MAC80211_STATION_TABLE_H_
