// Dense station addressing for the MAC hot path.
//
// StationTable interns MacAddress -> StationId (small, dense, assigned in
// first-contact order), so per-station MAC state can live in flat vectors
// instead of std::map<MacAddress, ...>. In the paper's cells a handful of
// stations made map lookups invisible; at the ROADMAP's dense-cell scale
// (1000+ stations) the log-n probes and the O(n) round-robin scan in
// WifiMac::PickNextDest dominated — both are O(1) against this table.
//
// ActiveSlotRing is the companion scheduler structure: a cyclic cursor over
// "service slots" (assigned in first-enqueue order, exactly the legacy
// round_robin_ vector positions) backed by a two-level bitmap, so "first
// station with pending work at/after the cursor" is a couple of word scans
// instead of a linear walk. Pick semantics are bit-for-bit the legacy scan:
// same slot chosen, same cursor advance, which is what keeps same-seed runs
// identical across the refactor.
#ifndef SRC_MAC80211_STATION_TABLE_H_
#define SRC_MAC80211_STATION_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/address.h"

namespace hacksim {

using StationId = uint32_t;
inline constexpr StationId kInvalidStationId = 0xFFFFFFFFu;

class StationTable {
 public:
  // Returns the station's id, interning the address on first contact.
  // Ids are dense: 0, 1, 2, ... in interning order.
  StationId Intern(MacAddress address);

  // Lookup without interning; kInvalidStationId if never seen.
  StationId Find(MacAddress address) const;

  MacAddress AddressOf(StationId id) const { return addresses_[id]; }
  size_t size() const { return addresses_.size(); }

 private:
  std::unordered_map<uint64_t, StationId> index_;
  std::vector<MacAddress> addresses_;
};

// Cyclic "who gets served next" ring over dense slots with O(1) expected
// pick. Slots are appended once (AddSlot) and toggled active/inactive as the
// station gains/loses pending work. PickNext returns the first active slot
// at or after the cursor in cyclic slot order and advances the cursor past
// it — the exact semantics of scanning a vector round-robin and skipping
// idle entries, minus the scan.
class ActiveSlotRing {
 public:
  // Appends an inactive slot; returns its index (dense, append-only).
  size_t AddSlot();

  void Set(size_t slot, bool active);
  bool Test(size_t slot) const {
    return (words_[slot >> 6] >> (slot & 63)) & 1;
  }

  bool Empty() const { return active_ == 0; }
  size_t active_count() const { return active_; }
  size_t size() const { return size_; }
  size_t cursor() const { return cursor_; }

  // Picks the next active slot in cyclic order from the cursor; false when
  // no slot is active (cursor untouched, matching the legacy failed scan).
  bool PickNext(size_t* slot_out);

 private:
  // First active slot in [from, size_), or size_ if none.
  size_t FirstActiveAtOrAfter(size_t from) const;

  std::vector<uint64_t> words_;    // bit s of words_[s/64]: slot s active
  std::vector<uint64_t> summary_;  // bit w of summary_[w/64]: words_[w] != 0
  size_t size_ = 0;
  size_t active_ = 0;
  size_t cursor_ = 0;
};

}  // namespace hacksim

#endif  // SRC_MAC80211_STATION_TABLE_H_
