// DCF / EDCA channel-access engine: AIFS deferral, slotted binary
// exponential backoff with lazy countdown, EIFS after failed receptions,
// and the immediate-access rule for frames arriving on a long-idle medium.
//
// The engine consumes *combined* medium state (physical CCA OR NAV); the
// owning MAC computes that combination and feeds transitions in.
#ifndef SRC_MAC80211_DCF_H_
#define SRC_MAC80211_DCF_H_

#include <functional>

#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace hacksim {

class DcfEngine {
 public:
  struct Config {
    SimTime slot;
    SimTime aifs;
    uint32_t cw_min = 15;
    uint32_t cw_max = 1023;
    // Extra deferral added to AIFS after a reception failure (EIFS - DIFS).
    SimTime eifs_extra;
  };

  DcfEngine(Scheduler* scheduler, Random rng, Config config);

  // Invoked exactly once per grant; the requester transmits immediately.
  std::function<void()> on_grant;

  // --- medium state (combined CCA+NAV), edges only --------------------------
  void NotifyMediumBusy();
  void NotifyMediumIdle();
  bool medium_busy() const { return medium_busy_; }

  // --- EIFS ------------------------------------------------------------------
  void NotifyRxFailed() { last_rx_failed_ = true; }
  void NotifyRxOk() { last_rx_failed_ = false; }

  // --- access ----------------------------------------------------------------
  void RequestAccess();
  void CancelAccess();
  bool access_pending() const { return pending_; }

  // --- contention window ------------------------------------------------------
  // Failure doubles CW and redraws the pending backoff from the new window;
  // success resets CW to CWmin.
  void NotifyTxFailure();
  void NotifyTxSuccess();
  // Post-transmission backoff: drawn after every transmission completes.
  void DrawPostTxBackoff();

  uint32_t cw() const { return cw_; }
  int backoff_slots() const { return backoff_slots_; }

 private:
  SimTime EffectiveAifs() const;
  // (Re)schedules the grant if pending and the medium is idle.
  void Evaluate();
  void CancelGrantEvent();
  int DrawBackoff() {
    backoff_valid_from_ = scheduler_->Now();
    return static_cast<int>(rng_.NextBounded(cw_ + 1));
  }
  // Decrements backoff by slots elapsed while idle up to `until`.
  void ConsumeElapsedSlots(SimTime until);

  Scheduler* scheduler_;
  Random rng_;
  Config config_;

  bool medium_busy_ = false;
  SimTime idle_since_;
  bool last_rx_failed_ = false;
  bool pending_ = false;
  int backoff_slots_ = -1;  // -1: no backoff owed
  // Slots may only elapse after the later of (idle start + AIFS) and the
  // moment the backoff was drawn — a fresh draw cannot be consumed by idle
  // time that already passed.
  SimTime backoff_valid_from_;
  EventId grant_event_ = kInvalidEventId;
  uint32_t cw_;
};

}  // namespace hacksim

#endif  // SRC_MAC80211_DCF_H_
