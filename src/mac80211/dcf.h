// DCF / EDCA channel-access engine: AIFS deferral, slotted binary
// exponential backoff with lazy countdown, EIFS after failed receptions,
// and the immediate-access rule for frames arriving on a long-idle medium.
//
// The engine consumes *combined* medium state (physical CCA OR NAV); the
// owning MAC computes that combination and feeds transitions in. Both
// inputs are per-receiver quantities: on a range-limited channel two
// engines in the same cell can legitimately disagree about whether the
// medium is busy (the hidden-terminal condition) — the engine itself is
// agnostic, it only ever sees its own MAC's edges.
//
// Idle edges may be future-dated: NotifyMediumIdleFrom(t) announces at the
// moment the physical carrier drops that the medium counts as busy until
// `t` (the NAV reservation) and idle afterwards. The engine arms its grant
// timer for the post-`t` timeline immediately — the owning MAC never has to
// schedule a NAV-expiry event, which is what kept every overhearing station
// burning one executed timer per PPDU in dense cells (see docs/perf.md).
// Backoff freezing is explicit state (`backoff_slots_`,
// `backoff_valid_from_`, `idle_since_`), not timer churn: a busy edge
// consumes elapsed slots and cancels the single armed grant timer (O(1) in
// the scheduler's timing wheel), and the grant is re-armed once per idle
// announcement, lazily re-dated if the EIFS flag changes while the idle
// start is still in the future.
#ifndef SRC_MAC80211_DCF_H_
#define SRC_MAC80211_DCF_H_

#include <functional>

#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace hacksim {

class DcfEngine {
 public:
  struct Config {
    SimTime slot;
    SimTime aifs;
    uint32_t cw_min = 15;
    uint32_t cw_max = 1023;
    // Extra deferral added to AIFS after a reception failure (EIFS - DIFS).
    SimTime eifs_extra;
  };

  DcfEngine(Scheduler* scheduler, Random rng, Config config);

  // Invoked exactly once per grant; the requester transmits immediately.
  std::function<void()> on_grant;

  // --- medium state (combined CCA+NAV) ---------------------------------------
  // Physical busy edge, effective immediately.
  void NotifyMediumBusy();
  // The physical carrier is down; the medium counts as idle from `t`
  // onward (t >= Now(); t > Now() encodes a NAV reservation). Announcing a
  // later `t` again without an intervening busy edge extends the deferral.
  void NotifyMediumIdleFrom(SimTime t);
  // Immediate idle edge — the eager-notification form.
  void NotifyMediumIdle() { NotifyMediumIdleFrom(scheduler_->Now()); }
  // True while busy, physically or by an unexpired idle-from reservation.
  bool medium_busy() const {
    return medium_busy_ || scheduler_->Now() < idle_since_;
  }

  // --- EIFS ------------------------------------------------------------------
  void NotifyRxFailed() {
    if (!last_rx_failed_) {
      last_rx_failed_ = true;
      ReevaluateDeferredIdle();
    }
  }
  void NotifyRxOk() {
    if (last_rx_failed_) {
      last_rx_failed_ = false;
      ReevaluateDeferredIdle();
    }
  }

  // --- access ----------------------------------------------------------------
  void RequestAccess();
  void CancelAccess();
  bool access_pending() const { return pending_; }

  // --- contention window ------------------------------------------------------
  // Failure doubles CW and redraws the pending backoff from the new window;
  // success resets CW to CWmin.
  void NotifyTxFailure();
  void NotifyTxSuccess();
  // Post-transmission backoff: drawn after every transmission completes.
  void DrawPostTxBackoff();

  // --- EDCA internal contention ----------------------------------------------
  // When several per-AC engines inside one MAC would be granted access at
  // the same instant, only the highest-priority AC transmits; each loser
  // suffers a *virtual collision*: CW doubles, a fresh backoff is drawn
  // from the doubled window, and the still-pending grant is re-armed for
  // the new countdown. Identical to NotifyTxFailure except the request
  // stays pending (the loser never got to transmit, so nothing consumed
  // its access request).
  void NotifyInternalCollision();
  // True while a grant timer is armed (access granted but not yet fired).
  bool has_armed_grant() const { return grant_event_ != kInvalidEventId; }
  // The instant the armed grant will fire; only meaningful while
  // has_armed_grant(). The owning MAC compares this against Now() to
  // detect same-instant grants across its AC engines.
  SimTime armed_grant_time() const { return grant_time_; }

  uint32_t cw() const { return cw_; }
  int backoff_slots() const { return backoff_slots_; }

  // Radio-reset support: cancels any armed grant and returns the engine to
  // its cold-boot state (CW at minimum, no pending request, medium idle
  // from now). The RNG stream is deliberately NOT rewound — determinism
  // means "same seed, same plan → same run", not "reset forgets draws".
  void Reset();

 private:
  SimTime EffectiveAifs() const;
  // (Re)schedules the grant if pending and the medium is physically idle.
  void Evaluate();
  // A grant armed against a still-future idle start was computed with the
  // EIFS flag of the announcement moment; a flag flip before the idle start
  // re-dates it (the eager path would have evaluated at the idle edge, with
  // the flipped flag).
  void ReevaluateDeferredIdle() {
    if (!medium_busy_ && pending_ && scheduler_->Now() < idle_since_) {
      Evaluate();
    }
  }
  void CancelGrantEvent();
  int DrawBackoff() {
    backoff_valid_from_ = scheduler_->Now();
    return static_cast<int>(rng_.NextBounded(cw_ + 1));
  }
  // Decrements backoff by slots elapsed while idle up to `until`.
  void ConsumeElapsedSlots(SimTime until);

  Scheduler* scheduler_;
  Random rng_;
  Config config_;

  // Physical busy flag; NAV deferrals live in idle_since_ instead.
  bool medium_busy_ = false;
  // Start of the current (or announced future) idle period.
  SimTime idle_since_;
  bool last_rx_failed_ = false;
  bool pending_ = false;
  int backoff_slots_ = -1;  // -1: no backoff owed
  // Slots may only elapse after the later of (idle start + AIFS) and the
  // moment the backoff was drawn — a fresh draw cannot be consumed by idle
  // time that already passed.
  SimTime backoff_valid_from_;
  EventId grant_event_ = kInvalidEventId;
  // Fire time of the armed grant event; valid only while grant_event_ is.
  SimTime grant_time_;
  uint32_t cw_;
};

}  // namespace hacksim

#endif  // SRC_MAC80211_DCF_H_
