#include "src/mac80211/wifi_mac.h"

#include <algorithm>
#include <bit>

#include "src/util/logging.h"

namespace hacksim {
namespace {

// EIFS adds the time to hear the lowest-rate ACK after a failed reception.
SimTime EifsExtra(const PhyTimings& timings) {
  WifiMode lowest{PhyFormat::kLegacyOfdm, 6000, 24, 1};
  return timings.sifs + FrameDuration(lowest, kAckBytes);
}

bool IsResponseFrame(const Ppdu& ppdu) {
  WifiFrameType t = ppdu.first().type;
  return t == WifiFrameType::kAck || t == WifiFrameType::kBlockAck ||
         t == WifiFrameType::kCts || t == WifiFrameType::kCfEnd;
}

// IP-datagram airtime of the MPDUs at the PPDU's rate (no preamble, no MAC
// framing) — the paper's Table 3 "TCP ACK" accounting.
SimTime PayloadAirtime(const Ppdu& ppdu) {
  uint64_t bytes = 0;
  for (const WifiFrame& mpdu : ppdu.mpdus) {
    if (mpdu.packet.has_value()) {
      bytes += mpdu.packet->SizeBytes();
    }
  }
  return SimTime::Nanos(static_cast<int64_t>(
      bytes * 8 * 1'000'000 / ppdu.mode.rate_kbps));
}

}  // namespace

// --- EDCA parameter table -----------------------------------------------------

std::array<EdcaAcParams, kNumAcs> DefaultEdcaTable() {
  std::array<EdcaAcParams, kNumAcs> table{};
  table[kAcVo] = EdcaAcParams{2, 3, 7, SimTime::Micros(1504)};
  table[kAcVi] = EdcaAcParams{2, 7, 15, SimTime::Micros(3008)};
  // BE mirrors the base PhyTimings (aifsn 3 == DIFS for 11n, CW 15/1023);
  // informational only — dcf_ is the BE engine and reads PhyTimings
  // directly, which is what pins legacy behaviour. Zero TXOP rows fall
  // back to WifiMacConfig::txop_limit.
  table[kAcBe] = EdcaAcParams{3, 15, 1023, SimTime::Zero()};
  table[kAcBk] = EdcaAcParams{7, 15, 1023, SimTime::Zero()};
  return table;
}

uint8_t ClassifyAc(const Packet& packet) {
  return packet.has_ip() ? AcForTos(packet.ip().tos) : kAcBe;
}

// --- TxState outstanding ring -------------------------------------------------

WifiMac::OutstandingMpdu* WifiMac::TxState::FindOutstanding(uint16_t seq) {
  if (outstanding.empty()) {
    return nullptr;
  }
  std::optional<OutstandingMpdu>& slot = outstanding[seq % kMaxAmpduMpdus];
  if (!slot.has_value() || slot->frame.seq != seq) {
    return nullptr;
  }
  return &*slot;
}

WifiMac::OutstandingMpdu& WifiMac::TxState::AddOutstanding(
    uint16_t seq, OutstandingMpdu mpdu) {
  if (outstanding.empty()) {
    outstanding.resize(kMaxAmpduMpdus);
  }
  std::optional<OutstandingMpdu>& slot = outstanding[seq % kMaxAmpduMpdus];
  CHECK(!slot.has_value()) << "outstanding seq " << seq << " already present";
  slot.emplace(std::move(mpdu));
  ++outstanding_count;
  return *slot;
}

void WifiMac::TxState::EraseOutstanding(uint16_t seq) {
  std::optional<OutstandingMpdu>& slot = outstanding[seq % kMaxAmpduMpdus];
  CHECK(slot.has_value());
  slot.reset();
  --outstanding_count;
}

void WifiMac::TxState::ClearOutstanding() {
  for (std::optional<OutstandingMpdu>& slot : outstanding) {
    slot.reset();
  }
  outstanding_count = 0;
}

// ------------------------------------------------------------------------------

WifiMac::WifiMac(Scheduler* scheduler, WifiPhy* phy, MacAddress address,
                 WifiMacConfig config, Random rng)
    : scheduler_(scheduler),
      phy_(phy),
      address_(address),
      config_(config),
      timings_(TimingsFor(config.standard)),
      dcf_(scheduler, rng.Fork(),
           DcfEngine::Config{TimingsFor(config.standard).slot,
                             TimingsFor(config.standard).difs,
                             TimingsFor(config.standard).cw_min,
                             TimingsFor(config.standard).cw_max,
                             EifsExtra(TimingsFor(config.standard))}),
      current_data_mode_(config.data_mode) {
  phy_->set_listener(this);
  dcf_.on_grant = [this]() { OnAccessGranted(kAcBe); };
  if (config_.edca_enabled) {
    // Per-AC engines for VO/VI/BK, each with its own fork of the MAC's RNG
    // (taken here, in declaration order, AFTER dcf_'s member-init fork —
    // legacy mode takes none of these forks, so dcf_'s stream is untouched).
    // BE needs no engine: dcf_ already runs AIFS[BE]/CW[BE] (= DIFS and the
    // PHY's CW bounds), see EngineFor().
    for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
      if (ac == kAcBe) {
        continue;
      }
      const EdcaAcParams& params = config_.edca[ac];
      edca_engines_[ac] = std::make_unique<DcfEngine>(
          scheduler, rng.Fork(),
          DcfEngine::Config{timings_.slot,
                            timings_.sifs + timings_.slot * params.aifsn,
                            params.cw_min, params.cw_max,
                            EifsExtra(timings_)});
      edca_engines_[ac]->on_grant = [this, ac]() { OnAccessGranted(ac); };
    }
  }
  if (config_.standard == WifiStandard::k80211a) {
    config_.enable_ampdu = false;
  }
  rate_table_ = config_.standard == WifiStandard::k80211a ? Modes80211a()
                                                          : Modes80211n();
  bool found = false;
  for (size_t i = 0; i < rate_table_.size(); ++i) {
    if (rate_table_[i] == config_.data_mode) {
      data_mode_index_ = i;
      found = true;
      break;
    }
  }
  current_mode_index_ = data_mode_index_;
  if (config_.enable_rate_adaptation) {
    CHECK(found) << "rate adaptation needs data_mode in the standard table";
    rate_ctrl_.emplace(rate_table_, data_mode_index_, config_.rate_adapt);
  }
}

// --- upper-layer interface ----------------------------------------------------

void WifiMac::Associate(MacAddress peer) {
  StationId sid = stations_.Intern(peer);
  TxState& st = TxFor(sid);
  // A recycled or re-associated id may carry a previous incarnation's
  // queue, rings and scoreboard (e.g. a silent crash the AP never saw);
  // scrub them so the fresh association starts cold. The service-ring slot
  // is kept (deactivated), matching the flushed state.
  if (st.next_seq != 0 || st.win_start != 0 || st.HasWork() ||
      st.consecutive_give_ups != 0) {
    if (phase_ != TxPhase::kIdle && sid == current_dest_sid_) {
      current_dest_gone_ = true;
    }
    uint32_t slot = st.service_slot;
    st = TxState{};
    st.service_slot = slot;
    if (slot != TxState::kNoServiceSlot) {
      service_ring_.Set(slot, false);
      if (config_.edca_enabled) {
        for (ActiveSlotRing& ring : ac_rings_) {
          ring.Set(slot, false);
        }
      }
    }
  }
  RxFor(sid) = RxState{};
}

size_t WifiMac::FlushStation(TxState& st) {
  size_t flushed = st.queue.size();
  st.queue.clear();
  if (st.edca_queues != nullptr) {
    for (std::deque<Packet>& q : *st.edca_queues) {
      flushed += q.size();
      q.clear();
    }
  }
  flushed += st.outstanding_count;
  st.ClearOutstanding();
  if (st.single_inflight.has_value()) {
    ++flushed;
    st.single_inflight.reset();
  }
  st.bar_pending = false;
  return flushed;
}

void WifiMac::Disassociate(MacAddress peer) {
  StationId sid = stations_.Find(peer);
  if (sid == kInvalidStationId) {
    return;
  }
  if (phase_ != TxPhase::kIdle && sid == current_dest_sid_) {
    // Mid-exchange removal: let the in-flight response/timeout resolve as
    // a no-op instead of mutating a TxState a new peer may inherit.
    current_dest_gone_ = true;
  }
  if (sid < tx_.size()) {
    TxState& st = tx_[sid];
    stats_.disassociation_flushes += FlushStation(st);
    uint32_t slot = st.service_slot;
    st = TxState{};
    if (slot != TxState::kNoServiceSlot) {
      service_ring_.Set(slot, false);
      service_ring_.ReleaseSlot(slot);
      if (config_.edca_enabled) {
        for (ActiveSlotRing& ring : ac_rings_) {
          ring.Set(slot, false);
          ring.ReleaseSlot(slot);
        }
      }
    }
  }
  if (sid < rx_.size()) {
    rx_[sid] = RxState{};
  }
  stations_.Disassociate(peer);
}

void WifiMac::ResetRadioState() {
  scheduler_->Cancel(response_timeout_event_);
  response_timeout_event_ = kInvalidEventId;
  scheduler_->Cancel(cts_timeout_event_);
  cts_timeout_event_ = kInvalidEventId;
  scheduler_->Cancel(nav_reset_probe_event_);
  nav_reset_probe_event_ = kInvalidEventId;
  nav_provisional_ = false;
  // Strand every SIFS-delayed closure (responses, the CTS→data hop) still
  // in the wheel: they check the epoch and die quietly.
  ++reset_epoch_;
  responses_pending_ = 0;
  phase_ = TxPhase::kIdle;
  current_dest_gone_ = false;
  current_dest_sid_ = kInvalidStationId;
  pending_data_ppdu_.reset();
  current_batch_seqs_.clear();
  tx_.clear();
  rx_.clear();
  stations_ = StationTable{};
  service_ring_ = ActiveSlotRing{};
  for (ActiveSlotRing& ring : ac_rings_) {
    ring = ActiveSlotRing{};
  }
  current_ac_ = kAcBe;
  service_slot_station_.clear();
  // Callers power the radio down before resetting (and maybe back up
  // after), so no arrival can be in progress here: the medium is idle from
  // the MAC's point of view, and the DCF restarts from a cold boot.
  phy_busy_ = false;
  nav_until_ = scheduler_->Now();
  medium_busy_reported_ = false;
  reported_idle_from_ = scheduler_->Now();
  ForEachEngine([](DcfEngine& engine) { engine.Reset(); });
}

void WifiMac::EnsureServiceSlot(StationId sid, TxState& st) {
  if (st.service_slot != TxState::kNoServiceSlot) {
    return;
  }
  size_t slot = service_ring_.AddSlot();
  if (config_.edca_enabled) {
    // Lockstep: every ring sees the same AddSlot/ReleaseSlot history (both
    // recycle LIFO), so slot indices agree across all of them.
    for (ActiveSlotRing& ring : ac_rings_) {
      size_t ac_slot = ring.AddSlot();
      CHECK(ac_slot == slot);
    }
  }
  st.service_slot = static_cast<uint32_t>(slot);
  if (slot == service_slot_station_.size()) {
    service_slot_station_.push_back(sid);
  } else {
    service_slot_station_[slot] = sid;  // recycled slot: new occupant
  }
}

void WifiMac::UpdateServiceRing(TxState& st) {
  if (st.service_slot == TxState::kNoServiceSlot) {
    return;  // never enqueued to: cannot have work
  }
  service_ring_.Set(st.service_slot, st.HasWork());
  if (config_.edca_enabled) {
    for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
      ac_rings_[ac].Set(st.service_slot, AcHasWork(st, ac));
    }
  }
}

bool WifiMac::AcHasWork(const TxState& st, uint8_t ac) const {
  // Recovery work (BAR, un-acked outstanding MPDUs, a single in flight)
  // belongs to the AC that originally transmitted it.
  bool recovery = st.bar_pending || st.outstanding_count > 0 ||
                  st.single_inflight.has_value();
  if (recovery && st.recovery_ac == ac) {
    return true;
  }
  if (ac == kAcBe) {
    return !st.queue.empty();
  }
  return st.edca_queues != nullptr && !(*st.edca_queues)[ac].empty();
}

std::deque<Packet>& WifiMac::SendQueue(TxState& st, uint8_t ac) {
  if (!config_.edca_enabled || ac == kAcBe) {
    return st.queue;
  }
  if (st.edca_queues == nullptr) {
    st.edca_queues =
        std::make_unique<std::array<std::deque<Packet>, kNumAcs>>();
  }
  return (*st.edca_queues)[ac];
}

SimTime WifiMac::TxopLimitFor(uint8_t ac) const {
  if (!config_.edca_enabled || config_.edca[ac].txop_limit.IsZero()) {
    return config_.txop_limit;
  }
  return config_.edca[ac].txop_limit;
}

void WifiMac::Enqueue(Packet&& packet, MacAddress dest) {
  if (!phy_->radio_on()) {
    // Dead interface: upper layers see the same silence a real driver
    // gives — the packet is dropped at the door.
    ++stats_.radio_off_drops;
    return;
  }
  StationId sid = stations_.Intern(dest);
  TxState& st = TxFor(sid);
  EnsureServiceSlot(sid, st);
  uint8_t ac = config_.edca_enabled ? ClassifyAc(packet) : kAcBe;
  std::deque<Packet>& q = SendQueue(st, ac);
  if (q.size() >= config_.per_dest_queue_limit) {
    // Drop-tail: TCP's congestion control depends on this signal. Under
    // EDCA the limit applies per (destination, AC) queue.
    ++stats_.queue_drops;
    return;
  }
  q.push_back(std::move(packet));
  UpdateServiceRing(st);
  MaybeRequestAccess();
}

size_t WifiMac::QueueDepth(MacAddress dest) const {
  StationId sid = stations_.Find(dest);
  if (sid == kInvalidStationId || sid >= tx_.size()) {
    return 0;
  }
  const TxState& st = tx_[sid];
  size_t depth = st.queue.size();
  if (st.edca_queues != nullptr) {
    for (const std::deque<Packet>& q : *st.edca_queues) {
      depth += q.size();
    }
  }
  return depth;
}

size_t WifiMac::RemoveQueued(MacAddress dest,
                             const std::function<bool(const Packet&)>& pred) {
  StationId sid = stations_.Find(dest);
  if (sid == kInvalidStationId || sid >= tx_.size()) {
    return 0;
  }
  TxState& st = tx_[sid];
  size_t removed = 0;
  auto remove_from = [&](std::deque<Packet>& q) {
    size_t before = q.size();
    q.erase(std::remove_if(q.begin(), q.end(), pred), q.end());
    removed += before - q.size();
  };
  remove_from(st.queue);
  if (st.edca_queues != nullptr) {
    // HACK pulls vanilla TCP ACKs, which classify BE (tos 0) and live in
    // st.queue — but stay correct for any predicate.
    for (std::deque<Packet>& q : *st.edca_queues) {
      remove_from(q);
    }
  }
  UpdateServiceRing(st);
  return removed;
}

// --- originator pipeline --------------------------------------------------------

void WifiMac::MaybeRequestAccess() {
  if (phase_ != TxPhase::kIdle || service_ring_.Empty()) {
    return;
  }
  if (!config_.edca_enabled) {
    if (!dcf_.access_pending()) {
      access_request_time_ = scheduler_->Now();
      dcf_.RequestAccess();
    }
    return;
  }
  // EDCA: every AC with work contends independently; the internal
  // contention in OnAccessGranted resolves same-instant winners.
  for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
    if (ac_rings_[ac].Empty()) {
      continue;
    }
    DcfEngine& engine = EngineFor(ac);
    if (!engine.access_pending()) {
      ac_request_time_[ac] = scheduler_->Now();
      engine.RequestAccess();
    }
  }
}

WifiMac::TxState* WifiMac::PickNextDest(uint8_t ac, StationId* sid_out) {
  ActiveSlotRing& ring = config_.edca_enabled ? ac_rings_[ac] : service_ring_;
  size_t slot;
  if (!ring.PickNext(&slot)) {
    return nullptr;
  }
  StationId sid = service_slot_station_[slot];
  *sid_out = sid;
  return &tx_[sid];
}

void WifiMac::OnAccessGranted(uint8_t ac) {
  if (phase_ != TxPhase::kIdle) {
    // EDCA only: another AC's exchange is mid-flight (its grant can fire
    // while we await a response on an idle medium — AIFS + backoff can
    // elapse inside the response-timeout window). The request was consumed
    // when this grant fired; MaybeRequestAccess at exchange end re-requests
    // for every AC that still has work. Deliberately NO RequestAccess here:
    // backoff_slots_ is -1 after a fired grant, so an immediate re-request
    // could re-grant this same nanosecond, forever.
    CHECK(config_.edca_enabled);
    return;
  }
  if (config_.edca_enabled) {
    SimTime now = scheduler_->Now();
    // Internal contention (802.11e 9.9.1.3): of the engines granted at the
    // same instant, only the highest-priority AC transmits; every loser
    // suffers a virtual collision. Same-nanosecond grants may fire in any
    // FIFO order, so both directions are handled: if a HIGHER-priority
    // engine's grant is armed for this instant (it fires later this ns),
    // *we* are the loser and stand down; any LOWER-priority engine armed
    // for this instant loses to us.
    for (uint8_t hi = 0; hi < ac; ++hi) {
      DcfEngine& high = EngineFor(hi);
      if (high.has_armed_grant() && high.armed_grant_time() == now) {
        ++stats_.virtual_collisions;
        DcfEngine& self = EngineFor(ac);
        self.NotifyTxFailure();
        self.RequestAccess();
        return;
      }
    }
    for (uint8_t lo = ac + 1; lo < kNumAcs; ++lo) {
      DcfEngine& low = EngineFor(lo);
      if (low.has_armed_grant() && low.armed_grant_time() == now) {
        ++stats_.virtual_collisions;
        low.NotifyInternalCollision();
      }
    }
    access_request_time_ = ac_request_time_[ac];
  }
  current_ac_ = ac;
  StationId sid = kInvalidStationId;
  TxState* st = PickNextDest(ac, &sid);
  if (st == nullptr) {
    return;  // work disappeared (e.g. opportunistic HACK removed ACKs)
  }
  StartExchange(sid, *st);
}

SimTime WifiMac::ResponseTimeoutDelay(bool block_ack_expected) const {
  WifiMode resp_mode = ControlResponseMode(current_data_mode_);
  size_t resp_bytes = (block_ack_expected ? kBlockAckBytes : kAckBytes) +
                      config_.max_hack_payload_bytes;
  return timings_.sifs + FrameDuration(resp_mode, resp_bytes) +
         timings_.ack_timeout + config_.extra_ack_timeout;
}

SimTime WifiMac::CtsTimeoutDelay() const {
  WifiMode cts_mode = ControlResponseMode(current_data_mode_);
  return timings_.sifs + FrameDuration(cts_mode, kCtsBytes) +
         timings_.ack_timeout + config_.extra_ack_timeout;
}

void WifiMac::StartExchange(StationId sid, TxState& st) {
  current_dest_ = stations_.AddressOf(sid);
  current_dest_sid_ = sid;
  current_batch_seqs_.clear();
  current_all_tcp_acks_ = false;

  if (st.bar_pending) {
    current_is_bar_ = true;
    current_aggregated_ = false;
    current_data_mode_ = config_.data_mode;
    WifiFrame bar;
    bar.type = WifiFrameType::kBlockAckReq;
    bar.ta = address_;
    bar.ra = current_dest_;
    bar.bar_start_seq = st.win_start;
    WifiMode bar_mode = ControlResponseMode(config_.data_mode);
    bar.duration_field =
        timings_.sifs + FrameDuration(bar_mode, kBlockAckBytes);
    Ppdu ppdu;
    ppdu.mpdus.push_back(std::move(bar));
    ppdu.aggregated = false;
    ppdu.mode = bar_mode;
    ++stats_.bars_sent;
    UpdateServiceRing(st);
    phase_ = TxPhase::kTransmitting;
    ++stats_.ppdus_sent;
    bool sent = phy_->Send(std::move(ppdu));
    CHECK(sent) << "BAR transmission while PHY busy should be impossible";
    return;
  }

  current_is_bar_ = false;
  Ppdu ppdu = BuildDataPpdu(current_dest_, st);
  if (ppdu.mpdus.empty()) {
    if (rate_ctrl_.has_value()) {
      rate_ctrl_->AbandonPick(sid);  // no PPDU: the pick saw no air
    }
    UpdateServiceRing(st);
    return;  // nothing sendable (window exhausted)
  }
  UpdateServiceRing(st);
  current_data_mode_ = ppdu.mode;

  if (config_.rts_threshold > 0 &&
      ppdu.PsduBytes() > config_.rts_threshold) {
    if (!st.rts_bypass_once) {
      SendRtsFor(std::move(ppdu));
      return;
    }
    // Retry limit hit last time round: one unprotected shot, then the
    // handshake is back on.
    st.rts_bypass_once = false;
    ++stats_.rts_bypasses;
  }
  phase_ = TxPhase::kTransmitting;
  TransmitDataPpdu(std::move(ppdu));
}

void WifiMac::SendRtsFor(Ppdu data_ppdu) {
  WifiMode rts_mode = ControlResponseMode(data_ppdu.mode);
  WifiMode cts_mode = ControlResponseMode(rts_mode);
  WifiMode resp_mode = ControlResponseMode(data_ppdu.mode);
  size_t resp_bytes = data_ppdu.aggregated ? kBlockAckBytes : kAckBytes;

  WifiFrame rts;
  rts.type = WifiFrameType::kRts;
  rts.ta = address_;
  rts.ra = current_dest_;
  // The RTS Duration covers everything still to come after the RTS itself:
  // SIFS + CTS + SIFS + DATA + SIFS + response. Overhearers' NAV therefore
  // protects the whole sequence; the CTS re-advertises the remainder.
  rts.duration_field = timings_.sifs + FrameDuration(cts_mode, kCtsBytes) +
                       timings_.sifs + data_ppdu.Duration() + timings_.sifs +
                       FrameDuration(resp_mode, resp_bytes);

  Ppdu rts_ppdu;
  rts_ppdu.aggregated = false;
  rts_ppdu.mode = rts_mode;
  rts_ppdu.mpdus.push_back(std::move(rts));

  pending_data_ppdu_ = std::move(data_ppdu);
  phase_ = TxPhase::kTransmitting;
  ++stats_.rts_sent;
  bool sent = phy_->Send(std::move(rts_ppdu));
  CHECK(sent) << "RTS transmission while PHY busy should be impossible";
}

void WifiMac::TransmitDataPpdu(Ppdu ppdu) {
  CHECK(phase_ == TxPhase::kTransmitting);
  ++stats_.ppdus_sent;
  ++stats_.data_ppdus_by_mode_index[current_mode_index_];
  stats_.mpdu_tx_attempts += ppdu.mpdus.size();

  // Table 3 accounting for frames that carry (only) vanilla TCP ACKs.
  bool all_acks = true;
  for (const WifiFrame& mpdu : ppdu.mpdus) {
    if (!mpdu.packet.has_value() || !mpdu.packet->IsPureTcpAck()) {
      all_acks = false;
      break;
    }
  }
  current_all_tcp_acks_ = all_acks && !ppdu.mpdus.empty();
  if (current_all_tcp_acks_) {
    SimTime wait = scheduler_->Now() - access_request_time_;
    SimTime payload_air = PayloadAirtime(ppdu);
    stats_.tcp_ack_frames_sent += ppdu.mpdus.size();
    for (const WifiFrame& mpdu : ppdu.mpdus) {
      stats_.tcp_ack_bytes_sent += mpdu.packet->SizeBytes();
    }
    stats_.tcp_ack_payload_airtime_ns += payload_air.ns();
    stats_.tcp_ack_channel_overhead_ns +=
        (wait + ppdu.Duration() - payload_air).ns();
  }

  if (config_.edca_enabled) {
    ++stats_.ac_ppdus_sent[current_ac_];
  }
  bool sent = phy_->Send(std::move(ppdu));
  CHECK(sent) << "data transmission while PHY busy should be impossible";
}

Ppdu WifiMac::BuildDataPpdu(MacAddress dest, TxState& st) {
  std::deque<Packet>& queue = SendQueue(st, current_ac_);
  const SimTime txop_limit = TxopLimitFor(current_ac_);
  Ppdu ppdu;
  if (rate_ctrl_.has_value()) {
    current_mode_index_ = rate_ctrl_->PickModeIndex(current_dest_sid_);
    ppdu.mode = rate_table_[current_mode_index_];
  } else {
    current_mode_index_ = data_mode_index_;
    ppdu.mode = config_.data_mode;
  }
  WifiMode resp_mode = ControlResponseMode(ppdu.mode);

  if (!config_.enable_ampdu) {
    // Stop-and-wait single MPDU.
    if (!st.single_inflight.has_value()) {
      if (queue.empty()) {
        return ppdu;
      }
      WifiFrame frame;
      frame.type = WifiFrameType::kData;
      frame.ta = address_;
      frame.ra = dest;
      frame.seq = st.next_seq;
      st.next_seq = SeqAdd(st.next_seq, 1);
      frame.packet = std::move(queue.front());
      queue.pop_front();
      st.single_inflight = OutstandingMpdu{std::move(frame), 0};
      st.recovery_ac = current_ac_;
    } else {
      st.single_inflight->frame.retry = true;
    }
    WifiFrame frame = st.single_inflight->frame;
    frame.more_data = !queue.empty();
    frame.sync = st.sync_pending;
    frame.duration_field =
        timings_.sifs + FrameDuration(resp_mode, kAckBytes);
    st.single_inflight->frame.more_data = frame.more_data;
    ppdu.aggregated = false;
    ppdu.mpdus.push_back(std::move(frame));
    current_aggregated_ = false;
    current_batch_seqs_.push_back(ppdu.mpdus.front().seq);
    return ppdu;
  }

  // A-MPDU: retransmissions first (sequence order), then fresh MPDUs, within
  // the Block ACK window, the 64 KB / 64-MPDU A-MPDU bounds and the TXOP.
  ppdu.aggregated = true;
  current_aggregated_ = true;
  size_t psdu_bytes = 0;
  // Admission check on the byte count alone, so fresh MPDUs can be sized
  // before their Packet is moved out of the queue.
  auto fits_bytes = [&](size_t mpdu_bytes) {
    size_t padded = (mpdu_bytes + 3) & ~size_t{3};
    size_t new_bytes = psdu_bytes + kAmpduDelimiterBytes + padded;
    if (new_bytes > kMaxAmpduBytes ||
        ppdu.mpdus.size() + 1 > kMaxAmpduMpdus) {
      return false;
    }
    return FrameDuration(ppdu.mode, new_bytes) <= txop_limit;
  };
  auto add = [&](WifiFrame frame) {
    size_t padded = (frame.SizeBytes() + 3) & ~size_t{3};
    psdu_bytes += kAmpduDelimiterBytes + padded;
    current_batch_seqs_.push_back(frame.seq);
    ppdu.mpdus.push_back(std::move(frame));
  };

  // Retransmissions in window order from win_start (the ring is naturally
  // sorted by SeqDistance(win_start, seq)).
  for (uint16_t i = 0;
       i < kMaxAmpduMpdus && st.outstanding_count > 0; ++i) {
    OutstandingMpdu* out = st.FindOutstanding(SeqAdd(st.win_start, i));
    if (out == nullptr) {
      continue;
    }
    if (!fits_bytes(out->frame.SizeBytes())) {
      break;
    }
    WifiFrame frame = out->frame;  // retention copy: kept for further retx
    frame.retry = true;
    add(std::move(frame));
  }

  // Fresh MPDUs: the Packet moves queue -> frame -> outstanding (the
  // retained copy for retransmission); the PPDU gets a copy of the frame.
  while (!queue.empty() &&
         SeqInWindow(st.win_start, st.next_seq,
                     static_cast<uint16_t>(kMaxAmpduMpdus))) {
    size_t mpdu_bytes = kQosDataHeaderBytes + kLlcSnapBytes +
                        queue.front().SizeBytes() + kFcsBytes;
    if (!fits_bytes(mpdu_bytes)) {
      break;
    }
    WifiFrame frame;
    frame.type = WifiFrameType::kData;
    frame.ta = address_;
    frame.ra = dest;
    frame.seq = st.next_seq;
    frame.packet = std::move(queue.front());
    queue.pop_front();
    st.next_seq = SeqAdd(st.next_seq, 1);
    OutstandingMpdu& stored =
        st.AddOutstanding(frame.seq, OutstandingMpdu{std::move(frame), 0});
    add(WifiFrame(stored.frame));
  }

  if (ppdu.mpdus.empty()) {
    return ppdu;
  }
  st.recovery_ac = current_ac_;

  // MORE DATA: more traffic for this destination is already queued (or held
  // back by the window) beyond this batch (§3.2).
  bool more = !queue.empty() ||
              st.outstanding_count > ppdu.mpdus.size();
  bool sync = st.sync_pending;
  if (sync) {
    ++stats_.batches_sent_with_sync;
  }
  if (more) {
    ++stats_.batches_sent_more_data;
  } else {
    ++stats_.batches_sent_final;
  }
  SimTime duration_field =
      timings_.sifs + FrameDuration(resp_mode, kBlockAckBytes);
  for (WifiFrame& mpdu : ppdu.mpdus) {
    mpdu.more_data = more;
    mpdu.sync = sync;
    if (sync) {
      mpdu.sync_start_seq = st.win_start;
    }
    mpdu.duration_field = duration_field;
  }
  return ppdu;
}

void WifiMac::OnTxEnd(const Ppdu& ppdu) {
  if (IsResponseFrame(ppdu)) {
    return;  // SIFS responses do not await anything
  }
  CHECK(phase_ == TxPhase::kTransmitting);
  tx_end_time_ = scheduler_->Now();
  if (ppdu.first().type == WifiFrameType::kRts) {
    phase_ = TxPhase::kAwaitingCts;
    rts_reservation_until_ =
        scheduler_->Now() + ppdu.first().duration_field;
    cts_timeout_event_ = scheduler_->ScheduleIn(
        CtsTimeoutDelay(),
        [this]() {
          cts_timeout_event_ = kInvalidEventId;
          HandleCtsTimeout();
        },
        EventClass::kMacTimer);
    return;
  }
  phase_ = TxPhase::kAwaitingResponse;
  bool expect_ba = current_aggregated_ || current_is_bar_;
  response_timeout_event_ = scheduler_->ScheduleIn(
      ResponseTimeoutDelay(expect_ba),
      [this]() {
        response_timeout_event_ = kInvalidEventId;
        HandleResponseTimeout();
      },
      EventClass::kMacTimer);
}

void WifiMac::HandleCts(const WifiFrame& frame) {
  if (phase_ != TxPhase::kAwaitingCts || frame.ta != current_dest_ ||
      current_dest_gone_) {
    return;  // stale/unexpected CTS (or the peer was removed mid-exchange:
             // the CTS timeout path finishes the cleanup)
  }
  scheduler_->Cancel(cts_timeout_event_);
  cts_timeout_event_ = kInvalidEventId;
  tx_[current_dest_sid_].rts_retries = 0;
  // The medium is ours: the parked data PPDU follows the CTS by SIFS.
  phase_ = TxPhase::kTransmitting;
  scheduler_->ScheduleIn(
      timings_.sifs,
      [this, epoch = reset_epoch_]() {
        if (epoch != reset_epoch_) {
          return;  // radio reset in the SIFS gap
        }
        CHECK(pending_data_ppdu_.has_value());
        Ppdu ppdu = std::move(*pending_data_ppdu_);
        pending_data_ppdu_.reset();
        TransmitDataPpdu(std::move(ppdu));
      },
      EventClass::kMacTimer);
}

void WifiMac::HandleCtsTimeout() {
  CHECK(phase_ == TxPhase::kAwaitingCts);
  ++stats_.cts_timeouts;
  pending_data_ppdu_.reset();
  // The reservation we advertised is dead air from here to its horizon.
  // Overhearers' NAV-reset probes only reclaim it if their probe window
  // passed in silence — any unrelated PHY activity makes a probe stand
  // down — so, when enabled, broadcast a CF-End to release everyone now.
  MaybeSendCfEnd();
  if (current_dest_gone_) {
    // Peer removed mid-exchange: its TxState was already reset (and may
    // belong to a new peer) — abandon without touching it.
    current_dest_gone_ = false;
    EngineFor(current_ac_).NotifyTxFailure();
    phase_ = TxPhase::kIdle;
    MaybeRequestAccess();
    return;
  }
  // The exchange never left the RTS: the MPDUs stay outstanding (or
  // single_inflight) and are rebuilt at the next grant — re-entering
  // backoff is the ordinary CW-doubling path, which the lazy idle-edge
  // re-arm already handles (NotifyTxFailure re-dates a deferred grant).
  //
  // Deliberately NO rate feedback here: the CTS outcome gates what ARF
  // hears. A missing CTS means the basic-rate RTS collided — a contention
  // signal, not a channel-quality signal — and the exchange never reached
  // the data rate at all. Feeding it to ARF recreates the classic
  // collision-triggered rate collapse RTS/CTS exists to prevent.
  EngineFor(current_ac_).NotifyTxFailure();
  if (rate_ctrl_.has_value()) {
    // No data-rate outcome either way; a consumed probe slot is re-armed.
    rate_ctrl_->AbandonPick(current_dest_sid_);
  }
  TxState& st = tx_[current_dest_sid_];
  if (++st.rts_retries > config_.rts_retry_limit) {
    st.rts_retries = 0;
    st.rts_bypass_once = true;
  }
  UpdateServiceRing(st);
  phase_ = TxPhase::kIdle;
  MaybeRequestAccess();
}

void WifiMac::MaybeSendCfEnd() {
  if (!config_.enable_cf_end) {
    return;
  }
  WifiMode cf_mode = ControlResponseMode(current_data_mode_);
  SimTime air = FrameDuration(cf_mode, kCfEndBytes);
  if (scheduler_->Now() + air >= rts_reservation_until_) {
    return;  // the reservation runs out before the truncation could land
  }
  WifiFrame cf;
  cf.type = WifiFrameType::kCfEnd;
  cf.ta = address_;
  cf.ra = MacAddress::Broadcast();
  // duration_field stays zero: a CF-End reserves nothing, it only releases.
  Ppdu ppdu;
  ppdu.aggregated = false;
  ppdu.mode = cf_mode;
  ppdu.mpdus.push_back(std::move(cf));
  if (phy_->Send(std::move(ppdu))) {
    ++stats_.cf_ends_sent;
  } else {
    // Half-duplex PHY mid-arrival at the exact timeout instant: rare, and
    // the per-overhearer probes remain the backstop.
    ++stats_.tx_dropped_phy_busy;
  }
}

void WifiMac::NotifyRateOutcome(StationId sid, bool success) {
  if (!rate_ctrl_.has_value()) {
    return;
  }
  ArfRateController::Move move = rate_ctrl_->OnTxOutcome(sid, success);
  if (move.up) {
    ++stats_.rate_up_moves;
  }
  if (move.down) {
    ++stats_.rate_down_moves;
  }
}

void WifiMac::ReleaseDelivered(TxState& st, const OutstandingMpdu& mpdu) {
  st.consecutive_give_ups = 0;  // the peer is demonstrably alive
  if (mpdu.retries == 0) {
    ++stats_.mpdus_delivered_first_try;
  } else {
    ++stats_.mpdus_delivered_retried;
  }
  if (on_mpdu_delivered && mpdu.frame.packet.has_value()) {
    on_mpdu_delivered(*mpdu.frame.packet, mpdu.frame.ra);
  }
}

void WifiMac::HandleBlockAck(const WifiFrame& frame) {
  if (phase_ != TxPhase::kAwaitingResponse || frame.ta != current_dest_) {
    return;  // stale/unexpected response
  }
  scheduler_->Cancel(response_timeout_event_);
  response_timeout_event_ = kInvalidEventId;
  if (current_dest_gone_) {
    // Response from a peer we removed mid-exchange (a clean leave can race
    // an in-flight Block ACK): the exchange ends, its state is gone.
    current_dest_gone_ = false;
    EngineFor(current_ac_).NotifyTxSuccess();
    FinishExchange();
    return;
  }

  TxState& st = tx_[current_dest_sid_];
  st.bar_retries = 0;
  st.bar_pending = false;
  st.sync_pending = false;

  CHECK(frame.ba.has_value());
  const BlockAckInfo& ba = *frame.ba;
  auto acked = [&](uint16_t seq) {
    uint16_t dist = SeqDistance(ba.start_seq, seq);
    if (dist < 64) {
      return (ba.bitmap >> dist & 1) != 0;
    }
    // Behind the bitmap start: the recipient has moved past it.
    return SeqDistance(seq, ba.start_seq) < kSeqModulo / 2;
  };

  // Release acked MPDUs in window order. (on_mpdu_delivered consumers are
  // order-insensitive across seqs; holding `st` across the callback is safe
  // because nothing on that path enqueues — see tx_ growth note in the
  // header.)
  for (uint16_t i = 0;
       i < kMaxAmpduMpdus && st.outstanding_count > 0; ++i) {
    uint16_t seq = SeqAdd(st.win_start, i);
    OutstandingMpdu* out = st.FindOutstanding(seq);
    if (out == nullptr || !acked(seq)) {
      continue;
    }
    ReleaseDelivered(st, *out);
    st.EraseOutstanding(seq);
  }
  // Un-acked MPDUs that were transmitted in this batch count a retry.
  for (uint16_t seq : current_batch_seqs_) {
    OutstandingMpdu* out = st.FindOutstanding(seq);
    if (out == nullptr) {
      continue;
    }
    if (++out->retries > config_.mpdu_retry_limit) {
      ++stats_.mpdus_dropped_retry_limit;
      st.EraseOutstanding(seq);
    }
  }
  // Advance the originator window to the oldest un-acked MPDU.
  if (st.outstanding_count == 0) {
    st.win_start = st.next_seq;
  } else {
    for (uint16_t i = 0; i < kMaxAmpduMpdus; ++i) {
      uint16_t seq = SeqAdd(st.win_start, i);
      if (st.FindOutstanding(seq) != nullptr) {
        st.win_start = seq;
        break;
      }
    }
  }
  UpdateServiceRing(st);

  if (current_all_tcp_acks_) {
    stats_.tcp_ack_ll_ack_overhead_ns +=
        (scheduler_->Now() - tx_end_time_).ns();
  }
  if (!current_is_bar_) {
    NotifyRateOutcome(current_dest_sid_, /*success=*/true);
  }
  EngineFor(current_ac_).NotifyTxSuccess();
  FinishExchange();
}

void WifiMac::HandleAck(const WifiFrame& frame) {
  if (phase_ != TxPhase::kAwaitingResponse || frame.ta != current_dest_) {
    return;
  }
  scheduler_->Cancel(response_timeout_event_);
  response_timeout_event_ = kInvalidEventId;
  if (current_dest_gone_) {
    current_dest_gone_ = false;
    EngineFor(current_ac_).NotifyTxSuccess();
    FinishExchange();
    return;
  }

  TxState& st = tx_[current_dest_sid_];
  if (st.single_inflight.has_value()) {
    ReleaseDelivered(st, *st.single_inflight);
    st.single_inflight.reset();
  }
  st.sync_pending = false;
  UpdateServiceRing(st);
  if (current_all_tcp_acks_) {
    stats_.tcp_ack_ll_ack_overhead_ns +=
        (scheduler_->Now() - tx_end_time_).ns();
  }
  NotifyRateOutcome(current_dest_sid_, /*success=*/true);
  EngineFor(current_ac_).NotifyTxSuccess();
  FinishExchange();
}

void WifiMac::HandleResponseTimeout() {
  CHECK(phase_ == TxPhase::kAwaitingResponse);
  ++stats_.response_timeouts;
  EngineFor(current_ac_).NotifyTxFailure();
  if (current_dest_gone_) {
    current_dest_gone_ = false;
    phase_ = TxPhase::kIdle;
    MaybeRequestAccess();
    return;
  }
  if (!current_is_bar_) {
    // A lost data exchange (the response never came) is the ARF failure
    // signal; BAR outcomes happen at a basic control rate and say nothing
    // about the data rate.
    NotifyRateOutcome(current_dest_sid_, /*success=*/false);
  }

  TxState& st = tx_[current_dest_sid_];
  if (current_is_bar_) {
    if (++st.bar_retries > config_.bar_retry_limit) {
      GiveUpBlockAck(st);
    } else {
      st.bar_pending = true;
    }
  } else if (current_aggregated_) {
    // No Block ACK for a data batch: recover via BAR (§3.4, Figs 5-8).
    st.bar_pending = true;
  } else if (st.single_inflight.has_value()) {
    if (++st.single_inflight->retries > config_.mpdu_retry_limit) {
      ++stats_.mpdus_dropped_retry_limit;
      st.single_inflight.reset();
      NoteGiveUp(st);
    }
  }
  UpdateServiceRing(st);
  phase_ = TxPhase::kIdle;
  MaybeRequestAccess();
}

void WifiMac::GiveUpBlockAck(TxState& st) {
  ++stats_.ba_agreement_give_ups;
  stats_.mpdus_dropped_retry_limit += st.outstanding_count;
  st.ClearOutstanding();
  st.win_start = st.next_seq;
  st.bar_pending = false;
  st.bar_retries = 0;
  // Tell the client we moved on without its Block ACK so it keeps its
  // retained compressed TCP ACKs (SYNC bit, Fig 8).
  st.sync_pending = true;
  NoteGiveUp(st);
}

void WifiMac::NoteGiveUp(TxState& st) {
  if (config_.dead_peer_flush_threshold <= 0) {
    return;  // disabled: legacy behaviour, retry/BAR paths only
  }
  if (++st.consecutive_give_ups < config_.dead_peer_flush_threshold) {
    return;
  }
  // The peer has eaten several full retry ladders in a row without a
  // single delivery: treat it as gone and stop burning airtime on its
  // queue. If it comes back, traffic re-enqueues and service resumes.
  st.consecutive_give_ups = 0;
  ++stats_.dead_peer_flushes;
  stats_.dead_peer_flushed_packets += FlushStation(st);
}

void WifiMac::FinishExchange() {
  phase_ = TxPhase::kIdle;
  EngineFor(current_ac_).DrawPostTxBackoff();
  MaybeRequestAccess();
}

// --- recipient pipeline ---------------------------------------------------------

void WifiMac::OnPpduReceived(const Ppdu& ppdu,
                             const std::vector<bool>& mpdu_ok) {
  ResolveNavProbe();
  ForEachEngine([](DcfEngine& engine) { engine.NotifyRxOk(); });
  size_t first_ok = 0;
  while (first_ok < mpdu_ok.size() && !mpdu_ok[first_ok]) {
    ++first_ok;
  }
  CHECK_LT(first_ok, mpdu_ok.size());
  const WifiFrame& first = ppdu.mpdus[first_ok];

  if (first.type == WifiFrameType::kCfEnd) {
    // NAV truncation: the reservation holder announces the exchange is
    // over. Broadcast-addressed, so it is handled before the ra check.
    nav_provisional_ = false;
    if (scheduler_->Now() < nav_until_) {
      ++stats_.cf_end_truncations;
      nav_until_ = scheduler_->Now();
      if (!medium_busy_reported_) {
        // Re-date the announced idle start to now with a zero-length busy
        // pulse — the announcement machinery only ever extends on its own.
        reported_idle_from_ = scheduler_->Now();
        ForEachEngine([this](DcfEngine& engine) {
          engine.NotifyMediumBusy();
          engine.NotifyMediumIdleFrom(reported_idle_from_);
        });
      }
    }
    return;
  }

  if (first.ra != address_) {
    // Not for us: honour the NAV reservation.
    if (!first.duration_field.IsZero()) {
      SimTime until = scheduler_->Now() + first.duration_field;
      if (first.type == WifiFrameType::kRts) {
        // 802.11 NAV-reset rule: an RTS reservation is provisional until
        // the exchange actually starts. If the probe window passes in
        // silence, the CTS never came and the reservation is dead air.
        // Armed BEFORE SetNav so the coalesced path's idle announcement
        // below advertises the probe deadline, not the full RTS horizon.
        ArmNavResetProbe(until, ppdu.mode);
      }
      SetNav(until);
      if (nav_provisional_ && nav_probe_value_ == until &&
          !medium_busy_reported_ &&
          reported_idle_from_ != nav_probe_deadline_) {
        // SetNav's pulse missed the provisional deadline (equal-horizon
        // no-op, or a standing reservation already announced further out):
        // re-date explicitly. This is the same zero-length pulse the eager
        // probe delivers at its deadline, moved to decode time; it cannot
        // draw backoff (pending access here implies an earlier busy edge
        // already drew it).
        reported_idle_from_ = nav_probe_deadline_;
        ForEachEngine([this](DcfEngine& engine) {
          engine.NotifyMediumBusy();
          engine.NotifyMediumIdleFrom(nav_probe_deadline_);
        });
      }
    }
    return;
  }

  switch (first.type) {
    case WifiFrameType::kData:
      HandleDataPpdu(ppdu, mpdu_ok);
      break;
    case WifiFrameType::kBlockAck:
      if (hack_hooks_ != nullptr && !first.hack_payload.empty()) {
        hack_hooks_->OnAckPayload(first.ta, first.hack_payload);
      }
      HandleBlockAck(first);
      break;
    case WifiFrameType::kAck:
      if (hack_hooks_ != nullptr && !first.hack_payload.empty()) {
        hack_hooks_->OnAckPayload(first.ta, first.hack_payload);
      }
      HandleAck(first);
      break;
    case WifiFrameType::kBlockAckReq:
      HandleBar(first, ppdu.mode);
      break;
    case WifiFrameType::kRts:
      HandleRts(first, ppdu.mode);
      break;
    case WifiFrameType::kCts:
      HandleCts(first);
      break;
    case WifiFrameType::kCfEnd:
      break;  // handled above (broadcast ra never reaches this switch)
  }
}

// An RTS addressed to us asks for the medium. 802.11's virtual carrier
// sense rule: only answer if our NAV shows the medium free — a station
// inside someone else's reservation staying silent is exactly what makes
// the reservation mean anything. Being mid-exchange ourselves suppresses
// the CTS for the same reason.
void WifiMac::HandleRts(const WifiFrame& frame,
                        const WifiMode& eliciting_mode) {
  if (phase_ != TxPhase::kIdle || scheduler_->Now() < nav_until_) {
    ++stats_.rts_ignored_busy;
    return;
  }
  WifiMode cts_mode = ControlResponseMode(eliciting_mode);
  SimTime consumed = timings_.sifs + FrameDuration(cts_mode, kCtsBytes);
  WifiFrame cts;
  cts.type = WifiFrameType::kCts;
  cts.ta = address_;
  cts.ra = frame.ta;
  // The CTS re-advertises what is left of the RTS reservation, so stations
  // that hear only the CTS still set a covering NAV.
  cts.duration_field = frame.duration_field > consumed
                           ? frame.duration_field - consumed
                           : SimTime::Zero();
  ScheduleResponse(std::move(cts), eliciting_mode);
}

void WifiMac::HandleDataPpdu(const Ppdu& ppdu,
                             const std::vector<bool>& mpdu_ok) {
  MacAddress from = ppdu.transmitter();
  RxState& rx = RxFor(stations_.Intern(from));
  const WifiMode& eliciting_mode = ppdu.mode;

  if (!ppdu.aggregated) {
    const WifiFrame& frame = ppdu.first();
    CHECK(mpdu_ok[0]);
    ++stats_.data_mpdus_received;
    bool duplicate =
        rx.has_last_single && frame.seq == rx.last_single_seq;
    // The MORE DATA / SYNC state must reach the driver *before* the packet
    // reaches the stack: the TCP ACKs this delivery generates are
    // classified under this batch's MORE DATA bit (paper Fig 3).
    if (hack_hooks_ != nullptr) {
      hack_hooks_->OnDataPpdu(from, /*aggregated=*/false,
                              /*has_new_mpdu=*/!duplicate, frame.more_data,
                              frame.sync);
    }
    if (duplicate) {
      ++stats_.duplicate_mpdus_discarded;
    } else {
      rx.last_single_seq = frame.seq;
      rx.has_last_single = true;
      if (on_rx_packet && frame.packet.has_value()) {
        on_rx_packet(*frame.packet, from);
      }
    }
    WifiFrame ack;
    ack.type = WifiFrameType::kAck;
    ack.ta = address_;
    ack.ra = from;
    ScheduleResponse(std::move(ack), eliciting_mode);
    return;
  }

  // A SYNC batch announces the originator abandoned its Block ACK state
  // (BAR retries exhausted, everything before its window start dropped).
  // Re-sync the reorder window to the advertised start — the in-sim
  // analogue of the standard's BAR window flush — or the stale holes would
  // hold back delivery of every later in-window MPDU forever. The target
  // rides every MPDU (sync_start_seq), so it survives partial decodes.
  {
    size_t lead = 0;
    while (lead < mpdu_ok.size() && !mpdu_ok[lead]) {
      ++lead;
    }
    const WifiFrame& first_decoded = ppdu.mpdus[lead];
    if (first_decoded.sync) {
      uint16_t dist = SeqDistance(rx.win_start, first_decoded.sync_start_seq);
      if (dist != 0 && dist < kSeqModulo / 2) {
        AdvanceRxWindow(rx, from, first_decoded.sync_start_seq);
      }
    }
  }

  // Pass 1: mark arrivals in the scoreboard (no upper-layer delivery yet).
  bool any_new = false;
  bool more_data = false;
  bool sync = false;
  for (size_t i = 0; i < ppdu.mpdus.size(); ++i) {
    if (!mpdu_ok[i]) {
      continue;
    }
    const WifiFrame& mpdu = ppdu.mpdus[i];
    more_data = mpdu.more_data;
    sync = mpdu.sync;
    ++stats_.data_mpdus_received;
    uint16_t seq = mpdu.seq;
    if (!SeqInWindow(rx.win_start, seq, kMaxAmpduMpdus)) {
      if (SeqDistance(rx.win_start, seq) < kSeqModulo / 2) {
        // Ahead of the window: slide so `seq` becomes the window's end.
        AdvanceRxWindow(rx, from,
                        SeqAdd(seq, -(static_cast<int>(kMaxAmpduMpdus) - 1)));
      } else if (SeqDistance(seq, rx.win_start) >
                 4 * static_cast<uint16_t>(kMaxAmpduMpdus)) {
        // Far behind the window: no retransmission can lag this much (an
        // originator only resends seqs inside its own 64-wide outstanding
        // window). The peer's MAC restarted and is counting from zero
        // again — hard-resync instead of blackholing the stream until its
        // sequence numbers climb back into range.
        ++stats_.rx_window_resyncs;
        rx = RxState{};
        rx.win_start = seq;
      } else {
        ++stats_.duplicate_mpdus_discarded;
        continue;
      }
    }
    size_t slot = seq % kMaxAmpduMpdus;
    uint64_t bit = uint64_t{1} << slot;
    if ((rx.received_bits & bit) == 0) {
      rx.received_bits |= bit;
      any_new = true;
      if (mpdu.packet.has_value()) {
        if (rx.reorder.empty()) {
          rx.reorder.resize(kMaxAmpduMpdus);
        }
        rx.reorder[slot] = *mpdu.packet;
      }
    } else {
      ++stats_.duplicate_mpdus_discarded;
    }
  }

  // The MORE DATA / SYNC state must reach the driver *before* the packets
  // reach the stack: the TCP ACKs the deliveries below generate are
  // classified under this batch's MORE DATA bit (paper Fig 3).
  if (hack_hooks_ != nullptr) {
    hack_hooks_->OnDataPpdu(from, /*aggregated=*/true, any_new, more_data,
                            sync);
  }

  // Pass 2: deliver in order; this is where the receiver's TCP ACKs are
  // generated and (under HACK) staged for the next LL ACK.
  DeliverContiguous(rx, from);

  WifiFrame ba;
  ba.type = WifiFrameType::kBlockAck;
  ba.ta = address_;
  ba.ra = from;
  ba.ba = BlockAckInfo{rx.win_start, BuildBitmap(rx)};
  ScheduleResponse(std::move(ba), eliciting_mode);
}

void WifiMac::HandleBar(const WifiFrame& frame,
                        const WifiMode& eliciting_mode) {
  RxState& rx = RxFor(stations_.Intern(frame.ta));
  uint16_t dist = SeqDistance(rx.win_start, frame.bar_start_seq);
  if (dist != 0 && dist < kSeqModulo / 2) {
    AdvanceRxWindow(rx, frame.ta, frame.bar_start_seq);
  }
  WifiFrame ba;
  ba.type = WifiFrameType::kBlockAck;
  ba.ta = address_;
  ba.ra = frame.ta;
  ba.ba = BlockAckInfo{rx.win_start, BuildBitmap(rx)};
  // Respond at the control-response rate of the BAR as actually received.
  // (This used to assume every BAR arrived at 24 Mbps; at data rates below
  // 24 Mbps the BAR goes out at 12 or 6 Mbps and the old reply at 24 Mbps
  // both violated the control-response rule and overshot the duration the
  // BAR sender had reserved for it.)
  ScheduleResponse(std::move(ba), eliciting_mode);
}

uint64_t WifiMac::BuildBitmap(const RxState& rx) const {
  // Scoreboard bit i is seq (win_start + i); the stored bitmap keys bits by
  // seq % 64, so the Block ACK view is a rotation.
  return std::rotr(rx.received_bits,
                   static_cast<int>(rx.win_start % kMaxAmpduMpdus));
}

void WifiMac::AdvanceRxWindow(RxState& rx, MacAddress from,
                              uint16_t new_start) {
  // Slide towards new_start, delivering anything buffered that the window
  // passes (seq order). After 64 steps every slot has been visited, so
  // larger slides finish by jumping.
  uint16_t steps = SeqDistance(rx.win_start, new_start);
  uint16_t limit = std::min<uint16_t>(steps, kMaxAmpduMpdus);
  for (uint16_t i = 0; i < limit; ++i) {
    uint16_t seq = SeqAdd(rx.win_start, i);
    size_t slot = seq % kMaxAmpduMpdus;
    if (!rx.reorder.empty() && rx.reorder[slot].has_value()) {
      if (on_rx_packet) {
        on_rx_packet(std::move(*rx.reorder[slot]), from);
      }
      rx.reorder[slot].reset();
    }
    rx.received_bits &= ~(uint64_t{1} << slot);
  }
  rx.win_start = new_start;
  DeliverContiguous(rx, from);
}

void WifiMac::DeliverContiguous(RxState& rx, MacAddress from) {
  while ((rx.received_bits >> (rx.win_start % kMaxAmpduMpdus)) & 1) {
    size_t slot = rx.win_start % kMaxAmpduMpdus;
    if (!rx.reorder.empty() && rx.reorder[slot].has_value()) {
      if (on_rx_packet) {
        on_rx_packet(std::move(*rx.reorder[slot]), from);
      }
      rx.reorder[slot].reset();
    }
    rx.received_bits &= ~(uint64_t{1} << slot);
    rx.win_start = SeqAdd(rx.win_start, 1);
  }
}

void WifiMac::ScheduleResponse(WifiFrame response,
                               const WifiMode& eliciting_mode) {
  WifiMode resp_mode = ControlResponseMode(eliciting_mode);
  SimTime delay = timings_.sifs + config_.extra_ack_delay;
  ++responses_pending_;
  UpdateMediumState();
  scheduler_->ScheduleIn(
      delay,
      [this, response = std::move(response), resp_mode,
       epoch = reset_epoch_]() mutable {
        if (epoch != reset_epoch_) {
          return;  // radio reset while the response sat in the SIFS gap
                   // (responses_pending_ was already zeroed by the reset)
        }
        --responses_pending_;
        bool can_carry_hack = response.type == WifiFrameType::kAck ||
                              response.type == WifiFrameType::kBlockAck;
        if (hack_hooks_ != nullptr && can_carry_hack) {
          std::vector<uint8_t> payload =
              hack_hooks_->BuildAckPayload(response.ra);
          if (!payload.empty()) {
            size_t base_bytes = response.SizeBytes();
            response.hack_payload = std::move(payload);
            SimTime extra = FrameDuration(resp_mode, response.SizeBytes()) -
                            FrameDuration(resp_mode, base_bytes);
            ++stats_.hack_payloads_sent;
            stats_.hack_payload_bytes_sent += response.hack_payload.size();
            // First payload byte is the record-count envelope.
            stats_.hack_payload_records += response.hack_payload[0];
            stats_.rohc_payload_airtime_ns += extra.ns();
            if (extra <= timings_.difs) {
              ++stats_.hack_payloads_fit_in_aifs;
            }
          }
        }
        if (response.type == WifiFrameType::kAck) {
          ++stats_.acks_sent;
        } else if (response.type == WifiFrameType::kCts) {
          ++stats_.cts_sent;
        } else {
          ++stats_.block_acks_sent;
        }
        Ppdu ppdu;
        ppdu.aggregated = false;
        ppdu.mode = resp_mode;
        ppdu.mpdus.push_back(std::move(response));
        if (!phy_->Send(std::move(ppdu))) {
          ++stats_.tx_dropped_phy_busy;
        }
        UpdateMediumState();
      },
      EventClass::kMacTimer);
}

// --- medium state -----------------------------------------------------------------

void WifiMac::OnRxCorrupted() {
  ++stats_.rx_corrupted_events;
  ForEachEngine([](DcfEngine& engine) { engine.NotifyRxFailed(); });
}

void WifiMac::OnCcaBusy() {
  if (nav_provisional_) {
    if (scheduler_->Now() < nav_probe_deadline_) {
      // PHY activity inside the probe window: the reserved exchange is
      // happening, the reservation stands and the provisional marker dies.
      nav_provisional_ = false;
    } else {
      // The window closed in silence before this edge arrived. Deliver the
      // verdict first — the eager probe event, inserted at RTS decode and
      // therefore ahead in FIFO order, fires before a same-nanosecond edge.
      FinishNavProbe();
    }
  }
  phy_busy_ = true;
  ++cca_busy_edges_;
  if (nav_reset_probe_event_ != kInvalidEventId) {
    // Legacy mode: PHY activity inside the probe window cancels the armed
    // probe (O(1) lazy wheel retire), keeping it off the executed-event
    // path. The coalesced default above needs no event to cancel at all.
    scheduler_->Cancel(nav_reset_probe_event_);
    nav_reset_probe_event_ = kInvalidEventId;
  }
  UpdateMediumState();
}

void WifiMac::OnCcaIdle() {
  // Resolve a matured provisional probe against the pre-edge carrier state:
  // with the carrier busy continuously since before the arm (no edge in
  // between), the eager probe fired mid-carrier and stood down — the
  // verdict must see phy_busy_ the same way.
  ResolveNavProbe();
  phy_busy_ = false;
  UpdateMediumState();
}

void WifiMac::SetNav(SimTime until) {
  if (until <= nav_until_) {
    return;
  }
  nav_until_ = until;
  UpdateMediumState();
}

void WifiMac::ArmNavResetProbe(SimTime rts_nav_until,
                               const WifiMode& rts_mode) {
  // Probe window per the standard: 2*SIFS + the CTS airtime (at the RTS's
  // control-response rate) + 2 slots after the RTS reception.
  WifiMode cts_mode = ControlResponseMode(rts_mode);
  SimTime window = 2 * timings_.sifs + FrameDuration(cts_mode, kCtsBytes) +
                   2 * timings_.slot;
  if (scheduler_->Now() + window >= rts_nav_until) {
    return;  // nothing left to reclaim by the time the probe could fire
  }
  if (!config_.legacy_nav_probe_events) {
    // Coalesced form (default): no event at all. The probe is a deadline
    // consulted lazily — any CCA busy edge before it confirms the
    // reservation, and the first state read past it delivers the verdict.
    // This is the PR 3 lazy-NAV trick applied to the last NAV event storm:
    // at 1000 stations the armed form cost one scheduled probe per
    // overhearer per RTS even though almost all were cancelled.
    nav_provisional_ = true;
    nav_probe_deadline_ = scheduler_->Now() + window;
    nav_probe_value_ = rts_nav_until;
    return;
  }
  if (nav_reset_probe_event_ != kInvalidEventId) {
    scheduler_->Cancel(nav_reset_probe_event_);
  }
  // One armed probe per overheard decoded RTS; almost always cancelled a
  // SIFS later by the CTS's own busy edge (O(1) lazy wheel cancel), so the
  // executed-event cost stays near zero — see docs/perf.md on why nothing
  // on the per-PPDU path may schedule work that routinely fires.
  nav_reset_probe_event_ = scheduler_->ScheduleIn(
      window,
      [this, rts_nav_until, edges = cca_busy_edges_]() {
        nav_reset_probe_event_ = kInvalidEventId;
        HandleNavResetProbe(rts_nav_until, edges);
      },
      EventClass::kNavTimer);
}

void WifiMac::HandleNavResetProbe(SimTime armed_nav_value,
                                  uint64_t armed_edges) {
  if (phy_busy_ || cca_busy_edges_ != armed_edges) {
    return;  // the exchange (or anything else) hit the air: NAV stands
  }
  if (nav_until_ != armed_nav_value) {
    return;  // another frame moved the NAV since; not ours to reclaim
  }
  ++stats_.nav_resets;
  nav_until_ = scheduler_->Now();
  if (!medium_busy_reported_) {
    // The engine was told "idle from <RTS horizon>"; re-date that to now
    // with a zero-length busy pulse (a busy edge followed by an immediate
    // idle edge) — the medium-state change the eager path would have seen.
    reported_idle_from_ = scheduler_->Now();
    ForEachEngine([this](DcfEngine& engine) {
      engine.NotifyMediumBusy();
      engine.NotifyMediumIdleFrom(reported_idle_from_);
    });
  }
}

void WifiMac::ResolveNavProbe() {
  if (nav_provisional_ && scheduler_->Now() > nav_probe_deadline_) {
    FinishNavProbe();
  }
}

void WifiMac::FinishNavProbe() {
  // The probe window has closed: same verdict the armed probe event
  // delivers in legacy mode. phy_busy_ here means the carrier has been
  // busy continuously since before the arm (an edge would have resolved
  // the probe already), so the reservation stands.
  nav_provisional_ = false;
  if (phy_busy_) {
    return;
  }
  if (nav_until_ != nav_probe_value_) {
    return;  // another frame moved the NAV since; not ours to reclaim
  }
  ++stats_.nav_resets;
  // NAV collapses to the instant the eager probe would have reset it at.
  // No engine pulse is needed: while the provisional probe stood, every
  // idle announcement already carried the deadline as its horizon.
  nav_until_ = nav_probe_deadline_;
}

// Medium-state reporting, lazy-NAV form. The DCF engine sees the same busy
// edges, at the same times, as the historical eager path — that keeps its
// backoff-draw points (and therefore the RNG stream) identical — but idle
// is announced as "idle from T" at the moment the carrier drops, where T is
// the NAV horizon. No NAV-expiry event is ever scheduled: in a dense cell
// that event used to fire once per station per overheard PPDU and was the
// dominant ev/PPDU term (see docs/perf.md).
void WifiMac::UpdateMediumState() {
  ResolveNavProbe();
  SimTime now = scheduler_->Now();
  if (phy_busy_ || responses_pending_ > 0) {
    if (!medium_busy_reported_) {
      medium_busy_reported_ = true;
      ForEachEngine([](DcfEngine& engine) { engine.NotifyMediumBusy(); });
    }
    return;
  }
  // A standing provisional probe caps the horizon at its deadline: if the
  // window passes in silence the NAV collapses there, and if the exchange
  // does start, its own busy edge arrives before any grant armed off the
  // optimistic announcement could fire (the edge is at most SIFS + CTS
  // into a window that is 2*SIFS + CTS + 2 slots long).
  SimTime horizon = (nav_provisional_ && nav_until_ == nav_probe_value_)
                        ? nav_probe_deadline_
                        : nav_until_;
  bool nav_busy = now < horizon;
  SimTime idle_from = nav_busy ? horizon : now;
  if (!medium_busy_reported_ && nav_busy &&
      idle_from > reported_idle_from_) {
    // NAV extended past the previously announced idle start without a CCA
    // edge in between (SetNav right after a delivery): the eager path
    // produced a busy edge here, and it is a backoff-draw point — keep it.
    medium_busy_reported_ = true;
    ForEachEngine([](DcfEngine& engine) { engine.NotifyMediumBusy(); });
  }
  if (medium_busy_reported_) {
    medium_busy_reported_ = false;
    reported_idle_from_ = idle_from;
    ForEachEngine(
        [idle_from](DcfEngine& engine) { engine.NotifyMediumIdleFrom(idle_from); });
  }
}

}  // namespace hacksim
