// 802.11 MAC: DCF/EDCA access, stop-and-wait single-MPDU exchanges
// (802.11a) and A-MPDU + Block ACK exchanges (802.11n), Block ACK Request
// recovery, RTS/CTS with NAV-based virtual carrier sensing (rts_threshold),
// per-station ARF rate adaptation, NAV, EIFS, per-destination queues, and
// the two header bits HACK relies on: MORE DATA (standard, §3.2) and SYNC
// (HACK extension, §3.4). See docs/mac.md for the RTS/CTS sequencing and
// the rate-adaptation algorithm.
//
// The MAC is symmetric: an AP is simply a station with several destination
// queues. HACK integration is confined to the three HackHooks touch points;
// with hooks unset this is a faithful "stock" 802.11 MAC.
//
// Medium visibility is strictly per-receiver: CCA busy/idle edges arrive
// from this station's own PHY, and NAV is set only from frames this station
// actually decoded. On the legacy fixed-loss channel every station hears
// every PPDU, so those edges are cell-global in practice; on a
// range-limited channel (docs/channel.md) a hidden transmitter produces
// *no* edge here at all — carrier sense simply never fires, which is
// exactly why the RTS/CTS path matters there: the CTS from the receiver
// plants the NAV in regions the data transmitter cannot reach. Nothing in
// the MAC special-cases this; the same lazy idle-edge re-arm serves both
// channels, and stays pick-for-pick identical in legacy mode (dcf_test).
//
// Station addressing is dense: peers are interned into a StationTable at
// first contact (or ahead of time via Associate), and all per-peer TX/RX
// state lives in flat vectors indexed by StationId. Destination scheduling
// is an O(1) cursor over an ActiveSlotRing of stations with pending work,
// and the per-MPDU outstanding/reorder state is kept in 64-entry rings
// sized to the Block ACK window — no per-packet map walks anywhere, which
// is what lets one MAC serve 1000+ stations (see docs/perf.md).
#ifndef SRC_MAC80211_WIFI_MAC_H_
#define SRC_MAC80211_WIFI_MAC_H_

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/mac80211/dcf.h"
#include "src/mac80211/hack_hooks.h"
#include "src/mac80211/station_table.h"
#include "src/phy80211/wifi_phy.h"
#include "src/stats/mac_stats.h"

namespace hacksim {

// Per-access-category EDCA parameter row (802.11e): AIFS = SIFS + aifsn
// slots, contention window bounds, and the TXOP limit the A-MPDU builder
// sizes batches against. See docs/qos.md for the default table and the
// internal-contention rule.
struct EdcaAcParams {
  uint8_t aifsn = 3;
  uint32_t cw_min = 15;
  uint32_t cw_max = 1023;
  // Zero means "use WifiMacConfig::txop_limit" (the legacy global limit).
  SimTime txop_limit;
};

// 802.11e-2005 Table 7-37 defaults (for a CWmin 15 / CWmax 1023 PHY):
// VO {aifsn 2, CW 3/7, TXOP 1.504 ms}, VI {aifsn 2, CW 7/15, TXOP 3.008 ms},
// BE {aifsn 3, CW 15/1023}, BK {aifsn 7, CW 15/1023}. The BE row is pinned
// to the standard's base timings — the legacy DCF engine *is* the BE engine,
// which is the core of the edca_enabled=false bit-identity argument.
std::array<EdcaAcParams, kNumAcs> DefaultEdcaTable();

// Maps a packet to its access category via the IP precedence bits
// (AcForTos); packets without an IP header ride best-effort.
uint8_t ClassifyAc(const Packet& packet);

struct WifiMacConfig {
  WifiStandard standard = WifiStandard::k80211n;
  WifiMode data_mode;
  bool enable_ampdu = true;
  // Paper §4.3: AP buffers 126 packets per flow (3 batches of 42).
  size_t per_dest_queue_limit = 126;
  SimTime txop_limit = SimTime::Millis(4);
  int mpdu_retry_limit = 7;
  int bar_retry_limit = 7;
  // RTS/CTS virtual carrier sense: data PPDUs whose PSDU exceeds this many
  // bytes are preceded by an RTS/CTS handshake whose Duration fields make
  // overhearing stations reserve (NAV) the whole exchange. 0 disables —
  // the default, and the legacy scenarios' bit-identical path.
  size_t rts_threshold = 0;
  // Consecutive CTS timeouts for one destination after which a single
  // exchange is sent unprotected (forward progress past a CTS-deaf peer).
  int rts_retry_limit = 7;
  // NAV-reset probe implementation. false (default) = coalesced: the probe
  // is one provisional deadline per overheard RTS reservation, consulted
  // lazily from dated CCA edges — zero scheduled events per overhearer.
  // true = the historical armed-probe event per overheard RTS, kept as the
  // pick-for-pick reference the coalesced path is tested against
  // (docs/mac.md).
  bool legacy_nav_probe_events = false;
  // CF-End truncation: after a CTS timeout the RTS originator broadcasts a
  // CF-End frame releasing the remainder of its dead reservation at every
  // overhearer — reclaiming reservations the per-station probes would miss
  // (any PHY activity in the probe window makes a probe stand down). Off by
  // default: the legacy bit-identical path sends nothing.
  bool enable_cf_end = false;
  // Per-station ARF rate adaptation over the standard's mode table;
  // data_mode becomes the starting rate. Off by default: every data PPDU
  // then goes out at data_mode exactly as before.
  bool enable_rate_adaptation = false;
  RateAdaptConfig rate_adapt;
  // SoRa quirks (§4.1): the receiver returns LL ACKs this much later than
  // SIFS, and the sender widens its ACK timeout to compensate.
  SimTime extra_ack_delay;
  SimTime extra_ack_timeout;
  // When > 0, response timeouts budget for HACK payload bytes appended to
  // LL ACKs by the peer.
  size_t max_hack_payload_bytes = 0;
  // Dead-peer detection: after this many *consecutive* exchange give-ups
  // for one destination (Block ACK agreement give-ups, or single-MPDU
  // retry-limit drops) the MAC flushes that destination's queue instead of
  // burning airtime on a peer that vanished. Any delivered MPDU resets the
  // streak. 0 disables — the default, and the legacy bit-identical path
  // (hidden-terminal runs legitimately hit give-ups on live peers).
  int dead_peer_flush_threshold = 0;
  // 802.11e EDCA. Off (default): one DCF engine, one queue per destination,
  // and every legacy output stays bit-identical (no extra engines are
  // constructed, no extra RNG forks are taken, no extra events fire). On:
  // four access categories (VO/VI/BE/BK) each with its own DCF engine
  // parameterised from `edca`, per-(destination, AC) queues, and internal
  // contention — same-instant grants resolve to the highest-priority AC,
  // losers re-draw as virtual collisions (docs/qos.md).
  bool edca_enabled = false;
  std::array<EdcaAcParams, kNumAcs> edca = DefaultEdcaTable();
};

class WifiMac final : public WifiPhyListener {
 public:
  WifiMac(Scheduler* scheduler, WifiPhy* phy, MacAddress address,
          WifiMacConfig config, Random rng);

  // Interns `peer` into the station table and pre-sizes its TX/RX state, so
  // scenario builders can hand out StationIds in a deterministic order
  // before traffic flows. Purely an optimisation hint: unknown peers are
  // interned lazily on first contact.
  void Associate(MacAddress peer);
  size_t station_count() const { return stations_.size(); }

  // Clean removal of a peer (station churn): flushes its queue and
  // outstanding state, releases its service slot and recycles its
  // StationId. Safe mid-exchange — an exchange currently addressed to the
  // peer is abandoned when its response/timeout resolves. No-op for
  // never-seen peers.
  void Disassociate(MacAddress peer);

  // Radio interface reset (crash, AP outage, or an explicit interface
  // bounce): cancels every pending MAC timer, drops all association,
  // queue, sequence and NAV state, and returns the MAC to a cold-boot
  // idle. The caller re-Associates peers afterwards as needed.
  void ResetRadioState();

  // Liveness probes for SimWatchdog: queued-or-in-flight work, and the
  // current NAV horizon (SimTime::Zero() when no reservation is held).
  bool HasBacklog() const {
    return !service_ring_.Empty() || phase_ != TxPhase::kIdle;
  }
  // Effective NAV horizon: a matured-but-unresolved coalesced probe counts
  // as already reclaimed (the MAC would resolve it on its next state read),
  // so the watchdog's NAV-leak check sees the same horizon either probe
  // implementation yields.
  SimTime nav_until() const {
    if (nav_provisional_ && !phy_busy_ && nav_until_ == nav_probe_value_ &&
        scheduler_->Now() > nav_probe_deadline_) {
      return nav_probe_deadline_;
    }
    return nav_until_;
  }

  // Upper-layer interface. Takes ownership: the packet is moved into the
  // per-destination queue (or dropped), never copied.
  void Enqueue(Packet&& packet, MacAddress dest);
  size_t QueueDepth(MacAddress dest) const;
  // Removes queued (not yet transmitted) packets matching `pred`; returns
  // the number removed. Used by opportunistic HACK to pull vanilla TCP ACKs
  // that were delivered via an LL ACK instead.
  size_t RemoveQueued(MacAddress dest,
                      const std::function<bool(const Packet&)>& pred);

  std::function<void(Packet, MacAddress from)> on_rx_packet;

  // Fires when a data MPDU is confirmed delivered (LL-acknowledged by the
  // peer). HACK uses this to learn that a vanilla TCP ACK reached the AP —
  // the signal that the ROHC context is established there.
  std::function<void(const Packet&, MacAddress dest)> on_mpdu_delivered;

  void set_hack_hooks(HackHooks* hooks) { hack_hooks_ = hooks; }

  MacAddress address() const { return address_; }
  const WifiMacConfig& config() const { return config_; }
  const PhyTimings& timings() const { return timings_; }
  // Reading the counters is a state read: it delivers any matured
  // coalesced-probe verdict first, so nav_resets does not depend on which
  // probe implementation ran (a reservation dying right at sim end would
  // otherwise count only in legacy mode, where the armed event fires
  // unconditionally).
  MacStats& stats() {
    ResolveNavProbe();
    return stats_;
  }
  const MacStats& stats() const {
    const_cast<WifiMac*>(this)->ResolveNavProbe();
    return stats_;
  }

  // WifiPhyListener:
  void OnPpduReceived(const Ppdu& ppdu,
                      const std::vector<bool>& mpdu_ok) override;
  void OnRxCorrupted() override;
  void OnTxEnd(const Ppdu& ppdu) override;
  void OnCcaBusy() override;
  void OnCcaIdle() override;

 private:
  struct OutstandingMpdu {
    WifiFrame frame;
    int retries = 0;
  };

  // Originator-side state, per destination (indexed by StationId).
  //
  // Outstanding MPDUs live in a 64-slot ring keyed by seq % 64: every live
  // seq is inside [win_start, win_start + 64) (the Block ACK window), so
  // slots are collision-free and "iterate in window order" is a 64-step
  // walk from win_start.
  struct TxState {
    static constexpr uint32_t kNoServiceSlot = 0xFFFFFFFFu;

    std::deque<Packet> queue;
    uint16_t next_seq = 0;
    uint16_t win_start = 0;
    std::vector<std::optional<OutstandingMpdu>> outstanding;  // lazy, 64 slots
    size_t outstanding_count = 0;
    bool bar_pending = false;
    int bar_retries = 0;
    bool sync_pending = false;
    // Consecutive CTS timeouts; past the retry limit one exchange bypasses
    // RTS protection so a CTS-deaf peer cannot stall the queue forever.
    int rts_retries = 0;
    bool rts_bypass_once = false;
    std::optional<OutstandingMpdu> single_inflight;  // 802.11a stop-and-wait
    uint32_t service_slot = kNoServiceSlot;  // position in the service ring
    // Consecutive exchange give-ups with no delivery in between; feeds the
    // dead-peer flush (config.dead_peer_flush_threshold).
    int consecutive_give_ups = 0;
    // EDCA: lazily created per-AC staging queues. BE traffic — and ALL
    // traffic in legacy mode — stays in `queue` (the [kAcBe] slot is never
    // touched), so legacy stations never pay the allocation.
    std::unique_ptr<std::array<std::deque<Packet>, kNumAcs>> edca_queues;
    // AC of the most recent data exchange toward this destination. The
    // seq/Block-ACK window is shared across ACs (one agreement per peer, a
    // documented simplification vs per-TID agreements — docs/qos.md), so
    // BAR recovery and retransmission work is attributed to this AC.
    uint8_t recovery_ac = kAcBe;

    bool HasWork() const {
      return bar_pending || !queue.empty() || outstanding_count > 0 ||
             single_inflight.has_value() || HasEdcaBacklog();
    }
    bool HasEdcaBacklog() const {
      if (edca_queues == nullptr) {
        return false;
      }
      for (const std::deque<Packet>& q : *edca_queues) {
        if (!q.empty()) {
          return true;
        }
      }
      return false;
    }
    OutstandingMpdu* FindOutstanding(uint16_t seq);
    OutstandingMpdu& AddOutstanding(uint16_t seq, OutstandingMpdu mpdu);
    void EraseOutstanding(uint16_t seq);
    void ClearOutstanding();
  };

  // Recipient-side state, per transmitter (indexed by StationId). The
  // scoreboard is a 64-bit bitmap (bit = seq % 64) plus a matching 64-slot
  // reorder ring — the former std::set / std::map pair, windowed.
  struct RxState {
    uint16_t win_start = 0;
    uint64_t received_bits = 0;
    std::vector<std::optional<Packet>> reorder;  // lazy, 64 slots
    uint16_t last_single_seq = 0;
    bool has_last_single = false;
  };

  // kAwaitingCts sits between the RTS transmission and either the CTS (the
  // stored data PPDU then follows SIFS later) or the CTS timeout (which
  // re-enters backoff through the ordinary NotifyTxFailure path — no
  // special-case interaction with the lazy idle-edge re-arm).
  enum class TxPhase { kIdle, kTransmitting, kAwaitingCts, kAwaitingResponse };

  // --- station table ---------------------------------------------------------
  TxState& TxFor(StationId sid) {
    if (tx_.size() <= sid) {
      tx_.resize(sid + 1);
    }
    return tx_[sid];
  }
  RxState& RxFor(StationId sid) {
    if (rx_.size() <= sid) {
      rx_.resize(sid + 1);
    }
    return rx_[sid];
  }
  void EnsureServiceSlot(StationId sid, TxState& st);
  // Re-syncs the station's service-ring bit with TxState::HasWork(); call
  // after any mutation that can change it.
  void UpdateServiceRing(TxState& st);

  // --- EDCA ------------------------------------------------------------------
  // The engine contending for `ac`: the dedicated per-AC engine, or dcf_
  // for BE (and for every AC in legacy mode, where no per-AC engines
  // exist). dcf_ doubling as the BE engine is what keeps legacy runs
  // bit-identical: same engine, same RNG stream, same call sites.
  DcfEngine& EngineFor(uint8_t ac) {
    return edca_engines_[ac] != nullptr ? *edca_engines_[ac] : dcf_;
  }
  // Applies `fn` to every live engine — dcf_ plus any per-AC engines.
  // Medium-state transitions (busy/idle edges, EIFS, radio reset) broadcast
  // through this; exchange-lifecycle calls route through EngineFor().
  template <typename Fn>
  void ForEachEngine(Fn&& fn) {
    fn(dcf_);
    for (std::unique_ptr<DcfEngine>& engine : edca_engines_) {
      if (engine != nullptr) {
        fn(*engine);
      }
    }
  }
  // The staging queue for (station, ac): st.queue for BE and legacy mode,
  // the lazily created per-AC queue otherwise.
  std::deque<Packet>& SendQueue(TxState& st, uint8_t ac);
  // Whether `ac`'s engine has a reason to contend for this station: fresh
  // packets in its queue, or recovery work (BAR/outstanding/single) that
  // the AC of the original exchange owns.
  bool AcHasWork(const TxState& st, uint8_t ac) const;
  SimTime TxopLimitFor(uint8_t ac) const;

  // --- originator pipeline ---------------------------------------------------
  void MaybeRequestAccess();
  void OnAccessGranted(uint8_t ac);
  TxState* PickNextDest(uint8_t ac, StationId* sid_out);
  void StartExchange(StationId sid, TxState& st);
  Ppdu BuildDataPpdu(MacAddress dest, TxState& st);
  // Counts the data-PPDU stats and puts `ppdu` on the air (directly, or
  // SIFS after the CTS on the protected path).
  void TransmitDataPpdu(Ppdu ppdu);
  // Sends an RTS reserving the whole RTS-CTS-DATA-response exchange; the
  // data PPDU is parked in pending_data_ppdu_ until the CTS arrives.
  void SendRtsFor(Ppdu data_ppdu);
  void HandleCts(const WifiFrame& frame);
  void HandleCtsTimeout();
  void HandleResponseTimeout();
  void HandleBlockAck(const WifiFrame& frame);
  void HandleAck(const WifiFrame& frame);
  void FinishExchange();
  void ReleaseDelivered(TxState& st, const OutstandingMpdu& mpdu);
  void GiveUpBlockAck(TxState& st);
  // Counts a give-up towards the dead-peer streak and flushes the
  // destination's queue once the threshold is crossed.
  void NoteGiveUp(TxState& st);
  // Drops everything queued/outstanding for the station and returns the
  // number of upper-layer packets that died with it.
  size_t FlushStation(TxState& st);
  void NotifyRateOutcome(StationId sid, bool success);
  SimTime ResponseTimeoutDelay(bool block_ack_expected) const;
  SimTime CtsTimeoutDelay() const;

  // --- recipient pipeline ----------------------------------------------------
  void HandleDataPpdu(const Ppdu& ppdu, const std::vector<bool>& mpdu_ok);
  void HandleBar(const WifiFrame& frame, const WifiMode& eliciting_mode);
  void HandleRts(const WifiFrame& frame, const WifiMode& eliciting_mode);
  void ScheduleResponse(WifiFrame response, const WifiMode& eliciting_mode);
  void AdvanceRxWindow(RxState& rx, MacAddress from, uint16_t new_start);
  void DeliverContiguous(RxState& rx, MacAddress from);
  uint64_t BuildBitmap(const RxState& rx) const;

  // --- medium state -----------------------------------------------------------
  void UpdateMediumState();
  void SetNav(SimTime until);
  // Arms the 802.11 NAV-reset probe for an overheard RTS: if the medium
  // shows no PHY activity for 2*SIFS + CTS airtime + 2*slot after the RTS,
  // the reservation is dead (the CTS never came) and the NAV it set is
  // reclaimed.
  void ArmNavResetProbe(SimTime rts_nav_until, const WifiMode& rts_mode);
  void HandleNavResetProbe(SimTime armed_nav_value, uint64_t armed_edges);
  // Coalesced-probe resolution (default mode). ResolveNavProbe is the
  // passive form called from every state read: delivers the verdict once
  // the deadline has passed. FinishNavProbe is the verdict itself — the
  // same decision the armed probe event makes in legacy mode.
  void ResolveNavProbe();
  void FinishNavProbe();
  // Broadcasts a CF-End truncation after a CTS timeout if enabled and the
  // dead reservation still has enough air left to be worth reclaiming.
  void MaybeSendCfEnd();

  Scheduler* scheduler_;
  WifiPhy* phy_;
  MacAddress address_;
  WifiMacConfig config_;
  PhyTimings timings_;
  DcfEngine dcf_;
  // Per-AC engines, EDCA mode only. [kAcBe] stays null — dcf_ IS the BE
  // engine (see EngineFor); in legacy mode the whole array is null.
  std::array<std::unique_ptr<DcfEngine>, kNumAcs> edca_engines_;
  HackHooks* hack_hooks_ = nullptr;
  MacStats stats_;

  StationTable stations_;
  // Flat per-station state. tx_ grows only at transmit-side entry points
  // (Enqueue/Associate) and rx_ only at receive-side ones, so references
  // held across upper-layer callbacks (which may intern new stations by
  // enqueueing) never dangle.
  std::vector<TxState> tx_;
  std::vector<RxState> rx_;
  // Service ring: slot index -> station, assigned in first-enqueue order
  // (the legacy round_robin_ vector order), picked via an O(1) cursor.
  ActiveSlotRing service_ring_;
  std::vector<StationId> service_slot_station_;
  // EDCA: per-AC rings in slot lockstep with service_ring_ (same AddSlot /
  // ReleaseSlot history, so slot s means the same station everywhere); a
  // slot is active in ring[ac] iff AcHasWork(st, ac). Only maintained when
  // edca_enabled. service_ring_ stays the master "any work at all" ring
  // (HasBacklog, MaybeRequestAccess's cheap empty check).
  std::array<ActiveSlotRing, kNumAcs> ac_rings_;
  std::array<SimTime, kNumAcs> ac_request_time_{};

  // Rate adaptation (engaged only when config_.enable_rate_adaptation).
  std::span<const WifiMode> rate_table_;
  size_t data_mode_index_ = 0;
  std::optional<ArfRateController> rate_ctrl_;

  TxPhase phase_ = TxPhase::kIdle;
  // AC of the exchange in flight (kAcBe always in legacy mode); exchange
  // lifecycle feedback (TX success/failure, post-TX backoff, TXOP limit)
  // routes to EngineFor(current_ac_).
  uint8_t current_ac_ = kAcBe;
  MacAddress current_dest_;
  StationId current_dest_sid_ = kInvalidStationId;
  // The in-flight exchange's destination was disassociated mid-exchange:
  // when the response or timeout resolves, skip every per-station mutation
  // (the TxState was already reset and may belong to a new peer).
  bool current_dest_gone_ = false;
  // Bumped by ResetRadioState; SIFS-delayed closures (responses, the
  // CTS→data hop) capture it and become no-ops if a reset intervened.
  uint64_t reset_epoch_ = 0;
  bool current_is_bar_ = false;
  bool current_aggregated_ = false;
  bool current_all_tcp_acks_ = false;
  // TX mode of the exchange in flight (data rate, or data_mode for BARs);
  // response durations and timeouts derive from it.
  WifiMode current_data_mode_;
  size_t current_mode_index_ = 0;
  std::vector<uint16_t> current_batch_seqs_;
  // Data PPDU parked between RTS transmission and CTS reception.
  std::optional<Ppdu> pending_data_ppdu_;
  EventId response_timeout_event_ = kInvalidEventId;
  EventId cts_timeout_event_ = kInvalidEventId;
  SimTime access_request_time_;
  SimTime tx_end_time_;

  bool phy_busy_ = false;
  SimTime nav_until_;
  // Monotone count of CCA busy edges; the NAV-reset probe uses it to ask
  // "did any PHY activity follow the RTS?" without tracking timestamps.
  uint64_t cca_busy_edges_ = 0;
  EventId nav_reset_probe_event_ = kInvalidEventId;
  // Coalesced NAV-reset probe (default mode): one provisional deadline per
  // overheard RTS reservation instead of an armed event. A CCA busy edge
  // inside the window confirms the reservation (the exchange started); the
  // first state read past the deadline delivers the reclaim verdict.
  bool nav_provisional_ = false;
  SimTime nav_probe_deadline_;
  SimTime nav_probe_value_;  // the nav_until_ the probe would reclaim
  // End of the reservation advertised by the last RTS this MAC sent; a
  // CF-End truncation is only worth the air while it is still future.
  SimTime rts_reservation_until_;
  bool medium_busy_reported_ = false;
  // Idle start last announced to the DCF engine (Now() or a future
  // nav_until_). NAV expiry is never a scheduled event: the engine arms its
  // grant against the announced idle start directly (see UpdateMediumState).
  SimTime reported_idle_from_;
  // SIFS responses scheduled but not yet on the air. While non-zero the MAC
  // must not start its own exchanges: a real NIC's response logic runs
  // below the contention engine, and with delayed responses (the SoRa
  // quirk) a DCF grant could otherwise trample the pending LL ACK.
  int responses_pending_ = 0;
};

}  // namespace hacksim

#endif  // SRC_MAC80211_WIFI_MAC_H_
