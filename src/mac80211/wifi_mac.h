// 802.11 MAC: DCF/EDCA access, stop-and-wait single-MPDU exchanges
// (802.11a) and A-MPDU + Block ACK exchanges (802.11n), Block ACK Request
// recovery, NAV, EIFS, per-destination queues, and the two header bits HACK
// relies on: MORE DATA (standard, §3.2) and SYNC (HACK extension, §3.4).
//
// The MAC is symmetric: an AP is simply a station with several destination
// queues. HACK integration is confined to the three HackHooks touch points;
// with hooks unset this is a faithful "stock" 802.11 MAC.
#ifndef SRC_MAC80211_WIFI_MAC_H_
#define SRC_MAC80211_WIFI_MAC_H_

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/mac80211/dcf.h"
#include "src/mac80211/hack_hooks.h"
#include "src/phy80211/wifi_phy.h"
#include "src/stats/mac_stats.h"

namespace hacksim {

struct WifiMacConfig {
  WifiStandard standard = WifiStandard::k80211n;
  WifiMode data_mode;
  bool enable_ampdu = true;
  // Paper §4.3: AP buffers 126 packets per flow (3 batches of 42).
  size_t per_dest_queue_limit = 126;
  SimTime txop_limit = SimTime::Millis(4);
  int mpdu_retry_limit = 7;
  int bar_retry_limit = 7;
  // SoRa quirks (§4.1): the receiver returns LL ACKs this much later than
  // SIFS, and the sender widens its ACK timeout to compensate.
  SimTime extra_ack_delay;
  SimTime extra_ack_timeout;
  // When > 0, response timeouts budget for HACK payload bytes appended to
  // LL ACKs by the peer.
  size_t max_hack_payload_bytes = 0;
};

class WifiMac final : public WifiPhyListener {
 public:
  WifiMac(Scheduler* scheduler, WifiPhy* phy, MacAddress address,
          WifiMacConfig config, Random rng);

  // Upper-layer interface. Takes ownership: the packet is moved into the
  // per-destination queue (or dropped), never copied.
  void Enqueue(Packet&& packet, MacAddress dest);
  size_t QueueDepth(MacAddress dest) const;
  // Removes queued (not yet transmitted) packets matching `pred`; returns
  // the number removed. Used by opportunistic HACK to pull vanilla TCP ACKs
  // that were delivered via an LL ACK instead.
  size_t RemoveQueued(MacAddress dest,
                      const std::function<bool(const Packet&)>& pred);

  std::function<void(Packet, MacAddress from)> on_rx_packet;

  // Fires when a data MPDU is confirmed delivered (LL-acknowledged by the
  // peer). HACK uses this to learn that a vanilla TCP ACK reached the AP —
  // the signal that the ROHC context is established there.
  std::function<void(const Packet&, MacAddress dest)> on_mpdu_delivered;

  void set_hack_hooks(HackHooks* hooks) { hack_hooks_ = hooks; }

  MacAddress address() const { return address_; }
  const WifiMacConfig& config() const { return config_; }
  const PhyTimings& timings() const { return timings_; }
  MacStats& stats() { return stats_; }
  const MacStats& stats() const { return stats_; }

  // WifiPhyListener:
  void OnPpduReceived(const Ppdu& ppdu,
                      const std::vector<bool>& mpdu_ok) override;
  void OnRxCorrupted() override;
  void OnTxEnd(const Ppdu& ppdu) override;
  void OnCcaBusy() override;
  void OnCcaIdle() override;

 private:
  struct OutstandingMpdu {
    WifiFrame frame;
    int retries = 0;
  };

  // Originator-side state, per destination.
  struct TxState {
    std::deque<Packet> queue;
    uint16_t next_seq = 0;
    uint16_t win_start = 0;
    std::map<uint16_t, OutstandingMpdu> outstanding;
    bool bar_pending = false;
    int bar_retries = 0;
    bool sync_pending = false;
    std::optional<OutstandingMpdu> single_inflight;  // 802.11a stop-and-wait

    bool HasWork() const {
      return bar_pending || !queue.empty() || !outstanding.empty() ||
             single_inflight.has_value();
    }
  };

  // Recipient-side state, per transmitter.
  struct RxState {
    uint16_t win_start = 0;
    std::set<uint16_t> received;             // >= win_start only
    std::map<uint16_t, Packet> reorder;
    uint16_t last_single_seq = 0;
    bool has_last_single = false;
  };

  enum class TxPhase { kIdle, kTransmitting, kAwaitingResponse };

  // --- originator pipeline ---------------------------------------------------
  void MaybeRequestAccess();
  bool HasWork() const;
  void OnAccessGranted();
  TxState* PickNextDest(MacAddress* dest_out);
  void StartExchange(MacAddress dest, TxState& st);
  Ppdu BuildDataPpdu(MacAddress dest, TxState& st);
  void HandleResponseTimeout();
  void HandleBlockAck(const WifiFrame& frame);
  void HandleAck(const WifiFrame& frame);
  void FinishExchange();
  void ReleaseDelivered(TxState& st, const OutstandingMpdu& mpdu);
  void GiveUpBlockAck(TxState& st);
  SimTime ResponseTimeoutDelay(bool block_ack_expected) const;

  // --- recipient pipeline ----------------------------------------------------
  void HandleDataPpdu(const Ppdu& ppdu, const std::vector<bool>& mpdu_ok);
  void HandleBar(const WifiFrame& frame);
  void ScheduleResponse(WifiFrame response, const WifiMode& eliciting_mode);
  void AdvanceRxWindow(RxState& rx, MacAddress from, uint16_t new_start);
  void DeliverContiguous(RxState& rx, MacAddress from);
  uint64_t BuildBitmap(const RxState& rx) const;

  // --- medium state -----------------------------------------------------------
  void UpdateMediumState();
  void SetNav(SimTime until);

  Scheduler* scheduler_;
  WifiPhy* phy_;
  MacAddress address_;
  WifiMacConfig config_;
  PhyTimings timings_;
  DcfEngine dcf_;
  HackHooks* hack_hooks_ = nullptr;
  MacStats stats_;

  std::map<MacAddress, TxState> tx_;
  std::map<MacAddress, RxState> rx_;
  std::vector<MacAddress> round_robin_;
  size_t round_robin_next_ = 0;

  TxPhase phase_ = TxPhase::kIdle;
  MacAddress current_dest_;
  bool current_is_bar_ = false;
  bool current_aggregated_ = false;
  bool current_all_tcp_acks_ = false;
  std::vector<uint16_t> current_batch_seqs_;
  EventId response_timeout_event_ = kInvalidEventId;
  SimTime access_request_time_;
  SimTime tx_end_time_;

  bool phy_busy_ = false;
  SimTime nav_until_;
  EventId nav_event_ = kInvalidEventId;
  bool medium_busy_reported_ = false;
  // SIFS responses scheduled but not yet on the air. While non-zero the MAC
  // must not start its own exchanges: a real NIC's response logic runs
  // below the contention engine, and with delayed responses (the SoRa
  // quirk) a DCF grant could otherwise trample the pending LL ACK.
  int responses_pending_ = 0;
};

}  // namespace hacksim

#endif  // SRC_MAC80211_WIFI_MAC_H_
