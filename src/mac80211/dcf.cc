#include "src/mac80211/dcf.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hacksim {

DcfEngine::DcfEngine(Scheduler* scheduler, Random rng, Config config)
    : scheduler_(scheduler),
      rng_(rng),
      config_(config),
      idle_since_(scheduler->Now()),
      cw_(config.cw_min) {}

SimTime DcfEngine::EffectiveAifs() const {
  return config_.aifs +
         (last_rx_failed_ ? config_.eifs_extra : SimTime::Zero());
}

void DcfEngine::CancelGrantEvent() {
  if (grant_event_ != kInvalidEventId) {
    scheduler_->Cancel(grant_event_);
    grant_event_ = kInvalidEventId;
  }
}

void DcfEngine::ConsumeElapsedSlots(SimTime until) {
  if (backoff_slots_ <= 0) {
    return;
  }
  // With a future-dated idle_since_ the countdown has not started, so a
  // busy edge arriving before it consumes nothing — exactly the eager
  // engine's behaviour, where the idle edge had not yet been delivered.
  SimTime countdown_start =
      std::max(idle_since_ + EffectiveAifs(), backoff_valid_from_);
  if (until <= countdown_start) {
    return;
  }
  int64_t elapsed = (until - countdown_start).ns() / config_.slot.ns();
  backoff_slots_ -= static_cast<int>(
      std::min<int64_t>(elapsed, backoff_slots_));
}

void DcfEngine::NotifyMediumBusy() {
  if (medium_busy_) {
    return;
  }
  ConsumeElapsedSlots(scheduler_->Now());
  medium_busy_ = true;
  CancelGrantEvent();
  // A pending frame that found the medium busy must take a backoff draw.
  if (pending_ && backoff_slots_ < 0) {
    backoff_slots_ = DrawBackoff();
  }
}

void DcfEngine::NotifyMediumIdleFrom(SimTime t) {
  if (medium_busy_) {
    medium_busy_ = false;
    idle_since_ = t;
    Evaluate();
    return;
  }
  // Already announced: only a later idle start (NAV extension without an
  // intervening physical busy edge) changes anything. Idle time that
  // actually elapsed still counts toward the countdown first.
  if (t > idle_since_) {
    ConsumeElapsedSlots(scheduler_->Now());
    idle_since_ = t;
    Evaluate();
  }
}

void DcfEngine::RequestAccess() {
  if (pending_) {
    return;
  }
  pending_ = true;
  if (medium_busy()) {
    // Busy — physically or by reservation: no immediate access; a backoff
    // is owed.
    if (backoff_slots_ < 0) {
      backoff_slots_ = DrawBackoff();
    }
    if (medium_busy_) {
      return;  // Evaluate() runs when the idle announcement arrives
    }
    // Reserved (NAV): the idle start is already known; arm the grant for
    // the post-reservation timeline now.
  }
  Evaluate();
}

void DcfEngine::CancelAccess() {
  pending_ = false;
  CancelGrantEvent();
}

void DcfEngine::Evaluate() {
  if (!pending_ || medium_busy_) {
    return;
  }
  CancelGrantEvent();
  SimTime now = scheduler_->Now();
  SimTime countdown_start =
      std::max(idle_since_ + EffectiveAifs(), backoff_valid_from_);
  SimTime grant_time;
  if (backoff_slots_ > 0) {
    ConsumeElapsedSlots(now);
  }
  if (backoff_slots_ > 0) {
    grant_time = std::max(now, countdown_start) +
                 config_.slot * backoff_slots_;
  } else {
    // No backoff owed (or it completed during a prior idle period): the
    // frame may go as soon as AIFS has been satisfied.
    grant_time = std::max(now, countdown_start);
  }
  grant_time_ = grant_time;
  grant_event_ = scheduler_->ScheduleAt(
      grant_time,
      [this]() {
        grant_event_ = kInvalidEventId;
        pending_ = false;
        backoff_slots_ = -1;
        CHECK(on_grant != nullptr);
        on_grant();
      },
      EventClass::kDcfTimer);
}

void DcfEngine::NotifyTxFailure() {
  cw_ = std::min(cw_ * 2 + 1, config_.cw_max);
  backoff_slots_ = DrawBackoff();
  // In the MAC's flow no grant is armed here (the failed exchange consumed
  // the pending access), but keep the engine self-consistent for any call
  // order: a grant armed against a future idle start must track the new
  // draw, as the eager path's later evaluation would have.
  ReevaluateDeferredIdle();
}

void DcfEngine::NotifyTxSuccess() { cw_ = config_.cw_min; }

void DcfEngine::NotifyInternalCollision() {
  cw_ = std::min(cw_ * 2 + 1, config_.cw_max);
  backoff_slots_ = DrawBackoff();
  // The request is still pending (the losing grant never fired, or was
  // re-requested); re-arm it for the fresh draw. Evaluate() cancels the
  // stale same-instant grant event before scheduling the new one.
  Evaluate();
}

void DcfEngine::Reset() {
  CancelGrantEvent();
  pending_ = false;
  backoff_slots_ = -1;
  backoff_valid_from_ = scheduler_->Now();
  cw_ = config_.cw_min;
  medium_busy_ = false;
  idle_since_ = scheduler_->Now();
  last_rx_failed_ = false;
}

void DcfEngine::DrawPostTxBackoff() {
  backoff_slots_ = DrawBackoff();
  ReevaluateDeferredIdle();
}

}  // namespace hacksim
