#include "src/mac80211/station_table.h"

#include <bit>

#include "src/util/logging.h"

namespace hacksim {

StationId StationTable::Intern(MacAddress address) {
  auto [it, inserted] =
      index_.try_emplace(address.value(),
                         static_cast<StationId>(addresses_.size()));
  if (inserted) {
    addresses_.push_back(address);
  }
  return it->second;
}

StationId StationTable::Find(MacAddress address) const {
  auto it = index_.find(address.value());
  return it == index_.end() ? kInvalidStationId : it->second;
}

size_t ActiveSlotRing::AddSlot() {
  size_t slot = size_++;
  if ((slot >> 6) >= words_.size()) {
    words_.push_back(0);
    if (((words_.size() - 1) >> 6) >= summary_.size()) {
      summary_.push_back(0);
    }
  }
  return slot;
}

void ActiveSlotRing::Set(size_t slot, bool active) {
  CHECK_LT(slot, size_);
  size_t w = slot >> 6;
  uint64_t bit = uint64_t{1} << (slot & 63);
  bool was = (words_[w] & bit) != 0;
  if (was == active) {
    return;
  }
  if (active) {
    words_[w] |= bit;
    ++active_;
  } else {
    words_[w] &= ~bit;
    --active_;
  }
  uint64_t sbit = uint64_t{1} << (w & 63);
  if (words_[w] != 0) {
    summary_[w >> 6] |= sbit;
  } else {
    summary_[w >> 6] &= ~sbit;
  }
}

size_t ActiveSlotRing::FirstActiveAtOrAfter(size_t from) const {
  if (from >= size_) {
    return size_;
  }
  size_t w = from >> 6;
  // Partial first word: only bits at/after `from`.
  uint64_t masked = words_[w] & (~uint64_t{0} << (from & 63));
  if (masked != 0) {
    return (w << 6) + static_cast<size_t>(std::countr_zero(masked));
  }
  // Climb to the summary level for the remaining words.
  size_t next_w = w + 1;
  size_t sw = next_w >> 6;
  if (sw >= summary_.size()) {
    return size_;
  }
  uint64_t s = summary_[sw] & (~uint64_t{0} << (next_w & 63));
  while (s == 0) {
    if (++sw >= summary_.size()) {
      return size_;
    }
    s = summary_[sw];
  }
  size_t word = (sw << 6) + static_cast<size_t>(std::countr_zero(s));
  size_t slot =
      (word << 6) + static_cast<size_t>(std::countr_zero(words_[word]));
  return slot < size_ ? slot : size_;
}

bool ActiveSlotRing::PickNext(size_t* slot_out) {
  if (active_ == 0) {
    return false;
  }
  size_t slot = FirstActiveAtOrAfter(cursor_);
  if (slot == size_) {
    slot = FirstActiveAtOrAfter(0);
    CHECK_LT(slot, size_);
  }
  *slot_out = slot;
  cursor_ = (slot + 1) % size_;
  return true;
}

}  // namespace hacksim
