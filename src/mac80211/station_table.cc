#include "src/mac80211/station_table.h"

#include <algorithm>
#include <bit>

#include "src/util/logging.h"

namespace hacksim {

StationId StationTable::Intern(MacAddress address) {
  StationId candidate = free_ids_.empty()
                            ? static_cast<StationId>(addresses_.size())
                            : free_ids_.back();
  auto [it, inserted] = index_.try_emplace(address.value(), candidate);
  if (inserted) {
    if (free_ids_.empty()) {
      addresses_.push_back(address);
    } else {
      free_ids_.pop_back();
      addresses_[candidate] = address;
    }
  }
  return it->second;
}

StationId StationTable::Find(MacAddress address) const {
  auto it = index_.find(address.value());
  return it == index_.end() ? kInvalidStationId : it->second;
}

void StationTable::Disassociate(MacAddress address) {
  auto it = index_.find(address.value());
  CHECK(it != index_.end()) << "disassociating unknown station";
  free_ids_.push_back(it->second);
  index_.erase(it);
}

size_t ActiveSlotRing::AddSlot() {
  if (!free_slots_.empty()) {
    size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  size_t slot = size_++;
  if ((slot >> 6) >= words_.size()) {
    words_.push_back(0);
    if (((words_.size() - 1) >> 6) >= summary_.size()) {
      summary_.push_back(0);
    }
  }
  return slot;
}

void ActiveSlotRing::ReleaseSlot(size_t slot) {
  CHECK_LT(slot, size_);
  CHECK(!Test(slot)) << "releasing an active service slot";
  free_slots_.push_back(slot);
}

void ActiveSlotRing::Set(size_t slot, bool active) {
  CHECK_LT(slot, size_);
  size_t w = slot >> 6;
  uint64_t bit = uint64_t{1} << (slot & 63);
  bool was = (words_[w] & bit) != 0;
  if (was == active) {
    return;
  }
  if (active) {
    words_[w] |= bit;
    ++active_;
  } else {
    words_[w] &= ~bit;
    --active_;
  }
  uint64_t sbit = uint64_t{1} << (w & 63);
  if (words_[w] != 0) {
    summary_[w >> 6] |= sbit;
  } else {
    summary_[w >> 6] &= ~sbit;
  }
}

size_t ActiveSlotRing::FirstActiveAtOrAfter(size_t from) const {
  if (from >= size_) {
    return size_;
  }
  size_t w = from >> 6;
  // Partial first word: only bits at/after `from`.
  uint64_t masked = words_[w] & (~uint64_t{0} << (from & 63));
  if (masked != 0) {
    return (w << 6) + static_cast<size_t>(std::countr_zero(masked));
  }
  // Climb to the summary level for the remaining words.
  size_t next_w = w + 1;
  size_t sw = next_w >> 6;
  if (sw >= summary_.size()) {
    return size_;
  }
  uint64_t s = summary_[sw] & (~uint64_t{0} << (next_w & 63));
  while (s == 0) {
    if (++sw >= summary_.size()) {
      return size_;
    }
    s = summary_[sw];
  }
  size_t word = (sw << 6) + static_cast<size_t>(std::countr_zero(s));
  size_t slot =
      (word << 6) + static_cast<size_t>(std::countr_zero(words_[word]));
  return slot < size_ ? slot : size_;
}

bool ActiveSlotRing::PickNext(size_t* slot_out) {
  if (active_ == 0) {
    return false;
  }
  size_t slot = FirstActiveAtOrAfter(cursor_);
  if (slot == size_) {
    slot = FirstActiveAtOrAfter(0);
    CHECK_LT(slot, size_);
  }
  *slot_out = slot;
  cursor_ = (slot + 1) % size_;
  return true;
}

// --- ArfRateController -------------------------------------------------------

ArfRateController::ArfRateController(std::span<const WifiMode> table,
                                     size_t initial_index,
                                     RateAdaptConfig config)
    : table_(table), initial_index_(initial_index), config_(config) {
  CHECK(!table.empty());
  CHECK_LE(table.size(), kMaxRateTableSize);
  CHECK_LT(initial_index, table.size());
}

ArfRateController::StationState& ArfRateController::StateFor(StationId sid) {
  if (stations_.size() <= sid) {
    StationState fresh;
    fresh.idx = initial_index_;
    fresh.last_pick = initial_index_;
    // Optimistic prior: an unsampled rate reads as fully delivering, so a
    // probe_selector has no reason to avoid it before the first sample.
    fresh.ewma_ok.fill(1.0);
    stations_.resize(sid + 1, fresh);
  }
  return stations_[sid];
}

size_t ArfRateController::current_index(StationId sid) const {
  return sid < stations_.size() ? stations_[sid].idx : initial_index_;
}

double ArfRateController::EwmaDeliveryRatio(StationId sid,
                                            size_t index) const {
  CHECK_LT(index, table_.size());
  return sid < stations_.size() ? stations_[sid].ewma_ok[index] : 1.0;
}

size_t ArfRateController::PickModeIndex(StationId sid) {
  StationState& st = StateFor(sid);
  if (config_.probe_interval > 0 &&
      ++st.since_probe >= config_.probe_interval) {
    st.since_probe = 0;
    size_t target = probe_selector
                        ? probe_selector(sid, st.idx)
                        : std::min(st.idx + 1, table_.size() - 1);
    CHECK_LT(target, table_.size());
    if (target != st.idx) {
      st.last_was_probe = true;
      st.last_pick = target;
      return target;
    }
  }
  st.last_was_probe = false;
  st.last_pick = st.idx;
  return st.idx;
}

void ArfRateController::AbandonPick(StationId sid) {
  StationState& st = StateFor(sid);
  if (st.last_was_probe) {
    st.last_was_probe = false;
    // Probe due again on the very next pick.
    st.since_probe = config_.probe_interval;
  }
}

ArfRateController::Move ArfRateController::OnTxOutcome(StationId sid,
                                                       bool success) {
  StationState& st = StateFor(sid);
  double& ewma = st.ewma_ok[st.last_pick];
  ewma = (1.0 - config_.ewma_alpha) * ewma +
         config_.ewma_alpha * (success ? 1.0 : 0.0);
  Move move;
  if (st.last_was_probe) {
    // Probes only feed the EWMA table; the ARF streaks track the operating
    // rate alone.
    st.last_was_probe = false;
    return move;
  }
  if (success) {
    st.fail_streak = 0;
    st.on_trial = false;
    if (++st.succ_streak >= config_.up_threshold) {
      st.succ_streak = 0;
      if (st.idx + 1 < table_.size()) {
        ++st.idx;
        st.on_trial = true;
        move.up = true;
      }
    }
  } else {
    st.succ_streak = 0;
    ++st.fail_streak;
    if ((st.on_trial || st.fail_streak >= config_.down_threshold) &&
        st.idx > 0) {
      --st.idx;
      st.fail_streak = 0;
      move.down = true;
    }
    st.on_trial = false;
  }
  return move;
}

}  // namespace hacksim
