#include "src/scenario/fault_plan.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "src/sim/random.h"

namespace hacksim {
namespace {

const char* TypeName(FaultType type) {
  switch (type) {
    case FaultType::kCrash:
      return "crash";
    case FaultType::kLeave:
      return "leave";
    case FaultType::kJoin:
      return "join";
    case FaultType::kRadioReset:
      return "reset";
    case FaultType::kApDown:
      return "ap-down";
    case FaultType::kApUp:
      return "ap-up";
    case FaultType::kBurstStart:
      return "burst";
    case FaultType::kBurstEnd:
      return "burst-end";
  }
  return "?";
}

bool NeedsStation(FaultType type) {
  return type == FaultType::kCrash || type == FaultType::kLeave ||
         type == FaultType::kJoin || type == FaultType::kRadioReset;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses one `<type>@<micros>us[:<arg>]` token; returns false on any
// malformed piece so the caller can reject the whole plan.
bool ParseToken(std::string_view tok, FaultEvent* out) {
  size_t at = tok.find('@');
  if (at == std::string_view::npos) {
    return false;
  }
  std::string_view name = Trim(tok.substr(0, at));
  std::string_view rest = tok.substr(at + 1);

  FaultType type;
  if (name == "crash") {
    type = FaultType::kCrash;
  } else if (name == "leave") {
    type = FaultType::kLeave;
  } else if (name == "join") {
    type = FaultType::kJoin;
  } else if (name == "reset") {
    type = FaultType::kRadioReset;
  } else if (name == "ap-down") {
    type = FaultType::kApDown;
  } else if (name == "ap-up") {
    type = FaultType::kApUp;
  } else if (name == "burst") {
    type = FaultType::kBurstStart;
  } else if (name == "burst-end") {
    type = FaultType::kBurstEnd;
  } else {
    return false;
  }

  std::string_view time_part = rest;
  std::string_view arg_part;
  size_t colon = rest.find(':');
  if (colon != std::string_view::npos) {
    time_part = rest.substr(0, colon);
    arg_part = Trim(rest.substr(colon + 1));
  }
  time_part = Trim(time_part);
  if (time_part.size() > 2 && time_part.substr(time_part.size() - 2) == "us") {
    time_part.remove_suffix(2);
  }
  int64_t micros = 0;
  auto [tp, tec] =
      std::from_chars(time_part.data(), time_part.data() + time_part.size(),
                      micros);
  if (tec != std::errc() || tp != time_part.data() + time_part.size() ||
      micros < 0) {
    return false;
  }

  FaultEvent ev;
  ev.at = SimTime::Micros(micros);
  ev.type = type;
  if (NeedsStation(type)) {
    if (arg_part.empty()) {
      return false;
    }
    int station = -1;
    auto [sp, sec] =
        std::from_chars(arg_part.data(), arg_part.data() + arg_part.size(),
                        station);
    if (sec != std::errc() || sp != arg_part.data() + arg_part.size() ||
        station < 0) {
      return false;
    }
    ev.station = station;
  } else if (type == FaultType::kBurstStart) {
    if (arg_part.empty()) {
      return false;
    }
    // std::from_chars for double is spotty across libstdc++ versions the
    // toolchain might pin; strtod on a bounded copy is portable and the
    // parse path is cold.
    char buf[32];
    if (arg_part.size() >= sizeof(buf)) {
      return false;
    }
    std::copy(arg_part.begin(), arg_part.end(), buf);
    buf[arg_part.size()] = '\0';
    char* end = nullptr;
    double p = std::strtod(buf, &end);
    if (end != buf + arg_part.size() || !(p > 0.0) || p > 1.0) {
      return false;
    }
    ev.extra_loss = p;
  } else if (!arg_part.empty()) {
    return false;
  }
  *out = ev;
  return true;
}

}  // namespace

bool FaultPlan::HasBursts() const {
  return std::any_of(events.begin(), events.end(), [](const FaultEvent& e) {
    return e.type == FaultType::kBurstStart;
  });
}

bool FaultPlan::StartsAbsent(int station) const {
  for (const FaultEvent& e : events) {
    if (e.station != station || !NeedsStation(e.type)) {
      continue;
    }
    return e.type == FaultType::kJoin;
  }
  return false;
}

int FaultPlan::MaxStation() const {
  int max_station = -1;
  for (const FaultEvent& e : events) {
    max_station = std::max(max_station, e.station);
  }
  return max_station;
}

void FaultPlan::SortByTime() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

std::string FaultPlan::ToString() const {
  std::string out;
  char buf[96];
  for (const FaultEvent& e : events) {
    if (!out.empty()) {
      out += ';';
    }
    // Times are emitted in integer microseconds; Generate and the fuzz
    // driver only produce microsecond-aligned events, so this round-trips.
    int64_t micros = e.at.ns() / 1000;
    if (NeedsStation(e.type)) {
      std::snprintf(buf, sizeof(buf), "%s@%lldus:%d", TypeName(e.type),
                    static_cast<long long>(micros), e.station);
    } else if (e.type == FaultType::kBurstStart) {
      std::snprintf(buf, sizeof(buf), "%s@%lldus:%g", TypeName(e.type),
                    static_cast<long long>(micros), e.extra_loss);
    } else {
      std::snprintf(buf, sizeof(buf), "%s@%lldus", TypeName(e.type),
                    static_cast<long long>(micros));
    }
    out += buf;
  }
  return out;
}

std::optional<FaultPlan> FaultPlan::Parse(std::string_view text) {
  FaultPlan plan;
  while (!text.empty()) {
    size_t sep = text.find_first_of(";,");
    std::string_view tok = Trim(text.substr(0, sep));
    text = (sep == std::string_view::npos) ? std::string_view{}
                                           : text.substr(sep + 1);
    if (tok.empty()) {
      continue;
    }
    FaultEvent ev;
    if (!ParseToken(tok, &ev)) {
      return std::nullopt;
    }
    plan.events.push_back(ev);
  }
  plan.SortByTime();
  return plan;
}

FaultPlan FaultPlan::Generate(uint64_t plan_seed, int n_clients,
                              SimTime duration) {
  // Dedicated stream: fault geometry never perturbs scenario RNG forks.
  Random rng(plan_seed ^ 0x9e3779b97f4a7c15ULL);
  FaultPlan plan;
  const int64_t dur_us = duration.ns() / 1000;
  // Keep faults inside (10%, 80%) of the run so there is always a
  // post-recovery window for the watchdog's forward-progress probe.
  auto TimeIn = [&](double lo_frac, double hi_frac) {
    int64_t lo = static_cast<int64_t>(dur_us * lo_frac);
    int64_t hi = static_cast<int64_t>(dur_us * hi_frac);
    return SimTime::Micros(rng.NextInt(lo, std::max(lo, hi)));
  };

  // Churn: a random subset of stations crashes or leaves; most rejoin.
  int churners = static_cast<int>(
      rng.NextBounded(static_cast<uint64_t>(std::max(1, n_clients / 2)) + 1));
  for (int i = 0; i < churners; ++i) {
    int station = static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(n_clients)));
    SimTime down_at = TimeIn(0.10, 0.55);
    plan.events.push_back(
        {down_at, rng.NextBool(0.5) ? FaultType::kCrash : FaultType::kLeave,
         station});
    if (rng.NextBool(0.75)) {
      SimTime up_at = down_at + TimeIn(0.05, 0.25);
      if (up_at.ns() / 1000 < static_cast<int64_t>(dur_us * 0.85)) {
        plan.events.push_back({up_at, FaultType::kJoin, station});
      }
    }
  }

  // Radio resets: instantaneous state loss on up to 3 stations.
  if (rng.NextBool(0.4)) {
    int resets = static_cast<int>(rng.NextInt(1, 3));
    for (int i = 0; i < resets; ++i) {
      plan.events.push_back(
          {TimeIn(0.10, 0.80), FaultType::kRadioReset,
           static_cast<int>(rng.NextBounded(static_cast<uint64_t>(n_clients)))});
    }
  }

  // One AP outage window in about half the plans.
  if (rng.NextBool(0.5)) {
    SimTime down_at = TimeIn(0.20, 0.50);
    plan.events.push_back({down_at, FaultType::kApDown});
    plan.events.push_back({down_at + TimeIn(0.05, 0.20), FaultType::kApUp});
  }

  // Interference bursts: bounded windows of extra loss.
  if (rng.NextBool(0.4)) {
    SimTime start = TimeIn(0.10, 0.60);
    double p = 0.2 + 0.6 * rng.NextDouble();
    // Round so the plan string (%g, microseconds) round-trips exactly.
    p = static_cast<double>(static_cast<int>(p * 100)) / 100.0;
    plan.events.push_back({start, FaultType::kBurstStart, -1, p});
    plan.events.push_back(
        {start + TimeIn(0.02, 0.15), FaultType::kBurstEnd});
  }

  plan.SortByTime();
  return plan;
}

FaultPlan FaultPlan::Churn(int n_clients, SimTime duration) {
  // Every 5th station crashes at 30% of the run and rejoins at 55%; the
  // bench gate then measures recovery over the final 45%.
  FaultPlan plan;
  SimTime down_at = SimTime::Micros((duration.ns() / 1000) * 3 / 10);
  SimTime up_at = SimTime::Micros((duration.ns() / 1000) * 55 / 100);
  for (int station = 0; station < n_clients; station += 5) {
    plan.events.push_back({down_at, FaultType::kCrash, station});
    plan.events.push_back({up_at, FaultType::kJoin, station});
  }
  plan.SortByTime();
  return plan;
}

FaultPlan FaultPlan::ApOutage(SimTime duration) {
  FaultPlan plan;
  plan.events.push_back(
      {SimTime::Micros((duration.ns() / 1000) * 4 / 10), FaultType::kApDown});
  plan.events.push_back(
      {SimTime::Micros((duration.ns() / 1000) * 55 / 100), FaultType::kApUp});
  return plan;
}

}  // namespace hacksim
