// Scenario harness: builds the paper's topologies (remote server — wired
// backhaul — AP — WLAN clients), runs them, and returns every statistic the
// evaluation section reports. Used by the integration tests, the examples
// and every bench binary.
//
// Topology (download):
//   server(10.0.0.1) ==500 Mbps/1 ms== AP(10.0.1.1) ~~802.11~~ client_i(10.0.2.i)
// Upload scenarios reverse the TCP direction; HACK's symmetry (§3.1) means
// the AP then plays the compressing role automatically.
#ifndef SRC_SCENARIO_DOWNLOAD_SCENARIO_H_
#define SRC_SCENARIO_DOWNLOAD_SCENARIO_H_

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "src/hack/hack_agent.h"
#include "src/mac80211/station_table.h"
#include "src/phy80211/loss_model.h"
#include "src/phy80211/propagation.h"
#include "src/phy80211/wifi_phy.h"
#include "src/scenario/fault_plan.h"
#include "src/scenario/traffic_model.h"
#include "src/sim/sim_watchdog.h"
#include "src/stats/experiment_stats.h"
#include "src/tcp/tcp_receiver.h"
#include "src/tcp/tcp_sender.h"

namespace hacksim {

enum class TransportProto { kTcp, kUdp };

// Station placement. kRing is the legacy layout (clients on a circle of
// their ClientSpec::distance_m — on the fixed-loss channel only propagation
// *delay* ever depended on it). The other two exist for the geometric
// channel (ScenarioConfig::propagation):
//   kUniformDisk      — clients uniform over a disk of cell_radius_m around
//                       the AP; random hidden pairs and capture asymmetry.
//   kTwoClusterHidden — the classic hidden-terminal topology: two dense
//                       clusters cluster_distance_m either side of the AP,
//                       each in range of the AP, out of range of each other.
//                       Client i joins cluster i % 2, on a deterministic
//                       grid of extent cluster_spread_m.
enum class Topology { kRing, kUniformDisk, kTwoClusterHidden };

struct ClientSpec {
  double distance_m = 5.0;
  // Per-MPDU data-frame loss seen by this client's radio (SoRa emulation);
  // ignored when the SNR model is active.
  double bernoulli_data_loss = 0.0;
  double bernoulli_control_loss = 0.0;
  SimTime start_offset;
};

struct ScenarioConfig {
  WifiStandard standard = WifiStandard::k80211n;
  double data_rate_mbps = 150.0;
  int n_clients = 1;
  TransportProto proto = TransportProto::kTcp;
  HackVariant hack = HackVariant::kOff;
  // Reverse the transfer direction (TCP: clients send the file; UDP: every
  // client runs a CBR source toward the server — the contention-heavy
  // dense-cell workload).
  bool upload = false;

  // RTS/CTS virtual carrier sense on every MAC: data PPDUs whose PSDU
  // exceeds this many bytes are protected by the handshake. 0 (default)
  // disables it and keeps legacy scenarios bit-identical.
  size_t rts_threshold = 0;
  // Per-station ARF rate adaptation on every MAC; data_rate_mbps becomes
  // the starting rate.
  bool rate_adaptation = false;
  RateAdaptConfig rate_adapt;

  // 0 = time-bounded run; otherwise run until every sender completes.
  uint64_t file_bytes = 0;
  SimTime duration = SimTime::Seconds(20);
  // Stagger between consecutive clients' flow starts (mitigates phase
  // effects, §4.3).
  SimTime start_stagger = SimTime::Millis(250);

  double wired_rate_bps = 500e6;
  SimTime wired_delay = SimTime::Millis(1);

  // Paper §4.3: 126-packet AP queue per flow.
  size_t ap_queue_per_client = 126;
  SimTime txop_limit = SimTime::Millis(4);

  // Per-client overrides; padded with defaults to n_clients.
  std::vector<ClientSpec> clients;
  // SNR-driven loss (Figure 11); distances come from ClientSpec.
  std::optional<SnrLossModel::Params> snr;

  // Geometric channel: installing log-distance propagation engages
  // range-limited decode and SINR capture (see docs/channel.md). Unset
  // (default) keeps the legacy fixed-loss broadcast medium bit-identical.
  std::optional<LogDistancePropagation::Params> propagation;
  Topology topology = Topology::kRing;
  double cell_radius_m = 20.0;       // kUniformDisk
  double cluster_distance_m = 20.0;  // kTwoClusterHidden: AP <-> cluster center
  double cluster_spread_m = 4.0;     // kTwoClusterHidden: grid extent

  // SoRa quirks (§4.1).
  SimTime extra_ack_delay;
  SimTime extra_ack_timeout;

  // 802.11e EDCA on every MAC: four access categories (VO/VI/BE/BK) with
  // per-AC contention parameters and queues, DSCP-classified at enqueue
  // (docs/qos.md). False (default) keeps the single-DCF legacy MAC
  // bit-identical.
  bool edca_enabled = false;
  // Mixed-workload traffic zoo. Empty (default) keeps the classic setup.
  // UDP scenarios: non-empty replaces every client's CBR source with a
  // TrafficSource whose model comes from ModelForStation over these
  // fractions. TCP download scenarios: non-empty keeps the TCP flows AND
  // adds one background TrafficSource per station (AP -> client, its own
  // port/seed namespace) — the HACK-vs-EDCA interaction workload. Each flow
  // owns a DeriveRunSeed-derived RNG stream.
  std::vector<TrafficMixEntry> traffic_mix;
  // Scales every traffic-model flow's offered load (TrafficSource::Config::
  // rate_scale); 1.0 = the models' natural rates.
  double traffic_rate_scale = 1.0;

  TcpConfig tcp;
  uint32_t udp_payload_bytes = 1472;
  double udp_rate_bps = 250e6;
  // Token-bucket pacing window for the UDP CBR sources: one refill event
  // per window instead of one event per packet (UdpCbrSource::Config).
  // Zero (default) keeps the classic per-packet chain bit-identical.
  SimTime udp_burst_window;

  // NAV-reset probes as armed per-overhearer events (the historical form)
  // instead of the default coalesced provisional deadline. Only the
  // equivalence tests should turn this on — see WifiMacConfig.
  bool legacy_nav_probe_events = false;
  // CF-End truncation after CTS timeouts on every MAC (WifiMacConfig).
  bool enable_cf_end = false;

  HackAgentConfig hack_config;  // variant is overwritten from `hack`
  uint64_t seed = 1;

  // Fault injection (docs/robustness.md). Empty plan = no fault engine at
  // all: no extra events, no extra RNG draws, legacy outputs bit-identical.
  FaultPlan fault_plan;
  // Liveness watchdog audit cadence; zero (default) disables the watchdog
  // entirely (no events scheduled).
  SimTime watchdog_interval;
  // Abort with a repro recipe on a watchdog trip (production/fuzz mode);
  // false records the trip in WatchdogStats and continues (unit tests).
  bool watchdog_abort_on_trip = true;

  // Channel arrival scheduling. kBatched (one event per distinct arrival
  // nanosecond per PPDU) is the production path; kPerPhyEvent keeps the
  // historical one-event-per-PHY semantics for equivalence testing.
  ChannelDeliveryMode channel_delivery = ChannelDeliveryMode::kBatched;
};

struct ClientResult {
  double goodput_mbps = 0.0;         // full-run goodput
  double steady_goodput_mbps = 0.0;  // post-slow-start window
  uint64_t bytes_delivered = 0;
  MacStats mac;
  PhyStats phy;
  HackStats hack;
  TcpReceiverStats tcp_rx;
  TcpSenderStats tcp_tx;
  SimTime completion_time;  // file transfers only

  // Exact comparison backs the batched-delivery equivalence tests.
  friend bool operator==(const ClientResult&, const ClientResult&) = default;
};

struct ScenarioResult {
  std::vector<ClientResult> clients;
  MacStats ap_mac;
  PhyStats ap_phy;
  HackStats ap_hack;
  ChannelAirtime airtime;  // medium occupancy breakdown
  double aggregate_goodput_mbps = 0.0;
  double steady_aggregate_goodput_mbps = 0.0;
  SimTime sim_end;
  uint64_t crc_failures = 0;  // decompression CRC failures (must be 0)
  uint64_t tcp_timeouts = 0;  // summed over senders
  // Scheduler events fired over the whole run — the scale benches divide
  // this by airtime.ppdus to watch per-PPDU event cost.
  uint64_t events_executed = 0;
  // Same total, split by EventClass (indexed by static_cast<size_t>), so
  // ev/PPDU movement can be attributed to a subsystem without re-profiling.
  std::array<uint64_t, kEventClassCount> events_by_class{};

  // Fault-injection bookkeeping (all-zero when fault_plan is empty).
  FaultStats fault;
  WatchdogStats watchdog;
  // Aggregate goodput measured strictly after the plan's last recovery
  // event (ap-up or final join); 0 when the plan has no recovery events.
  // The churn/outage bench gates on this recovering vs the fault-free row.
  double post_fault_goodput_mbps = 0.0;
  // Scheduler slots still live at sim end — the leak audit the fuzz
  // driver bounds (stopped flows retain O(clients) stranded timers only).
  uint64_t final_pending_events = 0;

  // Per-AC enqueue→delivery latency over every UDP sink (indexed by the
  // kAcVo..kAcBk constants; all-zero counts on TCP scenarios). Legacy CBR
  // traffic is untagged and lands entirely in [kAcBe].
  std::array<LatencySummary, kNumAcs> ac_latency{};

  // Exact comparison backs the batched-delivery equivalence tests.
  // (events_executed intentionally participates *not* here: the two
  // delivery modes produce identical behaviour from fewer events.)
  bool BehaviourEquals(const ScenarioResult& other) const {
    return clients == other.clients && ap_mac == other.ap_mac &&
           ap_phy == other.ap_phy && ap_hack == other.ap_hack &&
           airtime == other.airtime &&
           aggregate_goodput_mbps == other.aggregate_goodput_mbps &&
           steady_aggregate_goodput_mbps ==
               other.steady_aggregate_goodput_mbps &&
           sim_end == other.sim_end && crc_failures == other.crc_failures &&
           tcp_timeouts == other.tcp_timeouts &&
           ac_latency == other.ac_latency;
  }
};

ScenarioResult RunScenario(const ScenarioConfig& config);

}  // namespace hacksim

#endif  // SRC_SCENARIO_DOWNLOAD_SCENARIO_H_
