#include "src/scenario/download_scenario.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/apps/udp_app.h"
#include "src/node/node.h"
#include "src/util/logging.h"

namespace hacksim {
namespace {

constexpr uint16_t kServerPortBase = 5000;
constexpr uint16_t kClientPortBase = 6000;

struct ClientEndpoint {
  std::unique_ptr<Node> node;
  std::unique_ptr<WifiNetDevice> device;
  std::unique_ptr<TcpReceiver> tcp_rx;
  std::unique_ptr<TcpSender> tcp_tx;
  std::unique_ptr<UdpSink> udp_sink;
  GoodputTracker tracker;
  SimTime completion;
  // Jitter chain for the TCP data path (mirrors UdpSink's: consecutive
  // same-endpoint delay deltas).
  SimTime tcp_last_delay;
  bool tcp_has_delay = false;
};

std::span<const WifiMode> ModeTable(WifiStandard standard) {
  return standard == WifiStandard::k80211a ? Modes80211a() : Modes80211n();
}

constexpr double kPi = 3.14159265358979;

// Client placement under the configured topology. kRing reproduces the
// historical formula exactly; the other layouts exist for the geometric
// channel. `placement_rng` is only drawn from for kUniformDisk, so legacy
// configurations consume no extra randomness.
Position PlaceClient(const ScenarioConfig& config, const ClientSpec& spec,
                     int i, Random& placement_rng) {
  switch (config.topology) {
    case Topology::kRing: {
      double angle = 2.0 * kPi * i / std::max(1, config.n_clients);
      return Position{spec.distance_m * std::cos(angle),
                      spec.distance_m * std::sin(angle)};
    }
    case Topology::kUniformDisk: {
      // Uniform over the disk, clamped away from the AP's exact position.
      double r = std::max(
          1.0, config.cell_radius_m * std::sqrt(placement_rng.NextDouble()));
      double theta = 2.0 * kPi * placement_rng.NextDouble();
      return Position{r * std::cos(theta), r * std::sin(theta)};
    }
    case Topology::kTwoClusterHidden: {
      // Client i joins cluster i % 2 (left / right of the AP); within the
      // cluster, a deterministic grid of fixed extent so cluster geometry
      // does not degrade as the cell grows.
      int cluster = i % 2;
      double sign = cluster == 0 ? -1.0 : 1.0;
      int j = i / 2;
      int per_cluster = (config.n_clients + 1 - cluster) / 2;
      int k = static_cast<int>(
          std::ceil(std::sqrt(static_cast<double>(per_cluster))));
      double step = k > 1 ? config.cluster_spread_m / (k - 1) : 0.0;
      double half = config.cluster_spread_m / 2.0;
      double ox = k > 1 ? (j % k) * step - half : 0.0;
      double oy = k > 1 ? (j / k) * step - half : 0.0;
      return Position{sign * config.cluster_distance_m + ox, oy};
    }
  }
  return Position{};
}

}  // namespace

ScenarioResult RunScenario(const ScenarioConfig& config) {
  Scheduler scheduler;
  Random root_rng(config.seed);

  WifiMode data_mode =
      ModeForRate(ModeTable(config.standard), config.data_rate_mbps);

  // --- addresses -------------------------------------------------------------
  Ipv4Address server_ip = Ipv4Address::FromOctets(10, 0, 0, 1);
  Ipv4Address ap_ip = Ipv4Address::FromOctets(10, 0, 1, 1);
  auto client_ip = [](int i) {
    return Ipv4Address::FromOctets(10, 0, 2, static_cast<uint8_t>(i + 1));
  };
  MacAddress ap_mac_addr = MacAddress::ForStation(0);
  auto client_mac_addr = [](int i) {
    return MacAddress::ForStation(static_cast<uint32_t>(i + 1));
  };

  // --- channel / wired link ----------------------------------------------------
  WirelessChannel channel(&scheduler, config.channel_delivery);
  PointToPointLink::Config wired_cfg;
  wired_cfg.rate_bps = config.wired_rate_bps;
  wired_cfg.delay = config.wired_delay;
  PointToPointLink wired(&scheduler, wired_cfg);

  // --- MAC configs ----------------------------------------------------------------
  WifiMacConfig ap_mac_cfg;
  ap_mac_cfg.standard = config.standard;
  ap_mac_cfg.data_mode = data_mode;
  ap_mac_cfg.enable_ampdu = config.standard == WifiStandard::k80211n;
  ap_mac_cfg.per_dest_queue_limit = config.ap_queue_per_client;
  ap_mac_cfg.txop_limit = config.txop_limit;
  ap_mac_cfg.extra_ack_delay = config.extra_ack_delay;
  ap_mac_cfg.extra_ack_timeout = config.extra_ack_timeout;
  ap_mac_cfg.rts_threshold = config.rts_threshold;
  ap_mac_cfg.legacy_nav_probe_events = config.legacy_nav_probe_events;
  ap_mac_cfg.enable_cf_end = config.enable_cf_end;
  ap_mac_cfg.edca_enabled = config.edca_enabled;
  ap_mac_cfg.enable_rate_adaptation = config.rate_adaptation;
  ap_mac_cfg.rate_adapt = config.rate_adapt;
  if (config.hack != HackVariant::kOff) {
    ap_mac_cfg.max_hack_payload_bytes = config.hack_config.max_payload_bytes;
  }
  if (!config.fault_plan.empty()) {
    // Bounded give-up on unreachable peers (crashed stations, AP outages).
    // Off on legacy paths: hidden-terminal rows have give-ups on live peers
    // and flushing those would change pinned outputs.
    ap_mac_cfg.dead_peer_flush_threshold = 2;
  }
  WifiMacConfig client_mac_cfg = ap_mac_cfg;
  client_mac_cfg.per_dest_queue_limit =
      std::max<size_t>(config.ap_queue_per_client, 1000);

  // --- AP ---------------------------------------------------------------------------
  auto ap_node = std::make_unique<Node>(ap_ip);
  auto ap_device = std::make_unique<WifiNetDevice>(
      &scheduler, &channel, ap_mac_addr, ap_mac_cfg, root_rng.Fork());
  ap_device->phy().set_position(Position{0.0, 0.0});
  if (config.hack != HackVariant::kOff) {
    HackAgentConfig hc = config.hack_config;
    hc.variant = config.hack;
    ap_device->EnableHack(hc);
  }
  ap_node->AttachWifi(ap_device.get());
  ap_node->AttachP2p(&wired, 1);
  ap_node->SetDefaultRoute(Node::Egress::kP2p, MacAddress());

  // --- server -----------------------------------------------------------------------
  auto server_node = std::make_unique<Node>(server_ip);
  server_node->AttachP2p(&wired, 0);
  server_node->SetDefaultRoute(Node::Egress::kP2p, MacAddress());

  // --- clients ----------------------------------------------------------------------
  std::vector<ClientSpec> specs = config.clients;
  specs.resize(static_cast<size_t>(config.n_clients));
  for (int i = 0; i < config.n_clients; ++i) {
    if (specs[i].start_offset.IsZero()) {
      specs[i].start_offset = config.start_stagger * i;
    }
  }

  std::vector<ClientEndpoint> clients(config.n_clients);
  std::vector<std::unique_ptr<TcpSender>> server_senders;
  std::vector<std::unique_ptr<TcpReceiver>> server_receivers;
  std::vector<std::unique_ptr<UdpCbrSource>> udp_sources;
  std::vector<std::unique_ptr<TrafficSource>> traffic_sources;
  // Enqueue→delivery latency over every UDP sink, keyed by each packet's
  // DSCP-derived AC. Pure recording (no events, no RNG), so wiring it
  // unconditionally cannot perturb legacy runs.
  LatencyRecorder latency;
  // TCP data segments get the same treatment at the receiving handler
  // (UdpSink's convention: per-packet delay keyed by the DSCP-derived AC,
  // jitter from consecutive same-endpoint deltas). Recording-only as well.
  auto record_tcp_latency = [&scheduler, &latency](ClientEndpoint& ep,
                                                   const Packet& p) {
    if (p.payload_bytes() == 0) {
      return;
    }
    uint8_t ac = p.has_ip() ? AcForTos(p.ip().tos) : kAcBe;
    SimTime delay = scheduler.Now() - p.created_at();
    latency.Record(ac, delay);
    if (ep.tcp_has_delay) {
      SimTime delta = delay > ep.tcp_last_delay ? delay - ep.tcp_last_delay
                                                : ep.tcp_last_delay - delay;
      latency.RecordJitter(ac, delta);
    }
    ep.tcp_last_delay = delay;
    ep.tcp_has_delay = true;
  };

  // Only the disk layout draws placement randomness; forking lazily keeps
  // every legacy configuration's RNG streams untouched.
  Random placement_rng(0);
  if (config.topology == Topology::kUniformDisk) {
    placement_rng = root_rng.Fork();
  }

  // --- fault plan -----------------------------------------------------------
  FaultPlan plan = config.fault_plan;
  plan.SortByTime();
  const bool faults_enabled = !plan.empty();
  if (faults_enabled) {
    CHECK_LT(plan.MaxStation(), config.n_clients)
        << "fault plan references a station index beyond n_clients";
  }
  // present[i]: station i is currently associated and radio-on. A station
  // whose first plan event is a join starts absent and is brought up by that
  // event. Devices and RNG forks are created for every client regardless,
  // so the per-client random streams never depend on the plan.
  std::vector<char> present(static_cast<size_t>(config.n_clients), 1);
  if (faults_enabled) {
    for (int i = 0; i < config.n_clients; ++i) {
      if (plan.StartsAbsent(i)) {
        present[static_cast<size_t>(i)] = 0;
      }
    }
  }
  // Interference bursts need a gate on every PHY. Wrapping only when the
  // plan actually contains bursts keeps every other configuration's loss
  // models — and their RNG draw sequences — untouched.
  std::vector<GatedLossModel*> gated;
  auto install_loss = [&](WifiPhy& phy, std::unique_ptr<LossModel> inner) {
    if (!(faults_enabled && plan.HasBursts())) {
      if (inner != nullptr) {
        phy.set_loss_model(std::move(inner));
      }
      return;
    }
    auto gate = std::make_unique<GatedLossModel>(std::move(inner));
    gated.push_back(gate.get());
    phy.set_loss_model(std::move(gate));
  };

  for (int i = 0; i < config.n_clients; ++i) {
    ClientEndpoint& ep = clients[i];
    ep.node = std::make_unique<Node>(client_ip(i));
    ep.device = std::make_unique<WifiNetDevice>(
        &scheduler, &channel, client_mac_addr(i), client_mac_cfg,
        root_rng.Fork());
    ep.device->phy().set_position(
        PlaceClient(config, specs[i], i, placement_rng));
    std::unique_ptr<LossModel> client_loss;
    if (config.snr.has_value()) {
      client_loss = std::make_unique<SnrLossModel>(*config.snr);
    } else if (specs[i].bernoulli_data_loss > 0.0 ||
               specs[i].bernoulli_control_loss > 0.0) {
      client_loss = std::make_unique<BernoulliLossModel>(
          specs[i].bernoulli_data_loss, specs[i].bernoulli_control_loss);
    }
    install_loss(ep.device->phy(), std::move(client_loss));
    if (config.hack != HackVariant::kOff) {
      HackAgentConfig hc = config.hack_config;
      hc.variant = config.hack;
      ep.device->EnableHack(hc);
    }
    ep.node->AttachWifi(ep.device.get());
    ep.node->SetDefaultRoute(Node::Egress::kWifi, ap_mac_addr);

    // AP routes to this client over the WLAN.
    ap_node->AddRoute(client_ip(i), Node::Egress::kWifi, client_mac_addr(i));

    // Associate both ways so StationIds are dense and deterministic (client
    // i is station i at the AP) before any traffic flows. Stations whose
    // first fault-plan event is a join start absent instead.
    if (present[static_cast<size_t>(i)]) {
      ap_device->mac().Associate(client_mac_addr(i));
      ep.device->mac().Associate(ap_mac_addr);
    }
  }

  // If the AP uses the SNR model for receptions from clients, attach it too
  // (uplink ACKs/data suffer symmetrically).
  std::unique_ptr<LossModel> ap_loss;
  if (config.snr.has_value()) {
    ap_loss = std::make_unique<SnrLossModel>(*config.snr);
  }
  install_loss(ap_device->phy(), std::move(ap_loss));

  // Geometric channel: installed after every PHY is attached and positioned
  // (set_propagation validates that no node sits at the implicit origin).
  if (config.propagation.has_value()) {
    channel.set_propagation(
        std::make_unique<LogDistancePropagation>(*config.propagation));
  }

  // --- flows ------------------------------------------------------------------------
  // Per-client handles the fault engine drives: the UDP source (stopped on
  // crash, resumed on join) or the TCP sender (started late for stations
  // that begin absent; established senders just ride out the outage on
  // their own retransmit timers).
  std::vector<UdpCbrSource*> client_udp_src(
      static_cast<size_t>(config.n_clients), nullptr);
  std::vector<TrafficSource*> client_traffic_src(
      static_cast<size_t>(config.n_clients), nullptr);
  std::vector<TcpSender*> client_tcp_src(
      static_cast<size_t>(config.n_clients), nullptr);
  std::vector<char> flow_started(static_cast<size_t>(config.n_clients), 0);
  int completed = 0;
  for (int i = 0; i < config.n_clients; ++i) {
    ClientEndpoint& ep = clients[i];
    uint16_t server_port = static_cast<uint16_t>(kServerPortBase + i);
    uint16_t client_port = static_cast<uint16_t>(kClientPortBase + i);

    if (config.proto == TransportProto::kUdp && !config.traffic_mix.empty()) {
      // Traffic zoo: one modelled flow per client in place of the uniform
      // CBR source. Per-flow seeds live in a dedicated DeriveRunSeed index
      // namespace (2^32 + i), so they can never collide with campaign run
      // indices derived from the same base seed.
      TrafficSource::Config src_cfg;
      src_cfg.model = ModelForStation(config.traffic_mix,
                                      static_cast<size_t>(i),
                                      static_cast<size_t>(config.n_clients));
      src_cfg.start = specs[i].start_offset;
      src_cfg.stop = config.duration;
      src_cfg.seed = DeriveRunSeed(config.seed,
                                   (uint64_t{1} << 32) +
                                       static_cast<uint64_t>(i));
      src_cfg.rate_scale = config.traffic_rate_scale;
      ep.udp_sink = std::make_unique<UdpSink>(&scheduler);
      ep.udp_sink->set_latency_recorder(&latency);
      std::unique_ptr<TrafficSource> source;
      if (!config.upload) {
        FiveTuple flow{server_ip, client_ip(i), server_port, client_port,
                       kIpProtoUdp};
        source = std::make_unique<TrafficSource>(
            &scheduler, src_cfg, flow,
            [node = server_node.get()](Packet p) {
              node->Send(std::move(p));
            });
        ep.node->RegisterHandler(client_port,
                                 [sink = ep.udp_sink.get()](const Packet& p) {
                                   sink->OnPacket(p);
                                 });
      } else {
        FiveTuple flow{client_ip(i), server_ip, client_port, server_port,
                       kIpProtoUdp};
        source = std::make_unique<TrafficSource>(
            &scheduler, src_cfg, flow,
            [node = ep.node.get()](Packet p) { node->Send(std::move(p)); });
        server_node->RegisterHandler(
            server_port, [sink = ep.udp_sink.get()](const Packet& p) {
              sink->OnPacket(p);
            });
      }
      client_traffic_src[static_cast<size_t>(i)] = source.get();
      if (present[static_cast<size_t>(i)]) {
        source->Start();
        flow_started[static_cast<size_t>(i)] = 1;
      }
      traffic_sources.push_back(std::move(source));
      continue;
    }

    if (config.proto == TransportProto::kUdp) {
      UdpCbrSource::Config src_cfg;
      src_cfg.rate_bps = config.udp_rate_bps / config.n_clients;
      src_cfg.payload_bytes = config.udp_payload_bytes;
      src_cfg.start = specs[i].start_offset;
      src_cfg.stop = config.duration;
      src_cfg.burst_window = config.udp_burst_window;
      if (!config.upload) {
        FiveTuple flow{server_ip, client_ip(i), server_port, client_port,
                       kIpProtoUdp};
        auto source = std::make_unique<UdpCbrSource>(
            &scheduler, src_cfg, flow,
            [node = server_node.get()](Packet p) {
              node->Send(std::move(p));
            });
        ep.udp_sink = std::make_unique<UdpSink>(&scheduler);
        ep.udp_sink->set_latency_recorder(&latency);
        ep.node->RegisterHandler(client_port,
                                 [sink = ep.udp_sink.get()](const Packet& p) {
                                   sink->OnPacket(p);
                                 });
        client_udp_src[static_cast<size_t>(i)] = source.get();
        if (present[static_cast<size_t>(i)]) {
          source->Start();
          flow_started[static_cast<size_t>(i)] = 1;
        }
        udp_sources.push_back(std::move(source));
      } else {
        // Uplink CBR: every client contends for the medium — the dense-cell
        // collision workload RTS/CTS exists for. The per-flow sink lives at
        // the server; it stays owned by the client endpoint so collection
        // is uniform across directions.
        FiveTuple flow{client_ip(i), server_ip, client_port, server_port,
                       kIpProtoUdp};
        auto source = std::make_unique<UdpCbrSource>(
            &scheduler, src_cfg, flow,
            [node = ep.node.get()](Packet p) { node->Send(std::move(p)); });
        ep.udp_sink = std::make_unique<UdpSink>(&scheduler);
        ep.udp_sink->set_latency_recorder(&latency);
        server_node->RegisterHandler(
            server_port, [sink = ep.udp_sink.get()](const Packet& p) {
              sink->OnPacket(p);
            });
        client_udp_src[static_cast<size_t>(i)] = source.get();
        if (present[static_cast<size_t>(i)]) {
          source->Start();
          flow_started[static_cast<size_t>(i)] = 1;
        }
        udp_sources.push_back(std::move(source));
      }
      continue;
    }

    if (!config.traffic_mix.empty() && !config.upload) {
      // TCP + traffic mix: the TCP download keeps running, and each station
      // additionally sinks one modelled background flow from the AP side —
      // the HACK-vs-EDCA interaction workload (compressed-ACK batches
      // contending with tagged voice/video). Background flows live in their
      // own port range (7000+i) and DeriveRunSeed namespace (2^33 + i), so
      // neither the TCP ports nor the UDP-mix seed streams can collide.
      TrafficSource::Config src_cfg;
      src_cfg.model = ModelForStation(config.traffic_mix,
                                      static_cast<size_t>(i),
                                      static_cast<size_t>(config.n_clients));
      src_cfg.start = specs[i].start_offset;
      src_cfg.stop = config.duration;
      src_cfg.seed = DeriveRunSeed(config.seed,
                                   (uint64_t{1} << 33) +
                                       static_cast<uint64_t>(i));
      src_cfg.rate_scale = config.traffic_rate_scale;
      uint16_t bg_port = static_cast<uint16_t>(7000 + i);
      FiveTuple bg_flow{server_ip, client_ip(i), bg_port, bg_port,
                        kIpProtoUdp};
      auto source = std::make_unique<TrafficSource>(
          &scheduler, src_cfg, bg_flow,
          [node = server_node.get()](Packet p) { node->Send(std::move(p)); });
      ep.udp_sink = std::make_unique<UdpSink>(&scheduler);
      ep.udp_sink->set_latency_recorder(&latency);
      ep.node->RegisterHandler(bg_port,
                               [sink = ep.udp_sink.get()](const Packet& p) {
                                 sink->OnPacket(p);
                               });
      client_traffic_src[static_cast<size_t>(i)] = source.get();
      if (present[static_cast<size_t>(i)]) {
        source->Start();
      }
      traffic_sources.push_back(std::move(source));
      // Fall through: the TCP flow below is still the measured foreground.
      // (flow_started tracks the TCP sender; background sources ride the
      // fault engine's Stop/Resume independently.)
    }

    // TCP flow; direction depends on upload/download.
    if (!config.upload) {
      FiveTuple flow{server_ip, client_ip(i), server_port, client_port,
                     kIpProtoTcp};
      auto sender = std::make_unique<TcpSender>(
          &scheduler, config.tcp, flow,
          [node = server_node.get()](Packet p) { node->Send(std::move(p)); },
          config.file_bytes);
      ep.tcp_rx = std::make_unique<TcpReceiver>(
          &scheduler, config.tcp, flow,
          [node = ep.node.get()](Packet p) { node->Send(std::move(p)); });
      ep.tcp_rx->on_data = [&ep, &scheduler](uint64_t bytes) {
        ep.tracker.OnBytesDelivered(scheduler.Now(), bytes);
      };
      ep.node->RegisterHandler(
          client_port,
          [rx = ep.tcp_rx.get(), &ep, &record_tcp_latency](const Packet& p) {
            record_tcp_latency(ep, p);
            rx->OnPacket(p);
          });
      server_node->RegisterHandler(server_port,
                                   [tx = sender.get()](const Packet& p) {
                                     tx->OnPacket(p);
                                   });
      sender->on_complete = [&ep, &scheduler, &completed]() {
        ep.completion = scheduler.Now();
        ++completed;
      };
      client_tcp_src[static_cast<size_t>(i)] = sender.get();
      if (present[static_cast<size_t>(i)]) {
        scheduler.ScheduleAt(specs[i].start_offset,
                             [tx = sender.get()]() { tx->Start(); });
        flow_started[static_cast<size_t>(i)] = 1;
      }
      server_senders.push_back(std::move(sender));
    } else {
      FiveTuple flow{client_ip(i), server_ip, client_port, server_port,
                     kIpProtoTcp};
      ep.tcp_tx = std::make_unique<TcpSender>(
          &scheduler, config.tcp, flow,
          [node = ep.node.get()](Packet p) { node->Send(std::move(p)); },
          config.file_bytes);
      auto receiver = std::make_unique<TcpReceiver>(
          &scheduler, config.tcp, flow,
          [node = server_node.get()](Packet p) { node->Send(std::move(p)); });
      receiver->on_data = [&ep, &scheduler](uint64_t bytes) {
        ep.tracker.OnBytesDelivered(scheduler.Now(), bytes);
      };
      server_node->RegisterHandler(
          server_port,
          [rx = receiver.get(), &ep, &record_tcp_latency](const Packet& p) {
            record_tcp_latency(ep, p);
            rx->OnPacket(p);
          });
      ep.node->RegisterHandler(client_port,
                               [tx = ep.tcp_tx.get()](const Packet& p) {
                                 tx->OnPacket(p);
                               });
      ep.tcp_tx->on_complete = [&ep, &scheduler, &completed]() {
        ep.completion = scheduler.Now();
        ++completed;
      };
      client_tcp_src[static_cast<size_t>(i)] = ep.tcp_tx.get();
      if (present[static_cast<size_t>(i)]) {
        scheduler.ScheduleAt(specs[i].start_offset,
                             [tx = ep.tcp_tx.get()]() { tx->Start(); });
        flow_started[static_cast<size_t>(i)] = 1;
      }
      server_receivers.push_back(std::move(receiver));
    }
  }

  // --- fault engine + watchdog ------------------------------------------------------
  const char* topo_name = config.topology == Topology::kRing ? "ring"
                          : config.topology == Topology::kUniformDisk
                              ? "disk"
                              : "hidden";
  std::string repro =
      "seed=" + std::to_string(config.seed) + " topo=" + topo_name +
      " proto=" +
      std::string(config.proto == TransportProto::kUdp ? "udp" : "tcp") +
      (config.upload ? "-up" : "") +
      " n=" + std::to_string(config.n_clients) +
      " dur_us=" + std::to_string(config.duration.ns() / 1000);
  if (faults_enabled) {
    repro += " plan=\"" + plan.ToString() + "\"";
  }
  // Any CHECK failure from here on prints the full repro recipe.
  SetAbortContext(repro);

  FaultStats fault_stats;
  if (faults_enabled) {
    auto apply = [&](const FaultEvent& ev) {
      fault_stats.last_fault_time = scheduler.Now();
      switch (ev.type) {
        case FaultType::kCrash:
        case FaultType::kLeave: {
          size_t s = static_cast<size_t>(ev.station);
          if (!present[s]) break;
          present[s] = 0;
          if (ev.type == FaultType::kLeave) {
            // Clean departure: the AP is told and frees the station's
            // queue, service slot and StationId immediately.
            ap_device->mac().Disassociate(client_mac_addr(ev.station));
            ++fault_stats.leaves;
          } else {
            // Silent crash: the AP finds out the hard way (retry give-ups
            // feeding the dead-peer flush).
            ++fault_stats.crashes;
          }
          if (client_udp_src[s] != nullptr) {
            client_udp_src[s]->Stop();
          }
          if (client_traffic_src[s] != nullptr) {
            client_traffic_src[s]->Stop();
          }
          clients[s].device->phy().SetRadioOn(false);
          clients[s].device->mac().ResetRadioState();
          break;
        }
        case FaultType::kJoin: {
          size_t s = static_cast<size_t>(ev.station);
          if (present[s]) break;
          present[s] = 1;
          ++fault_stats.joins;
          fault_stats.last_recovery_time = scheduler.Now();
          clients[s].device->phy().SetRadioOn(true);
          // Fresh association both ways; Associate() scrubs whatever state
          // the AP still holds from the station's previous life.
          ap_device->mac().Associate(client_mac_addr(ev.station));
          clients[s].device->mac().Associate(ap_mac_addr);
          // Independent ifs, not an else-chain: a TCP+mix station owns both
          // a background TrafficSource (resumed) and a TCP sender (started
          // once). For legacy configs the source kinds are mutually
          // exclusive, so this is the same sequence of calls as before.
          if (client_udp_src[s] != nullptr) {
            client_udp_src[s]->Resume(scheduler.Now(), config.duration);
          }
          if (client_traffic_src[s] != nullptr) {
            client_traffic_src[s]->Resume(scheduler.Now(), config.duration);
          }
          if (client_tcp_src[s] != nullptr && !flow_started[s]) {
            client_tcp_src[s]->Start();
          }
          flow_started[s] = 1;
          break;
        }
        case FaultType::kRadioReset: {
          size_t s = static_cast<size_t>(ev.station);
          if (!present[s]) break;
          ++fault_stats.radio_resets;
          clients[s].device->phy().SetRadioOn(false);
          clients[s].device->mac().ResetRadioState();
          clients[s].device->phy().SetRadioOn(true);
          // Only the client re-associates: the AP never saw the reset, and
          // its live downlink queue toward the station must survive it.
          clients[s].device->mac().Associate(ap_mac_addr);
          break;
        }
        case FaultType::kApDown: {
          ++fault_stats.ap_outages;
          ap_device->phy().SetRadioOn(false);
          ap_device->mac().ResetRadioState();
          break;
        }
        case FaultType::kApUp: {
          ++fault_stats.ap_restarts;
          fault_stats.last_recovery_time = scheduler.Now();
          ap_device->phy().SetRadioOn(true);
          // Rebuild association state for every station still present, in
          // index order — StationIds come out dense, exactly like at boot.
          // The stations reassociate too: reassociation tears down both
          // sides' Block ACK windows, so the restarted AP's fresh sequence
          // numbers are not discarded as ancient duplicates.
          for (int i = 0; i < config.n_clients; ++i) {
            if (present[static_cast<size_t>(i)]) {
              ap_device->mac().Associate(client_mac_addr(i));
              clients[static_cast<size_t>(i)].device->mac().Associate(
                  ap_mac_addr);
            }
          }
          break;
        }
        case FaultType::kBurstStart: {
          ++fault_stats.bursts;
          for (GatedLossModel* gate : gated) {
            gate->set_extra_loss(ev.extra_loss);
          }
          break;
        }
        case FaultType::kBurstEnd: {
          for (GatedLossModel* gate : gated) {
            gate->set_extra_loss(0.0);
          }
          break;
        }
      }
    };
    for (const FaultEvent& ev : plan.events) {
      scheduler.ScheduleAt(ev.at, [apply, ev]() { apply(ev); });
    }
  }

  WatchdogConfig wd_cfg;
  wd_cfg.interval = config.watchdog_interval;
  wd_cfg.abort_on_trip = config.watchdog_abort_on_trip;
  SimWatchdog watchdog(&scheduler, wd_cfg);
  if (!wd_cfg.interval.IsZero()) {
    // Forward progress = PPDUs on the medium; a station holding backlog
    // while the channel stays silent for several audit periods is a stall.
    watchdog.set_progress_probe(
        [&channel]() { return channel.airtime().ppdus; });
    watchdog.set_backlog_probe([&clients, ap = ap_device.get()]() {
      if (ap->mac().HasBacklog()) return true;
      for (const ClientEndpoint& ep : clients) {
        if (ep.device->mac().HasBacklog()) return true;
      }
      return false;
    });
    watchdog.set_nav_probe([&clients, ap = ap_device.get()]() {
      SimTime nav = ap->mac().nav_until();
      for (const ClientEndpoint& ep : clients) {
        nav = std::max(nav, ep.device->mac().nav_until());
      }
      return nav;
    });
    watchdog.set_repro(repro);
    watchdog.Start();
  }

  // --- run ----------------------------------------------------------------------------
  SimTime end;
  if (config.file_bytes > 0 && config.proto == TransportProto::kTcp) {
    // Run until all transfers complete (bounded by a generous cap).
    SimTime cap = config.duration * 50;
    while (completed < config.n_clients && scheduler.Now() < cap) {
      if (scheduler.Run(200'000) == 0) {
        break;  // queue drained (stall would be a bug; tests check this)
      }
    }
    end = scheduler.Now();
  } else {
    scheduler.RunUntil(config.duration);
    end = config.duration;
  }

  // --- collect ---------------------------------------------------------------------------
  ScenarioResult result;
  result.sim_end = end;
  result.airtime = channel.airtime();
  result.events_executed = scheduler.events_executed();
  for (size_t i = 0; i < kEventClassCount; ++i) {
    result.events_by_class[i] =
        scheduler.executed_in_class(static_cast<EventClass>(i));
  }
  result.ap_mac = ap_device->mac().stats();
  result.ap_phy = ap_device->phy().stats();
  if (ap_device->hack() != nullptr) {
    result.ap_hack = ap_device->hack()->stats();
    result.crc_failures += result.ap_hack.crc_failures_at_ap;
  }

  SimTime steady_from = specs.empty() ? SimTime::Zero()
                                      : specs.back().start_offset +
                                            SimTime::Seconds(2);
  if (steady_from >= end) {
    steady_from = SimTime::Nanos(end.ns() / 2);
  }

  for (int i = 0; i < config.n_clients; ++i) {
    ClientEndpoint& ep = clients[i];
    ClientResult cr;
    cr.bytes_delivered = ep.tracker.total_bytes();
    if (config.proto == TransportProto::kUdp) {
      cr.bytes_delivered = ep.udp_sink->bytes_received();
      cr.goodput_mbps = ep.udp_sink->tracker().TotalGoodputMbps(end);
      cr.steady_goodput_mbps =
          ep.udp_sink->tracker().GoodputMbps(steady_from, end);
    } else {
      SimTime measure_end = ep.completion.IsZero() ? end : ep.completion;
      cr.goodput_mbps = static_cast<double>(cr.bytes_delivered) * 8.0 /
                        std::max<int64_t>(1, (measure_end -
                                              specs[i].start_offset).ns()) *
                        1e9 / 1e6;
      if (steady_from < measure_end) {
        cr.steady_goodput_mbps =
            ep.tracker.GoodputMbps(steady_from, measure_end);
      }
      cr.completion_time = ep.completion;
    }
    cr.mac = ep.device->mac().stats();
    cr.phy = ep.device->phy().stats();
    if (ep.device->hack() != nullptr) {
      cr.hack = ep.device->hack()->stats();
      result.crc_failures += cr.hack.crc_failures_at_ap;
    }
    if (ep.tcp_rx != nullptr) {
      cr.tcp_rx = ep.tcp_rx->stats();
    }
    if (ep.tcp_tx != nullptr) {
      cr.tcp_tx = ep.tcp_tx->stats();
    }
    result.aggregate_goodput_mbps += cr.goodput_mbps;
    result.steady_aggregate_goodput_mbps += cr.steady_goodput_mbps;
    result.clients.push_back(std::move(cr));
  }
  for (const auto& s : server_senders) {
    result.tcp_timeouts += s->stats().timeouts;
  }
  for (int i = 0; i < config.n_clients; ++i) {
    if (clients[i].tcp_tx != nullptr) {
      result.tcp_timeouts += clients[i].tcp_tx->stats().timeouts;
    }
  }

  result.fault = fault_stats;
  result.watchdog = watchdog.stats();
  result.final_pending_events = scheduler.pending_events();
  for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
    result.ac_latency[ac] = latency.Summarize(ac);
  }
  // Recovery goodput: aggregate strictly after the plan's last recovery
  // event (the churn/outage bench gates this against the fault-free row).
  SimTime recovery = fault_stats.last_recovery_time;
  if (!recovery.IsZero() && recovery < end) {
    for (int i = 0; i < config.n_clients; ++i) {
      const GoodputTracker& tracker =
          config.proto == TransportProto::kUdp
              ? clients[i].udp_sink->tracker()
              : clients[i].tracker;
      result.post_fault_goodput_mbps += tracker.GoodputMbps(recovery, end);
    }
  }
  return result;
}

}  // namespace hacksim
