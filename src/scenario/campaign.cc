#include "src/scenario/campaign.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/util/logging.h"

namespace hacksim {

int ResolveJobs(int jobs) {
  if (jobs > 0) {
    return jobs;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& run) {
  ParallelForOrdered(n, jobs, run, {});
}

void ParallelForOrdered(size_t n, int jobs,
                        const std::function<void(size_t)>& run,
                        const std::function<void(size_t)>& consume) {
  CHECK(run);
  int workers = ResolveJobs(jobs);
  if (n < static_cast<size_t>(workers)) {
    workers = static_cast<int>(n);
  }
  if (workers <= 1) {
    // Serial reference path: no pool, no synchronisation — byte-for-byte
    // the legacy single-threaded execution.
    for (size_t i = 0; i < n; ++i) {
      run(i);
      if (consume) {
        consume(i);
      }
    }
    return;
  }

  // Work is claimed through one atomic counter; completion flags feed the
  // in-order consumer on the calling thread. Determinism does not depend on
  // any of this machinery — each run's output is a pure function of its
  // index — it only decides wall-clock packing.
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<char> done(n, 0);

  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      run(i);
      {
        std::lock_guard<std::mutex> lock(mu);
        done[i] = 1;
      }
      done_cv.notify_one();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back(worker);
  }

  // The calling thread drains the contiguous completed prefix in index
  // order. Without a consumer it just waits for the tail.
  {
    std::unique_lock<std::mutex> lock(mu);
    for (size_t i = 0; i < n; ++i) {
      done_cv.wait(lock, [&]() { return done[i] != 0; });
      if (consume) {
        // Consumers may print/aggregate at length; drop the lock so
        // workers finishing other runs never block on the consumer.
        lock.unlock();
        consume(i);
        lock.lock();
      }
    }
  }

  for (std::thread& t : pool) {
    t.join();
  }
}

std::vector<ScenarioResult> RunCampaign(
    const std::vector<ScenarioConfig>& configs, int jobs) {
  std::vector<ScenarioResult> results(configs.size());
  ParallelFor(configs.size(), jobs,
              [&](size_t i) { results[i] = RunScenario(configs[i]); });
  return results;
}

}  // namespace hacksim
