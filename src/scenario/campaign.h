// Parallel campaign engine: fans independent simulation runs across a
// worker pool with deterministic, worker-independent results.
//
// The simulator core is thread-clean per run — a Scheduler, its nodes and
// every RNG stream live inside one RunScenario call, and the few pieces of
// process-global mutable state (the Packet header slab and uid counter,
// the abort-context repro string) are thread_local — so N concurrent
// RunScenario calls are fully isolated. On top of that, this engine
// guarantees the *campaign* is deterministic:
//
//  * Run seeds come from DeriveRunSeed(base_seed, matrix_index) — a pure
//    function of the matrix position, never of thread identity or
//    scheduling order.
//  * Results land in caller-owned per-index storage; nothing about a run's
//    output depends on which worker executed it or when.
//  * --jobs=1 executes inline on the calling thread with no pool at all,
//    so the serial path is exactly the legacy single-threaded behaviour.
//
// tests/campaign_test.cc pins the contract: the same matrix run serially
// and with 8 workers must produce bit-identical per-run results.
#ifndef SRC_SCENARIO_CAMPAIGN_H_
#define SRC_SCENARIO_CAMPAIGN_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "src/scenario/download_scenario.h"

namespace hacksim {

// Resolves a --jobs value: positive is taken literally, zero or negative
// means "all hardware threads" (hardware_concurrency, at least 1).
int ResolveJobs(int jobs);

// Executes run(i) for every i in [0, n) across `jobs` workers (resolved via
// ResolveJobs; capped at n). Work is handed out through an atomic counter,
// so workers stay busy regardless of per-run cost skew. `run` must write
// its result into caller-owned per-index storage and must not touch another
// index's state. jobs <= 1 runs inline with no threads.
void ParallelFor(size_t n, int jobs, const std::function<void(size_t)>& run);

// Like ParallelFor, but additionally calls consume(i) on the *calling*
// thread, in strict index order, as soon as runs 0..i have all completed —
// a campaign driver can stream per-run report lines live while later runs
// are still executing, and the output text is byte-identical at any --jobs.
void ParallelForOrdered(size_t n, int jobs,
                        const std::function<void(size_t)>& run,
                        const std::function<void(size_t)>& consume);

// Runs every configuration across `jobs` workers; results are positional.
// Each config should carry a seed derived via DeriveRunSeed so the matrix
// is reproducible from (base_seed, index) alone.
std::vector<ScenarioResult> RunCampaign(
    const std::vector<ScenarioConfig>& configs, int jobs);

}  // namespace hacksim

#endif  // SRC_SCENARIO_CAMPAIGN_H_
