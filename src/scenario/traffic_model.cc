#include "src/scenario/traffic_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace hacksim {
namespace {

// --- model constants (pinned by traffic_model_test goldens) -------------------

// Voice: G.711 over RTP — 160 B payload every 20 ms = 64 kbps.
constexpr uint32_t kVoiceBytes = 160;
constexpr SimTime kVoiceInterval = SimTime::Millis(20);

// Video: 1200 B frames every 3 ms while ON (3.2 Mbps); exponential ON/OFF
// with 500 ms means, so the long-run offered load is ~1.6 Mbps.
constexpr uint32_t kVideoBytes = 1200;
constexpr SimTime kVideoFrameInterval = SimTime::Millis(3);
constexpr double kVideoOnMeanSec = 0.5;
constexpr double kVideoOffMeanSec = 0.5;

// Web: exponential think time (500 ms mean), then one Pareto-sized object
// (alpha 1.3, scale 2 KB, capped at 256 KB to bound the single-event burst)
// emitted as back-to-back MTU-sized packets.
constexpr double kWebThinkMeanSec = 0.5;
constexpr double kWebParetoAlpha = 1.3;
constexpr double kWebObjectScaleBytes = 2048.0;
constexpr double kWebObjectCapBytes = 256.0 * 1024.0;
constexpr uint32_t kWebPacketBytes = 1460;

// IoT: exponential inter-chirp gap (2 s mean), 1-4 packets of 96 B each.
constexpr double kIotGapMeanSec = 2.0;
constexpr uint32_t kIotBytes = 96;
constexpr uint32_t kIotMaxPacketsPerChirp = 4;

}  // namespace

TrafficModel ModelForStation(const std::vector<TrafficMixEntry>& mix,
                             size_t station, size_t n_stations) {
  CHECK(!mix.empty());
  double cumulative = 0.0;
  for (const TrafficMixEntry& entry : mix) {
    cumulative += entry.fraction;
    // Boundary after this row: llround keeps {.2, .8} × 10 at exactly 2/8.
    auto boundary = static_cast<size_t>(std::llround(
        cumulative * static_cast<double>(n_stations)));
    if (station < boundary) {
      return entry.model;
    }
  }
  return mix.back().model;  // fractions fell short of 1.0: last row absorbs
}

uint8_t TosForModel(TrafficModel model) {
  switch (model) {
    case TrafficModel::kCbrVoice:
      return 0xC0;  // precedence 6 -> AC_VO
    case TrafficModel::kOnOffVideo:
      return 0xA0;  // precedence 5 -> AC_VI
    case TrafficModel::kParetoWeb:
      return 0x00;  // best effort
    case TrafficModel::kIotChirp:
      return 0x20;  // precedence 1 -> AC_BK
  }
  return 0x00;
}

const char* TrafficModelName(TrafficModel model) {
  switch (model) {
    case TrafficModel::kCbrVoice:
      return "voice";
    case TrafficModel::kOnOffVideo:
      return "video";
    case TrafficModel::kParetoWeb:
      return "web";
    case TrafficModel::kIotChirp:
      return "iot";
  }
  return "?";
}

std::optional<TrafficModel> ParseTrafficModel(std::string_view name) {
  if (name == "voice") {
    return TrafficModel::kCbrVoice;
  }
  if (name == "video") {
    return TrafficModel::kOnOffVideo;
  }
  if (name == "web") {
    return TrafficModel::kParetoWeb;
  }
  if (name == "iot") {
    return TrafficModel::kIotChirp;
  }
  return std::nullopt;
}

TrafficSource::TrafficSource(Scheduler* scheduler, Config config,
                             FiveTuple flow, std::function<void(Packet)> send)
    : scheduler_(scheduler),
      config_(config),
      flow_(flow),
      send_(std::move(send)),
      rng_(config.seed),
      tos_(TosForModel(config.model)) {
  CHECK_GT(config_.rate_scale, 0.0);
}

SimTime TrafficSource::Scaled(SimTime t) const {
  if (config_.rate_scale == 1.0) {
    return t;
  }
  return SimTime::Nanos(static_cast<int64_t>(
      static_cast<double>(t.ns()) / config_.rate_scale));
}

void TrafficSource::Start() {
  SimTime first = config_.start;
  switch (config_.model) {
    case TrafficModel::kCbrVoice:
      // Random initial phase inside one frame interval, so a cell of voice
      // flows does not tick in lockstep.
      first = first + SimTime::Nanos(static_cast<int64_t>(
                          rng_.NextBounded(Scaled(kVoiceInterval).ns())));
      break;
    case TrafficModel::kOnOffVideo:
    case TrafficModel::kParetoWeb:
    case TrafficModel::kIotChirp:
      break;
  }
  ArmTick(first);
}

void TrafficSource::Stop() {
  config_.stop = scheduler_->Now();
  ++epoch_;  // the pending Tick carries the old epoch and dies on arrival
  video_on_until_ = SimTime::Zero();
}

void TrafficSource::Resume(SimTime at, SimTime stop) {
  ++epoch_;
  config_.stop = stop;
  video_on_until_ = SimTime::Zero();
  ArmTick(std::max(at, scheduler_->Now()));
}

void TrafficSource::ArmTick(SimTime at) {
  if (at >= config_.stop) {
    return;
  }
  scheduler_->ScheduleAt(at, [this, epoch = epoch_]() { Tick(epoch); },
                         EventClass::kTransportTimer);
}

void TrafficSource::EmitOne(uint32_t payload_bytes) {
  Packet p = Packet::MakeUdp(flow_.src_ip, flow_.dst_ip, flow_.src_port,
                             flow_.dst_port, payload_bytes);
  p.mutable_ip().tos = tos_;
  p.set_created_at(scheduler_->Now());
  send_(std::move(p));
  ++packets_sent_;
  bytes_sent_ += payload_bytes;
}

void TrafficSource::Tick(uint64_t epoch) {
  if (epoch != epoch_ || scheduler_->Now() >= config_.stop) {
    return;
  }
  SimTime now = scheduler_->Now();
  switch (config_.model) {
    case TrafficModel::kCbrVoice: {
      EmitOne(kVoiceBytes);
      ArmTick(now + Scaled(kVoiceInterval));
      return;
    }
    case TrafficModel::kOnOffVideo: {
      if (now >= video_on_until_) {
        // Entering a fresh ON burst: draw its length now, first frame goes
        // out immediately.
        video_on_until_ =
            now + Scaled(SimTime::FromSecondsF(
                      rng_.NextExponential(kVideoOnMeanSec)));
      }
      EmitOne(kVideoBytes);
      SimTime next = now + kVideoFrameInterval;
      if (next >= video_on_until_) {
        // Burst over: go silent for an exponential OFF period.
        video_on_until_ = SimTime::Zero();
        next = now + Scaled(SimTime::FromSecondsF(
                         rng_.NextExponential(kVideoOffMeanSec)));
      }
      ArmTick(next);
      return;
    }
    case TrafficModel::kParetoWeb: {
      // Pareto via inverse transform: size = scale * U^(-1/alpha).
      double u = rng_.NextDouble();
      if (u <= 0.0) {
        u = 1e-12;  // NextDouble is [0,1); guard the pole
      }
      double size = kWebObjectScaleBytes *
                    std::pow(u, -1.0 / kWebParetoAlpha);
      size = std::min(size, kWebObjectCapBytes);
      auto remaining = static_cast<uint64_t>(size);
      // The whole object lands in the MAC queue in one event — an upstream
      // bulk handoff; drop-tail back-pressure is part of the workload.
      while (remaining > 0) {
        uint32_t chunk = static_cast<uint32_t>(
            std::min<uint64_t>(remaining, kWebPacketBytes));
        EmitOne(chunk);
        remaining -= chunk;
      }
      ArmTick(now + Scaled(SimTime::FromSecondsF(
                       rng_.NextExponential(kWebThinkMeanSec))));
      return;
    }
    case TrafficModel::kIotChirp: {
      uint64_t burst = 1 + rng_.NextBounded(kIotMaxPacketsPerChirp);
      for (uint64_t i = 0; i < burst; ++i) {
        EmitOne(kIotBytes);
      }
      ArmTick(now + Scaled(SimTime::FromSecondsF(
                       rng_.NextExponential(kIotGapMeanSec))));
      return;
    }
  }
}

}  // namespace hacksim
