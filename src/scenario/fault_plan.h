// Fault injection for scenario runs: a FaultPlan is a deterministic,
// serializable list of timed fault events — station churn (silent crash vs.
// clean disassociate, rejoin), mid-run joins, AP outage + restart, radio
// interface resets, and interference bursts. Plans are either handcrafted
// (the bench rows), parsed from a string (`hacksim_run --fault-plan=...`,
// reproduction recipes), or generated from a dedicated RNG stream
// (Generate) — never from the scenario's root RNG, so legacy streams stay
// untouched and an empty plan leaves every run bit-identical.
//
// Event semantics (applied by the scenario's fault engine; see
// docs/robustness.md for the degradation model):
//   crash@T:i   station i silently vanishes: radio off, MAC state wiped,
//               sources stopped. The AP keeps its association state and
//               must degrade via bounded retry/give-up.
//   leave@T:i   clean disassociate: like crash, but the AP also flushes the
//               station's queues and recycles its StationId.
//   join@T:i    station i (re)joins: radio on, re-associates, traffic
//               resumes. A station whose *first* event is a join starts the
//               run absent.
//   reset@T:i   instantaneous radio interface reset: station i loses all
//               MAC state (queues, sequence rings, NAV) but stays up and
//               immediately re-associates to the AP.
//   ap-down@T   AP outage: radio off, MAC state wiped. Downlink traffic is
//               dropped at the dead interface.
//   ap-up@T     AP restart: radio on, association state rebuilt for every
//               currently-present station.
//   burst@T:p   interference burst start: every radio's loss model gains an
//               independent extra corruption probability p until burst-end.
//   burst-end@T ends the burst window (last burst@ wins while overlapping).
//
// Times serialize in integer microseconds (`crash@120000us:3`), so a plan
// string round-trips exactly.
#ifndef SRC_SCENARIO_FAULT_PLAN_H_
#define SRC_SCENARIO_FAULT_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/sim_time.h"

namespace hacksim {

enum class FaultType : uint8_t {
  kCrash,
  kLeave,
  kJoin,
  kRadioReset,
  kApDown,
  kApUp,
  kBurstStart,
  kBurstEnd,
};

struct FaultEvent {
  SimTime at;
  FaultType type = FaultType::kCrash;
  int station = -1;         // station-scoped events only
  double extra_loss = 0.0;  // kBurstStart only

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  // Sorted by time (ties keep insertion order).
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  bool HasBursts() const;
  // True iff station i's first scheduled event is a join — the scenario
  // then builds the station but brings it up only when the join fires.
  bool StartsAbsent(int station) const;
  // Largest station index referenced, or -1 for none (plan validation).
  int MaxStation() const;
  // Stable sort by time; call after hand-assembling events out of order.
  void SortByTime();

  std::string ToString() const;
  static std::optional<FaultPlan> Parse(std::string_view text);

  // Deterministic random plan for an n_clients/duration cell: a mix of
  // churn (crash/leave + rejoin), radio resets, an optional AP outage and
  // interference bursts, all drawn from Random(plan_seed) only.
  static FaultPlan Generate(uint64_t plan_seed, int n_clients,
                            SimTime duration);

  // Bench presets (deterministic, no RNG).
  static FaultPlan Churn(int n_clients, SimTime duration);
  static FaultPlan ApOutage(SimTime duration);
};

// Fault-engine counters, surfaced through ScenarioResult.
struct FaultStats {
  uint64_t crashes = 0;
  uint64_t leaves = 0;
  uint64_t joins = 0;
  uint64_t radio_resets = 0;
  uint64_t ap_outages = 0;
  uint64_t ap_restarts = 0;
  uint64_t bursts = 0;
  SimTime last_fault_time;
  // Last moment service was restored (AP restart or final rejoin); the
  // post-fault goodput window starts here.
  SimTime last_recovery_time;

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

}  // namespace hacksim

#endif  // SRC_SCENARIO_FAULT_PLAN_H_
