// Traffic-model zoo for mixed-workload scenarios (docs/qos.md).
//
// Four station archetypes, each mapped onto an 802.11e access category via
// the DSCP byte its packets carry:
//   * kCbrVoice  — G.711-shaped constant bit rate: 160 B every 20 ms
//                  (64 kbps) with a per-flow random initial phase. tos 0xC0
//                  (precedence 6 → AC_VO).
//   * kOnOffVideo — bursty streaming video: exponential ON/OFF periods
//                  (mean 500 ms each); during ON, 1200 B frames every 3 ms
//                  (3.2 Mbps on-rate, ~1.6 Mbps mean). tos 0xA0 (AC_VI).
//   * kParetoWeb — heavy-tailed web/elephant traffic: exponential think
//                  time (mean 500 ms), then one Pareto-sized object
//                  (alpha 1.3, 2 KB scale, capped) handed to the MAC as
//                  back-to-back 1460 B packets. tos 0 (AC_BE).
//   * kIotChirp  — sparse telemetry: exponential inter-chirp gap (mean
//                  2 s), each chirp 1-4 packets of 96 B. tos 0x20 (AC_BK).
//
// Determinism: every flow owns a private RNG stream seeded via
// DeriveRunSeed(scenario seed, flow index) at the call site — flows never
// share draws, so adding a station (or reordering construction) cannot
// shift another flow's emission schedule. Station→model assignment is
// index-arithmetic over the mix fractions, with no RNG at all.
#ifndef SRC_SCENARIO_TRAFFIC_MODEL_H_
#define SRC_SCENARIO_TRAFFIC_MODEL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "src/net/address.h"
#include "src/packet/packet.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"

namespace hacksim {

enum class TrafficModel : uint8_t {
  kCbrVoice = 0,
  kOnOffVideo = 1,
  kParetoWeb = 2,
  kIotChirp = 3,
};

// One row of a scenario's traffic mix: `fraction` of the stations run
// `model`. Fractions are cumulative over station index (deterministic, no
// RNG): with {voice .2, web .8} and 10 stations, stations 0-1 are voice and
// 2-9 web. A shortfall (< 1.0 total) assigns the remainder to the last row.
struct TrafficMixEntry {
  TrafficModel model = TrafficModel::kParetoWeb;
  double fraction = 1.0;
};

// The model station `station` (of `n_stations`) runs under `mix`.
// Precondition: mix is non-empty.
TrafficModel ModelForStation(const std::vector<TrafficMixEntry>& mix,
                             size_t station, size_t n_stations);

// DSCP byte stamped on the model's packets (drives AcForTos at the MAC).
uint8_t TosForModel(TrafficModel model);
const char* TrafficModelName(TrafficModel model);
// Parses "voice" / "video" / "web" / "iot" (the names TrafficModelName
// prints, lowercased); nullopt on anything else.
std::optional<TrafficModel> ParseTrafficModel(std::string_view name);

// A single flow of one model. Emission is a self-rescheduling event chain
// with the same epoch-stranding Stop()/Resume() contract as UdpCbrSource,
// so the fault-injection engine can drive it identically.
class TrafficSource {
 public:
  struct Config {
    TrafficModel model = TrafficModel::kParetoWeb;
    SimTime start;
    SimTime stop = SimTime::Max();
    // Per-flow RNG stream seed; pass DeriveRunSeed(scenario_seed, flow_id).
    uint64_t seed = 1;
    // Scales offered load: intervals (CBR spacing, think/off/chirp gaps)
    // divide by this, so 2.0 doubles the mean rate.
    double rate_scale = 1.0;
  };

  TrafficSource(Scheduler* scheduler, Config config, FiveTuple flow,
                std::function<void(Packet)> send);

  void Start();
  void Stop();
  void Resume(SimTime at, SimTime stop = SimTime::Max());

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint8_t tos() const { return tos_; }

 private:
  // One scheduled step of the model's chain; re-arms itself until stop.
  void Tick(uint64_t epoch);
  void ArmTick(SimTime at);
  void EmitOne(uint32_t payload_bytes);
  SimTime Scaled(SimTime t) const;

  Scheduler* scheduler_;
  Config config_;
  FiveTuple flow_;
  std::function<void(Packet)> send_;
  Random rng_;
  uint8_t tos_;
  uint64_t packets_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t epoch_ = 0;
  // kOnOffVideo state: end of the current ON burst; zero while OFF.
  SimTime video_on_until_;
};

}  // namespace hacksim

#endif  // SRC_SCENARIO_TRAFFIC_MODEL_H_
