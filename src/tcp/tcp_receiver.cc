#include "src/tcp/tcp_receiver.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hacksim {

TcpReceiver::TcpReceiver(Scheduler* scheduler, TcpConfig config,
                         FiveTuple flow, std::function<void(Packet)> send)
    : scheduler_(scheduler),
      config_(config),
      flow_(flow),
      send_(std::move(send)) {}

void TcpReceiver::OnPacket(const Packet& packet) {
  if (!packet.has_tcp()) {
    return;
  }
  const TcpHeader& tcp = packet.tcp();

  if (tcp.flag_syn && !tcp.flag_ack) {
    // New connection (or retransmitted SYN).
    irs_ = tcp.seq;
    rcv_nxt_ = irs_ + 1;
    peer_timestamps_ok_ = tcp.timestamps.has_value() && config_.use_timestamps;
    peer_sack_ok_ = tcp.sack_permitted && config_.use_sack;
    if (tcp.timestamps.has_value()) {
      ts_recent_ = tcp.timestamps->tsval;
    }
    state_ = State::kSynRcvd;
    SendSynAck();
    return;
  }
  if (state_ == State::kListen) {
    return;
  }
  if (state_ == State::kSynRcvd) {
    if (tcp.flag_ack && tcp.ack == iss_ + 1) {
      state_ = State::kEstablished;
      snd_nxt_ = iss_ + 1;
    } else {
      return;
    }
  }
  if (packet.payload_bytes() > 0) {
    AcceptData(packet);
  }
}

void TcpReceiver::SendSynAck() {
  TcpHeader tcp;
  FiveTuple back = flow_.Reversed();
  tcp.src_port = back.src_port;
  tcp.dst_port = back.dst_port;
  tcp.seq = iss_;
  tcp.ack = rcv_nxt_;
  tcp.flag_syn = true;
  tcp.flag_ack = true;
  tcp.window = 65535;
  tcp.mss = static_cast<uint16_t>(config_.mss);
  tcp.window_scale = config_.window_scale;
  tcp.sack_permitted = config_.use_sack;
  if (peer_timestamps_ok_) {
    tcp.timestamps = TcpTimestamps{TsClock(scheduler_->Now()), ts_recent_};
  }
  Packet p = Packet::MakeTcp(back.src_ip, back.dst_ip, tcp, 0);
  p.mutable_ip().tos = config_.tos;
  p.set_created_at(scheduler_->Now());
  send_(std::move(p));
}

void TcpReceiver::AcceptData(const Packet& packet) {
  const TcpHeader& tcp = packet.tcp();
  ++stats_.segments_received;
  uint32_t seq = tcp.seq;
  uint32_t end = seq + packet.payload_bytes();

  // RFC 7323: update the echo value from segments at the left window edge.
  if (tcp.timestamps.has_value() && Seq32Le(seq, rcv_nxt_)) {
    ts_recent_ = tcp.timestamps->tsval;
  }

  if (Seq32Le(end, rcv_nxt_)) {
    // Entirely old (spurious retransmission): re-ACK immediately.
    MaybeSendAck(/*force_immediate=*/true);
    return;
  }

  bool had_ooo = !ooo_.empty();
  bool advanced = false;
  if (Seq32Le(seq, rcv_nxt_)) {
    // In-order (possibly partially old): advance, then absorb any
    // out-of-order blocks this joins with.
    uint32_t old_rcv_nxt = rcv_nxt_;
    rcv_nxt_ = end;
    advanced = true;
    auto it = ooo_.begin();
    while (it != ooo_.end() && Seq32Le(it->first, rcv_nxt_)) {
      rcv_nxt_ = Seq32Max(rcv_nxt_, it->second);
      it = ooo_.erase(it);
    }
    uint64_t delivered = rcv_nxt_ - old_rcv_nxt;
    stats_.bytes_delivered += delivered;
    if (on_data) {
      on_data(delivered);
    }
  } else {
    // Out of order: store and merge the block.
    ++stats_.out_of_order_segments;
    last_sacked_edge_ = seq;
    auto [it, inserted] = ooo_.emplace(seq, end);
    if (!inserted && Seq32Gt(end, it->second)) {
      it->second = end;
    }
    it = ooo_.begin();
    while (it != ooo_.end()) {
      auto next = std::next(it);
      if (next != ooo_.end() && Seq32Le(next->first, it->second)) {
        it->second = Seq32Max(it->second, next->second);
        ooo_.erase(next);
      } else {
        ++it;
      }
    }
  }

  // ACK policy (RFC 5681 §4.2): immediate ACK for out-of-order segments
  // (dupacks drive fast retransmit) and for segments filling all or part of
  // a gap; otherwise the delayed-ACK rule applies.
  ++segments_since_ack_;
  bool force = !advanced || (advanced && had_ooo);
  MaybeSendAck(force);
}

void TcpReceiver::MaybeSendAck(bool force_immediate) {
  if (!config_.delayed_ack || force_immediate ||
      segments_since_ack_ >= config_.delayed_ack_segments) {
    SendAck();
    return;
  }
  if (delack_event_ == kInvalidEventId) {
    delack_event_ = scheduler_->ScheduleIn(
        config_.delayed_ack_timeout, [this]() { OnDelackTimer(); },
        EventClass::kTransportTimer);
  }
}

void TcpReceiver::OnDelackTimer() {
  delack_event_ = kInvalidEventId;
  ++stats_.delack_timer_fires;
  if (segments_since_ack_ > 0) {
    SendAck();
  }
}

uint16_t TcpReceiver::AdvertisedWindowField() const {
  uint32_t window_bytes = config_.receive_window_bytes;
  if (window_override) {
    window_bytes = window_override(stats_.acks_sent);
  }
  uint32_t field = window_bytes >> config_.window_scale;
  return static_cast<uint16_t>(std::min<uint32_t>(field, 65535));
}

SackList TcpReceiver::BuildSackBlocks() const {
  SackList blocks;
  if (!peer_sack_ok_ || ooo_.empty()) {
    return blocks;
  }
  // Most recently changed block first (RFC 2018), then the rest, max 3
  // (timestamps occupy option space).
  for (const auto& [start, end] : ooo_) {
    if (Seq32Le(start, last_sacked_edge_) && Seq32Lt(last_sacked_edge_, end)) {
      blocks.push_back(SackBlock{start, end});
      break;
    }
  }
  for (const auto& [start, end] : ooo_) {
    if (blocks.size() >= 3) {
      break;
    }
    if (!blocks.empty() && blocks[0].start == start) {
      continue;
    }
    blocks.push_back(SackBlock{start, end});
  }
  return blocks;
}

void TcpReceiver::SendAck() {
  if (delack_event_ != kInvalidEventId) {
    scheduler_->Cancel(delack_event_);
    delack_event_ = kInvalidEventId;
  }
  segments_since_ack_ = 0;

  TcpHeader tcp;
  FiveTuple back = flow_.Reversed();
  tcp.src_port = back.src_port;
  tcp.dst_port = back.dst_port;
  tcp.seq = snd_nxt_;
  tcp.ack = rcv_nxt_;
  tcp.flag_ack = true;
  tcp.window = AdvertisedWindowField();
  if (peer_timestamps_ok_) {
    tcp.timestamps = TcpTimestamps{TsClock(scheduler_->Now()), ts_recent_};
  }
  tcp.sack_blocks = BuildSackBlocks();
  Packet p = Packet::MakeTcp(back.src_ip, back.dst_ip, tcp, 0);
  p.mutable_ip().tos = config_.tos;
  p.set_created_at(scheduler_->Now());
  ++stats_.acks_sent;
  if (!ooo_.empty()) {
    ++stats_.dupacks_sent;
  }
  send_(std::move(p));
}

}  // namespace hacksim
