#include "src/tcp/tcp_sender.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hacksim {

TcpSender::TcpSender(Scheduler* scheduler, TcpConfig config, FiveTuple flow,
                     std::function<void(Packet)> send, uint64_t bytes_to_send)
    : scheduler_(scheduler),
      config_(config),
      flow_(flow),
      send_(std::move(send)),
      bytes_to_send_(bytes_to_send),
      rto_(config.rto_initial) {
  cwnd_ = config_.initial_cwnd_segments * config_.mss;
}

void TcpSender::Start() {
  CHECK(state_ == State::kClosed);
  state_ = State::kSynSent;
  SendSyn();
}

void TcpSender::SendSyn() {
  TcpHeader tcp;
  tcp.src_port = flow_.src_port;
  tcp.dst_port = flow_.dst_port;
  tcp.seq = iss_;
  tcp.flag_syn = true;
  tcp.window = 65535;
  tcp.mss = static_cast<uint16_t>(config_.mss);
  tcp.window_scale = config_.window_scale;
  tcp.sack_permitted = config_.use_sack;
  if (config_.use_timestamps) {
    tcp.timestamps = TcpTimestamps{TsClock(scheduler_->Now()), 0};
  }
  Packet p = Packet::MakeTcp(flow_.src_ip, flow_.dst_ip, tcp, 0);
  p.mutable_ip().tos = config_.tos;
  p.set_created_at(scheduler_->Now());
  send_(std::move(p));
  RestartRtoTimer();
}

uint64_t TcpSender::RemainingAppBytes() const {
  if (bytes_to_send_ == 0) {
    return UINT64_MAX;
  }
  uint64_t offered = snd_nxt_ - iss_ - 1;  // -1 for the SYN
  if (offered >= bytes_to_send_) {
    return 0;
  }
  return bytes_to_send_ - offered;
}

uint32_t TcpSender::EffectiveWindow() const {
  uint32_t wnd = std::min<uint64_t>(
      cwnd_, static_cast<uint64_t>(peer_window_) << peer_wscale_);
  uint32_t flight = FlightSize();
  return wnd > flight ? wnd - flight : 0;
}

void TcpSender::TrySendData() {
  if (state_ != State::kEstablished || complete_) {
    return;
  }
  while (true) {
    uint32_t window = EffectiveWindow();
    uint64_t remaining = RemainingAppBytes();
    uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>({config_.mss, window, remaining}));
    if (len == 0) {
      break;
    }
    SendSegment(snd_nxt_, len, /*is_retransmission=*/false);
    snd_nxt_ += len;
    stats_.bytes_sent += len;
  }
}

void TcpSender::SendSegment(uint32_t seq, uint32_t len,
                            bool is_retransmission) {
  TcpHeader tcp;
  tcp.src_port = flow_.src_port;
  tcp.dst_port = flow_.dst_port;
  tcp.seq = seq;
  tcp.ack = rcv_nxt_;
  tcp.flag_ack = true;
  tcp.window = 65535;
  if (config_.use_timestamps && peer_timestamps_ok_) {
    tcp.timestamps = TcpTimestamps{TsClock(scheduler_->Now()), ts_recent_};
  }
  Packet p = Packet::MakeTcp(flow_.src_ip, flow_.dst_ip, tcp, len);
  p.mutable_ip().tos = config_.tos;
  p.set_created_at(scheduler_->Now());
  ++stats_.segments_sent;
  if (is_retransmission) {
    ++stats_.retransmissions;
  }
  send_(std::move(p));
  if (rto_event_ == kInvalidEventId) {
    RestartRtoTimer();
  }
}

bool TcpSender::IsSacked(uint32_t seq, uint32_t len) const {
  for (const SackBlock& block : sacked_) {
    if (Seq32Le(block.start, seq) && Seq32Le(seq + len, block.end)) {
      return true;
    }
  }
  return false;
}

uint32_t TcpSender::NextUnsackedAbove(uint32_t from) const {
  uint32_t seq = from;
  while (Seq32Lt(seq, snd_nxt_) && IsSacked(seq, config_.mss)) {
    seq += config_.mss;
  }
  return seq;
}

void TcpSender::OnPacket(const Packet& packet) {
  if (!packet.has_tcp()) {
    return;
  }
  const TcpHeader& tcp = packet.tcp();

  if (state_ == State::kSynSent) {
    if (tcp.flag_syn && tcp.flag_ack && tcp.ack == iss_ + 1) {
      state_ = State::kEstablished;
      snd_una_ = iss_ + 1;
      snd_nxt_ = iss_ + 1;
      rcv_nxt_ = tcp.seq + 1;
      peer_window_ = tcp.window;
      peer_wscale_ = tcp.window_scale.value_or(0);
      peer_sack_ok_ = tcp.sack_permitted && config_.use_sack;
      peer_timestamps_ok_ =
          tcp.timestamps.has_value() && config_.use_timestamps;
      if (tcp.timestamps.has_value()) {
        ts_recent_ = tcp.timestamps->tsval;
      }
      StopRtoTimer();
      rto_backoff_ = 0;
      // Complete the handshake; the ACK rides on the first data segment(s),
      // or on a bare ACK if there is nothing to send yet.
      TrySendData();
      if (stats_.segments_sent == 0) {
        SendSegment(snd_nxt_, 0, false);
      }
      RestartRtoTimer();
      return;
    }
    return;
  }
  if (state_ != State::kEstablished || !tcp.flag_ack) {
    return;
  }
  HandleAck(tcp);
}

void TcpSender::HandleAck(const TcpHeader& tcp) {
  ++stats_.acks_received;
  if (tcp.timestamps.has_value()) {
    ts_recent_ = tcp.timestamps->tsval;
    // RTT sample from the echoed timestamp (RFC 7323 RTTM).
    uint32_t echoed = tcp.timestamps->tsecr;
    if (echoed != 0) {
      uint32_t now_ms = TsClock(scheduler_->Now());
      uint32_t delta_ms = now_ms - echoed;
      if (delta_ms < 60'000) {
        UpdateRtt(SimTime::Millis(delta_ms));
      }
    }
  }
  if (!tcp.sack_blocks.empty() && peer_sack_ok_) {
    for (const SackBlock& block : tcp.sack_blocks) {
      // Merge-free scoreboard: keep blocks, prune below snd_una_ later.
      sacked_.push_back(block);
    }
  }
  peer_window_ = tcp.window;

  uint32_t ack = tcp.ack;
  if (Seq32Gt(ack, snd_nxt_)) {
    return;  // acks data never sent; ignore
  }

  if (Seq32Le(ack, snd_una_)) {
    // Duplicate ACK candidate (RFC 5681: no data, ack == snd_una, data
    // outstanding).
    if (ack == snd_una_ && FlightSize() > 0) {
      ++stats_.dupacks_received;
      ++dupack_count_;
      if (in_fast_recovery_) {
        if (peer_sack_ok_) {
          // SACK recovery: the scoreboard just grew; fill the pipe.
          RecoverySend();
        } else {
          // Classic NewReno inflation.
          cwnd_ += config_.mss;
          TrySendData();
        }
      } else if (dupack_count_ == 3) {
        EnterFastRecovery();
      }
    }
    return;
  }

  // New data acknowledged.
  uint32_t newly_acked = ack - snd_una_;
  bytes_acked_ += newly_acked;
  snd_una_ = ack;
  dupack_count_ = 0;
  rto_backoff_ = 0;
  sacked_.erase(std::remove_if(sacked_.begin(), sacked_.end(),
                               [&](const SackBlock& b) {
                                 return Seq32Le(b.end, snd_una_);
                               }),
                sacked_.end());

  if (in_fast_recovery_) {
    // Prune the repaired-hole set below the new left edge.
    for (auto it = recovery_retx_.begin(); it != recovery_retx_.end();) {
      if (Seq32Lt(it->first, snd_una_)) {
        it = recovery_retx_.erase(it);
      } else {
        ++it;
      }
    }
    if (Seq32Ge(ack, recover_)) {
      // Full ACK: leave recovery.
      in_fast_recovery_ = false;
      recovery_retx_.clear();
      cwnd_ = ssthresh_;
    } else if (peer_sack_ok_) {
      // Partial ACK under SACK recovery: the pipe shrank; refill it.
      RestartRtoTimer();
      RecoverySend();
      return;
    } else {
      // NewReno partial ACK: retransmit the next hole, deflate.
      uint32_t next_hole = snd_una_;
      uint32_t len = static_cast<uint32_t>(
          std::min<uint64_t>(config_.mss, snd_nxt_ - next_hole));
      if (len > 0) {
        SendSegment(next_hole, len, /*is_retransmission=*/true);
      }
      cwnd_ = cwnd_ > newly_acked ? cwnd_ - newly_acked : config_.mss;
      cwnd_ += config_.mss;
      RestartRtoTimer();
      TrySendData();
      return;
    }
  } else {
    // Congestion window growth (RFC 5681, byte counting).
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min(newly_acked, config_.mss);
    } else {
      uint32_t increment = std::max<uint32_t>(
          1, static_cast<uint32_t>(
                 static_cast<uint64_t>(config_.mss) * config_.mss / cwnd_));
      cwnd_ += increment;
    }
  }

  if (FlightSize() == 0) {
    StopRtoTimer();
  } else {
    RestartRtoTimer();
  }

  // Transfer completion: all application bytes acked.
  if (bytes_to_send_ > 0 && !complete_ &&
      bytes_acked_ >= bytes_to_send_) {
    complete_ = true;
    StopRtoTimer();
    if (on_complete) {
      on_complete();
    }
    return;
  }
  TrySendData();
}

void TcpSender::EnterFastRecovery() {
  ++stats_.fast_retransmits;
  in_fast_recovery_ = true;
  recover_ = snd_nxt_;
  recovery_retx_.clear();
  uint32_t flight = FlightSize();
  ssthresh_ = std::max(flight / 2, 2 * config_.mss);
  if (peer_sack_ok_) {
    cwnd_ = ssthresh_;
    recovery_retx_[snd_una_] = scheduler_->Now();
    uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(config_.mss, snd_nxt_ - snd_una_));
    SendSegment(snd_una_, len, /*is_retransmission=*/true);
    RestartRtoTimer();
    RecoverySend();
    return;
  }
  cwnd_ = ssthresh_ + 3 * config_.mss;
  uint32_t len = static_cast<uint32_t>(
      std::min<uint64_t>(config_.mss, snd_nxt_ - snd_una_));
  SendSegment(snd_una_, len, /*is_retransmission=*/true);
  RestartRtoTimer();
}

uint32_t TcpSender::HighestSacked() const {
  uint32_t highest = snd_una_;
  for (const SackBlock& block : sacked_) {
    highest = Seq32Max(highest, block.end);
  }
  return highest;
}

namespace {
// A retransmission older than this is presumed lost (tail-dropped) and may
// be sent again.
SimTime ReretransmitThreshold(SimTime srtt) {
  SimTime two_rtt = SimTime::Nanos(2 * srtt.ns());
  return std::max(two_rtt, SimTime::Millis(20));
}
}  // namespace

uint32_t TcpSender::ComputePipe() const {
  // RFC 6675 §4: octets outstanding = neither SACKed nor deemed lost, plus
  // retransmitted octets. A hole below the highest SACKed edge that has not
  // been (recently) retransmitted this episode is deemed lost.
  uint32_t highest = HighestSacked();
  SimTime now = scheduler_->Now();
  SimTime stale_after = ReretransmitThreshold(srtt_);
  uint32_t pipe = 0;
  for (uint32_t seq = snd_una_; Seq32Lt(seq, snd_nxt_); seq += config_.mss) {
    uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(config_.mss, snd_nxt_ - seq));
    auto retx = recovery_retx_.find(seq);
    bool retransmitted_live =
        retx != recovery_retx_.end() && now - retx->second < stale_after;
    if (IsSacked(seq, len)) {
      if (retransmitted_live) {
        pipe += len;  // the retransmission itself is still in flight
      }
      continue;
    }
    bool lost = Seq32Lt(seq, highest) && !retransmitted_live;
    if (!lost) {
      pipe += len;
    }
    if (retransmitted_live) {
      pipe += len;
    }
  }
  return pipe;
}

void TcpSender::RecoverySend() {
  uint32_t highest = HighestSacked();
  SimTime now = scheduler_->Now();
  SimTime stale_after = ReretransmitThreshold(srtt_);
  while (true) {
    uint32_t pipe = ComputePipe();
    if (pipe + config_.mss > cwnd_) {
      return;
    }
    // Priority 1: lowest hole below the highest SACKed edge that is not
    // covered by a live retransmission.
    bool sent = false;
    for (uint32_t seq = snd_una_; Seq32Lt(seq, highest);
         seq += config_.mss) {
      uint32_t len = static_cast<uint32_t>(
          std::min<uint64_t>(config_.mss, snd_nxt_ - seq));
      if (len == 0 || IsSacked(seq, len)) {
        continue;
      }
      auto retx = recovery_retx_.find(seq);
      if (retx != recovery_retx_.end() && now - retx->second < stale_after) {
        continue;  // retransmission still presumed in flight
      }
      recovery_retx_[seq] = now;
      SendSegment(seq, len, /*is_retransmission=*/true);
      sent = true;
      break;
    }
    if (sent) {
      continue;
    }
    // Priority 2: new data (RFC 6675 NextSeg rule 2). Essential under HACK:
    // fresh data batches are the vehicle that carries the receiver's held
    // ACKs back (§3.2) — starving the forward path stalls the ACK clock.
    uint64_t remaining = RemainingAppBytes();
    uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>(config_.mss, remaining));
    if (len == 0) {
      return;
    }
    SendSegment(snd_nxt_, len, /*is_retransmission=*/false);
    snd_nxt_ += len;
    stats_.bytes_sent += len;
  }
}

void TcpSender::HandleRtoExpiry() {
  rto_event_ = kInvalidEventId;
  if (state_ == State::kSynSent) {
    rto_backoff_ = std::min(rto_backoff_ + 1, 10);  // exponential SYN retry
    SendSyn();
    return;
  }
  if (complete_ || FlightSize() == 0) {
    return;
  }
  ++stats_.timeouts;
  // RFC 5681 / 6298: collapse to one segment, back off the timer.
  ssthresh_ = std::max(FlightSize() / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  in_fast_recovery_ = false;
  dupack_count_ = 0;
  sacked_.clear();  // RFC 2018: SACK info may be discarded on timeout
  rto_backoff_ = std::min(rto_backoff_ + 1, 10);
  uint32_t len = static_cast<uint32_t>(
      std::min<uint64_t>(config_.mss, snd_nxt_ - snd_una_));
  SendSegment(snd_una_, len, /*is_retransmission=*/true);
  RestartRtoTimer();
}

void TcpSender::RestartRtoTimer() {
  StopRtoTimer();
  SimTime rto = rto_;
  for (int i = 0; i < rto_backoff_; ++i) {
    rto = rto * 2;
    if (rto > config_.rto_max) {
      rto = config_.rto_max;
      break;
    }
  }
  rto_event_ = scheduler_->ScheduleIn(
      rto, [this]() { HandleRtoExpiry(); }, EventClass::kTransportTimer);
}

void TcpSender::StopRtoTimer() {
  if (rto_event_ != kInvalidEventId) {
    scheduler_->Cancel(rto_event_);
    rto_event_ = kInvalidEventId;
  }
}

void TcpSender::UpdateRtt(SimTime measured) {
  if (!rtt_seeded_) {
    rtt_seeded_ = true;
    srtt_ = measured;
    rttvar_ = SimTime::Nanos(measured.ns() / 2);
  } else {
    int64_t err = srtt_.ns() - measured.ns();
    if (err < 0) {
      err = -err;
    }
    rttvar_ = SimTime::Nanos((3 * rttvar_.ns() + err) / 4);
    srtt_ = SimTime::Nanos((7 * srtt_.ns() + measured.ns()) / 8);
  }
  SimTime rto = srtt_ + std::max(config_.ts_granularity,
                                 SimTime::Nanos(4 * rttvar_.ns()));
  rto_ = std::clamp(rto, config_.rto_min, config_.rto_max);
}

}  // namespace hacksim
