// TCP bulk-data receiver: reassembly with out-of-order buffering, delayed
// ACKs (one per two segments — the paper's stated assumption), immediate
// dupacks on reordering/loss (which HACK must deliver intact to keep fast
// retransmit working), SACK block generation and RFC 7323 timestamp echo.
#ifndef SRC_TCP_TCP_RECEIVER_H_
#define SRC_TCP_TCP_RECEIVER_H_

#include <cstdint>
#include <functional>
#include <map>

#include "src/net/address.h"
#include "src/packet/packet.h"
#include "src/sim/scheduler.h"
#include "src/tcp/tcp_common.h"

namespace hacksim {

struct TcpReceiverStats {
  uint64_t segments_received = 0;
  uint64_t bytes_delivered = 0;
  uint64_t acks_sent = 0;
  uint64_t dupacks_sent = 0;
  uint64_t out_of_order_segments = 0;
  uint64_t delack_timer_fires = 0;

  friend bool operator==(const TcpReceiverStats&,
                         const TcpReceiverStats&) = default;
};

class TcpReceiver {
 public:
  // `flow` is the *data* direction (src = remote sender); ACKs flow along
  // flow.Reversed(). `send` hands ACK packets to the network.
  TcpReceiver(Scheduler* scheduler, TcpConfig config, FiveTuple flow,
              std::function<void(Packet)> send);

  void OnPacket(const Packet& packet);

  // In-order payload delivery: called with the byte count newly delivered.
  std::function<void(uint64_t bytes)> on_data;

  // Test hook: overrides the advertised window (bytes) per ACK index; used
  // to exercise ROHC's window-change encoding.
  std::function<uint32_t(uint64_t ack_index)> window_override;

  bool established() const { return state_ == State::kEstablished; }
  uint64_t total_delivered() const { return stats_.bytes_delivered; }
  const TcpReceiverStats& stats() const { return stats_; }

 private:
  enum class State { kListen, kSynRcvd, kEstablished };

  void SendSynAck();
  void AcceptData(const Packet& packet);
  void MaybeSendAck(bool force_immediate);
  void SendAck();
  void OnDelackTimer();
  uint16_t AdvertisedWindowField() const;
  SackList BuildSackBlocks() const;

  Scheduler* scheduler_;
  TcpConfig config_;
  FiveTuple flow_;
  std::function<void(Packet)> send_;

  State state_ = State::kListen;
  uint32_t irs_ = 0;       // peer's initial seq
  uint32_t iss_ = 0;       // our initial seq
  uint32_t rcv_nxt_ = 0;
  uint32_t snd_nxt_ = 0;   // our (data-less) sequence
  bool peer_timestamps_ok_ = false;
  bool peer_sack_ok_ = false;
  uint32_t ts_recent_ = 0;
  uint32_t last_sacked_edge_ = 0;  // most recently arrived OOO block start

  // Out-of-order store: start -> end (exclusive), non-overlapping. The
  // comparator is a named type (not a header lambda) so the member's type
  // has proper linkage — a decltype(lambda) here trips GCC's
  // -Wsubobject-linkage in every including TU.
  struct Seq32Less {
    bool operator()(uint32_t a, uint32_t b) const { return Seq32Lt(a, b); }
  };
  std::map<uint32_t, uint32_t, Seq32Less> ooo_;

  uint32_t segments_since_ack_ = 0;
  EventId delack_event_ = kInvalidEventId;

  TcpReceiverStats stats_;
};

}  // namespace hacksim

#endif  // SRC_TCP_TCP_RECEIVER_H_
