// Shared TCP machinery: configuration, 32-bit sequence arithmetic and the
// timestamp clock. The TCP model is deliberately faithful where the paper's
// dynamics depend on it: delayed ACKs (1 per 2 segments — the assumption
// behind every capacity figure), NewReno congestion control with fast
// retransmit (HACK must preserve dupacks; §6 criticises prior work for
// breaking them), RFC 6298 retransmission timeouts (the §3.2 stall scenario)
// and RFC 7323 timestamps (the 52-byte ACKs of Table 2, and §5's
// timestamp-echo future-work variant).
#ifndef SRC_TCP_TCP_COMMON_H_
#define SRC_TCP_TCP_COMMON_H_

#include <cstdint>
#include <functional>

#include "src/sim/sim_time.h"

namespace hacksim {

// Serial-number arithmetic on 32-bit sequence space.
inline bool Seq32Lt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}
inline bool Seq32Le(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) <= 0;
}
inline bool Seq32Gt(uint32_t a, uint32_t b) { return Seq32Lt(b, a); }
inline bool Seq32Ge(uint32_t a, uint32_t b) { return Seq32Le(b, a); }
inline uint32_t Seq32Max(uint32_t a, uint32_t b) {
  return Seq32Gt(a, b) ? a : b;
}

struct TcpConfig {
  uint32_t mss = 1460;            // payload bytes per segment
  uint32_t initial_cwnd_segments = 10;
  // 2014-era Linux default (tcp_rmem max ~208-256 KB untuned): bounds the
  // slow-start overshoot into the AP's 126-packet queue exactly as the
  // paper's stacks did.
  uint32_t receive_window_bytes = 256 * 1024;
  uint8_t window_scale = 7;
  bool use_timestamps = true;
  bool use_sack = true;

  // Delayed ACK (RFC 1122 / 5681): one ACK per `delayed_ack_segments` full
  // segments, or after `delayed_ack_timeout`, whichever first.
  bool delayed_ack = true;
  uint32_t delayed_ack_segments = 2;
  SimTime delayed_ack_timeout = SimTime::Millis(40);

  // RTO per RFC 6298 with Linux-like floor.
  SimTime rto_initial = SimTime::Seconds(1);
  SimTime rto_min = SimTime::Millis(200);
  SimTime rto_max = SimTime::Seconds(60);

  // Timestamp clock granularity (Linux: 1 ms).
  SimTime ts_granularity = SimTime::Millis(1);

  // DSCP/ToS stamped on every segment and ACK of the flow (both directions
  // use the same config). Under EDCA the MAC classifies it via AcForTos —
  // 0xC0 puts the flow in VO, the HACK-vs-EDCA interaction workload. The
  // default 0 (BE) keeps every legacy scenario byte-identical.
  uint8_t tos = 0;
};

// Millisecond timestamp-option clock.
inline uint32_t TsClock(SimTime now) {
  return static_cast<uint32_t>(now.ns() / 1'000'000);
}

}  // namespace hacksim

#endif  // SRC_TCP_TCP_COMMON_H_
