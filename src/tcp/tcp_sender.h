// TCP bulk-data sender: connection setup, sliding window limited by
// min(cwnd, receiver window), slow start / congestion avoidance, NewReno
// fast retransmit & recovery (SACK-assisted when available), RFC 6298 RTO
// with exponential backoff, RFC 7323 timestamps for RTT measurement.
#ifndef SRC_TCP_TCP_SENDER_H_
#define SRC_TCP_TCP_SENDER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/net/address.h"
#include "src/packet/packet.h"
#include "src/sim/scheduler.h"
#include "src/tcp/tcp_common.h"

namespace hacksim {

struct TcpSenderStats {
  uint64_t segments_sent = 0;
  uint64_t bytes_sent = 0;        // payload, first transmissions
  uint64_t retransmissions = 0;
  uint64_t fast_retransmits = 0;
  uint64_t timeouts = 0;
  uint64_t dupacks_received = 0;
  uint64_t acks_received = 0;

  friend bool operator==(const TcpSenderStats&,
                         const TcpSenderStats&) = default;
};

class TcpSender {
 public:
  // `flow` is the data direction (src = this sender). `send` hands a packet
  // to the network. `bytes_to_send` == 0 means unbounded.
  TcpSender(Scheduler* scheduler, TcpConfig config, FiveTuple flow,
            std::function<void(Packet)> send, uint64_t bytes_to_send);

  // Initiates the connection (sends SYN).
  void Start();

  // Delivers an incoming packet addressed to this endpoint (ACKs, SYN-ACK).
  void OnPacket(const Packet& packet);

  // Fires once when all application bytes are sent and acknowledged (only
  // for bounded transfers).
  std::function<void()> on_complete;

  bool established() const { return state_ == State::kEstablished; }
  bool complete() const { return complete_; }
  uint32_t cwnd_bytes() const { return cwnd_; }
  uint32_t ssthresh_bytes() const { return ssthresh_; }
  uint64_t bytes_acked() const { return bytes_acked_; }
  SimTime srtt() const { return srtt_; }
  const TcpSenderStats& stats() const { return stats_; }

 private:
  enum class State { kClosed, kSynSent, kEstablished };

  void SendSyn();
  void TrySendData();
  void SendSegment(uint32_t seq, uint32_t len, bool is_retransmission);
  void HandleAck(const TcpHeader& tcp);
  void EnterFastRecovery();
  // RFC 6675 pipe-based loss recovery: while pipe < cwnd, retransmit the
  // lowest unrepaired hole below the highest SACKed sequence, then send new
  // data. Keeps retransmissions ack-clocked so a drop-tail bottleneck queue
  // is never flooded during recovery.
  void RecoverySend();
  uint32_t ComputePipe() const;
  uint32_t HighestSacked() const;
  void HandleRtoExpiry();
  void RestartRtoTimer();
  void StopRtoTimer();
  void UpdateRtt(SimTime measured);
  uint32_t FlightSize() const { return snd_nxt_ - snd_una_; }
  uint32_t EffectiveWindow() const;
  bool IsSacked(uint32_t seq, uint32_t len) const;
  uint32_t NextUnsackedAbove(uint32_t from) const;
  uint64_t RemainingAppBytes() const;

  Scheduler* scheduler_;
  TcpConfig config_;
  FiveTuple flow_;
  std::function<void(Packet)> send_;
  uint64_t bytes_to_send_;

  State state_ = State::kClosed;
  bool complete_ = false;

  uint32_t iss_ = 0;
  uint32_t snd_una_ = 0;
  uint32_t snd_nxt_ = 0;
  uint32_t rcv_nxt_ = 0;  // peer's sequence (for the ACK field)
  uint64_t bytes_acked_ = 0;

  uint32_t cwnd_ = 0;
  uint32_t ssthresh_ = 0xFFFFFFFF;
  uint32_t peer_window_ = 0;
  uint8_t peer_wscale_ = 0;
  bool peer_sack_ok_ = false;
  bool peer_timestamps_ok_ = false;

  // Fast recovery (NewReno).
  uint32_t dupack_count_ = 0;
  bool in_fast_recovery_ = false;
  uint32_t recover_ = 0;

  // SACK scoreboard: blocks reported by the receiver.
  std::vector<SackBlock> sacked_;
  // Holes retransmitted during the current recovery episode: left edge ->
  // time of (re)transmission. A retransmission unacknowledged for ~2 RTTs
  // is presumed lost and becomes eligible again (RACK-style), which keeps
  // recovery alive when the bottleneck queue tail-drops a retransmission.
  std::map<uint32_t, SimTime> recovery_retx_;

  // RTT estimation.
  bool rtt_seeded_ = false;
  SimTime srtt_;
  SimTime rttvar_;
  SimTime rto_;
  int rto_backoff_ = 0;

  EventId rto_event_ = kInvalidEventId;
  uint32_t ts_recent_ = 0;  // peer timestamp to echo

  TcpSenderStats stats_;
};

}  // namespace hacksim

#endif  // SRC_TCP_TCP_SENDER_H_
