// UDP header (RFC 768). Used by the unidirectional CBR workload that gives
// the paper its capacity yardstick (Figures 9 and 10).
#ifndef SRC_NET_UDP_HEADER_H_
#define SRC_NET_UDP_HEADER_H_

#include <cstdint>
#include <optional>

#include "src/util/bitio.h"

namespace hacksim {

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;  // header + payload

  static constexpr size_t kBytes = 8;
  size_t HeaderBytes() const { return kBytes; }

  void Serialize(ByteWriter& writer) const;
  static std::optional<UdpHeader> Deserialize(ByteReader& reader);

  friend bool operator==(const UdpHeader&, const UdpHeader&) = default;
};

}  // namespace hacksim

#endif  // SRC_NET_UDP_HEADER_H_
