// Address types: IPv4, 802 MAC, and the TCP/IP 5-tuple flow key whose MD5
// hash low byte becomes the ROHC context id (paper §3.3.2).
#ifndef SRC_NET_ADDRESS_H_
#define SRC_NET_ADDRESS_H_

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace hacksim {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(uint32_t value) : value_(value) {}
  static constexpr Ipv4Address FromOctets(uint8_t a, uint8_t b, uint8_t c,
                                          uint8_t d) {
    return Ipv4Address((static_cast<uint32_t>(a) << 24) |
                       (static_cast<uint32_t>(b) << 16) |
                       (static_cast<uint32_t>(c) << 8) | d);
  }

  constexpr uint32_t value() const { return value_; }
  constexpr bool IsZero() const { return value_ == 0; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

  std::string ToString() const;
  friend std::ostream& operator<<(std::ostream& os, Ipv4Address a) {
    return os << a.ToString();
  }

 private:
  uint32_t value_ = 0;
};

class MacAddress {
 public:
  constexpr MacAddress() = default;
  // Uses the low 48 bits of `value`.
  explicit constexpr MacAddress(uint64_t value)
      : value_(value & 0xFFFFFFFFFFFFull) {}

  // Stable locally-administered unicast address for station index i.
  static constexpr MacAddress ForStation(uint32_t i) {
    return MacAddress(0x020000000000ull | i);
  }
  static constexpr MacAddress Broadcast() {
    return MacAddress(0xFFFFFFFFFFFFull);
  }

  constexpr uint64_t value() const { return value_; }
  constexpr bool IsBroadcast() const { return value_ == 0xFFFFFFFFFFFFull; }

  friend constexpr auto operator<=>(MacAddress, MacAddress) = default;

  std::string ToString() const;
  friend std::ostream& operator<<(std::ostream& os, MacAddress a) {
    return os << a.ToString();
  }

 private:
  uint64_t value_ = 0;
};

// TCP/IP 5-tuple. Protocol is implicit (TCP) for HACK purposes but kept so
// the key generalises (the paper mentions SCTP/DCCP as future higher layers).
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 6;

  friend constexpr auto operator<=>(const FiveTuple&,
                                    const FiveTuple&) = default;

  // Canonical 13-byte serialisation hashed to derive the ROHC CID.
  std::array<uint8_t, 13> Canonical() const;

  // Low byte of MD5 over Canonical() — the paper's CID derivation.
  uint8_t RohcCid() const;

  // The same flow viewed from the opposite direction.
  FiveTuple Reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  std::string ToString() const;
};

struct FiveTupleHash {
  size_t operator()(const FiveTuple& t) const {
    uint64_t h = t.src_ip.value();
    h = h * 1000003ull ^ t.dst_ip.value();
    h = h * 1000003ull ^ (static_cast<uint64_t>(t.src_port) << 16 |
                          t.dst_port);
    h = h * 1000003ull ^ t.protocol;
    return std::hash<uint64_t>{}(h);
  }
};

struct MacAddressHash {
  size_t operator()(MacAddress a) const {
    return std::hash<uint64_t>{}(a.value());
  }
};

}  // namespace hacksim

#endif  // SRC_NET_ADDRESS_H_
