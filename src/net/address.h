// Address types: IPv4, 802 MAC, and the TCP/IP 5-tuple flow key whose MD5
// hash low byte becomes the ROHC context id (paper §3.3.2).
#ifndef SRC_NET_ADDRESS_H_
#define SRC_NET_ADDRESS_H_

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace hacksim {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(uint32_t value) : value_(value) {}
  static constexpr Ipv4Address FromOctets(uint8_t a, uint8_t b, uint8_t c,
                                          uint8_t d) {
    return Ipv4Address((static_cast<uint32_t>(a) << 24) |
                       (static_cast<uint32_t>(b) << 16) |
                       (static_cast<uint32_t>(c) << 8) | d);
  }

  constexpr uint32_t value() const { return value_; }
  constexpr bool IsZero() const { return value_ == 0; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

  std::string ToString() const;
  friend std::ostream& operator<<(std::ostream& os, Ipv4Address a) {
    return os << a.ToString();
  }

 private:
  uint32_t value_ = 0;
};

class MacAddress {
 public:
  constexpr MacAddress() = default;
  // Uses the low 48 bits of `value`.
  explicit constexpr MacAddress(uint64_t value)
      : value_(value & 0xFFFFFFFFFFFFull) {}

  // Stable locally-administered unicast address for station index i.
  static constexpr MacAddress ForStation(uint32_t i) {
    return MacAddress(0x020000000000ull | i);
  }
  static constexpr MacAddress Broadcast() {
    return MacAddress(0xFFFFFFFFFFFFull);
  }

  constexpr uint64_t value() const { return value_; }
  constexpr bool IsBroadcast() const { return value_ == 0xFFFFFFFFFFFFull; }

  friend constexpr auto operator<=>(MacAddress, MacAddress) = default;

  std::string ToString() const;
  friend std::ostream& operator<<(std::ostream& os, MacAddress a) {
    return os << a.ToString();
  }

 private:
  uint64_t value_ = 0;
};

// Memo slot for FiveTuple::RohcCid(). Deliberately NOT propagated by copy
// or assignment: the usual reason to copy a tuple is to derive a variant
// with different fields, and a copied memo would then serve a stale CID.
struct RohcCidCache {
  mutable uint16_t v = 0;  // 0 = unset, else CID + 1

  constexpr RohcCidCache() = default;
  constexpr RohcCidCache(const RohcCidCache&) {}
  constexpr RohcCidCache& operator=(const RohcCidCache&) {
    v = 0;
    return *this;
  }
};

// TCP/IP 5-tuple. Protocol is implicit (TCP) for HACK purposes but kept so
// the key generalises (the paper mentions SCTP/DCCP as future higher layers).
//
// The key fields are written at construction and treated as immutable once
// RohcCid() has been called on that object: the MD5-derived result is
// memoised (cid_cache_), so mutating a field afterwards would serve a stale
// CID. Copies start with a cold memo, so copy-then-mutate stays correct.
struct FiveTuple {
  constexpr FiveTuple() = default;
  constexpr FiveTuple(Ipv4Address src, Ipv4Address dst, uint16_t sport,
                      uint16_t dport, uint8_t proto = 6)
      : src_ip(src),
        dst_ip(dst),
        src_port(sport),
        dst_port(dport),
        protocol(proto) {}

  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 6;
  // Not part of the key — excluded from comparison and hashing.
  RohcCidCache cid_cache_;

  friend constexpr bool operator==(const FiveTuple& a, const FiveTuple& b) {
    return a.src_ip == b.src_ip && a.dst_ip == b.dst_ip &&
           a.src_port == b.src_port && a.dst_port == b.dst_port &&
           a.protocol == b.protocol;
  }
  friend constexpr std::strong_ordering operator<=>(const FiveTuple& a,
                                                    const FiveTuple& b) {
    if (auto c = a.src_ip <=> b.src_ip; c != 0) return c;
    if (auto c = a.dst_ip <=> b.dst_ip; c != 0) return c;
    if (auto c = a.src_port <=> b.src_port; c != 0) return c;
    if (auto c = a.dst_port <=> b.dst_port; c != 0) return c;
    return a.protocol <=> b.protocol;
  }

  // Canonical 13-byte serialisation hashed to derive the ROHC CID.
  std::array<uint8_t, 13> Canonical() const;

  // Low byte of MD5 over Canonical() — the paper's CID derivation. Hashes
  // once per tuple; repeat calls return the memoised byte.
  uint8_t RohcCid() const;

  // The same flow viewed from the opposite direction.
  FiveTuple Reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  std::string ToString() const;
};

struct FiveTupleHash {
  size_t operator()(const FiveTuple& t) const {
    uint64_t h = t.src_ip.value();
    h = h * 1000003ull ^ t.dst_ip.value();
    h = h * 1000003ull ^ (static_cast<uint64_t>(t.src_port) << 16 |
                          t.dst_port);
    h = h * 1000003ull ^ t.protocol;
    return std::hash<uint64_t>{}(h);
  }
};

struct MacAddressHash {
  size_t operator()(MacAddress a) const {
    return std::hash<uint64_t>{}(a.value());
  }
};

}  // namespace hacksim

#endif  // SRC_NET_ADDRESS_H_
