// TCP header (RFC 793) with the options TCP/HACK must preserve end-to-end:
// MSS, window scale, SACK-permitted, SACK blocks (RFC 2018) and timestamps
// (RFC 7323). The paper requires the compressed-ACK encoding to carry "the
// full generality of information that may potentially be found in a TCP ACK"
// — so this struct is the single source of truth that both the vanilla path
// and the ROHC compress/decompress path must round-trip byte-identically.
#ifndef SRC_NET_TCP_HEADER_H_
#define SRC_NET_TCP_HEADER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/net/address.h"
#include "src/util/bitio.h"

namespace hacksim {

struct TcpTimestamps {
  uint32_t tsval = 0;
  uint32_t tsecr = 0;
  friend bool operator==(const TcpTimestamps&, const TcpTimestamps&) = default;
};

struct SackBlock {
  uint32_t start = 0;  // left edge (inclusive)
  uint32_t end = 0;    // right edge (exclusive)
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  bool flag_syn = false;
  bool flag_fin = false;
  bool flag_rst = false;
  bool flag_psh = false;
  bool flag_ack = false;
  uint16_t window = 0;

  // Options. MSS / window scale / SACK-permitted are legal on SYN segments
  // only; serialisation enforces this.
  std::optional<uint16_t> mss;
  std::optional<uint8_t> window_scale;
  bool sack_permitted = false;
  std::optional<TcpTimestamps> timestamps;
  std::vector<SackBlock> sack_blocks;  // at most 3 when timestamps present

  // 20 bytes + options, padded to a multiple of 4 (data offset units).
  size_t HeaderBytes() const;

  void Serialize(ByteWriter& writer) const;
  static std::optional<TcpHeader> Deserialize(ByteReader& reader);

  // A "pure ACK" is what HACK may compress: ACK set, no payload implied by
  // caller, and no SYN/FIN/RST semantics.
  bool IsPureAckShape() const {
    return flag_ack && !flag_syn && !flag_fin && !flag_rst;
  }

  friend bool operator==(const TcpHeader&, const TcpHeader&) = default;
};

}  // namespace hacksim

#endif  // SRC_NET_TCP_HEADER_H_
