// TCP header (RFC 793) with the options TCP/HACK must preserve end-to-end:
// MSS, window scale, SACK-permitted, SACK blocks (RFC 2018) and timestamps
// (RFC 7323). The paper requires the compressed-ACK encoding to carry "the
// full generality of information that may potentially be found in a TCP ACK"
// — so this struct is the single source of truth that both the vanilla path
// and the ROHC compress/decompress path must round-trip byte-identically.
#ifndef SRC_NET_TCP_HEADER_H_
#define SRC_NET_TCP_HEADER_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <vector>

#include "src/net/address.h"
#include "src/util/bitio.h"
#include "src/util/logging.h"

namespace hacksim {

struct TcpTimestamps {
  uint32_t tsval = 0;
  uint32_t tsecr = 0;
  friend bool operator==(const TcpTimestamps&, const TcpTimestamps&) = default;
};

struct SackBlock {
  uint32_t start = 0;  // left edge (inclusive)
  uint32_t end = 0;    // right edge (exclusive)
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

// Fixed-capacity SACK block list with inline storage: building or copying a
// TCP header never allocates (the former std::vector was the one heap
// allocation on the MakeTcp path). Capacity covers both limits in play —
// a real header fits at most 4 blocks in its 40-byte option space (3 with
// timestamps), and a ROHC refresh record carries at most
// kMaxSackBlocksInRefresh = 7.
class SackList {
 public:
  static constexpr size_t kCapacity = 7;

  SackList() = default;
  SackList(std::initializer_list<SackBlock> blocks) {
    for (const SackBlock& b : blocks) {
      push_back(b);
    }
  }

  void push_back(const SackBlock& b) {
    CHECK_LT(size_, kCapacity) << "SACK list overflow";
    blocks_[size_++] = b;
  }
  void clear() { size_ = 0; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const SackBlock* data() const { return blocks_.data(); }
  SackBlock* data() { return blocks_.data(); }
  const SackBlock* begin() const { return blocks_.data(); }
  const SackBlock* end() const { return blocks_.data() + size_; }
  SackBlock* begin() { return blocks_.data(); }
  SackBlock* end() { return blocks_.data() + size_; }
  const SackBlock& operator[](size_t i) const { return blocks_[i]; }
  SackBlock& operator[](size_t i) { return blocks_[i]; }

  friend bool operator==(const SackList& a, const SackList& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  std::array<SackBlock, kCapacity> blocks_{};
  uint8_t size_ = 0;
};

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  bool flag_syn = false;
  bool flag_fin = false;
  bool flag_rst = false;
  bool flag_psh = false;
  bool flag_ack = false;
  uint16_t window = 0;

  // Options. MSS / window scale / SACK-permitted are legal on SYN segments
  // only; serialisation enforces this.
  std::optional<uint16_t> mss;
  std::optional<uint8_t> window_scale;
  bool sack_permitted = false;
  std::optional<TcpTimestamps> timestamps;
  SackList sack_blocks;  // at most 3 when timestamps present

  // 20 bytes + options, padded to a multiple of 4 (data offset units).
  size_t HeaderBytes() const;

  void Serialize(ByteWriter& writer) const;
  static std::optional<TcpHeader> Deserialize(ByteReader& reader);

  // A "pure ACK" is what HACK may compress: ACK set, no payload implied by
  // caller, and no SYN/FIN/RST semantics.
  bool IsPureAckShape() const {
    return flag_ack && !flag_syn && !flag_fin && !flag_rst;
  }

  friend bool operator==(const TcpHeader&, const TcpHeader&) = default;
};

}  // namespace hacksim

#endif  // SRC_NET_TCP_HEADER_H_
