#include "src/net/tcp_header.h"

#include "src/util/logging.h"

namespace hacksim {
namespace {

constexpr uint8_t kOptEnd = 0;
constexpr uint8_t kOptNop = 1;
constexpr uint8_t kOptMss = 2;
constexpr uint8_t kOptWScale = 3;
constexpr uint8_t kOptSackPermitted = 4;
constexpr uint8_t kOptSack = 5;
constexpr uint8_t kOptTimestamps = 8;

size_t OptionsBytesUnpadded(const TcpHeader& h) {
  size_t n = 0;
  if (h.mss.has_value()) {
    n += 4;
  }
  if (h.sack_permitted) {
    n += 2;
  }
  if (h.window_scale.has_value()) {
    n += 3;
  }
  if (h.timestamps.has_value()) {
    n += 12;  // conventional 2x NOP + 10-byte option
  }
  if (!h.sack_blocks.empty()) {
    n += 2 + 2 + 8 * h.sack_blocks.size();  // 2x NOP + kind/len + blocks
  }
  return n;
}

}  // namespace

size_t TcpHeader::HeaderBytes() const {
  size_t n = 20 + OptionsBytesUnpadded(*this);
  n = (n + 3) & ~size_t{3};
  CHECK_LE(n, 60u) << "TCP header overflow (too many options)";
  return n;
}

void TcpHeader::Serialize(ByteWriter& writer) const {
  if (mss.has_value() || window_scale.has_value() || sack_permitted) {
    CHECK(flag_syn) << "MSS/WScale/SACK-permitted are SYN-only options";
  }
  size_t header_bytes = HeaderBytes();
  writer.WriteU16Be(src_port);
  writer.WriteU16Be(dst_port);
  writer.WriteU32Be(seq);
  writer.WriteU32Be(ack);
  uint8_t offset_byte = static_cast<uint8_t>((header_bytes / 4) << 4);
  writer.WriteU8(offset_byte);
  uint8_t flags = 0;
  if (flag_fin) {
    flags |= 0x01;
  }
  if (flag_syn) {
    flags |= 0x02;
  }
  if (flag_rst) {
    flags |= 0x04;
  }
  if (flag_psh) {
    flags |= 0x08;
  }
  if (flag_ack) {
    flags |= 0x10;
  }
  writer.WriteU8(flags);
  writer.WriteU16Be(window);
  writer.WriteU16Be(0);  // checksum: not modelled at byte level in-sim
  writer.WriteU16Be(0);  // urgent pointer

  size_t options_start = writer.size();
  if (mss.has_value()) {
    writer.WriteU8(kOptMss);
    writer.WriteU8(4);
    writer.WriteU16Be(*mss);
  }
  if (sack_permitted) {
    writer.WriteU8(kOptSackPermitted);
    writer.WriteU8(2);
  }
  if (window_scale.has_value()) {
    writer.WriteU8(kOptWScale);
    writer.WriteU8(3);
    writer.WriteU8(*window_scale);
  }
  if (timestamps.has_value()) {
    writer.WriteU8(kOptNop);
    writer.WriteU8(kOptNop);
    writer.WriteU8(kOptTimestamps);
    writer.WriteU8(10);
    writer.WriteU32Be(timestamps->tsval);
    writer.WriteU32Be(timestamps->tsecr);
  }
  if (!sack_blocks.empty()) {
    writer.WriteU8(kOptNop);
    writer.WriteU8(kOptNop);
    writer.WriteU8(kOptSack);
    writer.WriteU8(static_cast<uint8_t>(2 + 8 * sack_blocks.size()));
    for (const SackBlock& block : sack_blocks) {
      writer.WriteU32Be(block.start);
      writer.WriteU32Be(block.end);
    }
  }
  size_t written = writer.size() - options_start;
  size_t want = header_bytes - 20;
  CHECK_LE(written, want);
  while (written < want) {
    writer.WriteU8(kOptEnd);
    ++written;
  }
}

std::optional<TcpHeader> TcpHeader::Deserialize(ByteReader& reader) {
  TcpHeader h;
  auto src_port = reader.ReadU16Be();
  auto dst_port = reader.ReadU16Be();
  auto seq = reader.ReadU32Be();
  auto ack = reader.ReadU32Be();
  auto offset_byte = reader.ReadU8();
  auto flags = reader.ReadU8();
  auto window = reader.ReadU16Be();
  auto checksum = reader.ReadU16Be();
  auto urgent = reader.ReadU16Be();
  if (!urgent) {
    return std::nullopt;
  }
  (void)checksum;
  h.src_port = *src_port;
  h.dst_port = *dst_port;
  h.seq = *seq;
  h.ack = *ack;
  h.flag_fin = (*flags & 0x01) != 0;
  h.flag_syn = (*flags & 0x02) != 0;
  h.flag_rst = (*flags & 0x04) != 0;
  h.flag_psh = (*flags & 0x08) != 0;
  h.flag_ack = (*flags & 0x10) != 0;
  h.window = *window;

  size_t header_bytes = static_cast<size_t>(*offset_byte >> 4) * 4;
  if (header_bytes < 20) {
    return std::nullopt;
  }
  size_t options_len = header_bytes - 20;
  auto options = reader.ReadBytes(options_len);
  if (!options) {
    return std::nullopt;
  }
  ByteReader opt(*options);
  while (!opt.AtEnd()) {
    auto kind = opt.ReadU8();
    if (!kind) {
      return std::nullopt;
    }
    if (*kind == kOptEnd) {
      break;
    }
    if (*kind == kOptNop) {
      continue;
    }
    auto len = opt.ReadU8();
    if (!len || *len < 2) {
      return std::nullopt;
    }
    size_t body = *len - 2;
    switch (*kind) {
      case kOptMss: {
        if (body != 2) {
          return std::nullopt;
        }
        auto v = opt.ReadU16Be();
        if (!v) {
          return std::nullopt;
        }
        h.mss = *v;
        break;
      }
      case kOptWScale: {
        if (body != 1) {
          return std::nullopt;
        }
        auto v = opt.ReadU8();
        if (!v) {
          return std::nullopt;
        }
        h.window_scale = *v;
        break;
      }
      case kOptSackPermitted: {
        if (body != 0) {
          return std::nullopt;
        }
        h.sack_permitted = true;
        break;
      }
      case kOptTimestamps: {
        if (body != 8) {
          return std::nullopt;
        }
        auto tsval = opt.ReadU32Be();
        auto tsecr = opt.ReadU32Be();
        if (!tsecr) {
          return std::nullopt;
        }
        h.timestamps = TcpTimestamps{*tsval, *tsecr};
        break;
      }
      case kOptSack: {
        if (body % 8 != 0 || body == 0) {
          return std::nullopt;
        }
        for (size_t i = 0; i < body / 8; ++i) {
          auto start = opt.ReadU32Be();
          auto end = opt.ReadU32Be();
          if (!end) {
            return std::nullopt;
          }
          h.sack_blocks.push_back(SackBlock{*start, *end});
        }
        break;
      }
      default: {
        if (!opt.Skip(body)) {
          return std::nullopt;
        }
        break;
      }
    }
  }
  return h;
}

}  // namespace hacksim
