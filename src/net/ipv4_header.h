// IPv4 header (RFC 791), no options. Serialisation is byte-exact so that
// packet sizes (and therefore airtimes and compression ratios) match the
// paper's: a pure TCP ACK with timestamps is 20 + 32 = 52 bytes, exactly the
// 471120 / 9060 bytes-per-ACK ratio in Table 2.
#ifndef SRC_NET_IPV4_HEADER_H_
#define SRC_NET_IPV4_HEADER_H_

#include <cstdint>
#include <optional>

#include "src/net/address.h"
#include "src/util/bitio.h"

namespace hacksim {

inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;

struct Ipv4Header {
  uint8_t tos = 0;
  uint16_t total_length = 0;  // header + payload, bytes
  uint16_t identification = 0;
  bool dont_fragment = true;
  uint8_t ttl = 64;
  uint8_t protocol = kIpProtoTcp;
  Ipv4Address src;
  Ipv4Address dst;

  static constexpr size_t kBytes = 20;
  size_t HeaderBytes() const { return kBytes; }

  // Serialises with a correct header checksum.
  void Serialize(ByteWriter& writer) const;

  // Returns nullopt on truncation or checksum failure.
  static std::optional<Ipv4Header> Deserialize(ByteReader& reader);

  // RFC 1071 ones'-complement sum over the 20-byte header with the checksum
  // field zeroed.
  uint16_t ComputeChecksum() const;

  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

// Ones'-complement checksum helper shared by IP/TCP/UDP.
uint16_t InternetChecksum(std::span<const uint8_t> data, uint32_t seed = 0);

}  // namespace hacksim

#endif  // SRC_NET_IPV4_HEADER_H_
