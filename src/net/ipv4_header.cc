#include "src/net/ipv4_header.h"

namespace hacksim {

uint16_t InternetChecksum(std::span<const uint8_t> data, uint32_t seed) {
  uint32_t sum = seed;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum);
}

namespace {

void SerializeWithChecksum(const Ipv4Header& h, ByteWriter& writer,
                           uint16_t checksum) {
  writer.WriteU8(0x45);  // version 4, IHL 5
  writer.WriteU8(h.tos);
  writer.WriteU16Be(h.total_length);
  writer.WriteU16Be(h.identification);
  uint16_t flags_frag = h.dont_fragment ? 0x4000 : 0x0000;
  writer.WriteU16Be(flags_frag);
  writer.WriteU8(h.ttl);
  writer.WriteU8(h.protocol);
  writer.WriteU16Be(checksum);
  writer.WriteU32Be(h.src.value());
  writer.WriteU32Be(h.dst.value());
}

std::optional<Ipv4Header> Deserialize20(ByteReader& reader) {
  auto ver_ihl = reader.ReadU8();
  if (!ver_ihl || *ver_ihl != 0x45) {
    return std::nullopt;  // options unsupported by design
  }
  Ipv4Header h;
  auto tos = reader.ReadU8();
  auto total_length = reader.ReadU16Be();
  auto identification = reader.ReadU16Be();
  auto flags_frag = reader.ReadU16Be();
  auto ttl = reader.ReadU8();
  auto protocol = reader.ReadU8();
  auto checksum = reader.ReadU16Be();
  auto src = reader.ReadU32Be();
  auto dst = reader.ReadU32Be();
  if (!dst) {
    return std::nullopt;
  }
  h.tos = *tos;
  h.total_length = *total_length;
  h.identification = *identification;
  h.dont_fragment = (*flags_frag & 0x4000) != 0;
  h.ttl = *ttl;
  h.protocol = *protocol;
  h.src = Ipv4Address(*src);
  h.dst = Ipv4Address(*dst);
  if (h.ComputeChecksum() != *checksum) {
    return std::nullopt;
  }
  return h;
}

}  // namespace

uint16_t Ipv4Header::ComputeChecksum() const {
  ByteWriter writer;
  SerializeWithChecksum(*this, writer, 0);
  return InternetChecksum(writer.bytes());
}

void Ipv4Header::Serialize(ByteWriter& writer) const {
  SerializeWithChecksum(*this, writer, ComputeChecksum());
}

std::optional<Ipv4Header> Ipv4Header::Deserialize(ByteReader& reader) {
  return Deserialize20(reader);
}

}  // namespace hacksim
