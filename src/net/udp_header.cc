#include "src/net/udp_header.h"

namespace hacksim {

void UdpHeader::Serialize(ByteWriter& writer) const {
  writer.WriteU16Be(src_port);
  writer.WriteU16Be(dst_port);
  writer.WriteU16Be(length);
  writer.WriteU16Be(0);  // checksum optional in IPv4; not modelled
}

std::optional<UdpHeader> UdpHeader::Deserialize(ByteReader& reader) {
  UdpHeader h;
  auto src_port = reader.ReadU16Be();
  auto dst_port = reader.ReadU16Be();
  auto length = reader.ReadU16Be();
  auto checksum = reader.ReadU16Be();
  if (!checksum) {
    return std::nullopt;
  }
  h.src_port = *src_port;
  h.dst_port = *dst_port;
  h.length = *length;
  return h;
}

}  // namespace hacksim
