#include "src/net/address.h"

#include <cstdio>

#include "src/util/md5.h"

namespace hacksim {

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((value_ >> 40) & 0xFF),
                static_cast<unsigned>((value_ >> 32) & 0xFF),
                static_cast<unsigned>((value_ >> 24) & 0xFF),
                static_cast<unsigned>((value_ >> 16) & 0xFF),
                static_cast<unsigned>((value_ >> 8) & 0xFF),
                static_cast<unsigned>(value_ & 0xFF));
  return buf;
}

std::array<uint8_t, 13> FiveTuple::Canonical() const {
  std::array<uint8_t, 13> out;
  uint32_t s = src_ip.value();
  uint32_t d = dst_ip.value();
  out[0] = static_cast<uint8_t>(s >> 24);
  out[1] = static_cast<uint8_t>(s >> 16);
  out[2] = static_cast<uint8_t>(s >> 8);
  out[3] = static_cast<uint8_t>(s);
  out[4] = static_cast<uint8_t>(d >> 24);
  out[5] = static_cast<uint8_t>(d >> 16);
  out[6] = static_cast<uint8_t>(d >> 8);
  out[7] = static_cast<uint8_t>(d);
  out[8] = static_cast<uint8_t>(src_port >> 8);
  out[9] = static_cast<uint8_t>(src_port);
  out[10] = static_cast<uint8_t>(dst_port >> 8);
  out[11] = static_cast<uint8_t>(dst_port);
  out[12] = protocol;
  return out;
}

uint8_t FiveTuple::RohcCid() const {
  if (cid_cache_.v != 0) {
    return static_cast<uint8_t>(cid_cache_.v - 1);
  }
  auto canonical = Canonical();
  Md5Digest digest = Md5::Hash(canonical);
  // "selects the lowest byte as the CID" — lowest byte of the 128-bit
  // digest rendered as the usual byte sequence is digest[15].
  cid_cache_.v = static_cast<uint16_t>(digest[15]) + 1;
  return digest[15];
}

std::string FiveTuple::ToString() const {
  return src_ip.ToString() + ":" + std::to_string(src_port) + "->" +
         dst_ip.ToString() + ":" + std::to_string(dst_port) + "/" +
         std::to_string(protocol);
}

}  // namespace hacksim
