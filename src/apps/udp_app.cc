#include "src/apps/udp_app.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hacksim {

UdpCbrSource::UdpCbrSource(Scheduler* scheduler, Config config,
                           FiveTuple flow, std::function<void(Packet)> send)
    : scheduler_(scheduler),
      config_(config),
      flow_(flow),
      send_(std::move(send)) {
  double bits_per_packet = config_.payload_bytes * 8.0;
  interval_ = SimTime::FromSecondsF(bits_per_packet / config_.rate_bps);
  CHECK_GT(interval_.ns(), 0);
  if (config_.burst_window > interval_) {
    // Bucket mode: the burst adapts to the interval — as many CBR ticks as
    // fit in the window, bounded by the per-refill cap. A window shorter
    // than one interval degenerates to the classic chain (burst of 1).
    uint64_t fit = static_cast<uint64_t>(config_.burst_window.ns()) /
                   static_cast<uint64_t>(interval_.ns());
    burst_packets_ = static_cast<uint32_t>(
        std::min<uint64_t>(fit, config_.max_burst_packets));
  }
  period_ = interval_ * static_cast<int>(burst_packets_);
}

void UdpCbrSource::Start() {
  if (burst_packets_ > 1) {
    next_emit_ = config_.start;
    scheduler_->ScheduleAt(config_.start,
                           [this, epoch = epoch_]() { Refill(epoch); },
                           EventClass::kTransportTimer);
    return;
  }
  scheduler_->ScheduleAt(config_.start,
                         [this, epoch = epoch_]() { EmitNext(epoch); },
                         EventClass::kTransportTimer);
}

void UdpCbrSource::Stop() {
  // The pending EmitNext/Refill carries the old epoch and dies on arrival.
  config_.stop = scheduler_->Now();
  ++epoch_;
  // Bucket mode: release the ticks accrued since the last refill — the
  // classic chain emitted them one by one before this instant. Strict <,
  // because the classic chain's tick at exactly the stop instant dies
  // (fault events are scheduled ahead of same-nanosecond chain events).
  while (burst_packets_ > 1 && next_emit_ < config_.stop) {
    EmitOne();
    next_emit_ = next_emit_ + interval_;
  }
}

void UdpCbrSource::Resume(SimTime at, SimTime stop) {
  ++epoch_;
  config_.stop = stop;
  SimTime from = std::max(at, scheduler_->Now());
  if (burst_packets_ > 1) {
    next_emit_ = from;
    scheduler_->ScheduleAt(from,
                           [this, epoch = epoch_]() { Refill(epoch); },
                           EventClass::kTransportTimer);
    return;
  }
  scheduler_->ScheduleAt(from,
                         [this, epoch = epoch_]() { EmitNext(epoch); },
                         EventClass::kTransportTimer);
}

void UdpCbrSource::EmitNext(uint64_t epoch) {
  if (epoch != epoch_ || scheduler_->Now() >= config_.stop) {
    return;
  }
  EmitOne();
  scheduler_->ScheduleIn(interval_,
                         [this, epoch]() { EmitNext(epoch); },
                         EventClass::kTransportTimer);
}

// Bucket mode: one event per window instead of one per packet. Releases
// every CBR tick accrued up to now, then re-arms one period out (clamped to
// the configured stop, so a finite stop flushes its tail exactly).
void UdpCbrSource::Refill(uint64_t epoch) {
  if (epoch != epoch_) {
    return;  // stranded by a Stop()/Resume() since this refill was armed
  }
  SimTime now = scheduler_->Now();
  while (next_emit_ <= now && next_emit_ < config_.stop) {
    EmitOne();
    next_emit_ = next_emit_ + interval_;
  }
  if (next_emit_ >= config_.stop) {
    return;  // configured stop reached: nothing further accrues
  }
  SimTime next_refill = std::min(now + period_, config_.stop);
  scheduler_->ScheduleAt(next_refill,
                         [this, epoch]() { Refill(epoch); },
                         EventClass::kTransportTimer);
}

void UdpCbrSource::EmitOne() {
  Packet p = Packet::MakeUdp(flow_.src_ip, flow_.dst_ip, flow_.src_port,
                             flow_.dst_port, config_.payload_bytes);
  p.set_created_at(scheduler_->Now());
  send_(std::move(p));
  ++packets_sent_;
}

void UdpSink::OnPacket(const Packet& packet) {
  if (!packet.has_udp()) {
    return;
  }
  bytes_received_ += packet.payload_bytes();
  tracker_.OnBytesDelivered(scheduler_->Now(), packet.payload_bytes());
  if (latency_ != nullptr) {
    SimTime delay = scheduler_->Now() - packet.created_at();
    uint8_t ac = packet.has_ip() ? AcForTos(packet.ip().tos) : kAcBe;
    latency_->Record(ac, delay);
    if (has_last_delay_) {
      SimTime delta = delay >= last_delay_ ? delay - last_delay_
                                           : last_delay_ - delay;
      latency_->RecordJitter(ac, delta);
    }
    last_delay_ = delay;
    has_last_delay_ = true;
  }
}

}  // namespace hacksim
