#include "src/apps/udp_app.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hacksim {

UdpCbrSource::UdpCbrSource(Scheduler* scheduler, Config config,
                           FiveTuple flow, std::function<void(Packet)> send)
    : scheduler_(scheduler),
      config_(config),
      flow_(flow),
      send_(std::move(send)) {
  double bits_per_packet = config_.payload_bytes * 8.0;
  interval_ = SimTime::FromSecondsF(bits_per_packet / config_.rate_bps);
  CHECK_GT(interval_.ns(), 0);
}

void UdpCbrSource::Start() {
  scheduler_->ScheduleAt(config_.start,
                         [this, epoch = epoch_]() { EmitNext(epoch); },
                         EventClass::kTransportTimer);
}

void UdpCbrSource::Stop() {
  // The pending EmitNext carries the old epoch and dies on arrival.
  config_.stop = scheduler_->Now();
  ++epoch_;
}

void UdpCbrSource::Resume(SimTime at, SimTime stop) {
  ++epoch_;
  config_.stop = stop;
  scheduler_->ScheduleAt(std::max(at, scheduler_->Now()),
                         [this, epoch = epoch_]() { EmitNext(epoch); },
                         EventClass::kTransportTimer);
}

void UdpCbrSource::EmitNext(uint64_t epoch) {
  if (epoch != epoch_ || scheduler_->Now() >= config_.stop) {
    return;
  }
  Packet p = Packet::MakeUdp(flow_.src_ip, flow_.dst_ip, flow_.src_port,
                             flow_.dst_port, config_.payload_bytes);
  p.set_created_at(scheduler_->Now());
  send_(std::move(p));
  ++packets_sent_;
  scheduler_->ScheduleIn(interval_,
                         [this, epoch]() { EmitNext(epoch); },
                         EventClass::kTransportTimer);
}

void UdpSink::OnPacket(const Packet& packet) {
  if (!packet.has_udp()) {
    return;
  }
  bytes_received_ += packet.payload_bytes();
  tracker_.OnBytesDelivered(scheduler_->Now(), packet.payload_bytes());
}

}  // namespace hacksim
