// UDP constant-bit-rate source and counting sink — the unidirectional
// workload the paper uses as its capacity yardstick (Figures 9 and 10).
#ifndef SRC_APPS_UDP_APP_H_
#define SRC_APPS_UDP_APP_H_

#include <functional>

#include "src/net/address.h"
#include "src/packet/packet.h"
#include "src/sim/scheduler.h"
#include "src/stats/experiment_stats.h"

namespace hacksim {

class UdpCbrSource {
 public:
  struct Config {
    double rate_bps = 200e6;     // offered load (saturating by default)
    uint32_t payload_bytes = 1472;
    SimTime start;
    SimTime stop = SimTime::Max();
    // Token-bucket pacing. Zero (default) keeps the classic chain: one
    // kTransportTimer event per packet. A window longer than the packet
    // interval switches to bucket mode: one refill event per window
    // releases every CBR tick accrued since the last refill, so the event
    // count drops by the burst factor while byte totals match the classic
    // chain at every refill boundary and at Stop() (which flushes).
    SimTime burst_window;
    // Cap on packets released per refill (bounds the burst a single event
    // injects into the MAC queue; the window shrinks to cap * interval).
    uint32_t max_burst_packets = 64;
  };

  UdpCbrSource(Scheduler* scheduler, Config config, FiveTuple flow,
               std::function<void(Packet)> send);

  void Start();

  // Fault-injection control. Stop() ends the emission chain at the next
  // tick; Resume(at, stop) re-arms a fresh chain from `at`. The epoch
  // counter strands the old chain's self-rescheduled event, so stop/resume
  // cycles never double the emission rate.
  void Stop();
  void Resume(SimTime at, SimTime stop = SimTime::Max());

  uint64_t packets_sent() const { return packets_sent_; }

 private:
  void EmitNext(uint64_t epoch);
  void Refill(uint64_t epoch);
  void EmitOne();

  Scheduler* scheduler_;
  Config config_;
  FiveTuple flow_;
  std::function<void(Packet)> send_;
  SimTime interval_;
  // Bucket mode (burst_packets_ > 1): the virtual CBR clock. The next
  // unreleased tick; Max() until Start()/Resume() arms a chain.
  SimTime next_emit_ = SimTime::Max();
  SimTime period_;             // refill cadence = interval_ * burst_packets_
  uint32_t burst_packets_ = 1;  // 1 = classic one-event-per-packet chain
  uint64_t packets_sent_ = 0;
  uint64_t epoch_ = 0;
};

class UdpSink {
 public:
  explicit UdpSink(Scheduler* scheduler) : scheduler_(scheduler) {}

  void OnPacket(const Packet& packet);

  uint64_t bytes_received() const { return bytes_received_; }
  const GoodputTracker& tracker() const { return tracker_; }

  // Per-AC latency collection: when set, every delivery records its
  // enqueue→delivery delay (Packet::created_at is stamped at the source)
  // under the packet's DSCP-derived access category, plus the consecutive
  // same-sink delay delta for jitter. Recording only — no events, no RNG —
  // so wiring a recorder cannot perturb a run.
  void set_latency_recorder(LatencyRecorder* recorder) {
    latency_ = recorder;
  }

 private:
  Scheduler* scheduler_;
  uint64_t bytes_received_ = 0;
  GoodputTracker tracker_;
  LatencyRecorder* latency_ = nullptr;
  SimTime last_delay_;
  bool has_last_delay_ = false;
};

}  // namespace hacksim

#endif  // SRC_APPS_UDP_APP_H_
