// UDP constant-bit-rate source and counting sink — the unidirectional
// workload the paper uses as its capacity yardstick (Figures 9 and 10).
#ifndef SRC_APPS_UDP_APP_H_
#define SRC_APPS_UDP_APP_H_

#include <functional>

#include "src/net/address.h"
#include "src/packet/packet.h"
#include "src/sim/scheduler.h"
#include "src/stats/experiment_stats.h"

namespace hacksim {

class UdpCbrSource {
 public:
  struct Config {
    double rate_bps = 200e6;     // offered load (saturating by default)
    uint32_t payload_bytes = 1472;
    SimTime start;
    SimTime stop = SimTime::Max();
  };

  UdpCbrSource(Scheduler* scheduler, Config config, FiveTuple flow,
               std::function<void(Packet)> send);

  void Start();

  // Fault-injection control. Stop() ends the emission chain at the next
  // tick; Resume(at, stop) re-arms a fresh chain from `at`. The epoch
  // counter strands the old chain's self-rescheduled event, so stop/resume
  // cycles never double the emission rate.
  void Stop();
  void Resume(SimTime at, SimTime stop = SimTime::Max());

  uint64_t packets_sent() const { return packets_sent_; }

 private:
  void EmitNext(uint64_t epoch);

  Scheduler* scheduler_;
  Config config_;
  FiveTuple flow_;
  std::function<void(Packet)> send_;
  SimTime interval_;
  uint64_t packets_sent_ = 0;
  uint64_t epoch_ = 0;
};

class UdpSink {
 public:
  explicit UdpSink(Scheduler* scheduler) : scheduler_(scheduler) {}

  void OnPacket(const Packet& packet);

  uint64_t bytes_received() const { return bytes_received_; }
  const GoodputTracker& tracker() const { return tracker_; }

 private:
  Scheduler* scheduler_;
  uint64_t bytes_received_ = 0;
  GoodputTracker tracker_;
};

}  // namespace hacksim

#endif  // SRC_APPS_UDP_APP_H_
