// bitio is header-only; this translation unit exists so the util library has
// a consistent one-cc-per-header layout and anchors the header's compile.
#include "src/util/bitio.h"
