// CRC implementations used across the stack:
//  * CRC-32  (IEEE 802.3)  — 802.11 frame FCS and general integrity in tests.
//  * CRC-16  (CCITT)       — HACK payload envelope integrity.
//  * CRC-8   (ROHC, poly 0xE0 reflected / x^8+x^2+x+1) — ROHC refresh packets.
//  * CRC-3   (ROHC, x^3+x+1) — per-compressed-ACK validation (RFC 5795 §5.3.1.1).
#ifndef SRC_UTIL_CRC_H_
#define SRC_UTIL_CRC_H_

#include <cstdint>
#include <span>

namespace hacksim {

// IEEE 802.3 CRC-32 (reflected, init 0xFFFFFFFF, final xor 0xFFFFFFFF).
uint32_t Crc32(std::span<const uint8_t> data);

// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF).
uint16_t Crc16(std::span<const uint8_t> data);

// ROHC CRC-8: polynomial x^8 + x^2 + x + 1 (0x07), init 0xFF (RFC 5795).
uint8_t Crc8Rohc(std::span<const uint8_t> data);

// ROHC CRC-3: polynomial x^3 + x + 1 (0x3), init 0x7 (RFC 5795).
// Returns a value in [0, 7].
uint8_t Crc3Rohc(std::span<const uint8_t> data);

}  // namespace hacksim

#endif  // SRC_UTIL_CRC_H_
