// MD5 message digest (RFC 1321), implemented from scratch.
//
// HACK uses MD5 to derive ROHC context identifiers: the CID for a TCP flow is
// the lowest byte of the MD5 hash over the flow's 5-tuple (paper §3.3.2).
// MD5 is used here as a stable mixing function, not for security.
#ifndef SRC_UTIL_MD5_H_
#define SRC_UTIL_MD5_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace hacksim {

using Md5Digest = std::array<uint8_t, 16>;

// Incremental MD5 hasher.
class Md5 {
 public:
  Md5();

  // Absorbs `data` into the running hash.
  void Update(std::span<const uint8_t> data);

  // Finalizes and returns the digest. The hasher must not be reused after
  // calling Finish() without Reset().
  Md5Digest Finish();

  void Reset();

  // One-shot convenience.
  static Md5Digest Hash(std::span<const uint8_t> data);

  // Lowercase hex rendering (for tests against RFC 1321 vectors).
  static std::string ToHex(const Md5Digest& digest);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 4> state_;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace hacksim

#endif  // SRC_UTIL_MD5_H_
