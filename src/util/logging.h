// Minimal logging and invariant-checking support for the simulator.
//
// Philosophy (per C++ Core Guidelines E.12/I.6): programmer errors and broken
// invariants abort via CHECK; recoverable conditions are modelled with
// std::optional or status enums at the call site, never with exceptions on
// hot paths.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

namespace hacksim {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global log threshold; messages below it are discarded. Defaults to
// kWarning so tests and benches stay quiet unless they opt in.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// One-line run context (seed, topology, fault plan, ...) emitted right
// before any FATAL abort, so a CHECK death in CI is reproducible from the
// log alone. Harnesses (RunScenario, the fuzz driver) overwrite it at the
// start of every run; empty means "print nothing extra". The context is
// thread-local: each campaign worker holds the repro of the run it is
// executing, so an abort on any worker names the right run.
void SetAbortContext(std::string context);
const std::string& GetAbortContext();

namespace internal {

// Accumulates one log statement and emits it (to stderr) on destruction.
// FATAL messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows streamed values when a log statement is compiled out or below
// the active threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace hacksim

#define HACKSIM_LOG_ENABLED(level) \
  (::hacksim::LogLevel::level >= ::hacksim::GetLogLevel())

#define LOG(level)                                                        \
  if (!HACKSIM_LOG_ENABLED(k##level)) {                                   \
  } else                                                                  \
    ::hacksim::internal::LogMessage(::hacksim::LogLevel::k##level,        \
                                    __FILE__, __LINE__)                   \
        .stream()

// CHECK is always on (release included): simulation correctness depends on
// these invariants and silent corruption would invalidate every experiment.
#define CHECK(cond)                                                       \
  if (cond) {                                                             \
  } else                                                                  \
    ::hacksim::internal::LogMessage(::hacksim::LogLevel::kFatal,          \
                                    __FILE__, __LINE__)                   \
            .stream()                                                     \
        << "CHECK failed: " #cond " "

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define DCHECK(cond) \
  if (true) {        \
  } else             \
    ::hacksim::internal::NullStream()
#else
#define DCHECK(cond) CHECK(cond)
#endif

#endif  // SRC_UTIL_LOGGING_H_
