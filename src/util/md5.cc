#include "src/util/md5.h"

#include <cstring>

#include "src/util/logging.h"

namespace hacksim {
namespace {

// Per-round shift amounts (RFC 1321 §3.4).
constexpr std::array<uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|), precomputed (RFC 1321 §3.4).
constexpr std::array<uint32_t, 64> kSine = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr uint32_t RotateLeft(uint32_t x, uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Md5::Md5() { Reset(); }

void Md5::Reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  buffer_len_ = 0;
  total_bytes_ = 0;
  finished_ = false;
}

void Md5::Update(std::span<const uint8_t> data) {
  CHECK(!finished_) << "Md5::Update after Finish without Reset";
  total_bytes_ += data.size();
  size_t offset = 0;
  // Fill any partial block first.
  if (buffer_len_ > 0) {
    size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Md5Digest Md5::Finish() {
  CHECK(!finished_);
  finished_ = true;
  // Padding: 0x80 then zeros until 56 mod 64, then 64-bit little-endian
  // length in bits.
  uint64_t bit_len = total_bytes_ * 8;
  uint8_t pad[72] = {0x80};
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_)
                                      : (120 - buffer_len_);
  finished_ = false;  // allow the Update calls below
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  Update({pad, pad_len});
  Update({len_bytes, 8});
  finished_ = true;
  CHECK_EQ(buffer_len_, 0u);

  Md5Digest out;
  for (int i = 0; i < 4; ++i) {
    out[4 * i + 0] = static_cast<uint8_t>(state_[i]);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i] >> 24);
  }
  return out;
}

void Md5::ProcessBlock(const uint8_t* block) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = LoadLe32(block + 4 * i);
  }
  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];

  for (uint32_t i = 0; i < 64; ++i) {
    uint32_t f;
    uint32_t g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    uint32_t temp = d;
    d = c;
    c = b;
    b = b + RotateLeft(a + f + kSine[i] + m[g], kShift[i]);
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

Md5Digest Md5::Hash(std::span<const uint8_t> data) {
  Md5 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

std::string Md5::ToHex(const Md5Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace hacksim
