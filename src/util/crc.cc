#include "src/util/crc.h"

#include <array>

namespace hacksim {
namespace {

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  const auto& table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint16_t Crc16(std::span<const uint8_t> data) {
  uint16_t crc = 0xFFFF;
  for (uint8_t byte : data) {
    crc ^= static_cast<uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? static_cast<uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<uint16_t>(crc << 1);
    }
  }
  return crc;
}

uint8_t Crc8Rohc(std::span<const uint8_t> data) {
  uint8_t crc = 0xFF;
  for (uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80) ? static_cast<uint8_t>((crc << 1) ^ 0x07)
                         : static_cast<uint8_t>(crc << 1);
    }
  }
  return crc;
}

uint8_t Crc3Rohc(std::span<const uint8_t> data) {
  // Bit-serial CRC-3 with polynomial x^3 + x + 1 (0b011 taps), init 0x7,
  // processing bytes MSB-first as RFC 5795 specifies.
  uint8_t crc = 0x7;
  for (uint8_t byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      uint8_t in = (byte >> bit) & 1;
      uint8_t top = (crc >> 2) & 1;
      crc = static_cast<uint8_t>((crc << 1) & 0x7);
      if (in ^ top) {
        crc ^= 0x3;  // x + 1 taps; bit 0 enters as the feedback bit
      }
    }
  }
  return crc;
}

}  // namespace hacksim
