// Small statistics helpers: running mean/variance (Welford), min/max,
// fixed-bucket histograms, and time-weighted averages. Used by the stats
// collectors that regenerate the paper's tables.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hacksim {

// Streaming scalar summary (Welford's algorithm for numerically stable
// variance).
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merges another summary into this one (parallel Welford combine).
  void Merge(const RunningStats& other);

  // Half-width of the two-sided 95% confidence interval on the mean:
  // t_{0.975, n-1} * stddev / sqrt(n). Student-t critical values for the
  // small sample counts campaigns actually use (exact for n <= 31, the
  // normal 1.96 beyond); 0 for fewer than two samples. The campaign engine
  // reports mean +/- this per matrix cell.
  double Ci95HalfWidth() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over [lo, hi) with `buckets` equal-width bins plus underflow and
// overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);

  int64_t total() const { return total_; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t bucket_count(int i) const { return counts_[i]; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  double bucket_lo(int i) const { return lo_ + i * width_; }

  // Value below which `fraction` (0..1] of samples fall. Linear
  // interpolation within the bucket; underflow counts at lo, overflow at hi.
  double Quantile(double fraction) const;

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

}  // namespace hacksim

#endif  // SRC_UTIL_STATS_H_
