// Byte-oriented little-helper writers/readers used by header serialisation
// and the ROHC compressed-ACK wire format.
//
// Network headers use big-endian (network order) accessors; the ROHC payload
// format (our design) uses little-endian for multi-byte deltas, matching the
// convention documented in src/rohc/compressed_ack.h.
#ifndef SRC_UTIL_BITIO_H_
#define SRC_UTIL_BITIO_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/util/logging.h"

namespace hacksim {

// Append-only byte sink.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU16Be(uint16_t v) {
    bytes_.push_back(static_cast<uint8_t>(v >> 8));
    bytes_.push_back(static_cast<uint8_t>(v));
  }
  void WriteU32Be(uint32_t v) {
    bytes_.push_back(static_cast<uint8_t>(v >> 24));
    bytes_.push_back(static_cast<uint8_t>(v >> 16));
    bytes_.push_back(static_cast<uint8_t>(v >> 8));
    bytes_.push_back(static_cast<uint8_t>(v));
  }
  void WriteU16Le(uint16_t v) {
    bytes_.push_back(static_cast<uint8_t>(v));
    bytes_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void WriteU32Le(uint32_t v) {
    bytes_.push_back(static_cast<uint8_t>(v));
    bytes_.push_back(static_cast<uint8_t>(v >> 8));
    bytes_.push_back(static_cast<uint8_t>(v >> 16));
    bytes_.push_back(static_cast<uint8_t>(v >> 24));
  }
  void WriteBytes(std::span<const uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  void WriteZeros(size_t n) { bytes_.insert(bytes_.end(), n, 0); }

  // Overwrites a previously written byte (e.g. to patch a length field).
  void PatchU8(size_t offset, uint8_t v) {
    CHECK_LT(offset, bytes_.size());
    bytes_[offset] = v;
  }
  void PatchU16Be(size_t offset, uint16_t v) {
    CHECK_LE(offset + 2, bytes_.size());
    bytes_[offset] = static_cast<uint8_t>(v >> 8);
    bytes_[offset + 1] = static_cast<uint8_t>(v);
  }

  size_t size() const { return bytes_.size(); }
  std::span<const uint8_t> bytes() const { return bytes_; }
  std::vector<uint8_t> Take() && { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

// Forward-only byte source. All reads return std::nullopt past the end,
// letting deserialisers fail soft on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  std::optional<uint8_t> ReadU8() {
    if (pos_ + 1 > data_.size()) {
      return std::nullopt;
    }
    return data_[pos_++];
  }
  std::optional<uint16_t> ReadU16Be() {
    if (pos_ + 2 > data_.size()) {
      return std::nullopt;
    }
    uint16_t v = static_cast<uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::optional<uint32_t> ReadU32Be() {
    if (pos_ + 4 > data_.size()) {
      return std::nullopt;
    }
    uint32_t v = (static_cast<uint32_t>(data_[pos_]) << 24) |
                 (static_cast<uint32_t>(data_[pos_ + 1]) << 16) |
                 (static_cast<uint32_t>(data_[pos_ + 2]) << 8) |
                 static_cast<uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  std::optional<uint16_t> ReadU16Le() {
    if (pos_ + 2 > data_.size()) {
      return std::nullopt;
    }
    uint16_t v = static_cast<uint16_t>(data_[pos_] | data_[pos_ + 1] << 8);
    pos_ += 2;
    return v;
  }
  std::optional<uint32_t> ReadU32Le() {
    if (pos_ + 4 > data_.size()) {
      return std::nullopt;
    }
    uint32_t v = static_cast<uint32_t>(data_[pos_]) |
                 (static_cast<uint32_t>(data_[pos_ + 1]) << 8) |
                 (static_cast<uint32_t>(data_[pos_ + 2]) << 16) |
                 (static_cast<uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return v;
  }
  std::optional<std::span<const uint8_t>> ReadBytes(size_t n) {
    if (pos_ + n > data_.size()) {
      return std::nullopt;
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  bool Skip(size_t n) {
    if (pos_ + n > data_.size()) {
      return false;
    }
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace hacksim

#endif  // SRC_UTIL_BITIO_H_
