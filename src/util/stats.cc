#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>

#include "src/util/logging.h"

namespace hacksim {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::Ci95HalfWidth() const {
  if (count_ < 2) {
    return 0.0;
  }
  // Two-sided 95% Student-t critical values, indexed by degrees of freedom
  // (n-1); df >= 31 uses the normal-approximation tail value.
  static constexpr double kT975[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  int64_t df = count_ - 1;
  double t = df < static_cast<int64_t>(std::size(kT975)) ? kT975[df] : 1.960;
  return t * stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) *
            static_cast<double>(other.count_) / static_cast<double>(n);
  mean_ = new_mean;
  count_ = n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / buckets) {
  CHECK_GT(buckets, 0);
  CHECK_LT(lo, hi);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    idx = counts_.size() - 1;  // floating-point edge at hi
  }
  ++counts_[idx];
}

double Histogram::Quantile(double fraction) const {
  CHECK_GT(fraction, 0.0);
  CHECK_LE(fraction, 1.0);
  if (total_ == 0) {
    return lo_;
  }
  auto target = static_cast<int64_t>(std::ceil(fraction * total_));
  int64_t seen = underflow_;
  if (seen >= target) {
    return lo_;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (seen + counts_[i] >= target) {
      double within = counts_[i] == 0
                          ? 0.0
                          : static_cast<double>(target - seen) /
                                static_cast<double>(counts_[i]);
      return bucket_lo(static_cast<int>(i)) + within * width_;
    }
    seen += counts_[i];
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "hist[" << lo_ << "," << hi_ << ") n=" << total_
     << " under=" << underflow_ << " over=" << overflow_ << " |";
  for (int64_t c : counts_) {
    os << " " << c;
  }
  return os.str();
}

}  // namespace hacksim
