#include "src/util/logging.h"

#include <atomic>
#include <cstdlib>

namespace hacksim {
namespace {

// Relaxed atomic: the level is set at startup (possibly read concurrently
// by campaign worker threads) and never participates in any ordering.
std::atomic<LogLevel> g_level{LogLevel::kWarning};
// thread_local: each campaign worker carries the repro recipe of the run it
// is currently executing, so a CHECK failure on any worker prints the
// context of *its* run, not whichever run set the context last.
thread_local std::string g_abort_context;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void SetAbortContext(std::string context) {
  g_abort_context = std::move(context);
}
const std::string& GetAbortContext() { return g_abort_context; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for readability; the full path is still clickable in
  // most terminals via the trailing :line.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    if (!g_abort_context.empty()) {
      std::cerr << "[FATAL] run context: " << g_abort_context << "\n";
    }
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace internal
}  // namespace hacksim
