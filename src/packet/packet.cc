#include "src/packet/packet.h"

#include <mutex>
#include <sstream>
#include <vector>

#include "src/util/logging.h"

namespace hacksim {
namespace {

// Every slab ever carved, by any thread, stays registered here for the
// whole process lifetime. This is what makes the thread_local free list
// safe: a worker thread's slabs outlive the thread (its unreturned blocks
// are merely lost capacity, not dangling memory), and LeakSanitizer sees
// the allocations as reachable. Only slab carving — once per 256 blocks —
// takes the lock; the per-packet alloc/release path never does.
std::mutex g_slab_registry_mu;
std::vector<void*>& SlabRegistry() {
  static std::vector<void*>* registry = new std::vector<void*>();  // immortal
  return *registry;
}

}  // namespace

constinit thread_local uint64_t Packet::next_uid_ = 1;
constinit thread_local Packet::HeaderBlock* Packet::free_blocks_ = nullptr;

Packet::HeaderBlock* Packet::AllocBlock() {
  if (free_blocks_ == nullptr) {
    // Carve a fresh slab and thread it onto this thread's free list. Slabs
    // live for the whole process (registered above, so not a leak to
    // LeakSanitizer even after the carving thread exits); in steady state
    // every Make* call is satisfied from recycled blocks with zero heap
    // traffic.
    constexpr size_t kSlabBlocks = 256;
    HeaderBlock* slab = new HeaderBlock[kSlabBlocks];
    {
      std::lock_guard<std::mutex> lock(g_slab_registry_mu);
      SlabRegistry().push_back(slab);
    }
    for (size_t i = 0; i < kSlabBlocks; ++i) {
      slab[i].next_free = free_blocks_;
      free_blocks_ = &slab[i];
    }
  }
  HeaderBlock* b = free_blocks_;
  free_blocks_ = b->next_free;
  return b;
}

Packet Packet::MakeTcp(Ipv4Address src, Ipv4Address dst, TcpHeader tcp,
                       uint32_t payload_bytes) {
  Packet p;
  p.uid_ = next_uid_++;
  p.block_ = AllocBlock();
  p.block_->tcp = std::move(tcp);
  p.payload_bytes_ = payload_bytes;
  Ipv4Header ip;
  ip.protocol = kIpProtoTcp;
  ip.src = src;
  ip.dst = dst;
  ip.identification = 0;  // pure-rate model; DF always set
  ip.total_length = static_cast<uint16_t>(Ipv4Header::kBytes +
                                          p.block_->tcp->HeaderBytes() +
                                          payload_bytes);
  p.block_->ip = ip;
  return p;
}

Packet Packet::MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t src_port,
                       uint16_t dst_port, uint32_t payload_bytes) {
  Packet p;
  p.uid_ = next_uid_++;
  p.block_ = AllocBlock();
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<uint16_t>(UdpHeader::kBytes + payload_bytes);
  p.block_->udp = udp;
  p.payload_bytes_ = payload_bytes;
  Ipv4Header ip;
  ip.protocol = kIpProtoUdp;
  ip.src = src;
  ip.dst = dst;
  ip.total_length =
      static_cast<uint16_t>(Ipv4Header::kBytes + udp.length);
  p.block_->ip = ip;
  return p;
}

size_t Packet::SizeBytes() const {
  size_t n = 0;
  if (has_ip()) {
    n += ip().HeaderBytes();
  }
  if (has_tcp()) {
    n += tcp().HeaderBytes();
  }
  if (has_udp()) {
    n += udp().HeaderBytes();
  }
  return n + payload_bytes_;
}

FiveTuple Packet::Flow() const {
  CHECK(has_ip());
  FiveTuple t;
  t.src_ip = ip().src;
  t.dst_ip = ip().dst;
  t.protocol = ip().protocol;
  if (has_tcp()) {
    t.src_port = tcp().src_port;
    t.dst_port = tcp().dst_port;
  } else if (has_udp()) {
    t.src_port = udp().src_port;
    t.dst_port = udp().dst_port;
  }
  return t;
}

std::string Packet::ToString() const {
  std::ostringstream os;
  os << "pkt#" << uid_ << " " << SizeBytes() << "B";
  if (has_ip()) {
    os << " " << ip().src << "->" << ip().dst;
  }
  if (has_tcp()) {
    os << " tcp seq=" << tcp().seq;
    if (tcp().flag_ack) {
      os << " ack=" << tcp().ack;
    }
    if (tcp().flag_syn) {
      os << " SYN";
    }
    if (tcp().flag_fin) {
      os << " FIN";
    }
  }
  if (has_udp()) {
    os << " udp";
  }
  os << " payload=" << payload_bytes_;
  return os.str();
}

}  // namespace hacksim
