#include "src/packet/packet.h"

#include <sstream>

#include "src/util/logging.h"

namespace hacksim {

constinit uint64_t Packet::next_uid_ = 1;

Packet Packet::MakeTcp(Ipv4Address src, Ipv4Address dst, TcpHeader tcp,
                       uint32_t payload_bytes) {
  Packet p;
  p.uid_ = next_uid_++;
  p.tcp_ = std::move(tcp);
  p.payload_bytes_ = payload_bytes;
  Ipv4Header ip;
  ip.protocol = kIpProtoTcp;
  ip.src = src;
  ip.dst = dst;
  ip.identification = 0;  // pure-rate model; DF always set
  ip.total_length = static_cast<uint16_t>(Ipv4Header::kBytes +
                                          p.tcp_->HeaderBytes() +
                                          payload_bytes);
  p.ip_ = ip;
  return p;
}

Packet Packet::MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t src_port,
                       uint16_t dst_port, uint32_t payload_bytes) {
  Packet p;
  p.uid_ = next_uid_++;
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<uint16_t>(UdpHeader::kBytes + payload_bytes);
  p.udp_ = udp;
  p.payload_bytes_ = payload_bytes;
  Ipv4Header ip;
  ip.protocol = kIpProtoUdp;
  ip.src = src;
  ip.dst = dst;
  ip.total_length =
      static_cast<uint16_t>(Ipv4Header::kBytes + udp.length);
  p.ip_ = ip;
  return p;
}

size_t Packet::SizeBytes() const {
  size_t n = 0;
  if (ip_.has_value()) {
    n += ip_->HeaderBytes();
  }
  if (tcp_.has_value()) {
    n += tcp_->HeaderBytes();
  }
  if (udp_.has_value()) {
    n += udp_->HeaderBytes();
  }
  return n + payload_bytes_;
}

FiveTuple Packet::Flow() const {
  CHECK(ip_.has_value());
  FiveTuple t;
  t.src_ip = ip_->src;
  t.dst_ip = ip_->dst;
  t.protocol = ip_->protocol;
  if (tcp_.has_value()) {
    t.src_port = tcp_->src_port;
    t.dst_port = tcp_->dst_port;
  } else if (udp_.has_value()) {
    t.src_port = udp_->src_port;
    t.dst_port = udp_->dst_port;
  }
  return t;
}

std::string Packet::ToString() const {
  std::ostringstream os;
  os << "pkt#" << uid_ << " " << SizeBytes() << "B";
  if (ip_.has_value()) {
    os << " " << ip_->src << "->" << ip_->dst;
  }
  if (tcp_.has_value()) {
    os << " tcp seq=" << tcp_->seq;
    if (tcp_->flag_ack) {
      os << " ack=" << tcp_->ack;
    }
    if (tcp_->flag_syn) {
      os << " SYN";
    }
    if (tcp_->flag_fin) {
      os << " FIN";
    }
  }
  if (udp_.has_value()) {
    os << " udp";
  }
  os << " payload=" << payload_bytes_;
  return os.str();
}

}  // namespace hacksim
