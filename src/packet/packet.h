// The simulator's packet: a structured header stack plus a synthetic payload
// length. Headers are real (serialisable, byte-exact); payload bytes are not
// materialised — only their count matters for airtime, queueing and goodput.
//
// Packets are value types stored by value in queues and safe to retain for
// link-layer retransmission — but the hot path never copies them: every
// queue handoff (device -> HACK agent -> MAC queue -> frame) moves, which
// transfers the header storage pointer-for-pointer. Copies are reserved for
// deliberate retention (MAC retransmission buffers, the opportunistic HACK
// race).
//
// Header storage is arena-pooled: the three header structs live in a
// HeaderBlock drawn from a process-lifetime free-list slab, so MakeTcp /
// MakeUdp are allocation-free in steady state (SACK blocks are inline in
// the TCP header — see SackList — so a block has no secondary
// allocations). A Packet itself is four words; moves swap one pointer.
//
// The free list and the uid counter are thread_local: each thread owns a
// private pool, so concurrent RunScenario calls (the campaign engine,
// src/scenario/campaign.h) never contend or interleave. A Packet must be
// released on the thread that built it — true by construction, since a
// simulation run lives entirely on one worker thread.
#ifndef SRC_PACKET_PACKET_H_
#define SRC_PACKET_PACKET_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/net/address.h"
#include "src/net/ipv4_header.h"
#include "src/net/tcp_header.h"
#include "src/net/udp_header.h"
#include "src/sim/sim_time.h"

namespace hacksim {

class Packet {
 public:
  Packet() = default;
  Packet(const Packet& other) { CopyFrom(other); }
  Packet& operator=(const Packet& other) {
    if (this != &other) {
      ReleaseBlock();
      CopyFrom(other);
    }
    return *this;
  }
  // Moves must stay noexcept so containers relocate rather than copy.
  Packet(Packet&& other) noexcept
      : uid_(other.uid_),
        created_at_(other.created_at_),
        block_(other.block_),
        payload_bytes_(other.payload_bytes_) {
    other.block_ = nullptr;
  }
  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      ReleaseBlock();
      uid_ = other.uid_;
      created_at_ = other.created_at_;
      block_ = other.block_;
      payload_bytes_ = other.payload_bytes_;
      other.block_ = nullptr;
    }
    return *this;
  }
  ~Packet() { ReleaseBlock(); }

  // --- builders -----------------------------------------------------------
  static Packet MakeTcp(Ipv4Address src, Ipv4Address dst, TcpHeader tcp,
                        uint32_t payload_bytes);
  static Packet MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t src_port,
                        uint16_t dst_port, uint32_t payload_bytes);

  // --- header access ------------------------------------------------------
  bool has_ip() const { return block_ != nullptr && block_->ip.has_value(); }
  bool has_tcp() const {
    return block_ != nullptr && block_->tcp.has_value();
  }
  bool has_udp() const {
    return block_ != nullptr && block_->udp.has_value();
  }
  const Ipv4Header& ip() const { return *block_->ip; }
  Ipv4Header& mutable_ip() { return *block_->ip; }
  const TcpHeader& tcp() const { return *block_->tcp; }
  TcpHeader& mutable_tcp() { return *block_->tcp; }
  const UdpHeader& udp() const { return *block_->udp; }

  uint32_t payload_bytes() const { return payload_bytes_; }

  // Total IP datagram size: IP header + transport header + payload.
  size_t SizeBytes() const;

  // True for a TCP segment with no payload and plain ACK semantics — the
  // packets HACK is allowed to compress into link-layer ACKs.
  bool IsPureTcpAck() const {
    return has_tcp() && payload_bytes_ == 0 && block_->tcp->IsPureAckShape();
  }

  // Flow key in the direction this packet travels.
  FiveTuple Flow() const;

  // --- bookkeeping --------------------------------------------------------
  uint64_t uid() const { return uid_; }
  SimTime created_at() const { return created_at_; }
  void set_created_at(SimTime t) { created_at_ = t; }

  std::string ToString() const;

 private:
  // Pooled header storage. Blocks come from slabs that stay reachable (via
  // a process-lifetime slab registry — see packet.cc) forever, so neither
  // static-destruction order nor a worker thread exiting can invalidate a
  // live Packet. The free list itself is thread_local: every thread recycles
  // only its own blocks, so N concurrent simulation runs share nothing and
  // need no atomics on this path.
  struct HeaderBlock {
    std::optional<Ipv4Header> ip;
    std::optional<TcpHeader> tcp;
    std::optional<UdpHeader> udp;
    HeaderBlock* next_free = nullptr;
  };

  static HeaderBlock* AllocBlock();
  static constinit thread_local HeaderBlock* free_blocks_;

  void ReleaseBlock() {
    if (block_ != nullptr) {
      // All three header types are trivially destructible (SACK storage is
      // inline), so a reset is a flag store and the block is immediately
      // reusable.
      block_->ip.reset();
      block_->tcp.reset();
      block_->udp.reset();
      block_->next_free = free_blocks_;
      free_blocks_ = block_;
      block_ = nullptr;
    }
  }
  void CopyFrom(const Packet& other) {
    uid_ = other.uid_;
    created_at_ = other.created_at_;
    payload_bytes_ = other.payload_bytes_;
    if (other.block_ != nullptr) {
      block_ = AllocBlock();
      block_->ip = other.block_->ip;
      block_->tcp = other.block_->tcp;
      block_->udp = other.block_->udp;
    } else {
      block_ = nullptr;
    }
  }

  // Monotonic uid source for the builders. `constinit` proves constant
  // initialisation — no static-initialisation-order hazard even when a
  // Packet is built from another translation unit's static initialiser.
  // thread_local: uids are unique within a thread (which is all the code
  // ever relies on — uids only back same-run equality checks, never
  // ordering), so concurrent runs need no atomic increment and a run's
  // behaviour is identical whether it executes serially or on a worker.
  static constinit thread_local uint64_t next_uid_;

  uint64_t uid_ = 0;
  SimTime created_at_;
  HeaderBlock* block_ = nullptr;
  uint32_t payload_bytes_ = 0;
};

}  // namespace hacksim

#endif  // SRC_PACKET_PACKET_H_
