// The simulator's packet: a structured header stack plus a synthetic payload
// length. Headers are real (serialisable, byte-exact); payload bytes are not
// materialised — only their count matters for airtime, queueing and goodput.
//
// Packets are value types stored by value in queues and safe to retain for
// link-layer retransmission — but the hot path never copies them: every
// queue handoff (device -> HACK agent -> MAC queue -> frame) moves, which
// transfers the header storage (including any SACK-block allocation)
// pointer-for-pointer. Copies are reserved for deliberate retention (MAC
// retransmission buffers, the opportunistic HACK race).
#ifndef SRC_PACKET_PACKET_H_
#define SRC_PACKET_PACKET_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/net/address.h"
#include "src/net/ipv4_header.h"
#include "src/net/tcp_header.h"
#include "src/net/udp_header.h"
#include "src/sim/sim_time.h"

namespace hacksim {

class Packet {
 public:
  Packet() = default;
  Packet(const Packet&) = default;
  Packet& operator=(const Packet&) = default;
  // Moves must stay noexcept so containers relocate rather than copy.
  Packet(Packet&&) noexcept = default;
  Packet& operator=(Packet&&) noexcept = default;

  // --- builders -----------------------------------------------------------
  static Packet MakeTcp(Ipv4Address src, Ipv4Address dst, TcpHeader tcp,
                        uint32_t payload_bytes);
  static Packet MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t src_port,
                        uint16_t dst_port, uint32_t payload_bytes);

  // --- header access ------------------------------------------------------
  bool has_ip() const { return ip_.has_value(); }
  bool has_tcp() const { return tcp_.has_value(); }
  bool has_udp() const { return udp_.has_value(); }
  const Ipv4Header& ip() const { return *ip_; }
  Ipv4Header& mutable_ip() { return *ip_; }
  const TcpHeader& tcp() const { return *tcp_; }
  TcpHeader& mutable_tcp() { return *tcp_; }
  const UdpHeader& udp() const { return *udp_; }

  uint32_t payload_bytes() const { return payload_bytes_; }

  // Total IP datagram size: IP header + transport header + payload.
  size_t SizeBytes() const;

  // True for a TCP segment with no payload and plain ACK semantics — the
  // packets HACK is allowed to compress into link-layer ACKs.
  bool IsPureTcpAck() const {
    return has_tcp() && payload_bytes_ == 0 && tcp_->IsPureAckShape();
  }

  // Flow key in the direction this packet travels.
  FiveTuple Flow() const;

  // --- bookkeeping --------------------------------------------------------
  uint64_t uid() const { return uid_; }
  SimTime created_at() const { return created_at_; }
  void set_created_at(SimTime t) { created_at_ = t; }

  std::string ToString() const;

 private:
  // Monotonic uid source for the builders. `constinit` proves constant
  // initialisation — no static-initialisation-order hazard even when a
  // Packet is built from another translation unit's static initialiser.
  // Plain (non-atomic) because the simulator is single-threaded by design;
  // see docs/perf.md before adding threads.
  static constinit uint64_t next_uid_;

  uint64_t uid_ = 0;
  SimTime created_at_;
  std::optional<Ipv4Header> ip_;
  std::optional<TcpHeader> tcp_;
  std::optional<UdpHeader> udp_;
  uint32_t payload_bytes_ = 0;
};

}  // namespace hacksim

#endif  // SRC_PACKET_PACKET_H_
