// Half-duplex OFDM PHY attached to a shared medium with pluggable
// propagation (see propagation.h).
//
// Reception model: a PPDU decodes iff (a) the receiver was not transmitting
// at any point during it, (b) it survives the overlap rule, and (c) each
// MPDU survives the configured channel-noise loss model. The overlap rule
// depends on the channel's PropagationModel:
//   * fixed-loss (legacy default): any overlap corrupts *both* frames — no
//     capture. This is what produces the TCP-ACK-vs-data collisions the
//     paper measures in Table 1, and it is bit-identical to the historical
//     behaviour.
//   * range-limited (log-distance): each arrival accumulates the receive
//     power of every transmission it overlapped; at arrival end the frame
//     survives iff its SINR clears the mode's capture threshold. Receivers
//     whose receive power sits below the energy-detection threshold get no
//     arrival edges at all — they neither decode nor carrier-sense the
//     transmission (the hidden-terminal condition).
//
// Carrier sense (CCA) reports energy from any *detectable* arrival,
// decodable or not.
//
// Delivery scheduling: the channel batches all arrival edges that land on
// the same nanosecond into one scheduler event (ChannelDeliveryMode::
// kBatched, the default), so per-PPDU event count is bounded by the number
// of distinct propagation delays — the cell's diameter in light-ns — rather
// than by the attached-PHY count. Arrival times, callback order, and
// corruption semantics are bit-identical to the historical one-event-per-PHY
// scheduling, which remains available (kPerPhyEvent) as the reference
// semantics for the equivalence tests.
#ifndef SRC_PHY80211_WIFI_PHY_H_
#define SRC_PHY80211_WIFI_PHY_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/phy80211/frame.h"
#include "src/phy80211/loss_model.h"
#include "src/phy80211/propagation.h"
#include "src/sim/random.h"
#include "src/sim/scheduler.h"
#include "src/stats/phy_stats.h"

namespace hacksim {

class WirelessChannel;

// One transmission's payload, shared by every receiver: the channel makes a
// single heap copy per PPDU and all arrivals reference it, instead of the
// historical per-receiver Ppdu copy (O(n) A-MPDU copies per transmission in
// a dense cell).
using PpduRef = std::shared_ptr<const Ppdu>;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

double DistanceMeters(Position a, Position b);

// Implemented by the MAC.
class WifiPhyListener {
 public:
  virtual ~WifiPhyListener() = default;

  // A PPDU decoded; mpdu_ok[i] says whether MPDU i survived channel noise.
  // At least one entry is true.
  virtual void OnPpduReceived(const Ppdu& ppdu,
                              const std::vector<bool>& mpdu_ok) = 0;
  // Energy was received but nothing decodable came out (collision, noise
  // killing every MPDU, or arrival during own transmission) — EIFS applies.
  virtual void OnRxCorrupted() = 0;
  virtual void OnTxEnd(const Ppdu& ppdu) = 0;
  // CCA transitions (energy or own transmission).
  virtual void OnCcaBusy() = 0;
  virtual void OnCcaIdle() = 0;
};

class WifiPhy {
 public:
  WifiPhy(Scheduler* scheduler, Random rng);

  void set_listener(WifiPhyListener* listener) { listener_ = listener; }
  void set_loss_model(std::unique_ptr<LossModel> model) {
    loss_model_ = std::move(model);
  }
  void set_position(Position p) {
    position_ = p;
    has_position_ = true;
  }
  Position position() const { return position_; }
  // True once a position was explicitly assigned. Range-limited propagation
  // refuses PHYs still sitting at the implicit origin: a forgotten position
  // would silently co-locate the node with the AP (see WirelessChannel::
  // Attach / set_propagation).
  bool has_position() const { return has_position_; }

  // Begins transmitting. If a transmission is already in progress the PPDU
  // is dropped (returns false) — can occur when a SIFS response collides
  // with an already-granted transmission under abnormal response delays.
  bool Send(Ppdu ppdu);

  // Radio power state (fault injection: crash, AP outage, interface
  // reset). Powering down kills every in-flight arrival and aborts an own
  // transmission in progress; their already-scheduled end events are
  // swallowed via tolerance counters rather than cancelled, keeping the
  // power switch O(arrivals). While off, Send refuses and arrival edges
  // are ignored. Powering up returns a clean receiver.
  void SetRadioOn(bool on);
  bool radio_on() const { return radio_on_; }

  bool transmitting() const { return transmitting_; }
  bool IsCcaBusy() const { return transmitting_ || !arrivals_.empty(); }

  // --- channel-facing interface -------------------------------------------
  void AttachTo(WirelessChannel* channel);
  void OnArrivalStart(uint64_t arrival_id, PpduRef ppdu, SimTime end,
                      double distance_m, double rx_power_dbm);
  void OnArrivalEnd(uint64_t arrival_id);
  void OnOwnTxEnd(const Ppdu& ppdu);

  const PhyStats& stats() const { return stats_; }
  uint64_t tx_dropped_busy() const { return stats_.tx_dropped_busy; }

 private:
  struct Arrival {
    PpduRef ppdu;
    SimTime end;
    double distance_m;
    double rx_power_mw = 0.0;
    // Sum of receive powers of every other transmission that overlapped
    // this arrival at any point (range-limited propagation only); the SINR
    // verdict lands at arrival end.
    double interference_mw = 0.0;
    bool corrupted = false;
  };

  void UpdateCca();

  Scheduler* scheduler_;
  Random rng_;
  WirelessChannel* channel_ = nullptr;
  WifiPhyListener* listener_ = nullptr;
  std::unique_ptr<LossModel> loss_model_;
  Position position_;
  bool has_position_ = false;

  // In-flight arrivals, insertion (= id) order. Rarely more than two deep;
  // a flat vector beats the former std::map on every touch.
  std::vector<std::pair<uint64_t, Arrival>> arrivals_;
  bool transmitting_ = false;
  bool cca_busy_reported_ = false;
  bool radio_on_ = true;
  // End events owed for arrivals killed by a power-down (or ignored while
  // off); OnArrivalEnd swallows exactly this many unknown ids. Same scheme
  // for an aborted own transmission's tx-end event. Correctness relies on
  // events firing in time order: every swallowed end edge belongs to an
  // arrival that provably started before the power transition.
  uint64_t dropped_arrival_ends_ = 0;
  uint64_t aborted_tx_ends_ = 0;
  PhyStats stats_;
};

// Airtime ledger: how the medium's busy time divides across frame types.
// Backs the paper's §2.1 overhead narrative with a measurable quantity.
struct ChannelAirtime {
  int64_t data_ns = 0;        // data PPDUs (single or A-MPDU)
  int64_t ack_ns = 0;         // LL ACKs and Block ACKs (incl. HACK payload)
  int64_t bar_ns = 0;         // Block ACK Requests
  int64_t rts_cts_ns = 0;     // RTS + CTS handshake frames
  int64_t collision_ns = 0;   // wall-clock during >= 2 overlapping PPDUs
  uint64_t ppdus = 0;
  uint64_t collisions = 0;    // transmissions that began during another
  uint64_t out_of_range = 0;  // (sender, receiver) pairs pruned because the
                              // receive power sat below the propagation
                              // model's energy-detection threshold

  int64_t TotalBusyNs() const {
    return data_ns + ack_ns + bar_ns + rts_cts_ns;
  }

  friend bool operator==(const ChannelAirtime&,
                         const ChannelAirtime&) = default;
};

enum class ChannelDeliveryMode {
  // One scheduler event per distinct arrival-edge nanosecond per PPDU; edge
  // callbacks fan out inside the event in attach order. O(cell diameter)
  // events per PPDU, independent of attached-PHY count.
  kBatched,
  // Historical reference semantics: two scheduler events (arrival start and
  // end) per attached PHY per PPDU. O(n) events per PPDU.
  kPerPhyEvent,
};

class WirelessChannel {
 public:
  explicit WirelessChannel(
      Scheduler* scheduler,
      ChannelDeliveryMode mode = ChannelDeliveryMode::kBatched)
      : scheduler_(scheduler), mode_(mode) {}

  // Attaching the same PHY twice would double-deliver every PPDU; it is a
  // programming error and aborts. So is attaching a PHY without an explicit
  // position while a range-limited propagation model is installed.
  void Attach(WifiPhy* phy);
  size_t attached_count() const { return phys_.size(); }

  void set_delivery_mode(ChannelDeliveryMode mode) { mode_ = mode; }
  ChannelDeliveryMode delivery_mode() const { return mode_; }

  // Installs a propagation model. Defaults to FixedLossPropagation — the
  // legacy broadcast medium, selected explicitly so position-less
  // construction stays valid. Installing a range-limited model aborts
  // unless every already-attached PHY has an explicit position.
  void set_propagation(std::unique_ptr<PropagationModel> model);
  const PropagationModel& propagation() const { return *propagation_; }

  // Propagates `ppdu` from `sender` to every other attached PHY with
  // per-pair propagation delay (distance / c).
  void Transmit(WifiPhy* sender, Ppdu ppdu);

  const ChannelAirtime& airtime() const { return airtime_; }

 private:
  // One receiver's arrival start or end edge inside a batched delivery
  // event. `attach_idx` preserves the historical callback order for edges
  // sharing a nanosecond.
  struct DeliveryEdge {
    SimTime at;
    size_t attach_idx;
    WifiPhy* phy;
    uint64_t arrival_id;
    SimTime end;           // arrival end time (start edges only)
    double distance_m;     // start edges only
    double rx_power_dbm;   // start edges only
    bool is_start;
  };

  void TransmitBatched(WifiPhy* sender, PpduRef ppdu, SimTime now,
                       SimTime duration);
  void TransmitPerPhy(WifiPhy* sender, PpduRef ppdu, SimTime now,
                      SimTime duration);

  Scheduler* scheduler_;
  ChannelDeliveryMode mode_;
  std::unique_ptr<PropagationModel> propagation_ =
      std::make_unique<FixedLossPropagation>();
  std::vector<WifiPhy*> phys_;
  uint64_t next_ppdu_id_ = 1;
  uint64_t next_arrival_id_ = 1;
  ChannelAirtime airtime_;
  int active_transmissions_ = 0;
  SimTime overlap_started_;
};

}  // namespace hacksim

#endif  // SRC_PHY80211_WIFI_PHY_H_
