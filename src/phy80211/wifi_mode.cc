#include "src/phy80211/wifi_mode.h"

#include <array>

#include "src/util/logging.h"

namespace hacksim {
namespace {

// N_DBPS for legacy OFDM = rate(Mbps) * 4 us symbol.
constexpr WifiMode LegacyMode(uint32_t kbps) {
  return WifiMode{PhyFormat::kLegacyOfdm, kbps,
                  static_cast<uint16_t>(kbps * 4 / 1000), 1};
}

// N_DBPS for HT short-GI = rate(Mbps) * 3.6 us symbol.
constexpr WifiMode HtMode(uint32_t kbps, uint8_t streams) {
  return WifiMode{PhyFormat::kHtMixed, kbps,
                  static_cast<uint16_t>(kbps * 36 / 10000), streams};
}

constexpr std::array<WifiMode, 8> kModesA = {
    LegacyMode(6000),  LegacyMode(9000),  LegacyMode(12000),
    LegacyMode(18000), LegacyMode(24000), LegacyMode(36000),
    LegacyMode(48000), LegacyMode(54000)};

constexpr std::array<WifiMode, 8> kModesN = {
    HtMode(15000, 1),  HtMode(30000, 1), HtMode(45000, 1), HtMode(60000, 1),
    HtMode(90000, 1),  HtMode(120000, 1), HtMode(135000, 1),
    HtMode(150000, 1)};

constexpr std::array<WifiMode, 11> kModesNExt = {
    HtMode(15000, 1),  HtMode(30000, 1),  HtMode(45000, 1),
    HtMode(60000, 1),  HtMode(90000, 1),  HtMode(120000, 1),
    HtMode(135000, 1), HtMode(150000, 1), HtMode(300000, 2),
    HtMode(450000, 3), HtMode(600000, 4)};

}  // namespace

std::string WifiMode::Name() const {
  std::string prefix = format == PhyFormat::kLegacyOfdm ? "ofdm" : "ht";
  return prefix + std::to_string(rate_kbps / 1000) +
         (rate_kbps % 1000 != 0 ? ".5" : "");
}

std::span<const WifiMode> Modes80211a() { return kModesA; }
std::span<const WifiMode> Modes80211n() { return kModesN; }
std::span<const WifiMode> Modes80211nExtended() { return kModesNExt; }

WifiMode ModeForRate(std::span<const WifiMode> table, double rate_mbps) {
  for (const WifiMode& mode : table) {
    if (mode.rate_kbps == static_cast<uint32_t>(rate_mbps * 1000 + 0.5)) {
      return mode;
    }
  }
  LOG(Fatal) << "no such mode: " << rate_mbps << " Mbps";
  return table[0];
}

WifiMode ControlResponseMode(const WifiMode& data_mode) {
  if (data_mode.rate_kbps >= 24000) {
    return LegacyMode(24000);
  }
  if (data_mode.rate_kbps >= 12000) {
    return LegacyMode(12000);
  }
  return LegacyMode(6000);
}

PhyTimings TimingsFor(WifiStandard standard) {
  PhyTimings t;
  t.slot = SimTime::Micros(9);
  t.sifs = SimTime::Micros(16);
  t.cw_min = 15;
  t.cw_max = 1023;
  switch (standard) {
    case WifiStandard::k80211a:
      // DIFS = SIFS + 2 * slot = 34 us.
      t.difs = t.sifs + 2 * t.slot;
      break;
    case WifiStandard::k80211n:
      // EDCA AC_BE: AIFS = SIFS + AIFSN(3) * slot = 43 us. With mean backoff
      // of CWmin/2 slots this yields the paper's 110.5 us average idle.
      t.difs = t.sifs + 3 * t.slot;
      break;
  }
  // Response timeout: SIFS + slot + preamble detection margin. The MAC adds
  // the expected response duration itself.
  t.ack_timeout = t.sifs + t.slot + SimTime::Micros(25);
  return t;
}

SimTime PreambleDuration(const WifiMode& mode) {
  switch (mode.format) {
    case PhyFormat::kLegacyOfdm:
      // 16 us PLCP preamble + 4 us SIGNAL.
      return SimTime::Micros(20);
    case PhyFormat::kHtMixed:
      // L-STF 8 + L-LTF 8 + L-SIG 4 + HT-SIG 8 + HT-STF 4 + HT-LTFs (4 us
      // per spatial stream).
      return SimTime::Micros(32) + SimTime::Micros(4) * mode.spatial_streams;
  }
  return SimTime::Zero();
}

SimTime FrameDuration(const WifiMode& mode, size_t bytes) {
  // SERVICE (16 bits) + tail (6 bits) + payload.
  uint64_t bits = 16 + 6 + 8 * static_cast<uint64_t>(bytes);
  uint64_t symbols = (bits + mode.bits_per_symbol - 1) / mode.bits_per_symbol;
  SimTime symbol_time = mode.format == PhyFormat::kLegacyOfdm
                            ? SimTime::Nanos(4000)
                            : SimTime::Nanos(3600);
  return PreambleDuration(mode) + symbol_time * static_cast<int64_t>(symbols);
}

}  // namespace hacksim
