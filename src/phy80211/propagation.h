// Propagation models: how transmit power turns into receive power across
// the cell, and when a receiver can hear a transmission at all.
//
//  * FixedLossPropagation  — the legacy broadcast medium: every attached PHY
//    hears every transmission at full strength regardless of distance, and
//    overlapping receptions keep the historical all-die collision rule. The
//    channel default; every seed scenario runs bit-identical on it.
//  * LogDistancePropagation — geometric cell: log-distance path loss turns
//    per-pair distance into receive power; receivers below the
//    energy-detection threshold get *no* arrival edges (no CCA energy, no
//    decode — the hidden-terminal condition), and overlapping receptions are
//    arbitrated by SINR capture: the strongest survives iff its SINR clears
//    the per-mode capture threshold, instead of the all-die rule.
//
// The model is per-channel (one physical medium). Per-receiver channel
// noise stays in LossModel — propagation decides who hears whom and who
// wins an overlap; loss models add statistical corruption on top.
#ifndef SRC_PHY80211_PROPAGATION_H_
#define SRC_PHY80211_PROPAGATION_H_

#include "src/phy80211/wifi_mode.h"

namespace hacksim {

double DbmToMw(double dbm);
double MwToDbm(double mw);

// Log-distance path loss PL(d) = pl0 + 10 * n * log10(max(d, 1 m)) — the
// one formula both the propagation layer and SnrLossModel consume, so the
// geometry (detect radius, hidden-cluster spacing) can never silently
// diverge from the loss model's SNR arithmetic.
double PathLossDb(double distance_m, double pl0_db, double path_loss_exponent);

class PropagationModel {
 public:
  virtual ~PropagationModel() = default;

  // Receive power at `distance_m` from the transmitter (one shared transmit
  // power per channel; distances below 1 m are clamped to 1 m).
  virtual double RxPowerDbm(double distance_m) const = 0;

  // Energy detection: below this the channel schedules no arrival edges for
  // the receiver — it neither decodes nor carrier-senses the transmission.
  virtual bool Detectable(double rx_power_dbm) const = 0;

  // True when the model limits range / arbitrates overlap by SINR. The
  // fixed-loss model returns false and the PHY keeps the historical
  // all-die overlap semantics bit-for-bit.
  virtual bool limits_range() const = 0;

  // Thermal noise power, linear milliwatts (SINR denominator floor).
  virtual double noise_floor_mw() const = 0;

  // Minimum SINR (dB) at which a PPDU sent at `mode` survives overlapping
  // energy — the capture threshold. Derived per mode: faster constellations
  // need more SINR to capture.
  virtual double CaptureSinrDb(const WifiMode& mode) const = 0;
};

// Legacy default: an idealised broadcast medium with no geometry. Receive
// power is a constant 0 dBm so every station is always in range; capture is
// never consulted (limits_range() is false).
class FixedLossPropagation final : public PropagationModel {
 public:
  double RxPowerDbm(double) const override { return 0.0; }
  bool Detectable(double) const override { return true; }
  bool limits_range() const override { return false; }
  double noise_floor_mw() const override { return 0.0; }
  double CaptureSinrDb(const WifiMode&) const override { return 0.0; }
};

// Log-distance path loss PL(d) = pl0 + 10 * n * log10(d / 1 m), the same
// form SnrLossModel uses; defaults are tuned for the two-cluster
// hidden-terminal topology (cluster centers 20 m either side of the AP:
// AP <-> station always detectable, cluster <-> cluster never).
class LogDistancePropagation final : public PropagationModel {
 public:
  struct Params {
    double tx_power_dbm = 15.0;
    double pl0_db = 46.7;  // free-space loss at 1 m, 5.2 GHz
    double path_loss_exponent = 3.5;
    double noise_floor_dbm = -95.0;
    // Energy-detection threshold: arrivals below this are invisible.
    double ed_threshold_dbm = -82.0;
    // Capture threshold = the mode's 50%-FER SNR midpoint + this margin.
    double capture_margin_db = 3.0;
  };

  explicit LogDistancePropagation(Params params);
  LogDistancePropagation() : LogDistancePropagation(Params{}) {}

  double RxPowerDbm(double distance_m) const override;
  bool Detectable(double rx_power_dbm) const override {
    return rx_power_dbm >= params_.ed_threshold_dbm;
  }
  bool limits_range() const override { return true; }
  double noise_floor_mw() const override { return noise_floor_mw_; }
  double CaptureSinrDb(const WifiMode& mode) const override;

  const Params& params() const { return params_; }

  // Largest distance still Detectable() — the cell's decode/carrier-sense
  // radius (exposed for topology builders and tests).
  double MaxDetectableRangeM() const;

 private:
  Params params_;
  double noise_floor_mw_;
};

}  // namespace hacksim

#endif  // SRC_PHY80211_PROPAGATION_H_
