// 802.11 PHY modes and air-time computation.
//
// Two PHYs are modelled, matching the paper's two evaluation platforms:
//  * 802.11a  (OFDM, 20 MHz): rates 6..54 Mbps, 4 us symbols, 20 us preamble.
//  * 802.11n  (HT 40 MHz, 400 ns short GI, mixed-format preamble): rates
//    15..150 Mbps for one spatial stream (the paper's Figure 11 rate set) and
//    300/450/600 Mbps for 2..4 streams (Figure 1(b)'s x-axis).
//
// Control frames (ACK / Block ACK / BAR) are always sent in the legacy
// (802.11a-style) format at a basic rate from {6, 12, 24} Mbps — the highest
// basic rate not exceeding the eliciting frame's rate, per the 802.11
// control-response rules the paper cites.
#ifndef SRC_PHY80211_WIFI_MODE_H_
#define SRC_PHY80211_WIFI_MODE_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/sim/sim_time.h"

namespace hacksim {

enum class WifiStandard {
  k80211a,
  k80211n,
};

enum class PhyFormat {
  kLegacyOfdm,  // 802.11a: 20 us preamble, 4 us symbols
  kHtMixed,     // 802.11n: 36+ us preamble, 3.6 us symbols (short GI)
};

struct WifiMode {
  PhyFormat format = PhyFormat::kLegacyOfdm;
  uint32_t rate_kbps = 6000;
  uint16_t bits_per_symbol = 24;  // N_DBPS
  uint8_t spatial_streams = 1;

  double rate_mbps() const { return rate_kbps / 1000.0; }
  std::string Name() const;

  friend bool operator==(const WifiMode&, const WifiMode&) = default;
};

// --- mode tables ------------------------------------------------------------

// 802.11a: 6, 9, 12, 18, 24, 36, 48, 54 Mbps.
std::span<const WifiMode> Modes80211a();

// 802.11n HT, 40 MHz, short GI, 1 spatial stream (MCS0-7):
// 15, 30, 45, 60, 90, 120, 135, 150 Mbps.
std::span<const WifiMode> Modes80211n();

// Extended multi-stream set used for the theoretical Figure 1(b): the 1SS
// set plus 300 (2SS), 450 (3SS), 600 (4SS) Mbps.
std::span<const WifiMode> Modes80211nExtended();

// Looks up the mode with the given rate within a table; CHECK-fails if absent.
WifiMode ModeForRate(std::span<const WifiMode> table, double rate_mbps);

// Highest mandatory basic rate (6/12/24 Mbps legacy OFDM) not exceeding
// `data_mode`'s rate; used for ACK/BA/BAR responses.
WifiMode ControlResponseMode(const WifiMode& data_mode);

// --- timing -----------------------------------------------------------------

struct PhyTimings {
  SimTime slot;         // 9 us for both OFDM PHYs
  SimTime sifs;         // 16 us
  SimTime difs;         // DIFS (11a) or AIFS[BE] (11n): SIFS + n*slot
  uint32_t cw_min;      // 15
  uint32_t cw_max;      // 1023
  SimTime ack_timeout;  // from TX end until giving up on the response
};

// Returns the MAC timing set for a standard. For 802.11n these are the EDCA
// best-effort parameters (AIFSN=3), which give the paper's 110.5 us average
// pre-transmission idle period: AIFS 43 us + (CWmin/2) * 9 us = 110.5 us.
PhyTimings TimingsFor(WifiStandard standard);

// Air time of a PSDU of `bytes` at `mode`, including preamble, SERVICE and
// tail bits, rounded up to whole symbols.
SimTime FrameDuration(const WifiMode& mode, size_t bytes);

// Preamble-only duration for `mode` (legacy: 20 us; HT: 36 us + 4 us per
// additional spatial stream's HT-LTF).
SimTime PreambleDuration(const WifiMode& mode);

}  // namespace hacksim

#endif  // SRC_PHY80211_WIFI_MODE_H_
