// Channel loss models.
//
//  * NoLossModel        — ideal channel (theory validation runs).
//  * BernoulliLossModel — i.i.d. per-MPDU corruption with fixed probability;
//    used to emulate the SoRa testbed's per-client frame loss (paper §4.2).
//  * SnrLossModel       — log-distance path loss -> SNR -> per-mode logistic
//    frame error rate scaled by MPDU length; drives the Figure 11 SNR sweep.
//  * PerRateLossModel   — explicit rate -> PER table, distance-independent;
//    the controllable signal the per-station rate-adaptation loop trains
//    against (high rates lossy, low rates robust, chosen — not derived).
//  * GatedLossModel     — fault-injection wrapper: extra Bernoulli loss only
//    while an interference-burst window is open, stream-neutral otherwise.
//
// Collisions are handled by the PHY itself (overlapping receptions corrupt
// each other — or survive by SINR capture under a range-limited
// PropagationModel, see propagation.h); loss models add statistical
// channel-noise corruption on top, after the overlap verdict. The capture
// thresholds reuse this file's per-mode SNR midpoints
// (SnrLossModel::ModeSnrMidpointDb), so the two layers share one waterfall
// table.
#ifndef SRC_PHY80211_LOSS_MODEL_H_
#define SRC_PHY80211_LOSS_MODEL_H_

#include <memory>
#include <vector>

#include "src/phy80211/frame.h"
#include "src/phy80211/wifi_mode.h"
#include "src/sim/random.h"

namespace hacksim {

class LossModel {
 public:
  virtual ~LossModel() = default;

  // Returns true if an MPDU of `bytes` sent at `mode` over `distance_m`
  // is corrupted by channel noise.
  virtual bool ShouldCorrupt(const WifiMode& mode, size_t bytes,
                             double distance_m, Random& rng) = 0;
};

class NoLossModel final : public LossModel {
 public:
  bool ShouldCorrupt(const WifiMode&, size_t, double, Random&) override {
    return false;
  }
};

class BernoulliLossModel final : public LossModel {
 public:
  // `data_loss` applies to data MPDUs; control frames (<= `control_bytes`
  // threshold, default 64 B) use `control_loss` — short control frames at
  // robust basic rates fail far less often than full-size data frames.
  explicit BernoulliLossModel(double data_loss, double control_loss = 0.0)
      : data_loss_(data_loss), control_loss_(control_loss) {}

  bool ShouldCorrupt(const WifiMode&, size_t bytes, double,
                     Random& rng) override {
    double p = bytes <= kControlSizeThreshold ? control_loss_ : data_loss_;
    return rng.NextBool(p);
  }

  static constexpr size_t kControlSizeThreshold = 64;

 private:
  double data_loss_;
  double control_loss_;
};

// Explicit per-rate PER curve: each rate has a frame error rate for
// reference-length data MPDUs, scaled to the actual MPDU length assuming
// independent per-bit errors (same convention as SnrLossModel). Rates
// absent from the table and control-size frames (<= control threshold, the
// robust basic-rate responses) are lossless. Distance plays no part — this
// is the model for scenarios and tests that want to *choose* the channel
// quality seen at each rate so rate adaptation has a deterministic,
// interpretable signal to converge on.
class PerRateLossModel final : public LossModel {
 public:
  struct Entry {
    uint32_t rate_kbps;
    double per;  // reference-length frame error rate in [0, 1]
  };

  explicit PerRateLossModel(std::vector<Entry> table,
                            size_t reference_bytes = 1500)
      : table_(std::move(table)), reference_bytes_(reference_bytes) {}

  bool ShouldCorrupt(const WifiMode& mode, size_t bytes, double distance_m,
                     Random& rng) override;

  // Deterministic FER for `bytes` at `mode` (exposed for tests).
  double FrameErrorRate(const WifiMode& mode, size_t bytes) const;

  static constexpr size_t kControlSizeThreshold = 64;

 private:
  std::vector<Entry> table_;
  size_t reference_bytes_;
};

// Fault-injection wrapper: delegates to an inner model (optional) and, only
// while an interference-burst window is open (extra_loss > 0), adds one
// independent Bernoulli corruption draw per MPDU. Outside a window the
// wrapper consumes NO RNG draws and defers entirely to the inner model, so
// a scenario that installs it but never opens a window is stream-identical
// to one that never installed it — which is why the scenario only installs
// it when the fault plan actually contains bursts.
class GatedLossModel final : public LossModel {
 public:
  explicit GatedLossModel(std::unique_ptr<LossModel> inner)
      : inner_(std::move(inner)) {}

  void set_extra_loss(double p) { extra_loss_ = p; }
  double extra_loss() const { return extra_loss_; }

  bool ShouldCorrupt(const WifiMode& mode, size_t bytes, double distance_m,
                     Random& rng) override {
    bool corrupt = inner_ != nullptr &&
                   inner_->ShouldCorrupt(mode, bytes, distance_m, rng);
    if (extra_loss_ > 0.0) {
      // Drawn even when already corrupt: the draw count per MPDU must not
      // depend on the inner verdict, or a burst would desynchronise the
      // stream for every MPDU after the first inner corruption.
      bool burst_hit = rng.NextBool(extra_loss_);
      corrupt = corrupt || burst_hit;
    }
    return corrupt;
  }

 private:
  std::unique_ptr<LossModel> inner_;
  double extra_loss_ = 0.0;
};

// SNR-driven model. SNR(dB) = tx_power_dbm - PL(d) - noise_floor_dbm with
// log-distance path loss PL(d) = pl0 + 10 * n * log10(d / 1 m). Each mode
// has a logistic "waterfall" reference frame error rate, scaled to the MPDU
// length assuming independent per-bit errors.
class SnrLossModel final : public LossModel {
 public:
  struct Params {
    double tx_power_dbm = 15.0;
    double noise_floor_dbm = -85.0;  // thermal + NF over 40 MHz
    double path_loss_exponent = 3.0;
    double pl0_db = 46.7;  // free-space loss at 1 m, 5.2 GHz
    double waterfall_width_db = 1.6;
    size_t reference_bytes = 1500;
  };

  explicit SnrLossModel(Params params) : params_(params) {}
  SnrLossModel() : SnrLossModel(Params{}) {}

  bool ShouldCorrupt(const WifiMode& mode, size_t bytes, double distance_m,
                     Random& rng) override;

  double SnrDbAt(double distance_m) const;

  // Frame error rate for `bytes` at `mode` under `snr_db` (deterministic;
  // exposed for tests and for the Figure 11 harness).
  double FrameErrorRate(const WifiMode& mode, size_t bytes,
                        double snr_db) const;

  // SNR at which the reference-length FER is 50% for this mode.
  static double ModeSnrMidpointDb(const WifiMode& mode);

 private:
  Params params_;
};

}  // namespace hacksim

#endif  // SRC_PHY80211_LOSS_MODEL_H_
