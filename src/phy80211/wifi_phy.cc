#include "src/phy80211/wifi_phy.h"

#include <cmath>

#include "src/util/logging.h"

namespace hacksim {

namespace {
// Speed of light, metres per nanosecond.
constexpr double kMetersPerNs = 0.299792458;
}  // namespace

double DistanceMeters(Position a, Position b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

WifiPhy::WifiPhy(Scheduler* scheduler, Random rng)
    : scheduler_(scheduler),
      rng_(rng),
      loss_model_(std::make_unique<NoLossModel>()) {}

void WifiPhy::AttachTo(WirelessChannel* channel) {
  CHECK(channel_ == nullptr);
  channel_ = channel;
  channel->Attach(this);
}

bool WifiPhy::Send(Ppdu ppdu) {
  CHECK(channel_ != nullptr);
  if (transmitting_) {
    ++tx_dropped_busy_;
    return false;
  }
  transmitting_ = true;
  // Half duplex: anything currently arriving is lost.
  for (auto& [id, arrival] : arrivals_) {
    arrival.corrupted = true;
  }
  UpdateCca();
  channel_->Transmit(this, std::move(ppdu));
  return true;
}

void WifiPhy::OnOwnTxEnd(const Ppdu& ppdu) {
  CHECK(transmitting_);
  transmitting_ = false;
  UpdateCca();
  if (listener_ != nullptr) {
    listener_->OnTxEnd(ppdu);
  }
}

void WifiPhy::OnArrivalStart(uint64_t arrival_id, const Ppdu& ppdu,
                             SimTime end, double distance_m) {
  Arrival arrival{ppdu, end, distance_m, /*corrupted=*/false};
  if (transmitting_) {
    arrival.corrupted = true;
  }
  // Overlap with any in-flight arrival corrupts both (no capture).
  if (!arrivals_.empty()) {
    arrival.corrupted = true;
    for (auto& [id, other] : arrivals_) {
      other.corrupted = true;
    }
  }
  arrivals_.emplace(arrival_id, std::move(arrival));
  UpdateCca();
}

void WifiPhy::OnArrivalEnd(uint64_t arrival_id) {
  auto it = arrivals_.find(arrival_id);
  CHECK(it != arrivals_.end());
  Arrival arrival = std::move(it->second);
  arrivals_.erase(it);
  UpdateCca();
  if (listener_ == nullptr) {
    return;
  }
  if (arrival.corrupted) {
    listener_->OnRxCorrupted();
    return;
  }
  // Channel-noise loss per MPDU. For A-MPDUs each subframe has its own FCS
  // and fails independently; for single MPDUs there is just one draw.
  std::vector<bool> mpdu_ok(arrival.ppdu.mpdus.size());
  bool any_ok = false;
  for (size_t i = 0; i < arrival.ppdu.mpdus.size(); ++i) {
    size_t bytes = arrival.ppdu.mpdus[i].SizeBytes();
    bool corrupt = loss_model_->ShouldCorrupt(arrival.ppdu.mode, bytes,
                                              arrival.distance_m, rng_);
    mpdu_ok[i] = !corrupt;
    any_ok = any_ok || !corrupt;
  }
  if (!any_ok) {
    listener_->OnRxCorrupted();
    return;
  }
  listener_->OnPpduReceived(arrival.ppdu, mpdu_ok);
}

void WifiPhy::UpdateCca() {
  bool busy = IsCcaBusy();
  if (busy == cca_busy_reported_) {
    return;
  }
  cca_busy_reported_ = busy;
  if (listener_ == nullptr) {
    return;
  }
  if (busy) {
    listener_->OnCcaBusy();
  } else {
    listener_->OnCcaIdle();
  }
}

void WirelessChannel::Attach(WifiPhy* phy) { phys_.push_back(phy); }

void WirelessChannel::Transmit(WifiPhy* sender, Ppdu ppdu) {
  ppdu.ppdu_id = next_ppdu_id_++;
  SimTime duration = ppdu.Duration();
  SimTime now = scheduler_->Now();

  // Airtime ledger.
  ++airtime_.ppdus;
  switch (ppdu.first().type) {
    case WifiFrameType::kData:
      airtime_.data_ns += duration.ns();
      break;
    case WifiFrameType::kAck:
    case WifiFrameType::kBlockAck:
      airtime_.ack_ns += duration.ns();
      break;
    case WifiFrameType::kBlockAckReq:
      airtime_.bar_ns += duration.ns();
      break;
  }
  if (active_transmissions_ > 0) {
    ++airtime_.collisions;
    if (active_transmissions_ == 1) {
      overlap_started_ = now;
    }
  }
  ++active_transmissions_;
  scheduler_->ScheduleAt(now + duration, [this]() {
    --active_transmissions_;
    if (active_transmissions_ == 1) {
      // Overlap period ends when concurrency drops back to one.
      airtime_.collision_ns += (scheduler_->Now() - overlap_started_).ns();
    }
  });
  for (WifiPhy* phy : phys_) {
    if (phy == sender) {
      continue;
    }
    double distance = DistanceMeters(sender->position(), phy->position());
    // Clamp to >= 1 ns so same-slot transmit decisions at two stations are
    // both made against pre-transmission channel state (the slotted
    // collision model).
    auto prop_ns = static_cast<int64_t>(distance / kMetersPerNs);
    SimTime prop = SimTime::Nanos(std::max<int64_t>(prop_ns, 1));
    uint64_t arrival_id = next_arrival_id_++;
    scheduler_->ScheduleAt(now + prop,
                           [phy, arrival_id, ppdu, end = now + prop + duration,
                            distance]() {
                             phy->OnArrivalStart(arrival_id, ppdu, end,
                                                 distance);
                           });
    scheduler_->ScheduleAt(now + prop + duration, [phy, arrival_id]() {
      phy->OnArrivalEnd(arrival_id);
    });
  }
  scheduler_->ScheduleAt(now + duration,
                         [sender, ppdu]() { sender->OnOwnTxEnd(ppdu); });
}

}  // namespace hacksim
