#include "src/phy80211/wifi_phy.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace hacksim {

namespace {
// Speed of light, metres per nanosecond.
constexpr double kMetersPerNs = 0.299792458;

// Propagation delay, clamped to >= 1 ns so same-slot transmit decisions at
// two stations are both made against pre-transmission channel state (the
// slotted collision model).
SimTime PropagationDelay(double distance_m) {
  auto prop_ns = static_cast<int64_t>(distance_m / kMetersPerNs);
  return SimTime::Nanos(std::max<int64_t>(prop_ns, 1));
}
}  // namespace

double DistanceMeters(Position a, Position b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

WifiPhy::WifiPhy(Scheduler* scheduler, Random rng)
    : scheduler_(scheduler),
      rng_(rng),
      loss_model_(std::make_unique<NoLossModel>()) {}

void WifiPhy::AttachTo(WirelessChannel* channel) {
  CHECK(channel_ == nullptr);
  channel_ = channel;
  channel->Attach(this);
}

bool WifiPhy::Send(Ppdu ppdu) {
  CHECK(channel_ != nullptr);
  if (!radio_on_ || transmitting_) {
    ++stats_.tx_dropped_busy;
    return false;
  }
  transmitting_ = true;
  // Half duplex: anything currently arriving is lost.
  for (auto& [id, arrival] : arrivals_) {
    arrival.corrupted = true;
  }
  UpdateCca();
  channel_->Transmit(this, std::move(ppdu));
  return true;
}

void WifiPhy::SetRadioOn(bool on) {
  if (on == radio_on_) {
    return;
  }
  radio_on_ = on;
  if (!on) {
    // Power-down: every in-flight arrival dies with the radio. Their end
    // events are already scheduled; OnArrivalEnd swallows them through the
    // tolerance counter instead of a per-event Cancel.
    dropped_arrival_ends_ += arrivals_.size();
    arrivals_.clear();
    if (transmitting_) {
      ++aborted_tx_ends_;
      transmitting_ = false;
    }
    UpdateCca();
  }
}

void WifiPhy::OnOwnTxEnd(const Ppdu& ppdu) {
  if (!transmitting_) {
    // The transmission was aborted by a radio power-down; the MAC behind
    // this PHY was reset with it, so no listener callback.
    CHECK_GT(aborted_tx_ends_, 0u);
    --aborted_tx_ends_;
    return;
  }
  transmitting_ = false;
  UpdateCca();
  if (listener_ != nullptr) {
    listener_->OnTxEnd(ppdu);
  }
}

void WifiPhy::OnArrivalStart(uint64_t arrival_id, PpduRef ppdu, SimTime end,
                             double distance_m, double rx_power_dbm) {
  if (!radio_on_) {
    // Dead receiver: ignore the frame, but remember that its already
    // scheduled end edge will knock on an empty arrivals_ list.
    ++dropped_arrival_ends_;
    return;
  }
  bool capture = channel_->propagation().limits_range();
  Arrival arrival{std::move(ppdu), end, distance_m,
                  /*rx_power_mw=*/capture ? DbmToMw(rx_power_dbm) : 1.0,
                  /*interference_mw=*/0.0,
                  /*corrupted=*/false};
  if (transmitting_) {
    arrival.corrupted = true;
  }
  if (!arrivals_.empty()) {
    if (capture) {
      // SINR capture: overlap is not an automatic death sentence. Every
      // arrival accumulates the other's power as interference (energy is
      // there whether or not the other frame itself survives); the verdict
      // lands at each arrival's end.
      for (auto& [id, other] : arrivals_) {
        other.interference_mw += arrival.rx_power_mw;
        arrival.interference_mw += other.rx_power_mw;
      }
    } else {
      // Legacy fixed-loss rule: overlap corrupts both, no capture.
      arrival.corrupted = true;
      for (auto& [id, other] : arrivals_) {
        other.corrupted = true;
      }
    }
  }
  arrivals_.emplace_back(arrival_id, std::move(arrival));
  UpdateCca();
}

void WifiPhy::OnArrivalEnd(uint64_t arrival_id) {
  auto it = std::find_if(arrivals_.begin(), arrivals_.end(),
                         [arrival_id](const auto& entry) {
                           return entry.first == arrival_id;
                         });
  if (it == arrivals_.end()) {
    // An arrival cleared by a radio power-down, or one that began while
    // the radio was off: its end edge is expected exactly once.
    CHECK_GT(dropped_arrival_ends_, 0u)
        << "arrival end for an id the PHY never saw";
    --dropped_arrival_ends_;
    return;
  }
  Arrival arrival = std::move(it->second);
  arrivals_.erase(it);
  UpdateCca();
  if (listener_ == nullptr) {
    return;
  }
  if (arrival.corrupted) {
    listener_->OnRxCorrupted();
    return;
  }
  // SINR capture (range-limited propagation only): the frame survives the
  // energy that overlapped it iff its SINR clears the mode's capture
  // threshold. On the fixed-loss channel an overlapped arrival is already
  // corrupted above, so this block is never reached with interference.
  const PropagationModel& prop = channel_->propagation();
  if (prop.limits_range() && arrival.interference_mw > 0.0) {
    double sinr_db =
        MwToDbm(arrival.rx_power_mw) -
        MwToDbm(prop.noise_floor_mw() + arrival.interference_mw);
    if (sinr_db < prop.CaptureSinrDb(arrival.ppdu->mode)) {
      ++stats_.overlap_losses;
      listener_->OnRxCorrupted();
      return;
    }
    ++stats_.captures;
  }
  // Channel-noise loss per MPDU. For A-MPDUs each subframe has its own FCS
  // and fails independently; for single MPDUs there is just one draw.
  const Ppdu& ppdu = *arrival.ppdu;
  std::vector<bool> mpdu_ok(ppdu.mpdus.size());
  bool any_ok = false;
  for (size_t i = 0; i < ppdu.mpdus.size(); ++i) {
    size_t bytes = ppdu.mpdus[i].SizeBytes();
    bool corrupt = loss_model_->ShouldCorrupt(ppdu.mode, bytes,
                                              arrival.distance_m, rng_);
    mpdu_ok[i] = !corrupt;
    any_ok = any_ok || !corrupt;
  }
  if (!any_ok) {
    listener_->OnRxCorrupted();
    return;
  }
  listener_->OnPpduReceived(ppdu, mpdu_ok);
}

void WifiPhy::UpdateCca() {
  bool busy = IsCcaBusy();
  if (busy == cca_busy_reported_) {
    return;
  }
  cca_busy_reported_ = busy;
  if (listener_ == nullptr) {
    return;
  }
  if (busy) {
    listener_->OnCcaBusy();
  } else {
    listener_->OnCcaIdle();
  }
}

void WirelessChannel::Attach(WifiPhy* phy) {
  CHECK(std::find(phys_.begin(), phys_.end(), phy) == phys_.end())
      << "PHY attached twice: every PPDU would be delivered to it twice";
  CHECK(!propagation_->limits_range() || phy->has_position())
      << "range-limited propagation needs an explicit position on every "
         "PHY: an unpositioned node would silently co-locate with the "
         "origin (set_position before Attach, or keep the fixed-loss model)";
  phys_.push_back(phy);
}

void WirelessChannel::set_propagation(std::unique_ptr<PropagationModel> model) {
  CHECK(model != nullptr);
  if (model->limits_range()) {
    for (WifiPhy* phy : phys_) {
      CHECK(phy->has_position())
          << "range-limited propagation needs an explicit position on every "
             "attached PHY: an unpositioned node would silently co-locate "
             "with the origin";
    }
  }
  propagation_ = std::move(model);
}

void WirelessChannel::Transmit(WifiPhy* sender, Ppdu ppdu) {
  ppdu.ppdu_id = next_ppdu_id_++;
  SimTime duration = ppdu.Duration();
  SimTime now = scheduler_->Now();

  // Airtime ledger.
  ++airtime_.ppdus;
  switch (ppdu.first().type) {
    case WifiFrameType::kData:
      airtime_.data_ns += duration.ns();
      break;
    case WifiFrameType::kAck:
    case WifiFrameType::kBlockAck:
      airtime_.ack_ns += duration.ns();
      break;
    case WifiFrameType::kBlockAckReq:
      airtime_.bar_ns += duration.ns();
      break;
    case WifiFrameType::kRts:
    case WifiFrameType::kCts:
    case WifiFrameType::kCfEnd:
      airtime_.rts_cts_ns += duration.ns();
      break;
  }
  if (active_transmissions_ > 0) {
    ++airtime_.collisions;
    if (active_transmissions_ == 1) {
      overlap_started_ = now;
    }
  }
  ++active_transmissions_;
  scheduler_->ScheduleAt(
      now + duration,
      [this]() {
        --active_transmissions_;
        if (active_transmissions_ == 1) {
          // Overlap period ends when concurrency drops back to one.
          airtime_.collision_ns += (scheduler_->Now() - overlap_started_).ns();
        }
      },
      EventClass::kChannel);

  // One shared copy of the payload for all receivers and the sender's
  // tx-end callback.
  PpduRef shared = std::make_shared<const Ppdu>(std::move(ppdu));
  if (mode_ == ChannelDeliveryMode::kBatched) {
    TransmitBatched(sender, shared, now, duration);
  } else {
    TransmitPerPhy(sender, shared, now, duration);
  }
  scheduler_->ScheduleAt(
      now + duration, [sender, shared]() { sender->OnOwnTxEnd(*shared); },
      EventClass::kChannel);
}

// Reference semantics: two events per attached PHY, scheduled in attach
// order. The batched path below must stay observably identical to this.
void WirelessChannel::TransmitPerPhy(WifiPhy* sender, PpduRef ppdu,
                                     SimTime now, SimTime duration) {
  bool ranged = propagation_->limits_range();
  for (WifiPhy* phy : phys_) {
    if (phy == sender) {
      continue;
    }
    double distance = DistanceMeters(sender->position(), phy->position());
    double rx_dbm = ranged ? propagation_->RxPowerDbm(distance) : 0.0;
    if (ranged && !propagation_->Detectable(rx_dbm)) {
      // Below the energy-detection threshold: the receiver sees nothing at
      // all — no decode, no CCA energy. This is the hidden-terminal
      // condition, and it also means no scheduler events for the pair.
      ++airtime_.out_of_range;
      continue;
    }
    SimTime prop = PropagationDelay(distance);
    uint64_t arrival_id = next_arrival_id_++;
    scheduler_->ScheduleAt(
        now + prop,
        [phy, arrival_id, ppdu, end = now + prop + duration, distance,
         rx_dbm]() {
          phy->OnArrivalStart(arrival_id, ppdu, end, distance, rx_dbm);
        },
        EventClass::kChannel);
    scheduler_->ScheduleAt(
        now + prop + duration,
        [phy, arrival_id]() { phy->OnArrivalEnd(arrival_id); },
        EventClass::kChannel);
  }
}

// Batched delivery: group every arrival edge (start or end) by its exact
// nanosecond and schedule one event per group, all up-front at transmit
// time. Three properties make this bit-identical to TransmitPerPhy:
//   1. Edge times are computed with the same per-pair formula, so nothing
//      moves in time.
//   2. Within a group, edges run in attach order — the order the per-PHY
//      events would have been popped (per-PHY scheduling assigns seqs in
//      attach order, and a PHY's start/end never share a nanosecond because
//      propagation delays are far shorter than frame durations).
//   3. Groups are scheduled now, between the airtime event and the sender's
//      tx-end event, so same-nanosecond FIFO ordering against *other* PPDUs'
//      events (and the sender's own) is unchanged.
void WirelessChannel::TransmitBatched(WifiPhy* sender, PpduRef ppdu,
                                      SimTime now, SimTime duration) {
  bool ranged = propagation_->limits_range();
  std::vector<DeliveryEdge> edges;
  edges.reserve(2 * phys_.size());
  for (size_t idx = 0; idx < phys_.size(); ++idx) {
    WifiPhy* phy = phys_[idx];
    if (phy == sender) {
      continue;
    }
    double distance = DistanceMeters(sender->position(), phy->position());
    double rx_dbm = ranged ? propagation_->RxPowerDbm(distance) : 0.0;
    if (ranged && !propagation_->Detectable(rx_dbm)) {
      // Same pruning rule as TransmitPerPhy (the equivalence tests cover
      // the ranged paths too): the receiver sees nothing.
      ++airtime_.out_of_range;
      continue;
    }
    SimTime prop = PropagationDelay(distance);
    SimTime start = now + prop;
    SimTime end = start + duration;
    uint64_t arrival_id = next_arrival_id_++;
    edges.push_back(DeliveryEdge{start, idx, phy, arrival_id, end, distance,
                                 rx_dbm, /*is_start=*/true});
    edges.push_back(DeliveryEdge{end, idx, phy, arrival_id, end, distance,
                                 rx_dbm, /*is_start=*/false});
  }
  std::sort(edges.begin(), edges.end(),
            [](const DeliveryEdge& a, const DeliveryEdge& b) {
              if (a.at != b.at) {
                return a.at < b.at;
              }
              return a.attach_idx < b.attach_idx;
            });
  for (size_t lo = 0; lo < edges.size();) {
    size_t hi = lo + 1;
    while (hi < edges.size() && edges[hi].at == edges[lo].at) {
      ++hi;
    }
    std::vector<DeliveryEdge> group(edges.begin() + lo, edges.begin() + hi);
    scheduler_->ScheduleAt(
        edges[lo].at,
        [ppdu, group = std::move(group)]() {
          for (const DeliveryEdge& e : group) {
            if (e.is_start) {
              e.phy->OnArrivalStart(e.arrival_id, ppdu, e.end, e.distance_m,
                                    e.rx_power_dbm);
            } else {
              e.phy->OnArrivalEnd(e.arrival_id);
            }
          }
        },
        EventClass::kChannel);
    lo = hi;
  }
}

}  // namespace hacksim
