#include "src/phy80211/propagation.h"

#include <algorithm>
#include <cmath>

#include "src/phy80211/loss_model.h"

namespace hacksim {

double DbmToMw(double dbm) { return std::pow(10.0, dbm / 10.0); }

double MwToDbm(double mw) { return 10.0 * std::log10(mw); }

double PathLossDb(double distance_m, double pl0_db,
                  double path_loss_exponent) {
  double d = std::max(distance_m, 1.0);
  return pl0_db + 10.0 * path_loss_exponent * std::log10(d);
}

LogDistancePropagation::LogDistancePropagation(Params params)
    : params_(params), noise_floor_mw_(DbmToMw(params.noise_floor_dbm)) {}

double LogDistancePropagation::RxPowerDbm(double distance_m) const {
  return params_.tx_power_dbm -
         PathLossDb(distance_m, params_.pl0_db, params_.path_loss_exponent);
}

double LogDistancePropagation::CaptureSinrDb(const WifiMode& mode) const {
  // Reuse the loss model's per-mode waterfall midpoints: a frame whose SINR
  // sits `capture_margin_db` above its 50%-FER point decodes through the
  // interference; anything below dies with it.
  return SnrLossModel::ModeSnrMidpointDb(mode) + params_.capture_margin_db;
}

double LogDistancePropagation::MaxDetectableRangeM() const {
  // Invert RxPowerDbm(d) == ed_threshold_dbm.
  double budget_db =
      params_.tx_power_dbm - params_.pl0_db - params_.ed_threshold_dbm;
  return std::pow(10.0, budget_db / (10.0 * params_.path_loss_exponent));
}

}  // namespace hacksim
