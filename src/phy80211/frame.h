// 802.11 MAC frame and PPDU models with byte-exact sizes.
//
// Sizes (all + FCS 4 where noted):
//   QoS Data MPDU : 26 B header + 8 B LLC/SNAP + IP datagram + 4 B FCS
//   ACK           : 14 B (+ appended HACK payload)
//   Block ACK     : 32 B compressed-bitmap variant (+ appended HACK payload)
//   Block ACK Req : 24 B
//   RTS           : 20 B
//   CTS           : 14 B
//   CF-End        : 20 B
// A-MPDU subframes add a 4 B delimiter and pad the MPDU to a 4 B boundary;
// with 1460 B TCP payloads this yields 1556 B per subframe and the paper's
// 42-MPDU maximum under the 64 KB A-MPDU bound.
//
// The HACK SYNC bit (paper §3.4, Figure 8) lives in an 802.11 reserved
// header bit; MORE DATA is the standard power-management bit reused as the
// paper describes (§3.2).
#ifndef SRC_PHY80211_FRAME_H_
#define SRC_PHY80211_FRAME_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/net/address.h"
#include "src/packet/packet.h"
#include "src/phy80211/wifi_mode.h"
#include "src/sim/sim_time.h"

namespace hacksim {

enum class WifiFrameType {
  kData,
  kAck,
  kBlockAck,
  kBlockAckReq,
  kRts,
  kCts,
  // Contention-free-end style NAV truncation: broadcast by the RTS
  // originator when its reserved exchange dies early (CTS timeout), so
  // every overhearer releases the remainder of the reservation at once
  // instead of probing for dead air.
  kCfEnd,
};

// Compressed-bitmap Block ACK content: 64 sequence numbers starting at
// start_seq (mod 4096), bit i set = MPDU (start_seq + i) received.
struct BlockAckInfo {
  uint16_t start_seq = 0;
  uint64_t bitmap = 0;
  friend bool operator==(const BlockAckInfo&, const BlockAckInfo&) = default;
};

struct WifiFrame {
  WifiFrameType type = WifiFrameType::kData;
  MacAddress ta;  // transmitter
  MacAddress ra;  // receiver
  uint16_t seq = 0;
  bool more_data = false;
  bool sync = false;
  // Valid when `sync` is set on a data MPDU: the originator's window start
  // at build time. The recipient flushes its reorder window to it — the
  // in-sim stand-in for the BAR flush the standard mandates after an
  // originator discards MPDUs. Carried on every MPDU of the batch so the
  // flush target survives any subset of subframes decoding (inferring it
  // from the first *decoded* MPDU would overshoot when the lead subframe
  // is corrupted, silently acking data the receiver never delivered).
  uint16_t sync_start_seq = 0;
  bool retry = false;
  // NAV reservation carried in the Duration field: time after this frame's
  // end that the exchange still needs (SIFS + response).
  SimTime duration_field;
  std::optional<Packet> packet;      // kData
  std::optional<BlockAckInfo> ba;    // kBlockAck
  uint16_t bar_start_seq = 0;        // kBlockAckReq
  // ROHC-compressed TCP ACK envelope appended to kAck / kBlockAck frames.
  std::vector<uint8_t> hack_payload;

  // MPDU size in bytes including FCS and any HACK payload.
  size_t SizeBytes() const;
};

inline constexpr size_t kQosDataHeaderBytes = 26;
inline constexpr size_t kLlcSnapBytes = 8;
inline constexpr size_t kFcsBytes = 4;
inline constexpr size_t kAckBytes = 14;
inline constexpr size_t kBlockAckBytes = 32;
inline constexpr size_t kBlockAckReqBytes = 24;
inline constexpr size_t kRtsBytes = 20;
inline constexpr size_t kCtsBytes = 14;
inline constexpr size_t kCfEndBytes = 20;
inline constexpr size_t kAmpduDelimiterBytes = 4;
inline constexpr size_t kMaxAmpduBytes = 65535;
inline constexpr size_t kMaxAmpduMpdus = 64;
inline constexpr uint16_t kSeqModulo = 4096;

// One PHY transmission: a single MPDU or an A-MPDU of data MPDUs.
struct Ppdu {
  std::vector<WifiFrame> mpdus;
  bool aggregated = false;
  WifiMode mode;
  uint64_t ppdu_id = 0;  // assigned by the channel on transmit

  // PSDU size: the lone MPDU, or the sum of delimiter+padded subframes.
  size_t PsduBytes() const;
  SimTime Duration() const;

  const WifiFrame& first() const { return mpdus.front(); }
  MacAddress transmitter() const { return mpdus.front().ta; }
  MacAddress receiver() const { return mpdus.front().ra; }
};

// 12-bit sequence arithmetic helpers.
inline uint16_t SeqAdd(uint16_t seq, int delta) {
  return static_cast<uint16_t>((seq + delta + kSeqModulo) % kSeqModulo);
}
// Distance from `from` forward to `to` in sequence space, in [0, 4095].
inline uint16_t SeqDistance(uint16_t from, uint16_t to) {
  return static_cast<uint16_t>((to - from + kSeqModulo) % kSeqModulo);
}
// True if `seq` is within [start, start+window) mod 4096.
inline bool SeqInWindow(uint16_t start, uint16_t seq, uint16_t window) {
  return SeqDistance(start, seq) < window;
}

}  // namespace hacksim

#endif  // SRC_PHY80211_FRAME_H_
