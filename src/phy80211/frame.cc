#include "src/phy80211/frame.h"

#include "src/util/logging.h"

namespace hacksim {

size_t WifiFrame::SizeBytes() const {
  switch (type) {
    case WifiFrameType::kData:
      CHECK(packet.has_value());
      return kQosDataHeaderBytes + kLlcSnapBytes + packet->SizeBytes() +
             kFcsBytes;
    case WifiFrameType::kAck:
      return kAckBytes + hack_payload.size();
    case WifiFrameType::kBlockAck:
      return kBlockAckBytes + hack_payload.size();
    case WifiFrameType::kBlockAckReq:
      return kBlockAckReqBytes;
    case WifiFrameType::kRts:
      return kRtsBytes;
    case WifiFrameType::kCts:
      return kCtsBytes;
    case WifiFrameType::kCfEnd:
      return kCfEndBytes;
  }
  return 0;
}

size_t Ppdu::PsduBytes() const {
  CHECK(!mpdus.empty());
  if (!aggregated) {
    CHECK_EQ(mpdus.size(), 1u);
    return mpdus.front().SizeBytes();
  }
  size_t total = 0;
  for (const WifiFrame& mpdu : mpdus) {
    size_t padded = (mpdu.SizeBytes() + 3) & ~size_t{3};
    total += kAmpduDelimiterBytes + padded;
  }
  return total;
}

SimTime Ppdu::Duration() const { return FrameDuration(mode, PsduBytes()); }

}  // namespace hacksim
