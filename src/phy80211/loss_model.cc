#include "src/phy80211/loss_model.h"

#include <algorithm>
#include <cmath>

#include "src/phy80211/propagation.h"
#include "src/util/logging.h"

namespace hacksim {

double PerRateLossModel::FrameErrorRate(const WifiMode& mode,
                                        size_t bytes) const {
  if (bytes <= kControlSizeThreshold) {
    return 0.0;
  }
  for (const Entry& e : table_) {
    if (e.rate_kbps == mode.rate_kbps) {
      double ok_ref = 1.0 - std::clamp(e.per, 0.0, 1.0);
      double exponent = static_cast<double>(bytes) /
                        static_cast<double>(reference_bytes_);
      return std::clamp(1.0 - std::pow(ok_ref, exponent), 0.0, 1.0);
    }
  }
  return 0.0;
}

bool PerRateLossModel::ShouldCorrupt(const WifiMode& mode, size_t bytes,
                                     double /*distance_m*/, Random& rng) {
  double fer = FrameErrorRate(mode, bytes);
  return fer > 0.0 && rng.NextBool(fer);
}

double SnrLossModel::ModeSnrMidpointDb(const WifiMode& mode) {
  // Approximate 50%-FER SNR (1500 B frames) for OFDM rates; values follow
  // the usual BCC waterfall spacing: each constellation/coding step costs
  // ~2.5-4 dB. Legacy 20 MHz and HT 40 MHz differ by the wider channel's
  // ~3 dB noise penalty, which the noise floor already covers, so a single
  // table per bits-per-(20 MHz-equivalent)-symbol suffices for our purposes.
  struct Entry {
    uint32_t kbps;
    double snr_db;
  };
  // Legacy OFDM (20 MHz).
  static constexpr Entry kLegacy[] = {
      {6000, 3.0},  {9000, 4.5},  {12000, 6.0},  {18000, 8.5},
      {24000, 11.5}, {36000, 15.0}, {48000, 19.0}, {54000, 21.0}};
  // HT 40 MHz short-GI, per stream (MCS0-7).
  static constexpr Entry kHt40[] = {
      {15000, 5.0},  {30000, 8.0},  {45000, 10.5}, {60000, 13.5},
      {90000, 17.5}, {120000, 21.5}, {135000, 23.5}, {150000, 25.5}};
  if (mode.format == PhyFormat::kLegacyOfdm) {
    for (const Entry& e : kLegacy) {
      if (e.kbps == mode.rate_kbps) {
        return e.snr_db;
      }
    }
  } else {
    uint32_t per_stream = mode.rate_kbps / mode.spatial_streams;
    for (const Entry& e : kHt40) {
      if (e.kbps == per_stream) {
        return e.snr_db;
      }
    }
  }
  LOG(Fatal) << "no SNR midpoint for mode " << mode.Name();
  return 0.0;
}

double SnrLossModel::SnrDbAt(double distance_m) const {
  return params_.tx_power_dbm -
         PathLossDb(distance_m, params_.pl0_db, params_.path_loss_exponent) -
         params_.noise_floor_dbm;
}

double SnrLossModel::FrameErrorRate(const WifiMode& mode, size_t bytes,
                                    double snr_db) const {
  double mid = ModeSnrMidpointDb(mode);
  // Logistic waterfall for the reference length.
  double x = (snr_db - mid) / params_.waterfall_width_db;
  double fer_ref = 1.0 / (1.0 + std::exp(x));
  // Length scaling: success probability exponentiates with relative length.
  double ok_ref = 1.0 - fer_ref;
  double exponent =
      static_cast<double>(bytes) / static_cast<double>(params_.reference_bytes);
  double ok = std::pow(ok_ref, exponent);
  return std::clamp(1.0 - ok, 0.0, 1.0);
}

bool SnrLossModel::ShouldCorrupt(const WifiMode& mode, size_t bytes,
                                 double distance_m, Random& rng) {
  double fer = FrameErrorRate(mode, bytes, SnrDbAt(distance_m));
  return rng.NextBool(fer);
}

}  // namespace hacksim
