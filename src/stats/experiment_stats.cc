#include "src/stats/experiment_stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace hacksim {

void GoodputTracker::OnBytesDelivered(SimTime now, uint64_t bytes) {
  DCHECK(now >= last_) << "samples must arrive in time order";
  total_bytes_ += bytes;
  if (first_ == SimTime::Max()) {
    first_ = now;
  }
  last_ = now;
  samples_.push_back(Sample{now, total_bytes_});
}

double GoodputTracker::GoodputMbps(SimTime from, SimTime to) const {
  CHECK_LT(from, to);
  auto cumulative_at = [this](SimTime t) -> uint64_t {
    // Last sample with sample.t <= t.
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](SimTime value, const Sample& s) { return value < s.t; });
    if (it == samples_.begin()) {
      return 0;
    }
    return std::prev(it)->cumulative;
  };
  uint64_t bytes = cumulative_at(to) - cumulative_at(from);
  double seconds = (to - from).ToSecondsF();
  return static_cast<double>(bytes) * 8.0 / seconds / 1e6;
}

double GoodputTracker::TotalGoodputMbps(SimTime end) const {
  if (end.IsZero()) {
    return 0.0;
  }
  return static_cast<double>(total_bytes_) * 8.0 / end.ToSecondsF() / 1e6;
}

void LatencyRecorder::Record(uint8_t ac, SimTime delay) {
  per_ac_[ac].delays_ns.push_back(delay.ns());
}

void LatencyRecorder::RecordJitter(uint8_t ac, SimTime delta) {
  per_ac_[ac].jitter_sum_ns += delta.ns();
  ++per_ac_[ac].jitter_count;
}

LatencySummary LatencyRecorder::Summarize(uint8_t ac) const {
  const AcSamples& samples = per_ac_[ac];
  LatencySummary out;
  out.count = samples.delays_ns.size();
  if (out.count == 0) {
    return out;
  }
  std::vector<int64_t> sorted = samples.delays_ns;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank percentiles: element at ceil(q * n) - 1.
  auto quantile = [&](double q) {
    size_t rank =
        static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size())));
    rank = std::min(std::max<size_t>(rank, 1), sorted.size()) - 1;
    return static_cast<double>(sorted[rank]) / 1e6;
  };
  out.p50_ms = quantile(0.50);
  out.p99_ms = quantile(0.99);
  int64_t sum = 0;
  for (int64_t d : sorted) {
    sum += d;
  }
  out.mean_ms =
      static_cast<double>(sum) / static_cast<double>(sorted.size()) / 1e6;
  if (samples.jitter_count > 0) {
    out.jitter_ms = static_cast<double>(samples.jitter_sum_ns) /
                    static_cast<double>(samples.jitter_count) / 1e6;
  }
  return out;
}

}  // namespace hacksim
