#include "src/stats/experiment_stats.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hacksim {

void GoodputTracker::OnBytesDelivered(SimTime now, uint64_t bytes) {
  DCHECK(now >= last_) << "samples must arrive in time order";
  total_bytes_ += bytes;
  if (first_ == SimTime::Max()) {
    first_ = now;
  }
  last_ = now;
  samples_.push_back(Sample{now, total_bytes_});
}

double GoodputTracker::GoodputMbps(SimTime from, SimTime to) const {
  CHECK_LT(from, to);
  auto cumulative_at = [this](SimTime t) -> uint64_t {
    // Last sample with sample.t <= t.
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](SimTime value, const Sample& s) { return value < s.t; });
    if (it == samples_.begin()) {
      return 0;
    }
    return std::prev(it)->cumulative;
  };
  uint64_t bytes = cumulative_at(to) - cumulative_at(from);
  double seconds = (to - from).ToSecondsF();
  return static_cast<double>(bytes) * 8.0 / seconds / 1e6;
}

double GoodputTracker::TotalGoodputMbps(SimTime end) const {
  if (end.IsZero()) {
    return 0.0;
  }
  return static_cast<double>(total_bytes_) * 8.0 / end.ToSecondsF() / 1e6;
}

}  // namespace hacksim
