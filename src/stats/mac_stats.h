// Counters a WifiMac exposes. These feed the reproduction of the paper's
// Table 1 (retry fractions), Table 3 (TCP-ACK time overhead breakdown) and
// footnote 7 (fraction of HACK payloads fitting within AIFS).
//
// Time attribution follows the paper's accounting (validated against the
// published per-ACK figures):
//   * tcp_ack_payload_airtime_ns  — IP-datagram bytes of vanilla TCP ACKs at
//     the data rate ("TCP ACK" column: 52 B @ 54 Mbps = 7.7 us/ACK).
//   * rohc_payload_airtime_ns     — compressed bytes at the control rate
//     ("ROHC" column: ~4 B @ 24 Mbps = 1.4 us/ACK).
//   * tcp_ack_channel_overhead_ns — acquisition wait + preamble + MAC header
//     time for frames carrying vanilla TCP ACKs ("Channel" column).
//   * tcp_ack_ll_ack_overhead_ns  — SIFS + LL ACK duration + any extra
//     response delay for LL ACKs elicited by vanilla TCP ACK frames
//     ("LL ACK overhead" column).
#ifndef SRC_STATS_MAC_STATS_H_
#define SRC_STATS_MAC_STATS_H_

#include <array>
#include <cstdint>

namespace hacksim {

// Upper bound on rate-table size (the 802.11n extended table has 11 modes);
// data_ppdus_by_mode_index is indexed by the position of the PPDU's mode in
// the MAC's rate table.
inline constexpr size_t kMaxRateTableSize = 12;

// --- 802.11e access-category vocabulary --------------------------------------
// Shared by the MAC (per-AC engines/queues), the apps layer (per-AC latency
// recording at UDP sinks) and the bench JSON columns. Lower index = higher
// priority; the internal-contention rule in WifiMac resolves same-instant
// grants toward the lowest index.
inline constexpr uint8_t kAcVo = 0;  // voice
inline constexpr uint8_t kAcVi = 1;  // video
inline constexpr uint8_t kAcBe = 2;  // best effort (the legacy DCF row)
inline constexpr uint8_t kAcBk = 3;  // background
inline constexpr size_t kNumAcs = 4;
inline constexpr const char* kAcNames[kNumAcs] = {"VO", "VI", "BE", "BK"};

// 802.1d user-priority mapping from the IP precedence bits (tos >> 5):
// UP 6-7 -> VO, UP 4-5 -> VI, UP 1-2 -> BK, everything else (including the
// default tos 0) -> BE. TCP ACKs carry tos 0, so HACK's vanilla-ACK pull
// from the BE queue stays consistent under EDCA.
inline constexpr uint8_t AcForTos(uint8_t tos) {
  switch (tos >> 5) {
    case 6:
    case 7:
      return kAcVo;
    case 4:
    case 5:
      return kAcVi;
    case 1:
    case 2:
      return kAcBk;
    default:
      return kAcBe;
  }
}

struct MacStats {
  // --- data MPDU outcomes (originator side) --------------------------------
  uint64_t mpdus_delivered_first_try = 0;
  uint64_t mpdus_delivered_retried = 0;
  uint64_t mpdus_dropped_retry_limit = 0;
  uint64_t mpdu_tx_attempts = 0;
  uint64_t ppdus_sent = 0;
  uint64_t response_timeouts = 0;
  uint64_t bars_sent = 0;
  uint64_t ba_agreement_give_ups = 0;
  uint64_t batches_sent_with_sync = 0;
  uint64_t batches_sent_more_data = 0;   // MORE DATA bit set
  uint64_t batches_sent_final = 0;       // MORE DATA bit clear
  uint64_t tx_dropped_phy_busy = 0;
  uint64_t queue_drops = 0;  // per-destination queue overflow (drop-tail)

  // --- RTS/CTS virtual carrier sense ----------------------------------------
  uint64_t rts_sent = 0;           // RTS transmissions (originator)
  uint64_t cts_sent = 0;           // CTS responses (recipient)
  uint64_t cts_timeouts = 0;       // RTS that elicited no CTS in time
  uint64_t rts_bypasses = 0;       // exchanges sent unprotected after the
                                   // RTS retry limit (forward progress)
  uint64_t rts_ignored_busy = 0;   // RTS addressed to us but suppressed by
                                   // virtual carrier sense / own exchange
  uint64_t nav_resets = 0;         // RTS-set NAV reclaimed after the probe
                                   // window passed with no PHY activity
                                   // (802.11's NAV-reset rule)
  uint64_t cf_ends_sent = 0;       // CF-End truncations broadcast by the
                                   // originator after a dead reservation
  uint64_t cf_end_truncations = 0; // NAV released early by a received CF-End

  // --- rate adaptation -------------------------------------------------------
  // Data-PPDU count per rate-table index (the adaptation histogram; with a
  // fixed mode everything lands in that mode's index).
  std::array<uint64_t, kMaxRateTableSize> data_ppdus_by_mode_index{};
  uint64_t rate_up_moves = 0;
  uint64_t rate_down_moves = 0;

  // --- vanilla TCP ACK accounting (Table 3) ---------------------------------
  uint64_t tcp_ack_frames_sent = 0;      // MPDUs that are pure TCP ACKs
  uint64_t tcp_ack_bytes_sent = 0;       // their IP-datagram bytes
  int64_t tcp_ack_payload_airtime_ns = 0;
  int64_t tcp_ack_channel_overhead_ns = 0;
  int64_t tcp_ack_ll_ack_overhead_ns = 0;

  // --- HACK payload accounting ----------------------------------------------
  uint64_t hack_payloads_sent = 0;
  uint64_t hack_payload_bytes_sent = 0;
  // Compressed-ACK records across all payloads (the envelope count byte,
  // summed). payloads_sent vs records is the batching ratio the ACK-
  // aggregation policy moves: more records per payload, fewer payloads.
  uint64_t hack_payload_records = 0;
  int64_t rohc_payload_airtime_ns = 0;
  uint64_t hack_payloads_fit_in_aifs = 0;

  // --- robustness / fault handling ------------------------------------------
  uint64_t dead_peer_flushes = 0;     // bounded give-up declared a peer dead
  uint64_t dead_peer_flushed_packets = 0;  // queued packets dropped by those
  uint64_t disassociation_flushes = 0;     // packets dropped by Disassociate
  uint64_t radio_off_drops = 0;       // enqueues refused while the radio is off
  uint64_t rx_window_resyncs = 0;     // reorder window hard-reset after a
                                      // peer's MAC restarted mid-stream

  // --- EDCA (only incremented while edca_enabled; all-zero in legacy mode,
  // which is what keeps the MacStats equality pins of PR 2/5/6 intact) ------
  uint64_t virtual_collisions = 0;  // internal-contention losses (CW doubled,
                                    // backoff redrawn, request kept pending)
  std::array<uint64_t, kNumAcs> ac_ppdus_sent{};  // data PPDUs per AC

  // --- recipient side --------------------------------------------------------
  uint64_t data_mpdus_received = 0;
  uint64_t duplicate_mpdus_discarded = 0;
  uint64_t rx_corrupted_events = 0;
  uint64_t acks_sent = 0;
  uint64_t block_acks_sent = 0;

  // Exact comparison backs the batched-delivery equivalence tests.
  friend bool operator==(const MacStats&, const MacStats&) = default;

  double FirstTryFraction() const {
    uint64_t delivered = mpdus_delivered_first_try + mpdus_delivered_retried;
    if (delivered == 0) {
      return 1.0;
    }
    return static_cast<double>(mpdus_delivered_first_try) /
           static_cast<double>(delivered);
  }
};

}  // namespace hacksim

#endif  // SRC_STATS_MAC_STATS_H_
