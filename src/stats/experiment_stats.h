// Aggregated per-run statistics: goodput time series and the counters that
// back every table in the paper's evaluation. Collected by the scenario
// harness from app sinks and MAC stats.
#ifndef SRC_STATS_EXPERIMENT_STATS_H_
#define SRC_STATS_EXPERIMENT_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/sim/sim_time.h"
#include "src/stats/mac_stats.h"
#include "src/util/stats.h"

namespace hacksim {

// Records bytes delivered over time for one flow and evaluates goodput over
// arbitrary windows (the paper uses steady-state windows for Figure 10).
class GoodputTracker {
 public:
  void OnBytesDelivered(SimTime now, uint64_t bytes);

  uint64_t total_bytes() const { return total_bytes_; }
  SimTime first_delivery() const { return first_; }
  SimTime last_delivery() const { return last_; }

  // Goodput in Mbps over [from, to].
  double GoodputMbps(SimTime from, SimTime to) const;
  // Goodput over the whole run [0, end].
  double TotalGoodputMbps(SimTime end) const;

 private:
  struct Sample {
    SimTime t;
    uint64_t cumulative;
  };
  std::vector<Sample> samples_;
  uint64_t total_bytes_ = 0;
  SimTime first_ = SimTime::Max();
  SimTime last_;
};

// Per-AC enqueue→delivery latency digest for one run. Percentiles are over
// every recorded sample; jitter is the mean absolute difference between
// consecutive same-sink delays (RFC 3550-style, without the EWMA). All-zero
// when nothing was recorded for the AC, so ScenarioResult comparisons of
// legacy runs (whose sinks see only BE, or no UDP at all) stay exact.
struct LatencySummary {
  uint64_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double jitter_ms = 0.0;

  friend bool operator==(const LatencySummary&, const LatencySummary&) =
      default;
};

// Collects per-packet delays bucketed by access category. One recorder per
// scenario run; every UDP sink feeds it (delays via Record, consecutive
// same-sink deltas via RecordJitter). Deterministic: sample order is event
// order, and Summarize sorts a copy.
class LatencyRecorder {
 public:
  void Record(uint8_t ac, SimTime delay);
  void RecordJitter(uint8_t ac, SimTime delta);
  LatencySummary Summarize(uint8_t ac) const;

 private:
  struct AcSamples {
    std::vector<int64_t> delays_ns;
    int64_t jitter_sum_ns = 0;
    uint64_t jitter_count = 0;
  };
  std::array<AcSamples, kNumAcs> per_ac_;
};

// ROHC/HACK counters for Table 2 and the §3.4 robustness claims.
struct HackStats {
  uint64_t vanilla_acks_sent = 0;        // TCP ACK packets sent natively
  uint64_t vanilla_ack_bytes = 0;
  uint64_t compressed_acks_sent = 0;     // compressed ACKs placed on LL ACKs
  uint64_t compressed_ack_bytes = 0;     // including re-sent retained copies
  uint64_t unique_compressed_acks = 0;   // distinct TCP ACKs compressed
  uint64_t unique_compressed_bytes = 0;
  uint64_t acks_recovered_at_ap = 0;     // decompressed + forwarded
  uint64_t duplicates_discarded_at_ap = 0;
  uint64_t crc_failures_at_ap = 0;       // must stay 0 (§4.3)
  uint64_t retained_resends = 0;         // payloads re-sent for reliability
  uint64_t flushed_to_vanilla = 0;       // staged ACKs demoted to vanilla
  uint64_t withdrawn_vanilla_won = 0;    // opportunistic: vanilla copy won
  uint64_t stale_context_drops = 0;
  uint64_t ready_race_fallbacks = 0;     // Fig 3-4 NIC-not-ready events

  // --- ACK-aggregation policy (HackAckPolicy; all-zero when the policy is
  // off, which keeps the window=0 equality pins exact) ----------------------
  uint64_t ack_batches = 0;         // release events (one batch per release)
  uint64_t batched_acks = 0;        // ACKs that passed through the held set
  uint64_t batch_flush_window = 0;  // releases: coalesced window timer fired
  uint64_t batch_flush_count = 0;   // releases: count threshold reached
  uint64_t batch_flush_edge = 0;    // releases: peer's MORE DATA bit fell

  // Exact comparison backs the batched-delivery equivalence tests.
  friend bool operator==(const HackStats&, const HackStats&) = default;

  double AcksPerFlush() const {
    if (ack_batches == 0) {
      return 0.0;
    }
    return static_cast<double>(batched_acks) /
           static_cast<double>(ack_batches);
  }

  double CompressionRatio() const {
    if (unique_compressed_acks == 0 || unique_compressed_bytes == 0) {
      return 1.0;
    }
    // Bytes a vanilla ACK would have used / compressed bytes.
    return static_cast<double>(vanilla_ack_bytes_equivalent()) /
           static_cast<double>(unique_compressed_bytes);
  }
  uint64_t vanilla_ack_bytes_equivalent() const {
    // 52 B: IPv4 (20) + TCP (20) + timestamps option (12).
    return unique_compressed_acks * 52;
  }
};

}  // namespace hacksim

#endif  // SRC_STATS_EXPERIMENT_STATS_H_
