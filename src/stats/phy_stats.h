// Counters a WifiPhy exposes. The capture/overlap pair quantifies the
// hidden-terminal behaviour of a geometric cell: `overlap_losses` are
// receptions destroyed by concurrent energy at this receiver (with a
// range-limited channel these are predominantly *hidden* collisions — the
// transmitters could not hear each other), and `captures` are receptions
// that decoded through that energy because their SINR cleared the mode's
// capture threshold. Both stay zero on the legacy fixed-loss channel, whose
// all-die overlap rule never consults SINR.
#ifndef SRC_STATS_PHY_STATS_H_
#define SRC_STATS_PHY_STATS_H_

#include <cstdint>

namespace hacksim {

struct PhyStats {
  uint64_t tx_dropped_busy = 0;  // Send() while already transmitting
  uint64_t captures = 0;         // decoded despite overlapping energy
  uint64_t overlap_losses = 0;   // receptions killed by overlapping energy
                                 // (SINR below the capture threshold)

  // Exact comparison backs the batched-delivery equivalence tests.
  friend bool operator==(const PhyStats&, const PhyStats&) = default;
};

}  // namespace hacksim

#endif  // SRC_STATS_PHY_STATS_H_
