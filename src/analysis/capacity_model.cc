#include "src/analysis/capacity_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace hacksim {
namespace {

size_t PaddedSubframe(size_t mpdu_bytes) {
  return kAmpduDelimiterBytes + ((mpdu_bytes + 3) & ~size_t{3});
}

SimTime AmpduAirtime(const WifiMode& mode, size_t mpdu_bytes, int n) {
  return FrameDuration(mode, PaddedSubframe(mpdu_bytes) * n);
}

}  // namespace

SimTime MeanAcquisitionOverhead(WifiStandard standard) {
  PhyTimings t = TimingsFor(standard);
  // Mean backoff: CWmin/2 slots (first attempt draws uniform [0, CWmin]).
  int64_t mean_slots_x2 = t.cw_min;  // 2 * (CWmin/2)
  return t.difs + SimTime::Nanos(t.slot.ns() * mean_slots_x2 / 2);
}

size_t DataMpduBytes(const CapacityParams& p) {
  size_t ip_packet = p.tcp_payload_bytes + p.tcp_ack_ip_bytes;
  return kQosDataHeaderBytes + kLlcSnapBytes + ip_packet + kFcsBytes;
}

size_t TcpAckMpduBytes(const CapacityParams& p) {
  return kQosDataHeaderBytes + kLlcSnapBytes + p.tcp_ack_ip_bytes + kFcsBytes;
}

size_t UdpMpduBytes(const CapacityParams& p) {
  // UDP/IP header is 28 bytes.
  return kQosDataHeaderBytes + kLlcSnapBytes + p.udp_payload_bytes + 28 +
         kFcsBytes;
}

int AmpduDataMpdus(const CapacityParams& p) {
  size_t sub = PaddedSubframe(DataMpduBytes(p));
  int by_bytes = static_cast<int>(kMaxAmpduBytes / sub);
  int n = std::min<int>(by_bytes, kMaxAmpduMpdus);
  while (n > 1 &&
         AmpduAirtime(p.data_mode, DataMpduBytes(p), n) > p.txop_limit) {
    --n;
  }
  return std::max(n, 1);
}

namespace {

struct Overheads {
  SimTime acquisition;
  SimTime sifs;
  WifiMode control;
};

Overheads Common(const CapacityParams& p) {
  return Overheads{MeanAcquisitionOverhead(p.standard),
                   TimingsFor(p.standard).sifs,
                   ControlResponseMode(p.data_mode)};
}

}  // namespace

double TcpGoodputMbps(const CapacityParams& p) {
  Overheads oh = Common(p);
  bool aggregated =
      p.standard == WifiStandard::k80211n && p.use_aggregation;
  if (!aggregated) {
    // Per delayed-ack cycle: `ratio` data exchanges + one TCP ACK exchange.
    SimTime t_ack = FrameDuration(oh.control, kAckBytes);
    SimTime data_exchange = oh.acquisition +
                            FrameDuration(p.data_mode, DataMpduBytes(p)) +
                            oh.sifs + t_ack;
    SimTime ack_exchange = oh.acquisition +
                           FrameDuration(p.data_mode, TcpAckMpduBytes(p)) +
                           oh.sifs + t_ack;
    SimTime cycle = data_exchange * p.delayed_ack_ratio + ack_exchange;
    double payload_bits =
        static_cast<double>(p.tcp_payload_bytes) * 8.0 * p.delayed_ack_ratio;
    return payload_bits / cycle.ToSecondsF() / 1e6;
  }
  int n = AmpduDataMpdus(p);
  int n_acks = std::max(1, n / p.delayed_ack_ratio);
  SimTime t_ba = FrameDuration(oh.control, kBlockAckBytes);
  SimTime data_batch = oh.acquisition +
                       AmpduAirtime(p.data_mode, DataMpduBytes(p), n) +
                       oh.sifs + t_ba;
  SimTime ack_batch = oh.acquisition +
                      AmpduAirtime(p.data_mode, TcpAckMpduBytes(p), n_acks) +
                      oh.sifs + t_ba;
  SimTime cycle = data_batch + ack_batch;
  double payload_bits = static_cast<double>(p.tcp_payload_bytes) * 8.0 * n;
  return payload_bits / cycle.ToSecondsF() / 1e6;
}

double TcpHackGoodputMbps(const CapacityParams& p) {
  Overheads oh = Common(p);
  bool aggregated =
      p.standard == WifiStandard::k80211n && p.use_aggregation;
  if (!aggregated) {
    // Every `ratio`-th LL ACK carries one compressed TCP ACK (+1 byte
    // envelope); no medium acquisitions for TCP ACKs remain.
    SimTime t_ack_plain = FrameDuration(oh.control, kAckBytes);
    size_t hack_bytes =
        kAckBytes + 1 + static_cast<size_t>(std::ceil(p.compressed_ack_bytes));
    SimTime t_ack_hack = FrameDuration(oh.control, hack_bytes);
    SimTime data_air = FrameDuration(p.data_mode, DataMpduBytes(p));
    SimTime cycle = (oh.acquisition + data_air + oh.sifs) *
                        p.delayed_ack_ratio +
                    t_ack_hack + t_ack_plain * (p.delayed_ack_ratio - 1);
    double payload_bits =
        static_cast<double>(p.tcp_payload_bytes) * 8.0 * p.delayed_ack_ratio;
    return payload_bits / cycle.ToSecondsF() / 1e6;
  }
  int n = AmpduDataMpdus(p);
  int n_acks = std::max(1, n / p.delayed_ack_ratio);
  size_t ba_hack_bytes =
      kBlockAckBytes + 1 +
      static_cast<size_t>(std::lround(p.compressed_ack_bytes * n_acks));
  SimTime t_ba_hack = FrameDuration(oh.control, ba_hack_bytes);
  SimTime cycle = oh.acquisition +
                  AmpduAirtime(p.data_mode, DataMpduBytes(p), n) + oh.sifs +
                  t_ba_hack;
  double payload_bits = static_cast<double>(p.tcp_payload_bytes) * 8.0 * n;
  return payload_bits / cycle.ToSecondsF() / 1e6;
}

double UdpGoodputMbps(const CapacityParams& p) {
  Overheads oh = Common(p);
  bool aggregated =
      p.standard == WifiStandard::k80211n && p.use_aggregation;
  if (!aggregated) {
    SimTime t_ack = FrameDuration(oh.control, kAckBytes);
    SimTime cycle = oh.acquisition +
                    FrameDuration(p.data_mode, UdpMpduBytes(p)) + oh.sifs +
                    t_ack;
    return static_cast<double>(p.udp_payload_bytes) * 8.0 /
           cycle.ToSecondsF() / 1e6;
  }
  size_t sub = PaddedSubframe(UdpMpduBytes(p));
  int n = std::min<int>(static_cast<int>(kMaxAmpduBytes / sub),
                        kMaxAmpduMpdus);
  while (n > 1 &&
         AmpduAirtime(p.data_mode, UdpMpduBytes(p), n) > p.txop_limit) {
    --n;
  }
  SimTime t_ba = FrameDuration(oh.control, kBlockAckBytes);
  SimTime cycle = oh.acquisition +
                  AmpduAirtime(p.data_mode, UdpMpduBytes(p), n) + oh.sifs +
                  t_ba;
  return static_cast<double>(p.udp_payload_bytes) * 8.0 * n /
         cycle.ToSecondsF() / 1e6;
}

double SingleFrameEfficiency(const CapacityParams& p) {
  Overheads oh = Common(p);
  SimTime t_ack = FrameDuration(oh.control, kAckBytes);
  SimTime cycle = oh.acquisition +
                  FrameDuration(p.data_mode, DataMpduBytes(p)) + oh.sifs +
                  t_ack;
  double goodput_bps =
      static_cast<double>(p.tcp_payload_bytes) * 8.0 / cycle.ToSecondsF();
  return goodput_bps / (p.data_mode.rate_kbps * 1000.0);
}

}  // namespace hacksim
