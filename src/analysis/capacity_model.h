// Closed-form capacity model of the 802.11a/n MACs under TCP, TCP/HACK and
// UDP workloads — the paper's §2.1 analysis. Reproduces Figure 1(a), 1(b)
// and the theory curves of Figure 12, plus the headline §1/§2 numbers
// (110.5 us mean acquisition overhead; a single-frame 600 Mbps sender
// reaching only ~9% of channel capacity; 42-MPDU A-MPDUs).
//
// Assumptions (the paper's): lossless channel, saturated sender, delayed
// ACKs (one TCP ACK per two data segments), maximal A-MPDUs under the 64 KB
// / 64-MPDU / TXOP bounds, mean backoff CWmin/2 slots, LL ACKs at the basic
// control rate.
#ifndef SRC_ANALYSIS_CAPACITY_MODEL_H_
#define SRC_ANALYSIS_CAPACITY_MODEL_H_

#include "src/phy80211/frame.h"
#include "src/phy80211/wifi_mode.h"

namespace hacksim {

struct CapacityParams {
  WifiStandard standard = WifiStandard::k80211n;
  WifiMode data_mode;
  uint32_t tcp_payload_bytes = 1460;
  // IPv4(20) + TCP(20) + timestamps(12): the 52-byte pure ACK of Table 2.
  uint32_t tcp_ack_ip_bytes = 52;
  // Mean compressed record size on the LL ACK (+1 envelope byte amortised).
  double compressed_ack_bytes = 4.0;
  uint32_t udp_payload_bytes = 1472;
  int delayed_ack_ratio = 2;   // data segments per TCP ACK
  SimTime txop_limit = SimTime::Millis(4);
  bool use_aggregation = true;  // ignored for 802.11a
};

// Mean medium-acquisition overhead: AIFS/DIFS + (CWmin/2) * slot.
SimTime MeanAcquisitionOverhead(WifiStandard standard);

// MPDU sizes on the air.
size_t DataMpduBytes(const CapacityParams& p);
size_t TcpAckMpduBytes(const CapacityParams& p);
size_t UdpMpduBytes(const CapacityParams& p);

// Number of data MPDUs per A-MPDU under the 64 KB / 64-MPDU / TXOP bounds
// at the configured rate (42 for 1460 B payloads at >= 150 Mbps).
int AmpduDataMpdus(const CapacityParams& p);

// Goodputs in Mbps.
double TcpGoodputMbps(const CapacityParams& p);       // stock 802.11
double TcpHackGoodputMbps(const CapacityParams& p);   // TCP/HACK
double UdpGoodputMbps(const CapacityParams& p);

// Fraction of the PHY rate a single-MPDU (no aggregation) sender achieves —
// the §1 "9% at 600 Mbps" observation.
double SingleFrameEfficiency(const CapacityParams& p);

}  // namespace hacksim

#endif  // SRC_ANALYSIS_CAPACITY_MODEL_H_
