// HackAgent: the paper's driver + NIC functionality (§3.3.1), both roles.
//
// Client role (TCP receiver): intercepts outgoing pure TCP ACKs, compresses
// them (ROHC), stages them across a modelled driver->NIC DMA latency, and
// hands them to the MAC for encapsulation in LL ACKs / Block ACKs. It
// implements:
//   * the MORE DATA latch (§3.2) deciding HACK vs vanilla transmission,
//   * the opportunistic and explicit-timer variants (§3.2) for comparison,
//   * the timestamp-echo variant sketched as future work in §5,
//   * loss recovery (§3.4): retained payloads are re-sent on every LL ACK
//     until implicitly confirmed (new A-MPDU / higher MAC sequence number),
//     kept across Block ACK Requests, kept when the AP signals SYNC, and
//     flushed to vanilla ACKs when MORE DATA is clear (Fig 7's policy:
//     cumulative ACKs make dropping the older ones safe).
//
// AP role (data sender): extracts HACK payloads from received LL ACKs,
// discards duplicates by MSN, decompresses records, and forwards the
// reconstituted TCP ACKs upstream. It also snoops vanilla TCP ACKs to
// bootstrap decompressor contexts (no ROHC IR packets, §3.3.2).
#ifndef SRC_HACK_HACK_AGENT_H_
#define SRC_HACK_HACK_AGENT_H_

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/mac80211/wifi_mac.h"
#include "src/rohc/rohc.h"
#include "src/stats/experiment_stats.h"

namespace hacksim {

enum class HackVariant {
  kOff,
  kMoreData,       // the paper's chosen design
  kOpportunistic,  // naive contention-race variant (§3.2)
  kExplicitTimer,  // naive timeout variant (§3.2)
  kTimestampEcho,  // §5 future work: TCP timestamp echo as implicit ACK-of-ACK
};

struct HackAgentConfig {
  HackVariant variant = HackVariant::kMoreData;
  // Driver -> NIC staging (DMA + descriptor) latency; the window for the
  // Fig 3/4 ready race.
  SimTime staging_latency = SimTime::Micros(30);
  // Per-LL-ACK payload budget; anything beyond stays staged for the next LL
  // ACK (footnote 7's "split across multiple LL ACKs" option). 240 B keeps
  // a full delayed-ACK batch (21 records) plus recovery refreshes on one
  // Block ACK while staying close to the fits-in-AIFS goal; the ablation
  // bench sweeps this knob.
  size_t max_payload_bytes = 240;
  // Flush timeout for kExplicitTimer, and the safety timer for
  // kTimestampEcho.
  SimTime explicit_timer = SimTime::Millis(10);
};

class HackAgent final : public HackHooks {
 public:
  HackAgent(Scheduler* scheduler, WifiMac* mac, HackAgentConfig config);

  HackAgent(const HackAgent&) = delete;
  HackAgent& operator=(const HackAgent&) = delete;

  // --- client role -----------------------------------------------------------
  // Offer an outgoing packet heading to `dest`. Returns true if HACK
  // consumed it (it will ride an LL ACK, or was enqueued vanilla by the
  // agent itself — either way the packet was moved from); false means the
  // packet was left untouched and the caller enqueues it on the MAC as
  // usual.
  bool OfferOutgoingPacket(Packet&& packet, MacAddress dest);

  // Wire to WifiMac::on_mpdu_delivered.
  void OnMpduDelivered(const Packet& packet, MacAddress dest);

  // --- AP role ----------------------------------------------------------------
  // Reconstituted TCP ACKs ready to forward upstream.
  std::function<void(Packet, MacAddress from)> forward_decompressed;
  // Wire to the receive path: every pure TCP ACK received over the WLAN.
  void NoteReceivedVanillaAck(const Packet& packet);
  // Wire to the receive path for kTimestampEcho: data segments' TSecr.
  void NoteReceivedDataSegment(const Packet& packet);

  // HackHooks:
  void OnDataPpdu(MacAddress from, bool aggregated, bool has_new_mpdu,
                  bool more_data, bool sync) override;
  std::vector<uint8_t> BuildAckPayload(MacAddress to) override;
  void OnAckPayload(MacAddress from, std::span<const uint8_t> payload) override;

  HackStats& stats() { return stats_; }
  const HackStats& stats() const { return stats_; }
  const RohcDecompressor& decompressor() const { return decompressor_; }

 private:
  struct StagedAck {
    Packet original;
    FiveTuple flow;
    std::vector<uint8_t> compressed;
    SimTime ready_at;
    uint64_t vanilla_uid = 0;  // opportunistic: uid of the queued vanilla copy
  };

  struct PeerState {
    bool more_data_latched = false;
    std::deque<StagedAck> staged;    // compressed, not yet sent on any LL ACK
    std::deque<StagedAck> retained;  // sent, awaiting implicit confirmation
    EventId flush_timer = kInvalidEventId;
    // kTimestampEcho: newest TSval we released and whether it was echoed.
    uint32_t last_released_tsval = 0;
    bool echo_outstanding = false;
  };

  bool ContextEstablished(const FiveTuple& flow) const {
    return established_flows_.count(flow) != 0;
  }
  void SendVanilla(Packet&& packet, MacAddress dest);
  // Fig 7: a vanilla ACK for `flow` is about to go out — drop the flow's
  // retained records (the newer cumulative ACK supersedes them) and demote
  // its staged (never-sent) records to vanilla so dupack counts survive.
  void FlushFlowState(PeerState& ps, const FiveTuple& flow, MacAddress dest);
  // Explicit-timer / timestamp-echo safety flush: demote everything staged
  // for `dest` to vanilla transmission.
  void FlushAllToVanilla(MacAddress dest, PeerState& ps);
  void ArmFlushTimer(MacAddress dest, PeerState& ps);
  bool ShouldHoldAcks(const PeerState& ps) const;

  Scheduler* scheduler_;
  WifiMac* mac_;
  HackAgentConfig config_;

  RohcCompressor compressor_;
  RohcDecompressor decompressor_;
  std::map<MacAddress, PeerState> peers_;
  std::unordered_set<FiveTuple, FiveTupleHash> established_flows_;

  HackStats stats_;
};

}  // namespace hacksim

#endif  // SRC_HACK_HACK_AGENT_H_
