// HackAgent: the paper's driver + NIC functionality (§3.3.1), both roles.
//
// Client role (TCP receiver): intercepts outgoing pure TCP ACKs, compresses
// them (ROHC), stages them across a modelled driver->NIC DMA latency, and
// hands them to the MAC for encapsulation in LL ACKs / Block ACKs. It
// implements:
//   * the MORE DATA latch (§3.2) deciding HACK vs vanilla transmission,
//   * the opportunistic and explicit-timer variants (§3.2) for comparison,
//   * the timestamp-echo variant sketched as future work in §5,
//   * loss recovery (§3.4): retained payloads are re-sent on every LL ACK
//     until implicitly confirmed (new A-MPDU / higher MAC sequence number),
//     kept across Block ACK Requests, kept when the AP signals SYNC, and
//     flushed to vanilla ACKs when MORE DATA is clear (Fig 7's policy:
//     cumulative ACKs make dropping the older ones safe).
//
// AP role (data sender): extracts HACK payloads from received LL ACKs,
// discards duplicates by MSN, decompresses records, and forwards the
// reconstituted TCP ACKs upstream. It also snoops vanilla TCP ACKs to
// bootstrap decompressor contexts (no ROHC IR packets, §3.3.2).
//
// Decompressor contexts are scoped per sending peer (one RohcDecompressor
// per client MAC), mirroring ROHC's rule that CIDs are only unique within a
// channel: each client derives CIDs from its own flows' 5-tuple hashes, so
// two clients can legitimately pick the same CID. A single AP-wide CID
// space would let one client's records apply deltas to another client's
// context — the compressor-side collision guard cannot see across clients,
// and compressed records carry no flow identity to check against. Same-peer
// collisions are still resolved by the compressor guard (younger flow stays
// vanilla-only).
#ifndef SRC_HACK_HACK_AGENT_H_
#define SRC_HACK_HACK_AGENT_H_

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/mac80211/wifi_mac.h"
#include "src/rohc/rohc.h"
#include "src/stats/experiment_stats.h"

namespace hacksim {

enum class HackVariant {
  kOff,
  kMoreData,       // the paper's chosen design
  kOpportunistic,  // naive contention-race variant (§3.2)
  kExplicitTimer,  // naive timeout variant (§3.2)
  kTimestampEcho,  // §5 future work: TCP timestamp echo as implicit ACK-of-ACK
};

// ACK-aggregation policy: instead of releasing every staged compressed ACK
// onto the next LL ACK individually, hold them in a pending (held) set and
// release the whole set — one hierarchical ACK batch riding one LL ACK /
// Block ACK — when the first of three triggers fires:
//   * the flush window expires (one coalesced timer per peer, armed when the
//     first ACK of a batch is held and cancelled on release — the PR 8
//     coalesced-deadline idiom, never a per-ACK timer),
//   * the held count reaches flush_count (0 = no count trigger), or
//   * the peer's MORE DATA bit falls (flush_on_more_data_edge): its burst is
//     over, so the upcoming final LL ACK is the last free ride.
// flush_window == 0 (the default) disables the policy entirely: no held
// flags, no timers, no counters — bit-identical to the pre-policy agent,
// pinned the same way edca_enabled=false is (docs/hack.md).
struct HackAckPolicy {
  SimTime flush_window;
  size_t flush_count = 0;
  bool flush_on_more_data_edge = true;

  bool enabled() const { return !flush_window.IsZero(); }
};

struct HackAgentConfig {
  HackVariant variant = HackVariant::kMoreData;
  // Driver -> NIC staging (DMA + descriptor) latency; the window for the
  // Fig 3/4 ready race.
  SimTime staging_latency = SimTime::Micros(30);
  // Per-LL-ACK payload budget; anything beyond stays staged for the next LL
  // ACK (footnote 7's "split across multiple LL ACKs" option). 240 B keeps
  // a full delayed-ACK batch (21 records) plus recovery refreshes on one
  // Block ACK while staying close to the fits-in-AIFS goal; the ablation
  // bench sweeps this knob.
  size_t max_payload_bytes = 240;
  // Flush timeout for kExplicitTimer, and the safety timer for
  // kTimestampEcho.
  SimTime explicit_timer = SimTime::Millis(10);
  // Batched/paced release of staged compressed ACKs; off by default.
  HackAckPolicy ack_policy;
};

class HackAgent final : public HackHooks {
 public:
  HackAgent(Scheduler* scheduler, WifiMac* mac, HackAgentConfig config);

  HackAgent(const HackAgent&) = delete;
  HackAgent& operator=(const HackAgent&) = delete;

  // --- client role -----------------------------------------------------------
  // Offer an outgoing packet heading to `dest`. Returns true if HACK
  // consumed it (it will ride an LL ACK, or was enqueued vanilla by the
  // agent itself — either way the packet was moved from); false means the
  // packet was left untouched and the caller enqueues it on the MAC as
  // usual.
  bool OfferOutgoingPacket(Packet&& packet, MacAddress dest);

  // Wire to WifiMac::on_mpdu_delivered.
  void OnMpduDelivered(const Packet& packet, MacAddress dest);

  // --- AP role ----------------------------------------------------------------
  // Reconstituted TCP ACKs ready to forward upstream.
  std::function<void(Packet, MacAddress from)> forward_decompressed;
  // Wire to the receive path: every pure TCP ACK received over the WLAN.
  // `from` scopes the bootstrap to that peer's decompressor.
  void NoteReceivedVanillaAck(const Packet& packet, MacAddress from);
  // Wire to the receive path for kTimestampEcho: data segments' TSecr.
  void NoteReceivedDataSegment(const Packet& packet);

  // HackHooks:
  void OnDataPpdu(MacAddress from, bool aggregated, bool has_new_mpdu,
                  bool more_data, bool sync) override;
  std::vector<uint8_t> BuildAckPayload(MacAddress to) override;
  void OnAckPayload(MacAddress from, std::span<const uint8_t> payload) override;

  HackStats& stats() { return stats_; }
  const HackStats& stats() const { return stats_; }
  // Peer-scoped decompressor lookup (tests/diagnostics); null if the peer
  // has never anchored a context or sent a HACK payload.
  const RohcDecompressor* decompressor(MacAddress from) const {
    auto it = decompressors_.find(from);
    return it == decompressors_.end() ? nullptr : &it->second;
  }

 private:
  struct StagedAck {
    Packet original;
    FiveTuple flow;
    std::vector<uint8_t> compressed;
    SimTime ready_at;
    uint64_t vanilla_uid = 0;  // opportunistic: uid of the queued vanilla copy
    // Held back by the ACK-aggregation policy: not yet eligible to ride an
    // LL ACK. Held entries are always a contiguous suffix of `staged` —
    // marking is append-only and release clears every flag at once — which
    // is what lets BuildAckPayload stop at the first held entry.
    bool held = false;
  };

  struct PeerState {
    bool more_data_latched = false;
    std::deque<StagedAck> staged;    // compressed, not yet sent on any LL ACK
    std::deque<StagedAck> retained;  // sent, awaiting implicit confirmation
    EventId flush_timer = kInvalidEventId;
    // ACK-aggregation policy: number of staged entries currently held, and
    // the one coalesced release timer (armed when the first entry of a batch
    // is held, cancelled when the batch releases for any reason).
    size_t held_count = 0;
    EventId batch_timer = kInvalidEventId;
    // kTimestampEcho: newest TSval we released and whether it was echoed.
    uint32_t last_released_tsval = 0;
    bool echo_outstanding = false;
  };

  bool ContextEstablished(const FiveTuple& flow) const {
    return established_flows_.count(flow) != 0;
  }
  void SendVanilla(Packet&& packet, MacAddress dest);
  // Fig 7: a vanilla ACK for `flow` is about to go out — drop the flow's
  // retained records (the newer cumulative ACK supersedes them) and demote
  // its staged (never-sent) records to vanilla so dupack counts survive.
  void FlushFlowState(PeerState& ps, const FiveTuple& flow, MacAddress dest);
  // Explicit-timer / timestamp-echo safety flush: demote everything staged
  // for `dest` to vanilla transmission.
  void FlushAllToVanilla(MacAddress dest, PeerState& ps);
  void ArmFlushTimer(MacAddress dest, PeerState& ps);
  bool ShouldHoldAcks(const PeerState& ps) const;
  // ACK-aggregation policy: mark the just-staged entry held and arm/trip the
  // batch triggers (count threshold, coalesced window timer).
  void HoldStagedAck(MacAddress dest, PeerState& ps);
  // Release every held entry (they ride the next LL ACK as one batch) and
  // cancel the window timer. `cause` is the per-trigger counter to bump;
  // releasing an empty held set only cancels the timer and counts nothing.
  void ReleaseHeld(PeerState& ps, uint64_t* cause);
  // Un-hold bookkeeping for eviction paths (FlushFlowState / opportunistic
  // withdrawal): held entries leaving `staged` decrement the count; when it
  // hits zero the pending window timer is cancelled.
  void NoteHeldEvicted(PeerState& ps, size_t evicted);

  Scheduler* scheduler_;
  WifiMac* mac_;
  HackAgentConfig config_;

  RohcCompressor compressor_;
  // One decompressor (= one 256-CID context space) per sending peer; see
  // the header comment on CID scoping.
  std::map<MacAddress, RohcDecompressor> decompressors_;
  std::map<MacAddress, PeerState> peers_;
  std::unordered_set<FiveTuple, FiveTupleHash> established_flows_;

  HackStats stats_;
};

}  // namespace hacksim

#endif  // SRC_HACK_HACK_AGENT_H_
