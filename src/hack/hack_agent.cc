#include "src/hack/hack_agent.h"

#include <algorithm>

#include "src/tcp/tcp_common.h"
#include "src/util/logging.h"

namespace hacksim {

HackAgent::HackAgent(Scheduler* scheduler, WifiMac* mac,
                     HackAgentConfig config)
    : scheduler_(scheduler), mac_(mac), config_(config) {
  mac_->set_hack_hooks(this);
  mac_->on_mpdu_delivered = [this](const Packet& packet, MacAddress dest) {
    OnMpduDelivered(packet, dest);
  };
}

// --- client role -----------------------------------------------------------------

bool HackAgent::ShouldHoldAcks(const PeerState& ps) const {
  switch (config_.variant) {
    case HackVariant::kOff:
      return false;
    case HackVariant::kMoreData:
      return ps.more_data_latched;
    case HackVariant::kOpportunistic:
      return true;  // always stage; the vanilla copy races in parallel
    case HackVariant::kExplicitTimer:
      return true;  // always stage; the timer bounds the delay
    case HackVariant::kTimestampEcho:
      // Hold while an unechoed timestamp implies our ACKs are still in
      // flight to the sender and more data should follow (§5).
      return ps.echo_outstanding;
  }
  return false;
}

bool HackAgent::OfferOutgoingPacket(Packet&& packet, MacAddress dest) {
  if (config_.variant == HackVariant::kOff || !packet.IsPureTcpAck()) {
    return false;
  }
  PeerState& ps = peers_[dest];
  FiveTuple flow = packet.Flow();

  bool hold = ShouldHoldAcks(ps) && ContextEstablished(flow);
  if (!hold) {
    SendVanilla(std::move(packet), dest);
    return true;  // we enqueued it ourselves
  }

  RohcCompressor::Result compressed = compressor_.Compress(packet);
  if (compressed.bytes.empty()) {
    // CID collision or inexpressible options: this flow stays vanilla.
    SendVanilla(std::move(packet), dest);
    return true;
  }

  StagedAck staged;
  staged.flow = flow;
  staged.compressed = std::move(compressed.bytes);
  staged.ready_at = scheduler_->Now() + config_.staging_latency;
  ++stats_.unique_compressed_acks;
  stats_.unique_compressed_bytes += staged.compressed.size();

  if (config_.variant == HackVariant::kOpportunistic) {
    // Stage *and* enqueue vanilla: whichever transmission happens first
    // wins. The vanilla copy is pulled from the MAC queue if the compressed
    // copy rides an LL ACK first.
    staged.vanilla_uid = packet.uid();
    staged.original = packet;  // deliberate copy: the original races vanilla
    ps.staged.push_back(std::move(staged));
    return false;  // caller enqueues the vanilla copy
  }

  std::optional<TcpTimestamps> timestamps = packet.tcp().timestamps;
  staged.original = std::move(packet);
  ps.staged.push_back(std::move(staged));
  if (config_.ack_policy.enabled()) {
    HoldStagedAck(dest, ps);
  }
  if (config_.variant == HackVariant::kExplicitTimer ||
      config_.variant == HackVariant::kTimestampEcho) {
    ArmFlushTimer(dest, ps);
  }
  if (timestamps.has_value()) {
    ps.last_released_tsval = timestamps->tsval;
    ps.echo_outstanding = true;
  }
  return true;
}

void HackAgent::HoldStagedAck(MacAddress dest, PeerState& ps) {
  ps.staged.back().held = true;
  ++ps.held_count;
  if (config_.ack_policy.flush_count > 0 &&
      ps.held_count >= config_.ack_policy.flush_count) {
    ReleaseHeld(ps, &stats_.batch_flush_count);
    return;
  }
  if (ps.batch_timer == kInvalidEventId) {
    // One coalesced deadline for the whole batch, armed by its first entry
    // (the PR 8 idiom): later holds ride the pending timer, and any release
    // cancels it, so a batch costs at most one scheduler event.
    ps.batch_timer = scheduler_->ScheduleIn(
        config_.ack_policy.flush_window,
        [this, dest]() {
          PeerState& state = peers_[dest];
          state.batch_timer = kInvalidEventId;
          ReleaseHeld(state, &stats_.batch_flush_window);
        },
        EventClass::kTransportTimer);
  }
}

void HackAgent::ReleaseHeld(PeerState& ps, uint64_t* cause) {
  if (ps.batch_timer != kInvalidEventId) {
    scheduler_->Cancel(ps.batch_timer);
    ps.batch_timer = kInvalidEventId;
  }
  if (ps.held_count == 0) {
    return;
  }
  for (StagedAck& s : ps.staged) {
    s.held = false;
  }
  stats_.batched_acks += ps.held_count;
  ++stats_.ack_batches;
  ++*cause;
  ps.held_count = 0;
}

void HackAgent::NoteHeldEvicted(PeerState& ps, size_t evicted) {
  if (evicted == 0 || ps.held_count == 0) {
    return;
  }
  ps.held_count -= std::min(ps.held_count, evicted);
  if (ps.held_count == 0 && ps.batch_timer != kInvalidEventId) {
    scheduler_->Cancel(ps.batch_timer);
    ps.batch_timer = kInvalidEventId;
  }
}

void HackAgent::SendVanilla(Packet&& packet, MacAddress dest) {
  PeerState& ps = peers_[dest];
  FiveTuple flow = packet.Flow();
  // Fig 7: going vanilla invalidates any compressed state for the flow; the
  // cumulative ACK we are about to send supersedes the retained ones.
  FlushFlowState(ps, flow, dest);
  compressor_.ForceRefresh(flow);
  ++stats_.vanilla_acks_sent;
  stats_.vanilla_ack_bytes += packet.SizeBytes();
  if (packet.tcp().timestamps.has_value()) {
    ps.last_released_tsval = packet.tcp().timestamps->tsval;
    ps.echo_outstanding = true;
  }
  mac_->Enqueue(std::move(packet), dest);
}

void HackAgent::FlushFlowState(PeerState& ps, const FiveTuple& flow,
                               MacAddress dest) {
  // Retained records rode an LL ACK already; the newer cumulative ACK that
  // triggered this flush supersedes them (Fig 7), so they are dropped.
  size_t before = ps.retained.size();
  ps.retained.erase(
      std::remove_if(ps.retained.begin(), ps.retained.end(),
                     [&](const StagedAck& s) { return s.flow == flow; }),
      ps.retained.end());
  size_t dropped = before - ps.retained.size();

  // Staged records were never transmitted. They must be demoted to vanilla
  // MPDUs — in order, ahead of the triggering ACK — because dupacks among
  // them carry the count that drives the sender's fast retransmit (§6).
  std::vector<StagedAck> demote;
  size_t held_evicted = 0;
  for (auto it = ps.staged.begin(); it != ps.staged.end();) {
    if (it->flow == flow) {
      if (it->held) {
        ++held_evicted;
      }
      demote.push_back(std::move(*it));
      it = ps.staged.erase(it);
    } else {
      ++it;
    }
  }
  NoteHeldEvicted(ps, held_evicted);
  for (StagedAck& s : demote) {
    ++stats_.vanilla_acks_sent;
    stats_.vanilla_ack_bytes += s.original.SizeBytes();
    mac_->Enqueue(std::move(s.original), dest);
  }
  size_t flushed = dropped + demote.size();
  if (flushed > 0) {
    stats_.flushed_to_vanilla += flushed;
    compressor_.ForceRefresh(flow);
  }
}

void HackAgent::FlushAllToVanilla(MacAddress dest, PeerState& ps) {
  // Everything staged leaves, held or not; the batch state resets wholesale.
  NoteHeldEvicted(ps, ps.held_count);
  // Demote staged (never-sent) compressed ACKs to vanilla MPDUs. Only the
  // newest cumulative ACK per flow plus any dupacks are worth sending;
  // older cumulative ACKs are superseded.
  std::vector<StagedAck> all;
  all.reserve(ps.staged.size());
  for (auto& s : ps.staged) {
    all.push_back(std::move(s));
  }
  ps.staged.clear();
  if (all.empty()) {
    return;
  }
  // Any retained records for the demoted flows must be discarded: the
  // vanilla ACKs below will re-anchor the AP's decompressor, after which a
  // retained replay would desync the delta chain. Cumulative ACK semantics
  // make the drop safe (the demoted ACKs are newer).
  for (const StagedAck& s : all) {
    ps.retained.erase(
        std::remove_if(ps.retained.begin(), ps.retained.end(),
                       [&](const StagedAck& r) { return r.flow == s.flow; }),
        ps.retained.end());
  }
  // Newest cumulative ACK per flow.
  std::unordered_map<FiveTuple, uint32_t, FiveTupleHash> newest;
  for (const StagedAck& s : all) {
    uint32_t ack = s.original.tcp().ack;
    auto [it, inserted] = newest.emplace(s.flow, ack);
    if (!inserted && Seq32Gt(ack, it->second)) {
      it->second = ack;
    }
  }
  std::unordered_set<FiveTuple, FiveTupleHash> refreshed;
  for (StagedAck& s : all) {
    if (refreshed.insert(s.flow).second) {
      compressor_.ForceRefresh(s.flow);
    }
    uint32_t ack = s.original.tcp().ack;
    bool is_newest = ack == newest[s.flow];
    bool is_dupack_with_sack = !s.original.tcp().sack_blocks.empty();
    if (!is_newest && !is_dupack_with_sack) {
      ++stats_.flushed_to_vanilla;
      continue;  // superseded by the newest cumulative ACK
    }
    ++stats_.vanilla_acks_sent;
    stats_.vanilla_ack_bytes += s.original.SizeBytes();
    ++stats_.flushed_to_vanilla;
    mac_->Enqueue(std::move(s.original), dest);
  }
}

void HackAgent::ArmFlushTimer(MacAddress dest, PeerState& ps) {
  if (ps.flush_timer != kInvalidEventId) {
    return;
  }
  ps.flush_timer = scheduler_->ScheduleIn(
      config_.explicit_timer,
      [this, dest]() {
        PeerState& state = peers_[dest];
        state.flush_timer = kInvalidEventId;
        FlushAllToVanilla(dest, state);
      },
      EventClass::kTransportTimer);
}

void HackAgent::OnMpduDelivered(const Packet& packet, MacAddress dest) {
  if (!packet.IsPureTcpAck()) {
    return;
  }
  // A vanilla TCP ACK reached the AP: its driver snooped it, so the ROHC
  // context now exists there.
  established_flows_.insert(packet.Flow());
  if (config_.variant == HackVariant::kOpportunistic) {
    // The vanilla copy won the race. Withdraw the compressed copy from
    // *both* lists: the vanilla delivery re-anchored the AP's context, so
    // replaying an older compressed record (even a retained one) would
    // apply deltas against the wrong state.
    PeerState& ps = peers_[dest];
    uint64_t uid = packet.uid();
    auto drop = [&](std::deque<StagedAck>& dq) {
      size_t before = dq.size();
      dq.erase(std::remove_if(dq.begin(), dq.end(),
                              [&](const StagedAck& s) {
                                return s.vanilla_uid == uid;
                              }),
               dq.end());
      stats_.withdrawn_vanilla_won += before - dq.size();
    };
    drop(ps.staged);
    drop(ps.retained);
    ++stats_.vanilla_acks_sent;
    stats_.vanilla_ack_bytes += packet.SizeBytes();
    compressor_.ForceRefresh(packet.Flow());
  }
}

// --- hooks from the MAC ---------------------------------------------------------

void HackAgent::OnDataPpdu(MacAddress from, bool aggregated,
                           bool has_new_mpdu, bool more_data, bool sync) {
  if (config_.variant == HackVariant::kOff) {
    return;
  }
  PeerState& ps = peers_[from];
  ps.more_data_latched = more_data;

  if (!more_data && config_.ack_policy.enabled() &&
      config_.ack_policy.flush_on_more_data_edge) {
    // End of the peer's burst: no further reverse frame is coming to ride,
    // so the batch releases now — OnDataPpdu runs before the SIFS-delayed
    // BuildAckPayload, which means the released set boards the *final*
    // LL ACK of the burst instead of stranding until the window expires.
    ReleaseHeld(ps, &stats_.batch_flush_edge);
  }

  if (!more_data) {
    // Last expected batch: whatever the upcoming LL ACK cannot carry
    // (payload cap, ready race) has no further ride and must fall back to
    // normal transmission (Fig 4's "re-enqueue for normal transmission").
    // Give the LL ACK a moment to take what fits, then demote the rest.
    scheduler_->ScheduleIn(
        SimTime::Millis(1),
        [this, from]() {
          PeerState& state = peers_[from];
          if (!state.more_data_latched && !state.staged.empty()) {
            FlushAllToVanilla(from, state);
          }
        },
        EventClass::kTransportTimer);
  }

  if (sync) {
    // AP gave up on Block ACK Requests and moved on; it never received our
    // retained compressed ACKs — keep them for the next LL ACK (Fig 8).
    return;
  }
  // Implicit confirmation (§3.4, Fig 5): for A-MPDUs, *any* subsequent
  // batch confirms our previous Block ACK arrived; for single MPDUs, only a
  // *new* (higher-sequence) MPDU does — the same sequence number means our
  // ACK was lost and the AP is retransmitting.
  bool confirmed = aggregated ? true : has_new_mpdu;
  if (confirmed && !ps.retained.empty()) {
    ps.retained.clear();
  }
}

std::vector<uint8_t> HackAgent::BuildAckPayload(MacAddress to) {
  if (config_.variant == HackVariant::kOff) {
    return {};
  }
  PeerState& ps = peers_[to];
  SimTime now = scheduler_->Now();

  std::vector<std::vector<uint8_t>> records;
  size_t bytes = 1;  // envelope count byte
  bool anything_not_ready = false;

  // Retained first: reliability re-sends (identical bytes, deduped by MSN
  // at the AP).
  size_t retained_count = 0;
  for (const StagedAck& s : ps.retained) {
    if (bytes + s.compressed.size() > config_.max_payload_bytes) {
      break;
    }
    bytes += s.compressed.size();
    records.push_back(s.compressed);
    ++retained_count;
  }
  if (retained_count > 0) {
    stats_.retained_resends += retained_count;
  }

  // Then staged ACKs whose DMA latency has elapsed (the Fig 3/4 ready gate).
  size_t promoted = 0;
  for (const StagedAck& s : ps.staged) {
    if (s.held) {
      // Held-back suffix: the aggregation policy has not released these, so
      // they are not eligible for this LL ACK (and do not count as a ready
      // race — nothing about the NIC made them miss the ride).
      break;
    }
    if (s.ready_at > now) {
      anything_not_ready = true;
      break;  // staging is FIFO; later entries are not ready either
    }
    if (bytes + s.compressed.size() > config_.max_payload_bytes) {
      break;
    }
    bytes += s.compressed.size();
    records.push_back(s.compressed);
    ++promoted;
  }

  if (records.empty()) {
    if (anything_not_ready) {
      ++stats_.ready_race_fallbacks;
    }
    return {};
  }

  // Move the promoted staged entries into the retained list.
  for (size_t i = 0; i < promoted; ++i) {
    StagedAck s = std::move(ps.staged.front());
    ps.staged.pop_front();
    if (config_.variant == HackVariant::kOpportunistic &&
        s.vanilla_uid != 0) {
      // Withdraw the racing vanilla copy if it has not been sent yet.
      uint64_t uid = s.vanilla_uid;
      mac_->RemoveQueued(
          to, [uid](const Packet& p) { return p.uid() == uid; });
    }
    ps.retained.push_back(std::move(s));
  }

  stats_.compressed_acks_sent += records.size();
  std::vector<uint8_t> payload = BuildHackPayload(records);
  stats_.compressed_ack_bytes += payload.size();
  return payload;
}

void HackAgent::OnAckPayload(MacAddress from,
                             std::span<const uint8_t> payload) {
  auto split = SplitHackPayload(payload);
  if (!split.has_value()) {
    ++stats_.crc_failures_at_ap;  // malformed counts as a hard failure
    return;
  }
  for (const std::vector<uint8_t>& raw : *split) {
    ByteReader reader(raw);
    auto record = CompressedAckRecord::Deserialize(reader);
    if (!record.has_value()) {
      ++stats_.crc_failures_at_ap;
      continue;
    }
    RohcDecompressor::Result result = decompressors_[from].Decompress(*record);
    switch (result.status) {
      case RohcDecompressor::Status::kOk:
        ++stats_.acks_recovered_at_ap;
        if (forward_decompressed) {
          forward_decompressed(std::move(*result.packet), from);
        }
        break;
      case RohcDecompressor::Status::kDuplicate:
        ++stats_.duplicates_discarded_at_ap;
        break;
      case RohcDecompressor::Status::kNoContext:
      case RohcDecompressor::Status::kStale:
        ++stats_.stale_context_drops;
        break;
      case RohcDecompressor::Status::kCrcFailure:
      case RohcDecompressor::Status::kMalformed:
        ++stats_.crc_failures_at_ap;
        break;
    }
  }
}

// --- AP role ----------------------------------------------------------------------

void HackAgent::NoteReceivedVanillaAck(const Packet& packet, MacAddress from) {
  decompressors_[from].NoteVanillaAck(packet);
}

void HackAgent::NoteReceivedDataSegment(const Packet& packet) {
  if (config_.variant != HackVariant::kTimestampEcho || !packet.has_tcp()) {
    return;
  }
  const TcpHeader& tcp = packet.tcp();
  if (!tcp.timestamps.has_value()) {
    return;
  }
  // Echo of (at least) our last released TSval: the sender has our ACKs —
  // any further data it had queued is on the wire; stop expecting more.
  for (auto& [peer, ps] : peers_) {
    if (ps.echo_outstanding &&
        !Seq32Lt(tcp.timestamps->tsecr, ps.last_released_tsval)) {
      ps.echo_outstanding = false;
    }
  }
}

}  // namespace hacksim
