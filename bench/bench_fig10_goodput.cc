// Figure 10: aggregate steady-state TCP goodput at 150 Mbps for 1/2/4/10
// clients, comparing UDP, TCP/HACK (MORE DATA), TCP/opportunistic-HACK and
// stock TCP/802.11n.
// Paper: UDP ~flat at ~135 Mbps; MORE DATA best (gains 15% at 1 client to
// 22% at 10); opportunistic ~= stock; stock declines slightly with clients.
#include "bench/bench_util.h"

using namespace hacksim;

namespace {

double Run(int n_clients, TransportProto proto, HackVariant hack,
           uint64_t seed) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = n_clients;
  c.proto = proto;
  c.hack = hack;
  c.duration = RunSeconds(5);
  c.seed = seed;
  return RunScenario(c).steady_aggregate_goodput_mbps;
}

}  // namespace

int main() {
  PrintHeader("bench_fig10_goodput",
              "Figure 10 (aggregate goodput vs client count, 150 Mbps)");
  std::printf("%-9s %10s %14s %12s %12s %9s\n", "clients", "UDP",
              "HACK(MoreData)", "HACK(Opp)", "TCP/802.11", "gain%");
  for (int n : {1, 2, 4, 10}) {
    Series udp, more_data, opp, stock;
    for (int seed = 1; seed <= Seeds(); ++seed) {
      udp.Add(Run(n, TransportProto::kUdp, HackVariant::kOff, seed));
      more_data.Add(
          Run(n, TransportProto::kTcp, HackVariant::kMoreData, seed));
      opp.Add(
          Run(n, TransportProto::kTcp, HackVariant::kOpportunistic, seed));
      stock.Add(Run(n, TransportProto::kTcp, HackVariant::kOff, seed));
    }
    std::printf("%-9d %10.1f %14.1f %12.1f %12.1f %8.1f%%\n", n, udp.mean(),
                more_data.mean(), opp.mean(), stock.mean(),
                100.0 * (more_data.mean() / stock.mean() - 1.0));
  }
  std::printf("\npaper: UDP ~135 flat; MoreData gains 15%% (1 client) to "
              "22%% (10); opportunistic ~= stock\n");
  std::printf("see EXPERIMENTS.md for why our 802.11n MoreData gains sit "
              "at the low end of the paper's band\n");
  return 0;
}
