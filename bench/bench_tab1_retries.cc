// Table 1: percentage of frames successfully sent on the first attempt vs
// after one or more retries, for UDP/802.11a, TCP/HACK and TCP/802.11a with
// the AP sending to Client 1, Client 2, and both.
// Paper: no-retry fractions ~99% (UDP), 97-98% (HACK), 86-88% (stock).
#include "bench/bench_util.h"

using namespace hacksim;

namespace {

ScenarioConfig SoraConfig(int n_clients, uint64_t seed) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211a;
  c.data_rate_mbps = 54.0;
  c.n_clients = n_clients;
  c.duration = RunSeconds(10);
  c.seed = seed;
  c.tcp.mss = 1448;
  c.udp_payload_bytes = 1472;
  c.extra_ack_delay = SimTime::Micros(37);
  c.extra_ack_timeout = SimTime::Micros(80);
  c.clients.resize(n_clients);
  c.clients[0].bernoulli_data_loss = 0.02;
  if (n_clients > 1) {
    c.clients[1].bernoulli_data_loss = 0.01;
  }
  return c;
}

// First-attempt fraction of the AP's data MPDUs (downlink, as the paper
// measures the AP sending to the clients).
double ApFirstTry(TransportProto proto, HackVariant hack, int n_clients) {
  double total = 0;
  for (int seed = 1; seed <= Seeds(); ++seed) {
    ScenarioConfig c = SoraConfig(n_clients, seed);
    c.proto = proto;
    c.hack = hack;
    ScenarioResult r = RunScenario(c);
    total += r.ap_mac.FirstTryFraction();
  }
  return total / Seeds();
}

}  // namespace

int main() {
  PrintHeader("bench_tab1_retries",
              "Table 1 (first-attempt vs retried frame fractions)");
  std::printf("%-10s %12s %12s %12s   (paper no-retry: U 99%%, H 97-98%%, "
              "T 86-88%%)\n",
              "target", "UDP/802.11a", "TCP/HACK", "TCP/802.11a");
  const char* labels[] = {"Client 1", "Client 2", "Both"};
  int client_counts[] = {1, 2, 2};
  for (int i = 0; i < 3; ++i) {
    // "Client 1" = AP->C1 only; "Client 2" would be C2 alone (approximated
    // by the 2-client run's AP aggregate for i==1; the per-client AP stats
    // are aggregated, so rows 2 and 3 share a topology).
    int n = client_counts[i];
    double udp = ApFirstTry(TransportProto::kUdp, HackVariant::kOff, n);
    double hack = ApFirstTry(TransportProto::kTcp, HackVariant::kMoreData, n);
    double stock = ApFirstTry(TransportProto::kTcp, HackVariant::kOff, n);
    std::printf("%-10s %10.1f%% %10.1f%% %10.1f%%   no retries\n", labels[i],
                100 * udp, 100 * hack, 100 * stock);
    std::printf("%-10s %10.1f%% %10.1f%% %10.1f%%   1 or more\n", "",
                100 * (1 - udp), 100 * (1 - hack), 100 * (1 - stock));
  }
  return 0;
}
