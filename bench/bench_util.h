// Shared helpers for the experiment-reproduction binaries. Each bench
// regenerates one table or figure from the paper and prints the measured
// series next to the published values where the paper states them.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/scenario/download_scenario.h"

namespace hacksim {

// Benches honour HACKSIM_QUICK=1 to cut run counts/durations (CI smoke).
inline bool QuickMode() {
  const char* env = std::getenv("HACKSIM_QUICK");
  return env != nullptr && std::string(env) == "1";
}

inline int Seeds() { return QuickMode() ? 1 : 3; }
inline SimTime RunSeconds(int full) {
  return SimTime::Seconds(QuickMode() ? 1 : full);
}

struct Series {
  double sum = 0;
  int n = 0;
  void Add(double x) {
    sum += x;
    ++n;
  }
  double mean() const { return n > 0 ? sum / n : 0; }
};

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace hacksim

#endif  // BENCH_BENCH_UTIL_H_
