// Figure 9: SoRa testbed emulation — mean goodput for UDP (U), TCP/HACK (H)
// and TCP/802.11a (T) with one and two clients at 54 Mbps, including SoRa's
// 37 us extra LL-ACK latency and per-client frame loss (C1 2%, C2 1%).
// Paper values: UDP ~26.5, HACK single-client ~25.0, stock ~19.4 Mbps;
// HACK improvement 29% (one client) / 32.2% (two clients).
#include "bench/bench_util.h"

using namespace hacksim;

namespace {

ScenarioConfig SoraConfig(int n_clients, uint64_t seed) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211a;
  c.data_rate_mbps = 54.0;
  c.n_clients = n_clients;
  c.duration = RunSeconds(10);  // paper: 120 s runs (scaled for bench time)
  c.seed = seed;
  c.tcp.mss = 1448;  // 1500 B MTU with timestamps
  c.udp_payload_bytes = 1472;
  c.extra_ack_delay = SimTime::Micros(37);
  c.extra_ack_timeout = SimTime::Micros(80);
  c.clients.resize(n_clients);
  c.clients[0].bernoulli_data_loss = 0.02;  // Client 1 is lossier (§4.2)
  if (n_clients > 1) {
    c.clients[1].bernoulli_data_loss = 0.01;
  }
  return c;
}

}  // namespace

int main() {
  PrintHeader("bench_fig09_sora",
              "Figure 9 (SoRa testbed goodput, U/H/T x {1,2} clients)");
  std::printf("%-9s %-6s", "clients", "proto");
  std::printf(" %10s %10s %10s\n", "client1", "client2", "total");

  double stock_total[3] = {0, 0, 0};
  double hack_total[3] = {0, 0, 0};
  for (int n : {1, 2}) {
    struct Row {
      const char* name;
      TransportProto proto;
      HackVariant hack;
    };
    const Row rows[] = {
        {"U", TransportProto::kUdp, HackVariant::kOff},
        {"H", TransportProto::kTcp, HackVariant::kMoreData},
        {"T", TransportProto::kTcp, HackVariant::kOff},
    };
    for (const Row& row : rows) {
      Series c1, c2, total;
      for (int seed = 1; seed <= Seeds(); ++seed) {
        ScenarioConfig c = SoraConfig(n, seed);
        c.proto = row.proto;
        c.hack = row.hack;
        ScenarioResult r = RunScenario(c);
        c1.Add(r.clients[0].goodput_mbps);
        if (n > 1) {
          c2.Add(r.clients[1].goodput_mbps);
        }
        total.Add(r.aggregate_goodput_mbps);
      }
      std::printf("%-9d %-6s %10.1f %10.1f %10.1f\n", n, row.name,
                  c1.mean(), n > 1 ? c2.mean() : 0.0, total.mean());
      if (row.hack == HackVariant::kMoreData) {
        hack_total[n] = total.mean();
      } else if (row.proto == TransportProto::kTcp) {
        stock_total[n] = total.mean();
      }
    }
  }
  std::printf("\nHACK improvement: one client %.1f%% (paper: 29%%), "
              "two clients %.1f%% (paper: 32.2%%)\n",
              100.0 * (hack_total[1] / stock_total[1] - 1.0),
              100.0 * (hack_total[2] / stock_total[2] - 1.0));
  std::printf("paper reference bars: UDP ~26.5, TCP/HACK ~25.0, "
              "TCP/802.11a ~19.4 Mbps\n");
  return 0;
}
