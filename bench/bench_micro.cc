// Microbenchmarks (google-benchmark) for the hot paths a NIC/driver would
// care about: ROHC compression/decompression, MD5 CID derivation, the
// discrete-event scheduler, and DCF grant machinery.
#include <benchmark/benchmark.h>

#include "src/net/address.h"
#include "src/rohc/rohc.h"
#include "src/sim/scheduler.h"
#include "src/util/md5.h"

namespace hacksim {
namespace {

Packet MakeAck(uint32_t ack) {
  TcpHeader tcp;
  tcp.src_port = 6000;
  tcp.dst_port = 5000;
  tcp.seq = 1;
  tcp.ack = ack;
  tcp.flag_ack = true;
  tcp.window = 32768;
  tcp.timestamps = TcpTimestamps{100, 200};
  return Packet::MakeTcp(Ipv4Address::FromOctets(10, 0, 2, 1),
                         Ipv4Address::FromOctets(10, 0, 0, 1), tcp, 0);
}

void BM_RohcCompressSteadyStream(benchmark::State& state) {
  RohcCompressor comp;
  uint32_t ack = 1000;
  (void)comp.Compress(MakeAck(ack));
  for (auto _ : state) {
    ack += 2920;
    benchmark::DoNotOptimize(comp.Compress(MakeAck(ack)));
  }
}
BENCHMARK(BM_RohcCompressSteadyStream);

void BM_RohcRoundTrip(benchmark::State& state) {
  RohcCompressor comp;
  RohcDecompressor decomp;
  uint32_t ack = 1000;
  decomp.NoteVanillaAck(MakeAck(ack));
  for (auto _ : state) {
    ack += 2920;
    auto r = comp.Compress(MakeAck(ack));
    ByteReader reader(r.bytes);
    auto rec = CompressedAckRecord::Deserialize(reader);
    benchmark::DoNotOptimize(decomp.Decompress(*rec));
  }
}
BENCHMARK(BM_RohcRoundTrip);

void BM_Md5Cid(benchmark::State& state) {
  // Fresh tuple each iteration: RohcCid() memoises per object, and this
  // bench measures the cold MD5 derivation.
  uint16_t port = 6000;
  for (auto _ : state) {
    FiveTuple t{Ipv4Address::FromOctets(10, 0, 2, 1),
                Ipv4Address::FromOctets(10, 0, 0, 1), ++port, 5000, 6};
    benchmark::DoNotOptimize(t.RohcCid());
  }
}
BENCHMARK(BM_Md5Cid);

void BM_Md5CidMemoised(benchmark::State& state) {
  FiveTuple t{Ipv4Address::FromOctets(10, 0, 2, 1),
              Ipv4Address::FromOctets(10, 0, 0, 1), 6000, 5000, 6};
  (void)t.RohcCid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.RohcCid());
  }
}
BENCHMARK(BM_Md5CidMemoised);

void BM_Md5Hash1K(benchmark::State& state) {
  std::vector<uint8_t> data(1024, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Md5Hash1K);

void BM_SchedulerChurn(benchmark::State& state) {
  Scheduler sched;
  uint64_t n = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      sched.ScheduleIn(SimTime::Micros(1 + i % 7), [&n]() { ++n; });
    }
    sched.Run();
  }
  benchmark::DoNotOptimize(n);
}
BENCHMARK(BM_SchedulerChurn);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  Scheduler sched;
  for (auto _ : state) {
    std::vector<EventId> ids;
    ids.reserve(64);
    for (int i = 0; i < 64; ++i) {
      ids.push_back(sched.ScheduleIn(SimTime::Micros(5), []() {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      sched.Cancel(ids[i]);
    }
    sched.Run();
  }
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_HeaderSerializeTcpAck(benchmark::State& state) {
  Packet p = MakeAck(123456);
  for (auto _ : state) {
    ByteWriter w;
    p.ip().Serialize(w);
    p.tcp().Serialize(w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
}
BENCHMARK(BM_HeaderSerializeTcpAck);

}  // namespace
}  // namespace hacksim

BENCHMARK_MAIN();
