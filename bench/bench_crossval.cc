// §4.2 cross-validation: the paper validates SoRa against ns-3 by matching
// loss rates and accounting for SoRa's extra LL-ACK delay. We reproduce the
// experiment pair: identical runs with the delay on and off.
// Paper: stock 22.4 (ns-3) vs 19.6 -> 22 corrected (SoRa); HACK 28 (ns-3)
// vs 25.5 -> 27.7 corrected (SoRa).
#include "bench/bench_util.h"

using namespace hacksim;

namespace {

double Run(HackVariant hack, bool sora_delay, double loss, uint64_t seed) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211a;
  c.data_rate_mbps = 54.0;
  c.n_clients = 1;
  c.hack = hack;
  c.duration = RunSeconds(10);
  c.tcp.mss = 1448;
  c.seed = seed;
  c.clients.resize(1);
  c.clients[0].bernoulli_data_loss = loss;
  if (sora_delay) {
    c.extra_ack_delay = SimTime::Micros(37);
    c.extra_ack_timeout = SimTime::Micros(80);
  }
  return RunScenario(c).aggregate_goodput_mbps;
}

}  // namespace

int main() {
  PrintHeader("bench_crossval",
              "Section 4.2 cross-validation (SoRa vs ns-3 recipe)");
  std::printf("%-12s %16s %16s\n", "", "no LL-ACK delay", "37us LL-ACK "
                                                          "delay");
  struct Row {
    const char* name;
    HackVariant hack;
    double loss;
  };
  // The paper matches the observed per-run loss rates (12% of frames saw a
  // retry under stock — mostly collisions, which our simulator generates
  // itself — plus ~2% channel loss; HACK ran at ~2%).
  for (const Row& row : {Row{"TCP/802.11a", HackVariant::kOff, 0.02},
                         Row{"TCP/HACK", HackVariant::kMoreData, 0.02}}) {
    Series clean, delayed;
    for (int seed = 1; seed <= Seeds(); ++seed) {
      clean.Add(Run(row.hack, false, row.loss, seed));
      delayed.Add(Run(row.hack, true, row.loss, seed));
    }
    std::printf("%-12s %13.1f    %13.1f\n", row.name, clean.mean(),
                delayed.mean());
  }
  std::printf("\npaper: stock 22.4 (sim) vs 19.6/22.0 (SoRa raw/corrected); "
              "hack 28.0 vs 25.5/27.7\n");
  std::printf("the delay-off column plays the ns-3 role; delay-on plays "
              "SoRa's raw measurement\n");
  return 0;
}
