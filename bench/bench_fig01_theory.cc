// Figure 1(a)/(b): theoretical goodput of TCP vs TCP/HACK across PHY rates,
// plus the §1/§2 headline numbers (110.5 us mean acquisition, 9% efficiency
// for single frames at 600 Mbps, 42-MPDU batches).
#include "bench/bench_util.h"
#include "src/analysis/capacity_model.h"

using namespace hacksim;

int main() {
  PrintHeader("bench_fig01_theory",
              "Figure 1(a), Figure 1(b); Section 1/2 constants");

  std::printf("headline constants:\n");
  std::printf("  mean 802.11n acquisition overhead : %.1f us (paper: 110.5)\n",
              MeanAcquisitionOverhead(WifiStandard::k80211n).ToMicrosF());
  CapacityParams p600;
  p600.standard = WifiStandard::k80211n;
  p600.data_mode = ModeForRate(Modes80211nExtended(), 600);
  std::printf("  single-frame efficiency @600 Mbps : %.1f %% (paper: ~9%%)\n",
              100.0 * SingleFrameEfficiency(p600));
  CapacityParams p150;
  p150.standard = WifiStandard::k80211n;
  p150.data_mode = ModeForRate(Modes80211n(), 150);
  std::printf("  A-MPDU capacity (1460 B payloads) : %d MPDUs (paper: 42)\n\n",
              AmpduDataMpdus(p150));

  std::printf("Figure 1(a) - 802.11a theoretical goodput (Mbps)\n");
  std::printf("%8s %14s %14s %8s\n", "phy", "TCP/802.11a", "TCP/HACK",
              "gain%");
  for (const WifiMode& mode : Modes80211a()) {
    CapacityParams p;
    p.standard = WifiStandard::k80211a;
    p.data_mode = mode;
    double stock = TcpGoodputMbps(p);
    double hack = TcpHackGoodputMbps(p);
    std::printf("%8.0f %14.2f %14.2f %7.1f%%\n", mode.rate_mbps(), stock,
                hack, 100.0 * (hack / stock - 1.0));
  }

  std::printf("\nFigure 1(b) - 802.11n theoretical goodput (Mbps)\n");
  std::printf("%8s %14s %14s %8s\n", "phy", "TCP/802.11n", "TCP/HACK",
              "gain%");
  double low_rate_gain_sum = 0;
  int low_rate_count = 0;
  for (const WifiMode& mode : Modes80211nExtended()) {
    CapacityParams p;
    p.standard = WifiStandard::k80211n;
    p.data_mode = mode;
    double stock = TcpGoodputMbps(p);
    double hack = TcpHackGoodputMbps(p);
    double gain = hack / stock - 1.0;
    if (mode.rate_mbps() < 100) {
      low_rate_gain_sum += gain;
      ++low_rate_count;
    }
    std::printf("%8.0f %14.2f %14.2f %7.1f%%\n", mode.rate_mbps(), stock,
                hack, 100.0 * gain);
  }
  std::printf("\nmean gain below 100 Mbps: %.1f%% (paper caption: ~8%%)\n",
              100.0 * low_rate_gain_sum / low_rate_count);
  std::printf("gain at 600 Mbps        : see row above (paper: ~20%%)\n");
  return 0;
}
