// Figure 11: average TCP goodput envelope over SNR for each 802.11n rate
// {15..150} Mbps, TCP/HACK vs TCP/802.11n, using the distance-based SNR
// loss model; plus the per-SNR percentage improvement of the envelopes.
// Paper: HACK improves goodput by ~12.6% on average across SNRs; no
// decompression CRC failures anywhere.
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"

using namespace hacksim;

namespace {

double RunAt(double rate_mbps, double distance_m, HackVariant hack,
             uint64_t seed, uint64_t* crc_failures) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = rate_mbps;
  c.n_clients = 1;
  c.hack = hack;
  c.duration = RunSeconds(3);
  c.seed = seed;
  c.snr = SnrLossModel::Params{};
  c.clients.resize(1);
  c.clients[0].distance_m = distance_m;
  ScenarioResult r = RunScenario(c);
  *crc_failures += r.crc_failures;
  return r.aggregate_goodput_mbps;
}

}  // namespace

int main() {
  PrintHeader("bench_fig11_snr",
              "Figure 11 (goodput envelope vs SNR; % improvement)");

  SnrLossModel snr_model;
  // Distances spanning SNR ~30 dB down to ~4 dB.
  std::vector<double> distances = {3, 6, 10, 16, 25, 40, 60};
  if (QuickMode()) {
    distances = {3, 16, 60};
  }
  std::vector<double> rates = {15, 30, 45, 60, 90, 120, 135, 150};
  if (QuickMode()) {
    rates = {15, 60, 150};
  }

  uint64_t crc_failures = 0;
  std::printf("%8s %8s | per-rate TCP/HACK goodput (Mbps), envelope in "
              "last columns\n",
              "dist(m)", "SNR(dB)");
  std::printf("%8s %8s |", "", "");
  for (double r : rates) {
    std::printf(" %5.0f", r);
  }
  std::printf(" | %8s %8s %6s\n", "env:HACK", "env:TCP", "gain");

  Series improvements;
  for (double d : distances) {
    std::printf("%8.0f %8.1f |", d, snr_model.SnrDbAt(d));
    double best_hack = 0;
    double best_stock = 0;
    for (double rate : rates) {
      Series hack;
      for (int seed = 1; seed <= Seeds(); ++seed) {
        hack.Add(RunAt(rate, d, HackVariant::kMoreData, seed,
                       &crc_failures));
      }
      std::printf(" %5.1f", hack.mean());
      best_hack = std::max(best_hack, hack.mean());
    }
    for (double rate : rates) {
      Series stock;
      for (int seed = 1; seed <= Seeds(); ++seed) {
        stock.Add(
            RunAt(rate, d, HackVariant::kOff, seed, &crc_failures));
      }
      best_stock = std::max(best_stock, stock.mean());
    }
    double gain = best_stock > 0.5
                      ? 100.0 * (best_hack / best_stock - 1.0)
                      : 0.0;
    if (best_stock > 0.5) {
      improvements.Add(gain);
    }
    std::printf(" | %8.1f %8.1f %5.1f%%\n", best_hack, best_stock, gain);
  }
  std::printf("\nmean envelope improvement across SNRs: %.1f%% "
              "(paper: 12.6%%)\n",
              improvements.mean());
  std::printf("decompression CRC failures across the sweep: %llu "
              "(paper: 0)\n",
              static_cast<unsigned long long>(crc_failures));
  return 0;
}
