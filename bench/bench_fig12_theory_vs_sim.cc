// Figure 12: theoretical vs simulated goodput for TCP/802.11n and TCP/HACK
// at each 802.11n rate. The paper's observations to reproduce: simulated
// values fall below theory (collisions/retries/congestion control), and the
// simulated HACK improvement *exceeds* the analytical prediction (stock
// suffers ACK/data collisions that HACK sidesteps) — 14% vs 7% at 150 Mbps.
#include "bench/bench_util.h"
#include "src/analysis/capacity_model.h"

using namespace hacksim;

namespace {

double Sim(double rate, HackVariant hack, uint64_t seed) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = rate;
  c.n_clients = 1;
  c.hack = hack;
  c.duration = RunSeconds(5);
  c.seed = seed;
  return RunScenario(c).steady_aggregate_goodput_mbps;
}

}  // namespace

int main() {
  PrintHeader("bench_fig12_theory_vs_sim",
              "Figure 12 (analytical vs simulated goodput per rate)");
  std::printf("%6s %12s %10s %12s %10s %12s\n", "rate", "theor.TCP",
              "sim.TCP", "theor.HACK", "sim.HACK", "sim gain");
  std::vector<double> rates = {15, 30, 45, 60, 90, 120, 135, 150};
  if (QuickMode()) {
    rates = {15, 90, 150};
  }
  for (double rate : rates) {
    CapacityParams p;
    p.standard = WifiStandard::k80211n;
    p.data_mode = ModeForRate(Modes80211n(), rate);
    double theory_stock = TcpGoodputMbps(p);
    double theory_hack = TcpHackGoodputMbps(p);
    Series sim_stock, sim_hack;
    for (int seed = 1; seed <= Seeds(); ++seed) {
      sim_stock.Add(Sim(rate, HackVariant::kOff, seed));
      sim_hack.Add(Sim(rate, HackVariant::kMoreData, seed));
    }
    std::printf("%6.0f %12.1f %10.1f %12.1f %10.1f %11.1f%%\n", rate,
                theory_stock, sim_stock.mean(), theory_hack,
                sim_hack.mean(),
                100.0 * (sim_hack.mean() / sim_stock.mean() - 1.0));
  }
  std::printf("\npaper: simulated < theoretical at every rate; simulated "
              "HACK gain (14%% @150) exceeds the 7%% analytical gain\n");
  return 0;
}
