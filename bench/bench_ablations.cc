// Ablations beyond the paper's own comparisons:
//  * protocol variant sweep, including the explicit-timer strawman (§3.2)
//    and the §5 future-work timestamp-echo design,
//  * driver->NIC staging-latency sensitivity (the Fig 3/4 ready race),
//  * per-LL-ACK payload budget (footnote 7's split-vs-risk tradeoff),
//  * A-MPDU/TXOP cap sweep (aggregation's interaction with HACK, §5),
//  * upload-direction symmetry (§3.1's Time Capsule use case).
#include "bench/bench_util.h"

using namespace hacksim;

namespace {

ScenarioConfig Base(uint64_t seed) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = 1;
  c.duration = RunSeconds(4);
  c.seed = seed;
  return c;
}

double Mean(const std::function<ScenarioConfig(uint64_t)>& make) {
  Series s;
  for (int seed = 1; seed <= Seeds(); ++seed) {
    s.Add(RunScenario(make(seed)).steady_aggregate_goodput_mbps);
  }
  return s.mean();
}

}  // namespace

int main() {
  PrintHeader("bench_ablations",
              "design-choice ablations (variants, staging latency, payload "
              "budget, TXOP, upload)");

  std::printf("variant sweep (802.11n 150 Mbps, steady goodput Mbps):\n");
  struct VariantRow {
    const char* name;
    HackVariant v;
  };
  for (const VariantRow& row :
       {VariantRow{"stock", HackVariant::kOff},
        VariantRow{"more-data", HackVariant::kMoreData},
        VariantRow{"opportunistic", HackVariant::kOpportunistic},
        VariantRow{"explicit-timer", HackVariant::kExplicitTimer},
        VariantRow{"timestamp-echo", HackVariant::kTimestampEcho}}) {
    double g = Mean([&](uint64_t seed) {
      ScenarioConfig c = Base(seed);
      c.hack = row.v;
      return c;
    });
    std::printf("  %-15s %6.1f\n", row.name, g);
  }

  std::printf("\nstaging latency sweep (MORE DATA variant):\n");
  for (int us : {0, 30, 100, 500, 2000}) {
    double g = Mean([&](uint64_t seed) {
      ScenarioConfig c = Base(seed);
      c.hack = HackVariant::kMoreData;
      c.hack_config.staging_latency = SimTime::Micros(us);
      return c;
    });
    std::printf("  %5d us %6.1f\n", us, g);
  }

  std::printf("\npayload budget sweep (bytes per LL ACK):\n");
  for (size_t cap : {40u, 80u, 120u, 240u, 480u}) {
    double g = Mean([&](uint64_t seed) {
      ScenarioConfig c = Base(seed);
      c.hack = HackVariant::kMoreData;
      c.hack_config.max_payload_bytes = cap;
      return c;
    });
    std::printf("  %5zu B %6.1f\n", cap, g);
  }

  std::printf("\nTXOP limit sweep (aggregation cap, stock vs hack):\n");
  for (int ms : {1, 2, 4}) {
    double stock = Mean([&](uint64_t seed) {
      ScenarioConfig c = Base(seed);
      c.txop_limit = SimTime::Millis(ms);
      return c;
    });
    double hack = Mean([&](uint64_t seed) {
      ScenarioConfig c = Base(seed);
      c.hack = HackVariant::kMoreData;
      c.txop_limit = SimTime::Millis(ms);
      return c;
    });
    std::printf("  %d ms  stock %6.1f  hack %6.1f  gain %+.1f%%  "
                "(shorter TXOPs -> HACK claws back more, §5)\n",
                ms, stock, hack, 100.0 * (hack / stock - 1.0));
  }

  std::printf("\nupload direction (wireless backup, §3.1):\n");
  {
    double stock = Mean([&](uint64_t seed) {
      ScenarioConfig c = Base(seed);
      c.upload = true;
      return c;
    });
    double hack = Mean([&](uint64_t seed) {
      ScenarioConfig c = Base(seed);
      c.upload = true;
      c.hack = HackVariant::kMoreData;
      return c;
    });
    std::printf("  stock %6.1f  hack %6.1f  gain %+.1f%%\n", stock, hack,
                100.0 * (hack / stock - 1.0));
  }
  return 0;
}
