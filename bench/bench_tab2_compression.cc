// Table 2: conventional vs compressed ACK counts and bytes for a 25 MB
// transfer at 54 Mbps, and the resulting ROHC compression ratio.
// Paper: TCP/802.11a sends 9060 ACKs / 471120 B; TCP/HACK sends ~10
// vanilla ACKs (520 B) and 9050 compressed ACKs (39478 B), ratio 12x.
#include "bench/bench_util.h"

using namespace hacksim;

namespace {

ScenarioConfig TransferConfig(HackVariant hack) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211a;
  c.data_rate_mbps = 54.0;
  c.n_clients = 1;
  c.hack = hack;
  c.file_bytes = QuickMode() ? 5'000'000 : 25'000'000;
  c.duration = SimTime::Seconds(60);  // completion bound
  c.tcp.mss = 1448;
  c.seed = 7;
  return c;
}

}  // namespace

int main() {
  PrintHeader("bench_tab2_compression",
              "Table 2 (ACK counts/bytes and ROHC compression ratio, "
              "25 MB transfer)");

  ScenarioResult stock = RunScenario(TransferConfig(HackVariant::kOff));
  ScenarioResult hack = RunScenario(TransferConfig(HackVariant::kMoreData));

  const MacStats& sm = stock.clients[0].mac;
  const HackStats& hh = hack.clients[0].hack;

  std::printf("%-14s %10s %12s %10s %12s %8s\n", "", "ACK cnt", "ACK bytes",
              "ACKC cnt", "ACKC bytes", "ratio");
  std::printf("%-14s %10llu %12llu %10d %12d %8s\n", "TCP/802.11a",
              static_cast<unsigned long long>(sm.tcp_ack_frames_sent),
              static_cast<unsigned long long>(sm.tcp_ack_bytes_sent), 0, 0,
              "(1)");
  std::printf("%-14s %10llu %12llu %10llu %12llu %8.1f\n", "TCP/HACK",
              static_cast<unsigned long long>(hh.vanilla_acks_sent),
              static_cast<unsigned long long>(hh.vanilla_ack_bytes),
              static_cast<unsigned long long>(hh.unique_compressed_acks),
              static_cast<unsigned long long>(hh.unique_compressed_bytes),
              hh.CompressionRatio());
  std::printf("\npaper row (25 MB): TCP/802.11a 9060 ACKs / 471120 B; "
              "TCP/HACK 10 / 520 B vanilla + 9050 / 39478 B compressed "
              "(ratio 12)\n");
  std::printf("bytes per compressed ACK: %.2f (paper: 4.36)\n",
              hh.unique_compressed_acks > 0
                  ? static_cast<double>(hh.unique_compressed_bytes) /
                        hh.unique_compressed_acks
                  : 0.0);
  std::printf("transfer completion: stock %.1f s, hack %.1f s "
              "(%llu B delivered each)\n",
              stock.clients[0].completion_time.ToSecondsF(),
              hack.clients[0].completion_time.ToSecondsF(),
              static_cast<unsigned long long>(
                  hack.clients[0].bytes_delivered));
  return 0;
}
