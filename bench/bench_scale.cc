// Dense-cell scaling sweep: station count x transport x HACK, on the
// batched-delivery + StationTable path. Locks in the ROADMAP's
// "millions of users" direction by measuring how cost-per-simulated-second
// and per-PPDU scheduler event count behave as the cell grows 10 -> 100 ->
// 1000 stations, and fails (exit 1) if the dense-cell path stops
// delivering — so CI's 100-station quick pass gates scaling regressions.
//
// Columns:
//   goodput    aggregate over the run, Mbps
//   events     scheduler events executed
//   ev/ppdu    events per PPDU on the air — batched delivery keeps the
//              channel's share flat, and lazy NAV/DCF re-arm removed the
//              per-station timer fan-out that used to dominate dense cells
//   chan/dcf/nav/mac/tpt
//              the same quantity split by event class (channel edges, DCF
//              grants, NAV expiry, MAC timeouts+responses, transport
//              timers), so regressions can be attributed per subsystem
//   wall       host milliseconds
//   ev/s       events per wall-clock second (engine throughput)
//
// Usage: bench_scale [--json PATH]
// Honours HACKSIM_QUICK=1 (CI): 10/100 stations only, shorter runs.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace hacksim;

namespace {

struct ScaleRow {
  int stations;
  const char* proto;
  const char* hack;
  double goodput_mbps;
  uint64_t bytes;
  uint64_t events;
  uint64_t ppdus;
  double events_per_ppdu;
  double wall_ms;
  double sim_seconds;
  // Per-PPDU event counts by class (EventClass order).
  double per_ppdu_class[kEventClassCount] = {};
};

ScaleRow RunOne(int stations, TransportProto proto, HackVariant hack) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = stations;
  c.proto = proto;
  c.hack = hack;
  // Scale sim time down with station count so the full sweep stays
  // tractable; the quantities of interest (events/ppdu, ev/s) are rates.
  int64_t millis = QuickMode() ? 250 : (stations >= 1000 ? 500 : 2000);
  c.duration = SimTime::Millis(millis);
  // The default 250 ms stagger assumes a handful of clients; pack starts
  // into the first fifth of the run instead.
  c.start_stagger = SimTime::Nanos(millis * 1'000'000 / (5 * stations));
  c.seed = 1;

  auto t0 = std::chrono::steady_clock::now();
  ScenarioResult r = RunScenario(c);
  auto t1 = std::chrono::steady_clock::now();

  ScaleRow row;
  row.stations = stations;
  row.proto = proto == TransportProto::kUdp ? "udp" : "tcp";
  row.hack = hack == HackVariant::kOff ? "off" : "moredata";
  row.goodput_mbps = r.aggregate_goodput_mbps;
  row.bytes = 0;
  for (const ClientResult& cr : r.clients) {
    row.bytes += cr.bytes_delivered;
  }
  row.events = r.events_executed;
  row.ppdus = r.airtime.ppdus;
  row.events_per_ppdu =
      r.airtime.ppdus > 0
          ? static_cast<double>(r.events_executed) /
                static_cast<double>(r.airtime.ppdus)
          : 0.0;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.sim_seconds = c.duration.ToSecondsF();
  for (size_t i = 0; i < kEventClassCount; ++i) {
    row.per_ppdu_class[i] =
        r.airtime.ppdus > 0
            ? static_cast<double>(r.events_by_class[i]) /
                  static_cast<double>(r.airtime.ppdus)
            : 0.0;
  }

  if (r.crc_failures != 0) {
    std::fprintf(stderr, "FAIL: %d-station %s/%s run had %llu CRC failures\n",
                 stations, row.proto, row.hack,
                 static_cast<unsigned long long>(r.crc_failures));
    std::exit(1);
  }
  if (row.bytes == 0) {
    std::fprintf(stderr,
                 "FAIL: %d-station %s/%s run delivered zero bytes\n",
                 stations, row.proto, row.hack);
    std::exit(1);
  }
  return row;
}

void WriteJson(const std::string& path, const std::vector<ScaleRow>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_scale\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"stations\": %d, \"proto\": \"%s\", \"hack\": \"%s\", "
        "\"goodput_mbps\": %.3f, \"bytes\": %llu, \"events\": %llu, "
        "\"ppdus\": %llu, \"events_per_ppdu\": %.2f, "
        "\"per_ppdu_other\": %.2f, \"per_ppdu_channel\": %.2f, "
        "\"per_ppdu_dcf\": %.2f, \"per_ppdu_nav\": %.2f, "
        "\"per_ppdu_mac\": %.2f, \"per_ppdu_transport\": %.2f, "
        "\"wall_ms\": %.1f, \"sim_seconds\": %.3f}%s\n",
        r.stations, r.proto, r.hack, r.goodput_mbps,
        static_cast<unsigned long long>(r.bytes),
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.ppdus), r.events_per_ppdu,
        r.per_ppdu_class[0], r.per_ppdu_class[1], r.per_ppdu_class[2],
        r.per_ppdu_class[3], r.per_ppdu_class[4], r.per_ppdu_class[5],
        r.wall_ms, r.sim_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  PrintHeader("bench_scale",
              "dense-cell scaling (ROADMAP north star, not a paper figure)");
  std::vector<int> station_counts = QuickMode()
                                        ? std::vector<int>{10, 100}
                                        : std::vector<int>{10, 100, 1000};
  struct Workload {
    TransportProto proto;
    HackVariant hack;
  };
  const Workload workloads[] = {
      {TransportProto::kUdp, HackVariant::kOff},
      {TransportProto::kTcp, HackVariant::kOff},
      {TransportProto::kTcp, HackVariant::kMoreData},
  };

  std::printf("%-9s %-6s %-9s %9s %12s %9s %9s %7s %7s %7s %7s %7s %10s %10s\n",
              "stations", "proto", "hack", "goodput", "events", "ppdus",
              "ev/ppdu", "chan", "dcf", "nav", "mac", "tpt", "wall_ms",
              "ev/s");
  std::vector<ScaleRow> rows;
  for (int n : station_counts) {
    for (const Workload& w : workloads) {
      ScaleRow r = RunOne(n, w.proto, w.hack);
      double evps = r.wall_ms > 0 ? r.events / (r.wall_ms / 1000.0) : 0;
      std::printf(
          "%-9d %-6s %-9s %9.1f %12llu %9llu %9.1f %7.1f %7.1f %7.1f %7.1f "
          "%7.1f %10.1f %9.2fM\n",
          r.stations, r.proto, r.hack, r.goodput_mbps,
          static_cast<unsigned long long>(r.events),
          static_cast<unsigned long long>(r.ppdus), r.events_per_ppdu,
          r.per_ppdu_class[1], r.per_ppdu_class[2], r.per_ppdu_class[3],
          r.per_ppdu_class[4], r.per_ppdu_class[5], r.wall_ms, evps / 1e6);
      rows.push_back(r);
    }
  }
  if (!json_path.empty()) {
    WriteJson(json_path, rows);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::printf(
      "\nwith batched delivery + lazy NAV/DCF re-arm, ev/ppdu is dominated "
      "by the\nchannel share (bounded by the cell's distinct propagation "
      "delays);\nthe class columns attribute any future growth\n");
  return 0;
}
