// Dense-cell scaling sweep: station count x transport x HACK, on the
// batched-delivery + StationTable path. Locks in the ROADMAP's
// "millions of users" direction by measuring how cost-per-simulated-second
// and per-PPDU scheduler event count behave as the cell grows 10 -> 100 ->
// 1000 stations, and fails (exit 1) if the dense-cell path stops
// delivering — so CI's 100-station quick pass gates scaling regressions.
//
// Columns:
//   goodput    aggregate over the run, Mbps
//   events     scheduler events executed
//   ev/ppdu    events per PPDU on the air — batched delivery keeps the
//              channel's share flat, and lazy NAV/DCF re-arm removed the
//              per-station timer fan-out that used to dominate dense cells
//   chan/dcf/nav/mac/tpt
//              the same quantity split by event class (channel edges, DCF
//              grants, NAV expiry, MAC timeouts+responses, transport
//              timers), so regressions can be attributed per subsystem
//   collis     transmissions that began during another (collision count)
//   cts_to     CTS timeouts summed over every MAC (RTS rows only)
//   ovl        receptions killed by overlapping energy, summed over every
//              PHY (geometric-channel rows; hidden collisions land here)
//   wall       host milliseconds
//   ev/s       events per wall-clock second (engine throughput)
//
// Usage: bench_scale [--json PATH] [--jobs=N] [--repeats=N]
//   --jobs=N     fan independent runs across N workers (0 = all hardware
//                threads, the default). Every run's output is bit-identical
//                at any jobs level — the campaign engine derives run seeds
//                from the matrix position, never from scheduling.
//   --repeats=N  replicate seeds per row (default 5), 1000-station rows
//                included. Repeat 0 is the legacy seed=1 run and fills the
//                legacy columns byte-identically; repeats > 1 add
//                goodput_mean_mbps / goodput_ci95_mbps (and a post-fault
//                mean on fault rows) across the replicates.
// Honours HACKSIM_QUICK=1 (CI): 10/100 stations only, shorter runs, and
// only the quick pair (w0/w1ms) of the ACK-aggregation ablation rows — the
// full window sweep plus the EDCA-interaction pair run in the weekly
// full-matrix job.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/scenario/campaign.h"
#include "src/sim/random.h"
#include "src/util/stats.h"

using namespace hacksim;

namespace {

struct Workload {
  // Row label for the table/JSON "proto" column (the goodput gate keys on
  // it: "udp" is the collapse baseline, "udp-rts" the gated recovery row).
  const char* label;
  TransportProto proto;
  HackVariant hack;
  bool upload = false;
  size_t rts_threshold = 0;  // 0 = handshake off
  bool rate_adapt = false;
  // Aggregate UDP offered load override (0 = the scenario default). The
  // uplink rows saturate every contender — the Bianchi-style dense-cell
  // regime where per-station backlogs keep A-MPDUs full and the collision
  // cost, not aggregation starvation, decides goodput.
  double udp_rate_bps = 0.0;
  // Station placement; anything but kRing also engages the geometric
  // channel (log-distance propagation, range-limited decode, SINR capture).
  Topology topology = Topology::kRing;
  // The unprotected hidden-terminal row may legitimately deliver nothing
  // at scale (every frame eats a blind collision at the AP — the measured
  // result, not a simulator bug); the recovery row must still deliver, so
  // the zero-byte guard stays armed everywhere else.
  bool allow_zero_bytes = false;
  // Fault-plan preset ("churn" | "apout"); nullptr = fault-free. Fault rows
  // run with the liveness watchdog armed in abort mode, so a wedged cell
  // fails the bench loudly instead of producing a quiet bad number.
  const char* fault = nullptr;
  // Mixed-workload traffic zoo: replaces the uniform CBR sources with a
  // voice/web mix (10% VO-tagged voice stations, 90% heavy-tailed web) and
  // turns on the per-AC latency columns. The rate scale keeps the web
  // offered load saturating (~128 Mbps) at every station count.
  bool mixed_traffic = false;
  // 802.11e EDCA on every MAC (four per-AC engines + queues). The VO-p99
  // gate compares the mixed row pair with this off vs on.
  bool edca = false;
  // --- ACK-aggregation ablation ---------------------------------------------
  // HackAckPolicy flush window in microseconds (0 = policy structurally
  // absent). The w0 ablation row must stay byte-identical to the plain
  // tcp/moredata row — check_bench_gates.py enforces it.
  int64_t ack_window_us = 0;
  // DSCP stamped on the TCP flows (0xC0 → VO under EDCA; 0 = legacy BE).
  uint8_t tcp_tos = 0;
  // Emit the HACK-detail JSON columns (compression ratio vs paper Table 2,
  // batch counters) for this row.
  bool hack_detail = false;
  // Skip this row in HACKSIM_QUICK mode: the full ablation sweep rides the
  // weekly full-matrix job; push CI runs only the quick w0/w1ms pair.
  bool full_only = false;
  // Replicate-seed alias: seeds derive from (stations, seed_group) instead
  // of this row's own index, so paired rows (w0 vs tcp/moredata, the EDCA
  // ablation pair) see identical RNG streams and compare run-for-run.
  // SIZE_MAX = use the row's own workload index.
  size_t seed_group = SIZE_MAX;
};

struct ScaleRow {
  int stations;
  const char* proto;
  const char* hack;
  double goodput_mbps;
  uint64_t bytes;
  uint64_t events;
  uint64_t ppdus;
  double events_per_ppdu;
  double wall_ms;
  double sim_seconds;
  // Per-PPDU event counts by class (EventClass order).
  double per_ppdu_class[kEventClassCount] = {};
  // Dense-cell MAC behaviour (summed over AP + clients).
  uint64_t collisions = 0;
  uint64_t rts_sent = 0;
  uint64_t cts_timeouts = 0;
  // Geometric-channel behaviour (zero on the legacy fixed-loss rows).
  uint64_t captures = 0;        // decoded despite overlap (summed, all PHYs)
  uint64_t overlap_losses = 0;  // receptions killed by overlap
  uint64_t out_of_range = 0;    // (sender, receiver) pairs pruned below ED
  // Fault rows only: goodput over the window after the last recovery event
  // (AP restart / final rejoin) — check_bench_gates.py requires it to reach
  // >= 50% of the matching fault-free "udp" row.
  bool has_fault = false;
  uint64_t fault_events = 0;
  double post_fault_goodput_mbps = 0.0;
  // Mixed-traffic rows only: per-AC enqueue→delivery latency (ms). Emitted
  // to JSON per AC with samples, so legacy rows stay byte-identical.
  bool has_latency = false;
  LatencySummary ac_latency[kNumAcs];
  // HACK-detail rows only (the ACK-aggregation ablation): cell-wide
  // compression ratio (vs paper Table 2's 52-byte vanilla ACK) and batch
  // counters. Emitted to JSON only when has_hack_detail, so legacy rows
  // stay byte-identical.
  bool has_hack_detail = false;
  double hack_compression_ratio = 0.0;
  uint64_t hack_ack_batches = 0;
  double hack_acks_per_flush = 0.0;
  // Validated on the main thread after the parallel fan-out (a worker must
  // not std::exit while its siblings run).
  uint64_t crc_failures = 0;
  // Replicate-seed aggregation (repeat 0 = the legacy seed=1 run, which
  // alone fills the legacy columns above). Emitted only when repeats > 1 so
  // single-seed output stays byte-identical to the historical format.
  int repeats = 1;
  double goodput_mean_mbps = 0.0;
  double goodput_ci95_mbps = 0.0;
  double post_fault_goodput_mean_mbps = 0.0;
};

ScaleRow RunOne(int stations, const Workload& w, uint64_t seed) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211n;
  c.data_rate_mbps = 150.0;
  c.n_clients = stations;
  c.proto = w.proto;
  c.hack = w.hack;
  c.upload = w.upload;
  c.rts_threshold = w.rts_threshold;
  c.rate_adaptation = w.rate_adapt;
  if (w.udp_rate_bps > 0.0) {
    c.udp_rate_bps = w.udp_rate_bps;
  }
  if (w.proto == TransportProto::kUdp && w.upload) {
    // Token-bucket app pacing on the saturated uplink rows: one transport
    // refill per 16 ms window per station instead of one event per packet
    // (burst size adapts to each station's CBR interval). The downlink
    // rows keep the classic chain: their per-flow interval at depth is
    // near/above the window, and their replicate CIs are pinned across
    // PRs.
    c.udp_burst_window = SimTime::Millis(16);
  }
  c.topology = w.topology;
  if (w.topology != Topology::kRing) {
    c.propagation = LogDistancePropagation::Params{};
  }
  c.edca_enabled = w.edca;
  if (w.ack_window_us > 0) {
    c.hack_config.ack_policy.flush_window = SimTime::Micros(w.ack_window_us);
  }
  c.tcp.tos = w.tcp_tos;
  if (w.mixed_traffic) {
    // A voice tithe sharing the cell with heavy-tailed web bulk. The scale
    // keeps the aggregate web load at ~128 Mbps (saturating a 150 Mbps
    // cell) and the aggregate voice load at ~6.4 Mbps at every station
    // count, so the rows compare QoS policy, not offered load. Voice rides
    // the LAST mix row (highest station indices): client IPv4 addresses
    // truncate to one octet, so past 256 stations only the last 256 are
    // routable — a tail tithe keeps every voice sink live at 1000 stations
    // while the ghost web flows still saturate the air.
    c.traffic_mix = {{TrafficModel::kParetoWeb, 0.9},
                     {TrafficModel::kCbrVoice, 0.1}};
    c.traffic_rate_scale = 1000.0 / stations;
  }
  if (w.fault != nullptr) {
    // Watchdog armed in abort mode: a churn/outage row that wedges the
    // cell kills the bench with a repro line instead of emitting a row.
    c.watchdog_interval = SimTime::Millis(10);
  }
  // Scale sim time down with station count so the full sweep stays
  // tractable; the quantities of interest (events/ppdu, ev/s) are rates.
  int64_t millis = QuickMode() ? 250 : (stations >= 1000 ? 500 : 2000);
  c.duration = SimTime::Millis(millis);
  // The default 250 ms stagger assumes a handful of clients; pack starts
  // into the first fifth of the run instead.
  c.start_stagger = SimTime::Nanos(millis * 1'000'000 / (5 * stations));
  c.seed = seed;
  if (w.fault != nullptr) {
    c.fault_plan = std::strcmp(w.fault, "apout") == 0
                       ? FaultPlan::ApOutage(c.duration)
                       : FaultPlan::Churn(stations, c.duration);
  }

  auto t0 = std::chrono::steady_clock::now();
  ScenarioResult r = RunScenario(c);
  auto t1 = std::chrono::steady_clock::now();

  ScaleRow row;
  row.stations = stations;
  row.proto = w.label;
  row.hack = w.hack == HackVariant::kOff ? "off" : "moredata";
  row.collisions = r.airtime.collisions;
  row.out_of_range = r.airtime.out_of_range;
  row.rts_sent = r.ap_mac.rts_sent;
  row.cts_timeouts = r.ap_mac.cts_timeouts;
  row.captures = r.ap_phy.captures;
  row.overlap_losses = r.ap_phy.overlap_losses;
  for (const ClientResult& cr : r.clients) {
    row.rts_sent += cr.mac.rts_sent;
    row.cts_timeouts += cr.mac.cts_timeouts;
    row.captures += cr.phy.captures;
    row.overlap_losses += cr.phy.overlap_losses;
  }
  row.goodput_mbps = r.aggregate_goodput_mbps;
  row.bytes = 0;
  for (const ClientResult& cr : r.clients) {
    row.bytes += cr.bytes_delivered;
  }
  row.events = r.events_executed;
  row.ppdus = r.airtime.ppdus;
  row.events_per_ppdu =
      r.airtime.ppdus > 0
          ? static_cast<double>(r.events_executed) /
                static_cast<double>(r.airtime.ppdus)
          : 0.0;
  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.sim_seconds = c.duration.ToSecondsF();
  row.has_fault = w.fault != nullptr;
  row.fault_events = c.fault_plan.events.size();
  row.post_fault_goodput_mbps = r.post_fault_goodput_mbps;
  for (size_t i = 0; i < kEventClassCount; ++i) {
    row.per_ppdu_class[i] =
        r.airtime.ppdus > 0
            ? static_cast<double>(r.events_by_class[i]) /
                  static_cast<double>(r.airtime.ppdus)
            : 0.0;
  }

  if (w.mixed_traffic) {
    row.has_latency = true;
    for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
      row.ac_latency[ac] = r.ac_latency[ac];
    }
  }

  if (w.hack_detail) {
    row.has_hack_detail = true;
    uint64_t batches = r.ap_hack.ack_batches;
    uint64_t batched = r.ap_hack.batched_acks;
    uint64_t unique_acks = r.ap_hack.unique_compressed_acks;
    uint64_t unique_bytes = r.ap_hack.unique_compressed_bytes;
    for (const ClientResult& cr : r.clients) {
      batches += cr.hack.ack_batches;
      batched += cr.hack.batched_acks;
      unique_acks += cr.hack.unique_compressed_acks;
      unique_bytes += cr.hack.unique_compressed_bytes;
    }
    row.hack_ack_batches = batches;
    row.hack_acks_per_flush =
        batches > 0 ? static_cast<double>(batched) /
                          static_cast<double>(batches)
                    : 0.0;
    // Cell-wide analogue of HackStats::CompressionRatio (52 B vanilla ACK
    // per Table 2 / unique compressed bytes).
    row.hack_compression_ratio =
        unique_bytes > 0 ? static_cast<double>(unique_acks * 52) /
                               static_cast<double>(unique_bytes)
                         : 1.0;
  }

  row.crc_failures = r.crc_failures;
  return row;
}

// Per-run guards, evaluated on the main thread in matrix order once the
// parallel fan-out has delivered the row.
void CheckRow(const ScaleRow& r, const Workload& w, uint64_t seed) {
  if (r.crc_failures != 0) {
    std::fprintf(stderr,
                 "FAIL: %d-station %s/%s run (seed %llu) had %llu CRC "
                 "failures\n",
                 r.stations, r.proto, r.hack,
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(r.crc_failures));
    std::exit(1);
  }
  if (r.bytes == 0 && !w.allow_zero_bytes) {
    std::fprintf(stderr,
                 "FAIL: %d-station %s/%s run (seed %llu) delivered zero "
                 "bytes\n",
                 r.stations, r.proto, r.hack,
                 static_cast<unsigned long long>(seed));
    std::exit(1);
  }
}

void WriteJson(const std::string& path, const std::vector<ScaleRow>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_scale\",\n  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"stations\": %d, \"proto\": \"%s\", \"hack\": \"%s\", "
        "\"goodput_mbps\": %.3f, \"bytes\": %llu, \"events\": %llu, "
        "\"ppdus\": %llu, \"events_per_ppdu\": %.2f, "
        "\"per_ppdu_other\": %.2f, \"per_ppdu_channel\": %.2f, "
        "\"per_ppdu_dcf\": %.2f, \"per_ppdu_nav\": %.2f, "
        "\"per_ppdu_mac\": %.2f, \"per_ppdu_transport\": %.2f, "
        "\"collisions\": %llu, \"rts\": %llu, \"cts_timeouts\": %llu, "
        "\"captures\": %llu, \"overlap_losses\": %llu, "
        "\"out_of_range\": %llu, ",
        r.stations, r.proto, r.hack, r.goodput_mbps,
        static_cast<unsigned long long>(r.bytes),
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.ppdus), r.events_per_ppdu,
        r.per_ppdu_class[0], r.per_ppdu_class[1], r.per_ppdu_class[2],
        r.per_ppdu_class[3], r.per_ppdu_class[4], r.per_ppdu_class[5],
        static_cast<unsigned long long>(r.collisions),
        static_cast<unsigned long long>(r.rts_sent),
        static_cast<unsigned long long>(r.cts_timeouts),
        static_cast<unsigned long long>(r.captures),
        static_cast<unsigned long long>(r.overlap_losses),
        static_cast<unsigned long long>(r.out_of_range));
    if (r.repeats > 1) {
      // Replicate-seed statistics; emitted only when the row actually ran
      // repeats, so single-seed artifacts stay byte-identical to the
      // historical format. The legacy goodput_mbps above is always the
      // repeat-0 (seed=1) point value. check_bench_gates.py prefers the
      // mean whenever these columns are present.
      std::fprintf(f,
                   "\"repeats\": %d, \"goodput_mean_mbps\": %.3f, "
                   "\"goodput_ci95_mbps\": %.3f, ",
                   r.repeats, r.goodput_mean_mbps, r.goodput_ci95_mbps);
      if (r.has_fault) {
        std::fprintf(f, "\"post_fault_goodput_mean_mbps\": %.3f, ",
                     r.post_fault_goodput_mean_mbps);
      }
    }
    if (r.has_fault) {
      // Emitted only on fault rows so the legacy rows' JSON text stays
      // byte-identical across PRs.
      std::fprintf(f,
                   "\"fault_events\": %llu, "
                   "\"post_fault_goodput_mbps\": %.3f, ",
                   static_cast<unsigned long long>(r.fault_events),
                   r.post_fault_goodput_mbps);
    }
    if (r.has_latency) {
      // Per-AC latency columns, mixed-traffic rows only (legacy rows stay
      // byte-identical). Only ACs that actually carried samples appear.
      static const char* kAcKeys[kNumAcs] = {"vo", "vi", "be", "bk"};
      for (uint8_t ac = 0; ac < kNumAcs; ++ac) {
        const LatencySummary& s = r.ac_latency[ac];
        if (s.count == 0) {
          continue;
        }
        std::fprintf(f,
                     "\"lat_%s_count\": %llu, \"lat_%s_p50_ms\": %.3f, "
                     "\"lat_%s_p99_ms\": %.3f, \"lat_%s_jitter_ms\": %.3f, ",
                     kAcKeys[ac], static_cast<unsigned long long>(s.count),
                     kAcKeys[ac], s.p50_ms, kAcKeys[ac], s.p99_ms,
                     kAcKeys[ac], s.jitter_ms);
      }
    }
    if (r.has_hack_detail) {
      // ACK-aggregation ablation columns (legacy rows stay byte-identical;
      // gate 8 strips these before the w0-vs-tcp/moredata comparison).
      std::fprintf(f,
                   "\"hack_compression_ratio\": %.2f, "
                   "\"hack_ack_batches\": %llu, "
                   "\"hack_acks_per_flush\": %.2f, ",
                   r.hack_compression_ratio,
                   static_cast<unsigned long long>(r.hack_ack_batches),
                   r.hack_acks_per_flush);
    }
    std::fprintf(f, "\"wall_ms\": %.1f, \"sim_seconds\": %.3f}%s\n",
                 r.wall_ms, r.sim_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int jobs = 0;     // 0 = hardware_concurrency
  int repeats = 5;  // replicate seeds per 10/100-station row
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--repeats=", 10) == 0) {
      repeats = std::atoi(argv[i] + 10);
    }
  }
  if (repeats < 1) {
    repeats = 1;
  }

  PrintHeader("bench_scale",
              "dense-cell scaling (ROADMAP north star, not a paper figure)");
  std::vector<int> station_counts = QuickMode()
                                        ? std::vector<int>{10, 100}
                                        : std::vector<int>{10, 100, 1000};
  // The first three rows are the historical sweep and must stay
  // bit-identical across perf PRs. The next three open the dense-cell
  // realism workloads: "udp-up" is saturated uplink contention without any
  // protection (the collision collapse), "udp-rts" the same cell with
  // RTS/CTS + per-station rate adaptation (the gated recovery), and
  // "tcp+hack-rts" the full TCP+HACK download with protected data batches.
  // The last two run the two-cluster hidden-terminal topology on the
  // geometric channel (clusters cannot carrier-sense each other, so plain
  // DCF collides at the AP blind): "udp-hidden" is uplink CBR without
  // protection, "udp-hidden-rts" the same cell where the AP's CTS reserves
  // the medium across both clusters — the recovery check_bench_gates.py
  // enforces at >= 2x. The final two are the robustness rows: the fault-free
  // "udp" download cell put through station churn ("udp-churn": a fifth of
  // the stations crash mid-run, most rejoin) and a full AP outage + restart
  // ("udp-apout"), each under the liveness watchdog in abort mode; the gate
  // requires post-fault goodput >= 50% of the fault-free "udp" row.
  const Workload workloads[] = {
      {"udp", TransportProto::kUdp, HackVariant::kOff},
      {"tcp", TransportProto::kTcp, HackVariant::kOff},
      {"tcp", TransportProto::kTcp, HackVariant::kMoreData},
      {"udp-up", TransportProto::kUdp, HackVariant::kOff, /*upload=*/true,
       /*rts_threshold=*/0, /*rate_adapt=*/false, /*udp_rate_bps=*/2.5e9},
      {"udp-rts", TransportProto::kUdp, HackVariant::kOff, /*upload=*/true,
       /*rts_threshold=*/500, /*rate_adapt=*/true, /*udp_rate_bps=*/2.5e9},
      {"tcp+hack-rts", TransportProto::kTcp, HackVariant::kMoreData,
       /*upload=*/false, /*rts_threshold=*/500, /*rate_adapt=*/true},
      {"udp-hidden", TransportProto::kUdp, HackVariant::kOff, /*upload=*/true,
       /*rts_threshold=*/0, /*rate_adapt=*/false, /*udp_rate_bps=*/2.5e9,
       Topology::kTwoClusterHidden, /*allow_zero_bytes=*/true},
      {"udp-hidden-rts", TransportProto::kUdp, HackVariant::kOff,
       /*upload=*/true, /*rts_threshold=*/500, /*rate_adapt=*/false,
       /*udp_rate_bps=*/2.5e9, Topology::kTwoClusterHidden},
      {"udp-churn", TransportProto::kUdp, HackVariant::kOff,
       /*upload=*/false, /*rts_threshold=*/0, /*rate_adapt=*/false,
       /*udp_rate_bps=*/0.0, Topology::kRing, /*allow_zero_bytes=*/false,
       /*fault=*/"churn"},
      {"udp-apout", TransportProto::kUdp, HackVariant::kOff,
       /*upload=*/false, /*rts_threshold=*/0, /*rate_adapt=*/false,
       /*udp_rate_bps=*/0.0, Topology::kRing, /*allow_zero_bytes=*/false,
       /*fault=*/"apout"},
      // QoS pair: the same saturated voice+web mix without and with EDCA.
      // check_bench_gates.py requires the EDCA row's VO p99 to undercut
      // the no-EDCA baseline by >= 2x at the largest station count.
      {"udp-mix", TransportProto::kUdp, HackVariant::kOff,
       /*upload=*/false, /*rts_threshold=*/0, /*rate_adapt=*/false,
       /*udp_rate_bps=*/0.0, Topology::kRing, /*allow_zero_bytes=*/false,
       /*fault=*/nullptr, /*mixed_traffic=*/true, /*edca=*/false},
      {"udp-mix-edca", TransportProto::kUdp, HackVariant::kOff,
       /*upload=*/false, /*rts_threshold=*/0, /*rate_adapt=*/false,
       /*udp_rate_bps=*/0.0, Topology::kRing, /*allow_zero_bytes=*/false,
       /*fault=*/nullptr, /*mixed_traffic=*/true, /*edca=*/true},
      // --- ACK-aggregation ablation (HackAckPolicy) --------------------------
      // tcp+hack-w<N> sweeps the flush window over the tcp/moredata cell.
      // All window rows alias seed_group=2 (the tcp/moredata index): the w0
      // row must come out byte-identical to that row (gate 8), and the
      // window>0 rows compare goodput run-for-run against it (gate 9).
      // Quick mode (push CI) runs only the w0/w1ms pair; the full sweep —
      // with the EDCA-interaction pair at the end, VO-tagged TCP over the
      // saturated voice+web zoo without/with a 1 ms window — rides the
      // weekly full-matrix job.
      {.label = "tcp+hack-w0", .proto = TransportProto::kTcp,
       .hack = HackVariant::kMoreData, .ack_window_us = 0,
       .hack_detail = true, .seed_group = 2},
      {.label = "tcp+hack-w1ms", .proto = TransportProto::kTcp,
       .hack = HackVariant::kMoreData, .ack_window_us = 1000,
       .hack_detail = true, .seed_group = 2},
      {.label = "tcp+hack-w64us", .proto = TransportProto::kTcp,
       .hack = HackVariant::kMoreData, .ack_window_us = 64,
       .hack_detail = true, .full_only = true, .seed_group = 2},
      {.label = "tcp+hack-w256us", .proto = TransportProto::kTcp,
       .hack = HackVariant::kMoreData, .ack_window_us = 256,
       .hack_detail = true, .full_only = true, .seed_group = 2},
      {.label = "tcp+hack-w4ms", .proto = TransportProto::kTcp,
       .hack = HackVariant::kMoreData, .ack_window_us = 4000,
       .hack_detail = true, .full_only = true, .seed_group = 2},
      {.label = "tcp+hack-mix-edca", .proto = TransportProto::kTcp,
       .hack = HackVariant::kMoreData, .mixed_traffic = true, .edca = true,
       .ack_window_us = 0, .tcp_tos = 0xC0, .hack_detail = true,
       .full_only = true, .seed_group = 17},
      {.label = "tcp+hack-mix-edca-w1ms", .proto = TransportProto::kTcp,
       .hack = HackVariant::kMoreData, .mixed_traffic = true, .edca = true,
       .ack_window_us = 1000, .tcp_tos = 0xC0, .hack_detail = true,
       .full_only = true, .seed_group = 17},
  };

  // Flatten the matrix: each (stations, workload) cell expands to `reps`
  // replicate runs. Repeat 0 is the historical seed=1 run and alone feeds
  // the legacy columns; repeats r > 0 draw their seed from the cell's
  // stable identity (stations, workload index) and r — never from the
  // enumeration order — so quick and full sweeps, at any --jobs level,
  // give every replicate the same RNG streams.
  struct RunSpec {
    int stations;
    size_t workload;
    int repeat;
    uint64_t seed;
    size_t cell;  // index into the emitted per-cell row vector
  };
  constexpr size_t kNumWorkloads = std::size(workloads);
  std::vector<RunSpec> specs;
  // cell → workload index; quick mode skips full_only workloads, so the
  // mapping is no longer `cell % kNumWorkloads`.
  std::vector<size_t> cell_workload;
  size_t n_cells = 0;
  for (int n : station_counts) {
    for (size_t wi = 0; wi < kNumWorkloads; ++wi) {
      if (QuickMode() && workloads[wi].full_only) {
        continue;  // full ablation sweep rides the weekly full-matrix job
      }
      // Every row replicates, 1000-station cells included: since the
      // parallel campaign engine fans replicates across cores, the dense
      // rows' replicates ride along at roughly the wall cost of the
      // slowest single run, and the mean/CI gates cover the rows that
      // actually move in perf PRs.
      int reps = repeats;
      // Paired rows alias another workload's seed stream (seed_group) so
      // their replicates compare run-for-run.
      uint64_t sg = workloads[wi].seed_group == SIZE_MAX
                        ? static_cast<uint64_t>(wi)
                        : static_cast<uint64_t>(workloads[wi].seed_group);
      for (int r = 0; r < reps; ++r) {
        uint64_t seed =
            r == 0 ? 1
                   : DeriveRunSeed(static_cast<uint64_t>(n) * 64 + sg,
                                   static_cast<uint64_t>(r));
        specs.push_back(RunSpec{n, wi, r, seed, n_cells});
      }
      cell_workload.push_back(wi);
      ++n_cells;
    }
  }

  std::vector<ScaleRow> all_runs(specs.size());
  ParallelFor(specs.size(), jobs, [&](size_t i) {
    const RunSpec& s = specs[i];
    all_runs[i] = RunOne(s.stations, workloads[s.workload], s.seed);
  });

  std::printf(
      "%-9s %-13s %-9s %9s %12s %9s %9s %7s %7s %7s %7s %7s %8s %8s %8s "
      "%10s %10s\n",
      "stations", "proto", "hack", "goodput", "events", "ppdus", "ev/ppdu",
      "chan", "dcf", "nav", "mac", "tpt", "collis", "cts_to", "ovl",
      "wall_ms", "ev/s");
  std::vector<ScaleRow> rows(n_cells);
  std::vector<RunningStats> cell_goodput(n_cells);
  std::vector<RunningStats> cell_post_fault(n_cells);
  for (size_t i = 0; i < specs.size(); ++i) {
    const RunSpec& s = specs[i];
    const ScaleRow& run = all_runs[i];
    CheckRow(run, workloads[s.workload], s.seed);
    cell_goodput[s.cell].Add(run.goodput_mbps);
    cell_post_fault[s.cell].Add(run.post_fault_goodput_mbps);
    if (s.repeat == 0) {
      rows[s.cell] = run;  // legacy columns come from the seed=1 run
    }
  }
  for (size_t cell = 0; cell < n_cells; ++cell) {
    ScaleRow& r = rows[cell];
    r.repeats = static_cast<int>(cell_goodput[cell].count());
    r.goodput_mean_mbps = cell_goodput[cell].mean();
    r.goodput_ci95_mbps = cell_goodput[cell].Ci95HalfWidth();
    r.post_fault_goodput_mean_mbps = cell_post_fault[cell].mean();

    double evps = r.wall_ms > 0 ? r.events / (r.wall_ms / 1000.0) : 0;
    std::printf(
        "%-9d %-13s %-9s %9.1f %12llu %9llu %9.1f %7.1f %7.1f %7.1f %7.1f "
        "%7.1f %8llu %8llu %8llu %10.1f %9.2fM\n",
        r.stations, r.proto, r.hack, r.goodput_mbps,
        static_cast<unsigned long long>(r.events),
        static_cast<unsigned long long>(r.ppdus), r.events_per_ppdu,
        r.per_ppdu_class[1], r.per_ppdu_class[2], r.per_ppdu_class[3],
        r.per_ppdu_class[4], r.per_ppdu_class[5],
        static_cast<unsigned long long>(r.collisions),
        static_cast<unsigned long long>(r.cts_timeouts),
        static_cast<unsigned long long>(r.overlap_losses), r.wall_ms,
        evps / 1e6);
    if (r.repeats > 1) {
      std::printf("          ~ %d seeds: goodput %.1f +/- %.1f Mbps "
                  "(mean +/- 95%% CI)\n",
                  r.repeats, r.goodput_mean_mbps, r.goodput_ci95_mbps);
    }
    if (r.has_fault) {
      std::printf("          ^ %s plan (%llu events): post-fault goodput "
                  "%.1f Mbps\n",
                  workloads[cell_workload[cell]].fault,
                  static_cast<unsigned long long>(r.fault_events),
                  r.post_fault_goodput_mbps);
    }
    if (r.has_latency) {
      std::printf("          ~ latency ms p50/p99/jitter: VO %.2f/%.2f/%.2f"
                  "  BE %.2f/%.2f/%.2f\n",
                  r.ac_latency[kAcVo].p50_ms, r.ac_latency[kAcVo].p99_ms,
                  r.ac_latency[kAcVo].jitter_ms, r.ac_latency[kAcBe].p50_ms,
                  r.ac_latency[kAcBe].p99_ms, r.ac_latency[kAcBe].jitter_ms);
    }
    if (r.has_hack_detail) {
      std::printf("          ~ hack: compression %.1fx, %llu batches, "
                  "%.1f acks/flush\n",
                  r.hack_compression_ratio,
                  static_cast<unsigned long long>(r.hack_ack_batches),
                  r.hack_acks_per_flush);
    }
  }
  if (!json_path.empty()) {
    WriteJson(json_path, rows);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  std::printf(
      "\nwith batched delivery + lazy NAV/DCF re-arm, ev/ppdu is dominated "
      "by the\nchannel share (bounded by the cell's distinct propagation "
      "delays).\nudp-up vs udp-rts is the RTS/CTS story: same saturated "
      "uplink cell,\ncollisions moved off the long data frames onto cheap "
      "RTS frames\n(check_bench_gates.py enforces the recovery ratio at "
      "1000 stations).\nudp-hidden vs udp-hidden-rts is the *hidden*-"
      "terminal story: two clusters\nthat cannot carrier-sense each other "
      "collide blind at the AP (ovl column)\nuntil the AP's CTS reserves "
      "the medium across both (gated at >= 2x)\n");
  return 0;
}
