// Table 3: TCP-ACK time overhead breakdown for a 25 MB transfer — time to
// send vanilla TCP ACKs, time to send ROHC payloads, channel-acquisition
// time for TCP ACK frames, and extra LL-ACK wait time.
// Paper row (ms): stock 70 / 0 / 1093 / 456; HACK 0.08 / 13.1 / 1.17 / 0.46.
#include "bench/bench_util.h"

using namespace hacksim;

namespace {

ScenarioConfig TransferConfig(HackVariant hack) {
  ScenarioConfig c;
  c.standard = WifiStandard::k80211a;
  c.data_rate_mbps = 54.0;
  c.n_clients = 1;
  c.hack = hack;
  c.file_bytes = QuickMode() ? 5'000'000 : 25'000'000;
  c.duration = SimTime::Seconds(60);
  c.tcp.mss = 1448;
  // The paper's Table 3 includes SoRa's LL-ACK latency in the "LL ACK
  // overhead" column.
  c.extra_ack_delay = SimTime::Micros(37);
  c.extra_ack_timeout = SimTime::Micros(80);
  c.seed = 7;
  return c;
}

void PrintRow(const char* name, const MacStats& m) {
  std::printf("%-14s %10.2f %10.2f %10.2f %12.2f\n", name,
              m.tcp_ack_payload_airtime_ns / 1e6,
              m.rohc_payload_airtime_ns / 1e6,
              m.tcp_ack_channel_overhead_ns / 1e6,
              m.tcp_ack_ll_ack_overhead_ns / 1e6);
}

}  // namespace

int main() {
  PrintHeader("bench_tab3_overhead",
              "Table 3 (TCP ACK time overhead breakdown, ms)");
  ScenarioResult stock = RunScenario(TransferConfig(HackVariant::kOff));
  ScenarioResult hack = RunScenario(TransferConfig(HackVariant::kMoreData));

  std::printf("%-14s %10s %10s %10s %12s\n", "", "TCP ACK", "ROHC",
              "Channel", "LLACK ovhd");
  PrintRow("TCP/802.11a", stock.clients[0].mac);
  PrintRow("TCP/HACK", hack.clients[0].mac);
  std::printf("\npaper rows (ms, 25 MB): stock 70 / 0 / 1093 / 456; "
              "hack 0.08 / 13.1 / 1.17 / 0.46\n");
  std::printf("(scale with transfer size; HACKSIM_QUICK runs 5 MB -> ~1/5 "
              "of the full-run magnitudes)\n");
  return 0;
}
