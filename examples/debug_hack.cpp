// Diagnostic: dump counters for arbitrary (rate, hack, seed) runs.
#include <cstdio>
#include <cstdlib>
#include "src/scenario/download_scenario.h"
using namespace hacksim;
int main(int argc, char** argv) {
  double rate = argc > 1 ? atof(argv[1]) : 150.0;
  int hack = argc > 2 ? atoi(argv[2]) : 1;
  uint64_t seed = argc > 3 ? strtoull(argv[3], nullptr, 10) : 42;
  double secs = argc > 4 ? atof(argv[4]) : 2.0;
  int txop_ms = argc > 5 ? atoi(argv[5]) : 4;
  ScenarioConfig c;
  c.data_rate_mbps = rate;
  c.hack = hack ? HackVariant::kMoreData : HackVariant::kOff;
  c.seed = seed;
  c.duration = SimTime::FromSecondsF(secs);
  c.txop_limit = SimTime::Millis(txop_ms);
  ScenarioResult r = RunScenario(c);
  const ClientResult& cl = r.clients[0];
  auto u = [](uint64_t v) { return static_cast<unsigned long long>(v); };
  std::printf("rate=%g hack=%d seed=%llu: goodput=%.1f steady=%.1f tcp_to=%llu\n",
              rate, hack, u(seed), r.aggregate_goodput_mbps,
              r.steady_aggregate_goodput_mbps, u(r.tcp_timeouts));
  std::printf("  ap: ppdus=%llu drops=%llu mac_to=%llu bars=%llu giveups=%llu md=%llu/%llu\n",
              u(r.ap_mac.ppdus_sent), u(r.ap_mac.queue_drops),
              u(r.ap_mac.response_timeouts), u(r.ap_mac.bars_sent),
              u(r.ap_mac.ba_agreement_give_ups),
              u(r.ap_mac.batches_sent_more_data), u(r.ap_mac.batches_sent_final));
  std::printf("  cl: vanilla=%llu comp=%llu flush=%llu races=%llu crc=%llu dupacks=%llu ooo=%llu\n",
              u(cl.hack.vanilla_acks_sent), u(cl.hack.unique_compressed_acks),
              u(cl.hack.flushed_to_vanilla), u(cl.hack.ready_race_fallbacks),
              u(r.crc_failures), u(cl.tcp_rx.dupacks_sent), u(cl.tcp_rx.out_of_order_segments));
  return 0;
}
