// SoRa testbed emulation (§4.1/4.2): 802.11a at 54 Mbps with the
// software-radio quirks the paper documents — LL ACKs returned ~37 us later
// than SIFS and a widened ACK timeout — plus per-client frame loss.
// Reproduces the Figure 9 story at example scale.
#include <cstdio>

#include "src/scenario/download_scenario.h"

using namespace hacksim;

int main() {
  ScenarioConfig config;
  config.standard = WifiStandard::k80211a;
  config.data_rate_mbps = 54.0;
  config.n_clients = 2;
  config.duration = SimTime::Seconds(5);
  config.tcp.mss = 1448;
  config.udp_payload_bytes = 1472;
  config.extra_ack_delay = SimTime::Micros(37);
  config.extra_ack_timeout = SimTime::Micros(80);
  config.clients.resize(2);
  config.clients[0].bernoulli_data_loss = 0.02;  // Client 1 is lossier
  config.clients[1].bernoulli_data_loss = 0.01;
  config.seed = 4;

  std::printf("SoRa-style testbed: 802.11a @54 Mbps, 2 clients, "
              "37 us LL-ACK delay\n\n");
  struct Row {
    const char* name;
    TransportProto proto;
    HackVariant hack;
  };
  for (const Row& row :
       {Row{"UDP/802.11a", TransportProto::kUdp, HackVariant::kOff},
        Row{"TCP/HACK", TransportProto::kTcp, HackVariant::kMoreData},
        Row{"TCP/802.11a", TransportProto::kTcp, HackVariant::kOff}}) {
    config.proto = row.proto;
    config.hack = row.hack;
    ScenarioResult r = RunScenario(config);
    std::printf("%-12s client1 %5.1f  client2 %5.1f  total %5.1f Mbps   "
                "AP first-try %4.1f%%\n",
                row.name, r.clients[0].goodput_mbps,
                r.clients[1].goodput_mbps, r.aggregate_goodput_mbps,
                100.0 * r.ap_mac.FirstTryFraction());
  }
  std::printf("\npaper Figure 9: UDP ~26.5, TCP/HACK ~25.0 (total ~21.5 x2),"
              " TCP/802.11a ~19.4 Mbps; Table 1 first-try: 99/97/87%%\n");
  return 0;
}
