// Lossy-link walkthrough (Figure 11's setting): a single client at growing
// distance from the AP under the SNR loss model. Shows per-rate goodput and
// demonstrates that HACK's loss-recovery machinery (§3.4) never corrupts a
// TCP ACK: zero decompression CRC failures at any SNR.
#include <cstdio>

#include "src/phy80211/loss_model.h"
#include "src/scenario/download_scenario.h"

using namespace hacksim;

int main() {
  SnrLossModel snr_model;
  std::printf("%8s %8s | %18s | %18s | %s\n", "dist(m)", "SNR(dB)",
              "TCP/802.11n (Mbps)", "TCP/HACK (Mbps)", "crc failures");
  for (double distance : {4.0, 12.0, 25.0, 45.0}) {
    for (double rate : {150.0, 60.0}) {
      double goodput[2];
      uint64_t crc = 0;
      for (int h = 0; h < 2; ++h) {
        ScenarioConfig config;
        config.standard = WifiStandard::k80211n;
        config.data_rate_mbps = rate;
        config.n_clients = 1;
        config.hack = h == 0 ? HackVariant::kOff : HackVariant::kMoreData;
        config.duration = SimTime::Seconds(2);
        config.seed = 11;
        config.snr = SnrLossModel::Params{};
        config.clients.resize(1);
        config.clients[0].distance_m = distance;
        ScenarioResult r = RunScenario(config);
        goodput[h] = r.aggregate_goodput_mbps;
        crc += r.crc_failures;
      }
      std::printf("%8.0f %8.1f | %10.1f @%3.0f    | %10.1f @%3.0f    | %llu\n",
                  distance, snr_model.SnrDbAt(distance), goodput[0], rate,
                  goodput[1], rate, static_cast<unsigned long long>(crc));
    }
  }
  std::printf("\nAt long range only low rates survive; an ideal rate "
              "controller would track the per-row maximum (Figure 11's "
              "envelope).\n");
  return 0;
}
