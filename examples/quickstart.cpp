// Quickstart: a single 802.11n client downloads bulk TCP for two simulated
// seconds, stock vs TCP/HACK, and prints the goodput of each — the paper's
// headline effect in ~30 lines of API use.
#include <cstdio>

#include "src/scenario/download_scenario.h"

using namespace hacksim;

int main() {
  ScenarioConfig config;
  config.standard = WifiStandard::k80211n;
  config.data_rate_mbps = 150.0;
  config.n_clients = 1;
  config.proto = TransportProto::kTcp;
  config.duration = SimTime::Seconds(2);
  config.seed = 42;

  config.hack = HackVariant::kOff;
  ScenarioResult stock = RunScenario(config);

  config.hack = HackVariant::kMoreData;
  ScenarioResult hack = RunScenario(config);

  std::printf("802.11n @ 150 Mbps, 1 client, 2 s bulk TCP download\n");
  std::printf("  TCP/802.11n : %6.1f Mbps\n", stock.aggregate_goodput_mbps);
  std::printf("  TCP/HACK    : %6.1f Mbps\n", hack.aggregate_goodput_mbps);
  std::printf("  improvement : %6.1f %%\n",
              100.0 * (hack.aggregate_goodput_mbps /
                           stock.aggregate_goodput_mbps -
                       1.0));
  std::printf("  vanilla ACKs (stock->hack): %llu -> %llu\n",
              static_cast<unsigned long long>(
                  stock.clients[0].mac.tcp_ack_frames_sent),
              static_cast<unsigned long long>(
                  hack.clients[0].mac.tcp_ack_frames_sent));
  std::printf("  compressed ACKs on LL ACKs: %llu (ratio %.1fx)\n",
              static_cast<unsigned long long>(
                  hack.clients[0].hack.unique_compressed_acks),
              hack.clients[0].hack.CompressionRatio());
  std::printf("  decompression CRC failures: %llu\n",
              static_cast<unsigned long long>(hack.crc_failures));
  return 0;
}
