// Wireless backup (upload): the paper's Time Capsule use case (§3.1). The
// client pushes a large file to a LAN server; the AP — thanks to HACK's
// symmetry — compresses the server's TCP ACKs onto the Block ACKs it
// already sends for the client's upload batches.
#include <cstdio>

#include "src/scenario/download_scenario.h"

using namespace hacksim;

int main() {
  ScenarioConfig config;
  config.standard = WifiStandard::k80211n;
  config.data_rate_mbps = 150.0;
  config.n_clients = 1;
  config.upload = true;
  config.file_bytes = 50'000'000;  // 50 MB backup
  config.duration = SimTime::Seconds(30);
  config.seed = 9;

  std::printf("50 MB wireless backup over 802.11n @150 Mbps\n");
  for (HackVariant variant : {HackVariant::kOff, HackVariant::kMoreData}) {
    config.hack = variant;
    ScenarioResult r = RunScenario(config);
    const ClientResult& c = r.clients[0];
    std::printf("  %-12s completed in %5.2f s (%6.1f Mbps), "
                "TCP timeouts %llu, CRC failures %llu\n",
                variant == HackVariant::kOff ? "TCP/802.11n" : "TCP/HACK",
                c.completion_time.ToSecondsF(), c.goodput_mbps,
                static_cast<unsigned long long>(r.tcp_timeouts),
                static_cast<unsigned long long>(r.crc_failures));
    if (variant == HackVariant::kMoreData) {
      std::printf("  AP compressed %llu server ACKs onto its Block ACKs "
                  "(%llu sent vanilla)\n",
                  static_cast<unsigned long long>(
                      r.ap_hack.unique_compressed_acks),
                  static_cast<unsigned long long>(
                      r.ap_hack.vanilla_acks_sent));
    }
  }
  return 0;
}
